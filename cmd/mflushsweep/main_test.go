package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBuildSpecFromFlags(t *testing.T) {
	spec, err := buildSpec("", "2W1, 2W3", "ICOUNT,MFLUSH", "1,2,3", 5000, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Workloads) != 2 || len(spec.Policies) != 2 || len(spec.Seeds) != 3 {
		t.Fatalf("spec = %+v", spec)
	}
	if spec.Cycles != 5000 || spec.Warmup != 2000 {
		t.Fatalf("budgets = %d/%d", spec.Cycles, spec.Warmup)
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 12 {
		t.Fatalf("jobs = %d", len(jobs))
	}
}

func TestBuildSpecFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(`{
		"workloads": ["4W1"], "policies": ["FLUSH-S30"],
		"seeds": [7], "cycles": 1000, "warmup": 500,
		"tweaks": [{"name": "slow-mem", "main_memory_latency": 500}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := buildSpec(path, "", "", "1", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Tweaks) != 1 || spec.Tweaks[0].Name != "slow-mem" || spec.Seeds[0] != 7 {
		t.Fatalf("spec = %+v", spec)
	}
}

func TestBuildSpecErrors(t *testing.T) {
	if _, err := buildSpec("", "", "", "1", 100, 0); err == nil {
		t.Fatal("empty grid accepted")
	}
	if _, err := buildSpec("", "2W1", "ICOUNT", "x", 100, 0); err == nil {
		t.Fatal("bad seed accepted")
	}
	if _, err := buildSpec(filepath.Join(t.TempDir(), "missing.json"), "", "", "1", 0, 0); err == nil {
		t.Fatal("missing spec file accepted")
	}
}
