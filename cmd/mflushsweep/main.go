// Command mflushsweep runs a simulation campaign: the cartesian sweep of
// workloads × policies × seeds × machine tweaks declared by flags or a
// JSON spec file, executed on a bounded worker pool with every completed
// job persisted to a JSONL store. Re-invoking with -resume skips jobs
// the store already holds, so a killed campaign continues where it
// stopped. Aggregates (mean/min/max and 95% CI per cell across seeds)
// are written as CSV and JSON and printed as a table.
//
// Usage:
//
//	mflushsweep -workloads 2W1,2W3 -policies ICOUNT,MFLUSH -seeds 1,2,3 \
//	    [-cycles N] [-warmup N] [-jobs N] [-out DIR]
//	mflushsweep -spec sweep.json [-resume] [-out DIR]
//
// See CAMPAIGNS.md for the spec file format and resume semantics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/campaign"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mflushsweep: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	specPath := flag.String("spec", "", "JSON campaign spec file (overrides the grid flags)")
	workloads := flag.String("workloads", "", "comma-separated workload names (2W1..8W5, 8W-bzip2-twolf)")
	policies := flag.String("policies", "", "comma-separated policies (ICOUNT, FLUSH-S30, MFLUSH, ...)")
	seeds := flag.String("seeds", "1", "comma-separated synthesis seeds")
	cycles := flag.Uint64("cycles", 200000, "measured cycles per simulation")
	warmup := flag.Uint64("warmup", 300000, "warm-up cycles per simulation")
	jobs := flag.Int("jobs", 0, "parallel simulations (0: GOMAXPROCS)")
	gang := flag.Int("gang", 0,
		"lockstep gang width: batch up to this many compatible jobs (same workload, window and tweak) into one shared-input gang simulation (0 or 1: solo)")
	out := flag.String("out", "sweep", "output directory (results.jsonl, aggregate.csv, aggregate.json)")
	resume := flag.Bool("resume", false, "continue an interrupted campaign from OUT/results.jsonl")
	quiet := flag.Bool("q", false, "suppress per-job progress on stderr")
	flag.Parse()

	spec, err := buildSpec(*specPath, *workloads, *policies, *seeds, *cycles, *warmup)
	if err != nil {
		return err
	}
	jobList, err := spec.Jobs()
	if err != nil {
		return err
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	storePath := filepath.Join(*out, "results.jsonl")
	if _, err := os.Stat(storePath); err == nil && !*resume {
		return fmt.Errorf("%s exists; pass -resume to continue it or remove it to start over", storePath)
	}
	store, err := campaign.OpenStore(storePath)
	if err != nil {
		return err
	}
	defer store.Close()
	if *resume && store.Len() > 0 {
		fmt.Fprintf(os.Stderr, "mflushsweep: resuming: %d of %d jobs already complete\n",
			store.Len(), len(jobList))
	}

	// Ctrl-C stops scheduling; completed jobs are already on disk, so a
	// later -resume run picks up the remainder.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sched := &campaign.Scheduler{Workers: *jobs, GangWidth: *gang}
	if !*quiet {
		sched.OnProgress = func(p campaign.Progress) {
			status := ""
			if p.Cached {
				status = " (cached)"
			}
			if p.Err != nil {
				status = " FAILED: " + p.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s%s\n", p.Done, p.Total, p.Job, status)
		}
	}
	records, err := sched.Run(ctx, jobList, store)
	if err != nil {
		// A real simulation failure takes precedence over a concurrent
		// Ctrl-C; only a bare cancellation reads as "interrupted".
		if errors.Is(err, context.Canceled) {
			return fmt.Errorf("interrupted: %d of %d jobs complete; re-run with -resume",
				store.Len(), len(jobList))
		}
		return err
	}

	cells := campaign.Aggregate(records)
	csvF, err := os.Create(filepath.Join(*out, "aggregate.csv"))
	if err != nil {
		return err
	}
	if err := campaign.WriteCSV(csvF, cells); err != nil {
		csvF.Close()
		return err
	}
	if err := csvF.Close(); err != nil {
		return err
	}
	jsonF, err := os.Create(filepath.Join(*out, "aggregate.json"))
	if err != nil {
		return err
	}
	if err := campaign.WriteJSON(jsonF, cells); err != nil {
		jsonF.Close()
		return err
	}
	if err := jsonF.Close(); err != nil {
		return err
	}

	if _, err := campaign.Table(cells).WriteTo(os.Stdout); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mflushsweep: %d jobs, %d cells -> %s\n",
		len(jobList), len(cells), *out)
	return nil
}

// buildSpec loads the spec file, or assembles a spec from the grid flags.
func buildSpec(specPath, workloads, policies, seeds string, cycles, warmup uint64) (campaign.Spec, error) {
	if specPath != "" {
		f, err := os.Open(specPath)
		if err != nil {
			return campaign.Spec{}, err
		}
		defer f.Close()
		return campaign.ReadSpec(f)
	}
	if workloads == "" || policies == "" {
		return campaign.Spec{}, fmt.Errorf("need -spec, or -workloads and -policies")
	}
	seedList, err := parseSeeds(seeds)
	if err != nil {
		return campaign.Spec{}, err
	}
	return campaign.Spec{
		Workloads: splitList(workloads),
		Policies:  splitList(policies),
		Seeds:     seedList,
		Cycles:    cycles,
		Warmup:    warmup,
	}, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseSeeds(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range splitList(s) {
		n, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
