// Command mflushtrace synthesises scenario trace files for the
// simulator's trace-replay path: deterministic instruction streams with
// optional per-instruction miss-latency overrides and phase markers,
// ready to drive a campaign's trace: workload axis (see CAMPAIGNS.md).
// The same flags and seed always produce a byte-identical file.
//
// Usage:
//
//	mflushtrace -mode ramp -bench mcf -n 500000 -o ramp.trace
//	mflushtrace -mode burst -bench art -lat-hi 4000 -alpha 1.3 -o burst.trace
//	mflushtrace -mode phase -bench gzip,art -segments 6 -o phases.trace
//	mflushtrace -mode mix -bench mcf,gzip -o pair.trace
//	mflushtrace -list
//
// cmd/tracegen is an alias for the bench mode with legacy defaults.
package main

import (
	"os"

	"repro/internal/tracecli"
)

func main() {
	os.Exit(tracecli.Main("mflushtrace", os.Args[1:], os.Stdout, os.Stderr))
}
