// Command mflushvet is the repository's static-analysis gate: it runs
// the stock `go vet` passes once, then the five custom analyzers —
// determinism, hotpath, keyhash, lockorder, errwrap — plus the
// annotation self-check over the named packages, and exits nonzero if
// anything fires. CI's lint job and `make lint` both invoke it as
//
//	go run ./cmd/mflushvet ./...
//
// ARCHITECTURE.md's "Static analysis" section documents each analyzer's
// invariant; the analyzers' package docs carry the details.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/errwrap"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/keyhash"
	"repro/internal/analysis/lockorder"
)

// analyzers is the full custom suite, annotation self-check first so a
// stray marker is reported before the rules it failed to arm.
var analyzers = []*analysis.Analyzer{
	analysis.Annotations,
	determinism.Analyzer,
	hotpath.Analyzer,
	keyhash.Analyzer,
	lockorder.Analyzer,
	errwrap.Analyzer,
}

func main() {
	novet := flag.Bool("novet", false, "skip the stock go vet passes and run only the custom analyzers")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mflushvet [-novet] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs stock go vet plus the repository's custom analyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := driver.ModuleRoot(".")
	if err != nil {
		fatal(err)
	}

	clean := true
	if !*novet {
		ok, err := driver.StockVet(root, os.Stderr, patterns...)
		if err != nil {
			fatal(err)
		}
		clean = clean && ok
	}

	res, err := driver.Load(root, patterns...)
	if err != nil {
		fatal(err)
	}
	for _, d := range driver.Run(res, analyzers) {
		fmt.Fprintln(os.Stdout, d)
		clean = false
	}
	if !clean {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mflushvet:", err)
	os.Exit(2)
}
