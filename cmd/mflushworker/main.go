// Command mflushworker is a fleet worker for mflushd's cluster mode: it
// registers with a coordinator daemon (mflushd -cluster), pulls leased
// simulation jobs over HTTP, runs them on a local goroutine pool, and
// posts the results back. Run any number of them, on any machines that
// can reach the daemon; the coordinator re-issues the leases of workers
// that die, so killing one mid-campaign costs nothing but time.
//
// Usage:
//
//	mflushworker [-coordinator http://127.0.0.1:8080] [-name HOST] \
//	             [-capacity N] [-lease-wait 2s] [-quiet]
//
// SIGTERM (or SIGINT) drains gracefully: no new leases, in-flight
// simulations finish and post, then the worker deregisters and exits.
// API.md documents the /v1/workers protocol.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mflushworker: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	coordinator := flag.String("coordinator", "http://127.0.0.1:8080", "mflushd base URL (must run with -cluster)")
	name := flag.String("name", defaultName(), "worker label in fleet listings")
	capacity := flag.Int("capacity", runtime.GOMAXPROCS(0), "parallel simulations (and lease batch size)")
	leaseWait := flag.Duration("lease-wait", 2*time.Second, "long-poll duration when the job queue is empty")
	quiet := flag.Bool("quiet", false, "suppress per-job logging")
	flag.Parse()

	w := &cluster.Worker{
		Base:      *coordinator,
		Name:      *name,
		Capacity:  *capacity,
		LeaseWait: *leaseWait,
	}
	if !*quiet {
		w.Logf = log.Printf
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	log.Printf("mflushworker: pulling from %s as %q (capacity %d)", *coordinator, *name, *capacity)
	return w.Run(ctx)
}

// defaultName labels the worker with its hostname when available.
func defaultName() string {
	if h, err := os.Hostname(); err == nil && h != "" {
		return h
	}
	return "worker"
}
