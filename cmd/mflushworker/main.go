// Command mflushworker is a fleet worker for mflushd's cluster mode: it
// registers with a coordinator daemon (mflushd -cluster), pulls leased
// simulation jobs over HTTP, runs them on a local goroutine pool, and
// posts the results back. Run any number of them, on any machines that
// can reach the daemon; the coordinator re-issues the leases of workers
// that die, so killing one mid-campaign costs nothing but time.
//
// Usage:
//
//	mflushworker [-coordinator http://127.0.0.1:8080] [-name HOST] \
//	             [-capacity N] [-lease-wait 2s] [-quiet] \
//	             [-metrics-addr HOST:PORT] [-debug-addr HOST:PORT]
//
// -metrics-addr serves the worker's own registry (jobs completed and
// failed, simulated cycles, in-flight jobs, lease backoff) at GET
// /metrics in Prometheus text format; -debug-addr serves net/http/pprof
// and expvar on a separate, typically loopback, listener. Both are
// empty (disabled) by default — a worker needs neither to do its job.
//
// SIGTERM (or SIGINT) drains gracefully: no new leases, in-flight
// simulations finish and post, then the worker deregisters and exits.
// API.md documents the /v1/workers protocol.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mflushworker: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	coordinator := flag.String("coordinator", "http://127.0.0.1:8080", "mflushd base URL (must run with -cluster)")
	name := flag.String("name", defaultName(), "worker label in fleet listings")
	capacity := flag.Int("capacity", runtime.GOMAXPROCS(0), "parallel simulations (and lease batch size)")
	gang := flag.Int("gang", 0,
		"lockstep gang width: batch up to this many compatible leased jobs (same workload, window and tweak) into one shared-input gang simulation (0 or 1: solo)")
	leaseWait := flag.Duration("lease-wait", 2*time.Second, "long-poll duration when the job queue is empty")
	quiet := flag.Bool("quiet", false, "suppress per-job logging")
	metricsAddr := flag.String("metrics-addr", "",
		"serve this worker's /metrics (Prometheus text format) on this address (empty: disabled)")
	debugAddr := flag.String("debug-addr", "",
		"serve net/http/pprof and expvar on this private address (empty: disabled)")
	flag.Parse()

	w := &cluster.Worker{
		Base:      *coordinator,
		Name:      *name,
		Capacity:  *capacity,
		GangWidth: *gang,
		LeaseWait: *leaseWait,
	}
	if !*quiet {
		w.Logf = log.Printf
	}

	// Observability side-cars: each binds its own listener before the
	// pull loop starts so a scrape or profile works from the first job.
	if *metricsAddr != "" {
		reg := metrics.NewRegistry()
		w.RegisterMetrics(reg)
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		if err := serveAux(*metricsAddr, "metrics", mux); err != nil {
			return err
		}
	}
	if *debugAddr != "" {
		if err := serveAux(*debugAddr, "debug (pprof, expvar)", metrics.DebugHandler()); err != nil {
			return err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	log.Printf("mflushworker: pulling from %s as %q (capacity %d)", *coordinator, *name, *capacity)
	return w.Run(ctx)
}

// serveAux starts an auxiliary HTTP listener (metrics or debug) in the
// background; it lives for the process, nothing on it needs draining.
func serveAux(addr, what string, h http.Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("%s listener: %w", what, err)
	}
	log.Printf("mflushworker: %s on %s", what, ln.Addr())
	go func() {
		if err := http.Serve(ln, h); !errors.Is(err, http.ErrServerClosed) {
			log.Printf("mflushworker: %s server: %v", what, err)
		}
	}()
	return nil
}

// defaultName labels the worker with its hostname when available.
func defaultName() string {
	if h, err := os.Hostname(); err == nil && h != "" {
		return h
	}
	return "worker"
}
