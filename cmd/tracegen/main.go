// Command tracegen synthesises a benchmark instruction trace and writes it
// as a binary trace file, which the library can replay instead of
// generating instructions on the fly (trace.ReadAll + trace.SliceSource).
//
// Usage:
//
//	tracegen -bench mcf -n 1000000 -o mcf.trace [-seed N] [-base N]
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/isa"
	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (see -list)")
	n := flag.Int("n", 1_000_000, "number of instructions")
	out := flag.String("o", "", "output file (default <bench>.trace)")
	seed := flag.Uint64("seed", 1, "synthesis seed")
	base := flag.Uint64("base", 1<<34, "address-space base for the instance")
	list := flag.Bool("list", false, "list available benchmarks")
	flag.Parse()

	if *list {
		fmt.Println("letter  name      class")
		for _, p := range synth.Profiles() {
			class := "compute-bound"
			if p.MemBound() {
				class = "memory-bound"
			}
			fmt.Printf("%c       %-9s %s\n", p.Letter, p.Name, class)
		}
		return
	}

	prof, ok := synth.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown benchmark %q (try -list)\n", *bench)
		os.Exit(2)
	}
	if *n <= 0 {
		fmt.Fprintln(os.Stderr, "tracegen: -n must be positive")
		os.Exit(2)
	}
	path := *out
	if path == "" {
		path = prof.Name + ".trace"
	}

	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	g := synth.NewGenerator(prof, *seed, *base)
	var in isa.Inst
	for i := 0; i < *n; i++ {
		g.Next(&in)
		if err := w.Write(&in); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d instructions of %s to %s\n", w.Count(), prof.Name, path)
}
