// Command tracegen is the legacy alias of cmd/mflushtrace: bench mode
// with the historical defaults (single thread, MFTRACE1 output,
// <bench>.trace default path). It shares mflushtrace's flags and its
// atomic output discipline — a mid-write failure no longer leaves a
// truncated .trace file behind.
//
// Usage:
//
//	tracegen -bench mcf -n 1000000 -o mcf.trace [-seed N] [-base N]
//	tracegen -list
package main

import (
	"os"

	"repro/internal/tracecli"
)

func main() {
	os.Exit(tracecli.Main("tracegen", os.Args[1:], os.Stdout, os.Stderr))
}
