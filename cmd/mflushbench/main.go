// Command mflushbench regenerates the paper's tables and figures as text
// tables.
//
// Usage:
//
//	mflushbench [-fig N] [-warmup N] [-cycles N] [-seed N] [-quick]
//
// Without -fig it runs the complete evaluation (Figures 1-11) in order.
// Absolute numbers will not match the paper (the substrate is a from-
// scratch simulator fed synthetic workloads — see DESIGN.md); the shapes
// are the reproduction target and are recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/synth"
	"repro/internal/workload"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (1-11); 0 runs all")
	ablate := flag.Bool("ablations", false, "run the design-choice ablations instead of the figures")
	warmup := flag.Uint64("warmup", experiments.Default.Warmup, "warm-up cycles (excluded from measurement)")
	cycles := flag.Uint64("cycles", experiments.Default.Cycles, "measured cycles per simulation")
	seed := flag.Uint64("seed", experiments.Default.Seed, "workload synthesis seed")
	quick := flag.Bool("quick", false, "use the reduced quick configuration")
	flag.Parse()

	cfg := experiments.Config{Warmup: *warmup, Cycles: *cycles, Seed: *seed}
	if *quick {
		cfg = experiments.Quick
	}

	figs := map[int]func(experiments.Config) error{
		1: figure1, 2: figure2, 3: figure3, 4: figure4, 5: figure5,
		6: figure6, 7: figure7, 8: figure8, 9: figure9, 10: figure10,
		11: figure11,
	}
	run := func(n int) {
		if err := figs[n](cfg); err != nil {
			fmt.Fprintf(os.Stderr, "mflushbench: figure %d: %v\n", n, err)
			os.Exit(1)
		}
	}
	if *ablate {
		if err := ablations(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "mflushbench: ablations: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *fig != 0 {
		if _, ok := figs[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "mflushbench: no figure %d (valid: 1-11)\n", *fig)
			os.Exit(2)
		}
		run(*fig)
		return
	}
	for n := 1; n <= 11; n++ {
		run(n)
		fmt.Println()
	}
}

func header(title string) {
	fmt.Println(title)
	fmt.Println(strings.Repeat("-", len(title)))
}

func tabbed() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func figure1(experiments.Config) error {
	header("Figure 1: simulation parameters and workloads")
	c := config.Default(4)
	w := tabbed()
	fmt.Fprintf(w, "Pipeline depth\t11 stages (front end %d)\n", c.Core.FrontEndStages)
	fmt.Fprintf(w, "Queues\t%d int, %d fp, %d ld/st\n", c.Core.IntQueue, c.Core.FPQueue, c.Core.LSQueue)
	fmt.Fprintf(w, "Execution units\t%d int, %d fp, %d ld/st\n", c.Core.IntUnits, c.Core.FPUnits, c.Core.LSUnits)
	fmt.Fprintf(w, "Physical registers\t%d (reserve %d/thread)\n", c.Core.PhysRegs, c.Core.RegReservePerThread)
	fmt.Fprintf(w, "ROB\t%d entries per thread\n", c.Core.ROBPerThread)
	fmt.Fprintf(w, "Branch predictor\tperceptron (%d perceptrons, %d-bit history)\n",
		c.Core.PerceptronCount, c.Core.PerceptronHistory)
	fmt.Fprintf(w, "BTB\t%d entries, %d-way\n", c.Core.BTBEntries, c.Core.BTBAssoc)
	fmt.Fprintf(w, "RAS\t%d entries per thread\n", c.Core.RASEntries)
	fmt.Fprintf(w, "L1 icache\t%dKB, %d-way, %d banks\n", c.Mem.L1I.SizeBytes>>10, c.Mem.L1I.Assoc, c.Mem.L1I.Banks)
	fmt.Fprintf(w, "L1 dcache\t%dKB, %d-way, %d banks\n", c.Mem.L1D.SizeBytes>>10, c.Mem.L1D.Assoc, c.Mem.L1D.Banks)
	fmt.Fprintf(w, "L1 lat./miss\t%d/%d cycles\n", c.L1Latency, c.Mem.L1MissLatency)
	fmt.Fprintf(w, "TLB\t%d entries, %d-cycle miss\n", c.Mem.TLBEntries, c.Mem.TLBMissLatency)
	fmt.Fprintf(w, "L2 cache\t%.1fMB, %d-way, %d banks, %d-cycle banks\n",
		float64(c.Mem.L2.SizeBytes)/(1<<20), c.Mem.L2.Assoc, c.Mem.L2.Banks, c.Mem.L2.Latency)
	fmt.Fprintf(w, "Main memory\t%d cycles\n", c.Mem.MainMemoryLatency)
	w.Flush()

	fmt.Println("\nBenchmark letter map:")
	w = tabbed()
	ps := synth.Profiles()
	for i := 0; i < len(ps); i += 4 {
		var cells []string
		for j := i; j < i+4 && j < len(ps); j++ {
			cells = append(cells, fmt.Sprintf("%s %c", ps[j].Name, ps[j].Letter))
		}
		fmt.Fprintln(w, strings.Join(cells, "\t"))
	}
	w.Flush()

	fmt.Println("\nWorkloads (xWy):")
	w = tabbed()
	for _, size := range workload.Sizes() {
		for _, wl := range workload.OfSize(size) {
			fmt.Fprintf(w, "%s\t%s\n", wl.Name, wl.Describe())
		}
	}
	w.Flush()
	return nil
}

func figure2(cfg experiments.Config) error {
	header("Figure 2: throughput in single-core SMT (ICOUNT vs FLUSH-S30)")
	rows, avg, err := experiments.Figure2(cfg)
	if err != nil {
		return err
	}
	w := tabbed()
	fmt.Fprintln(w, "workload\tICOUNT IPC\tFLUSH-S30 IPC\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%+.1f%%\n", r.Workload, r.ICOUNT, r.FlushS30, r.Speedup*100)
	}
	fmt.Fprintf(w, "average\t\t\t%+.1f%%\n", avg*100)
	w.Flush()
	fmt.Println("paper: FLUSH speedups up to 93%, average 22%")
	return nil
}

func figure3(cfg experiments.Config) error {
	header("Figure 3: average throughput in multicore CMP+SMT configurations")
	rows, err := experiments.Figure3(cfg)
	if err != nil {
		return err
	}
	w := tabbed()
	fmt.Fprintln(w, "threads\tcores\tICOUNT IPC\tFLUSH-S30 IPC\tavg speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%dW\t%d\t%.3f\t%.3f\t%+.1f%%\n",
			r.Threads, r.Cores, r.ICOUNT, r.FlushS30, r.AvgSpeedup*100)
	}
	w.Flush()
	fmt.Println("paper: the single-core 22% advantage shrinks with core count and")
	fmt.Println("turns into a ~9% slowdown at 4 cores")
	return nil
}

func figure4(cfg experiments.Config) error {
	header("Figure 4: average L2 cache hit time (cycles from load issue, ICOUNT)")
	rows, err := experiments.Figure4(cfg)
	if err != nil {
		return err
	}
	w := tabbed()
	fmt.Fprintln(w, "threads\tcores\thits\tmean\tp50\tp90\tmax\t20-70cy share")
	for _, r := range rows {
		fmt.Fprintf(w, "%dW\t%d\t%d\t%.1f\t%d\t%d\t%d\t%.0f%%\n",
			r.Threads, r.Cores, r.Hits, r.Mean, r.P50, r.P90, r.Max, r.Frac20to70*100)
	}
	w.Flush()
	fmt.Println("\ndistribution (10-cycle bins, share of hits):")
	w = tabbed()
	fmt.Fprint(w, "threads")
	for b := 0; b < 16; b++ {
		if b == 15 {
			fmt.Fprint(w, "\t150+")
		} else {
			fmt.Fprintf(w, "\t%d", b*10)
		}
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%dW", r.Threads)
		for _, b := range r.Buckets {
			fmt.Fprintf(w, "\t%.0f%%", float64(b)/float64(r.Hits)*100)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Println("paper: both the mean and the dispersion of the L2 hit time grow")
	fmt.Println("with the number of cores; no single threshold fits all cases")
	return nil
}

func figure5(cfg experiments.Config) error {
	header("Figure 5: Detection Moment analysis (FLUSH trigger sweep)")
	rows, err := experiments.Figure5(cfg)
	if err != nil {
		return err
	}
	w := tabbed()
	fmt.Fprintln(w, "workload\tpolicy\tIPC")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.3f\n", r.Workload, r.Policy, r.IPC)
	}
	w.Flush()
	fmt.Println("paper: the best trigger is workload-dependent (50 for 8W3, 90 for")
	fmt.Println("bzip2/twolf) and non-speculative FLUSH wins on 8W3")
	return nil
}

func figure6(experiments.Config) error {
	header("Figure 6: MFLUSH operational environment")
	w := tabbed()
	fmt.Fprintln(w, "cores\tMIN\tMAX\tMT\tsuspicious\tBarrier(pred=MIN)\tBarrier(pred=55)")
	for cores := 1; cores <= 4; cores++ {
		c := config.Default(cores)
		env := core.EnvironmentFor(&c)
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			cores, env.Min, env.Max, env.MT, env.Suspicious(),
			env.Barrier(env.Min), env.Barrier(55))
	}
	w.Flush()
	fmt.Println("BARRIER = L2prediction + MIN/2 + MT;  suspicious = MIN + MT")
	fmt.Println("MT = (bus delay + L2 bank access delay) * (cores - 1)")
	return nil
}

func figure7(experiments.Config) error {
	header("Figure 7: MCReg hardware support (worked example, 4 cores x 4 banks)")
	c := config.Default(4)
	env := core.EnvironmentFor(&c)
	f := core.NewMCRegFile(c.Mem.L2.Banks, 1, env.Min)
	f.Update(2, 55) // the paper's example: bank 2 last hit in 55 cycles
	w := tabbed()
	fmt.Fprintln(w, "bank\tMCReg (last L2 hit latency)\tpredicted barrier")
	for b := 0; b < f.Banks(); b++ {
		pred := f.Predict(b)
		fmt.Fprintf(w, "%d\t%d cycles\t%d cycles\n", b, pred, env.Barrier(pred))
	}
	w.Flush()
	fmt.Println("an L1 miss in core 0 to bank 2 predicts a 55-cycle L2 hit latency")
	return nil
}

func figure8(cfg experiments.Config) error {
	header("Figure 8: throughput results (4W/6W/8W workloads)")
	rows, err := experiments.Figure8(cfg)
	if err != nil {
		return err
	}
	w := tabbed()
	fmt.Fprintln(w, "workload\tICOUNT\tFLUSH-S30\tFLUSH-S100\tMFLUSH")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%.3f\n",
			r.Workload, r.ICOUNT, r.FlushS30, r.FlushS100, r.MFLUSH)
	}
	ic, s30, s100, mf := experiments.Figure8Averages(rows)
	fmt.Fprintf(w, "average\t%.3f\t%.3f\t%.3f\t%.3f\n", ic, s30, s100, mf)
	w.Flush()
	fmt.Printf("MFLUSH vs FLUSH-S100: %+.1f%%\n", (mf/s100-1)*100)
	fmt.Println("paper: MFLUSH within ~2% of FLUSH-S100 with no a-priori trigger;")
	fmt.Println("FLUSH-S30 sometimes loses to ICOUNT")
	return nil
}

func figure9(experiments.Config) error {
	header("Figure 9: energy consumption distribution per resource")
	w := tabbed()
	fmt.Fprintln(w, "resource\tshare\tpipeline stages")
	for _, r := range energy.Distribution() {
		var names []string
		for _, s := range r.Stages {
			names = append(names, s.String())
		}
		fmt.Fprintf(w, "%s\t%.0f%%\t%s\n", r.Resource, r.Share*100, strings.Join(names, ","))
	}
	w.Flush()
	return nil
}

func figure10(experiments.Config) error {
	header("Figure 10: Energy Consumption Factor")
	w := tabbed()
	fmt.Fprintln(w, "pipeline stage\tlocal\taccumulated")
	for s := energy.Stage(0); s < energy.Stage(energy.NumStages); s++ {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\n", s, energy.LocalFactor(s), energy.AccumFactor(s))
	}
	w.Flush()
	return nil
}

func ablations(cfg experiments.Config) error {
	suites := []struct {
		name string
		run  func(experiments.Config) ([]experiments.AblationRow, error)
	}{
		{"MCReg history depth (paper §4.1 optional configuration)", experiments.AblationMCRegHistory},
		{"Response action: STALL vs FLUSH vs MFLUSH", experiments.AblationResponseAction},
		{"MSHR size (bounds per-thread memory-level parallelism)", experiments.AblationMSHR},
		{"Rename-register reservation (clog severity)", experiments.AblationRegReserve},
	}
	for _, s := range suites {
		header("Ablation: " + s.name)
		rows, err := s.run(cfg)
		if err != nil {
			return err
		}
		w := tabbed()
		fmt.Fprintln(w, "workload\tvariant\tIPC\tflushes\twasted energy")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%.3f\t%d\t%.0f\n", r.Workload, r.Variant, r.IPC, r.Flushes, r.Wasted)
		}
		w.Flush()
		fmt.Println()
	}
	return nil
}

func figure11(cfg experiments.Config) error {
	header("Figure 11: FLUSH wasted energy (energy units; 1 unit = 1 commit)")
	rows, err := experiments.Figure11(cfg)
	if err != nil {
		return err
	}
	w := tabbed()
	fmt.Fprintln(w, "workload\tFLUSH-S30\tFLUSH-S100\tMFLUSH\tMFLUSH vs S100")
	for _, r := range rows {
		saving := 0.0
		if r.FlushS100 > 0 {
			saving = (1 - r.MFLUSH/r.FlushS100) * 100
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.0f\t%+.0f%%\n",
			r.Workload, r.FlushS30, r.FlushS100, r.MFLUSH, -saving)
	}
	s30, s100, mf, saving := experiments.Figure11Averages(rows)
	fmt.Fprintf(w, "total\t%.0f\t%.0f\t%.0f\t%+.0f%%\n", s30, s100, mf, -saving*100)
	w.Flush()
	fmt.Println("paper: MFLUSH wastes ~20% less energy than FLUSH-S100, which in")
	fmt.Println("turn wastes ~10% more than FLUSH-S30")
	return nil
}
