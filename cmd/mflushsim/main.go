// Command mflushsim runs one simulation: a workload under an IFetch
// policy on the paper's machine, printing throughput, latency and energy
// statistics.
//
// Usage:
//
//	mflushsim -workload 2W3 -policy MFLUSH [-cycles N] [-warmup N] [-seed N] [-cores N] [-name S] [-v]
//	mflushsim -workload 8W3 -policy MFLUSH -interval 5000 [-out series.csv] [-json]
//
// Policies: ICOUNT, FLUSH-S<delay>, FLUSH-NS, STALL-S<delay>, MFLUSH,
// MFLUSH-H<depth>.
//
// With -interval N the run additionally emits a time series: one sample
// every N measured cycles (CSV by default, JSONL with -json), streamed
// as the simulation advances. The series goes to -out when given (the
// normal summary still prints to stdout) and replaces the summary on
// stdout otherwise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// sampleCSVHeader names the columns writeSampleCSV emits. MCReg state is
// folded to its min/max across cores and banks (blank for non-MFLUSH
// policies); the full per-bank state is available with -json.
const sampleCSVHeader = "cycle,measured_cycles,ipc,interval_ipc,committed_total,flushes," +
	"flushed_instructions,wasted_energy_units,l2_hits,l2_misses,mcreg_min,mcreg_max"

// writeSampleCSV renders one time-series row.
func writeSampleCSV(w io.Writer, p sim.SamplePoint) {
	var total uint64
	for _, n := range p.Committed {
		total += n
	}
	mcregMin, mcregMax := "", ""
	if lo, hi, ok := p.MCRegBounds(); ok {
		mcregMin, mcregMax = fmt.Sprint(lo), fmt.Sprint(hi)
	}
	fmt.Fprintf(w, "%d,%d,%.6f,%.6f,%d,%d,%d,%.3f,%d,%d,%s,%s\n",
		p.Cycle, p.MeasuredCycles, p.IPC, p.IntervalIPC, total, p.Flushes,
		p.FlushedInsts, p.WastedEnergy, p.L2Hits, p.L2Misses, mcregMin, mcregMax)
}

func main() {
	wl := flag.String("workload", "2W3", "workload name (xWy from the paper, or 8W-bzip2-twolf)")
	pol := flag.String("policy", "MFLUSH", "IFetch policy")
	cycles := flag.Uint64("cycles", 200000, "measured cycles")
	warmup := flag.Uint64("warmup", 300000, "warm-up cycles")
	seed := flag.Uint64("seed", 1, "synthesis seed")
	cores := flag.Int("cores", 0, "core count override (0: derive from workload)")
	verbose := flag.Bool("v", false, "print all event counters")
	asJSON := flag.Bool("json", false, "emit the result as JSON")
	traces := flag.String("traces", "", "comma-separated trace files (from tracegen) to replay instead of -workload")
	name := flag.String("name", "", "workload name to report (replayed traces otherwise report replay-N)")
	interval := flag.Uint64("interval", 0, "emit a time-series sample every N measured cycles (0: off)")
	out := flag.String("out", "", "time-series destination file (default: stdout, replacing the summary)")
	flag.Parse()

	var w workload.Workload
	var threadTraces [][]isa.Inst
	if *traces != "" {
		for _, path := range strings.Split(*traces, ",") {
			f, err := os.Open(strings.TrimSpace(path))
			if err != nil {
				fmt.Fprintf(os.Stderr, "mflushsim: %v\n", err)
				os.Exit(1)
			}
			insts, err := trace.ReadAll(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "mflushsim: %s: %v\n", path, err)
				os.Exit(1)
			}
			threadTraces = append(threadTraces, insts)
		}
	} else {
		var ok bool
		w, ok = workload.ByName(*wl)
		if !ok {
			fmt.Fprintf(os.Stderr, "mflushsim: unknown workload %q; valid names:\n", *wl)
			for _, x := range workload.All() {
				fmt.Fprintf(os.Stderr, "  %s\n", x.Describe())
			}
			os.Exit(2)
		}
	}
	spec, err := sim.ParseSpec(*pol)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mflushsim: %v\n", err)
		os.Exit(2)
	}

	opt := sim.Options{
		Workload: w, Policy: spec, Name: *name,
		Cycles: *cycles, Warmup: *warmup, Seed: *seed, Cores: *cores,
		ThreadTraces: threadTraces,
		Interval:     *interval,
	}

	// Stream the time series as the simulation takes each sample.
	seriesToStdout := *interval > 0 && *out == ""
	var seriesW *bufio.Writer
	if *interval > 0 {
		dst := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mflushsim: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			dst = f
		}
		seriesW = bufio.NewWriter(dst)
		defer seriesW.Flush()
		if !*asJSON {
			fmt.Fprintln(seriesW, sampleCSVHeader)
		}
		enc := json.NewEncoder(seriesW)
		opt.OnSample = func(p sim.SamplePoint) {
			if *asJSON {
				_ = enc.Encode(p) // one JSON object per line (JSONL)
			} else {
				writeSampleCSV(seriesW, p)
			}
			seriesW.Flush()
		}
	}

	res, err := sim.Run(opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mflushsim: %v\n", err)
		os.Exit(1)
	}
	if seriesToStdout {
		return // the series replaced the summary
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Summary()); err != nil {
			fmt.Fprintf(os.Stderr, "mflushsim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	desc := w.Describe()
	if *traces != "" {
		desc = "replayed traces: " + *traces
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "workload\t%s\n", desc)
	fmt.Fprintf(tw, "policy\t%s\n", res.Policy)
	fmt.Fprintf(tw, "cycles\t%d (after %d warm-up)\n", res.Cycles, *warmup)
	fmt.Fprintf(tw, "system IPC\t%.3f\n", res.IPC)
	for i, ipc := range res.PerCore {
		fmt.Fprintf(tw, "core %d IPC\t%.3f\n", i, ipc)
	}
	for i, n := range res.Committed {
		fmt.Fprintf(tw, "thread %d committed\t%d\n", i, n)
	}
	fmt.Fprintf(tw, "flushes\t%d\n", res.Flushes)
	fmt.Fprintf(tw, "flushed instructions\t%d\n", res.Energy.FlushedTotal())
	fmt.Fprintf(tw, "wasted energy\t%.1f units (%.4f per commit)\n",
		res.WastedEnergy(), res.Energy.WastedPerCommit())
	h := res.HitLatency
	fmt.Fprintf(tw, "L2 hit time\tmean %.1f, p50 %d, p90 %d, max %d (n=%d)\n",
		h.Mean(), h.Percentile(0.5), h.Percentile(0.9), h.Max(), h.Count())
	tw.Flush()

	if *verbose {
		fmt.Println("\ncounters:")
		tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		for _, c := range res.Counters.All() {
			fmt.Fprintf(tw, "  %s\t%d\n", c.Name, c.Value)
		}
		tw.Flush()
	}
}
