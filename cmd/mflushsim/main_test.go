package main

import (
	"testing"

	"repro/internal/sim"
)

func TestParsePolicy(t *testing.T) {
	cases := map[string]sim.PolicySpec{
		"ICOUNT":    sim.SpecICOUNT,
		"icount":    sim.SpecICOUNT,
		"FLUSH-S30": sim.SpecFlushS(30),
		"fl-s100":   sim.SpecFlushS(100),
		"FLUSH-NS":  sim.SpecFlushNS,
		"fl-ns":     sim.SpecFlushNS,
		"STALL-S50": sim.SpecStallS(50),
		"MFLUSH":    sim.SpecMFLUSH,
		"mflush-h4": {Kind: sim.MFLUSH, History: 4},
	}
	for in, want := range cases {
		got, err := parsePolicy(in)
		if err != nil {
			t.Errorf("parsePolicy(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("parsePolicy(%q) = %+v, want %+v", in, got, want)
		}
	}
}

func TestParsePolicyErrors(t *testing.T) {
	for _, in := range []string{"", "FLUSH", "FLUSH-S", "FLUSH-S0", "FLUSH-Sx",
		"STALL-S-5", "MFLUSH-H0", "MFLUSH-Hx", "banana"} {
		if _, err := parsePolicy(in); err == nil {
			t.Errorf("parsePolicy(%q) accepted", in)
		}
	}
}
