// Command mflushd is the simulation-as-a-service daemon: it accepts
// campaign specs over HTTP, executes them on a shared bounded scheduler,
// and serves every result from a content-addressed cache persisted in a
// campaign store — identical jobs are simulated once, ever, across all
// clients and restarts.
//
// Usage:
//
//	mflushd [-addr :8080] [-store mflushd/results.jsonl] \
//	        [-workers N] [-max-queue N] [-max-campaigns N] [-drain-timeout 60s] \
//	        [-cluster] [-lease-ttl 15s] [-state-dir DIR] [-wal-compact N] \
//	        [-debug-addr 127.0.0.1:6060]
//
// The daemon is observable out of the box: GET /metrics serves the
// full registry (admission, campaigns, cache, SSE, fleet, WAL) in
// Prometheus text format and GET /dashboard serves an embedded live
// ops page — stat tiles, per-campaign interval-IPC sparklines fed by
// the SSE sample stream, the worker-fleet table and a campaign
// browser. -debug-addr additionally exposes net/http/pprof and expvar
// on a separate (typically loopback) listener.
//
// With -cluster the daemon also coordinates a worker fleet: mflushworker
// processes register over /v1/workers, lease jobs, and post results;
// uncached jobs route to the fleet whenever live workers exist and run
// locally otherwise. Leases of dead workers are re-issued after
// -lease-ttl, so a killed worker never loses work.
//
// With -state-dir the coordinator queue itself is durable: every
// enqueue, lease and acknowledgement is write-ahead-logged (fsynced)
// under the directory before it takes effect, and a restarted daemon
// replays the log — resuming the interrupted campaign where it stopped,
// with no job lost or double-counted. -wal-compact bounds the log's
// tail between snapshot compactions. Without -state-dir the queue is
// in-memory, exactly as before.
//
// SIGTERM (or SIGINT) drains gracefully: new submissions get 503,
// in-flight simulations finish and persist, then the daemon exits.
// API.md documents the endpoints; examples/client drives them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mflushd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	storePath := flag.String("store", "mflushd/results.jsonl",
		"content-addressed result store (JSONL; parent directory is created)")
	workers := flag.Int("workers", 0, "simulation parallelism across all campaigns (0: GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 1024, "max jobs admitted but unfinished before submissions get 429")
	maxCampaigns := flag.Int("max-campaigns", 1000, "settled campaigns retained for status/result queries")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second,
		"how long to wait for in-flight simulations on shutdown")
	clusterMode := flag.Bool("cluster", false,
		"coordinate an mflushworker fleet: serve /v1/workers and route jobs to live workers")
	leaseTTL := flag.Duration("lease-ttl", cluster.DefaultLeaseTTL,
		"drop fleet workers silent for this long and re-issue their leased jobs")
	stateDir := flag.String("state-dir", "",
		"directory for the durable coordinator queue (WAL + snapshot); requires -cluster; empty: in-memory queue")
	walCompact := flag.Int("wal-compact", cluster.DefaultCompactEvery,
		"WAL tail records between snapshot compactions (with -state-dir)")
	debugAddr := flag.String("debug-addr", "",
		"serve net/http/pprof and expvar on this private address (empty: disabled)")
	flag.Parse()

	if *stateDir != "" && !*clusterMode {
		return errors.New("-state-dir requires -cluster (only the coordinator queue has durable state)")
	}

	if dir := filepath.Dir(*storePath); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	store, err := campaign.OpenStore(*storePath)
	if err != nil {
		return err
	}
	defer store.Close()

	cfg := server.Config{
		Store:         store,
		Workers:       *workers,
		MaxQueuedJobs: *maxQueue,
		MaxCampaigns:  *maxCampaigns,
	}
	if *clusterMode {
		coord, err := cluster.OpenCoordinator(cluster.Config{
			LeaseTTL:     *leaseTTL,
			StateDir:     *stateDir,
			CompactEvery: *walCompact,
			// The store vouches for persisted results, letting WAL
			// compaction drop acknowledgements the store already holds.
			Persisted: func(key string) bool {
				_, ok := store.Get(key)
				return ok
			},
		})
		if err != nil {
			return err
		}
		defer coord.Close()
		cfg.Cluster = coord
		if rec := coord.Recovered(); len(rec.Jobs) > 0 || len(rec.Orphans) > 0 {
			log.Printf("mflushd: recovered queue from %s: %d jobs to resume (%d leases forfeited), %d acknowledged results to confirm",
				*stateDir, len(rec.Jobs), len(rec.Forfeited), len(rec.Orphans))
		}
	}
	srv := server.New(cfg)

	// An explicit listener (rather than ListenAndServe) pins down the
	// real address before the serving log line, so ":0" harnesses — the
	// crash matrix — can parse where the daemon actually landed.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}

	// The debug surface (pprof profiles, expvar) binds its own listener
	// so it can stay on localhost while /metrics and the API face the
	// fleet. It serves until the process exits; nothing on it holds
	// state that needs draining.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		log.Printf("mflushd: debug (pprof, expvar) on %s", dln.Addr())
		go func() {
			if err := http.Serve(dln, metrics.DebugHandler()); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("mflushd: debug server: %v", err)
			}
		}()
	}

	mode := "single-process"
	if *clusterMode {
		mode = fmt.Sprintf("cluster coordinator, lease TTL %s", *leaseTTL)
		if *stateDir != "" {
			mode += ", durable queue in " + *stateDir
		}
	}
	log.Printf("mflushd: serving on %s (store %s, %d cached results, %s)",
		ln.Addr(), *storePath, store.Len(), mode)

	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: reject new campaigns, let in-flight simulations
	// finish and persist, then close the listener and the store.
	log.Printf("mflushd: draining (up to %s) ...", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		// SSE streams and pollers may still be attached; closing them
		// forcibly after the drain is safe — all results are on disk.
		httpSrv.Close()
	}
	if drainErr != nil {
		log.Printf("mflushd: %v; exiting with jobs still in flight (%d results in store)",
			drainErr, store.Len())
		return nil
	}
	log.Printf("mflushd: drained; %d results in store", store.Len())
	return nil
}
