// Command mflushd is the simulation-as-a-service daemon: it accepts
// campaign specs over HTTP, executes them on a shared bounded scheduler,
// and serves every result from a content-addressed cache persisted in a
// campaign store — identical jobs are simulated once, ever, across all
// clients and restarts.
//
// Usage:
//
//	mflushd [-addr :8080] [-store mflushd/results.jsonl] \
//	        [-workers N] [-max-queue N] [-max-campaigns N] [-drain-timeout 60s] \
//	        [-cluster] [-lease-ttl 15s]
//
// With -cluster the daemon also coordinates a worker fleet: mflushworker
// processes register over /v1/workers, lease jobs, and post results;
// uncached jobs route to the fleet whenever live workers exist and run
// locally otherwise. Leases of dead workers are re-issued after
// -lease-ttl, so a killed worker never loses work.
//
// SIGTERM (or SIGINT) drains gracefully: new submissions get 503,
// in-flight simulations finish and persist, then the daemon exits.
// API.md documents the endpoints; examples/client drives them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "mflushd: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	storePath := flag.String("store", "mflushd/results.jsonl",
		"content-addressed result store (JSONL; parent directory is created)")
	workers := flag.Int("workers", 0, "simulation parallelism across all campaigns (0: GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 1024, "max jobs admitted but unfinished before submissions get 429")
	maxCampaigns := flag.Int("max-campaigns", 1000, "settled campaigns retained for status/result queries")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second,
		"how long to wait for in-flight simulations on shutdown")
	clusterMode := flag.Bool("cluster", false,
		"coordinate an mflushworker fleet: serve /v1/workers and route jobs to live workers")
	leaseTTL := flag.Duration("lease-ttl", cluster.DefaultLeaseTTL,
		"drop fleet workers silent for this long and re-issue their leased jobs")
	flag.Parse()

	if dir := filepath.Dir(*storePath); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	store, err := campaign.OpenStore(*storePath)
	if err != nil {
		return err
	}
	defer store.Close()

	cfg := server.Config{
		Store:         store,
		Workers:       *workers,
		MaxQueuedJobs: *maxQueue,
		MaxCampaigns:  *maxCampaigns,
	}
	if *clusterMode {
		coord := cluster.NewCoordinator(cluster.Config{LeaseTTL: *leaseTTL})
		defer coord.Close()
		cfg.Cluster = coord
	}
	srv := server.New(cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	mode := "single-process"
	if *clusterMode {
		mode = fmt.Sprintf("cluster coordinator, lease TTL %s", *leaseTTL)
	}
	log.Printf("mflushd: serving on %s (store %s, %d cached results, %s)",
		*addr, *storePath, store.Len(), mode)

	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: reject new campaigns, let in-flight simulations
	// finish and persist, then close the listener and the store.
	log.Printf("mflushd: draining (up to %s) ...", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		// SSE streams and pollers may still be attached; closing them
		// forcibly after the drain is safe — all results are on disk.
		httpSrv.Close()
	}
	if drainErr != nil {
		log.Printf("mflushd: %v; exiting with jobs still in flight (%d results in store)",
			drainErr, store.Len())
		return nil
	}
	log.Printf("mflushd: drained; %d results in store", store.Len())
	return nil
}
