package mflush

// One benchmark per table/figure of the paper's evaluation. Each runs the
// corresponding experiment harness at reduced (Quick) scale and reports
// the headline metric the paper states, so `go test -bench=.` regenerates
// the whole evaluation and prints the reproduced numbers:
//
//	BenchmarkFigure2...  speedup_avg_pct   (paper: +22, max +93)
//	BenchmarkFigure3...  speedup_4core_pct (paper: -9)
//	BenchmarkFigure4...  p90 growth        (paper: dispersion grows)
//	BenchmarkFigure5...  best-trigger IPC spread
//	BenchmarkFigure8...  mflush_vs_s100_pct (paper: ~-2)
//	BenchmarkFigure11... energy_saving_pct  (paper: ~+20)
//
// Full-scale numbers are recorded in EXPERIMENTS.md and regenerated with
// cmd/mflushbench.

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/metrics"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workload"
)

func benchConfig() experiments.Config { return experiments.Quick }

func BenchmarkFigure2SingleCoreFlush(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, avg, err := experiments.Figure2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		max := 0.0
		for _, r := range rows {
			if r.Speedup > max {
				max = r.Speedup
			}
		}
		b.ReportMetric(avg*100, "speedup_avg_pct")
		b.ReportMetric(max*100, "speedup_max_pct")
	}
}

func BenchmarkFigure3MulticoreTrend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].AvgSpeedup*100, "speedup_1core_pct")
		b.ReportMetric(rows[len(rows)-1].AvgSpeedup*100, "speedup_4core_pct")
	}
}

func BenchmarkFigure4HitTimeDispersion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Mean, "mean_1core_cycles")
		b.ReportMetric(rows[len(rows)-1].Mean, "mean_4core_cycles")
		b.ReportMetric(float64(rows[len(rows)-1].P90), "p90_4core_cycles")
		b.ReportMetric(rows[len(rows)-1].Frac20to70*100, "frac20to70_4core_pct")
	}
}

func BenchmarkFigure5TriggerSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Report the spread between the best and worst Detection Moment
		// on 8W3: a large spread is what makes the trigger choice
		// matter.
		best, worst := 0.0, 1e9
		for _, r := range rows {
			if r.Workload != "8W3" {
				continue
			}
			if r.IPC > best {
				best = r.IPC
			}
			if r.IPC < worst {
				worst = r.IPC
			}
		}
		b.ReportMetric((best/worst-1)*100, "trigger_spread_pct")
	}
}

func BenchmarkFigure8PolicyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		ic, s30, s100, mf := experiments.Figure8Averages(rows)
		b.ReportMetric((mf/s100-1)*100, "mflush_vs_s100_pct")
		b.ReportMetric((s30/ic-1)*100, "s30_vs_icount_pct")
		b.ReportMetric(mf, "mflush_avg_ipc")
	}
}

func BenchmarkFigure11WastedEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure11(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		_, _, _, saving := experiments.Figure11Averages(rows)
		b.ReportMetric(saving*100, "mflush_saving_vs_s100_pct")
	}
}

func BenchmarkAblationMCRegHistory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationMCRegHistory(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		// Report the deepest-history gain over the published design on
		// the contended workload.
		var h1, h8 float64
		for _, r := range rows {
			if r.Workload != "8W3" {
				continue
			}
			switch r.Variant {
			case "MCReg history 1":
				h1 = r.IPC
			case "MCReg history 8":
				h8 = r.IPC
			}
		}
		b.ReportMetric((h8/h1-1)*100, "history8_vs_1_pct")
	}
}

func BenchmarkAblationResponseAction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationResponseAction(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var stall, flush float64
		for _, r := range rows {
			if r.Workload != "2W3" {
				continue
			}
			switch r.Variant {
			case "STALL-S30":
				stall = r.IPC
			case "FLUSH-S30":
				flush = r.IPC
			}
		}
		b.ReportMetric((flush/stall-1)*100, "flush_vs_stall_pct")
	}
}

func BenchmarkAblationMSHR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationMSHR(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].IPC, "mshr4_ipc")
		b.ReportMetric(rows[len(rows)-1].IPC, "mshr32_ipc")
	}
}

func BenchmarkAblationRegReserve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationRegReserve(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		var shared, partitioned float64
		for _, r := range rows {
			switch r.Variant {
			case "ICOUNT reserve 0":
				shared = r.IPC
			case "ICOUNT reserve 96":
				partitioned = r.IPC
			}
		}
		b.ReportMetric((partitioned/shared-1)*100, "partition_vs_shared_pct")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// cycles per wall-clock second for the 4-core machine.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, _ := workload.ByName("8W3")
	const cycles = 20000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Options{
			Workload: w, Policy: sim.SpecMFLUSH,
			Cycles: cycles, Seed: uint64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cycles*b.N)/b.Elapsed().Seconds(), "sim_cycles/s")
}

// BenchmarkGangCyclesPerSec measures aggregate gang throughput:
// simulated cycles per wall-clock second summed over a width-4 policy
// sweep (the four paper policies over one workload and seed) run as one
// lockstep GangSession. Compare against BenchmarkSimulatorThroughput
// × width for the solo aggregate: gang gains come from shared
// instruction synthesis and prewarm planning on any machine, plus
// member-parallel stepping when GOMAXPROCS allows.
func BenchmarkGangCyclesPerSec(b *testing.B) {
	w, _ := workload.ByName("8W3")
	const cycles = 20000
	policies := []sim.PolicySpec{sim.SpecICOUNT, sim.SpecFlushNS, sim.SpecFlushS(30), sim.SpecMFLUSH}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := make([]sim.Options, len(policies))
		for m, p := range policies {
			opts[m] = sim.Options{
				Workload: w, Policy: p,
				Cycles: cycles, Seed: uint64(i + 1),
			}
		}
		if _, err := sim.RunGang(opts); err != nil {
			b.Fatal(err)
		}
	}
	agg := float64(cycles) * float64(len(policies)) * float64(b.N)
	b.ReportMetric(agg/b.Elapsed().Seconds(), "sim_cycles/s")
	b.ReportMetric(float64(len(policies)), "gang_width")
}

// BenchmarkSingleCoreSim measures the single-core configuration.
func BenchmarkSingleCoreSim(b *testing.B) {
	w, _ := workload.ByName("2W1")
	const cycles = 20000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Options{
			Workload: w, Policy: sim.SpecICOUNT,
			Cycles: cycles, Seed: uint64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cycles*b.N)/b.Elapsed().Seconds(), "sim_cycles/s")
}

// BenchmarkMetricsUpdate measures the per-sample cost of the metric
// update paths a running simulation hits — a counter bump, a gauge set
// and a histogram observation. It must stay allocation-free: updates
// run on simulating goroutines at interval-sample rate.
func BenchmarkMetricsUpdate(b *testing.B) {
	r := metrics.NewRegistry()
	c := r.Counter("mflush_bench_events_total", "bench")
	g := r.Gauge("mflush_bench_depth", "bench")
	h := r.Histogram("mflush_bench_latency_seconds", "bench", metrics.DefBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(float64(i))
		h.Observe(float64(i%1000) / 1e6)
	}
}

// BenchmarkMetricsScrape measures a full /metrics exposition pass over
// a registry the size of the daemon's (a few dozen families, labeled
// children, histograms). The write path reuses one scratch buffer, so
// allocations must stay O(1) — independent of scrape count and family
// count — and a scrape must stay cheap enough to run every few seconds
// against a live fleet.
func BenchmarkMetricsScrape(b *testing.B) {
	r := metrics.NewRegistry()
	for i := 0; i < 30; i++ {
		name := fmt.Sprintf("mflush_bench_family_%02d", i)
		switch i % 3 {
		case 0:
			r.Counter(name+"_total", "bench").Add(uint64(i))
		case 1:
			v := r.GaugeVec(name, "bench", "worker")
			for j := 0; j < 4; j++ {
				v.WithLabelValues(fmt.Sprintf("w%d", j)).Set(float64(j))
			}
		default:
			h := r.Histogram(name+"_seconds", "bench", metrics.DefBuckets)
			for j := 0; j < 100; j++ {
				h.Observe(float64(j) / 1e3)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.WriteTo(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
