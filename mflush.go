// Package mflush is the public API of the MFLUSH reproduction: a
// trace-driven cycle-level simulator of chip multiprocessors built from
// SMT cores sharing a banked L2 cache, together with the instruction-fetch
// policies the paper studies (ICOUNT, FLUSH, STALL) and its contribution,
// the adaptive MFLUSH policy.
//
// Reproduces: Acosta, Cazorla, Ramirez, Valero — "MFLUSH: Handling
// Long-latency loads in SMT On-Chip Multiprocessors", ICPP 2008.
//
// Quickstart:
//
//	w, _ := mflush.WorkloadByName("2W3") // mcf + gzip
//	res, err := mflush.Run(mflush.Options{
//		Workload: w,
//		Policy:   mflush.MFLUSH,
//		Warmup:   300_000,
//		Cycles:   200_000,
//	})
//	fmt.Println(res.IPC)
//
// The experiment harnesses behind every figure of the paper live in
// Figure2..Figure11; cmd/mflushbench renders them as text tables.
package mflush

import (
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/workload"
)

// Options configures one simulation run. See sim.Options.
type Options = sim.Options

// Result is the outcome of one run. See sim.Result.
type Result = sim.Result

// Session is an open, incrementally steppable simulation: advance it
// with Step, observe it with Snapshot and Observe, close it with
// Finish. See sim.Session.
type Session = sim.Session

// Sample is the cheap interval digest a Session exposes while running.
// See sim.Sample.
type Sample = sim.Sample

// SamplePoint is the retainable, serialisable form of a Sample. See
// sim.SamplePoint.
type SamplePoint = sim.SamplePoint

// Probe is a periodic observer registered with Session.Observe. See
// sim.Probe for the firing and no-mutation invariants.
type Probe = sim.Probe

// GangSession steps N variant simulations in lockstep over shared
// immutable inputs, bit-identical to N solo Sessions. See
// sim.GangSession.
type GangSession = sim.GangSession

// Recorder collects a probe's firings into a SamplePoint time series.
// See sim.Recorder.
type Recorder = sim.Recorder

// PolicySpec selects an IFetch policy.
type PolicySpec = sim.PolicySpec

// Workload is a named set of benchmark instances, one per hardware thread.
type Workload = workload.Workload

// Profile is a synthetic benchmark description.
type Profile = synth.Profile

// ExperimentConfig scales the figure harnesses.
type ExperimentConfig = experiments.Config

// Common policy specifications.
var (
	// ICOUNT is the baseline fetch policy (Tullsen et al., ISCA'96).
	ICOUNT = sim.SpecICOUNT
	// FlushNS is non-speculative FLUSH (trigger on detected L2 miss).
	FlushNS = sim.SpecFlushNS
	// MFLUSH is the paper's adaptive policy.
	MFLUSH = sim.SpecMFLUSH
)

// FlushS returns speculative FLUSH with the given delay-after-issue
// trigger in cycles (the paper's FLUSH-SX).
func FlushS(trigger int) PolicySpec { return sim.SpecFlushS(trigger) }

// StallS returns the STALL policy with the given trigger.
func StallS(trigger int) PolicySpec { return sim.SpecStallS(trigger) }

// MFLUSHHistory returns MFLUSH with a deeper MCReg history (the paper's
// optional configuration; 1 is the published single-register design).
func MFLUSHHistory(depth int) PolicySpec {
	return sim.PolicySpec{Kind: sim.MFLUSH, History: depth}
}

// Run executes one simulation to completion (a thin wrapper over the
// Session API; see sim.Run).
func Run(opt Options) (*Result, error) { return sim.Run(opt) }

// Open starts an incremental simulation session positioned at cycle
// zero: the steppable, observable form of Run.
func Open(opt Options) (*Session, error) { return sim.Open(opt) }

// OpenGang starts a lockstep gang of sessions, one per Options, sharing
// instruction streams and prewarm plans across members where the inputs
// coincide. Results are bit-identical to opening each member solo.
func OpenGang(opts []Options) (*GangSession, error) { return sim.OpenGang(opts) }

// RunGang executes a gang to completion: warm-up, measurement reset and
// cycle budget applied to all members in lockstep, returning one Result
// per member — each bit-identical to what Run would have produced.
func RunGang(opts []Options) ([]*Result, error) { return sim.RunGang(opts) }

// Speedup returns a's throughput gain over b as a fraction.
func Speedup(a, b *Result) float64 { return sim.Speedup(a, b) }

// DefaultConfig returns the paper's Figure 1 machine with the given core
// count (each core has two hardware contexts).
func DefaultConfig(cores int) config.Config { return config.Default(cores) }

// Workloads returns the paper's 20 Figure 1 workloads.
func Workloads() []Workload { return workload.All() }

// WorkloadByName resolves an xWy workload name.
func WorkloadByName(name string) (Workload, bool) { return workload.ByName(name) }

// WorkloadsOfSize returns the five workloads with the given thread count
// (2, 4, 6 or 8).
func WorkloadsOfSize(threads int) []Workload { return workload.OfSize(threads) }

// BenchmarkProfiles returns the 26 synthetic SPEC2000 benchmark profiles.
func BenchmarkProfiles() []Profile { return synth.Profiles() }

// OperationalEnvironment returns the MFLUSH thresholds (MIN, MAX, MT,
// suspicious, Barrier behaviour) for a machine with the given core count.
func OperationalEnvironment(cores int) core.OperationalEnvironment {
	cfg := config.Default(cores)
	return core.EnvironmentFor(&cfg)
}

// Experiment harness re-exports: each reproduces the corresponding paper
// figure. See EXPERIMENTS.md for paper-vs-measured results.
var (
	DefaultExperiments = experiments.Default
	QuickExperiments   = experiments.Quick
)

// Figure2 runs the single-core ICOUNT vs FLUSH-S30 comparison and returns
// the per-workload rows plus the mean speedup.
func Figure2(cfg ExperimentConfig) ([]experiments.Figure2Row, float64, error) {
	return experiments.Figure2(cfg)
}

// Figure3 runs the multicore FLUSH-degradation analysis.
func Figure3(cfg ExperimentConfig) ([]experiments.Figure3Row, error) {
	return experiments.Figure3(cfg)
}

// Figure4 measures the L2 hit-time distributions per machine size.
func Figure4(cfg ExperimentConfig) ([]experiments.Figure4Row, error) {
	return experiments.Figure4(cfg)
}

// Figure5 sweeps the FLUSH Detection Moment on the paper's two example
// workloads.
func Figure5(cfg ExperimentConfig) ([]experiments.Figure5Row, error) {
	return experiments.Figure5(cfg)
}

// Figure8 runs the four-policy throughput evaluation on all multicore
// workloads.
func Figure8(cfg ExperimentConfig) ([]experiments.Figure8Row, error) {
	return experiments.Figure8(cfg)
}

// Figure11 runs the wasted-energy evaluation.
func Figure11(cfg ExperimentConfig) ([]experiments.Figure11Row, error) {
	return experiments.Figure11(cfg)
}
