GO ?= go

.PHONY: build test shorttest racetest vet bench bench-throughput

build:
	$(GO) build ./...

test:
	$(GO) test ./...

shorttest:
	$(GO) test -short ./...

# Race-checks the campaign scheduler's concurrency (mirrors the CI job).
racetest:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# Full evaluation benchmarks: every figure's headline metric plus raw
# simulator throughput.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Just the simulator speed benchmarks (the PERFORMANCE numbers in
# README.md).
bench-throughput:
	$(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput|BenchmarkSingleCoreSim' -benchmem -benchtime 5x .
