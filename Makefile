GO ?= go

.PHONY: build test shorttest racetest vet bench bench-throughput docscheck fuzzsmoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

shorttest:
	$(GO) test -short ./...

# Race-checks the campaign scheduler, the daemon's submit/cancel/SSE
# churn and the cluster coordinator/worker concurrency (mirrors the CI
# race job, which runs all of these on every push).
racetest:
	$(GO) test -race -short ./...

# Fuzz smoke: run each native fuzz target briefly (the seed corpora are
# also exercised as plain tests on every `make test`). Mirrors the CI
# fuzz job.
fuzzsmoke:
	$(GO) test -run '^$$' -fuzz FuzzParseSpec -fuzztime 10s ./internal/sim
	$(GO) test -run '^$$' -fuzz FuzzReadSpec -fuzztime 10s ./internal/campaign

vet:
	$(GO) vet ./...

# Documentation checks: markdown links in README/CAMPAIGNS/ARCHITECTURE/
# API resolve, and every exported identifier in internal/server and
# internal/campaign has a doc comment (mirrors the CI docs job).
docscheck:
	$(GO) test ./internal/docs/

# Full evaluation benchmarks: every figure's headline metric plus raw
# simulator throughput.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Just the simulator speed benchmarks (the PERFORMANCE numbers in
# README.md).
bench-throughput:
	$(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput|BenchmarkSingleCoreSim' -benchmem -benchtime 5x .
