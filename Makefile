GO ?= go

.PHONY: build test shorttest racetest vet bench bench-throughput docscheck

build:
	$(GO) build ./...

test:
	$(GO) test ./...

shorttest:
	$(GO) test -short ./...

# Race-checks the campaign scheduler's concurrency (mirrors the CI job).
racetest:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# Documentation checks: markdown links in README/CAMPAIGNS/ARCHITECTURE/
# API resolve, and every exported identifier in internal/server and
# internal/campaign has a doc comment (mirrors the CI docs job).
docscheck:
	$(GO) test ./internal/docs/

# Full evaluation benchmarks: every figure's headline metric plus raw
# simulator throughput.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Just the simulator speed benchmarks (the PERFORMANCE numbers in
# README.md).
bench-throughput:
	$(GO) test -run '^$$' -bench 'BenchmarkSimulatorThroughput|BenchmarkSingleCoreSim' -benchmem -benchtime 5x .
