GO ?= go

.PHONY: build test shorttest racetest vet lint bench bench-throughput benchbaseline benchcmp docscheck metricscheck fuzzsmoke crashtest

# The hot-path benchmarks benchcmp tracks, and where their runs live.
# The metrics pair guards the observability overhead: per-sample updates
# must stay allocation-free and a full /metrics scrape O(1)-alloc.
BENCH_PATTERN := BenchmarkSimulatorThroughput|BenchmarkGangCyclesPerSec|BenchmarkSingleCoreSim|BenchmarkMetricsUpdate|BenchmarkMetricsScrape
BENCH_BASELINE := bench/baseline.txt
BENCH_CURRENT := bench/current.txt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

shorttest:
	$(GO) test -short ./...

# Race-checks the campaign scheduler, the daemon's submit/cancel/SSE
# churn and the cluster coordinator/worker concurrency (mirrors the CI
# race job, which runs all of these on every push).
racetest:
	$(GO) test -race -short ./...

# Fuzz smoke: run each native fuzz target briefly (the seed corpora are
# also exercised as plain tests on every `make test`). Mirrors the CI
# fuzz job.
fuzzsmoke:
	$(GO) test -run '^$$' -fuzz FuzzParseSpec -fuzztime 10s ./internal/sim
	$(GO) test -run '^$$' -fuzz FuzzReadSpec -fuzztime 10s ./internal/campaign
	$(GO) test -run '^$$' -fuzz FuzzGangGrouping -fuzztime 10s ./internal/campaign
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime 10s ./internal/cluster
	$(GO) test -run '^$$' -fuzz FuzzScenarioBinary -fuzztime 10s ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzScenarioJSONL -fuzztime 10s ./internal/trace

# Crash matrix: build the real mflushd with fault injection compiled in
# (-tags faultpoint), SIGKILL it at each WAL/lease faultpoint mid-
# campaign, restart on the same state directory, and require the resumed
# run to converge byte-identically. Also unit-tests the faultpoint
# package itself, which is a no-op without the tag.
crashtest:
	$(GO) test -tags faultpoint ./internal/faultpoint
	$(GO) test -tags faultpoint -count=1 ./internal/crashtest

vet:
	$(GO) vet ./...

# Project lint: the five custom analyzers (determinism, hotpath,
# keyhash, lockorder, errwrap) plus the //mflush: annotation self-check,
# with stock `go vet` folded in — so this is a superset of `make vet`
# and the one lint entry point CI runs. See ARCHITECTURE.md "Static
# analysis" for what each analyzer enforces.
lint:
	$(GO) run ./cmd/mflushvet ./...

# Documentation checks: markdown links in README/CAMPAIGNS/ARCHITECTURE/
# API resolve, and every exported identifier in internal/server and
# internal/campaign has a doc comment (mirrors the CI docs job).
docscheck:
	$(GO) test ./internal/docs/

# Metrics naming and documentation lint: every metric any binary
# registers is strict snake_case with the mflush_ prefix and appears in
# API.md's Observability tables (and vice versa). Also part of
# docscheck; this target runs just the metric lint.
metricscheck:
	$(GO) test -run TestMetricNamesConform ./internal/docs/

# Full evaluation benchmarks: every figure's headline metric plus raw
# simulator throughput.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Just the simulator speed benchmarks (the PERFORMANCE numbers in
# README.md).
bench-throughput:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime 5x .

# Re-record the committed hot-path baseline that benchcmp diffs against.
# Run it when a PR intentionally moves simulator performance.
benchbaseline:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime 3x -count 6 . | tee $(BENCH_BASELINE)

# Compare the current hot path against the committed baseline. A CI job
# runs this as a non-blocking report, so the cycle-loop cost of any
# refactor (like the Session layer) is visible on every PR. benchstat
# renders a statistical comparison when installed; without it the two
# raw runs are printed side by side (absolute numbers are machine-
# dependent — compare deltas, not values, unless the baseline was
# recorded on the same machine).
benchcmp:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime 3x -count 6 . | tee $(BENCH_CURRENT)
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(BENCH_BASELINE) $(BENCH_CURRENT); \
	else \
		echo "== benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest)"; \
		echo "== raw baseline ($(BENCH_BASELINE)):"; cat $(BENCH_BASELINE); \
		echo "== raw current ($(BENCH_CURRENT)):"; cat $(BENCH_CURRENT); \
	fi
