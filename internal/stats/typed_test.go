package stats

import "testing"

// Test-local registered counters. Registration is global and permanent,
// so these names are namespaced to the test.
var (
	tidA = MustRegister("test.typed.a")
	tidB = MustRegister("test.typed.b")
)

func TestMustRegisterIdempotent(t *testing.T) {
	if again := MustRegister("test.typed.a"); again != tidA {
		t.Fatalf("re-registration returned %d, want %d", again, tidA)
	}
	if tidA == tidB {
		t.Fatal("distinct names share an ID")
	}
}

func TestBumpAndIncInterchangeable(t *testing.T) {
	var s Set
	s.Bump(tidA, 3)
	s.Inc("test.typed.a", 2) // registered name routes to the same slot
	if got := s.Get("test.typed.a"); got != 5 {
		t.Fatalf("Get = %d, want 5", got)
	}
	s.Inc("test.typed.adhoc", 7) // unregistered names still work
	if got := s.Get("test.typed.adhoc"); got != 7 {
		t.Fatalf("ad-hoc Get = %d, want 7", got)
	}
}

func TestTypedMerge(t *testing.T) {
	var a, b Set
	a.Bump(tidA, 1)
	b.Bump(tidA, 2)
	b.Bump(tidB, 4)
	b.Inc("test.typed.adhoc", 8)
	a.Merge(&b)
	if got := a.Get("test.typed.a"); got != 3 {
		t.Fatalf("merged a = %d, want 3", got)
	}
	if got := a.Get("test.typed.b"); got != 4 {
		t.Fatalf("merged b = %d, want 4", got)
	}
	if got := a.Get("test.typed.adhoc"); got != 8 {
		t.Fatalf("merged ad-hoc = %d, want 8", got)
	}
}

func TestAllSkipsZeroRegistered(t *testing.T) {
	var s Set
	s.Bump(tidA, 0) // grows the dense array but records nothing
	s.Bump(tidB, 9)
	for _, c := range s.All() {
		if c.Name == "test.typed.a" {
			t.Fatal("zero-valued registered counter reported")
		}
	}
	found := false
	for _, c := range s.All() {
		if c.Name == "test.typed.b" && c.Value == 9 {
			found = true
		}
	}
	if !found {
		t.Fatal("non-zero registered counter missing from All()")
	}
}

func TestZeroValueSetBump(t *testing.T) {
	var s Set
	s.Bump(tidB, 1) // must not panic on the zero value
	if got := s.Get("test.typed.b"); got != 1 {
		t.Fatalf("Get = %d, want 1", got)
	}
}
