package stats

import "math"

// Variance returns the sample variance of xs (n-1 denominator), 0 for
// fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs. math.Sqrt is
// correctly rounded per IEEE 754, so — unlike Log/Exp, which this package
// hand-rolls — it is bit-identical across platforms and safe for
// deterministic output.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// tTable holds two-sided 95% Student-t critical values for 1..30 degrees
// of freedom.
var tTable = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCrit returns the two-sided 95% Student-t critical value: exact table
// entries through df=30, then the first-order Cornish-Fisher expansion
// t ≈ z + (z³+z)/(4·df), which stays within ~0.2% of the true quantile
// (df=31: 2.0365 vs 2.0395) and decays smoothly to z — no discontinuous
// interval shrink when a seed is added past the table.
func tCrit(df int) float64 {
	if df <= len(tTable) {
		return tTable[df-1]
	}
	const z = 1.959964
	return z + (z*z*z+z)/(4*float64(df))
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// of xs, using the Student-t critical value for the sample size. Campaign
// cells report mean ± CI95 across seeds. Fewer than two samples have no
// dispersion estimate and return 0.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return tCrit(n-1) * StdDev(xs) / math.Sqrt(float64(n))
}
