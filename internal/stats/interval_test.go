package stats

import (
	"math"
	"testing"
)

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); math.Abs(got-4.571428571428571) > 1e-12 {
		t.Fatalf("Variance = %v", got)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(4.571428571428571)) > 1e-12 {
		t.Fatalf("StdDev = %v", got)
	}
	if Variance([]float64{5}) != 0 || StdDev(nil) != 0 {
		t.Fatal("degenerate inputs should have zero dispersion")
	}
}

func TestCI95(t *testing.T) {
	// Three samples: df=2, t=4.303, s=1, CI = 4.303/sqrt(3).
	xs := []float64{1, 2, 3}
	want := 4.303 * 1.0 / math.Sqrt(3)
	if got := CI95(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", got, want)
	}
	if CI95([]float64{7}) != 0 {
		t.Fatal("single sample should have no interval")
	}
	// Large n uses the Cornish-Fisher t approximation.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i % 2)
	}
	s := StdDev(big)
	want = tCrit(99) * s / 10
	if got := CI95(big); math.Abs(got-want) > 1e-12 {
		t.Fatalf("large-n CI95 = %v, want %v", got, want)
	}
}

func TestTCrit(t *testing.T) {
	// Spot-check the approximation against published quantiles.
	for _, c := range []struct {
		df   int
		want float64
	}{{31, 2.0395}, {40, 2.0211}, {60, 2.0003}, {120, 1.9799}} {
		got := tCrit(c.df)
		if math.Abs(got-c.want)/c.want > 0.002 {
			t.Errorf("tCrit(%d) = %v, want ~%v", c.df, got, c.want)
		}
	}
	// No discontinuity at the table edge, and monotone decreasing.
	for df := 2; df <= 200; df++ {
		if tCrit(df) >= tCrit(df-1) {
			t.Fatalf("tCrit not decreasing at df=%d: %v >= %v",
				df, tCrit(df), tCrit(df-1))
		}
	}
	if tCrit(10000) < 1.959 || tCrit(10000) > 1.961 {
		t.Fatalf("tCrit tail = %v, want ~z", tCrit(10000))
	}
}
