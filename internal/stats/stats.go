// Package stats provides the measurement primitives used by the simulator:
// scalar counters, latency histograms (for the paper's Figure 4 L2 hit-time
// analysis) and small aggregation helpers.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Histogram accumulates integer samples (cycle latencies) into exact
// per-value counts up to a bound, with an overflow bucket beyond it. It
// supports the percentile and banding queries the Figure 4 analysis needs.
type Histogram struct {
	counts   []uint64
	overflow uint64
	total    uint64
	sum      uint64
	min, max int
}

// NewHistogram returns a histogram with exact buckets for values in
// [0, bound); larger samples land in the overflow bucket (counted with
// value bound for the mean).
func NewHistogram(bound int) *Histogram {
	if bound <= 0 {
		panic("stats: histogram bound must be positive")
	}
	return &Histogram{counts: make([]uint64, bound), min: -1, max: -1}
}

// Add records one sample. Negative samples panic: latencies cannot be
// negative and a negative value always indicates a simulator bug.
func (h *Histogram) Add(v int) {
	if v < 0 {
		panic(fmt.Sprintf("stats: negative sample %d", v))
	}
	h.total++
	if v >= len(h.counts) {
		h.overflow++
		h.sum += uint64(len(h.counts))
	} else {
		h.counts[v]++
		h.sum += uint64(v)
	}
	if h.min == -1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.total }

// Overflow returns the number of samples beyond the exact range.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Mean returns the average sample (overflow samples are clamped to the
// bound, making the mean a lower bound in the presence of overflow).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Min and Max return the extreme recorded samples, or -1 when empty.
func (h *Histogram) Min() int { return h.min }

// Max returns the largest recorded sample, or -1 when empty.
func (h *Histogram) Max() int { return h.max }

// Percentile returns the smallest value v such that at least p (0..1) of
// the samples are <= v. Overflow samples are treated as the bound.
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	need := uint64(p * float64(h.total))
	if need == 0 {
		need = 1
	}
	var cum uint64
	for v, c := range h.counts {
		cum += c
		if cum >= need {
			return v
		}
	}
	return len(h.counts)
}

// FracBetween returns the fraction of samples in [lo, hi).
func (h *Histogram) FracBetween(lo, hi int) float64 {
	if h.total == 0 {
		return 0
	}
	if lo < 0 {
		lo = 0
	}
	if hi > len(h.counts) {
		hi = len(h.counts)
	}
	var n uint64
	for v := lo; v < hi; v++ {
		n += h.counts[v]
	}
	return float64(n) / float64(h.total)
}

// Buckets returns counts re-binned into equal-width bins of the given
// width, plus the overflow count. Used to print Figure 4-style
// distributions.
func (h *Histogram) Buckets(width int) ([]uint64, uint64) {
	if width <= 0 {
		panic("stats: bucket width must be positive")
	}
	n := (len(h.counts) + width - 1) / width
	out := make([]uint64, n)
	for v, c := range h.counts {
		out[v/width] += c
	}
	return out, h.overflow
}

// Merge adds all samples of other into h. The histograms must have the
// same bound.
func (h *Histogram) Merge(other *Histogram) {
	if len(h.counts) != len(other.counts) {
		panic("stats: merging histograms with different bounds")
	}
	for v, c := range other.counts {
		h.counts[v] += c
	}
	h.overflow += other.overflow
	h.total += other.total
	h.sum += other.sum
	if other.total > 0 {
		if h.min == -1 || (other.min != -1 && other.min < h.min) {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// String renders a compact summary for debugging.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f min=%d p50=%d p90=%d max=%d overflow=%d",
		h.total, h.Mean(), h.min, h.Percentile(0.5), h.Percentile(0.9), h.max, h.overflow)
}

// Counter is a named monotonically increasing counter.
type Counter struct {
	Name  string
	Value uint64
}

// CounterID is a dense index into a Set's typed counter array. IDs are
// allocated by MustRegister; Bump(id, delta) is a bounds-checked array add,
// so per-cycle simulator code pays no string hashing.
type CounterID int32

var (
	registryMu    sync.RWMutex
	registryNames []string
	registryIDs   = make(map[string]CounterID)
)

// MustRegister allocates (or returns the existing) CounterID for name.
// Registration normally runs from package-level var initialisers, but the
// registry is fully locked so late registration (tests, new subsystems)
// stays safe alongside concurrent simulations.
func MustRegister(name string) CounterID {
	registryMu.Lock()
	defer registryMu.Unlock()
	if id, ok := registryIDs[name]; ok {
		return id
	}
	id := CounterID(len(registryNames))
	registryNames = append(registryNames, name)
	registryIDs[name] = id
	return id
}

// idOf resolves a registered name under the read lock. Only the name-based
// API pays this; Bump never touches the registry once the array is grown.
func idOf(name string) (CounterID, bool) {
	registryMu.RLock()
	id, ok := registryIDs[name]
	registryMu.RUnlock()
	return id, ok
}

// nameOf returns the registered name for id.
func nameOf(id int) string {
	registryMu.RLock()
	n := registryNames[id]
	registryMu.RUnlock()
	return n
}

// Set is a collection of named counters. The zero value is ready to use.
// Counters registered through MustRegister live in a dense array indexed
// by CounterID; names incremented only through Inc fall back to a map, so
// the name-based reporting API keeps working for ad-hoc counters.
type Set struct {
	dense []uint64
	order []string
	vals  map[string]uint64
}

// Bump adds delta to the registered counter. This is the hot-path
// increment: one bounds check and one add once the array is grown.
func (s *Set) Bump(id CounterID, delta uint64) {
	if int(id) >= len(s.dense) {
		s.growDense()
	}
	s.dense[id] += delta
}

// growDense sizes the dense array to the current registry. Out-of-line so
// Bump stays inlinable.
func (s *Set) growDense() {
	registryMu.RLock()
	n := len(registryNames)
	registryMu.RUnlock()
	grown := make([]uint64, n)
	copy(grown, s.dense)
	s.dense = grown
}

// Inc adds delta to the named counter, creating it on first use.
// Registered names route to their dense slot; Inc(name) and Bump(id) of
// the same counter are interchangeable.
func (s *Set) Inc(name string, delta uint64) {
	if id, ok := idOf(name); ok {
		s.Bump(id, delta)
		return
	}
	if s.vals == nil {
		s.vals = make(map[string]uint64)
	}
	if _, ok := s.vals[name]; !ok {
		s.order = append(s.order, name)
	}
	s.vals[name] += delta
}

// Value returns the registered counter's value without consulting the
// name registry: one bounds check and one array read, so samplers that
// poll counters every few cycles pay no lock or hash.
func (s *Set) Value(id CounterID) uint64 {
	if int(id) < len(s.dense) {
		return s.dense[id]
	}
	return 0
}

// Get returns the counter value (zero if never incremented).
func (s *Set) Get(name string) uint64 {
	if id, ok := idOf(name); ok {
		if int(id) < len(s.dense) {
			return s.dense[id]
		}
		return 0
	}
	return s.vals[name]
}

// All returns the counters: registered counters with non-zero values in
// registration order, then ad-hoc counters in insertion order.
func (s *Set) All() []Counter {
	out := make([]Counter, 0, len(s.dense)+len(s.order))
	for id, v := range s.dense {
		if v != 0 {
			out = append(out, Counter{Name: nameOf(id), Value: v})
		}
	}
	for _, n := range s.order {
		out = append(out, Counter{Name: n, Value: s.vals[n]})
	}
	return out
}

// Merge adds all counters from other into s.
func (s *Set) Merge(other *Set) {
	if len(other.dense) > len(s.dense) {
		s.growDense()
	}
	for id, v := range other.dense {
		s.dense[id] += v
	}
	for _, n := range other.order {
		s.Inc(n, other.vals[n])
	}
}

// String renders "name=value" pairs sorted by name, for stable test output.
func (s *Set) String() string {
	all := s.All()
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	parts := make([]string, 0, len(all))
	for _, c := range all {
		parts = append(parts, fmt.Sprintf("%s=%d", c.Name, c.Value))
	}
	return strings.Join(parts, " ")
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, which must all be positive.
// Speedup ratios are conventionally aggregated geometrically.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Multiply with periodic renormalisation to avoid overflow.
	prod := 1.0
	n := 0
	scale := 0 // power-of-2 exponent factored out
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean needs positive inputs")
		}
		prod *= x
		n++
		for prod > 1e100 {
			prod /= 1e100
			scale += 100 // decimal exponent units of 1e100
		}
		for prod < 1e-100 {
			prod *= 1e100
			scale -= 100
		}
	}
	// prod * 10^scale, take the n-th root: exp((ln prod + scale ln10)/n)
	return expApprox((lnApprox(prod) + float64(scale)*2.302585092994046) / float64(n))
}

// lnApprox and expApprox mirror the helpers in internal/rng; duplicated here
// (a dozen lines each) to keep stats dependency-free.
func lnApprox(x float64) float64 {
	if x <= 0 {
		panic("stats: ln domain")
	}
	const ln2 = 0.6931471805599453
	k := 0
	for x > 1.5 {
		x /= 2
		k++
	}
	for x < 0.75 {
		x *= 2
		k--
	}
	t := (x - 1) / (x + 1)
	t2 := t * t
	sum, term := 0.0, t
	for i := 1; i < 40; i += 2 {
		sum += term / float64(i)
		term *= t2
	}
	return 2*sum + float64(k)*ln2
}

func expApprox(y float64) float64 {
	const ln2 = 0.6931471805599453
	neg := y < 0
	if neg {
		y = -y
	}
	k := int(y / ln2)
	r := y - float64(k)*ln2
	term, sum := 1.0, 1.0
	for i := 1; i < 20; i++ {
		term *= r / float64(i)
		sum += term
	}
	for i := 0; i < k; i++ {
		sum *= 2
	}
	if neg {
		return 1 / sum
	}
	return sum
}
