package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(100)
	for _, v := range []int{10, 20, 20, 30} {
		h.Add(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); got != 20 {
		t.Fatalf("mean = %v, want 20", got)
	}
	if h.Min() != 10 || h.Max() != 30 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram(10)
	h.Add(5)
	h.Add(100)
	if h.Overflow() != 1 {
		t.Fatalf("overflow = %d", h.Overflow())
	}
	// Overflow clamps to the bound for the mean: (5+10)/2.
	if got := h.Mean(); got != 7.5 {
		t.Fatalf("mean = %v, want 7.5", got)
	}
	if h.Percentile(1.0) != 10 {
		t.Fatalf("p100 = %d, want bound", h.Percentile(1.0))
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(1000)
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	if got := h.Percentile(0.5); got != 50 {
		t.Fatalf("p50 = %d, want 50", got)
	}
	if got := h.Percentile(0.9); got != 90 {
		t.Fatalf("p90 = %d, want 90", got)
	}
	if got := h.Percentile(0.01); got != 1 {
		t.Fatalf("p1 = %d, want 1", got)
	}
	// Clamping of out-of-range p.
	if h.Percentile(-1) != 1 || h.Percentile(2) != 100 {
		t.Fatal("percentile clamping broken")
	}
}

func TestHistogramFracBetween(t *testing.T) {
	h := NewHistogram(100)
	for v := 0; v < 100; v++ {
		h.Add(v)
	}
	if got := h.FracBetween(20, 70); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("frac[20,70) = %v, want 0.5", got)
	}
	if got := h.FracBetween(-5, 200); got != 1 {
		t.Fatalf("clamped full range frac = %v, want 1", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(100)
	h.Add(0)
	h.Add(9)
	h.Add(10)
	h.Add(95)
	h.Add(200) // overflow
	buckets, over := h.Buckets(10)
	if len(buckets) != 10 {
		t.Fatalf("bucket count = %d", len(buckets))
	}
	if buckets[0] != 2 || buckets[1] != 1 || buckets[9] != 1 {
		t.Fatalf("buckets = %v", buckets)
	}
	if over != 1 {
		t.Fatalf("overflow = %d", over)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(50)
	b := NewHistogram(50)
	a.Add(1)
	a.Add(2)
	b.Add(40)
	b.Add(60) // overflow
	a.Merge(b)
	if a.Count() != 4 || a.Overflow() != 1 {
		t.Fatalf("merged count/overflow = %d/%d", a.Count(), a.Overflow())
	}
	if a.Min() != 1 || a.Max() != 60 {
		t.Fatalf("merged min/max = %d/%d", a.Min(), a.Max())
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	a := NewHistogram(10)
	b := NewHistogram(10)
	b.Add(3)
	b.Merge(a) // merging an empty histogram must not disturb min/max
	if b.Min() != 3 || b.Max() != 3 || b.Count() != 1 {
		t.Fatalf("after empty merge: %s", b)
	}
}

func TestHistogramPanics(t *testing.T) {
	mustPanic(t, "bound 0", func() { NewHistogram(0) })
	mustPanic(t, "negative sample", func() { NewHistogram(5).Add(-1) })
	mustPanic(t, "bucket width", func() { NewHistogram(5).Buckets(0) })
	mustPanic(t, "merge mismatch", func() {
		NewHistogram(5).Merge(NewHistogram(6))
	})
}

func TestHistogramPropertyTotals(t *testing.T) {
	// Property: count equals the sum over all bins plus overflow, and the
	// min/max bracket every sample.
	f := func(raw []uint16) bool {
		h := NewHistogram(256)
		lo, hi := -1, -1
		for _, r := range raw {
			v := int(r % 512)
			h.Add(v)
			if lo == -1 || v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		buckets, over := h.Buckets(16)
		var sum uint64
		for _, b := range buckets {
			sum += b
		}
		if sum+over != h.Count() {
			return false
		}
		if len(raw) > 0 && (h.Min() != lo || h.Max() != hi) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetCounters(t *testing.T) {
	var s Set
	s.Inc("a", 1)
	s.Inc("b", 2)
	s.Inc("a", 3)
	if s.Get("a") != 4 || s.Get("b") != 2 || s.Get("missing") != 0 {
		t.Fatalf("counter values wrong: %s", s.String())
	}
	all := s.All()
	if len(all) != 2 || all[0].Name != "a" || all[1].Name != "b" {
		t.Fatalf("All() order wrong: %v", all)
	}
}

func TestSetMerge(t *testing.T) {
	var a, b Set
	a.Inc("x", 1)
	b.Inc("x", 2)
	b.Inc("y", 5)
	a.Merge(&b)
	if a.Get("x") != 3 || a.Get("y") != 5 {
		t.Fatalf("merge wrong: %s", a.String())
	}
}

func TestSetString(t *testing.T) {
	var s Set
	s.Inc("zeta", 1)
	s.Inc("alpha", 2)
	if got := s.String(); got != "alpha=2 zeta=1" {
		t.Fatalf("String() = %q", got)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil) != 0")
	}
	if got := GeoMean([]float64{4, 1}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("GeoMean{4,1} = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("GeoMean{2,2,2} = %v", got)
	}
	// Large inputs must not overflow.
	big := make([]float64, 1000)
	for i := range big {
		big[i] = 1e10
	}
	if got := GeoMean(big); math.Abs(got-1e10)/1e10 > 1e-6 {
		t.Fatalf("GeoMean big = %v", got)
	}
	mustPanic(t, "non-positive", func() { GeoMean([]float64{1, 0}) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
