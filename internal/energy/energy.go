// Package energy implements the paper's energy model (Section 4.3).
//
// Committing one instruction costs one "energy unit", distributed over the
// pipeline resources per Folegnani & González (the paper's Figure 9). The
// Energy Consumption Factor (Figure 10) accumulates that distribution
// through the pipeline stages: an instruction flushed at stage S has
// already spent AccumFactor(S) energy units that must be spent again when
// it is re-fetched — that is the Wasted Energy of Figure 11.
package energy

import "fmt"

// Stage is a pipeline stage position for energy accounting.
type Stage uint8

const (
	// StageFetch through StageCommit follow the paper's Figure 10 rows.
	StageFetch Stage = iota
	StageDecode
	StageRename
	StageQueue
	StageRegRead
	StageExecute
	StageRegWrite
	StageCommit
	numStages
)

// NumStages is the number of accounting stages.
const NumStages = int(numStages)

// String names the stage as in Figure 10.
func (s Stage) String() string {
	switch s {
	case StageFetch:
		return "Fetch"
	case StageDecode:
		return "Decode"
	case StageRename:
		return "Rename"
	case StageQueue:
		return "Queue"
	case StageRegRead:
		return "Reg.Read"
	case StageExecute:
		return "Execute"
	case StageRegWrite:
		return "Reg.Write"
	case StageCommit:
		return "Commit"
	default:
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
}

// localFactor is the paper's Figure 10 "Local" column: the fraction of one
// energy unit spent in each stage.
var localFactor = [numStages]float64{
	StageFetch:    0.13,
	StageDecode:   0.03,
	StageRename:   0.22,
	StageQueue:    0.26,
	StageRegRead:  0.05,
	StageExecute:  0.13,
	StageRegWrite: 0.05,
	StageCommit:   0.13,
}

// LocalFactor returns the Figure 10 "Local" energy share of a stage.
func LocalFactor(s Stage) float64 { return localFactor[s] }

// AccumFactor returns the Figure 10 "Accumulated" column: the energy spent
// by an instruction that has progressed through stage s inclusive.
func AccumFactor(s Stage) float64 {
	sum := 0.0
	for i := Stage(0); i <= s && i < numStages; i++ {
		sum += localFactor[i]
	}
	// Round to the paper's two decimals to match Figure 10 exactly.
	return float64(int(sum*100+0.5)) / 100
}

// ResourceShare is one row of the paper's Figure 9(a): the fraction of
// total pipeline energy consumed by one hardware resource.
type ResourceShare struct {
	Resource string
	Share    float64
	// Stages lists the accounting stages the resource maps to
	// (Figure 9(b)).
	Stages []Stage
}

// Distribution returns the Figure 9 energy distribution per resource.
// Shares follow Folegnani & González's issue-logic analysis as summarised
// by the paper; they sum to 1.
func Distribution() []ResourceShare {
	return []ResourceShare{
		{Resource: "I-cache + fetch", Share: 0.13, Stages: []Stage{StageFetch}},
		{Resource: "Decode logic", Share: 0.03, Stages: []Stage{StageDecode}},
		{Resource: "Rename map + free list", Share: 0.22, Stages: []Stage{StageRename}},
		{Resource: "Issue queues + wakeup/select", Share: 0.26, Stages: []Stage{StageQueue}},
		{Resource: "Register file read", Share: 0.05, Stages: []Stage{StageRegRead}},
		{Resource: "Execution units + bypass", Share: 0.13, Stages: []Stage{StageExecute}},
		{Resource: "Register file write", Share: 0.05, Stages: []Stage{StageRegWrite}},
		{Resource: "ROB + commit", Share: 0.13, Stages: []Stage{StageCommit}},
	}
}

// Account accumulates wasted-energy statistics for one simulation. The
// zero value is ready to use.
type Account struct {
	flushedByStage   [numStages]uint64
	wasted           float64
	committed        uint64
	wrongPathByStage [numStages]uint64
}

// OnFlushed records one instruction squashed by the FLUSH mechanism while
// at the given stage; its accumulated energy is wasted because it will be
// re-fetched.
func (a *Account) OnFlushed(s Stage) {
	a.flushedByStage[s]++
	a.wasted += AccumFactor(s)
}

// OnWrongPath records a wrong-path instruction squashed at the given
// stage. Tracked separately: the paper's Figure 11 counts only
// FLUSH-mechanism waste, which is what Wasted() returns.
func (a *Account) OnWrongPath(s Stage) { a.wrongPathByStage[s]++ }

// OnCommit records one committed instruction (1 energy unit of useful
// work).
func (a *Account) OnCommit() { a.committed++ }

// Wasted returns the FLUSH-mechanism wasted energy in energy units
// (Figure 11's metric).
func (a *Account) Wasted() float64 { return a.wasted }

// Committed returns the committed-instruction count (the useful energy in
// units).
func (a *Account) Committed() uint64 { return a.committed }

// FlushedTotal returns the number of instructions squashed by FLUSH.
func (a *Account) FlushedTotal() uint64 {
	var n uint64
	for _, c := range a.flushedByStage {
		n += c
	}
	return n
}

// FlushedByStage returns the per-stage FLUSH squash counts.
func (a *Account) FlushedByStage() [NumStages]uint64 { return a.flushedByStage }

// WrongPathTotal returns the number of squashed wrong-path instructions.
func (a *Account) WrongPathTotal() uint64 {
	var n uint64
	for _, c := range a.wrongPathByStage {
		n += c
	}
	return n
}

// WastedPerCommit returns wasted energy normalised by useful work, the
// comparable quantity across runs of equal cycle budget.
func (a *Account) WastedPerCommit() float64 {
	if a.committed == 0 {
		return 0
	}
	return a.wasted / float64(a.committed)
}

// Merge folds other into a.
func (a *Account) Merge(other *Account) {
	for i := range a.flushedByStage {
		a.flushedByStage[i] += other.flushedByStage[i]
		a.wrongPathByStage[i] += other.wrongPathByStage[i]
	}
	a.wasted += other.wasted
	a.committed += other.committed
}
