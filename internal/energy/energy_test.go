package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLocalFactorsMatchFigure10(t *testing.T) {
	want := map[Stage]float64{
		StageFetch: 0.13, StageDecode: 0.03, StageRename: 0.22,
		StageQueue: 0.26, StageRegRead: 0.05, StageExecute: 0.13,
		StageRegWrite: 0.05, StageCommit: 0.13,
	}
	for s, w := range want {
		if got := LocalFactor(s); got != w {
			t.Errorf("%v local factor = %v, want %v", s, got, w)
		}
	}
}

func TestAccumFactorsMatchFigure10(t *testing.T) {
	// The paper's Accumulated column: 0.13 0.16 0.38 0.64 0.69 0.82 0.87 1.
	want := []float64{0.13, 0.16, 0.38, 0.64, 0.69, 0.82, 0.87, 1.00}
	for s := Stage(0); s < Stage(NumStages); s++ {
		if got := AccumFactor(s); math.Abs(got-want[s]) > 1e-9 {
			t.Errorf("%v accumulated = %v, want %v", s, got, want[s])
		}
	}
}

func TestAccumMonotonicProperty(t *testing.T) {
	f := func(raw uint8) bool {
		s := Stage(raw % uint8(NumStages))
		if s == 0 {
			return AccumFactor(s) == LocalFactor(s)
		}
		return AccumFactor(s) >= AccumFactor(s-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistributionSumsToOne(t *testing.T) {
	sum := 0.0
	stagesSeen := map[Stage]bool{}
	for _, r := range Distribution() {
		sum += r.Share
		for _, s := range r.Stages {
			stagesSeen[s] = true
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("distribution sums to %v", sum)
	}
	if len(stagesSeen) != NumStages {
		t.Fatalf("distribution covers %d stages, want %d", len(stagesSeen), NumStages)
	}
}

func TestStageStrings(t *testing.T) {
	seen := map[string]bool{}
	for s := Stage(0); s < Stage(NumStages); s++ {
		name := s.String()
		if name == "" || seen[name] {
			t.Errorf("stage %d has bad/duplicate name %q", s, name)
		}
		seen[name] = true
	}
}

func TestAccountWastedEnergy(t *testing.T) {
	var a Account
	a.OnFlushed(StageQueue)   // 0.64
	a.OnFlushed(StageFetch)   // 0.13
	a.OnFlushed(StageExecute) // 0.82
	if got, want := a.Wasted(), 0.64+0.13+0.82; math.Abs(got-want) > 1e-9 {
		t.Fatalf("wasted = %v, want %v", got, want)
	}
	if a.FlushedTotal() != 3 {
		t.Fatalf("flushed = %d", a.FlushedTotal())
	}
	by := a.FlushedByStage()
	if by[StageQueue] != 1 || by[StageFetch] != 1 || by[StageExecute] != 1 {
		t.Fatalf("per-stage counts wrong: %v", by)
	}
}

func TestAccountCommitAndNormalisation(t *testing.T) {
	var a Account
	if a.WastedPerCommit() != 0 {
		t.Fatal("empty account should normalise to 0")
	}
	for i := 0; i < 10; i++ {
		a.OnCommit()
	}
	a.OnFlushed(StageCommit) // 1.0
	if got := a.WastedPerCommit(); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("wasted/commit = %v, want 0.1", got)
	}
	if a.Committed() != 10 {
		t.Fatalf("committed = %d", a.Committed())
	}
}

func TestAccountWrongPathSeparate(t *testing.T) {
	var a Account
	a.OnWrongPath(StageQueue)
	if a.Wasted() != 0 {
		t.Fatal("wrong-path squashes must not count as FLUSH waste")
	}
	if a.WrongPathTotal() != 1 {
		t.Fatalf("wrong-path total = %d", a.WrongPathTotal())
	}
}

func TestAccountMerge(t *testing.T) {
	var a, b Account
	a.OnFlushed(StageFetch)
	a.OnCommit()
	b.OnFlushed(StageRename)
	b.OnCommit()
	b.OnWrongPath(StageFetch)
	a.Merge(&b)
	if a.FlushedTotal() != 2 || a.Committed() != 2 || a.WrongPathTotal() != 1 {
		t.Fatalf("merge lost events: %d/%d/%d",
			a.FlushedTotal(), a.Committed(), a.WrongPathTotal())
	}
	if got, want := a.Wasted(), 0.13+0.38; math.Abs(got-want) > 1e-9 {
		t.Fatalf("merged wasted = %v, want %v", got, want)
	}
}
