// Package branch implements the front-end control-flow predictors of the
// simulated core: a perceptron conditional branch predictor (the paper's
// "perceptron (4K local, 256 perceps.)"), a set-associative branch target
// buffer and a return address stack.
package branch

import "repro/internal/isa"

// Perceptron is a global-history perceptron branch predictor (Jiménez &
// Lin, HPCA 2001). A table of perceptrons is indexed by PC; each holds one
// weight per global-history bit plus a bias. The prediction is the sign of
// the dot product between the weights and the history; training adjusts
// weights when the prediction is wrong or the output magnitude is below
// the threshold.
type Perceptron struct {
	weights [][]int16 // [perceptron][history+1], index 0 is the bias
	history uint64
	hlen    int
	thresh  int32
	mask    uint64
}

// weightLimit saturates weights to a signed byte, matching the 8-bit
// weights of hardware proposals.
const weightLimit = 127

// NewPerceptron returns a predictor with the given table size (power of
// two) and global history length.
func NewPerceptron(tableSize, historyLen int) *Perceptron {
	if tableSize <= 0 || tableSize&(tableSize-1) != 0 {
		panic("branch: perceptron table size must be a positive power of two")
	}
	if historyLen <= 0 || historyLen > 63 {
		panic("branch: history length must be in [1,63]")
	}
	w := make([][]int16, tableSize)
	for i := range w {
		w[i] = make([]int16, historyLen+1)
	}
	return &Perceptron{
		weights: w,
		hlen:    historyLen,
		// Optimal training threshold from the perceptron paper:
		// 1.93*h + 14.
		thresh: int32(1.93*float64(historyLen) + 14),
		mask:   uint64(tableSize - 1),
	}
}

func (p *Perceptron) index(pc uint64) uint64 {
	// Drop the instruction alignment bits, then fold.
	v := pc >> 2
	return (v ^ (v >> 9)) & p.mask
}

// output computes the perceptron dot product for pc with the current
// history.
func (p *Perceptron) output(pc uint64) int32 {
	w := p.weights[p.index(pc)]
	y := int32(w[0])
	h := p.history
	for i := 1; i <= p.hlen; i++ {
		if h&1 == 1 {
			y += int32(w[i])
		} else {
			y -= int32(w[i])
		}
		h >>= 1
	}
	return y
}

// Predict returns the predicted direction for the branch at pc.
func (p *Perceptron) Predict(pc uint64) bool { return p.output(pc) >= 0 }

// Update trains the predictor with the actual outcome and shifts the
// outcome into the global history. Call it at branch resolution.
func (p *Perceptron) Update(pc uint64, taken bool) {
	y := p.output(pc)
	predicted := y >= 0
	mag := y
	if mag < 0 {
		mag = -mag
	}
	if predicted != taken || mag <= p.thresh {
		w := p.weights[p.index(pc)]
		t := int16(-1)
		if taken {
			t = 1
		}
		w[0] = sat(w[0] + t)
		h := p.history
		for i := 1; i <= p.hlen; i++ {
			if (h&1 == 1) == taken {
				w[i] = sat(w[i] + 1)
			} else {
				w[i] = sat(w[i] - 1)
			}
			h >>= 1
		}
	}
	p.history <<= 1
	if taken {
		p.history |= 1
	}
}

// HistorySnapshot returns the current global history register, used to
// checkpoint/restore across squashes.
func (p *Perceptron) HistorySnapshot() uint64 { return p.history }

// RestoreHistory rewinds the global history to a snapshot (used when
// squashing wrong-path branches).
func (p *Perceptron) RestoreHistory(h uint64) { p.history = h }

func sat(v int16) int16 {
	if v > weightLimit {
		return weightLimit
	}
	if v < -weightLimit {
		return -weightLimit
	}
	return v
}

// BTB is a set-associative branch target buffer with LRU replacement.
type BTB struct {
	tags    []uint64
	targets []uint64
	lru     []uint8
	sets    int
	assoc   int
}

// NewBTB returns a BTB with the given total entry count and associativity.
func NewBTB(entries, assoc int) *BTB {
	if entries <= 0 || assoc <= 0 || entries%assoc != 0 {
		panic("branch: BTB entries must divide into ways")
	}
	sets := entries / assoc
	if sets&(sets-1) != 0 {
		panic("branch: BTB set count must be a power of two")
	}
	return &BTB{
		tags:    make([]uint64, entries),
		targets: make([]uint64, entries),
		lru:     make([]uint8, entries),
		sets:    sets,
		assoc:   assoc,
	}
}

func (b *BTB) set(pc uint64) int { return int((pc >> 2) & uint64(b.sets-1)) }

// Lookup returns the predicted target for pc and whether the BTB holds an
// entry for it.
func (b *BTB) Lookup(pc uint64) (uint64, bool) {
	base := b.set(pc) * b.assoc
	tag := pc >> 2
	for w := 0; w < b.assoc; w++ {
		i := base + w
		if b.tags[i] == tag+1 { // +1 so a zero tag means "empty"
			b.touch(base, w)
			return b.targets[i], true
		}
	}
	return 0, false
}

// Insert records the target for the branch at pc, evicting the LRU way.
func (b *BTB) Insert(pc, target uint64) {
	base := b.set(pc) * b.assoc
	tag := pc>>2 + 1
	victim := 0
	for w := 0; w < b.assoc; w++ {
		i := base + w
		if b.tags[i] == tag {
			b.targets[i] = target
			b.touch(base, w)
			return
		}
		if b.lru[i] > b.lru[base+victim] {
			victim = w
		}
	}
	i := base + victim
	b.tags[i] = tag
	b.targets[i] = target
	b.touch(base, victim)
}

// touch makes way w the most recently used in its set.
func (b *BTB) touch(base, w int) {
	for k := 0; k < b.assoc; k++ {
		if b.lru[base+k] < 255 {
			b.lru[base+k]++
		}
	}
	b.lru[base+w] = 0
}

// RAS is a per-thread return address stack. Pushes past the capacity wrap
// around (overwriting the oldest entry), matching hardware behaviour.
type RAS struct {
	stack []uint64
	top   int // index of next free slot
	depth int // number of live entries, capped at capacity
}

// NewRAS returns a stack with the given capacity.
func NewRAS(capacity int) *RAS {
	if capacity <= 0 {
		panic("branch: RAS capacity must be positive")
	}
	return &RAS{stack: make([]uint64, capacity)}
}

// Push records a return address (call instruction).
func (r *RAS) Push(addr uint64) {
	r.stack[r.top] = addr
	r.top = (r.top + 1) % len(r.stack)
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the target of a return. It returns 0, false when the stack
// is empty.
func (r *RAS) Pop() (uint64, bool) {
	if r.depth == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return r.stack[r.top], true
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.depth }

// Snapshot captures the stack position for later repair. The buffer
// contents are not copied: a restore after at most capacity intervening
// pushes recovers the stack exactly, which matches hardware top-pointer
// repair.
func (r *RAS) Snapshot() (top, depth int) { return r.top, r.depth }

// Restore rewinds the stack position to a snapshot (used when squashing
// past speculated calls/returns).
func (r *RAS) Restore(top, depth int) {
	r.top = top
	r.depth = depth
}

// Predictor bundles the three structures into the per-core front-end
// predictor. The perceptron and BTB are shared between hardware contexts
// (as in real SMT cores); each context owns a private RAS.
type Predictor struct {
	Cond *Perceptron
	BTB  *BTB
	RAS  []*RAS
}

// New returns a predictor sized by the given parameters with one RAS per
// thread.
func New(perceptrons, history, btbEntries, btbAssoc, rasEntries, threads int) *Predictor {
	ras := make([]*RAS, threads)
	for i := range ras {
		ras[i] = NewRAS(rasEntries)
	}
	return &Predictor{
		Cond: NewPerceptron(perceptrons, history),
		BTB:  NewBTB(btbEntries, btbAssoc),
		RAS:  ras,
	}
}

// Prediction is the front end's verdict for one control instruction.
type Prediction struct {
	// Taken is the predicted direction (always true for calls/returns).
	Taken bool
	// Target is the predicted target; zero when unknown (BTB miss), in
	// which case the front end falls through and later redirects.
	Target uint64
}

// Predict produces a prediction for the control instruction in and
// updates the speculative RAS for thread tid.
func (p *Predictor) Predict(tid int, in *isa.Inst) Prediction {
	switch in.Class {
	case isa.ClassCall:
		p.RAS[tid].Push(in.PC + 4)
		t, ok := p.BTB.Lookup(in.PC)
		if !ok {
			return Prediction{Taken: true}
		}
		return Prediction{Taken: true, Target: t}
	case isa.ClassReturn:
		t, ok := p.RAS[tid].Pop()
		if !ok {
			return Prediction{Taken: true}
		}
		return Prediction{Taken: true, Target: t}
	case isa.ClassBranch:
		taken := p.Cond.Predict(in.PC)
		if !taken {
			return Prediction{Taken: false}
		}
		t, ok := p.BTB.Lookup(in.PC)
		if !ok {
			// Predicted taken with no target: treat as a front-end
			// redirect stall; the caller models this as a mispredict
			// of minimal cost.
			return Prediction{Taken: true}
		}
		return Prediction{Taken: true, Target: t}
	default:
		return Prediction{}
	}
}

// Resolve trains the predictor with the actual outcome of a control
// instruction.
func (p *Predictor) Resolve(in *isa.Inst) {
	if in.Class == isa.ClassBranch {
		p.Cond.Update(in.PC, in.Taken)
	}
	if in.Taken && in.Target != 0 && in.Class != isa.ClassReturn {
		p.BTB.Insert(in.PC, in.Target)
	}
}
