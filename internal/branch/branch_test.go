package branch

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/rng"
)

func TestPerceptronLearnsAlwaysTaken(t *testing.T) {
	p := NewPerceptron(64, 8)
	pc := uint64(0x1000)
	for i := 0; i < 200; i++ {
		p.Predict(pc)
		p.Update(pc, true)
	}
	correct := 0
	for i := 0; i < 100; i++ {
		if p.Predict(pc) {
			correct++
		}
		p.Update(pc, true)
	}
	if correct < 100 {
		t.Fatalf("always-taken accuracy %d/100 after warmup", correct)
	}
}

func TestPerceptronLearnsAlternating(t *testing.T) {
	// An alternating pattern is linearly separable on 1 history bit, so
	// the perceptron must learn it essentially perfectly.
	p := NewPerceptron(64, 8)
	pc := uint64(0x2000)
	taken := false
	for i := 0; i < 500; i++ {
		p.Predict(pc)
		p.Update(pc, taken)
		taken = !taken
	}
	correct := 0
	for i := 0; i < 200; i++ {
		if p.Predict(pc) == taken {
			correct++
		}
		p.Update(pc, taken)
		taken = !taken
	}
	if correct < 195 {
		t.Fatalf("alternating accuracy %d/200", correct)
	}
}

func TestPerceptronBeatsCoinOnBiasedRandom(t *testing.T) {
	p := NewPerceptron(256, 16)
	r := rng.New(1)
	pc := uint64(0x3000)
	correct, total := 0, 0
	for i := 0; i < 5000; i++ {
		taken := r.Bool(0.85)
		if i > 1000 {
			if p.Predict(pc) == taken {
				correct++
			}
			total++
		} else {
			p.Predict(pc)
		}
		p.Update(pc, taken)
	}
	acc := float64(correct) / float64(total)
	if acc < 0.80 {
		t.Fatalf("biased-random accuracy %.3f, want >= 0.80", acc)
	}
}

func TestPerceptronWeightsSaturate(t *testing.T) {
	p := NewPerceptron(2, 4)
	pc := uint64(0)
	for i := 0; i < 10000; i++ {
		p.Update(pc, true)
	}
	for _, row := range p.weights {
		for _, w := range row {
			if w > weightLimit || w < -weightLimit {
				t.Fatalf("weight %d escaped saturation", w)
			}
		}
	}
}

func TestPerceptronHistoryRestore(t *testing.T) {
	p := NewPerceptron(16, 8)
	p.Update(0x10, true)
	p.Update(0x10, false)
	snap := p.HistorySnapshot()
	p.Update(0x10, true)
	p.Update(0x10, true)
	p.RestoreHistory(snap)
	if p.HistorySnapshot() != snap {
		t.Fatal("history restore failed")
	}
}

func TestPerceptronConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewPerceptron(0, 8) },
		func() { NewPerceptron(3, 8) },
		func() { NewPerceptron(16, 0) },
		func() { NewPerceptron(16, 64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected constructor panic")
				}
			}()
			f()
		}()
	}
}

func TestBTBInsertLookup(t *testing.T) {
	b := NewBTB(256, 4)
	b.Insert(0x1000, 0x2000)
	got, ok := b.Lookup(0x1000)
	if !ok || got != 0x2000 {
		t.Fatalf("lookup = %#x, %t", got, ok)
	}
	if _, ok := b.Lookup(0x1004); ok {
		t.Fatal("phantom hit for un-inserted PC")
	}
}

func TestBTBUpdateExisting(t *testing.T) {
	b := NewBTB(64, 4)
	b.Insert(0x1000, 0x2000)
	b.Insert(0x1000, 0x3000)
	got, ok := b.Lookup(0x1000)
	if !ok || got != 0x3000 {
		t.Fatalf("updated lookup = %#x, %t, want 0x3000", got, ok)
	}
}

func TestBTBLRUEviction(t *testing.T) {
	// 4 sets x 2 ways; PCs mapping to the same set are 4*4=16 bytes apart
	// in the folded index space.
	b := NewBTB(8, 2)
	sets := b.sets
	pcFor := func(i int) uint64 { return uint64(i * sets * 4) } // all map to set 0
	b.Insert(pcFor(1), 0x100)
	b.Insert(pcFor(2), 0x200)
	// Touch 1 so 2 becomes LRU.
	if _, ok := b.Lookup(pcFor(1)); !ok {
		t.Fatal("entry 1 missing")
	}
	b.Insert(pcFor(3), 0x300)
	if _, ok := b.Lookup(pcFor(2)); ok {
		t.Fatal("LRU entry 2 should have been evicted")
	}
	if _, ok := b.Lookup(pcFor(1)); !ok {
		t.Fatal("MRU entry 1 was evicted")
	}
	if got, ok := b.Lookup(pcFor(3)); !ok || got != 0x300 {
		t.Fatal("new entry 3 missing")
	}
}

func TestBTBZeroPC(t *testing.T) {
	// PC 0 must be storable despite the empty-tag encoding.
	b := NewBTB(16, 2)
	b.Insert(0, 0xabc)
	got, ok := b.Lookup(0)
	if !ok || got != 0xabc {
		t.Fatalf("zero-PC lookup = %#x, %t", got, ok)
	}
}

func TestBTBConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewBTB(0, 1) },
		func() { NewBTB(7, 2) },
		func() { NewBTB(24, 2) }, // 12 sets: not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected BTB constructor panic")
				}
			}()
			f()
		}()
	}
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(4)
	r.Push(0x100)
	r.Push(0x200)
	if v, ok := r.Pop(); !ok || v != 0x200 {
		t.Fatalf("pop = %#x, %t", v, ok)
	}
	if v, ok := r.Pop(); !ok || v != 0x100 {
		t.Fatalf("pop = %#x, %t", v, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty stack succeeded")
	}
}

func TestRASWrapOverwritesOldest(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if r.Depth() != 2 {
		t.Fatalf("depth = %d", r.Depth())
	}
	if v, _ := r.Pop(); v != 3 {
		t.Fatalf("pop = %d, want 3", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Fatalf("pop = %d, want 2", v)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("stack should be empty after wrap")
	}
}

func TestRASProperty(t *testing.T) {
	// Property: with fewer than capacity pushes, RAS behaves exactly like
	// a stack.
	f := func(vals []uint64) bool {
		if len(vals) > 90 {
			vals = vals[:90]
		}
		r := NewRAS(100)
		for _, v := range vals {
			r.Push(v)
		}
		for i := len(vals) - 1; i >= 0; i-- {
			got, ok := r.Pop()
			if !ok || got != vals[i] {
				return false
			}
		}
		_, ok := r.Pop()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPredictorCallReturnPair(t *testing.T) {
	p := New(64, 8, 64, 4, 16, 2)
	call := &isa.Inst{PC: 0x1000, Class: isa.ClassCall, Taken: true, Target: 0x9000}
	ret := &isa.Inst{PC: 0x9004, Class: isa.ClassReturn, Taken: true, Target: 0x1004}
	pr := p.Predict(0, call)
	if !pr.Taken {
		t.Fatal("call must predict taken")
	}
	pr = p.Predict(0, ret)
	if !pr.Taken || pr.Target != 0x1004 {
		t.Fatalf("return predicted %#x, want 0x1004", pr.Target)
	}
	// Thread 1's RAS is private: its return has no prediction.
	pr = p.Predict(1, ret)
	if pr.Target != 0 {
		t.Fatalf("thread-1 RAS should be empty, got %#x", pr.Target)
	}
}

func TestPredictorBranchUsesBTBOnlyWhenTaken(t *testing.T) {
	p := New(64, 8, 64, 4, 16, 1)
	br := &isa.Inst{PC: 0x100, Class: isa.ClassBranch, Taken: true, Target: 0x500}
	// Train taken and install the target.
	for i := 0; i < 100; i++ {
		p.Resolve(br)
	}
	pr := p.Predict(0, br)
	if !pr.Taken || pr.Target != 0x500 {
		t.Fatalf("trained branch predicted %+v", pr)
	}
	// Train strongly not-taken on a different branch.
	nt := &isa.Inst{PC: 0x200, Class: isa.ClassBranch, Taken: false}
	for i := 0; i < 200; i++ {
		p.Resolve(nt)
	}
	pr = p.Predict(0, nt)
	if pr.Taken {
		t.Fatal("not-taken branch predicted taken")
	}
}

func BenchmarkPerceptronPredictUpdate(b *testing.B) {
	p := NewPerceptron(256, 16)
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		pc := uint64(i%1024) * 4
		p.Predict(pc)
		p.Update(pc, r.Bool(0.7))
	}
}
