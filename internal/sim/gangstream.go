package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/isa"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Gang sharing: a GangSession's members are independent machines, but
// most of what they consume is immutable and, across the policy/seed
// variants a gang batches, often identical. gangShared memoises those
// immutable inputs during OpenGang so one fetch/decode (synthesis) pass,
// one profile expansion and one prewarm-plan computation amortise over
// every member that would have recomputed the same bytes:
//
//   - workload profiles, keyed by workload name;
//   - L2 prewarm fill plans, keyed by workload name and machine shape;
//   - synthesised instruction streams, keyed per thread by (workload,
//     profile index, generator seed, address base) — the exact inputs
//     that make two generators emit bit-identical streams.
//
// Mutable state is never shared: each member owns its chip, and stream
// consumers are per-member cursors over the memoised (immutable) stream.
type gangShared struct {
	profiles map[string][]synth.Profile
	streams  map[streamKey]*sharedStream
	// order lists streams in creation order so trimming and tests are
	// deterministic (map iteration is not).
	order   []*sharedStream
	prewarm map[string][]uint64
}

func newGangShared() *gangShared {
	return &gangShared{
		profiles: make(map[string][]synth.Profile),
		streams:  make(map[streamKey]*sharedStream),
		prewarm:  make(map[string][]uint64),
	}
}

// profilesFor memoises Workload.Profiles by workload name.
func (gs *gangShared) profilesFor(w workload.Workload) ([]synth.Profile, error) {
	if p, ok := gs.profiles[w.Name]; ok {
		return p, nil
	}
	p, err := w.Profiles()
	if err != nil {
		return nil, err
	}
	gs.profiles[w.Name] = p
	return p, nil
}

// prewarmFor memoises the prewarm fill plan by workload name and machine
// shape. The plan depends on the profiles, the thread address bases
// (derived from the core/thread geometry) and the L2 cap/line geometry;
// the key covers all of them.
func (gs *gangShared) prewarmFor(workloadName string, profiles []synth.Profile,
	bases [][]uint64, capBytes, line uint64) []uint64 {
	threadsPerCore := 0
	if len(bases) > 0 {
		threadsPerCore = len(bases[0])
	}
	key := fmt.Sprintf("%s|cores=%d|threads=%d|cap=%d|line=%d",
		workloadName, len(bases), threadsPerCore, capBytes, line)
	if plan, ok := gs.prewarm[key]; ok {
		return plan
	}
	plan := prewarmPlan(profiles, bases, capBytes, line)
	gs.prewarm[key] = plan
	return plan
}

// streamKey identifies one thread's synthesised instruction stream: two
// generators constructed from these exact inputs emit bit-identical
// streams (synth.Generator is fully deterministic), so members matching
// on the key can share one materialised copy.
type streamKey struct {
	workload string
	profile  int
	seed     uint64
	base     uint64
}

// cursorFor returns a fresh cursor over the memoised stream for key,
// creating the stream (and its single underlying generator) on first use.
func (gs *gangShared) cursorFor(workloadName string, profileIdx int,
	prof synth.Profile, seed, base uint64) *streamCursor {
	key := streamKey{workload: workloadName, profile: profileIdx, seed: seed, base: base}
	st := gs.streams[key]
	if st == nil {
		st = newSharedStream(synth.NewGenerator(prof, seed, base))
		gs.streams[key] = st
		gs.order = append(gs.order, st)
	}
	cur := &streamCursor{stream: st}
	st.cursors = append(st.cursors, cur)
	return cur
}

// Stream storage granularity. Chunks are fixed-size so a position maps
// to (chunk, offset) with shifts, and so a chunk's backing array never
// reallocates — entries below the materialised watermark are immutable
// and safe to read without locks.
const (
	streamChunkBits = 10
	streamChunkSize = 1 << streamChunkBits
	streamChunkMask = streamChunkSize - 1
	// streamBatch is how far materialise runs past the requested
	// position per lock acquisition, so concurrent members round-robin
	// the lock a few times per thousand instructions instead of per
	// instruction. Purely a batching knob: stream content is the
	// generator's output regardless.
	streamBatch = 256
)

// streamWindow is the immutable view readers load atomically: the chunk
// list and the absolute stream position of its first entry. Growing the
// stream or trimming consumed chunks installs a fresh window; readers
// holding the old one still see valid (if stale) chunks, which the GC
// reclaims once unreferenced.
type streamWindow struct {
	base   uint64
	chunks [][]isa.Inst
}

// sharedStream memoises one synthesised instruction stream for
// concurrent lock-free reading by gang members at different positions.
//
// Writer protocol (materialise, under mu): fill preallocated chunk
// entries in stream order, publishing a new window *before* advancing
// the n watermark whenever a chunk is added. Reader protocol (cursor
// Next): observe pos < n, then load the window — the sequentially
// consistent atomics order the window publish before the watermark
// advance, so the window covers every materialised position the reader
// can ask for.
//
// Trimming (trim) discards whole chunks below the slowest cursor. It
// must only run while no cursor is mid-read — GangSession calls it at
// its chunk barriers, where member goroutines are quiescent.
type sharedStream struct {
	mu  sync.Mutex
	gen trace.Source
	w   atomic.Pointer[streamWindow]
	n   atomic.Uint64
	// cursors is maintained single-threaded (OpenGang, FinishMember,
	// barrier trims): every live consumer, for the trim low-water mark.
	cursors []*streamCursor
}

func newSharedStream(gen trace.Source) *sharedStream {
	s := &sharedStream{gen: gen}
	s.w.Store(&streamWindow{})
	return s
}

// materialise extends the stream through position i (plus batch slack).
func (s *sharedStream) materialise(i uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.n.Load()
	if i < n {
		return // another member materialised past i first
	}
	w := s.w.Load()
	target := i + streamBatch
	for n < target {
		rel := n - w.base
		if ci := rel >> streamChunkBits; ci == uint64(len(w.chunks)) {
			grown := &streamWindow{
				base:   w.base,
				chunks: append(append([][]isa.Inst(nil), w.chunks...), make([]isa.Inst, streamChunkSize)),
			}
			s.w.Store(grown)
			w = grown
		}
		s.gen.Next(&w.chunks[rel>>streamChunkBits][rel&streamChunkMask])
		n++
	}
	s.n.Store(n)
}

// trim discards whole chunks every cursor has consumed, bounding the
// retained window to [slowest cursor, materialised). Single-threaded:
// see the type comment.
func (s *sharedStream) trim() {
	if len(s.cursors) == 0 {
		return
	}
	low := s.cursors[0].pos
	for _, c := range s.cursors[1:] {
		if c.pos < low {
			low = c.pos
		}
	}
	w := s.w.Load()
	drop := (low - w.base) >> streamChunkBits
	if drop == 0 {
		return
	}
	s.w.Store(&streamWindow{
		base:   w.base + drop<<streamChunkBits,
		chunks: append([][]isa.Inst(nil), w.chunks[drop:]...),
	})
}

// release detaches a finished member's cursor so it no longer pins the
// trim low-water mark. Single-threaded (FinishMember).
func (s *sharedStream) release(cur *streamCursor) {
	for i, c := range s.cursors {
		if c == cur {
			s.cursors = append(s.cursors[:i], s.cursors[i+1:]...)
			return
		}
	}
}

// streamCursor adapts a sharedStream position to trace.Source for one
// member's thread. Next is called only from the goroutine stepping that
// member; different members' cursors read the stream concurrently.
type streamCursor struct {
	stream *sharedStream
	pos    uint64
}

// Next implements trace.Source over the shared stream.
func (c *streamCursor) Next(out *isa.Inst) {
	i := c.pos
	c.pos++
	s := c.stream
	if i >= s.n.Load() {
		s.materialise(i)
	}
	w := s.w.Load()
	rel := i - w.base
	*out = w.chunks[rel>>streamChunkBits][rel&streamChunkMask]
}
