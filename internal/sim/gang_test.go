package sim

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/workload"
)

// gangOptions builds a maximal-sharing gang: one workload and seed, the
// paper's four policies — the policy-sweep shape campaign batching
// produces, where every member reads the same shared streams.
func gangOptions(t *testing.T, name string, seed, warmup, cycles uint64) []Options {
	t.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	var opts []Options
	for _, p := range []PolicySpec{SpecICOUNT, SpecFlushNS, SpecFlushS(30), SpecMFLUSH} {
		opts = append(opts, Options{Workload: w, Policy: p, Seed: seed, Warmup: warmup, Cycles: cycles})
	}
	return opts
}

// TestRunGangMatchesGolden proves gang execution does not move a single
// bit: the golden cases (pinned before the Session refactor, long before
// gangs existed) grouped into gangs by their shared cycle windows
// reproduce their exact pre-gang fingerprints.
func TestRunGangMatchesGolden(t *testing.T) {
	groups := map[[2]uint64][]goldenCase{}
	var order [][2]uint64
	for _, c := range goldenCases {
		k := [2]uint64{c.warmup, c.cycles}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}
	for _, k := range order {
		cases := groups[k]
		opts := make([]Options, len(cases))
		for i, c := range cases {
			opts[i] = c.options(t)
		}
		results, err := RunGang(opts)
		if err != nil {
			t.Fatalf("RunGang(warmup=%d cycles=%d): %v", k[0], k[1], err)
		}
		for i, c := range cases {
			if fp := fingerprint(results[i]); fp != c.golden {
				t.Errorf("%s/%s/seed=%d in gang: output drifted from golden\n got: %s\nwant: %s",
					c.workload, c.policy, c.seed, fp, c.golden)
			}
		}
	}
}

// TestRunGangSharedStreamsBitIdentity covers the maximal-sharing case —
// all members consuming the same memoised instruction streams — against
// solo Run, member by member.
func TestRunGangSharedStreamsBitIdentity(t *testing.T) {
	opts := gangOptions(t, "4W2", 7, 4000, 12000)
	results, err := RunGang(opts)
	if err != nil {
		t.Fatal(err)
	}
	for m, o := range opts {
		solo, err := Run(o)
		if err != nil {
			t.Fatalf("solo member %d: %v", m, err)
		}
		if g, s := fingerprint(results[m]), fingerprint(solo); g != s {
			t.Errorf("member %d (%s): gang diverged from solo\n gang: %s\n solo: %s", m, o.Policy, g, s)
		}
	}
}

// TestGangFinishMemberMidRun finishes one member halfway through the
// measured window while the rest keep stepping, and proves that (a) the
// early member's Result equals a solo session finished at the same
// point, and (b) the surviving members are byte-identical to solo full
// runs — early departure must not perturb the lockstep.
func TestGangFinishMemberMidRun(t *testing.T) {
	const warmup, half = 4000, 6000
	opts := gangOptions(t, "2W3", 5, warmup, 2*half)

	g, err := OpenGang(opts)
	if err != nil {
		t.Fatal(err)
	}
	g.Step(warmup)
	g.ResetMeasurement()
	g.Step(half)
	early, err := g.FinishMember(1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Open() != len(opts)-1 {
		t.Fatalf("Open() = %d after FinishMember, want %d", g.Open(), len(opts)-1)
	}
	g.Step(half)
	results, err := g.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if results[1] != early {
		t.Errorf("Finish returned a different Result for the early member")
	}

	soloHalf, err := Open(opts[1])
	if err != nil {
		t.Fatal(err)
	}
	soloHalf.Step(warmup)
	soloHalf.ResetMeasurement()
	soloHalf.Step(half)
	wantEarly, err := soloHalf.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if g, s := fingerprint(early), fingerprint(wantEarly); g != s {
		t.Errorf("early-finished member diverged from solo half-run\n gang: %s\n solo: %s", g, s)
	}
	for _, m := range []int{0, 2, 3} {
		solo, err := Run(opts[m])
		if err != nil {
			t.Fatal(err)
		}
		if g, s := fingerprint(results[m]), fingerprint(solo); g != s {
			t.Errorf("member %d diverged from solo after sibling left early\n gang: %s\n solo: %s", m, g, s)
		}
	}
}

// TestGangStepContextCancel cancels a gang mid-step (from a member probe,
// so the cancellation lands while member goroutines are running) and
// proves the gang stops at a consistent lockstep barrier: resuming the
// remaining cycles yields results bit-identical to an uninterrupted run.
func TestGangStepContextCancel(t *testing.T) {
	const warmup, cycles = 2000, 14000
	opts := gangOptions(t, "2W1", 3, warmup, cycles)

	g, err := OpenGang(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	// The probe fires on member 0's stepping goroutine; cancelling there
	// is observed at the next chunk barrier.
	if err := g.Observe(0, Probe{Every: 3000, Fn: func(*Sample) { cancel() }}); err != nil {
		t.Fatal(err)
	}
	g.Step(warmup)
	g.ResetMeasurement()

	done, err := g.StepContext(ctx, cycles)
	if err != context.Canceled {
		t.Fatalf("StepContext error = %v, want context.Canceled", err)
	}
	if done == 0 || done >= cycles {
		t.Fatalf("cancelled StepContext stepped %d of %d cycles, want a strict prefix", done, cycles)
	}
	for m := range opts {
		if got := g.MeasuredCycles(m); got != done {
			t.Fatalf("member %d at measured cycle %d after cancellation, gang stepped %d — lockstep broken", m, got, done)
		}
	}
	g.Step(cycles - done) // resume
	results, err := g.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for m, o := range opts {
		solo, err := Run(o)
		if err != nil {
			t.Fatal(err)
		}
		if g, s := fingerprint(results[m]), fingerprint(solo); g != s {
			t.Errorf("member %d diverged after cancel+resume\n gang: %s\n solo: %s", m, g, s)
		}
	}

	// A pre-cancelled context steps nothing.
	g2, err := OpenGang(opts[:1])
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if n, err := g2.StepContext(ctx2, 100); n != 0 || err != context.Canceled {
		t.Fatalf("pre-cancelled StepContext = (%d, %v), want (0, Canceled)", n, err)
	}
}

// TestGangNoGoroutineLeak steps and finishes gangs at every parallelism
// level and checks the process returns to its baseline goroutine count:
// the chunk barriers must not strand workers, including when members
// leave mid-gang.
func TestGangNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	opts := gangOptions(t, "2W1", 9, 0, 8000)
	for p := 1; p <= len(opts); p++ {
		g, err := OpenGang(opts)
		if err != nil {
			t.Fatal(err)
		}
		g.SetParallelism(p)
		g.Step(3000)
		if _, err := g.FinishMember(2); err != nil {
			t.Fatal(err)
		}
		g.Step(5000)
		if _, err := g.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	// Worker goroutines exit after the barrier releases them; give the
	// scheduler a moment before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGangLifecycleErrors pins the gang's error surface: invalid opens,
// out-of-range members, double finishes, stepping a closed gang.
func TestGangLifecycleErrors(t *testing.T) {
	if _, err := OpenGang(nil); err == nil {
		t.Error("OpenGang(nil) succeeded, want error")
	}
	if _, err := RunGang(nil); err == nil {
		t.Error("RunGang(nil) succeeded, want error")
	}

	w, _ := workload.ByName("2W1")
	mixed := []Options{
		{Workload: w, Policy: SpecICOUNT, Cycles: 1000},
		{Workload: w, Policy: SpecMFLUSH, Cycles: 2000},
	}
	if _, err := RunGang(mixed); err == nil || !strings.Contains(err.Error(), "lockstep window") {
		t.Errorf("RunGang with mixed budgets: err = %v, want lockstep-window error", err)
	}

	g, err := OpenGang([]Options{{Workload: w, Policy: SpecICOUNT, Cycles: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Observe(1, Probe{Every: 1, Fn: func(*Sample) {}}); err == nil {
		t.Error("Observe(out-of-range) succeeded, want error")
	}
	if err := g.Observe(0, Probe{Every: 0, Fn: func(*Sample) {}}); err == nil {
		t.Error("Observe with zero period succeeded, want error")
	}
	if err := g.Observe(0, Probe{Every: 1}); err == nil {
		t.Error("Observe with nil Fn succeeded, want error")
	}
	if _, err := g.FinishMember(-1); err == nil {
		t.Error("FinishMember(-1) succeeded, want error")
	}
	if _, err := g.FinishMember(0); err == nil {
		t.Error("FinishMember with empty window succeeded, want error")
	}
	g.Step(1000)
	if _, err := g.FinishMember(0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.FinishMember(0); err == nil {
		t.Error("double FinishMember succeeded, want error")
	}
	if err := g.Observe(0, Probe{Every: 1, Fn: func(*Sample) {}}); err == nil {
		t.Error("Observe on finished member succeeded, want error")
	}
	defer func() {
		if recover() == nil {
			t.Error("Step on a fully finished gang did not panic")
		}
	}()
	g.Step(1)
}

// TestGangParallelismClamps pins SetParallelism's clamping and the
// OpenGang default.
func TestGangParallelismClamps(t *testing.T) {
	opts := gangOptions(t, "2W1", 1, 0, 1000)
	g, err := OpenGang(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := runtime.GOMAXPROCS(0)
	if want > len(opts) {
		want = len(opts)
	}
	if got := g.Parallelism(); got != want {
		t.Errorf("default parallelism = %d, want min(GOMAXPROCS, width) = %d", got, want)
	}
	g.SetParallelism(0)
	if got := g.Parallelism(); got != 1 {
		t.Errorf("SetParallelism(0) -> %d, want clamp to 1", got)
	}
	g.SetParallelism(99)
	if got := g.Parallelism(); got != len(opts) {
		t.Errorf("SetParallelism(99) -> %d, want clamp to width %d", got, len(opts))
	}
}

// TestSharedStreamTrim exercises the stream memo directly: cursors at
// skewed positions read identical content, trimming drops only chunks
// below the slowest cursor, and released cursors stop pinning memory.
func TestSharedStreamTrim(t *testing.T) {
	opts := gangOptions(t, "2W1", 11, 0, 1)
	g, err := OpenGang(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.streams) == 0 {
		t.Fatal("policy-sweep gang built no shared streams")
	}
	st := g.streams[0]
	if len(st.cursors) != len(opts) {
		t.Fatalf("stream has %d cursors, want one per member (%d)", len(st.cursors), len(opts))
	}

	// Advance one cursor far ahead; the window must retain everything the
	// laggards still need.
	lead, lag := st.cursors[0], st.cursors[1]
	var a, b isa.Inst
	for i := 0; i < 3*streamChunkSize; i++ {
		lead.Next(&a)
	}
	st.trim()
	if w := st.w.Load(); w.base != 0 {
		t.Fatalf("trim dropped chunks below a live cursor: base = %d", w.base)
	}
	// Catch the laggards up past the first chunks; now trim may drop.
	for _, cur := range st.cursors[1:] {
		for i := 0; i < 2*streamChunkSize; i++ {
			cur.Next(&b)
		}
	}
	st.trim()
	if w := st.w.Load(); w.base != 2*streamChunkSize {
		t.Fatalf("trim retained consumed chunks: base = %d, want %d", w.base, 2*streamChunkSize)
	}

	// Identical positions must yield identical instructions: replay the
	// lead's history on the lagging cursor and compare.
	lead2 := &streamCursor{stream: st, pos: lag.pos}
	st.cursors = append(st.cursors, lead2)
	for i := 0; i < streamChunkSize; i++ {
		lag.Next(&a)
		lead2.Next(&b)
		if a != b {
			t.Fatalf("cursors diverged at position %d: %+v vs %+v", lag.pos-1, a, b)
		}
	}

	// Releasing every other cursor lets the lead's position gate the trim.
	for _, cur := range []*streamCursor{lag, lead2, st.cursors[2], st.cursors[3]} {
		st.release(cur)
	}
	if len(st.cursors) != 1 || st.cursors[0] != lead {
		t.Fatalf("release left wrong cursors: %d remaining", len(st.cursors))
	}
	st.trim()
	if w := st.w.Load(); w.base != 3*streamChunkSize {
		t.Fatalf("trim after release: base = %d, want %d", w.base, 3*streamChunkSize)
	}
}
