package sim

import "testing"

// FuzzParseSpec hammers the one policy-name parser every CLI, spec file
// and wire job goes through. Two properties: no input panics it, and
// every accepted input round-trips — ParseSpec(spec.String()) yields
// the same spec, which is what keeps campaign job keys (hashes of
// PolicySpec.String) stable however a user spelled the policy.
// The seed corpus is the exact-string cases pinned by parse_test.go.
func FuzzParseSpec(f *testing.F) {
	for _, s := range []string{
		// Accepted spellings (TestParseSpec).
		"ICOUNT", "icount", "FLUSH-S30", "fl-s100", "FLUSH-NS", "fl-ns",
		"STALL-S50", "MFLUSH", "mflush-h4", " Icount ", "FL-S1",
		// Rejected spellings with pinned error strings
		// (TestParseSpecErrors / TestParseSpecErrorMessages).
		"", "FLUSH", "FLUSH-S", "FLUSH-S0", "FLUSH-Sx", "fl-sx",
		"STALL-S-5", "MFLUSH-H0", "MFLUSH-Hx", "banana",
		// Prefix/suffix edge shapes.
		"FL-S", "MFLUSH-H", "FLUSH-S+5", "STALL-S999999999999999999999",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		again, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q) accepted as %v, whose String %q does not re-parse: %v",
				s, spec, spec.String(), err)
		}
		if again != spec {
			t.Fatalf("round trip drift: ParseSpec(%q) = %v, but ParseSpec(%q) = %v",
				s, spec, spec.String(), again)
		}
	})
}
