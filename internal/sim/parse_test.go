package sim

import "testing"

func TestParseSpec(t *testing.T) {
	cases := map[string]PolicySpec{
		"ICOUNT":    SpecICOUNT,
		"icount":    SpecICOUNT,
		"FLUSH-S30": SpecFlushS(30),
		"fl-s100":   SpecFlushS(100),
		"FLUSH-NS":  SpecFlushNS,
		"fl-ns":     SpecFlushNS,
		"STALL-S50": SpecStallS(50),
		"MFLUSH":    SpecMFLUSH,
		"mflush-h4": {Kind: MFLUSH, History: 4},
	}
	for in, want := range cases {
		got, err := ParseSpec(in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", in, got, want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, in := range []string{"", "FLUSH", "FLUSH-S", "FLUSH-S0", "FLUSH-Sx",
		"STALL-S-5", "MFLUSH-H0", "MFLUSH-Hx", "banana"} {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted", in)
		}
	}
}

// TestParseSpecErrorMessages pins the exact user-facing strings: they
// surface verbatim in CLI errors, campaign-spec rejections and mflushd
// 400 responses, so changing one is an interface change, not a cleanup.
func TestParseSpecErrorMessages(t *testing.T) {
	cases := map[string]string{
		"FLUSH-S0":  `bad FLUSH trigger in "FLUSH-S0"`,
		"fl-sx":     `bad FLUSH trigger in "fl-sx"`,
		"STALL-S-5": `bad STALL trigger in "STALL-S-5"`,
		"MFLUSH-H0": `bad MFLUSH history depth in "MFLUSH-H0"`,
		"MFLUSH-Hx": `bad MFLUSH history depth in "MFLUSH-Hx"`,
		"banana":    `unknown policy "banana" (ICOUNT, FLUSH-S<n>, FLUSH-NS, STALL-S<n>, MFLUSH, MFLUSH-H<n>)`,
		"":          `unknown policy "" (ICOUNT, FLUSH-S<n>, FLUSH-NS, STALL-S<n>, MFLUSH, MFLUSH-H<n>)`,
	}
	for in, want := range cases {
		_, err := ParseSpec(in)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted", in)
			continue
		}
		if err.Error() != want {
			t.Errorf("ParseSpec(%q) error = %q, want %q", in, err.Error(), want)
		}
	}
}

// TestParseSpecRoundTrips guards the CLI contract: every name String()
// produces is re-parseable to the same spec.
func TestParseSpecRoundTrips(t *testing.T) {
	specs := []PolicySpec{
		SpecICOUNT, SpecFlushNS, SpecMFLUSH,
		SpecFlushS(30), SpecFlushS(100), SpecStallS(70),
		{Kind: MFLUSH, History: 4},
	}
	for _, s := range specs {
		got, err := ParseSpec(s.String())
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", s.String(), err)
			continue
		}
		if got != s {
			t.Errorf("round trip %q = %+v, want %+v", s.String(), got, s)
		}
	}
}
