package sim

import (
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

func TestTweakIsApplied(t *testing.T) {
	w, _ := workload.ByName("2W3")
	base := runOrDie(t, Options{Workload: w, Policy: SpecICOUNT,
		Warmup: 20000, Cycles: 20000, Seed: 1})
	// Starving the machine of MSHRs must visibly change behaviour.
	tiny := runOrDie(t, Options{Workload: w, Policy: SpecICOUNT,
		Warmup: 20000, Cycles: 20000, Seed: 1,
		Tweak: func(c *config.Config) { c.Core.MSHREntries = 1 }})
	if tiny.IPC >= base.IPC {
		t.Fatalf("1-entry MSHR IPC %.3f not below default %.3f", tiny.IPC, base.IPC)
	}
	if tiny.Counters.Get("mshr.full_retries") == 0 {
		t.Fatal("1-entry MSHR never filled")
	}
}

func TestTweakValidationFailure(t *testing.T) {
	w, _ := workload.ByName("2W1")
	_, err := Run(Options{Workload: w, Policy: SpecICOUNT, Cycles: 1000,
		Tweak: func(c *config.Config) { c.Core.IntQueue = 0 }})
	if err == nil {
		t.Fatal("invalid tweaked config accepted")
	}
}

func TestSeedChangesWorkloadNotShape(t *testing.T) {
	// Different seeds give different streams (different absolute IPC)
	// but the policy ordering on a strongly memory-bound pair holds.
	w, _ := workload.ByName("2W3")
	for _, seed := range []uint64{1, 2, 3} {
		ic := runOrDie(t, Options{Workload: w, Policy: SpecICOUNT,
			Warmup: 60000, Cycles: 60000, Seed: seed})
		fl := runOrDie(t, Options{Workload: w, Policy: SpecFlushS(30),
			Warmup: 60000, Cycles: 60000, Seed: seed})
		if fl.IPC <= ic.IPC {
			t.Errorf("seed %d: FLUSH-S30 (%.3f) not above ICOUNT (%.3f) on mcf+gzip",
				seed, fl.IPC, ic.IPC)
		}
	}
}

func TestWarmupExcludedFromMeasurement(t *testing.T) {
	w, _ := workload.ByName("2W1")
	warm := runOrDie(t, Options{Workload: w, Policy: SpecICOUNT,
		Warmup: 60000, Cycles: 30000, Seed: 1})
	cold := runOrDie(t, Options{Workload: w, Policy: SpecICOUNT,
		Warmup: 0, Cycles: 30000, Seed: 1})
	// Cold-start measurement includes TLB walks and cache fills, so the
	// warmed run must report clearly higher throughput.
	if warm.IPC <= cold.IPC {
		t.Fatalf("warmed IPC %.3f not above cold %.3f", warm.IPC, cold.IPC)
	}
}
