package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/cmp"
	"repro/internal/core"
)

// This file is the audited home of simulator-core concurrency: the gang
// chunk loop fans members across worker goroutines behind deterministic
// barriers, and the determinism analyzer forbids `go` statements in
// every other core file.
//
//mflush:gang-barrier-file

// GangSession runs N member simulations — variants of one study, such as
// a policy sweep over a shared (workload, seed) — in lockstep: every
// member advances through the same cycle window together, one chunk at a
// time. Opening members as a gang lets the immutable inputs (workload
// profiles, prewarm plans, and above all the synthesised instruction
// streams) be built once and shared, and lets the chunk loop fan members
// out across goroutines behind deterministic barriers, so a gang's
// aggregate simulated-cycles-per-second multiplies with both sharing and
// available cores. Every member's observable output is bit-identical to
// a solo Session over the same Options — the invariant internal/simtest
// (DiffGang) exists to enforce.
//
// Per-member mutable state is kept in struct-of-arrays form: parallel
// slices indexed by member, one entry per chip, sample, probe list and
// measurement window. Members never share mutable state; the only
// cross-member structures are the memoised immutable streams
// (gangstream.go), which member goroutines read lock-free.
//
// Lifecycle mirrors Session, widened: OpenGang -> (Step | StepContext |
// Snapshot | Observe | ResetMeasurement | FinishMember)* -> Finish.
// Drive a gang from one goroutine; the parallelism inside Step is the
// session's own, invisible to callers, and results are independent of
// both SetParallelism and GOMAXPROCS (test-enforced).
type GangSession struct {
	opts  []Options
	chips []*cmp.Chip

	// Per-member measurement windows (Session.measureStart/resetGen in
	// struct-of-arrays form).
	measureStart []uint64
	resetGen     []uint64
	finished     []bool
	results      []*Result

	// Per-member observation state: probe lists and the reusable
	// sample/totals scratch each member's goroutine refreshes.
	probes  [][]probeState
	samples []Sample
	totals  []cmp.Totals
	mflush  [][]*core.MFLUSH

	// cursors[m] lists member m's shared-stream cursors, released when
	// the member finishes so it stops pinning the streams' trim marks.
	cursors [][]*streamCursor
	// streams lists every shared stream in creation order, for the
	// barrier-time trims.
	streams []*sharedStream

	cycle    uint64
	open     int
	parallel int
	// active is the scratch index list rebuilt each chunk.
	active []int
}

// gangStride is the internal lockstep chunk: members run this many
// cycles between barriers. Barriers are where cancellation is observed
// and consumed stream chunks are trimmed, so the stride bounds both
// cancellation latency and the shared streams' retained window. Results
// never depend on it (chunking is invariant, test-enforced).
const gangStride = 2048

// OpenGang builds one machine per member and returns the gang positioned
// at cycle zero. Each member's Options are honoured exactly as Open
// does; members may differ in any field, though sharing (and therefore
// speedup) is greatest for members that differ only in policy or tweak.
// The gang's internal parallelism defaults to min(GOMAXPROCS, width);
// SetParallelism overrides it.
func OpenGang(opts []Options) (*GangSession, error) {
	if len(opts) == 0 {
		return nil, fmt.Errorf("sim: gang needs at least one member")
	}
	shared := newGangShared()
	g := &GangSession{
		opts:         append([]Options(nil), opts...),
		chips:        make([]*cmp.Chip, len(opts)),
		measureStart: make([]uint64, len(opts)),
		resetGen:     make([]uint64, len(opts)),
		finished:     make([]bool, len(opts)),
		results:      make([]*Result, len(opts)),
		probes:       make([][]probeState, len(opts)),
		samples:      make([]Sample, len(opts)),
		totals:       make([]cmp.Totals, len(opts)),
		mflush:       make([][]*core.MFLUSH, len(opts)),
		cursors:      make([][]*streamCursor, len(opts)),
		open:         len(opts),
	}
	for m, opt := range opts {
		before := cursorsSnapshot(shared)
		chip, err := buildChipShared(opt, shared)
		if err != nil {
			return nil, fmt.Errorf("sim: gang member %d: %w", m, err)
		}
		g.chips[m] = chip
		g.mflush[m] = mflushPolicies(chip)
		g.cursors[m] = cursorsSince(shared, before)
	}
	g.streams = shared.order
	g.parallel = runtime.GOMAXPROCS(0)
	if g.parallel > len(opts) {
		g.parallel = len(opts)
	}
	if g.parallel < 1 {
		g.parallel = 1
	}
	return g, nil
}

// cursorsSnapshot records how many cursors each stream holds, so the
// cursors a member's build adds can be attributed to that member.
func cursorsSnapshot(gs *gangShared) []int {
	counts := make([]int, len(gs.order))
	for i, s := range gs.order {
		counts[i] = len(s.cursors)
	}
	return counts
}

// cursorsSince returns every cursor created after the snapshot was
// taken: the cursors belonging to the member just built.
func cursorsSince(gs *gangShared, before []int) []*streamCursor {
	var out []*streamCursor
	for i, s := range gs.order {
		from := 0
		if i < len(before) {
			from = before[i]
		}
		out = append(out, s.cursors[from:]...)
	}
	return out
}

// Width returns the gang's member count (finished members included).
func (g *GangSession) Width() int { return len(g.opts) }

// Open returns how many members have not yet been finished.
func (g *GangSession) Open() int { return g.open }

// Cycle returns the lockstep cycle every open member has reached
// (warm-up included).
func (g *GangSession) Cycle() uint64 { return g.cycle }

// MeasuredCycles returns member m's current measurement-window length.
func (g *GangSession) MeasuredCycles(m int) uint64 {
	return g.chips[m].Now() - g.measureStart[m]
}

// Parallelism returns the goroutine budget Step spreads members over.
func (g *GangSession) Parallelism() int { return g.parallel }

// SetParallelism bounds the goroutines Step uses (clamped to [1, width]).
// Results are independent of the setting — members are independent
// machines and shared streams are immutable — so this is purely a
// throughput knob. Call it between Steps, not during one.
func (g *GangSession) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(g.opts) {
		n = len(g.opts)
	}
	g.parallel = n
}

// Step advances every open member by n cycles in lockstep, firing each
// member's due probes after each of its cycles. Probe functions run on
// the goroutine stepping their member: probes of different members may
// fire concurrently with each other (never with probes of their own
// member), so a probe must touch only its own member's state — the
// Sample it receives and data private to that member.
func (g *GangSession) Step(n uint64) {
	// Background contexts never cancel, so the error is impossible.
	_, _ = g.StepContext(context.Background(), n)
}

// StepContext is Step with cooperative cancellation: it checks ctx at
// every internal chunk barrier and returns the cycles actually stepped
// together with ctx's error when cancelled early. All open members
// always stop at the same lockstep cycle, so a cancelled gang is still
// consistent — stepping it again (or finishing it) behaves exactly as
// if the original Step had been issued in smaller chunks.
func (g *GangSession) StepContext(ctx context.Context, n uint64) (uint64, error) {
	if g.open == 0 {
		panic("sim: Step on a finished gang session")
	}
	var done uint64
	for done < n {
		if err := ctx.Err(); err != nil {
			return done, err
		}
		c := n - done
		if c > gangStride {
			c = gangStride
		}
		g.runChunk(c)
		done += c
	}
	return done, nil
}

// runChunk advances every open member by c cycles, striding members
// across the parallelism budget, then waits for all of them (the
// deterministic barrier) and trims the shared streams.
func (g *GangSession) runChunk(c uint64) {
	act := g.active[:0]
	for m, fin := range g.finished {
		if !fin {
			act = append(act, m)
		}
	}
	g.active = act

	if p := min(g.parallel, len(act)); p > 1 {
		var wg sync.WaitGroup
		for w := 0; w < p; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for k := w; k < len(act); k += p {
					g.stepMember(act[k], c)
				}
			}(w)
		}
		wg.Wait()
	} else {
		for _, m := range act {
			g.stepMember(m, c)
		}
	}
	g.cycle += c
	for _, s := range g.streams {
		s.trim()
	}
}

// stepMember advances one member by n cycles on the calling goroutine,
// mirroring Session.Step (probe-free fast path included).
//
//mflush:hotpath
func (g *GangSession) stepMember(m int, n uint64) {
	chip := g.chips[m]
	if len(g.probes[m]) == 0 {
		chip.Run(n)
		return
	}
	for i := uint64(0); i < n; i++ {
		chip.Tick()
		g.tickProbes(m)
	}
}

// tickProbes advances member m's probe countdowns by one cycle and fires
// the due ones, refreshing m's sample at most once per cycle (exactly
// Session.tickProbes, against member-local state).
//
//mflush:hotpath
func (g *GangSession) tickProbes(m int) {
	refreshed := false
	for i := range g.probes[m] {
		ps := &g.probes[m][i]
		if ps.countdown--; ps.countdown > 0 {
			continue
		}
		ps.countdown = ps.p.Every
		if !refreshed {
			g.refreshSample(m)
			refreshed = true
		}
		ps.p.Fn(&g.samples[m])
	}
}

// refreshSample fills member m's reusable sample from its chip.
//
//mflush:hotpath
func (g *GangSession) refreshSample(m int) {
	refreshSampleInto(&g.samples[m], &g.totals[m], g.chips[m], g.mflush[m],
		g.measureStart[m], g.resetGen[m])
}

// ResetMeasurement zeroes every open member's accumulated metrics and
// restarts their measurement windows at the current lockstep cycle —
// the gang-wide warm-up boundary, exactly Session.ResetMeasurement per
// member. Finished members are left untouched.
func (g *GangSession) ResetMeasurement() {
	for m, fin := range g.finished {
		if fin {
			continue
		}
		for _, c := range g.chips[m].Cores() {
			c.ResetMeasurement()
		}
		g.chips[m].L2().ResetStats()
		g.measureStart[m] = g.chips[m].Now()
		g.resetGen[m]++
	}
}

// Snapshot refreshes and returns member m's interval digest. The Sample
// shares the member's reused buffers — valid until the next Step,
// Snapshot or probe firing for that member; use Sample.Point to retain
// a copy.
func (g *GangSession) Snapshot(m int) *Sample {
	g.refreshSample(m)
	return &g.samples[m]
}

// Observe registers a probe for member m; see Probe for the firing
// invariants and Step for the gang's concurrency contract. Probes may
// be added to any unfinished member at any point before it finishes.
func (g *GangSession) Observe(m int, p Probe) error {
	if m < 0 || m >= len(g.opts) {
		return fmt.Errorf("sim: gang has no member %d", m)
	}
	if g.finished[m] {
		return fmt.Errorf("sim: Observe on finished gang member %d", m)
	}
	if p.Every == 0 {
		return fmt.Errorf("sim: probe needs a positive firing period")
	}
	if p.Fn == nil {
		return fmt.Errorf("sim: probe needs a firing function")
	}
	g.probes[m] = append(g.probes[m], probeState{p: p, countdown: p.Every})
	return nil
}

// FinishMember validates member m's machine invariants, collects its
// Result over its measurement window, and removes it from the lockstep:
// subsequent Steps advance only the remaining members, and the member's
// shared-stream cursors are released so they stop pinning stream memory.
// The rest of the gang is unaffected — bit-identically so.
func (g *GangSession) FinishMember(m int) (*Result, error) {
	if m < 0 || m >= len(g.opts) {
		return nil, fmt.Errorf("sim: gang has no member %d", m)
	}
	if g.finished[m] {
		return nil, fmt.Errorf("sim: gang member %d already finished", m)
	}
	measured := g.MeasuredCycles(m)
	if measured == 0 {
		return nil, fmt.Errorf("sim: gang member %d finished with an empty measurement window", m)
	}
	g.finished[m] = true
	g.open--
	for _, cur := range g.cursors[m] {
		cur.stream.release(cur)
	}
	g.cursors[m] = nil
	res, err := collect(g.chips[m], g.opts[m], measured)
	if err != nil {
		return nil, fmt.Errorf("sim: gang member %d: %w", m, err)
	}
	g.results[m] = res
	return res, nil
}

// Finish finishes every still-open member (in member order) and returns
// the full width of results, including those collected earlier by
// FinishMember. The first member error is returned after every member
// has been finished, so a partial failure still closes the gang.
func (g *GangSession) Finish() ([]*Result, error) {
	var firstErr error
	for m := range g.opts {
		if g.finished[m] {
			continue
		}
		if _, err := g.FinishMember(m); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return g.results, firstErr
}

// RunGang executes one simulation per member to completion in lockstep —
// the gang analogue of Run, and bit-identical to running each member's
// Options through Run individually (test-enforced). All members must
// share one cycle budget and warm-up length (gang batching groups jobs
// that way); per-member Interval/OnSample sampling is honoured exactly
// as Run does it.
func RunGang(opts []Options) ([]*Result, error) {
	if len(opts) == 0 {
		return nil, fmt.Errorf("sim: empty gang")
	}
	for i, o := range opts {
		if o.Cycles == 0 {
			return nil, fmt.Errorf("sim: gang member %d: zero cycle budget", i)
		}
		if o.Cycles != opts[0].Cycles || o.Warmup != opts[0].Warmup {
			return nil, fmt.Errorf("sim: gang member %d budget (%d cycles, %d warmup) differs from member 0 (%d, %d); gangs run one lockstep window",
				i, o.Cycles, o.Warmup, opts[0].Cycles, opts[0].Warmup)
		}
	}
	g, err := OpenGang(opts)
	if err != nil {
		return nil, err
	}
	if w := opts[0].Warmup; w > 0 {
		g.Step(w)
		g.ResetMeasurement()
	}
	recs := make([]*Recorder, len(opts))
	for m, o := range opts {
		if o.Interval > 0 {
			// Registered after warm-up so each member's series covers
			// exactly the measured window, like Run's.
			recs[m] = &Recorder{OnPoint: o.OnSample}
			if err := g.Observe(m, recs[m].Probe(o.Interval)); err != nil {
				return nil, err
			}
		}
	}
	g.Step(opts[0].Cycles)
	results, err := g.Finish()
	if err != nil {
		return nil, err
	}
	for m, rec := range recs {
		if rec != nil {
			results[m].Samples = rec.Points
		}
	}
	return results, nil
}
