// Replay-path regression tests that need simtest.DiffGang, which
// imports sim — so they live in the external test package.

package sim_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/simtest"
	"repro/internal/synth"
)

// recordStream captures n instructions of a benchmark exactly as a live
// run would synthesise them for thread slot g, optionally stamping a
// miss-latency override onto every k-th load to exercise the far-memory
// path.
func recordStream(t *testing.T, bench string, seed uint64, g, n int, overrideEvery int, lat uint32) []isa.Inst {
	t.Helper()
	prof, ok := synth.ByName(bench)
	if !ok {
		t.Fatalf("no benchmark %s", bench)
	}
	streamSeed, base := sim.ReplayStream(seed, g)
	gen := synth.NewGenerator(prof, streamSeed, base)
	out := make([]isa.Inst, n)
	loads := 0
	for i := range out {
		gen.Next(&out[i])
		if overrideEvery > 0 && out[i].Class == isa.ClassLoad {
			loads++
			if loads%overrideEvery == 0 {
				out[i].MissLatency = lat
			}
		}
	}
	return out
}

// TestReplayGangMatchesSolo freezes the satellite invariant: a gang
// whose members replay recorded traces — including traces with
// miss-latency overrides, and two members replaying the same trace
// under different policies — is bit-identical to running each member
// solo. Replay members bypass the gang's stream memoisation (they read
// slices, not generators), and this proves the bypass is complete.
func TestReplayGangMatchesSolo(t *testing.T) {
	if testing.Short() {
		t.Skip("differential replay gang run")
	}
	plain := recordStream(t, "mcf", 7, 0, 40000, 0, 0)
	far := recordStream(t, "art", 7, 1, 40000, 3, 900)
	window := sim.Options{Warmup: 8000, Cycles: 12000, Seed: 7, Interval: 4000}

	mk := func(p sim.PolicySpec, traces ...[]isa.Inst) sim.Options {
		o := window
		o.Policy = p
		o.ThreadTraces = traces
		return o
	}
	opts := []sim.Options{
		mk(sim.SpecICOUNT, plain, far),
		mk(sim.SpecMFLUSH, plain, far), // same traces, different policy
		mk(sim.SpecICOUNT, far),
	}
	if err := simtest.DiffGang(opts, simtest.DiffConfig{Chunk: 2500}); err != nil {
		t.Fatal(err)
	}
}

// TestReplayCoreDerivation pins the core-count rules for replay runs:
// an explicit Options.Cores always wins, and when unset the derivation
// reads ThreadsPerCore from the tweaked configuration — deriving with
// the built-in default and tweaking afterwards is the bug this test
// retires.
func TestReplayCoreDerivation(t *testing.T) {
	traces := [][]isa.Inst{
		recordStream(t, "gzip", 1, 0, 20000, 0, 0),
		recordStream(t, "vpr", 1, 1, 20000, 0, 0),
	}
	window := sim.Options{Policy: sim.SpecICOUNT, ThreadTraces: traces,
		Warmup: 4000, Cycles: 4000, Seed: 1}

	// Default SMT degree is 2: two traces share one core.
	res, err := sim.Run(window)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 1 {
		t.Fatalf("2 traces, default tpc=2: got %d cores, want 1", len(res.PerCore))
	}

	// A Tweak narrowing ThreadsPerCore to 1 must be honoured by the
	// derivation: two traces now need two cores, not one core with a
	// rejected second context.
	single := window
	single.Tweak = func(c *config.Config) { c.Core.ThreadsPerCore = 1 }
	res, err = sim.Run(single)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 2 {
		t.Fatalf("2 traces, tweaked tpc=1: got %d cores, want 2", len(res.PerCore))
	}

	// Explicit Cores wins over any derivation.
	wide := window
	wide.Cores = 2
	res, err = sim.Run(wide)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 2 {
		t.Fatalf("explicit Cores=2: got %d cores, want 2", len(res.PerCore))
	}
}
