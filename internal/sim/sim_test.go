package sim

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/workload"
)

const (
	testWarmup = 20000
	testCycles = 30000
)

func runOrDie(t *testing.T, opt Options) *Result {
	t.Helper()
	res, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSpecStrings(t *testing.T) {
	cases := map[string]PolicySpec{
		"ICOUNT":    SpecICOUNT,
		"FLUSH-S30": SpecFlushS(30),
		"FLUSH-NS":  SpecFlushNS,
		"STALL-S50": SpecStallS(50),
		"MFLUSH":    SpecMFLUSH,
		"MFLUSH-H4": {Kind: MFLUSH, History: 4},
	}
	for want, spec := range cases {
		if got := spec.String(); got != want {
			t.Errorf("spec string = %q, want %q", got, want)
		}
	}
}

func TestSpecBuildErrors(t *testing.T) {
	cfg := config.Default(1)
	if _, err := SpecFlushS(0).Build(&cfg); err == nil {
		t.Error("FLUSH-S0 should fail to build")
	}
	if _, err := SpecStallS(0).Build(&cfg); err == nil {
		t.Error("STALL-S0 should fail to build")
	}
	if _, err := (PolicySpec{Kind: PolicyKind(99)}).Build(&cfg); err == nil {
		t.Error("unknown policy should fail to build")
	}
}

func TestRunBasicProgress(t *testing.T) {
	w, _ := workload.ByName("2W1")
	res := runOrDie(t, Options{
		Workload: w, Policy: SpecICOUNT,
		Warmup: testWarmup, Cycles: testCycles, Seed: 1,
	})
	if res.IPC <= 0.3 {
		t.Fatalf("2W1 ICOUNT IPC %.3f implausibly low", res.IPC)
	}
	if res.IPC > 8 {
		t.Fatalf("IPC %.3f exceeds machine width", res.IPC)
	}
	if len(res.Committed) != 2 {
		t.Fatalf("committed slice has %d entries", len(res.Committed))
	}
	for tid, n := range res.Committed {
		if n == 0 {
			t.Fatalf("thread %d starved", tid)
		}
	}
	if res.Counters.Get("l2.requests") == 0 {
		t.Fatal("no L2 traffic")
	}
}

func TestRunDeterminism(t *testing.T) {
	w, _ := workload.ByName("2W3")
	opt := Options{Workload: w, Policy: SpecFlushS(30),
		Warmup: 10000, Cycles: 15000, Seed: 7}
	a := runOrDie(t, opt)
	b := runOrDie(t, opt)
	if a.IPC != b.IPC {
		t.Fatalf("nondeterministic IPC: %v vs %v", a.IPC, b.IPC)
	}
	if a.Counters.String() != b.Counters.String() {
		t.Fatal("nondeterministic counters")
	}
	if a.WastedEnergy() != b.WastedEnergy() {
		t.Fatal("nondeterministic energy")
	}
}

func TestPoliciesSeeIdenticalWorkload(t *testing.T) {
	// The same seed must give every policy the same instruction stream:
	// fetched-instruction differences come only from policy behaviour,
	// and committed work differs while the underlying trace matches.
	w, _ := workload.ByName("2W1")
	a := runOrDie(t, Options{Workload: w, Policy: SpecICOUNT, Cycles: 10000, Seed: 3})
	b := runOrDie(t, Options{Workload: w, Policy: SpecMFLUSH, Cycles: 10000, Seed: 3})
	// Weak but meaningful: both ran the same benchmarks; per-thread
	// commit counts are within the same order of magnitude.
	for i := range a.Committed {
		if a.Committed[i] == 0 || b.Committed[i] == 0 {
			t.Fatalf("thread %d starved under some policy", i)
		}
	}
}

func TestFlushBeatsICOUNTOnMemoryBoundPairSingleCore(t *testing.T) {
	// The Figure 2 headline on its most extreme pair: 2W3 = mcf+gzip.
	w, _ := workload.ByName("2W3")
	ic := runOrDie(t, Options{Workload: w, Policy: SpecICOUNT,
		Warmup: testWarmup, Cycles: testCycles, Seed: 11})
	fl := runOrDie(t, Options{Workload: w, Policy: SpecFlushS(30),
		Warmup: testWarmup, Cycles: testCycles, Seed: 11})
	if gain := Speedup(fl, ic); gain < 0.05 {
		t.Fatalf("FLUSH-S30 vs ICOUNT on mcf+gzip: %+.1f%%, expected a clear win", gain*100)
	}
	if fl.Flushes == 0 {
		t.Fatal("FLUSH never fired on a memory-bound workload")
	}
}

func TestMFLUSHRunsOnMulticore(t *testing.T) {
	w, _ := workload.ByName("4W3")
	res := runOrDie(t, Options{Workload: w, Policy: SpecMFLUSH,
		Warmup: testWarmup, Cycles: testCycles, Seed: 5})
	if res.IPC <= 0 {
		t.Fatal("MFLUSH made no progress")
	}
	if len(res.PerCore) != 2 {
		t.Fatalf("per-core IPC entries = %d, want 2", len(res.PerCore))
	}
	if res.HitLatency.Count() == 0 {
		t.Fatal("no L2 hits measured")
	}
}

func TestRunValidation(t *testing.T) {
	w, _ := workload.ByName("2W1")
	if _, err := Run(Options{Workload: w, Policy: SpecICOUNT}); err == nil {
		t.Error("zero cycles should error")
	}
	if _, err := Run(Options{Workload: workload.Workload{Name: "bad", Letters: "8"},
		Policy: SpecICOUNT, Cycles: 100}); err == nil {
		t.Error("unknown benchmark letter should error")
	}
	big, _ := workload.ByName("8W1")
	if _, err := Run(Options{Workload: big, Policy: SpecICOUNT, Cycles: 100, Cores: 1}); err == nil {
		t.Error("8 threads on 1 core should error")
	}
}

func TestSpeedupMath(t *testing.T) {
	a := &Result{IPC: 2.2}
	b := &Result{IPC: 2.0}
	if got := Speedup(a, b); got < 0.099 || got > 0.101 {
		t.Fatalf("speedup = %v, want 0.1", got)
	}
	// A zero-IPC baseline has no defined speedup: NaN, not a silent 0.
	if got := Speedup(a, &Result{}); !math.IsNaN(got) {
		t.Fatalf("speedup over zero baseline = %v, want NaN", got)
	}
}
