package sim

import (
	"fmt"

	"repro/internal/cmp"
	"repro/internal/core"
)

// Session is an open, incrementally steppable simulation — the stateful
// form of Run. Where Run is a run-to-completion black box, a Session
// exposes the temporal behaviour the paper's mechanism is about: callers
// advance the machine in arbitrary chunks with Step, read cheap interval
// digests with Snapshot, register periodic Probes with Observe, and
// close the run with Finish to obtain the same Result a one-shot Run
// would have produced.
//
// Lifecycle: Open -> (Step | Snapshot | Observe | ResetMeasurement)* ->
// Finish. A session is not safe for concurrent use; drive it from one
// goroutine. Run itself is Open -> Step(Warmup) -> ResetMeasurement ->
// Step(Cycles) -> Finish, so stepping a session in any chunking
// reproduces Run bit-for-bit (test-enforced).
type Session struct {
	opt  Options
	chip *cmp.Chip
	// measureStart is the absolute cycle of the last ResetMeasurement
	// (zero until one happens): the start of the measurement window.
	// resetGen counts the resets, so recorders can rebase their deltas.
	measureStart uint64
	resetGen     uint64
	finished     bool

	probes []probeState
	// sample is the reusable digest refreshed by Snapshot and probe
	// firings; totals is its scratch. Reusing both keeps the observing
	// hot path allocation-free.
	sample Sample
	totals cmp.Totals
	// mflush caches the per-core MFLUSH policies (nil entries, or a nil
	// slice, for other policies) so refreshes skip the type assertion.
	mflush []*core.MFLUSH
}

// Open builds the machine for opt and returns a session positioned at
// cycle zero, before any warm-up. Unlike Run, Open does not require a
// cycle budget: opt.Cycles and opt.Warmup only matter to Run's wrapper
// flow (and to naming in the Result); the caller decides how far to
// step. Everything else in opt (workload, policy, seed, tweak, traces)
// is honoured exactly as Run does.
func Open(opt Options) (*Session, error) {
	chip, err := buildChip(opt)
	if err != nil {
		return nil, err
	}
	return &Session{opt: opt, chip: chip, mflush: mflushPolicies(chip)}, nil
}

// mflushPolicies returns the per-core MFLUSH policies, or nil when any
// core runs a different policy — caching the type assertions so sample
// refreshes never repeat them.
func mflushPolicies(chip *cmp.Chip) []*core.MFLUSH {
	var out []*core.MFLUSH
	for _, c := range chip.Cores() {
		mf, ok := c.Policy().(*core.MFLUSH)
		if !ok {
			return nil
		}
		out = append(out, mf)
	}
	return out
}

// Step advances the simulation by n cycles, firing due probes after each
// cycle. With no probes registered it is exactly the chip's cycle loop;
// probes add countdown bookkeeping but no allocation.
//
//mflush:hotpath
func (s *Session) Step(n uint64) {
	if s.finished {
		panic("sim: Step on a finished session")
	}
	if len(s.probes) == 0 {
		s.chip.Run(n)
		return
	}
	for i := uint64(0); i < n; i++ {
		s.chip.Tick()
		s.tickProbes()
	}
}

// Cycle returns the absolute cycle the session has reached (warm-up
// included).
func (s *Session) Cycle() uint64 { return s.chip.Now() }

// MeasuredCycles returns the length of the current measurement window:
// cycles stepped since the last ResetMeasurement (or since Open).
func (s *Session) MeasuredCycles() uint64 { return s.chip.Now() - s.measureStart }

// ResetMeasurement zeroes every accumulated metric — per-core counters,
// energy accounts, per-thread commit counts, the L2 histograms and
// counters — without touching microarchitectural state, and restarts the
// measurement window at the current cycle. This is how warm-up is
// excluded: Run calls it between Step(Warmup) and Step(Cycles).
func (s *Session) ResetMeasurement() {
	for _, c := range s.chip.Cores() {
		c.ResetMeasurement()
	}
	s.chip.L2().ResetStats()
	s.measureStart = s.chip.Now()
	s.resetGen++
}

// Snapshot refreshes and returns the session's interval digest:
// cumulative per-thread committed counts, IPC, flushes, energy, L2
// hit/miss deltas over the measurement window, plus the MFLUSH MCReg
// state when that policy is running. The returned Sample shares the
// session's reused buffers — it is valid until the next Step, Snapshot
// or probe firing; use Sample.Point to retain a copy. Snapshot only
// reads, so interleaving it with Step never changes results.
func (s *Session) Snapshot() *Sample {
	s.refreshSample()
	return &s.sample
}

// refreshSample fills s.sample from the chip, reusing its slices.
//
//mflush:hotpath
func (s *Session) refreshSample() {
	refreshSampleInto(&s.sample, &s.totals, s.chip, s.mflush, s.measureStart, s.resetGen)
}

// refreshSampleInto fills sm from the chip, reusing sm's slices and the
// caller's totals scratch. It is the one sampling implementation shared
// by Session and GangSession (one call per gang member, against that
// member's own sample/totals pair, so concurrent members never share a
// buffer).
//
//mflush:hotpath
func refreshSampleInto(sm *Sample, totals *cmp.Totals, chip *cmp.Chip,
	mflush []*core.MFLUSH, measureStart, resetGen uint64) {
	chip.ReadTotals(totals)
	sm.Cycle = chip.Now()
	sm.MeasuredCycles = chip.Now() - measureStart
	sm.resetGen = resetGen
	sm.Committed = chip.AppendCommitted(sm.Committed[:0])
	if sm.MeasuredCycles > 0 {
		sm.IPC = float64(totals.Committed) / float64(sm.MeasuredCycles)
	} else {
		sm.IPC = 0
	}
	sm.Flushes = totals.Flushes
	sm.FlushedInsts = totals.FlushedInsts
	sm.WastedEnergy = totals.WastedEnergy
	sm.L2Hits = totals.L2Hits
	sm.L2Misses = totals.L2Misses
	if len(mflush) == 0 {
		sm.MCReg = nil
		return
	}
	if sm.MCReg == nil {
		sm.MCReg = make([][]uint8, len(mflush))
	}
	for i, mf := range mflush {
		sm.MCReg[i] = mf.MCReg().AppendSnapshot(sm.MCReg[i][:0])
	}
}

// Finish validates the machine's invariants and collects the Result over
// the measurement window (MeasuredCycles is the IPC denominator, so a
// session that stepped Warmup, reset, then stepped Cycles returns
// exactly Run's result). The session is closed afterwards: further
// Step/Observe calls panic or error, and a second Finish errors.
func (s *Session) Finish() (*Result, error) {
	if s.finished {
		return nil, fmt.Errorf("sim: session already finished")
	}
	measured := s.MeasuredCycles()
	if measured == 0 {
		return nil, fmt.Errorf("sim: session finished with an empty measurement window")
	}
	s.finished = true
	return collect(s.chip, s.opt, measured)
}
