package sim

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses a policy name into a PolicySpec. It accepts the names
// PolicySpec.String produces plus the paper's abbreviations, case
// insensitively: ICOUNT, FLUSH-S<n> (FL-S<n>), FLUSH-NS (FL-NS),
// STALL-S<n>, MFLUSH and MFLUSH-H<n>. Every CLI and campaign spec file
// parses policies through this one function, so a name accepted anywhere
// is accepted everywhere.
func ParseSpec(s string) (PolicySpec, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	switch {
	case u == "ICOUNT":
		return SpecICOUNT, nil
	case u == "FLUSH-NS" || u == "FL-NS":
		return SpecFlushNS, nil
	case u == "MFLUSH":
		return SpecMFLUSH, nil
	case strings.HasPrefix(u, "MFLUSH-H"):
		n, err := strconv.Atoi(u[len("MFLUSH-H"):])
		if err != nil || n < 1 {
			return PolicySpec{}, fmt.Errorf("bad MFLUSH history depth in %q", s)
		}
		return PolicySpec{Kind: MFLUSH, History: n}, nil
	case strings.HasPrefix(u, "FLUSH-S") || strings.HasPrefix(u, "FL-S"):
		n, err := strconv.Atoi(u[strings.Index(u, "-S")+2:])
		if err != nil || n < 1 {
			return PolicySpec{}, fmt.Errorf("bad FLUSH trigger in %q", s)
		}
		return SpecFlushS(n), nil
	case strings.HasPrefix(u, "STALL-S"):
		n, err := strconv.Atoi(u[len("STALL-S"):])
		if err != nil || n < 1 {
			return PolicySpec{}, fmt.Errorf("bad STALL trigger in %q", s)
		}
		return SpecStallS(n), nil
	default:
		return PolicySpec{}, fmt.Errorf("unknown policy %q (ICOUNT, FLUSH-S<n>, FLUSH-NS, STALL-S<n>, MFLUSH, MFLUSH-H<n>)", s)
	}
}
