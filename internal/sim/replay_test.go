package sim

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/synth"
)

// record captures n instructions of a benchmark as a replayable trace.
func record(t *testing.T, bench string, seed, base uint64, n int) []isa.Inst {
	t.Helper()
	prof, ok := synth.ByName(bench)
	if !ok {
		t.Fatalf("no benchmark %s", bench)
	}
	g := synth.NewGenerator(prof, seed, base)
	out := make([]isa.Inst, n)
	for i := range out {
		g.Next(&out[i])
	}
	return out
}

func TestReplayTracesRun(t *testing.T) {
	traces := [][]isa.Inst{
		record(t, "mcf", 1, 1<<34, 50000),
		record(t, "gzip", 2, 2<<34, 50000),
	}
	res, err := Run(Options{
		Policy: SpecMFLUSH, ThreadTraces: traces,
		Warmup: 20000, Cycles: 20000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "replay-2" {
		t.Fatalf("workload name = %q", res.Workload)
	}
	if len(res.Committed) != 2 || res.Committed[0] == 0 || res.Committed[1] == 0 {
		t.Fatalf("replay starved a thread: %v", res.Committed)
	}
	if len(res.PerCore) != 1 {
		t.Fatalf("replay of 2 traces should use 1 core, got %d", len(res.PerCore))
	}
}

func TestReplayDeterminism(t *testing.T) {
	traces := [][]isa.Inst{record(t, "vpr", 3, 1<<34, 30000)}
	opt := Options{Policy: SpecICOUNT, ThreadTraces: traces,
		Warmup: 10000, Cycles: 10000}
	a, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC != b.IPC || a.Counters.String() != b.Counters.String() {
		t.Fatal("replay nondeterministic")
	}
}

// TestReplayNameOverride guards the Options.Name plumbing: a replay run
// reports the supplied name instead of the synthetic replay-N.
func TestReplayNameOverride(t *testing.T) {
	traces := [][]isa.Inst{record(t, "mcf", 1, 1<<34, 20000)}
	res, err := Run(Options{
		Policy: SpecICOUNT, ThreadTraces: traces, Name: "mcf-trace",
		Warmup: 5000, Cycles: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "mcf-trace" {
		t.Fatalf("workload name = %q, want the Name override", res.Workload)
	}
	if got := res.Summary().Workload; got != "mcf-trace" {
		t.Fatalf("summary workload = %q", got)
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := Run(Options{Policy: SpecICOUNT, Cycles: 1000,
		ThreadTraces: [][]isa.Inst{{}}}); err == nil {
		t.Fatal("empty trace accepted")
	}
	many := make([][]isa.Inst, 3)
	for i := range many {
		many[i] = record(t, "gzip", uint64(i+1), uint64(i+1)<<34, 1000)
	}
	if _, err := Run(Options{Policy: SpecICOUNT, Cycles: 1000, Cores: 1,
		ThreadTraces: many}); err == nil {
		t.Fatal("3 traces on 1 core accepted")
	}
}
