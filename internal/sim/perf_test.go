package sim

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/workload"
)

// TestCycleLoopAllocBudget guards the zero-allocation cycle loop: after
// the recycling pools warm up, the steady-state simulation must stay well
// under 2 heap allocations per simulated cycle (the seed code spent ~13).
// Regressions here mean a pool or scratch buffer stopped being reused.
func TestCycleLoopAllocBudget(t *testing.T) {
	w, _ := workload.ByName("8W3")
	chip, err := buildChip(Options{Workload: w, Policy: SpecMFLUSH, Cycles: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pools: free lists, wheel buckets, bus buffers and issue
	// queue slots all reach steady capacity within a few thousand cycles.
	chip.Run(20000)

	const cycles = 20000
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	chip.Run(cycles)
	runtime.ReadMemStats(&after)

	allocs := after.Mallocs - before.Mallocs
	perCycle := float64(allocs) / float64(cycles)
	t.Logf("steady state: %d allocs over %d cycles (%.4f allocs/cycle)",
		allocs, cycles, perCycle)
	if perCycle > 2 {
		t.Fatalf("cycle loop allocates %.3f objects/cycle, budget is 2", perCycle)
	}
}

// fingerprint flattens every externally observable metric of a Result.
func fingerprint(r *Result) string {
	return fmt.Sprintf("ipc=%.12f committed=%v percore=%v flushes=%d wasted=%.9f flushed=%d hitlat=%s counters=%s",
		r.IPC, r.Committed, r.PerCore, r.Flushes, r.WastedEnergy(),
		r.Energy.FlushedTotal(), r.HitLatency.String(), r.Counters.String())
}

// TestRecyclingDeterminism runs identical Options twice across the
// policies that stress the uop/request/LoadInfo recycling differently
// (flush-heavy MFLUSH, squash-heavy FLUSH-S, baseline ICOUNT) and demands
// bit-identical results. Stale pool state would show up here as a
// divergence between the first and second run.
func TestRecyclingDeterminism(t *testing.T) {
	w, _ := workload.ByName("8W3")
	for _, spec := range []PolicySpec{SpecICOUNT, SpecFlushS(30), SpecFlushNS, SpecMFLUSH} {
		opt := Options{Workload: w, Policy: spec, Warmup: 8000, Cycles: 8000, Seed: 11}
		a := runOrDie(t, opt)
		b := runOrDie(t, opt)
		fa, fb := fingerprint(a), fingerprint(b)
		if fa != fb {
			t.Errorf("%s: nondeterministic result:\n  run1: %s\n  run2: %s", spec, fa, fb)
		}
	}
}
