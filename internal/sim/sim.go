// Package sim is the top-level simulation driver: it builds a chip for a
// workload and an IFetch policy, runs it for a fixed cycle budget (after a
// warm-up period excluded from measurement, as trace-driven studies do),
// and collects the metrics the paper's figures report.
package sim

import (
	"fmt"
	"math"

	"repro/internal/cmp"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/workload"
)

// PolicyKind selects an IFetch policy family.
type PolicyKind int

const (
	// ICOUNT is the baseline fetch policy.
	ICOUNT PolicyKind = iota
	// FlushS is speculative FLUSH; Trigger selects the delay.
	FlushS
	// FlushNS is non-speculative (trigger-on-miss) FLUSH.
	FlushNS
	// StallS is the STALL response action with a delay trigger.
	StallS
	// MFLUSH is the paper's adaptive policy; History selects the MCReg
	// depth (0 or 1 for the published single-register design).
	MFLUSH
)

// PolicySpec identifies a policy instance.
type PolicySpec struct {
	Kind    PolicyKind
	Trigger int
	History int
}

// Common specs used throughout the evaluation.
var (
	SpecICOUNT  = PolicySpec{Kind: ICOUNT}
	SpecFlushNS = PolicySpec{Kind: FlushNS}
	SpecMFLUSH  = PolicySpec{Kind: MFLUSH}
)

// SpecFlushS returns the speculative FLUSH spec with the given trigger.
func SpecFlushS(trigger int) PolicySpec { return PolicySpec{Kind: FlushS, Trigger: trigger} }

// SpecStallS returns the STALL spec with the given trigger.
func SpecStallS(trigger int) PolicySpec { return PolicySpec{Kind: StallS, Trigger: trigger} }

// String names the spec as the paper does (ICOUNT, FLUSH-S30, FLUSH-NS,
// MFLUSH, ...).
func (s PolicySpec) String() string {
	switch s.Kind {
	case ICOUNT:
		return "ICOUNT"
	case FlushS:
		return fmt.Sprintf("FLUSH-S%d", s.Trigger)
	case FlushNS:
		return "FLUSH-NS"
	case StallS:
		return fmt.Sprintf("STALL-S%d", s.Trigger)
	case MFLUSH:
		if s.History > 1 {
			return fmt.Sprintf("MFLUSH-H%d", s.History)
		}
		return "MFLUSH"
	default:
		return fmt.Sprintf("policy(%d)", int(s.Kind))
	}
}

// Build instantiates the policy for one core of the given machine.
func (s PolicySpec) Build(cfg *config.Config) (policy.Policy, error) {
	threads := cfg.Core.ThreadsPerCore
	switch s.Kind {
	case ICOUNT:
		return policy.NewICOUNT(), nil
	case FlushS:
		if s.Trigger <= 0 {
			return nil, fmt.Errorf("sim: FLUSH-S needs a positive trigger")
		}
		return policy.NewFlushS(threads, s.Trigger), nil
	case FlushNS:
		return policy.NewFlushNS(threads), nil
	case StallS:
		if s.Trigger <= 0 {
			return nil, fmt.Errorf("sim: STALL-S needs a positive trigger")
		}
		return policy.NewStall(threads, s.Trigger), nil
	case MFLUSH:
		h := s.History
		if h <= 0 {
			h = 1
		}
		return core.NewMFLUSHHistory(cfg, h), nil
	default:
		return nil, fmt.Errorf("sim: unknown policy kind %d", s.Kind)
	}
}

// Options configures one simulation run.
type Options struct {
	// Workload selects the benchmarks; the core count is derived from
	// its size (2 contexts per core).
	Workload workload.Workload
	// Name overrides the workload name reported in Result and Summary.
	// Replay runs (ThreadTraces) have no Workload and otherwise report
	// the synthetic "replay-N".
	Name string
	// Policy is instantiated once per core.
	Policy PolicySpec
	// Cycles is the measured simulation length; Warmup cycles run first
	// and are excluded from all metrics.
	Cycles, Warmup uint64
	// Seed makes the run reproducible; runs with equal seeds and
	// workloads see identical instruction streams across policies.
	Seed uint64
	// Cores overrides the derived core count (0: use Workload.Cores()).
	Cores int
	// Tweak, when non-nil, mutates the machine configuration after the
	// defaults are applied — the hook ablation studies use (MSHR size,
	// queue sizes, bus width, ...). The mutated config must validate.
	Tweak func(*config.Config)
	// ThreadTraces, when non-empty, replays recorded traces (one slice
	// per hardware thread, e.g. loaded with trace.ReadAll) instead of
	// synthesising instructions from the Workload's profiles. Threads
	// 2i and 2i+1 share core i. Functional L2 pre-warming is skipped:
	// recorded traces carry no footprint metadata, so rely on Warmup.
	ThreadTraces [][]isa.Inst
	// Interval, when positive, samples the measured window every
	// Interval cycles into Result.Samples (a Recorder probe registered
	// after warm-up). Zero leaves Result.Samples nil and the run
	// byte-identical to an unsampled one.
	Interval uint64
	// OnSample, when non-nil and Interval is positive, additionally
	// receives each sample point live as the simulation takes it — the
	// hook behind mflushsim's streaming -interval output and mflushd's
	// per-job sample SSE events. It runs on the simulating goroutine.
	OnSample func(SamplePoint)
}

// Result is the outcome of one run.
type Result struct {
	Workload string
	Policy   string
	Cycles   uint64
	// Committed holds per-thread committed instructions (global thread
	// order); IPC is the system throughput (paper's metric).
	Committed []uint64
	IPC       float64
	// PerCore is the per-core IPC.
	PerCore []float64
	// HitLatency is the L2 hit-time histogram (Figure 4 metric).
	HitLatency *stats.Histogram
	// Energy aggregates the FLUSH-waste accounting over all cores
	// (Figure 11 metric).
	Energy energy.Account
	// Counters merges the per-core and L2 event counters.
	Counters stats.Set
	// Flushes is the number of FLUSH events across the chip.
	Flushes uint64
	// Samples is the interval time series recorded when Options.Interval
	// was positive; nil otherwise.
	Samples []SamplePoint
}

// WastedEnergy returns the Figure 11 metric in energy units.
func (r *Result) WastedEnergy() float64 { return r.Energy.Wasted() }

// Summary is a flat, serialisable digest of a Result for downstream
// tooling (mflushsim -json).
type Summary struct {
	Workload        string            `json:"workload"`
	Policy          string            `json:"policy"`
	Cycles          uint64            `json:"cycles"`
	IPC             float64           `json:"ipc"`
	PerCoreIPC      []float64         `json:"per_core_ipc"`
	Committed       []uint64          `json:"committed_per_thread"`
	Flushes         uint64            `json:"flushes"`
	FlushedInsts    uint64            `json:"flushed_instructions"`
	WastedEnergy    float64           `json:"wasted_energy_units"`
	WastedPerCommit float64           `json:"wasted_energy_per_commit"`
	L2HitMean       float64           `json:"l2_hit_mean_cycles"`
	L2HitP50        int               `json:"l2_hit_p50_cycles"`
	L2HitP90        int               `json:"l2_hit_p90_cycles"`
	L2HitMax        int               `json:"l2_hit_max_cycles"`
	L2Hits          uint64            `json:"l2_hits_measured"`
	Counters        map[string]uint64 `json:"counters"`
	// IntervalSamples carries the interval time series for runs that
	// requested one (Options.Interval > 0), omitted otherwise.
	IntervalSamples []SamplePoint `json:"interval_samples,omitempty"`
}

// Summary builds the serialisable digest.
func (r *Result) Summary() Summary {
	counters := make(map[string]uint64)
	for _, c := range r.Counters.All() {
		counters[c.Name] = c.Value
	}
	return Summary{
		Workload:        r.Workload,
		Policy:          r.Policy,
		Cycles:          r.Cycles,
		IPC:             r.IPC,
		PerCoreIPC:      r.PerCore,
		Committed:       r.Committed,
		Flushes:         r.Flushes,
		FlushedInsts:    r.Energy.FlushedTotal(),
		WastedEnergy:    r.WastedEnergy(),
		WastedPerCommit: r.Energy.WastedPerCommit(),
		L2HitMean:       r.HitLatency.Mean(),
		L2HitP50:        r.HitLatency.Percentile(0.5),
		L2HitP90:        r.HitLatency.Percentile(0.9),
		L2HitMax:        r.HitLatency.Max(),
		L2Hits:          r.HitLatency.Count(),
		Counters:        counters,
		IntervalSamples: r.Samples,
	}
}

// Run executes one simulation to completion. It is a thin wrapper over
// the Session API — Open, Step(Warmup), ResetMeasurement, Step(Cycles),
// Finish — and its output is bit-identical to the pre-Session one-shot
// driver (test-enforced with golden fingerprints).
func Run(opt Options) (*Result, error) {
	if opt.Cycles == 0 {
		return nil, fmt.Errorf("sim: zero cycle budget")
	}
	s, err := Open(opt)
	if err != nil {
		return nil, err
	}
	if opt.Warmup > 0 {
		s.Step(opt.Warmup)
		s.ResetMeasurement()
	}
	var rec *Recorder
	if opt.Interval > 0 {
		// Registered after warm-up so the series covers exactly the
		// measured window, firing at measured cycles Interval,
		// 2*Interval, ...
		rec = &Recorder{OnPoint: opt.OnSample}
		if err := s.Observe(rec.Probe(opt.Interval)); err != nil {
			return nil, err
		}
	}
	s.Step(opt.Cycles)
	res, err := s.Finish()
	if err != nil {
		return nil, err
	}
	if rec != nil {
		res.Samples = rec.Points
	}
	return res, nil
}

// buildChip assembles the machine, workload sources and policies for one
// run, including functional L2 pre-warming. Split from Run so tests can
// measure the cycle loop (allocations, throughput) apart from
// construction.
func buildChip(opt Options) (*cmp.Chip, error) {
	return buildChipShared(opt, nil)
}

// buildChipShared is buildChip with an optional gang-sharing context.
// With a nil shared it is exactly the solo build. With one, the
// immutable inputs every member would otherwise recompute are built once
// and reused across the gang: workload profiles, the L2 prewarm fill
// plan, and — the expensive one — the synthesised instruction streams,
// which members consume through per-member cursors over one memoised
// stream instead of each running its own generator. Sharing is keyed so
// only members that would have produced bit-identical inputs share them,
// which keeps every member's output bit-identical to a solo build
// (test-enforced by simtest.DiffGang).
func buildChipShared(opt Options, shared *gangShared) (*cmp.Chip, error) {
	cores := opt.Cores
	if cores == 0 {
		if len(opt.ThreadTraces) > 0 {
			cores = replayCores(opt, len(opt.ThreadTraces))
		} else {
			cores = opt.Workload.Cores()
		}
	}
	cfg := config.Default(cores)
	cfg.Seed = opt.Seed
	if opt.Tweak != nil {
		opt.Tweak(&cfg)
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("sim: tweaked config invalid: %w", err)
		}
	}

	var profiles []synth.Profile
	threadsPerCore := cfg.Core.ThreadsPerCore
	if len(opt.ThreadTraces) > 0 {
		if len(opt.ThreadTraces) > cores*threadsPerCore {
			return nil, fmt.Errorf("sim: %d traces need more than the %d available contexts",
				len(opt.ThreadTraces), cores*threadsPerCore)
		}
		for i, tr := range opt.ThreadTraces {
			if len(tr) == 0 {
				return nil, fmt.Errorf("sim: trace %d is empty", i)
			}
		}
	} else {
		var err error
		if shared != nil {
			profiles, err = shared.profilesFor(opt.Workload)
		} else {
			profiles, err = opt.Workload.Profiles()
		}
		if err != nil {
			return nil, err
		}
		if len(profiles) > cores*threadsPerCore {
			return nil, fmt.Errorf("sim: workload %s needs %d contexts, machine has %d",
				opt.Workload.Name, len(profiles), cores*threadsPerCore)
		}
	}

	policies := make([]policy.Policy, cores)
	sources := make([][]trace.Source, cores)
	bases := make([][]uint64, cores)
	for c := 0; c < cores; c++ {
		p, err := opt.Policy.Build(&cfg)
		if err != nil {
			return nil, err
		}
		policies[c] = p
		for t := 0; t < threadsPerCore; t++ {
			g := c*threadsPerCore + t
			seed, base := ReplayStream(opt.Seed, g)
			var src trace.Source
			if len(opt.ThreadTraces) > 0 {
				// Replay mode: threads beyond the supplied traces
				// re-run them modulo the trace count.
				src = trace.NewSliceSource(opt.ThreadTraces[g%len(opt.ThreadTraces)])
			} else {
				// Threads beyond the workload re-run it modulo its size
				// (never happens for the paper's workloads, which
				// exactly fill the machine).
				prof := profiles[g%len(profiles)]
				if shared != nil {
					// Members whose thread would synthesise the exact
					// same stream (same workload profile, generator
					// seed and address base) read one memoised stream
					// through private cursors.
					src = shared.cursorFor(opt.Workload.Name, g%len(profiles), prof, seed, base)
				} else {
					src = synth.NewGenerator(prof, seed, base)
				}
			}
			sources[c] = append(sources[c], src)
			bases[c] = append(bases[c], base)
		}
	}

	chip, err := cmp.New(cfg, policies, sources, bases)
	if err != nil {
		return nil, err
	}
	if len(profiles) > 0 {
		capBytes := uint64(2 * chip.Config().Mem.L2.SizeBytes)
		line := uint64(chip.Config().Mem.L2.LineBytes)
		var plan []uint64
		if shared != nil {
			plan = shared.prewarmFor(opt.Workload.Name, profiles, bases, capBytes, line)
		} else {
			plan = prewarmPlan(profiles, bases, capBytes, line)
		}
		applyPrewarm(chip, plan)
	}
	return chip, nil
}

// ReplayStream returns the generator seed and address base thread g of a
// run with synthesis seed seed draws its instruction stream from.
// Exported so trace synthesizers (cmd/mflushtrace) can record streams
// bit-identical to what a live run would synthesise for the same
// (profile, seed, thread slot).
func ReplayStream(seed uint64, g int) (streamSeed, addrBase uint64) {
	return seed*0x9E3779B97F4A7C15 + uint64(g)*0x1000193 + 1, uint64(g+1) << 34
}

// replayCores derives the core count for a trace-replay run when
// Options.Cores is unset: enough cores to give every trace a hardware
// context. Threads-per-core is read from a tweaked probe config because
// a Tweak may change it — deriving with the built-in default and
// applying the tweak afterwards is the bug this function replaces. An
// invalid tweaked value is left for cfg.Validate to reject; the probe
// only needs to avoid dividing by zero.
func replayCores(opt Options, nTraces int) int {
	probe := config.Default(1)
	if opt.Tweak != nil {
		opt.Tweak(&probe)
	}
	tpc := probe.Core.ThreadsPerCore
	if tpc < 1 {
		tpc = 1
	}
	return (nTraces + tpc - 1) / tpc
}

// prewarmPlan computes the functional L2 prewarm fill sequence for each
// thread's data footprint, interleaved across threads so each retains a
// proportional share. The paper's 120M-cycle runs reach this steady
// state on their own; our shorter windows would otherwise keep reporting
// virgin-page cold misses that no real steady state contains. Footprints
// much larger than the L2 are skipped: they churn the cache regardless,
// so prewarming them would only distort LRU state.
//
// The plan depends only on immutable inputs (profiles, thread address
// bases, L2 geometry), so a gang computes it once per distinct machine
// shape and replays it into every member (applyPrewarm).
func prewarmPlan(profiles []synth.Profile, bases [][]uint64, capBytes, line uint64) []uint64 {
	type cursor struct {
		next, end uint64
	}
	var cursors []cursor
	idx := 0
	for c := range bases {
		for t := range bases[c] {
			prof := profiles[idx%len(profiles)]
			idx++
			if prof.FootprintBytes > capBytes {
				continue
			}
			// Matches the generator's data placement (base + 1GB).
			dataBase := bases[c][t] + 1<<30
			cursors = append(cursors, cursor{next: dataBase, end: dataBase + prof.FootprintBytes})
		}
	}
	var plan []uint64
	for {
		progressed := false
		for i := range cursors {
			cu := &cursors[i]
			if cu.next >= cu.end {
				continue
			}
			plan = append(plan, cu.next)
			cu.next += line
			progressed = true
		}
		if !progressed {
			return plan
		}
	}
}

// applyPrewarm replays a prewarm fill plan into one chip's L2.
func applyPrewarm(chip *cmp.Chip, plan []uint64) {
	l2 := chip.L2().Cache()
	for _, addr := range plan {
		l2.Fill(addr)
	}
}

// collect folds the chip's accumulated measurements into a Result over a
// measurement window of `cycles` cycles (the IPC denominator).
func collect(chip *cmp.Chip, opt Options, cycles uint64) (*Result, error) {
	if err := chip.CheckInvariants(); err != nil {
		return nil, err
	}
	name := opt.Name
	if name == "" {
		if len(opt.ThreadTraces) > 0 {
			// Replay runs have no Workload; name them by trace count.
			name = fmt.Sprintf("replay-%d", len(opt.ThreadTraces))
		} else {
			name = opt.Workload.Name
		}
	}
	res := &Result{
		Workload:   name,
		Policy:     opt.Policy.String(),
		Cycles:     cycles,
		HitLatency: chip.L2().HitLatency(),
	}
	var total uint64
	for _, c := range chip.Cores() {
		var coreTotal uint64
		for _, n := range c.Committed() {
			res.Committed = append(res.Committed, n)
			coreTotal += n
		}
		total += coreTotal
		res.PerCore = append(res.PerCore, float64(coreTotal)/float64(cycles))
		res.Energy.Merge(c.Energy())
		res.Counters.Merge(c.Stats())
		res.Flushes += c.Stats().Get("policy.flushes")
	}
	res.Counters.Merge(chip.L2().Counters())
	res.IPC = float64(total) / float64(cycles)
	return res, nil
}

// Speedup returns (a/b - 1) as a fraction: the throughput gain of a
// over b. A zero-throughput baseline has no defined speedup, so the
// result is NaN — propagating loudly through downstream means and
// reports instead of masquerading as "no gain" — and callers that want
// a sentinel should check math.IsNaN.
func Speedup(a, b *Result) float64 {
	if b.IPC == 0 {
		return math.NaN()
	}
	return a.IPC/b.IPC - 1
}
