package sim

// Sample is the cheap interval digest of a running Session: cumulative
// metrics over the current measurement window (everything since the last
// ResetMeasurement, or since Open). It is the unit probes observe and
// Snapshot returns.
//
// Samples are refreshed in place: the Committed and MCReg slices belong
// to the Session and are reused on every refresh, so a Sample is valid
// only until the next Step, Snapshot or probe firing. Callers that
// retain samples convert them with Point, which deep-copies.
type Sample struct {
	// Cycle is the absolute chip cycle at which the sample was taken
	// (warm-up included).
	Cycle uint64
	// MeasuredCycles is the length of the measurement window so far.
	MeasuredCycles uint64
	// Committed holds per-thread committed instructions in global thread
	// order, cumulative over the window.
	Committed []uint64
	// IPC is the cumulative system throughput over the window.
	IPC float64
	// Flushes counts FLUSH events across the chip over the window.
	Flushes uint64
	// FlushedInsts counts instructions squashed by FLUSH over the window.
	FlushedInsts uint64
	// WastedEnergy is the cumulative FLUSH-waste in energy units.
	WastedEnergy float64
	// L2Hits and L2Misses are the shared-L2 event deltas over the window.
	L2Hits, L2Misses uint64
	// MCReg is the MFLUSH MCReg state, indexed [core][bank] — the newest
	// latched L2-hit latency per bank. Nil when the policy is not MFLUSH.
	MCReg [][]uint8

	// resetGen counts the session's ResetMeasurement calls at sampling
	// time, letting recorders rebase their interval deltas exactly when
	// the window (and its counters) restarted — MeasuredCycles alone
	// cannot distinguish a reset from ordinary progress in every case.
	resetGen uint64
}

// SamplePoint is the portable, retainable form of a Sample: every slice
// is freshly allocated, and the field layout is the JSON schema used by
// mflushsim -interval, campaign records (interval_samples) and the
// daemon's sample SSE events.
type SamplePoint struct {
	// Cycle is the absolute chip cycle of the sample.
	Cycle uint64 `json:"cycle"`
	// MeasuredCycles is the measurement-window length at the sample.
	MeasuredCycles uint64 `json:"measured_cycles"`
	// IPC is the cumulative system throughput over the window.
	IPC float64 `json:"ipc"`
	// IntervalIPC is the throughput within the last sampling interval
	// (between the previous point and this one).
	IntervalIPC float64 `json:"interval_ipc"`
	// Committed holds cumulative per-thread committed instructions.
	Committed []uint64 `json:"committed_per_thread"`
	// Flushes is the cumulative chip-wide FLUSH count.
	Flushes uint64 `json:"flushes"`
	// FlushedInsts is the cumulative FLUSH-squashed instruction count.
	FlushedInsts uint64 `json:"flushed_instructions"`
	// WastedEnergy is the cumulative FLUSH-waste in energy units.
	WastedEnergy float64 `json:"wasted_energy_units"`
	// L2Hits and L2Misses are cumulative shared-L2 event counts.
	L2Hits   uint64 `json:"l2_hits"`
	L2Misses uint64 `json:"l2_misses"`
	// MCReg is the per-core, per-bank MFLUSH MCReg state, omitted for
	// other policies. (Plain ints: a [][]uint8 would JSON-encode the
	// inner slices as base64.)
	MCReg [][]int `json:"mcreg,omitempty"`
}

// Point deep-copies the sample into its portable form. IntervalIPC is
// zero; recorders that know the previous point fill it in.
func (s *Sample) Point() SamplePoint {
	p := SamplePoint{
		Cycle:          s.Cycle,
		MeasuredCycles: s.MeasuredCycles,
		IPC:            s.IPC,
		Committed:      append([]uint64(nil), s.Committed...),
		Flushes:        s.Flushes,
		FlushedInsts:   s.FlushedInsts,
		WastedEnergy:   s.WastedEnergy,
		L2Hits:         s.L2Hits,
		L2Misses:       s.L2Misses,
	}
	if s.MCReg != nil {
		p.MCReg = make([][]int, len(s.MCReg))
		for c, banks := range s.MCReg {
			row := make([]int, len(banks))
			for b, v := range banks {
				row[b] = int(v)
			}
			p.MCReg[c] = row
		}
	}
	return p
}

// MCRegBounds folds the MCReg state to its minimum and maximum across
// all cores and banks — the scalar digest CSV reports use. ok is false
// (with zero bounds) when the point has no MCReg state (non-MFLUSH
// policies).
func (p SamplePoint) MCRegBounds() (min, max int, ok bool) {
	if len(p.MCReg) == 0 {
		return 0, 0, false
	}
	min, max = p.MCReg[0][0], p.MCReg[0][0]
	for _, banks := range p.MCReg {
		for _, v := range banks {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	return min, max, true
}

// committedTotal sums the per-thread counts.
func (s *Sample) committedTotal() uint64 {
	var n uint64
	for _, c := range s.Committed {
		n += c
	}
	return n
}

// Recorder turns a probe into a retained time series: each firing is
// deep-copied into Points with its IntervalIPC computed from the
// previous point. Register it with Session.Observe(rec.Probe(every)).
// The zero value is ready to use.
type Recorder struct {
	// Points is the series recorded so far, in firing order.
	Points []SamplePoint
	// OnPoint, when non-nil, additionally receives each point as it is
	// recorded — the live-streaming hook mflushsim and the daemon use.
	OnPoint func(SamplePoint)

	prevTotal    uint64
	prevMeasured uint64
	prevResetGen uint64
}

// Probe returns the probe that feeds the recorder every `every` cycles.
func (r *Recorder) Probe(every uint64) Probe {
	return Probe{Every: every, Fn: r.record}
}

// record is the probe body: deep-copy, compute the interval delta, emit.
func (r *Recorder) record(s *Sample) {
	p := s.Point()
	total := s.committedTotal()
	if s.resetGen != r.prevResetGen {
		// ResetMeasurement ran between firings: the window (and its
		// counters) restarted, so the delta baseline restarts too.
		r.prevTotal, r.prevMeasured, r.prevResetGen = 0, 0, s.resetGen
	}
	if dc := s.MeasuredCycles - r.prevMeasured; dc > 0 {
		p.IntervalIPC = float64(total-r.prevTotal) / float64(dc)
	}
	r.prevTotal, r.prevMeasured = total, s.MeasuredCycles
	r.Points = append(r.Points, p)
	if r.OnPoint != nil {
		r.OnPoint(p)
	}
}
