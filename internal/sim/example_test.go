package sim_test

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workload"
)

// ExampleRun simulates one paper workload under the MFLUSH policy for a
// small cycle budget. Runs are deterministic: the same Options always
// produce these exact numbers, on any machine, at any GOMAXPROCS.
func ExampleRun() {
	w, ok := workload.ByName("2W1")
	if !ok {
		panic("unknown workload")
	}
	res, err := sim.Run(sim.Options{
		Workload: w,
		Policy:   sim.SpecMFLUSH,
		Seed:     1,
		Cycles:   20000,
		Warmup:   5000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s under %s: IPC %.3f, %d flushes\n",
		res.Workload, res.Policy, res.IPC, res.Flushes)
	// Output:
	// 2W1 under MFLUSH: IPC 0.265, 8 flushes
}

// ExampleParseSpec parses policy names the way every CLI flag and
// campaign spec file does — the paper's abbreviations included, case
// insensitively.
func ExampleParseSpec() {
	for _, name := range []string{"icount", "fl-s30", "FLUSH-NS", "mflush-h4"} {
		spec, err := sim.ParseSpec(name)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-9s -> %s\n", name, spec)
	}
	if _, err := sim.ParseSpec("FLUSH-S0"); err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// icount    -> ICOUNT
	// fl-s30    -> FLUSH-S30
	// FLUSH-NS  -> FLUSH-NS
	// mflush-h4 -> MFLUSH-H4
	// error: bad FLUSH trigger in "FLUSH-S0"
}

// ExampleOpen steps the same simulation as ExampleRun incrementally:
// warm up, reset measurement, then advance in uneven chunks. Chunking
// never changes the result — Finish returns exactly what Run prints.
func ExampleOpen() {
	w, _ := workload.ByName("2W1")
	s, err := sim.Open(sim.Options{
		Workload: w,
		Policy:   sim.SpecMFLUSH,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	s.Step(5000) // warm-up
	s.ResetMeasurement()
	for _, chunk := range []uint64{1, 7, 9992, 10000} {
		s.Step(chunk)
	}
	res, err := s.Finish()
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s under %s: IPC %.3f, %d flushes\n",
		res.Workload, res.Policy, res.IPC, res.Flushes)
	// Output:
	// 2W1 under MFLUSH: IPC 0.265, 8 flushes
}

// ExampleSession_Observe watches a run from the inside: a Recorder
// probe samples the measured window every 5000 cycles, turning the
// one-number IPC of end-of-run reporting into a time series.
func ExampleSession_Observe() {
	w, _ := workload.ByName("2W1")
	s, err := sim.Open(sim.Options{Workload: w, Policy: sim.SpecMFLUSH, Seed: 1})
	if err != nil {
		panic(err)
	}
	s.Step(5000)
	s.ResetMeasurement()
	rec := &sim.Recorder{}
	if err := s.Observe(rec.Probe(5000)); err != nil {
		panic(err)
	}
	s.Step(20000)
	if _, err := s.Finish(); err != nil {
		panic(err)
	}
	for _, p := range rec.Points {
		fmt.Printf("cycle %5d: interval IPC %.3f, cumulative %.3f\n",
			p.MeasuredCycles, p.IntervalIPC, p.IPC)
	}
	// Output:
	// cycle  5000: interval IPC 0.132, cumulative 0.132
	// cycle 10000: interval IPC 0.355, cumulative 0.244
	// cycle 15000: interval IPC 0.342, cumulative 0.277
	// cycle 20000: interval IPC 0.229, cumulative 0.265
}
