package sim_test

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workload"
)

// ExampleRun simulates one paper workload under the MFLUSH policy for a
// small cycle budget. Runs are deterministic: the same Options always
// produce these exact numbers, on any machine, at any GOMAXPROCS.
func ExampleRun() {
	w, ok := workload.ByName("2W1")
	if !ok {
		panic("unknown workload")
	}
	res, err := sim.Run(sim.Options{
		Workload: w,
		Policy:   sim.SpecMFLUSH,
		Seed:     1,
		Cycles:   20000,
		Warmup:   5000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s under %s: IPC %.3f, %d flushes\n",
		res.Workload, res.Policy, res.IPC, res.Flushes)
	// Output:
	// 2W1 under MFLUSH: IPC 0.265, 8 flushes
}

// ExampleParseSpec parses policy names the way every CLI flag and
// campaign spec file does — the paper's abbreviations included, case
// insensitively.
func ExampleParseSpec() {
	for _, name := range []string{"icount", "fl-s30", "FLUSH-NS", "mflush-h4"} {
		spec, err := sim.ParseSpec(name)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-9s -> %s\n", name, spec)
	}
	if _, err := sim.ParseSpec("FLUSH-S0"); err != nil {
		fmt.Println("error:", err)
	}
	// Output:
	// icount    -> ICOUNT
	// fl-s30    -> FLUSH-S30
	// FLUSH-NS  -> FLUSH-NS
	// mflush-h4 -> MFLUSH-H4
	// error: bad FLUSH trigger in "FLUSH-S0"
}
