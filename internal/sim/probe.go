package sim

import "fmt"

// Probe is a periodic observer of a running Session. Every Every cycles
// the session refreshes its internal Sample and calls Fn with it.
//
// Probe invariants (ARCHITECTURE.md, "Session lifecycle"):
//
//   - Fn runs synchronously on the stepping goroutine, between two chip
//     cycles — never concurrently with the simulation or other probes.
//   - Fn must only read the Sample; it must not mutate simulator state.
//     Probes are observers: a session with probes steps the exact same
//     machine states as one without, so results stay bit-identical.
//   - The Sample (including its slices) is owned by the session and
//     reused across firings; Fn must copy (Sample.Point) to retain it.
//   - Firing costs no heap allocation once the session's sample buffers
//     have warmed (first firing), preserving the zero-allocation cycle
//     loop. What Fn itself allocates is the probe's own budget.
//
// The firing phase is counted from registration: a probe registered at
// measured cycle 0 with Every=k fires at measured cycles k, 2k, 3k, ...
type Probe struct {
	// Every is the firing period in cycles; it must be positive.
	Every uint64
	// Fn receives the session's refreshed Sample at each firing.
	Fn func(*Sample)
}

// probeState is one registered probe plus its firing countdown.
type probeState struct {
	p         Probe
	countdown uint64
}

// Observe registers a probe. Probes may be added at any point before
// Finish — mflushsim registers its interval recorder only after warm-up,
// so the series covers exactly the measured window. Registration order
// is firing order for probes that fire on the same cycle.
func (s *Session) Observe(p Probe) error {
	if s.finished {
		return fmt.Errorf("sim: Observe on a finished session")
	}
	if p.Every == 0 {
		return fmt.Errorf("sim: probe needs a positive firing period")
	}
	if p.Fn == nil {
		return fmt.Errorf("sim: probe needs a firing function")
	}
	s.probes = append(s.probes, probeState{p: p, countdown: p.Every})
	return nil
}

// tickProbes advances every countdown by one cycle and fires the due
// probes. The sample is refreshed at most once per cycle, shared by all
// probes firing on it.
//
//mflush:hotpath
func (s *Session) tickProbes() {
	refreshed := false
	for i := range s.probes {
		ps := &s.probes[i]
		if ps.countdown--; ps.countdown > 0 {
			continue
		}
		ps.countdown = ps.p.Every
		if !refreshed {
			s.refreshSample()
			refreshed = true
		}
		ps.p.Fn(&s.sample)
	}
}
