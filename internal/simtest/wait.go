package simtest

import (
	"testing"
	"time"
)

// WaitFor polls cond once a millisecond until it returns true, failing
// the test with the formatted message if timeout elapses first. It is
// the one sanctioned wall-clock wait in the test suites: every "spin
// until the scheduler catches up" loop goes through here instead of
// hand-rolling a deadline.
//
// Message arguments are evaluated when WaitFor is called; pass a
// `func() any` to defer an argument to failure time ("have %d" details
// that should reflect the state at the deadline, not at the call).
// Conditions may also fail the test themselves for states that can
// never become true — an error return, a campaign in a terminal bad
// state — rather than spinning out the clock on them.
func WaitFor(t testing.TB, timeout time.Duration, cond func() bool, format string, args ...any) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			resolved := make([]any, len(args))
			for i, a := range args {
				if f, ok := a.(func() any); ok {
					resolved[i] = f()
				} else {
					resolved[i] = a
				}
			}
			t.Fatalf(format, resolved...)
		}
		time.Sleep(time.Millisecond)
	}
}
