// The differential harness for the simulator's execution modes: it
// proves that running N variants as a lockstep gang (sim.GangSession)
// is observationally bit-identical to running each variant alone
// (sim.Session), and localises the first divergence when it is not.
// The unit, metamorphic and race tests across internal/sim and
// internal/campaign are built on it, so "gang = solo" is frozen as an
// executable invariant rather than a comment.

package simtest

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/sim"
)

// Fingerprint flattens every externally observable metric of a Result —
// the flat Summary digest (counters, per-thread commits, IPC, energy,
// interval samples) plus the full L2 hit-latency histogram — into one
// comparable string. Two Results with equal fingerprints are
// bit-identical in everything the repo reports anywhere: JSON encoding
// of float64 is shortest-round-trip, so distinct values never collide.
func Fingerprint(r *sim.Result) string {
	b, err := json.Marshal(r.Summary())
	if err != nil {
		// Summary is plain data; failure to encode it is a programming
		// error, not a comparison outcome.
		panic(fmt.Sprintf("simtest: encoding summary: %v", err))
	}
	return string(b) + "|percore=" + fmt.Sprint(r.PerCore) + "|hitlat=" + r.HitLatency.String()
}

// DiffConfig shapes one differential run.
type DiffConfig struct {
	// Chunk is the lockstep stepping granularity: both executions
	// advance in Chunk-cycle steps with a full per-member digest
	// comparison at every boundary, so a divergence is reported at the
	// first boundary it is visible, not at the end. Zero steps each
	// window in one chunk (divergences then localise only per window).
	Chunk uint64
	// Parallelism overrides the gang's internal goroutine budget
	// (0: the gang's default). Differential runs across parallelism
	// levels are how GOMAXPROCS-independence is enforced.
	Parallelism int
}

// DiffGang runs opts once as a gang and once as independent solo
// sessions, comparing every member's observable state at every chunk
// boundary and the full Results (Fingerprint) at the end. It returns
// nil when the gang is bit-identical to solo, and otherwise an error
// naming the first diverging member, cycle and field. Members'
// Interval sampling, when set, is exercised on both sides and the
// recorded series compared point by point.
//
// All members must share one (Cycles, Warmup) window, like RunGang.
func DiffGang(opts []sim.Options, cfg DiffConfig) error {
	if len(opts) == 0 {
		return fmt.Errorf("simtest: empty gang")
	}
	cycles, warmup := opts[0].Cycles, opts[0].Warmup
	if cycles == 0 {
		return fmt.Errorf("simtest: zero cycle budget")
	}
	for i, o := range opts {
		if o.Cycles != cycles || o.Warmup != warmup {
			return fmt.Errorf("simtest: member %d window differs from member 0", i)
		}
	}

	solo := make([]*sim.Session, len(opts))
	for i, o := range opts {
		s, err := sim.Open(o)
		if err != nil {
			return fmt.Errorf("simtest: solo member %d: %w", i, err)
		}
		solo[i] = s
	}
	gang, err := sim.OpenGang(opts)
	if err != nil {
		return fmt.Errorf("simtest: %w", err)
	}
	if cfg.Parallelism > 0 {
		gang.SetParallelism(cfg.Parallelism)
	}

	step := func(n uint64) error {
		for done := uint64(0); done < n; {
			c := n - done
			if cfg.Chunk > 0 && c > cfg.Chunk {
				c = cfg.Chunk
			}
			gang.Step(c)
			for m, s := range solo {
				s.Step(c)
				if err := diffSamples(m, gang.Snapshot(m), s.Snapshot()); err != nil {
					return err
				}
			}
			done += c
		}
		return nil
	}

	if warmup > 0 {
		if err := step(warmup); err != nil {
			return err
		}
		gang.ResetMeasurement()
		for _, s := range solo {
			s.ResetMeasurement()
		}
	}
	gangRecs := make([]*sim.Recorder, len(opts))
	soloRecs := make([]*sim.Recorder, len(opts))
	for m, o := range opts {
		if o.Interval == 0 {
			continue
		}
		gangRecs[m] = &sim.Recorder{}
		soloRecs[m] = &sim.Recorder{}
		if err := gang.Observe(m, gangRecs[m].Probe(o.Interval)); err != nil {
			return fmt.Errorf("simtest: gang member %d: %w", m, err)
		}
		if err := solo[m].Observe(soloRecs[m].Probe(o.Interval)); err != nil {
			return fmt.Errorf("simtest: solo member %d: %w", m, err)
		}
	}
	if err := step(cycles); err != nil {
		return err
	}

	gangRes, err := gang.Finish()
	if err != nil {
		return fmt.Errorf("simtest: gang finish: %w", err)
	}
	for m := range opts {
		soloRes, err := solo[m].Finish()
		if err != nil {
			return fmt.Errorf("simtest: solo member %d finish: %w", m, err)
		}
		if gr, sr := gangRecs[m], soloRecs[m]; gr != nil {
			gangRes[m].Samples = gr.Points
			soloRes.Samples = sr.Points
			if err := diffPoints(m, gr.Points, sr.Points); err != nil {
				return err
			}
		}
		if gf, sf := Fingerprint(gangRes[m]), Fingerprint(soloRes); gf != sf {
			return fmt.Errorf("simtest: member %d result fingerprint diverged\n gang: %s\n solo: %s", m, gf, sf)
		}
	}
	return nil
}

// diffSamples compares one member's gang and solo digests field by
// field, floats by exact bits, and names the first difference.
func diffSamples(m int, gang, solo *sim.Sample) error {
	fail := func(field string, g, s any) error {
		return fmt.Errorf("simtest: member %d diverged at cycle %d: %s gang=%v solo=%v",
			m, solo.Cycle, field, g, s)
	}
	if gang.Cycle != solo.Cycle {
		return fail("cycle", gang.Cycle, solo.Cycle)
	}
	if gang.MeasuredCycles != solo.MeasuredCycles {
		return fail("measured_cycles", gang.MeasuredCycles, solo.MeasuredCycles)
	}
	if len(gang.Committed) != len(solo.Committed) {
		return fail("committed threads", len(gang.Committed), len(solo.Committed))
	}
	for t := range gang.Committed {
		if gang.Committed[t] != solo.Committed[t] {
			return fail(fmt.Sprintf("committed[%d]", t), gang.Committed[t], solo.Committed[t])
		}
	}
	if math.Float64bits(gang.IPC) != math.Float64bits(solo.IPC) {
		return fail("ipc", gang.IPC, solo.IPC)
	}
	if gang.Flushes != solo.Flushes {
		return fail("flushes", gang.Flushes, solo.Flushes)
	}
	if gang.FlushedInsts != solo.FlushedInsts {
		return fail("flushed_insts", gang.FlushedInsts, solo.FlushedInsts)
	}
	if math.Float64bits(gang.WastedEnergy) != math.Float64bits(solo.WastedEnergy) {
		return fail("wasted_energy", gang.WastedEnergy, solo.WastedEnergy)
	}
	if gang.L2Hits != solo.L2Hits {
		return fail("l2_hits", gang.L2Hits, solo.L2Hits)
	}
	if gang.L2Misses != solo.L2Misses {
		return fail("l2_misses", gang.L2Misses, solo.L2Misses)
	}
	if len(gang.MCReg) != len(solo.MCReg) {
		return fail("mcreg cores", len(gang.MCReg), len(solo.MCReg))
	}
	for c := range gang.MCReg {
		if len(gang.MCReg[c]) != len(solo.MCReg[c]) {
			return fail(fmt.Sprintf("mcreg[%d] banks", c), len(gang.MCReg[c]), len(solo.MCReg[c]))
		}
		for b := range gang.MCReg[c] {
			if gang.MCReg[c][b] != solo.MCReg[c][b] {
				return fail(fmt.Sprintf("mcreg[%d][%d]", c, b), gang.MCReg[c][b], solo.MCReg[c][b])
			}
		}
	}
	return nil
}

// diffPoints compares recorded interval series via their JSON forms
// (the schema every layer above ships), naming the first divergence.
func diffPoints(m int, gang, solo []sim.SamplePoint) error {
	if len(gang) != len(solo) {
		return fmt.Errorf("simtest: member %d recorded %d gang samples, %d solo", m, len(gang), len(solo))
	}
	for i := range gang {
		g, _ := json.Marshal(gang[i])
		s, _ := json.Marshal(solo[i])
		if string(g) != string(s) {
			return fmt.Errorf("simtest: member %d sample %d diverged\n gang: %s\n solo: %s", m, i, g, s)
		}
	}
	return nil
}
