package simtest

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// sweep builds the policy-sweep gang shape for one workload: shared
// (workload, seed), the four paper policies — maximal stream sharing.
func sweep(t *testing.T, name string, seed, warmup, cycles uint64) []sim.Options {
	t.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	var opts []sim.Options
	for _, p := range []sim.PolicySpec{sim.SpecICOUNT, sim.SpecFlushNS, sim.SpecFlushS(30), sim.SpecMFLUSH} {
		opts = append(opts, sim.Options{Workload: w, Policy: p, Seed: seed, Warmup: warmup, Cycles: cycles})
	}
	return opts
}

// mixed builds a heterogeneous gang: different workloads, seeds and
// policies (so members share nothing but the lockstep), with interval
// sampling on to exercise the recorded-series comparison too.
func mixed(t *testing.T, width int, warmup, cycles uint64) []sim.Options {
	t.Helper()
	names := []string{"2W1", "2W3", "4W2", "2W5", "4W1"}
	policies := []sim.PolicySpec{sim.SpecMFLUSH, sim.SpecICOUNT, sim.SpecFlushS(30), sim.SpecFlushNS}
	var opts []sim.Options
	for i := 0; i < width; i++ {
		w, ok := workload.ByName(names[i%len(names)])
		if !ok {
			t.Fatalf("unknown workload %s", names[i%len(names)])
		}
		opts = append(opts, sim.Options{
			Workload: w,
			Policy:   policies[i%len(policies)],
			Seed:     uint64(i)*3 + 1,
			Warmup:   warmup,
			Cycles:   cycles,
			Interval: 1500,
		})
	}
	return opts
}

// TestDiffGangValidation pins the harness's own error surface.
func TestDiffGangValidation(t *testing.T) {
	if err := DiffGang(nil, DiffConfig{}); err == nil {
		t.Error("DiffGang(nil) = nil, want error")
	}
	w, _ := workload.ByName("2W1")
	if err := DiffGang([]sim.Options{{Workload: w, Policy: sim.SpecICOUNT}}, DiffConfig{}); err == nil {
		t.Error("DiffGang with zero budget = nil, want error")
	}
	uneven := []sim.Options{
		{Workload: w, Policy: sim.SpecICOUNT, Cycles: 1000},
		{Workload: w, Policy: sim.SpecICOUNT, Cycles: 2000},
	}
	if err := DiffGang(uneven, DiffConfig{}); err == nil || !strings.Contains(err.Error(), "window") {
		t.Errorf("DiffGang with uneven windows: %v, want window error", err)
	}
}

// TestDiffGangWidths proves gang = solo across gang widths, including
// the degenerate width-1 gang, on the heterogeneous shape.
func TestDiffGangWidths(t *testing.T) {
	for _, width := range []int{1, 2, 7} {
		opts := mixed(t, width, 2000, 8000)
		if err := DiffGang(opts, DiffConfig{Chunk: 1000}); err != nil {
			t.Errorf("width %d: %v", width, err)
		}
	}
}

// TestDiffGangChunks proves the lockstep chunking is observationally
// invariant: stepping cycle by cycle, in awkward primes, in large
// chunks, or all at once yields identical members. Chunk 1 crosses the
// probe machinery on every cycle, so this also re-proves probes never
// perturb the machine.
func TestDiffGangChunks(t *testing.T) {
	for _, chunk := range []uint64{1, 7, 1000, 0} {
		c := chunk
		opts := sweep(t, "2W3", 2, 500, 2500)
		if err := DiffGang(opts, DiffConfig{Chunk: c}); err != nil {
			t.Errorf("chunk %d: %v", c, err)
		}
	}
}

// TestDiffGangParallelism proves results are independent of the gang's
// internal goroutine budget and of GOMAXPROCS: serial execution on one
// processor must be bit-identical to maximal fan-out.
func TestDiffGangParallelism(t *testing.T) {
	levels := []int{1, 2, runtime.NumCPU()}
	for _, p := range levels {
		opts := sweep(t, "4W2", 7, 1000, 6000)
		if err := DiffGang(opts, DiffConfig{Chunk: 2048, Parallelism: p}); err != nil {
			t.Errorf("parallelism %d: %v", p, err)
		}
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	opts := sweep(t, "4W2", 7, 1000, 6000)
	if err := DiffGang(opts, DiffConfig{Chunk: 2048, Parallelism: runtime.NumCPU()}); err != nil {
		t.Errorf("GOMAXPROCS=1: %v", err)
	}
}

// TestGangMemberPermutation proves member order is immaterial: running
// the same variant set in permuted orders yields each variant the same
// bytes, so gang grouping upstream may order jobs freely.
func TestGangMemberPermutation(t *testing.T) {
	opts := sweep(t, "2W1", 4, 1000, 6000)
	base, err := sim.RunGang(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, perm := range [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}} {
		shuffled := make([]sim.Options, len(opts))
		for i, j := range perm {
			shuffled[i] = opts[j]
		}
		results, err := sim.RunGang(shuffled)
		if err != nil {
			t.Fatalf("permutation %v: %v", perm, err)
		}
		for i, j := range perm {
			if g, w := Fingerprint(results[i]), Fingerprint(base[j]); g != w {
				t.Errorf("permutation %v: member %d (policy %s) diverged from unpermuted run\n got: %s\nwant: %s",
					perm, i, shuffled[i].Policy, g, w)
			}
		}
	}
}
