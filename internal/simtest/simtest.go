// Package simtest is the simulator's test harness toolkit, shared by
// the sim, campaign and server test suites. It has two halves:
//
//   - Runner, a fake sim.Run: deterministic results without simulating,
//     per-job invocation counts, and hooks to hold runs in flight or
//     fail them.
//   - DiffGang and Fingerprint (diff.go), the differential harness that
//     proves a lockstep gang (sim.GangSession) is observationally
//     bit-identical to solo sessions, localising the first divergence.
//
// Production code must not import it.
package simtest

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Runner is an injectable sim.Run replacement. Configure Gate/Fail
// before handing Run to a scheduler; Total/Max observe concurrently.
type Runner struct {
	mu      sync.Mutex
	calls   map[string]int
	batches []int
	// Gate, when non-nil, blocks every run until the channel closes —
	// used to provably hold jobs in flight while callers pile up.
	Gate chan struct{}
	// Fail makes every run return an error (after passing Gate).
	Fail bool
}

// New returns an empty runner.
func New() *Runner { return &Runner{calls: make(map[string]int)} }

// Run counts the invocation, honours Gate/Fail, and returns a
// deterministic fake result derived from the options.
func (r *Runner) Run(o sim.Options) (*sim.Result, error) {
	// Name the result the way sim.Run does: the Name override wins, so
	// trace-replay jobs (whose Workload is zero) stay distinguishable.
	name := o.Name
	if name == "" {
		name = o.Workload.Name
	}
	id := fmt.Sprintf("%s/%s/%d/%d", name, o.Policy, o.Seed, o.Cycles)
	r.mu.Lock()
	r.calls[id]++
	gate := r.Gate
	r.mu.Unlock()
	if gate != nil {
		<-gate
	}
	if r.Fail {
		return nil, errors.New("synthetic simulator failure")
	}
	res := &sim.Result{
		Workload:   name,
		Policy:     o.Policy.String(),
		Cycles:     o.Cycles,
		IPC:        1.0 + float64(o.Seed)/10,
		HitLatency: stats.NewHistogram(8),
	}
	// Honour interval sampling the way sim.Run does: one deterministic
	// point per Interval measured cycles, teed live through OnSample and
	// retained in the result.
	if o.Interval > 0 {
		for c := o.Interval; c <= o.Cycles; c += o.Interval {
			p := sim.SamplePoint{
				Cycle:          o.Warmup + c,
				MeasuredCycles: c,
				IPC:            res.IPC,
				IntervalIPC:    res.IPC,
				Committed:      []uint64{c},
			}
			res.Samples = append(res.Samples, p)
			if o.OnSample != nil {
				o.OnSample(p)
			}
		}
	}
	return res, nil
}

// RunGang is the Runner's sim.RunGang analogue, for injection where a
// scheduler or worker takes a GangRunner: each member counts as one Run
// invocation (Gate/Fail included) and the batch size is recorded for
// Batches.
func (r *Runner) RunGang(opts []sim.Options) ([]*sim.Result, error) {
	if len(opts) == 0 {
		return nil, errors.New("simtest: empty gang")
	}
	r.mu.Lock()
	r.batches = append(r.batches, len(opts))
	r.mu.Unlock()
	results := make([]*sim.Result, len(opts))
	for i, o := range opts {
		res, err := r.Run(o)
		if err != nil {
			return nil, err
		}
		results[i] = res
	}
	return results, nil
}

// Batches returns the size of every RunGang invocation so far, in call
// order.
func (r *Runner) Batches() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.batches...)
}

// Total returns the number of simulator invocations so far.
func (r *Runner) Total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, c := range r.calls {
		n += c
	}
	return n
}

// Max returns the highest invocation count of any single job — 1 means
// no job ever ran twice.
func (r *Runner) Max() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := 0
	for _, c := range r.calls {
		if c > m {
			m = c
		}
	}
	return m
}
