// Package isa defines the abstract instruction set seen by the simulator.
//
// The simulator is trace-driven in the SMTsim style: instructions carry a
// class, register dependencies and (for memory operations) an effective
// address, but no data values. Timing is fully determined by this
// information plus the machine state.
package isa

import "fmt"

// Class is the functional class of an instruction. It determines the issue
// queue, the execution unit pool and the execution latency.
type Class uint8

const (
	// ClassInt is a single-cycle integer ALU operation.
	ClassInt Class = iota
	// ClassIntMul is a multi-cycle integer multiply/divide.
	ClassIntMul
	// ClassFP is a pipelined floating-point operation.
	ClassFP
	// ClassFPDiv is a long-latency floating-point divide/sqrt.
	ClassFPDiv
	// ClassLoad reads memory through the data cache.
	ClassLoad
	// ClassStore writes memory through the data cache at commit.
	ClassStore
	// ClassBranch is a conditional branch resolved in the integer pipeline.
	ClassBranch
	// ClassCall is a subroutine call (pushes the RAS).
	ClassCall
	// ClassReturn is a subroutine return (pops the RAS).
	ClassReturn
	numClasses
)

// NumClasses is the number of distinct instruction classes.
const NumClasses = int(numClasses)

// String returns the conventional mnemonic family for the class.
func (c Class) String() string {
	switch c {
	case ClassInt:
		return "int"
	case ClassIntMul:
		return "imul"
	case ClassFP:
		return "fp"
	case ClassFPDiv:
		return "fpdiv"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassCall:
		return "call"
	case ClassReturn:
		return "return"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// IsMem reports whether the class accesses the data cache.
func (c Class) IsMem() bool { return c == ClassLoad || c == ClassStore }

// IsControl reports whether the class can redirect fetch.
func (c Class) IsControl() bool {
	return c == ClassBranch || c == ClassCall || c == ClassReturn
}

// UsesFP reports whether the class issues from the floating-point queue.
func (c Class) UsesFP() bool { return c == ClassFP || c == ClassFPDiv }

// ExecLatency returns the execution latency in cycles for the class,
// excluding memory-hierarchy time for loads/stores.
func (c Class) ExecLatency() int {
	switch c {
	case ClassInt, ClassBranch, ClassCall, ClassReturn:
		return 1
	case ClassIntMul:
		return 6
	case ClassFP:
		return 4
	case ClassFPDiv:
		return 16
	case ClassLoad, ClassStore:
		return 1 // address generation; cache time is added by the hierarchy
	default:
		return 1
	}
}

// Reg identifies an architectural register within a thread. The simulator
// uses a flat space of NumArchRegs registers per thread covering both the
// integer and FP files; the distinction is irrelevant for timing beyond the
// instruction class.
type Reg uint8

// NumArchRegs is the size of the per-thread architectural register file.
// Alpha has 31 integer + 31 FP writable registers; we model 64 names.
const NumArchRegs = 64

// InvalidReg marks an absent register operand.
const InvalidReg Reg = 0xFF

// Inst is one trace record: a dynamic instruction as produced by the trace
// front-end. Fields are plain values so Inst can be copied freely and
// serialised with encoding/binary.
type Inst struct {
	// PC is the instruction address (used for branch prediction and
	// icache indexing).
	PC uint64
	// Class is the functional class.
	Class Class
	// Dest is the destination register, or InvalidReg if none.
	Dest Reg
	// Src1, Src2 are source registers, or InvalidReg if absent.
	Src1, Src2 Reg
	// Addr is the effective address for loads and stores.
	Addr uint64
	// Taken is the actual outcome for control instructions.
	Taken bool
	// MissLatency, when non-zero, overrides the configured main-memory
	// latency (in cycles) for this instruction's L2 miss, should it miss.
	// Scenario traces use it to model far-memory tails and latency
	// phases; synthetic generators leave it zero.
	MissLatency uint32
	// Target is the actual target for taken control instructions.
	Target uint64
}

// HasDest reports whether the instruction writes a register.
func (in *Inst) HasDest() bool { return in.Dest != InvalidReg }

// String renders a short human-readable form, useful in test failures.
func (in *Inst) String() string {
	switch {
	case in.Class.IsMem():
		return fmt.Sprintf("%#x %s r%d <- [%#x]", in.PC, in.Class, in.Dest, in.Addr)
	case in.Class.IsControl():
		return fmt.Sprintf("%#x %s taken=%t -> %#x", in.PC, in.Class, in.Taken, in.Target)
	default:
		return fmt.Sprintf("%#x %s r%d <- r%d, r%d", in.PC, in.Class, in.Dest, in.Src1, in.Src2)
	}
}
