package isa

import (
	"strings"
	"testing"
)

func TestClassPredicates(t *testing.T) {
	cases := []struct {
		c                    Class
		mem, control, usesFP bool
	}{
		{ClassInt, false, false, false},
		{ClassIntMul, false, false, false},
		{ClassFP, false, false, true},
		{ClassFPDiv, false, false, true},
		{ClassLoad, true, false, false},
		{ClassStore, true, false, false},
		{ClassBranch, false, true, false},
		{ClassCall, false, true, false},
		{ClassReturn, false, true, false},
	}
	for _, tc := range cases {
		if got := tc.c.IsMem(); got != tc.mem {
			t.Errorf("%v.IsMem() = %t, want %t", tc.c, got, tc.mem)
		}
		if got := tc.c.IsControl(); got != tc.control {
			t.Errorf("%v.IsControl() = %t, want %t", tc.c, got, tc.control)
		}
		if got := tc.c.UsesFP(); got != tc.usesFP {
			t.Errorf("%v.UsesFP() = %t, want %t", tc.c, got, tc.usesFP)
		}
	}
}

func TestClassStringsDistinct(t *testing.T) {
	seen := map[string]Class{}
	for c := Class(0); c < Class(NumClasses); c++ {
		s := c.String()
		if s == "" || strings.HasPrefix(s, "class(") {
			t.Errorf("class %d has no mnemonic", c)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("classes %v and %v share mnemonic %q", prev, c, s)
		}
		seen[s] = c
	}
	if got := Class(200).String(); !strings.HasPrefix(got, "class(") {
		t.Errorf("unknown class string = %q", got)
	}
}

func TestExecLatencyPositive(t *testing.T) {
	for c := Class(0); c < Class(NumClasses); c++ {
		if c.ExecLatency() < 1 {
			t.Errorf("%v has non-positive latency", c)
		}
	}
	// Long-latency classes must actually be longer than simple ALU ops.
	if ClassFPDiv.ExecLatency() <= ClassFP.ExecLatency() {
		t.Error("fpdiv should be slower than fp")
	}
	if ClassIntMul.ExecLatency() <= ClassInt.ExecLatency() {
		t.Error("imul should be slower than int")
	}
}

func TestInstHasDest(t *testing.T) {
	in := Inst{Dest: 5}
	if !in.HasDest() {
		t.Error("dest 5 should count as a destination")
	}
	in.Dest = InvalidReg
	if in.HasDest() {
		t.Error("InvalidReg should not count as a destination")
	}
}

func TestInstString(t *testing.T) {
	load := Inst{PC: 0x100, Class: ClassLoad, Dest: 3, Addr: 0x2000}
	if s := load.String(); !strings.Contains(s, "load") || !strings.Contains(s, "0x2000") {
		t.Errorf("load string %q missing fields", s)
	}
	br := Inst{PC: 0x104, Class: ClassBranch, Taken: true, Target: 0x200}
	if s := br.String(); !strings.Contains(s, "branch") || !strings.Contains(s, "taken=true") {
		t.Errorf("branch string %q missing fields", s)
	}
	alu := Inst{PC: 0x108, Class: ClassInt, Dest: 1, Src1: 2, Src2: 3}
	if s := alu.String(); !strings.Contains(s, "int") {
		t.Errorf("alu string %q missing class", s)
	}
}
