//go:build faultpoint

package crashtest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/simtest"
)

// crashSpec is the campaign every scenario interrupts: four jobs, so a
// crash can land with some completed, some leased and some pending.
const crashSpec = `{"workloads":["2W1"],"policies":["ICOUNT","MFLUSH"],"seeds":[1,2],"cycles":2000}`

const crashJobs = 4

// formats are the aggregate renderings compared byte-for-byte.
var formats = []string{"json", "csv", "table", "rows"}

// ---- binaries -------------------------------------------------------

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// binaries builds mflushd and mflushworker once, with fault injection
// compiled in, and returns their paths.
func binaries(t *testing.T) (daemon, worker string) {
	t.Helper()
	buildOnce.Do(func() {
		root, err := filepath.Abs(filepath.Join("..", ".."))
		if err != nil {
			buildErr = err
			return
		}
		buildDir, err = os.MkdirTemp("", "crashtest-bin-")
		if err != nil {
			buildErr = err
			return
		}
		for _, pkg := range []string{"mflushd", "mflushworker"} {
			cmd := exec.Command("go", "build", "-tags", "faultpoint",
				"-o", filepath.Join(buildDir, pkg), "./cmd/"+pkg)
			cmd.Dir = root
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = fmt.Errorf("build %s: %v\n%s", pkg, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return filepath.Join(buildDir, "mflushd"), filepath.Join(buildDir, "mflushworker")
}

// ---- process harness ------------------------------------------------

// proc is one child process with its captured log and exit status.
type proc struct {
	cmd    *exec.Cmd
	mu     sync.Mutex
	lines  []string
	addrCh chan string // daemon only: the parsed "serving on" address
	exited chan error
}

// start launches bin with args, the given extra environment, and a log
// scanner that watches for the daemon's "serving on HOST:PORT" line.
func start(t *testing.T, bin string, env []string, args ...string) *proc {
	t.Helper()
	p := &proc{
		cmd:    exec.Command(bin, args...),
		addrCh: make(chan string, 1),
		exited: make(chan error, 1),
	}
	p.cmd.Env = append(os.Environ(), env...)
	stderr, err := p.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	p.cmd.Stdout = io.Discard
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.lines = append(p.lines, line)
			p.mu.Unlock()
			if i := strings.Index(line, "serving on "); i >= 0 {
				addr := line[i+len("serving on "):]
				if j := strings.IndexByte(addr, ' '); j >= 0 {
					addr = addr[:j]
				}
				select {
				case p.addrCh <- addr:
				default:
				}
			}
		}
		p.exited <- p.cmd.Wait()
	}()
	t.Cleanup(func() {
		p.cmd.Process.Kill()
		select {
		case <-p.exited:
		case <-time.After(10 * time.Second):
		}
	})
	return p
}

// log returns everything the process has written so far.
func (p *proc) log() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return strings.Join(p.lines, "\n")
}

// serving waits for the daemon's listen address.
func (p *proc) serving(t *testing.T) string {
	t.Helper()
	select {
	case addr := <-p.addrCh:
		return "http://" + addr
	case err := <-p.exited:
		t.Fatalf("daemon exited before serving: %v\n%s", err, p.log())
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never served:\n%s", p.log())
	}
	return ""
}

// waitExit blocks until the process dies, returning its exit error.
func (p *proc) waitExit(t *testing.T, within time.Duration, why string) error {
	t.Helper()
	select {
	case err := <-p.exited:
		return err
	case <-time.After(within):
		t.Fatalf("%s: process still alive after %s\n%s", why, within, p.log())
	}
	return nil
}

// startDaemon launches mflushd in durable cluster mode on a free port.
func startDaemon(t *testing.T, bin, stateDir, storePath, faults string) *proc {
	t.Helper()
	return start(t, bin, []string{"MFLUSH_FAULTPOINTS=" + faults},
		"-addr", "127.0.0.1:0", "-cluster", "-lease-ttl", "5s",
		"-state-dir", stateDir, "-wal-compact", "1",
		"-store", storePath, "-drain-timeout", "30s")
}

// startWorker launches one mflushworker against base. Its environment
// carries no faultpoints: only the daemon crashes in this matrix.
func startWorker(t *testing.T, bin, base string) *proc {
	t.Helper()
	return start(t, bin, []string{"MFLUSH_FAULTPOINTS="},
		"-coordinator", base, "-capacity", "2", "-lease-wait", "100ms", "-quiet")
}

// ---- HTTP helpers ---------------------------------------------------

var client = &http.Client{Timeout: 10 * time.Second}

// submit posts the spec; the returned error covers the daemon dying
// mid-request, which a crash scenario may legitimately cause.
func submit(base, spec string) (string, error) {
	resp, err := client.Post(base+"/v1/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: %d: %s", resp.StatusCode, body)
	}
	var decoded struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &decoded); err != nil {
		return "", err
	}
	return decoded.ID, nil
}

// waitFleet polls the fleet listing until n workers are registered —
// submitting before that would route jobs through the local fallback,
// never touching the queue the matrix wants to crash.
func waitFleet(t *testing.T, base string, n int) {
	t.Helper()
	simtest.WaitFor(t, 30*time.Second, func() bool {
		resp, err := client.Get(base + "/v1/workers")
		if err != nil {
			t.Fatalf("fleet poll: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var fleet struct {
			Workers []json.RawMessage `json:"workers"`
		}
		if err := json.Unmarshal(body, &fleet); err != nil {
			t.Fatalf("fleet poll: %v (%s)", err, body)
		}
		return len(fleet.Workers) >= n
	}, "fleet never reached %d workers", n)
}

// waitDone polls a campaign to its terminal state.
func waitDone(t *testing.T, base, id string) {
	t.Helper()
	simtest.WaitFor(t, 120*time.Second, func() bool {
		resp, err := client.Get(base + "/v1/campaigns/" + id)
		if err != nil {
			t.Fatalf("status poll: %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var st struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("status poll: %v (%s)", err, body)
		}
		if st.State != "done" && st.State != "running" {
			t.Fatalf("campaign %s settled as %q, want done", id, st.State)
		}
		return st.State == "done"
	}, "campaign %s never finished", id)
}

// aggregates fetches every format of a campaign's result.
func aggregates(t *testing.T, base, id string) map[string]string {
	t.Helper()
	out := make(map[string]string, len(formats))
	for _, format := range formats {
		resp, err := client.Get(base + "/v1/campaigns/" + id + "/result?format=" + format)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result %s: %d: %s", format, resp.StatusCode, body)
		}
		if len(body) == 0 {
			t.Fatalf("result %s: empty body", format)
		}
		out[format] = string(body)
	}
	return out
}

// storeRecords parses a store file into key -> record line, failing on
// duplicate keys — a duplicate means a job's result was persisted twice,
// which the exactly-once contract forbids.
func storeRecords(t *testing.T, path string) map[string]string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := make(map[string]string)
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec struct {
			Key string `json:"key"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("store %s: bad line %q: %v", path, line, err)
		}
		if _, dup := recs[rec.Key]; dup {
			t.Fatalf("store %s: key %s persisted twice", path, rec.Key)
		}
		recs[rec.Key] = string(line)
	}
	return recs
}

// ---- the matrix -----------------------------------------------------

// reference runs the campaign once, uninterrupted, on the faultpoint
// build with nothing armed — the golden aggregates and store every
// crash scenario must reproduce.
var (
	refOnce  sync.Once
	refAggs  map[string]string
	refStore map[string]string
)

func reference(t *testing.T) (map[string]string, map[string]string) {
	t.Helper()
	refOnce.Do(func() {
		daemonBin, workerBin := binaries(t)
		base := t.TempDir()
		storePath := filepath.Join(base, "store.jsonl")
		d := startDaemon(t, daemonBin, filepath.Join(base, "state"), storePath, "")
		addr := d.serving(t)
		startWorker(t, workerBin, addr)
		waitFleet(t, addr, 1)
		id, err := submit(addr, crashSpec)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, addr, id)
		refAggs = aggregates(t, addr, id)
		d.cmd.Process.Signal(syscall.SIGTERM)
		d.waitExit(t, 60*time.Second, "reference daemon drain")
		refStore = storeRecords(t, storePath)
		if len(refStore) != crashJobs {
			t.Fatalf("reference run persisted %d records, want %d", len(refStore), crashJobs)
		}
	})
	if refAggs == nil {
		t.Fatal("reference run failed in an earlier test")
	}
	return refAggs, refStore
}

// TestCrashMatrix kills the real daemon at every injected point and
// requires the restarted daemon to finish the campaign with results
// byte-identical to the uninterrupted reference.
//
// wal.append.torn is armed with a plain crash (every hit, so the first):
// the tear writes half a record before dying, and arming it with an
// error instead would corrupt the log mid-file — the point exists
// precisely to leave a torn tail for recovery to repair.
func TestCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix rebuilds and repeatedly SIGKILLs real binaries")
	}
	wantAggs, wantStore := reference(t)
	scenarios := []struct {
		name   string
		faults string
	}{
		{"append-before", "wal.append.before=crash@3"},
		{"append-unsynced", "wal.sync.before=crash@4"},
		{"append-torn", "wal.append.torn=crash"},
		{"compact-tmp", "wal.compact.tmp=crash@3"},
		{"compact-renamed", "wal.compact.renamed=crash@3"},
		{"lease-granted", "cluster.lease.granted=crash"},
		{"ack-logged", "cluster.ack.logged=crash"},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			daemonBin, workerBin := binaries(t)
			base := t.TempDir()
			stateDir := filepath.Join(base, "state")
			storePath := filepath.Join(base, "store.jsonl")

			// Incarnation 1: armed. The submit races the injected
			// SIGKILL, so its error is tolerated; the crash is not.
			d1 := startDaemon(t, daemonBin, stateDir, storePath, sc.faults)
			addr := d1.serving(t)
			w1 := startWorker(t, workerBin, addr)
			waitFleet(t, addr, 1)
			_, _ = submit(addr, crashSpec)
			err := d1.waitExit(t, 60*time.Second, "armed daemon")
			if err == nil {
				t.Fatalf("daemon exited cleanly, want SIGKILL from %s", sc.faults)
			}
			w1.cmd.Process.Kill()

			// Incarnation 2: same state directory and store, nothing
			// armed. It must boot (replaying or repairing the WAL),
			// resume on its own, and converge.
			d2 := startDaemon(t, daemonBin, stateDir, storePath, "")
			addr2 := d2.serving(t)
			startWorker(t, workerBin, addr2)
			waitFleet(t, addr2, 1)
			id, err := submit(addr2, crashSpec)
			if err != nil {
				t.Fatalf("resubmit after restart: %v", err)
			}
			waitDone(t, addr2, id)
			got := aggregates(t, addr2, id)
			for _, format := range formats {
				if got[format] != wantAggs[format] {
					t.Errorf("%s aggregate differs from the uninterrupted run:\n%s\nvs\n%s",
						format, got[format], wantAggs[format])
				}
			}

			// Drain and compare the persisted store: the same records,
			// each exactly once.
			d2.cmd.Process.Signal(syscall.SIGTERM)
			d2.waitExit(t, 60*time.Second, "restarted daemon drain")
			store := storeRecords(t, storePath)
			if len(store) != len(wantStore) {
				t.Fatalf("restarted run persisted %d records, want %d\ndaemon log:\n%s",
					len(store), len(wantStore), d2.log())
			}
			for key, line := range wantStore {
				if store[key] != line {
					t.Errorf("record %s differs from the uninterrupted run:\n%s\nvs\n%s",
						key, store[key], line)
				}
			}
		})
	}
}
