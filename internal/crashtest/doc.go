// Package crashtest is the crash-recovery matrix for the durable
// coordinator queue: it builds the real mflushd and mflushworker
// binaries with fault injection compiled in (-tags faultpoint), SIGKILLs
// the daemon at each WAL and lease faultpoint in the middle of a live
// campaign, restarts it on the same state directory, and requires the
// resumed campaign to converge to results byte-identical to a run that
// was never interrupted.
//
// The tests only exist under the faultpoint build tag — `make crashtest`
// runs them; a plain `go test ./...` compiles this package to nothing,
// so the matrix never slows the ordinary suite. internal/faultpoint
// documents the injection points and the MFLUSH_FAULTPOINTS syntax the
// matrix drives the daemon with.
package crashtest
