// Package driver loads and type-checks this module's packages for the
// mflushvet analyzers, using only the standard library and the go
// command. It shells out to `go list -export -e -json -deps`, which
// yields every package in the dependency closure together with compiled
// export data (built on demand into the build cache), then type-checks
// each module package from source with a gc-export importer resolving
// its imports. That is the same architecture as an x/tools "compiled"
// analysis driver — no network, no third-party modules, and dependency
// type information at export-data cost instead of source-checking the
// whole standard library.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"

	"repro/internal/analysis"
)

// Package is one type-checked module package.
type Package struct {
	// PkgPath is the import path ("repro/internal/sim").
	PkgPath string
	// Dir is the package directory on disk.
	Dir string
	// Files are the parsed non-test Go files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's results for Files.
	Info *types.Info
}

// Result is a loaded module: a shared FileSet and the module packages
// in `go list` order (dependencies first).
type Result struct {
	// Fset positions every loaded file.
	Fset *token.FileSet
	// Pkgs are the module packages, dependencies first.
	Pkgs []*Package
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	ForTest    string
	Error      *struct{ Err string }
	DepsErrors []struct{ Err string }
}

// goList runs `go list -export -e -json -deps` on patterns from dir.
func goList(dir string, patterns []string) ([]byte, error) {
	args := append([]string{"list", "-export", "-e", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("driver: go list: %v\n%s", err, stderr.Bytes())
	}
	return out, nil
}

// ExportData resolves import paths (and their dependency closures) to
// gc export-data files, for callers that type-check sources the go tool
// does not know about — the analysistest fixtures. Packages the go tool
// reports broken are skipped; the caller's type check surfaces any
// import that truly cannot be resolved.
func ExportData(dir string, paths ...string) (map[string]string, error) {
	out, err := goList(dir, paths)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("driver: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// Load lists patterns from dir and type-checks every non-standard,
// non-test package in the result.
func Load(dir string, patterns ...string) (*Result, error) {
	out, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string)
	var mods []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("driver: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("driver: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.DepsErrors) > 0 {
			return nil, fmt.Errorf("driver: %s: %s", p.ImportPath, p.DepsErrors[0].Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.ForTest == "" {
			mods = append(mods, p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	res := &Result{Fset: fset}
	for _, p := range mods {
		pkg, err := check(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		res.Pkgs = append(res.Pkgs, pkg)
	}
	return res, nil
}

// ExportImporter returns a types.Importer resolving import paths
// through gc export-data files (as produced by `go list -export`).
// Shared with the analysistest harness, which mixes it with
// source-loaded testdata packages.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("driver: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// check parses and type-checks one package from source.
func check(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("driver: %w", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("driver: type-checking %s: %w", path, err)
	}
	return &Package{PkgPath: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// NewInfo allocates the types.Info map set the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Run scans annotations across every loaded package, then applies each
// analyzer to the packages and files its Match admits. Include
// analysis.Annotations in the list to fail the run on stray //mflush:
// markers. Diagnostics come back sorted by position.
func Run(res *Result, analyzers []*analysis.Analyzer) []analysis.Diagnostic {
	facts := analysis.NewFacts()
	for _, p := range res.Pkgs {
		facts.ScanFacts(res.Fset, p.Files, p.Info)
	}

	var diags []analysis.Diagnostic
	for _, p := range res.Pkgs {
		for _, a := range analyzers {
			files := p.Files
			if a.Match != nil {
				files = nil
				for _, f := range p.Files {
					name := filepath.Base(res.Fset.Position(f.Pos()).Filename)
					if a.Match(p.PkgPath, name) {
						files = append(files, f)
					}
				}
				if len(files) == 0 {
					continue
				}
			}
			pass := analysis.NewPass(a, res.Fset, files, p.Types, p.Info, facts, func(d analysis.Diagnostic) {
				diags = append(diags, d)
			})
			if err := a.Run(pass); err != nil {
				diags = append(diags, analysis.Diagnostic{
					Analyzer: a.Name,
					Message:  fmt.Sprintf("internal error: %v", err),
				})
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return diags
}

// StockVet runs `go vet` (the stock passes) over patterns, streaming
// its output to w. It reports ok=false when vet found problems and a
// non-nil err only when vet itself could not run.
func StockVet(dir string, w io.Writer, patterns ...string) (ok bool, err error) {
	args := append([]string{"vet", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stdout = w
	cmd.Stderr = w
	if err := cmd.Run(); err != nil {
		if _, isExit := err.(*exec.ExitError); isExit {
			return false, nil
		}
		return false, fmt.Errorf("driver: go vet: %w", err)
	}
	return true, nil
}

// ModuleRoot walks up from dir to the enclosing go.mod directory.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("driver: no go.mod above %s", dir)
		}
		d = parent
	}
}
