// Package analysis is the repository's static-analysis framework: a
// self-contained, dependency-free reimplementation of the core shapes
// of golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic) plus
// the `//mflush:` annotation vocabulary the mflushvet analyzers
// machine-check. The x/tools module is deliberately not imported — the
// repo builds offline with the standard library only — so the framework
// carries its own driver (internal/analysis/driver) and testdata
// harness (internal/analysis/analysistest).
//
// The five analyzers live in subpackages (determinism, hotpath,
// keyhash, lockorder, errwrap); cmd/mflushvet runs them over ./...
// together with the stock `go vet` passes. ARCHITECTURE.md's "Static
// analysis" section documents each analyzer's invariant and the test
// that previously guarded it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check: a name, a doc line, an optional
// package/file matcher, and the Run function that inspects a
// type-checked package and reports diagnostics.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("determinism").
	Name string
	// Doc is a one-line description of the invariant enforced.
	Doc string
	// Match, when non-nil, restricts where the analyzer applies: it is
	// called with the package import path and the base name of each
	// file; files for which it returns false are invisible to Run (they
	// are removed from Pass.Files). A package with no matching files is
	// skipped entirely. The analysistest harness bypasses Match so
	// testdata fixtures exercise the rules regardless of path.
	Match func(pkgPath, filename string) bool
	// Run inspects one package and reports findings via Pass.Reportf.
	// A returned error aborts the whole run (driver failure, not a
	// finding).
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed files (post-Match filtering).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's results for Files.
	Info *types.Info
	// Facts is the module-wide annotation table (hot-path functions,
	// keyed structs, guarded fields), shared by every pass.
	Facts *Facts

	report func(Diagnostic)
	decls  map[*types.Func]*ast.FuncDecl
	marks  map[*ast.File]map[int][]Mark
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer names the check that produced the finding.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message states the violation.
	Message string
}

// String renders the diagnostic in file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// NewPass assembles a pass. The report callback receives diagnostics as
// Reportf produces them; drivers collect, test harnesses match against
// want-comments.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *Facts, report func(Diagnostic)) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info, Facts: facts, report: report}
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// FuncDecls maps the package's function objects to their declarations,
// built lazily — analyzers use it to chase same-package calls (keyhash
// walks the key method's transitive body; lockorder finds functions
// that acquire locks).
func (p *Pass) FuncDecls() map[*types.Func]*ast.FuncDecl {
	if p.decls != nil {
		return p.decls
	}
	p.decls = make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				p.decls[obj] = fd
			}
		}
	}
	return p.decls
}

// Marks returns the statement-level `//mflush:` marks of file, indexed
// by line. A statement is considered marked when a mark sits on its
// first line or on the line immediately above (StmtMarked).
func (p *Pass) Marks(file *ast.File) map[int][]Mark {
	if p.marks == nil {
		p.marks = make(map[*ast.File]map[int][]Mark)
	}
	if m, ok := p.marks[file]; ok {
		return m
	}
	m := FileMarks(p.Fset, file)
	p.marks[file] = m
	return m
}

// StmtMarked reports whether the node carries the named mark: on the
// node's first line, or alone on the line above it.
func (p *Pass) StmtMarked(file *ast.File, n ast.Node, name string) bool {
	marks := p.Marks(file)
	line := p.Fset.Position(n.Pos()).Line
	for _, mk := range marks[line] {
		if mk.Name == name {
			return true
		}
	}
	for _, mk := range marks[line-1] {
		if mk.Name == name {
			return true
		}
	}
	return false
}

// FileOf returns the *ast.File of the pass that contains pos.
func (p *Pass) FileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// Callee resolves a call expression to the static *types.Func it
// invokes, or nil for dynamic calls (function values), built-ins and
// type conversions.
func (p *Pass) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if fn, ok := p.Info.Uses[id].(*types.Func); ok {
		return fn
	}
	if fn, ok := p.Info.Defs[id].(*types.Func); ok {
		return fn
	}
	return nil
}

// FuncID is the cross-package identity of a function or method:
// "pkgpath.Name" for functions, "pkgpath.Recv.Name" for methods
// (pointer receivers are spelled the same as value receivers, so an
// annotation never depends on which form a call site resolves to).
// Export-data-loaded and source-checked views of the same function get
// equal IDs, which is what lets annotation facts cross package
// boundaries.
func FuncID(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return TypeID(named.Obj()) + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// TypeID is the cross-package identity of a named type: "pkgpath.Name".
func TypeID(obj *types.TypeName) string {
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// IsMutex reports whether t is (a pointer to) sync.Mutex or
// sync.RWMutex.
func IsMutex(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// IsAtomicType reports whether t is a type from sync/atomic
// (atomic.Uint64, atomic.Bool, ...).
func IsAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// ExprString renders a (selector/ident/index) expression compactly for
// diagnostics and lock identity — "r.mu", "f.fam.mu". Unrenderable
// expressions come back empty.
func ExprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := ExprString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// MatchPackages builds a Match function that accepts exactly the given
// import paths (any file).
func MatchPackages(paths ...string) func(pkgPath, filename string) bool {
	set := make(map[string]bool, len(paths))
	for _, p := range paths {
		set[p] = true
	}
	return func(pkgPath, _ string) bool { return set[pkgPath] }
}

// MatchFiles builds a Match function that accepts the named files of
// one package (base names), in addition to any (path, file) pairs the
// next matcher accepts. Chain as
// MatchFiles("repro/internal/campaign", []string{"campaign.go"}, MatchPackages(...)).
func MatchFiles(pkgPath string, files []string, next func(string, string) bool) func(pkgPath, filename string) bool {
	set := make(map[string]bool, len(files))
	for _, f := range files {
		set[f] = true
	}
	return func(p, f string) bool {
		if p == pkgPath {
			return set[f]
		}
		if next != nil {
			return next(p, f)
		}
		return false
	}
}
