package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The `//mflush:` annotation vocabulary. Annotations are the contract
// surface between the code and the analyzers: hotpath and keyed carry
// semantic obligations the analyzers enforce, the rest are targeted
// escapes. ScanFacts collects them module-wide; anything spelled
// `//mflush:` that the scanner does not recognize — an unknown marker,
// or a known marker attached to the wrong kind of node — is recorded as
// a Stray, which mflushvet (and the in-tree self-check test) treats as
// an error, so an annotation can never silently rot into a no-op.
const (
	// MarkHotpath on a function declaration: the body must stay free of
	// allocating constructs and may only call hot-path, hotpath-ok or
	// whitelisted functions (hotpath analyzer).
	MarkHotpath = "hotpath"
	// MarkHotpathOK on a function declaration: callable from hot paths
	// without being checked itself — the audited boundary into code
	// whose cost the alloc-budget benchmarks pin down directly.
	MarkHotpathOK = "hotpath-ok"
	// MarkKeyed on a struct type, followed by one or more method names:
	// every field must be consumed by (the transitive bodies of) those
	// methods or carry keyed-ignore (keyhash analyzer).
	MarkKeyed = "keyed"
	// MarkKeyedIgnore on a struct field: excluded from key material on
	// purpose (labels, display names).
	MarkKeyedIgnore = "keyed-ignore"
	// MarkGangBarrier anywhere in a file's comments: `go` statements are
	// allowed in this file (the deterministic gang barrier).
	MarkGangBarrier = "gang-barrier-file"
	// MarkOrderOK on a range statement: this map iteration's order is
	// genuinely irrelevant; suppress the determinism finding.
	MarkOrderOK = "order-ok"
	// MarkCold on a statement inside a hot-path function: the subtree is
	// an error/crash path taken at most once per failure, not per cycle;
	// hotpath checks skip it.
	MarkCold = "cold"
	// MarkGuardedBy on a struct field, followed by a mutex field name:
	// every access must lexically hold that mutex on the same receiver
	// (lockorder analyzer).
	MarkGuardedBy = "guarded-by"
	// MarkLocksOK on a lock-acquiring statement: intentional nesting;
	// suppress the lockorder finding.
	MarkLocksOK = "locks-ok"
)

// markPrefix introduces every annotation.
const markPrefix = "mflush:"

// Mark is one parsed `//mflush:name args` annotation.
type Mark struct {
	// Name is the marker after the prefix ("hotpath", "keyed", ...).
	Name string
	// Args are the whitespace-separated arguments after the name.
	Args []string
	// Pos locates the comment.
	Pos token.Pos
}

// statement-level marks (consumed positionally, so attachment cannot be
// validated; everything else must sit on the node kind its entry in
// nodeMarks says).
var stmtMarks = map[string]bool{
	MarkGangBarrier: true,
	MarkOrderOK:     true,
	MarkCold:        true,
	MarkLocksOK:     true,
}

// declaration-level marks and the node kind each attaches to.
var declMarks = map[string]string{
	MarkHotpath:     "function",
	MarkHotpathOK:   "function",
	MarkKeyed:       "struct type",
	MarkKeyedIgnore: "struct field",
	MarkGuardedBy:   "struct field",
}

// parseMark parses one comment line; ok is false when the line carries
// no mflush annotation at all. A trailing `// want ...` expectation (the
// analysistest syntax) is not part of the annotation and is cut off.
func parseMark(c *ast.Comment) (Mark, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, markPrefix) {
		return Mark{}, false
	}
	fields := strings.Fields(strings.TrimPrefix(text, markPrefix))
	for i, f := range fields {
		if strings.HasPrefix(f, "//") {
			fields = fields[:i]
			break
		}
	}
	if len(fields) == 0 {
		return Mark{Name: "", Pos: c.Pos()}, true
	}
	return Mark{Name: fields[0], Args: fields[1:], Pos: c.Pos()}, true
}

// FileMarks indexes a file's statement-level marks by line.
func FileMarks(fset *token.FileSet, file *ast.File) map[int][]Mark {
	out := make(map[int][]Mark)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			mk, ok := parseMark(c)
			if !ok || !stmtMarks[mk.Name] {
				continue
			}
			line := fset.Position(c.Pos()).Line
			out[line] = append(out[line], mk)
		}
	}
	return out
}

// KeyedStruct is the keyhash obligation of one annotated struct.
type KeyedStruct struct {
	// Methods are the key-derivation methods named by the annotation;
	// the union of their transitive field reads must cover the struct.
	Methods []string
	// Ignore holds the fields marked keyed-ignore.
	Ignore map[string]bool
	// Pos locates the annotation (for diagnostics).
	Pos token.Pos
}

// Stray is an annotation the scanner could not bind: an unknown marker
// or a known marker on the wrong node kind.
type Stray struct {
	// Pos locates the offending comment.
	Pos token.Pos
	// Message explains what is wrong with it.
	Message string
}

// Facts is the module-wide annotation table, built once per run over
// every package the driver loaded and shared by all passes. IDs are
// FuncID/TypeID strings, so facts recorded while source-checking one
// package resolve against objects imported from export data by another.
type Facts struct {
	// Hotpath holds FuncIDs of //mflush:hotpath functions.
	Hotpath map[string]bool
	// HotpathOK holds FuncIDs of //mflush:hotpath-ok functions.
	HotpathOK map[string]bool
	// Keyed maps TypeIDs of //mflush:keyed structs to their obligation.
	Keyed map[string]*KeyedStruct
	// GuardedBy maps "TypeID.Field" to the guarding mutex field name.
	GuardedBy map[string]string
	// GangBarrierFiles holds base filenames carrying gang-barrier-file.
	GangBarrierFiles map[string]bool
	// Strays are the annotations that failed to bind anywhere.
	Strays []Stray
}

// NewFacts returns an empty table.
func NewFacts() *Facts {
	return &Facts{
		Hotpath:          make(map[string]bool),
		HotpathOK:        make(map[string]bool),
		Keyed:            make(map[string]*KeyedStruct),
		GuardedBy:        make(map[string]string),
		GangBarrierFiles: make(map[string]bool),
	}
}

// ScanFacts folds one type-checked package's annotations into f. Call
// it for every module package before running analyzers, so cross-
// package facts (a hot-path callee in another package) are complete.
func (f *Facts) ScanFacts(fset *token.FileSet, files []*ast.File, info *types.Info) {
	for _, file := range files {
		f.scanFile(fset, file, info)
	}
}

func (f *Facts) scanFile(fset *token.FileSet, file *ast.File, info *types.Info) {
	// consumed tracks comments bound to a declaration so the stray sweep
	// can flag the rest.
	consumed := make(map[*ast.Comment]bool)

	bind := func(doc *ast.CommentGroup, want func(Mark) bool) {
		if doc == nil {
			return
		}
		for _, c := range doc.List {
			mk, ok := parseMark(c)
			if !ok {
				continue
			}
			if want(mk) {
				consumed[c] = true
			}
		}
	}

	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			bind(d.Doc, func(mk Mark) bool {
				switch mk.Name {
				case MarkHotpath, MarkHotpathOK:
					obj, _ := info.Defs[d.Name].(*types.Func)
					if obj == nil {
						return false
					}
					if mk.Name == MarkHotpath {
						f.Hotpath[FuncID(obj)] = true
					} else {
						f.HotpathOK[FuncID(obj)] = true
					}
					return true
				}
				return false
			})
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, isStruct := ts.Type.(*ast.StructType)
				if !isStruct {
					continue
				}
				obj, _ := info.Defs[ts.Name].(*types.TypeName)
				if obj == nil {
					continue
				}
				var ks *KeyedStruct
				bindKeyed := func(mk Mark) bool {
					if mk.Name != MarkKeyed || len(mk.Args) == 0 {
						return false
					}
					ks = &KeyedStruct{Methods: mk.Args, Ignore: make(map[string]bool), Pos: mk.Pos}
					f.Keyed[TypeID(obj)] = ks
					return true
				}
				// The annotation may sit on the grouped decl or the spec.
				bind(d.Doc, bindKeyed)
				bind(ts.Doc, bindKeyed)
				f.scanStructFields(st, obj, ks, consumed)
			}
		}
	}

	// Stray sweep: every mflush: comment not consumed above and not a
	// legitimate statement-level mark is misattached or unknown.
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			mk, ok := parseMark(c)
			if !ok || consumed[c] {
				continue
			}
			switch {
			case stmtMarks[mk.Name]:
				if mk.Name == MarkGangBarrier {
					f.GangBarrierFiles[fset.Position(file.Pos()).Filename] = true
				}
			case declMarks[mk.Name] != "":
				f.Strays = append(f.Strays, Stray{
					Pos: c.Pos(),
					Message: fmt.Sprintf(
						"annotation //mflush:%s is not attached to a %s the analyzers recognize",
						mk.Name, declMarks[mk.Name]),
				})
			default:
				f.Strays = append(f.Strays, Stray{
					Pos:     c.Pos(),
					Message: fmt.Sprintf("unknown annotation //mflush:%s (known: %s)", mk.Name, knownMarks()),
				})
			}
		}
	}
}

// scanStructFields binds field-level marks of one struct: guarded-by on
// any struct, keyed-ignore only when the struct is keyed (ks non-nil —
// an ignore mark on an unkeyed struct stays unconsumed and surfaces as
// a stray).
func (f *Facts) scanStructFields(st *ast.StructType, obj *types.TypeName, ks *KeyedStruct, consumed map[*ast.Comment]bool) {
	for _, field := range st.Fields.List {
		for _, doc := range []*ast.CommentGroup{field.Doc, field.Comment} {
			if doc == nil {
				continue
			}
			for _, c := range doc.List {
				mk, ok := parseMark(c)
				if !ok {
					continue
				}
				switch mk.Name {
				case MarkKeyedIgnore:
					if ks == nil {
						continue
					}
					for _, name := range field.Names {
						ks.Ignore[name.Name] = true
					}
					consumed[c] = true
				case MarkGuardedBy:
					if len(mk.Args) == 1 {
						for _, name := range field.Names {
							f.GuardedBy[TypeID(obj)+"."+name.Name] = mk.Args[0]
						}
						consumed[c] = true
					}
				}
			}
		}
	}
}

func knownMarks() string {
	names := make([]string, 0, len(stmtMarks)+len(declMarks))
	for n := range stmtMarks {
		names = append(names, n)
	}
	for n := range declMarks {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
