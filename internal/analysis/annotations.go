package analysis

// Annotations is the self-check analyzer for the `//mflush:` vocabulary
// itself: it reports every stray the fact scanner recorded — unknown
// markers, and known markers attached to a node kind they do not bind
// to (a //mflush:hotpath on a type, a //mflush:keyed-ignore in an
// unkeyed struct). Without it, a misplaced annotation would silently
// enforce nothing; with it, the annotation either binds or fails the
// lint. Each pass reports only the strays positioned in its own files,
// so diagnostics land in the package that owns the comment.
var Annotations = &Analyzer{
	Name: "annotations",
	Doc:  "every //mflush: annotation must bind to a node the analyzers recognize",
	Run: func(pass *Pass) error {
		for _, s := range pass.Facts.Strays {
			if pass.FileOf(s.Pos) != nil {
				pass.Reportf(s.Pos, "%s", s.Message)
			}
		}
		return nil
	},
}
