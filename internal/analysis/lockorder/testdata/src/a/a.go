// Package a exercises the lockorder analyzer: //mflush:guarded-by
// fields touched without their mutex, and nested lock acquisition.
package a

import "sync"

type Registry struct {
	mu    sync.Mutex
	names map[string]int //mflush:guarded-by mu

	aux   sync.Mutex
	other int //mflush:guarded-by aux
}

func (r *Registry) goodDefer() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.names["a"] // deferred unlock keeps mu held to function end
}

func (r *Registry) goodInline() {
	r.mu.Lock()
	r.names["a"] = 1
	r.mu.Unlock()
}

func (r *Registry) badUnlocked() int {
	return r.names["a"] // want `r.names is //mflush:guarded-by mu, which is not held here`
}

func (r *Registry) badAfterUnlock() {
	r.mu.Lock()
	r.names["a"] = 1
	r.mu.Unlock()
	r.names["b"] = 2 // want `r.names is //mflush:guarded-by mu, which is not held here`
}

// locksOK relies on its caller's lock; the opt-out is per statement.
func (r *Registry) locksOK() int {
	//mflush:locks-ok
	return r.names["a"]
}

func (r *Registry) badNested() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.aux.Lock() // want `acquiring r.aux while holding r.mu; the lock discipline forbids nesting`
	r.other = 1
	r.aux.Unlock()
}

func (r *Registry) nestedOK() {
	r.mu.Lock()
	defer r.mu.Unlock()
	//mflush:locks-ok
	r.aux.Lock()
	r.other = 2
	r.aux.Unlock()
}

// branchUnlock: an unlock on an early-return branch must not clear the
// fall-through path's held set.
func (r *Registry) branchUnlock(cond bool) {
	r.mu.Lock()
	if cond {
		r.mu.Unlock()
		return
	}
	r.names["a"] = 1
	r.mu.Unlock()
}

// closureUnderLock: a closure evaluated under the lock sees the held
// set (the sort.Search-under-registry-lock idiom).
func (r *Registry) closureUnderLock() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := func() int { return r.names["a"] }
	return f()
}

// mismatch: holding a's mutex does not license touching b's fields.
func mismatch(a, b *Registry) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.names["x"] = 1 // want `b.names is //mflush:guarded-by mu, which is not held here`
}
