// Package lockorder machine-checks the lock discipline that
// internal/metrics documents in prose: fields annotated
// `//mflush:guarded-by <mu>` (the registry's family list and name index,
// a family's children and index, the scrape scratch buffer) may only be
// touched while that mutex is lexically held on the same receiver
// expression, and no second mutex may be acquired while one is held
// (the registry's no-nesting rule — scrape-time callbacks run under a
// single family lock, never two). The update side of the discipline —
// Counter/Gauge/Histogram writes touch only atomics — is carried by the
// `//mflush:hotpath` annotations on the update methods: the hotpath
// analyzer rejects any mutex operation there because sync is not an
// audited callee package.
//
// The analysis is lexical and per-function: a Lock/RLock on an
// expression adds "expr.mu" to the held set for the following
// statements of the same block (a deferred Unlock keeps it held to
// function end; an inline Unlock removes it), and nested blocks inherit
// a copy. Helpers that rely on a caller's lock, or intentional nesting,
// are suppressed statement-by-statement with `//mflush:locks-ok`.
// Composite-literal initialization is exempt by construction — field
// keys in a literal are not selector accesses — which matches the
// init-before-publication idiom registration uses.
package lockorder

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the guarded-field / lock-nesting check. It matches every
// module package; only //mflush:guarded-by fields and mutex operations
// trigger it.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "//mflush:guarded-by fields require their mutex lexically held; no nested mutex acquisition without //mflush:locks-ok",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass, file: file}
			w.block(fd.Body.List, map[string]bool{})
		}
	}
	return nil
}

// walker carries one function's lexical lock analysis.
type walker struct {
	pass *analysis.Pass
	file *ast.File
}

// block processes a statement list with an inherited copy of the held
// set; changes inside the block do not escape it (an unlock on an
// early-return branch must not clear the fall-through path's held set).
func (w *walker) block(list []ast.Stmt, held map[string]bool) {
	h := make(map[string]bool, len(held))
	for k := range held {
		h[k] = true
	}
	for _, s := range list {
		w.stmt(s, h)
	}
}

// stmt processes one statement: lock operations mutate the held set,
// compound statements recurse, and everything else has its expressions
// checked for guarded accesses under the current held set.
func (w *walker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.block(s.List, held)
	case *ast.IfStmt:
		w.stmt(s.Init, held)
		w.check(s.Cond, held, s)
		w.block(s.Body.List, held)
		w.stmt(s.Else, held)
	case *ast.ForStmt:
		w.stmt(s.Init, held)
		w.check(s.Cond, held, s)
		w.stmt(s.Post, held)
		w.block(s.Body.List, held)
	case *ast.RangeStmt:
		w.check(s.X, held, s)
		w.block(s.Body.List, held)
	case *ast.SwitchStmt:
		w.stmt(s.Init, held)
		w.check(s.Tag, held, s)
		w.block(s.Body.List, held)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held)
		w.stmt(s.Assign, held)
		w.block(s.Body.List, held)
	case *ast.SelectStmt:
		w.block(s.Body.List, held)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.check(e, held, s)
		}
		w.block(s.Body, held)
	case *ast.CommClause:
		w.stmt(s.Comm, held)
		w.block(s.Body, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.DeferStmt:
		// `defer x.mu.Unlock()` keeps the lock held to function end.
		if _, op := w.lockOp(s.Call); op == opUnlock {
			return
		}
		w.check(s.Call, held, s)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if mu, op := w.lockOp(call); op != opNone {
				if op == opLock {
					if len(held) > 0 && !w.pass.StmtMarked(w.file, s, analysis.MarkLocksOK) {
						w.pass.Reportf(s.Pos(), "acquiring %s while holding %s; the lock discipline forbids nesting — restructure or mark //mflush:locks-ok", mu, anyKey(held))
					}
					held[mu] = true
				} else {
					delete(held, mu)
				}
				return
			}
		}
		w.check(s.X, held, s)
	default:
		w.check(s, held, s)
	}
}

// lock operations.
type op int

const (
	opNone op = iota
	opLock
	opUnlock
)

// lockOp recognizes calls to (RW)Mutex Lock/RLock/Unlock/RUnlock and
// returns the lock identity ("r.mu") plus the operation kind.
func (w *walker) lockOp(call *ast.CallExpr) (string, op) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	fn, ok := w.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", opNone
	}
	mu := analysis.ExprString(sel.X)
	if mu == "" || !analysis.IsMutex(w.pass.Info.Types[sel.X].Type) {
		return "", opNone
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return mu, opLock
	case "Unlock", "RUnlock":
		return mu, opUnlock
	}
	return "", opNone
}

// check walks one node (expression, or a simple statement's expression
// tree, including closure bodies — a closure evaluated inline, like the
// sort.Search callback under the registry lock, sees the current held
// set) and reports guarded-field accesses whose mutex is not held.
func (w *walker) check(n ast.Node, held map[string]bool, stmt ast.Stmt) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		sel, ok := node.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := w.pass.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		field := s.Obj()
		t := s.Recv()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return true
		}
		mu, guarded := w.pass.Facts.GuardedBy[analysis.TypeID(named.Obj())+"."+field.Name()]
		if !guarded {
			return true
		}
		base := analysis.ExprString(sel.X)
		if base != "" && held[base+"."+mu] {
			return true
		}
		if w.pass.StmtMarked(w.file, stmt, analysis.MarkLocksOK) {
			return true
		}
		w.pass.Reportf(sel.Pos(), "%s.%s is //mflush:guarded-by %s, which is not held here; lock %s.%s first or mark the statement //mflush:locks-ok",
			base, field.Name(), mu, base, mu)
		return true
	})
}

// anyKey returns the smallest element of a non-empty set — smallest so
// the diagnostic text is deterministic across runs.
func anyKey(m map[string]bool) string {
	min := ""
	for k := range m {
		if min == "" || k < min {
			min = k
		}
	}
	return min
}
