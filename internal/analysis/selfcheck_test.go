package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
	"repro/internal/analysis/errwrap"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/keyhash"
	"repro/internal/analysis/lockorder"

	"repro/internal/analysis/determinism"
)

// TestSelfCheck runs the full mflushvet analyzer suite over the module
// itself and requires a clean bill: zero diagnostics, and in particular
// zero strays — every //mflush: annotation in the tree must bind to a
// node the analyzers recognize. This is the in-tree equivalent of the
// CI lint gate, so `go test ./...` alone catches a reintroduced
// violation or a typoed annotation.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("drives go list -export over the whole module")
	}
	root, err := driver.ModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	res, err := driver.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	analyzers := []*analysis.Analyzer{
		analysis.Annotations,
		determinism.Analyzer,
		hotpath.Analyzer,
		keyhash.Analyzer,
		lockorder.Analyzer,
		errwrap.Analyzer,
	}
	diags := driver.Run(res, analyzers)
	if len(diags) == 0 {
		return
	}
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("\n  ")
		b.WriteString(d.String())
	}
	t.Errorf("mflushvet is not clean on the module itself (%d diagnostics):%s", len(diags), b.String())
}
