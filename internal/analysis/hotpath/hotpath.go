// Package hotpath turns the repository's alloc-budget property — ~0
// allocations per cycle on the simulator's Step path and the metrics
// update path — into a compile-time check. Functions annotated
// `//mflush:hotpath` must not contain allocating constructs (fmt calls,
// runtime string concatenation, map/slice literals, variable-capturing
// closures, interface boxing) and may only call other hot-path
// functions, `//mflush:hotpath-ok` boundary functions, or a small
// whitelist of known-allocation-free standard-library calls. Error and
// crash branches that are taken at most once per failure — not per
// cycle — can be exempted statement-by-statement with `//mflush:cold`;
// panic calls are implicitly cold.
//
// The check is a lint, not a proof: calls through function values
// (probe callbacks, OnSample hooks) cannot be resolved statically and
// are the registrant's responsibility, exactly as the Probe contract in
// internal/sim documents. The alloc-budget benchmarks remain the ground
// truth; this analyzer catches the regressions before they reach a
// benchmark run.
package hotpath

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the hot-path allocation check. It matches every module
// package — it only fires inside annotated functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocating constructs and unaudited calls in //mflush:hotpath functions",
	Run:  run,
}

// whitelistedCallee reports whether fn is a standard-library call known
// not to allocate: sync/atomic operations, math and math/bits
// arithmetic, and the sort.Search* binary searches.
func whitelistedCallee(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "sync/atomic", "math", "math/bits":
		return true
	case "sort":
		return strings.HasPrefix(fn.Name(), "Search")
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil || !pass.Facts.Hotpath[analysis.FuncID(obj)] {
				continue
			}
			c := &checker{pass: pass, file: file, fn: obj}
			c.stmts(fd.Body.List)
		}
	}
	return nil
}

// checker walks one hot function's body, skipping //mflush:cold
// statements and implicit-cold panic calls.
type checker struct {
	pass *analysis.Pass
	file *ast.File
	fn   *types.Func
}

func (c *checker) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

// stmt dispatches one statement, honouring cold marks before
// descending.
func (c *checker) stmt(s ast.Stmt) {
	if s == nil {
		return
	}
	if c.pass.StmtMarked(c.file, s, analysis.MarkCold) {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.stmts(s.List)
	case *ast.IfStmt:
		c.stmt(s.Init)
		c.expr(s.Cond)
		c.stmt(s.Body)
		c.stmt(s.Else)
	case *ast.ForStmt:
		c.stmt(s.Init)
		c.expr(s.Cond)
		c.stmt(s.Post)
		c.stmt(s.Body)
	case *ast.RangeStmt:
		c.expr(s.X)
		c.stmt(s.Body)
	case *ast.SwitchStmt:
		c.stmt(s.Init)
		c.expr(s.Tag)
		c.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init)
		c.stmt(s.Assign)
		c.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			c.expr(e)
		}
		c.stmts(s.Body)
	case *ast.SelectStmt:
		c.stmt(s.Body)
	case *ast.CommClause:
		c.stmt(s.Comm)
		c.stmts(s.Body)
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.ReturnStmt:
		c.returnStmt(s)
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.DeferStmt:
		c.expr(s.Call)
	case *ast.GoStmt:
		c.expr(s.Call)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		c.expr(s.X)
	case *ast.SendStmt:
		c.expr(s.Chan)
		c.expr(s.Value)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	}
}

// expr walks one expression tree.
func (c *checker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		c.call(e)
	case *ast.BinaryExpr:
		c.binary(e)
		c.expr(e.X)
		c.expr(e.Y)
	case *ast.CompositeLit:
		c.composite(e)
	case *ast.FuncLit:
		c.funcLit(e)
	case *ast.ParenExpr:
		c.expr(e.X)
	case *ast.SelectorExpr:
		c.expr(e.X)
	case *ast.IndexExpr:
		c.expr(e.X)
		c.expr(e.Index)
	case *ast.SliceExpr:
		c.expr(e.X)
		c.expr(e.Low)
		c.expr(e.High)
		c.expr(e.Max)
	case *ast.StarExpr:
		c.expr(e.X)
	case *ast.UnaryExpr:
		c.expr(e.X)
	case *ast.TypeAssertExpr:
		c.expr(e.X)
	case *ast.KeyValueExpr:
		c.expr(e.Key)
		c.expr(e.Value)
	}
}

// call checks one call: panic is implicitly cold; conversions are
// checked for boxing; static callees must be hot, boundary or
// whitelisted; arguments are checked for interface boxing.
func (c *checker) call(call *ast.CallExpr) {
	// panic(...) is a crash path: skip the whole subtree.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return
		}
	}
	// Type conversion T(x): boxing check only.
	if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			c.boxing(call.Args[0], tv.Type, "conversion")
			c.expr(call.Args[0])
		}
		return
	}

	fn := c.pass.Callee(call)
	switch {
	case fn == nil:
		// Built-in (append/len/copy/make/...) or a dynamic call through a
		// function value: built-ins on preallocated buffers are the hot
		// path's bread and butter, and dynamic callees are unresolvable —
		// the registrant owns their cost (Probe contract).
	case fn.Pkg() != nil && fn.Pkg().Path() == "fmt":
		c.pass.Reportf(call.Pos(), "fmt.%s call in //mflush:hotpath function %s allocates; mark the branch //mflush:cold if it is a failure path", fn.Name(), c.fn.Name())
	case c.pass.Facts.Hotpath[analysis.FuncID(fn)], c.pass.Facts.HotpathOK[analysis.FuncID(fn)], whitelistedCallee(fn):
		// audited callee
	default:
		c.pass.Reportf(call.Pos(), "call to %s from //mflush:hotpath function %s: callee is neither //mflush:hotpath, //mflush:hotpath-ok nor whitelisted", analysis.FuncID(fn), c.fn.Name())
	}

	// Interface boxing at the call boundary.
	if sig := c.signature(call); sig != nil {
		c.callArgs(call, sig)
	}
	for _, a := range call.Args {
		c.expr(a)
	}
	c.expr(call.Fun)
}

// signature resolves the call's signature, static or dynamic.
func (c *checker) signature(call *ast.CallExpr) *types.Signature {
	tv, ok := c.pass.Info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// callArgs flags concrete arguments passed to interface parameters.
func (c *checker) callArgs(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1:
			pt = params.At(i).Type()
		case sig.Variadic():
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
			// f(xs...) passes the slice through unboxed.
			if call.Ellipsis.IsValid() {
				pt = nil
			}
		default:
			if i < params.Len() {
				pt = params.At(i).Type()
			}
		}
		if pt != nil {
			c.boxing(arg, pt, "argument")
		}
	}
}

// binary flags runtime string concatenation (constant folding is free).
func (c *checker) binary(e *ast.BinaryExpr) {
	if e.Op.String() != "+" {
		return
	}
	tv, ok := c.pass.Info.Types[e]
	if !ok || tv.Value != nil {
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		c.pass.Reportf(e.Pos(), "string concatenation in //mflush:hotpath function %s allocates", c.fn.Name())
	}
}

// composite flags map and slice literals (both allocate).
func (c *checker) composite(lit *ast.CompositeLit) {
	tv, ok := c.pass.Info.Types[lit]
	if ok {
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			c.pass.Reportf(lit.Pos(), "map literal in //mflush:hotpath function %s allocates", c.fn.Name())
		case *types.Slice:
			c.pass.Reportf(lit.Pos(), "slice literal in //mflush:hotpath function %s allocates", c.fn.Name())
		}
	}
	for _, el := range lit.Elts {
		c.expr(el)
	}
}

// funcLit flags closures that capture variables (those are heap
// allocated at each evaluation).
func (c *checker) funcLit(lit *ast.FuncLit) {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := c.pass.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		scope := obj.Parent()
		if scope == nil || scope == types.Universe || (c.pass.Pkg != nil && scope == c.pass.Pkg.Scope()) {
			return true // package-level or field: no capture cost
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			captured = obj.Name()
		}
		return true
	})
	if captured != "" {
		c.pass.Reportf(lit.Pos(), "closure capturing %q in //mflush:hotpath function %s allocates", captured, c.fn.Name())
	}
}

// assign flags concrete-to-interface assignments.
func (c *checker) assign(s *ast.AssignStmt) {
	if s.Tok.String() == "=" && len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			if lt, ok := c.pass.Info.Types[s.Lhs[i]]; ok {
				c.boxing(s.Rhs[i], lt.Type, "assignment")
			}
		}
	}
	for _, e := range s.Rhs {
		c.expr(e)
	}
	for _, e := range s.Lhs {
		c.expr(e)
	}
}

// returnStmt flags concrete values returned as interface results.
func (c *checker) returnStmt(s *ast.ReturnStmt) {
	sig, _ := c.fn.Type().(*types.Signature)
	if sig != nil && sig.Results().Len() == len(s.Results) {
		for i, r := range s.Results {
			c.boxing(r, sig.Results().At(i).Type(), "return")
		}
	}
	for _, r := range s.Results {
		c.expr(r)
	}
}

// boxing reports a concrete (non-interface, non-nil) value converted to
// an interface type.
func (c *checker) boxing(e ast.Expr, to types.Type, what string) {
	if to == nil || !types.IsInterface(to) {
		return
	}
	tv, ok := c.pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return
	}
	if types.IsInterface(tv.Type) {
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	c.pass.Reportf(e.Pos(), "interface conversion (boxing) in %s in //mflush:hotpath function %s allocates", what, c.fn.Name())
}
