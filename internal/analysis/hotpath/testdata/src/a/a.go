// Package a exercises the hotpath analyzer: allocating constructs and
// unaudited calls inside //mflush:hotpath functions.
package a

import (
	"fmt"
	"sort"
	"sync/atomic"
)

var counter atomic.Uint64

//mflush:hotpath
func hotLeaf() {
	counter.Add(1) // atomic: whitelisted
}

//mflush:hotpath-ok
func boundary(v any) {}

func plain() {}

//mflush:hotpath
func hotFmt(x int) {
	fmt.Println(x) // want `fmt.Println call in //mflush:hotpath function hotFmt allocates` `interface conversion \(boxing\) in argument`
}

//mflush:hotpath
func hotConcat(a, b string) string {
	return a + b // want `string concatenation in //mflush:hotpath function hotConcat allocates`
}

//mflush:hotpath
func hotConstConcat() string {
	const p = "a"
	return p + "b" // constant-folded: free
}

//mflush:hotpath
func hotLits() {
	_ = map[string]int{} // want `map literal in //mflush:hotpath function hotLits allocates`
	_ = []int{1, 2}      // want `slice literal in //mflush:hotpath function hotLits allocates`
}

//mflush:hotpath
func hotClosure(n int) func() int {
	return func() int { return n } // want `closure capturing "n" in //mflush:hotpath function hotClosure allocates`
}

//mflush:hotpath
func hotPureClosure() func(int) int {
	return func(x int) int { return x * 2 } // no free variables: static
}

//mflush:hotpath
func hotCalls(xs []int) {
	hotLeaf()                  // hotpath callee: fine
	boundary(nil)              // hotpath-ok callee: fine (nil boxes nothing)
	_ = sort.SearchInts(xs, 0) // sort.Search*: whitelisted
	plain()                    // want `call to a.plain from //mflush:hotpath function hotCalls`
}

//mflush:hotpath
func hotBoxArg(v int) {
	boundary(v) // want `interface conversion \(boxing\) in argument`
}

//mflush:hotpath
func hotBoxAssign(v int) {
	var x any
	x = v // want `interface conversion \(boxing\) in assignment`
	_ = x
}

//mflush:hotpath
func hotBoxReturn(v int) any {
	return v // want `interface conversion \(boxing\) in return`
}

//mflush:hotpath
func hotCold(fail bool) {
	if fail {
		//mflush:cold
		fmt.Println("failure path, taken once per failure")
	}
}

//mflush:hotpath
func hotPanic(bad bool) {
	if bad {
		panic(fmt.Sprintf("bad: %v", bad)) // crash path: exempt
	}
}

//mflush:hotpath
func hotAppend(dst []uint64, v uint64) []uint64 {
	return append(dst, v) // builtins on amortized buffers: fine
}

func unchecked() {
	fmt.Println("not hotpath: anything goes")
}
