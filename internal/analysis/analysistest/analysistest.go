// Package analysistest runs an analyzer over testdata fixture packages
// and checks its diagnostics against `// want "regexp"` comments, in
// the style of golang.org/x/tools/go/analysis/analysistest but built on
// the repository's own offline driver. Fixtures live under
// testdata/src/<pkg>/ (a path the go tool ignores, so fixture
// violations never fail the real build or lint); their imports are
// resolved through `go list -export` export data, exactly as the
// mflushvet driver resolves module dependencies.
//
// Matching is strict in both directions: every diagnostic must be
// claimed by a want comment on its line, and every want comment must be
// claimed by a diagnostic — a rule that stops firing fails its test
// rather than rotting silently. The analyzer's Match filter is
// deliberately bypassed so fixtures exercise rules regardless of their
// synthetic import paths.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/driver"
)

// Run checks one analyzer against the named fixture packages under
// testdata/src. All packages are fact-scanned together before the
// analyzer runs, so cross-fixture annotations behave as they do in the
// real driver.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()

	fset := token.NewFileSet()
	type fixture struct {
		path  string
		files []*ast.File
	}
	var fixtures []fixture
	imports := make(map[string]bool)

	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("analysistest: %v", err)
			}
			files = append(files, f)
			for _, imp := range f.Imports {
				if p, err := strconv.Unquote(imp.Path.Value); err == nil {
					imports[p] = true
				}
			}
		}
		if len(files) == 0 {
			t.Fatalf("analysistest: no Go files in %s", dir)
		}
		fixtures = append(fixtures, fixture{path: pkg, files: files})
	}

	imp := driver.ExportImporter(fset, exportData(t, imports))

	facts := analysis.NewFacts()
	type checked struct {
		fixture
		pkg  *types.Package
		info *types.Info
	}
	var pkgsChecked []checked
	for _, fx := range fixtures {
		info := driver.NewInfo()
		conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
		tpkg, err := conf.Check(fx.path, fset, fx.files, info)
		if err != nil {
			t.Fatalf("analysistest: type-checking %s: %v", fx.path, err)
		}
		facts.ScanFacts(fset, fx.files, info)
		pkgsChecked = append(pkgsChecked, checked{fixture: fx, pkg: tpkg, info: info})
	}

	var diags []analysis.Diagnostic
	for _, c := range pkgsChecked {
		pass := analysis.NewPass(a, fset, c.files, c.pkg, c.info, facts, func(d analysis.Diagnostic) {
			diags = append(diags, d)
		})
		if err := a.Run(pass); err != nil {
			t.Fatalf("analysistest: %s on %s: %v", a.Name, c.path, err)
		}
	}

	var allFiles []*ast.File
	for _, c := range pkgsChecked {
		allFiles = append(allFiles, c.files...)
	}
	match(t, fset, allFiles, diags)
}

// match reconciles diagnostics with want comments, erroring on both
// unexpected diagnostics and unsatisfied wants.
func match(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string][]*want) // "file:line" -> expectations
	var all []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, w := range parseWants(t, fset, c) {
					key := w.file + ":" + strconv.Itoa(w.line)
					wants[key] = append(wants[key], w)
					all = append(all, w)
				}
			}
		}
	}
	for _, d := range diags {
		key := d.Pos.Filename + ":" + strconv.Itoa(d.Pos.Line)
		claimed := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range all {
		if !w.matched {
			t.Errorf("%s: no diagnostic matched want %q", w.pos, w.re)
		}
	}
}

// exportData resolves the fixtures' imports to export-data files via
// `go list -export`, run from the module root so repro/... paths
// resolve alongside the standard library.
func exportData(t *testing.T, imports map[string]bool) map[string]string {
	t.Helper()
	var paths []string
	for p := range imports {
		paths = append(paths, p)
	}
	if len(paths) == 0 {
		return nil
	}
	root, err := driver.ModuleRoot(".")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	exports, err := driver.ExportData(root, paths...)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	return exports
}

// want is one expectation parsed from a `// want "re"` comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
	pos     token.Position
}

// parseWants extracts the expectations of one comment, if any. The
// comment may be a plain `// want "re"`, or carry the expectation after
// other content — `//mflush:keyed X // want "re"` — since annotation
// diagnostics land on the annotation's own line.
func parseWants(t *testing.T, fset *token.FileSet, c *ast.Comment) []*want {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, "want ") && text != "want" {
		i := strings.Index(text, "// want")
		if i < 0 {
			return nil
		}
		text = strings.TrimSpace(text[i+2:])
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
	pos := fset.Position(c.Pos())
	var out []*want
	for rest != "" {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Fatalf("analysistest: %s: malformed want comment: %q", pos, rest)
		}
		lit, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("analysistest: %s: %v", pos, err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("analysistest: %s: bad want regexp: %v", pos, err)
		}
		out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, pos: pos})
		rest = strings.TrimSpace(strings.TrimPrefix(rest, q))
	}
	return out
}
