// Package a exercises the keyhash analyzer: keyed structs whose fields
// must be consumed by the named key methods, directly or via helpers.
package a

import "strconv"

// Good's key covers one field directly and one through a helper.
//
//mflush:keyed Key
type Good struct {
	ID   uint64
	Name string
}

func (g *Good) Key() string { return g.nameKey() + strconv.FormatUint(g.ID, 10) }

func (g *Good) nameKey() string { return g.Name }

// Bad has a field its key never reads.
//
//mflush:keyed Key
type Bad struct {
	ID    uint64
	Extra string // want `field Extra of //mflush:keyed struct Bad is not consumed by Key`
}

func (b *Bad) Key() string { return strconv.FormatUint(b.ID, 10) }

// Ignored opts its presentation-only field out explicitly.
//
//mflush:keyed Key
type Ignored struct {
	ID uint64

	// Display is presentation-only, never part of identity.
	//
	//mflush:keyed-ignore
	Display string
}

func (ig *Ignored) Key() string { return strconv.FormatUint(ig.ID, 10) }

// Multi splits coverage across two key methods.
//
//mflush:keyed KeyA KeyB
type Multi struct {
	A uint64
	B uint64
}

func (m *Multi) KeyA() uint64 { return m.A }
func (m *Multi) KeyB() uint64 { return m.B }

//mflush:keyed Missing // want `//mflush:keyed names method Missing, but NoMethod has no such method`
type NoMethod struct {
	ID uint64 // want `field ID of //mflush:keyed struct NoMethod is not consumed by Missing`
}
