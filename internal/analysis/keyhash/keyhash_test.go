package keyhash_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/keyhash"
)

func TestKeyhash(t *testing.T) {
	analysistest.Run(t, "testdata", keyhash.Analyzer, "a")
}
