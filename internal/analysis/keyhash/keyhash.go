// Package keyhash enforces key/hash coverage on `//mflush:keyed`
// structs. A keyed struct declares, in its annotation, the methods that
// derive its content-addressed identity (campaign Job.Key, GangKey,
// Tweak.canon, WireJob.Job); every field must then either be read —
// directly or through transitively-called same-package helpers — by at
// least one of those methods, or carry an explicit
// `//mflush:keyed-ignore` opt-out. The invariant this pins down is the
// one the campaign store's dedup and the frozen-key compatibility tests
// rely on: adding a semantically meaningful field to a keyed struct
// without folding it into the key silently aliases distinct jobs onto
// one result. The analyzer turns that silent aliasing into a lint
// failure at the field declaration.
//
// Coverage is judged by explicit field reads: a method that consumes
// the whole struct opaquely (reflection, encoding the value wholesale)
// does not mark fields consumed. Key methods in this repository format
// fields individually, which is also what keeps their output stable —
// the restriction is the point, not a shortcut.
package keyhash

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the keyed-struct coverage check. It matches everywhere;
// only structs recorded in Facts.Keyed are examined.
var Analyzer = &analysis.Analyzer{
	Name: "keyhash",
	Doc:  "every field of a //mflush:keyed struct must feed its key methods or be marked //mflush:keyed-ignore",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj, _ := pass.Info.Defs[ts.Name].(*types.TypeName)
				if obj == nil {
					continue
				}
				ks := pass.Facts.Keyed[analysis.TypeID(obj)]
				if ks == nil {
					continue
				}
				st, ok := obj.Type().Underlying().(*types.Struct)
				if !ok {
					continue
				}
				checkStruct(pass, obj, st, ks)
			}
		}
	}
	return nil
}

// checkStruct verifies one keyed struct: resolve the key methods, walk
// their bodies (following same-package calls), and report every field
// neither read nor ignored.
func checkStruct(pass *analysis.Pass, obj *types.TypeName, st *types.Struct, ks *analysis.KeyedStruct) {
	fields := make(map[*types.Var]bool, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i)] = true
	}

	consumed := make(map[*types.Var]bool)
	visited := make(map[*types.Func]bool)
	var queue []*ast.FuncDecl

	for _, name := range ks.Methods {
		fn := method(pass, obj, name)
		if fn == nil {
			pass.Reportf(ks.Pos, "//mflush:keyed names method %s, but %s has no such method", name, obj.Name())
			continue
		}
		fd := pass.FuncDecls()[fn]
		if fd == nil || fd.Body == nil {
			pass.Reportf(ks.Pos, "//mflush:keyed method %s.%s has no body in this package", obj.Name(), name)
			continue
		}
		visited[fn] = true
		queue = append(queue, fd)
	}

	for len(queue) > 0 {
		fd := queue[0]
		queue = queue[1:]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if v, ok := pass.Info.Uses[n].(*types.Var); ok && fields[v] {
					consumed[v] = true
				}
			case *ast.CallExpr:
				callee := pass.Callee(n)
				if callee == nil || visited[callee] {
					return true
				}
				if cd := pass.FuncDecls()[callee]; cd != nil && cd.Body != nil {
					visited[callee] = true
					queue = append(queue, cd)
				}
			}
			return true
		})
	}

	for i := 0; i < st.NumFields(); i++ {
		fv := st.Field(i)
		if consumed[fv] || ks.Ignore[fv.Name()] {
			continue
		}
		pass.Reportf(fv.Pos(),
			"field %s of //mflush:keyed struct %s is not consumed by %s; fold it into the key or mark it //mflush:keyed-ignore",
			fv.Name(), obj.Name(), strings.Join(ks.Methods, "/"))
	}
}

// method resolves a key method by name on obj's type (value or pointer
// receiver).
func method(pass *analysis.Pass, obj *types.TypeName, name string) *types.Func {
	o, _, _ := types.LookupFieldOrMethod(obj.Type(), true, pass.Pkg, name)
	fn, _ := o.(*types.Func)
	return fn
}
