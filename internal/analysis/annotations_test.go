package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestAnnotations(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Annotations, "a")
}
