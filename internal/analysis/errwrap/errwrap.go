// Package errwrap enforces the trace-parser and WAL-recovery error
// contract: errors must keep their chain and their location. Concretely,
// in internal/trace and the cluster WAL/recovery files:
//
//   - An error-typed argument to fmt.Errorf — or to a badAt/badf-style
//     formatting constructor — must be formatted with %w. A %v or %s
//     flattens the cause into text, and errors.Is(err, io.ErrUnexpectedEOF)
//     or errors.Is(err, ErrBadTrace) downstream silently stops matching;
//     the recovery path's truncation-tolerance decisions key off exactly
//     those checks.
//
//   - In a package that declares a badAt offset-error constructor, a
//     function that consumes an io.Reader must not build sentinel-wrapping
//     errors with raw fmt.Errorf: parse errors are required to carry the
//     byte offset of the corruption (mflushtrace surfaces it to the
//     operator), and badAt is the only constructor that attaches one.
//
// The verb check needs a constant format string; calls whose format is
// computed are skipped rather than guessed at, and indexed verbs
// (%[1]v) bail out the same way.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// walFiles are the cluster files on the WAL append/recovery path; the
// rest of the cluster package (scheduler, transport) is out of scope.
var walFiles = []string{"wal.go", "recovery.go"}

// Analyzer is the error-wrapping check for trace parsing and WAL
// recovery code.
var Analyzer = &analysis.Analyzer{
	Name:  "errwrap",
	Doc:   "error args to fmt.Errorf/badAt must use %w; parse errors in reader-consuming functions must carry a byte offset via badAt",
	Match: analysis.MatchFiles("repro/internal/cluster", walFiles, analysis.MatchPackages("repro/internal/trace")),
	Run:   run,
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// readerType is io.Reader, built structurally so the check does not
// depend on the package under analysis importing io.
var readerType = func() *types.Interface {
	read := types.NewFunc(token.NoPos, nil, "Read", types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type())),
		false))
	iface := types.NewInterfaceType([]*types.Func{read}, nil)
	iface.Complete()
	return iface
}()

// constructorNames are the recognized offset-error constructors.
var constructorNames = map[string]bool{"badAt": true, "badf": true}

func run(pass *analysis.Pass) error {
	hasBadAt := false
	if pass.Pkg != nil {
		_, hasBadAt = pass.Pkg.Scope().Lookup("badAt").(*types.Func)
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inConstructor := constructorNames[fd.Name.Name]
			wantOffset := hasBadAt && !inConstructor && consumesReader(fd, pass)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := pass.Callee(call)
				if fn == nil {
					return true
				}
				switch {
				case fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
					checkVerbs(pass, call, fn)
					if wantOffset && wrapsSentinel(pass, call) {
						pass.Reportf(call.Pos(), "parse error built with fmt.Errorf in a reader-consuming function; use badAt(off, ...) so it carries the byte offset of the corruption")
					}
				case fn.Pkg() == pass.Pkg && constructorNames[fn.Name()]:
					checkVerbs(pass, call, fn)
				}
				return true
			})
		}
	}
	return nil
}

// consumesReader reports whether the function's receiver or any
// parameter implements io.Reader — the heuristic for "this function
// parses an input stream and knows byte offsets".
func consumesReader(fd *ast.FuncDecl, pass *analysis.Pass) bool {
	obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return false
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	if recv := sig.Recv(); recv != nil && types.Implements(recv.Type(), readerType) {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if types.Implements(sig.Params().At(i).Type(), readerType) {
			return true
		}
	}
	return false
}

// wrapsSentinel reports whether any call argument is a package-level
// error variable (ErrBadTrace and friends).
func wrapsSentinel(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.Parent() != pass.Pkg.Scope() {
			continue
		}
		if types.Implements(v.Type(), errorType) {
			return true
		}
	}
	return false
}

// checkVerbs maps the call's format verbs onto its variadic arguments
// and reports error-typed arguments formatted with anything but %w.
func checkVerbs(pass *analysis.Pass, call *ast.CallExpr, fn *types.Func) {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || !sig.Variadic() || sig.Params().Len() < 2 {
		return
	}
	fi := sig.Params().Len() - 2
	if fi >= len(call.Args) {
		return
	}
	tv, ok := pass.Info.Types[call.Args[fi]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	vs, ok := verbs(constant.StringVal(tv.Value))
	if !ok {
		return
	}
	for k, verb := range vs {
		ai := fi + 1 + k
		if ai >= len(call.Args) || verb == 'w' || verb == '*' {
			continue
		}
		at, ok := pass.Info.Types[call.Args[ai]]
		if !ok || at.Type == nil {
			continue
		}
		if b, ok := at.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if types.Implements(at.Type, errorType) {
			pass.Reportf(call.Args[ai].Pos(), "error formatted with %%%c loses the cause chain; use %%w", verb)
		}
	}
}

// verbs extracts the argument-consuming verbs of a format string, in
// order; a '*' width/precision consumes an argument and appears as '*'.
// ok is false for indexed verbs (%[1]v), which this parser does not map.
func verbs(format string) (out []byte, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// flags
		for i < len(format) {
			switch format[i] {
			case '+', '-', '#', ' ', '0':
				i++
				continue
			}
			break
		}
		// width and precision, each possibly '*'
		for j := 0; j < 2; j++ {
			if i < len(format) && format[i] == '*' {
				out = append(out, '*')
				i++
			}
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
			if j == 0 && i < len(format) && format[i] == '.' {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case '%':
			continue
		case '[':
			return nil, false
		default:
			out = append(out, format[i])
		}
	}
	return out, true
}
