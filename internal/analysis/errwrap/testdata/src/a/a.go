// Package a exercises the errwrap analyzer: %v/%s on error args, and
// sentinel-wrapping fmt.Errorf in reader-consuming functions that
// should use the badAt offset-error constructor instead.
package a

import (
	"errors"
	"fmt"
	"io"
)

var ErrBad = errors.New("bad input")

type offsetError struct {
	off int64
	err error
}

func (e *offsetError) Error() string { return fmt.Sprintf("offset %d: %v", e.off, e.err) }
func (e *offsetError) Unwrap() error { return e.err }

// badAt is the offset-error constructor; its own computed format string
// is skipped by the verb check, and the constructor itself is exempt
// from the offset rule.
func badAt(off int64, format string, args ...any) error {
	return &offsetError{off: off, err: fmt.Errorf("%w: "+format, append([]any{ErrBad}, args...)...)}
}

func flatten(err error) error {
	return fmt.Errorf("reading header: %v", err) // want `error formatted with %v loses the cause chain; use %w`
}

func wrapOK(err error) error {
	return fmt.Errorf("reading header: %w", err)
}

func badAtVerb(off int64, err error) error {
	return badAt(off, "truncated: %s", err) // want `error formatted with %s loses the cause chain; use %w`
}

func badAtOK(off int64, err error) error {
	return badAt(off, "truncated: %w", err)
}

func parse(r io.Reader) error {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return fmt.Errorf("%w: missing header", ErrBad) // want `parse error built with fmt.Errorf in a reader-consuming function; use badAt`
	}
	return badAt(0, "bad magic %q", b)
}

func parseNoSentinel(r io.Reader) error {
	_ = r
	return fmt.Errorf("unsupported version %d", 2) // no sentinel wrapped: fine
}

type reader struct{ off int64 }

func (r *reader) Read(p []byte) (int, error) { return 0, io.EOF }

// parseRecord consumes its receiver, which is itself an io.Reader.
func (r *reader) parseRecord() error {
	return fmt.Errorf("%w: truncated record", ErrBad) // want `parse error built with fmt.Errorf in a reader-consuming function`
}

func dynamicOK(err error, format string) error {
	return fmt.Errorf(format, err) // computed format: skipped, not guessed at
}

func indexedOK(err error) error {
	return fmt.Errorf("%[1]v", err) // indexed verbs: the parser bails out
}

func starVerb(err error, w int) error {
	return fmt.Errorf("%*d: %s", w, 3, err) // want `error formatted with %s loses the cause chain; use %w`
}
