// Package determinism forbids the sources of run-to-run nondeterminism
// in the simulator core. Bit-identical replay across gang widths, chunk
// sizes and process restarts is the repository's foundational invariant
// — every golden fingerprint, frozen job key and differential gang test
// assumes it — and the cheapest place to enforce it is at the source
// level: no wall-clock reads, no global math/rand, no goroutines
// outside the audited gang barrier, and no map iteration whose order
// can escape into results.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// CorePackages are the simulator-core import paths the analyzer guards:
// everything between the ISA and the chip model, plus the stream/policy
// layers whose outputs feed fingerprints.
var CorePackages = []string{
	"repro/internal/sim",
	"repro/internal/isa",
	"repro/internal/mem",
	"repro/internal/pipeline",
	"repro/internal/core",
	"repro/internal/cache",
	"repro/internal/bus",
	"repro/internal/branch",
	"repro/internal/synth",
	"repro/internal/trace",
	"repro/internal/policy",
	"repro/internal/energy",
	"repro/internal/cmp",
	"repro/internal/rng",
}

// keyFiles are the campaign files that derive content-hash job keys;
// they obey the same determinism rules as the core (the scheduler and
// store files legitimately use goroutines and the clock, so the whole
// package cannot be matched).
var keyFiles = []string{"campaign.go", "gang.go", "trace.go", "wire.go"}

// Analyzer is the determinism check.
var Analyzer = &analysis.Analyzer{
	Name:  "determinism",
	Doc:   "forbid wall-clock, global math/rand, escaping map iteration order and unaudited goroutines in the simulator core",
	Match: analysis.MatchFiles("repro/internal/campaign", keyFiles, analysis.MatchPackages(CorePackages...)),
	Run:   run,
}

// wallClock are the time package functions that read or depend on the
// wall clock (or a timer), none of which belong in the simulator core.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
	"Sleep": true,
}

// globalRand are the math/rand (and v2) top-level functions backed by
// the shared global source. Explicitly seeded *rand.Rand values are
// fine — their stream is a function of the seed.
var globalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint": true, "UintN": true,
	"Uint32N": true, "Uint64N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
}

// sortFuncs are the sort-package entry points that discharge an
// order-escape: appending map keys then sorting is the canonical
// deterministic iteration pattern.
var sortFuncs = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		barrier := pass.Facts.GangBarrierFiles[filename]
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !barrier {
					pass.Reportf(n.Pos(), "go statement outside a //mflush:gang-barrier-file; simulator-core concurrency belongs behind the audited gang barrier")
				}
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, file, n)
			case *ast.Ident:
				if obj := pass.Info.Uses[n]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "crypto/rand" {
					pass.Reportf(n.Pos(), "crypto/rand.%s in simulator core: results must be a function of the seed", obj.Name())
				}
			}
			return true
		})
	}
	return nil
}

// checkCall flags wall-clock reads and global math/rand draws.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := pass.Callee(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods (e.g. *rand.Rand.Intn, time.Time.Sub) are seed- or value-derived
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClock[fn.Name()] {
			pass.Reportf(call.Pos(), "wall-clock time.%s in simulator core: simulated time is the only clock here", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if globalRand[fn.Name()] {
			pass.Reportf(call.Pos(), "global %s.%s draws from the shared process-wide source; use a seeded rng (internal/rng) instead", pathBase(fn.Pkg().Path()), fn.Name())
		}
	}
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// checkRange flags map iterations whose order escapes: the body feeds
// an order-sensitive sink (I/O, a Write method such as a hash, a
// channel send) directly, or appends to an outer slice that is never
// subsequently sorted in the enclosing function. `//mflush:order-ok` on
// the range statement suppresses the finding for iterations whose order
// is genuinely irrelevant.
func checkRange(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if pass.StmtMarked(file, rng, analysis.MarkOrderOK) {
		return
	}

	// appended maps outer slice objects to the first append position.
	appended := make(map[types.Object]token.Pos)
	reported := false
	report := func(pos token.Pos, what string) {
		if !reported {
			pass.Reportf(pos, "map iteration order escapes via %s; sort first or mark the loop //mflush:order-ok", what)
			reported = true
		}
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			report(n.Pos(), "a channel send")
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.ObjectOf(id)
				if obj == nil || obj.Pos() == token.NoPos {
					continue
				}
				if obj.Pos() < rng.Pos() || obj.Pos() > rng.End() {
					if _, seen := appended[obj]; !seen {
						appended[obj] = n.Pos()
					}
				}
			}
		case *ast.CallExpr:
			if fn := pass.Callee(n); fn != nil && fn.Pkg() != nil {
				if fn.Pkg().Path() == "fmt" && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
					report(n.Pos(), "fmt."+fn.Name())
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && strings.HasPrefix(fn.Name(), "Write") {
					report(n.Pos(), "a "+fn.Name()+" call (hash/stream state)")
				}
			}
		}
		return true
	})

	if reported || len(appended) == 0 {
		return
	}
	// An outer append is fine when the slice is sorted after the loop.
	fd := enclosingFunc(file, rng.Pos())
	for obj, pos := range appended {
		if fd != nil && sortedAfter(pass, fd, obj, rng.End()) {
			continue
		}
		pass.Reportf(pos, "map iteration order escapes via append to %s, which is never sorted; sort it or mark the loop //mflush:order-ok", obj.Name())
	}
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// enclosingFunc finds the function declaration containing pos.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// sortedAfter reports whether obj is passed to a sort.*/slices.Sort*
// call positioned after `after` within fd.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, obj types.Object, after token.Pos) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after || found {
			return !found
		}
		fn := pass.Callee(call)
		if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
			return true
		}
		isSort := (fn.Pkg().Path() == "sort" && sortFuncs[fn.Name()]) ||
			(fn.Pkg().Path() == "slices" && strings.HasPrefix(fn.Name(), "Sort"))
		if !isSort {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
			found = true
		}
		return true
	})
	return found
}
