// This fixture file is the audited concurrency home: `go` statements
// here are allowed.
//
//mflush:gang-barrier-file
package a

import "sync"

func fanOut(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { wg.Done() }() // barrier file: no diagnostic
	}
	wg.Wait()
}
