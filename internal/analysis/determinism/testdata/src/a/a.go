// Package a exercises the determinism analyzer: wall-clock reads,
// global math/rand, crypto/rand, goroutines outside the gang barrier,
// and map iterations whose order escapes.
package a

import (
	crand "crypto/rand"
	"fmt"
	mrand "math/rand"
	"sort"
	"strings"
	"time"
)

func wallClock() time.Duration {
	t := time.Now()         // want `wall-clock time.Now in simulator core`
	time.Sleep(time.Second) // want `wall-clock time.Sleep in simulator core`
	return time.Since(t)    // want `wall-clock time.Since in simulator core`
}

func wallClockOK(a, b time.Time) time.Duration {
	return b.Sub(a) // a method on a value: fine
}

func globalRand() int {
	mrand.Shuffle(3, func(i, j int) {}) // want `global rand.Shuffle draws from the shared process-wide source`
	return mrand.Intn(4)                // want `global rand.Intn draws from the shared process-wide source`
}

func seededRandOK() int {
	r := mrand.New(mrand.NewSource(1))
	return r.Intn(4) // explicitly seeded: a function of the seed
}

func cryptoRand(b []byte) {
	crand.Read(b) // want `crypto/rand.Read in simulator core`
}

func spawn() {
	go func() {}() // want `go statement outside a //mflush:gang-barrier-file`
}

func escapesPrint(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `map iteration order escapes via fmt.Println`
	}
}

func escapesWriter(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `map iteration order escapes via a WriteString call`
	}
	return b.String()
}

func escapesSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `map iteration order escapes via a channel send`
	}
}

func escapesAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `map iteration order escapes via append to keys, which is never sorted`
	}
	return keys
}

func sortedAppendOK(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func orderOK(m map[string]int, ch chan string) {
	//mflush:order-ok
	for k := range m {
		ch <- k
	}
}

func commutativeOK(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // accumulation into a local is order-insensitive
	}
	return total
}
