// Package a exercises the annotations self-check: a stray //mflush:
// marker — an unknown name, or a known marker on a node kind it does
// not bind to — must surface as a diagnostic instead of silently
// enforcing nothing.
package a

import "sync"

//mflush:hotpath
func hot() {}

//mflush:hotpth // want `unknown annotation //mflush:hotpth \(known: `
func typo() {}

//mflush:hotpath // want `annotation //mflush:hotpath is not attached to a function the analyzers recognize`
type NotAFunc struct{}

//mflush:keyed // want `annotation //mflush:keyed is not attached to a struct type the analyzers recognize`
type MissingMethods struct {
	ID uint64
}

type Unkeyed struct {
	//mflush:keyed-ignore // want `annotation //mflush:keyed-ignore is not attached to a struct field the analyzers recognize`
	Label string
}

type Guarded struct {
	mu sync.Mutex
	n  int //mflush:guarded-by mu
}

//mflush:guarded-by mu // want `annotation //mflush:guarded-by is not attached to a struct field the analyzers recognize`
var notAField int

// Statement-level marks are consumed positionally; they are never
// strays, even though their attachment cannot be validated.
func looper(m map[string]int, ch chan string) {
	//mflush:order-ok
	for k := range m {
		ch <- k
	}
}
