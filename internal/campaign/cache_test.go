package campaign

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/simtest"
)

func testJobs(t *testing.T, seeds ...uint64) []Job {
	t.Helper()
	jobs, err := Spec{
		Workloads: []string{"2W1"},
		Policies:  []string{"ICOUNT", "MFLUSH"},
		Seeds:     seeds,
		Cycles:    1000,
	}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func TestCacheSingleFlight(t *testing.T) {
	r := simtest.New()
	r.Gate = make(chan struct{})
	c := NewCache(nil, r.Run)
	jobs := testJobs(t, 1)

	const callers = 8
	var wg sync.WaitGroup
	var hits atomic.Int64
	recs := make([][]Record, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, j := range jobs {
				rec, hit, err := c.Do(context.Background(), j)
				if err != nil {
					t.Error(err)
					return
				}
				if hit {
					hits.Add(1)
				}
				recs[i] = append(recs[i], rec)
			}
		}(i)
	}
	// Let callers pile up on the first in-flight job, then release.
	for r.Total() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(r.Gate)
	wg.Wait()

	if got := r.Max(); got != 1 {
		t.Fatalf("a job ran %d times, want exactly 1", got)
	}
	if got := r.Total(); got != len(jobs) {
		t.Fatalf("%d simulator invocations for %d distinct jobs", got, len(jobs))
	}
	want := int64(callers*len(jobs) - len(jobs))
	if hits.Load() != want {
		t.Fatalf("hits = %d, want %d", hits.Load(), want)
	}
	for i := 1; i < callers; i++ {
		for k := range recs[0] {
			if !reflect.DeepEqual(recs[i][k], recs[0][k]) {
				t.Fatalf("caller %d record %d differs: %+v vs %+v", i, k, recs[i][k], recs[0][k])
			}
		}
	}
	hitN, missN := c.Stats()
	if missN != uint64(len(jobs)) || hitN != uint64(want) {
		t.Fatalf("Stats = %d hits %d misses, want %d/%d", hitN, missN, want, len(jobs))
	}
}

func TestCachePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	store, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	r1 := simtest.New()
	c1 := NewCache(store, r1.Run)
	jobs := testJobs(t, 1, 2)
	var first []Record
	for _, j := range jobs {
		rec, hit, err := c1.Do(context.Background(), j)
		if err != nil || hit {
			t.Fatalf("cold Do: hit=%v err=%v", hit, err)
		}
		first = append(first, rec)
	}
	if c1.Len() != len(jobs) {
		t.Fatalf("Len = %d, want %d", c1.Len(), len(jobs))
	}
	store.Close()

	// A new process: fresh cache over the reopened store must serve every
	// job without a single simulator invocation.
	store2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	r2 := simtest.New()
	c2 := NewCache(store2, r2.Run)
	for i, j := range jobs {
		rec, hit, err := c2.Do(context.Background(), j)
		if err != nil || !hit {
			t.Fatalf("warm Do: hit=%v err=%v", hit, err)
		}
		if !reflect.DeepEqual(rec, first[i]) {
			t.Fatalf("restart changed record %d: %+v vs %+v", i, rec, first[i])
		}
	}
	if r2.Total() != 0 {
		t.Fatalf("restart re-simulated %d jobs", r2.Total())
	}
	if keys := store2.Keys(); len(keys) != len(jobs) {
		t.Fatalf("store index has %d keys, want %d", len(keys), len(jobs))
	}
}

// TestCacheStatsAcrossRestart pins the hit/miss accounting through a
// store-backed restart: a fresh process starts from zeroed counters
// (hits/misses are per-process observability, not store state), serves
// warm jobs as hits without simulating, and attributes each accessor —
// Do, Lookup, Contains — correctly: Contains never counts, Lookup and
// Do count every serve.
func TestCacheStatsAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	store, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	r1 := simtest.New()
	c1 := NewCache(store, r1.Run)
	jobs := testJobs(t, 1, 2) // 4 jobs
	for _, j := range jobs {
		if _, _, err := c1.Do(context.Background(), j); err != nil {
			t.Fatal(err)
		}
	}
	// Cold process: every Do was a miss; a repeat Do and a Lookup are
	// hits; Contains counts nothing.
	if !c1.Contains(jobs[0]) {
		t.Fatal("Contains lost a computed job")
	}
	if _, _, err := c1.Do(context.Background(), jobs[0]); err != nil {
		t.Fatal(err)
	}
	if _, ok := c1.Lookup(jobs[1]); !ok {
		t.Fatal("Lookup lost a computed job")
	}
	if hits, misses := c1.Stats(); hits != 2 || misses != uint64(len(jobs)) {
		t.Fatalf("cold process stats = %d hits / %d misses, want 2/%d", hits, misses, len(jobs))
	}
	store.Close()

	// Restart: counters are per-process and must start at zero even
	// though the store arrives fully warm.
	store2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	r2 := simtest.New()
	c2 := NewCache(store2, r2.Run)
	if hits, misses := c2.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("restarted cache starts at %d hits / %d misses, want 0/0", hits, misses)
	}
	if !c2.Contains(jobs[0]) {
		t.Fatal("restart lost a stored job")
	}
	if hits, misses := c2.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("Contains counted: %d hits / %d misses", hits, misses)
	}
	for _, j := range jobs {
		if _, hit, err := c2.Do(context.Background(), j); err != nil || !hit {
			t.Fatalf("warm Do: hit=%v err=%v", hit, err)
		}
	}
	if _, ok := c2.Lookup(jobs[0]); !ok {
		t.Fatal("warm Lookup missed")
	}
	if hits, misses := c2.Stats(); hits != uint64(len(jobs))+1 || misses != 0 {
		t.Fatalf("warm process stats = %d hits / %d misses, want %d/0", hits, misses, len(jobs)+1)
	}
	if r2.Total() != 0 {
		t.Fatalf("warm process simulated %d jobs", r2.Total())
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	r := simtest.New()
	r.Fail = true
	c := NewCache(nil, r.Run)
	j := testJobs(t, 1)[0]
	if _, _, err := c.Do(context.Background(), j); err == nil {
		t.Fatal("failed run reported no error")
	}
	r.Fail = false
	rec, hit, err := c.Do(context.Background(), j)
	if err != nil {
		t.Fatalf("retry after failure: %v", err)
	}
	if hit {
		t.Fatal("failure was cached as a result")
	}
	if rec.Key != j.Key() {
		t.Fatalf("retry record key = %q, want %q", rec.Key, j.Key())
	}
	if r.Total() != 2 {
		t.Fatalf("runner called %d times, want 2 (failure + retry)", r.Total())
	}
}

func TestCacheWaiterHonoursContext(t *testing.T) {
	r := simtest.New()
	r.Gate = make(chan struct{})
	c := NewCache(nil, r.Run)
	j := testJobs(t, 1)[0]

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		if _, _, err := c.Do(context.Background(), j); err != nil {
			t.Error(err)
		}
	}()
	for r.Total() == 0 {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Do(ctx, j); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}
	close(r.Gate)
	<-leaderDone
}

func TestCacheRelabelsTweak(t *testing.T) {
	r := simtest.New()
	c := NewCache(nil, r.Run)
	mk := func(name string) Job {
		jobs, err := Spec{
			Workloads: []string{"2W1"}, Policies: []string{"ICOUNT"},
			Cycles: 1000,
			Tweaks: []Tweak{{Name: name, MSHREntries: 4}},
		}.Jobs()
		if err != nil {
			t.Fatal(err)
		}
		return jobs[0]
	}
	if _, _, err := c.Do(context.Background(), mk("small-mshr")); err != nil {
		t.Fatal(err)
	}
	rec, hit, err := c.Do(context.Background(), mk("mshr4"))
	if err != nil || !hit {
		t.Fatalf("renamed tweak missed the cache: hit=%v err=%v", hit, err)
	}
	if rec.Tweak != "mshr4" {
		t.Fatalf("cached record kept stale label %q", rec.Tweak)
	}
}

func TestRunCachedSharedScheduler(t *testing.T) {
	r := simtest.New()
	c := NewCache(nil, r.Run)
	sched := NewShared(4)
	jobs := testJobs(t, 1, 2, 3)

	// Two concurrent identical campaigns on the shared scheduler: every
	// job must simulate exactly once, and both must see identical records
	// in job order.
	var wg sync.WaitGroup
	out := make([][]Record, 2)
	errs := make([]error, 2)
	progress := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = sched.RunCached(context.Background(), jobs, c,
				func(p Progress) { progress[i]++ })
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("campaign %d: %v", i, errs[i])
		}
		if progress[i] != len(jobs) {
			t.Fatalf("campaign %d reported %d progress events, want %d", i, progress[i], len(jobs))
		}
	}
	if got := r.Max(); got != 1 {
		t.Fatalf("a job simulated %d times across concurrent campaigns, want 1", got)
	}
	if r.Total() != len(jobs) {
		t.Fatalf("%d simulations for %d distinct jobs", r.Total(), len(jobs))
	}
	for k := range out[0] {
		if !reflect.DeepEqual(out[0][k], out[1][k]) {
			t.Fatalf("campaign records diverge at %d: %+v vs %+v", k, out[0][k], out[1][k])
		}
	}
}

func TestRunCachedCancellation(t *testing.T) {
	r := simtest.New()
	r.Gate = make(chan struct{})
	c := NewCache(nil, r.Run)
	sched := &Scheduler{Workers: 1}
	jobs := testJobs(t, 1, 2, 3)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var recs []Record
	var err error
	go func() {
		defer close(done)
		recs, err = sched.RunCached(ctx, jobs, c, nil)
	}()
	for r.Total() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(r.Gate)
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunCached returned %v", err)
	}
	// The in-flight job finished and is cached; jobs never started stay
	// zero-valued in the result slice.
	if recs[0].Key == "" {
		t.Fatal("in-flight job's record lost on cancellation")
	}
}

// TestRunCachedServesHitsWithoutSlots: a fully-cached campaign must
// complete even while every shared simulation slot is occupied — cache
// hits are resolved before slot acquisition, not queued behind
// long-running simulations.
func TestRunCachedServesHitsWithoutSlots(t *testing.T) {
	r := simtest.New()
	c := NewCache(nil, r.Run)
	sched := NewShared(1)
	cachedJobs := testJobs(t, 1)
	if _, err := sched.RunCached(context.Background(), cachedJobs, c, nil); err != nil {
		t.Fatal(err)
	}

	// Occupy the only slot with a gated simulation of a different job.
	r.Gate = make(chan struct{})
	blockerJobs, err := Spec{
		Workloads: []string{"2W3"}, Policies: []string{"ICOUNT"}, Cycles: 1000,
	}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	blockerDone := make(chan struct{})
	go func() {
		defer close(blockerDone)
		sched.RunCached(context.Background(), blockerJobs, c, nil)
	}()
	for r.Total() == len(cachedJobs) {
		time.Sleep(time.Millisecond)
	}

	// The cached campaign completes while the slot is still held.
	done := make(chan struct{})
	var recs []Record
	go func() {
		defer close(done)
		recs, err = sched.RunCached(context.Background(), cachedJobs, c, nil)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("fully-cached campaign blocked behind a busy simulation slot")
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(cachedJobs) || recs[0].Key == "" {
		t.Fatalf("cached campaign records = %+v", recs)
	}
	close(r.Gate)
	<-blockerDone
}
