package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/sim"
)

// Record is one completed job: its key, the cell identity the
// aggregation layer groups by, and the full simulation summary. Stores
// hold one JSON record per line.
type Record struct {
	// Key is the job's content hash (Job.Key).
	Key string `json:"key"`
	// Workload names the benchmark mix (aggregation identity).
	Workload string `json:"workload"`
	// Policy names the IFetch policy (aggregation identity).
	Policy string `json:"policy"`
	// Tweak labels the machine point (aggregation identity).
	Tweak string `json:"tweak"`
	// Seed is the synthesis seed the record was measured under.
	Seed uint64 `json:"seed"`
	// Summary is the full simulation digest.
	Summary sim.Summary `json:"summary"`
}

// Store persists campaign results as append-only JSONL keyed by job
// content hash. Opening an existing store loads every completed record,
// which is how an interrupted campaign resumes: the scheduler skips any
// job whose key is already present. Append is safe for concurrent use
// by scheduler workers.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	recs map[string]Record
}

// OpenStore opens (creating if absent) the JSONL store at path. A kill
// mid-write can leave a torn final line — Append writes each record as
// one newline-terminated Write, so a torn write is exactly a fragment
// with no trailing newline — which is truncated away so the next append
// starts on a clean line boundary, costing at most the one job that was
// being written (RecoverJSONL is that discipline, shared with the
// cluster coordinator's write-ahead log). A newline-terminated line that
// fails to parse is NOT a torn write: it means the file was edited or
// corrupted, and dropping everything after it would delete completed
// work, so opening fails instead.
func OpenStore(path string) (*Store, error) {
	s := &Store{recs: make(map[string]Record)}
	f, err := RecoverJSONL(path, func(line []byte) error {
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Key == "" {
			return fmt.Errorf("not a store record")
		}
		s.recs[rec.Key] = rec
		return nil
	})
	if err != nil {
		var corrupt *CorruptJSONLError
		if errors.As(err, &corrupt) {
			return nil, fmt.Errorf("campaign: store %s: corrupt record at byte %d (not a torn tail); repair or remove the file",
				path, corrupt.Offset)
		}
		return nil, fmt.Errorf("campaign: open store: %w", err)
	}
	s.f = f
	return s, nil
}

// Len returns the number of completed records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Keys returns every completed job key in sorted order — the store's
// content-addressed index (Cache.Keys serves it to the daemon's cache
// endpoint).
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.recs))
	for k := range s.recs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Get returns the record for a job key, if completed.
func (s *Store) Get(key string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[key]
	return rec, ok
}

// Append persists one completed record. Each record is a single Write
// of one full line, so a kill tears at most the line in flight.
func (s *Store) Append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("campaign: marshal record: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("campaign: append record: %w", err)
	}
	s.recs[rec.Key] = rec
	return nil
}

// Close releases the backing file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
