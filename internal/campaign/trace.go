// The trace: workload axis. A spec's workloads list may name scenario
// trace files ("trace:PATH") alongside paper workloads; each resolves
// at expansion time to a TraceRef carrying the file's content digest,
// which is what job keys hash — so two different traces never share a
// key, renaming a file never invalidates cached results, and a file
// that changes after expansion is detected at load time instead of
// silently simulating the wrong scenario. Workers load the trace from
// the same path, so fleet execution assumes a shared filesystem (the
// deployment CAMPAIGNS.md documents).
package campaign

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/isa"
	"repro/internal/trace"
)

// TracePrefix marks a workloads-axis entry as a scenario trace file.
const TracePrefix = "trace:"

// TraceRef identifies a scenario-trace workload by content: only the
// digest is key material (keyhash-enforced via keyMaterial); name and
// path are labels and locators that may differ across machines without
// changing the job.
//
//mflush:keyed keyMaterial
type TraceRef struct {
	// Name is the axis entry as the spec wrote it ("trace:PATH"); it
	// labels records and aggregation cells but never participates in
	// keys (content does).
	//mflush:keyed-ignore
	Name string `json:"name"`
	// Path locates the trace file. Fleet workers resolve the same path
	// on their own filesystem.
	//mflush:keyed-ignore
	Path string `json:"path"`
	// Digest is the hex SHA-256 of the file's raw bytes. Job keys hash
	// the digest, not the path.
	Digest string `json:"digest"`
}

// keyMaterial is the trace axis's contribution to job keys: the
// content digest under the trace: prefix. Job.workloadID splices it
// into Key/GangKey material.
func (ref *TraceRef) keyMaterial() string {
	return TracePrefix + ref.Digest
}

// ResolveTrace resolves one "trace:PATH" axis entry by digesting the
// file it names.
func ResolveTrace(entry string) (*TraceRef, error) {
	path := strings.TrimPrefix(entry, TracePrefix)
	if path == "" || path == entry {
		return nil, fmt.Errorf("campaign: bad trace axis entry %q (want %sPATH)", entry, TracePrefix)
	}
	digest, err := trace.SumFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: resolving %q: %w", entry, err)
	}
	return &TraceRef{Name: entry, Path: path, Digest: digest}, nil
}

func (ref *TraceRef) validate() error {
	if ref.Path == "" {
		return fmt.Errorf("campaign: trace ref has no path")
	}
	if len(ref.Digest) != sha256.Size*2 {
		return fmt.Errorf("campaign: trace ref %q has malformed digest %q", ref.Path, ref.Digest)
	}
	return nil
}

// scenarioCache memoises loaded, digest-verified thread traces so a
// campaign's many jobs over one trace parse the file once per process.
// Safe to share by digest: the slices are never mutated after load
// (sim replay reads them through SliceSource copies).
var scenarioCache sync.Map // digest -> [][]isa.Inst

// load reads, digest-verifies and parses the referenced trace file.
// Verification and parse happen on one in-memory read of the file, so
// the digest always covers exactly the bytes that were parsed.
func (ref *TraceRef) load() ([][]isa.Inst, error) {
	if v, ok := scenarioCache.Load(ref.Digest); ok {
		return v.([][]isa.Inst), nil
	}
	raw, err := os.ReadFile(ref.Path)
	if err != nil {
		return nil, fmt.Errorf("campaign: loading trace: %w", err)
	}
	sum := sha256.Sum256(raw)
	if got := hex.EncodeToString(sum[:]); got != ref.Digest {
		return nil, fmt.Errorf("campaign: trace %s content %.16s… does not match job digest %.16s…; the file changed since the spec was expanded",
			ref.Path, got, ref.Digest)
	}
	scen, err := trace.ReadScenario(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("campaign: parsing trace %s: %w", ref.Path, err)
	}
	threads, err := scen.ThreadTraces()
	if err != nil {
		return nil, fmt.Errorf("campaign: trace %s: %w", ref.Path, err)
	}
	actual, _ := scenarioCache.LoadOrStore(ref.Digest, threads)
	return actual.([][]isa.Inst), nil
}
