package campaign

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func intervalTestJob(t *testing.T, interval uint64) Job {
	t.Helper()
	w, ok := workload.ByName("2W1")
	if !ok {
		t.Fatal("unknown workload 2W1")
	}
	return Job{Workload: w, Policy: sim.SpecICOUNT, Seed: 1, Cycles: 1000, Warmup: 100, Interval: interval}
}

// TestJobKeyIntervalStability pins two key properties: an interval-less
// job keeps the exact key the pre-interval code produced (so existing
// stores stay addressable), and a sampling interval makes the job a
// distinct content point.
func TestJobKeyIntervalStability(t *testing.T) {
	// Computed by Job.Key before the Interval field existed.
	const frozen = "064b087d1c5326475010a4f286cabea2"
	plain := intervalTestJob(t, 0)
	if got := plain.Key(); got != frozen {
		t.Errorf("interval-less key changed: %s, want %s", got, frozen)
	}
	sampled := intervalTestJob(t, 250)
	if sampled.Key() == plain.Key() {
		t.Error("sampling interval does not change the job key")
	}
	if other := intervalTestJob(t, 500); other.Key() == sampled.Key() {
		t.Error("different intervals share a key")
	}
}

// TestWireJobCarriesInterval proves the interval request survives the
// cluster wire form with its key intact, and that dropping it is
// detectable by the worker-side key check.
func TestWireJobCarriesInterval(t *testing.T) {
	j := intervalTestJob(t, 250)
	wire := j.Wire()
	if wire.Interval != 250 {
		t.Fatalf("wire form lost the interval: %+v", wire)
	}
	back, err := wire.Job()
	if err != nil {
		t.Fatal(err)
	}
	if back.Interval != 250 {
		t.Fatalf("round trip lost the interval: %+v", back)
	}
	if back.Key() != wire.Key {
		t.Errorf("round-tripped key %s != wire key %s", back.Key(), wire.Key)
	}
	wire.Interval = 0 // a worker build that dropped the field
	stripped, err := wire.Job()
	if err != nil {
		t.Fatal(err)
	}
	if stripped.Key() == wire.Key {
		t.Error("dropping the interval is invisible to the key check")
	}
}

// TestSpecIntervalExpansion checks that a spec-level interval reaches
// every expanded job and that jobs' Options request the sampling.
func TestSpecIntervalExpansion(t *testing.T) {
	spec := Spec{
		Workloads: []string{"2W1", "2W3"},
		Policies:  []string{"ICOUNT"},
		Cycles:    1000, Interval: 200,
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("expanded to %d jobs, want 2", len(jobs))
	}
	for _, j := range jobs {
		if j.Interval != 200 {
			t.Errorf("%s: interval %d, want 200", j, j.Interval)
		}
		if j.Options().Interval != 200 {
			t.Errorf("%s: options dropped the interval", j)
		}
	}
}

// TestReadSpecInterval checks the JSON spelling of the interval knob.
func TestReadSpecInterval(t *testing.T) {
	spec, err := ReadSpec(strings.NewReader(
		`{"workloads":["2W1"],"policies":["ICOUNT"],"cycles":1000,"interval":125}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Interval != 125 {
		t.Fatalf("interval = %d, want 125", spec.Interval)
	}
}

// TestRecordCarriesIntervalSamples runs a sampled job for real and
// checks the record's summary holds the series — the form in which
// samples persist in stores and travel back from cluster workers.
func TestRecordCarriesIntervalSamples(t *testing.T) {
	j := intervalTestJob(t, 250)
	res, err := sim.Run(j.Options())
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecord(j, res)
	if got := len(rec.Summary.IntervalSamples); got != 4 {
		t.Fatalf("record carries %d interval samples, want 4", got)
	}
	for i, p := range rec.Summary.IntervalSamples {
		if want := uint64(i+1) * 250; p.MeasuredCycles != want {
			t.Errorf("sample %d at measured cycle %d, want %d", i, p.MeasuredCycles, want)
		}
	}
}
