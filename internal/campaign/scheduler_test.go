package campaign

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// fakeResult builds a minimal well-formed Result (Summary needs a
// non-nil latency histogram) so scheduler tests avoid the simulator.
func fakeResult(o sim.Options) *sim.Result {
	return &sim.Result{Workload: o.Workload.Name, Policy: o.Policy.String(),
		Cycles: o.Cycles, IPC: float64(o.Seed), HitLatency: stats.NewHistogram(8)}
}

// tinyOptions builds a small real-simulation option set.
func tinyOptions(t *testing.T, name string, p sim.PolicySpec) sim.Options {
	t.Helper()
	w, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no workload %s", name)
	}
	return sim.Options{Workload: w, Policy: p, Warmup: 4000, Cycles: 4000, Seed: 1}
}

func TestRunAllOrderAndParallelism(t *testing.T) {
	opts := []sim.Options{
		tinyOptions(t, "2W1", sim.SpecICOUNT),
		tinyOptions(t, "4W1", sim.SpecICOUNT),
		tinyOptions(t, "2W1", sim.SpecMFLUSH),
	}
	res, err := RunAll(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("result count = %d", len(res))
	}
	if res[0].Workload != "2W1" || res[1].Workload != "4W1" || res[2].Policy != "MFLUSH" {
		t.Fatal("results out of order")
	}
}

func TestRunAllPropagatesErrors(t *testing.T) {
	bad := sim.Options{Workload: workload.Workload{Name: "bad", Letters: "!"},
		Policy: sim.SpecICOUNT, Warmup: 100, Cycles: 100}
	if _, err := RunAll(context.Background(), []sim.Options{bad}); err == nil {
		t.Fatal("error not propagated")
	}
}

func TestRunAllCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunAll(ctx, []sim.Options{tinyOptions(t, "2W1", sim.SpecICOUNT)}); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

func TestSchedulerOrderProgressAndInjection(t *testing.T) {
	spec := Spec{Workloads: []string{"2W1", "2W2"}, Policies: []string{"ICOUNT"},
		Seeds: []uint64{1, 2}, Cycles: 1000}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	var calls int64
	var progress []Progress
	sched := &Scheduler{
		Workers: 2,
		Runner: func(o sim.Options) (*sim.Result, error) {
			atomic.AddInt64(&calls, 1)
			return fakeResult(o), nil
		},
		OnProgress: func(p Progress) { progress = append(progress, p) },
	}
	recs, err := sched.Run(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 || len(recs) != 4 {
		t.Fatalf("calls = %d, records = %d", calls, len(recs))
	}
	// Records come back in job order regardless of completion order.
	for i, j := range jobs {
		if recs[i].Workload != j.Workload.Name || recs[i].Seed != j.Seed {
			t.Fatalf("record %d = %+v, want job %v", i, recs[i], j)
		}
		if recs[i].Key != j.Key() {
			t.Fatalf("record %d key mismatch", i)
		}
	}
	if len(progress) != 4 || progress[3].Done != 4 || progress[3].Total != 4 {
		t.Fatalf("progress = %+v", progress)
	}
}

// TestResumeRelabelsRenamedTweak: job keys hash tweak content, so a
// spec rename reuses stored results — but the cached records must adopt
// the current label or aggregation would split one cell in two.
func TestResumeRelabelsRenamedTweak(t *testing.T) {
	mkJobs := func(name string, seeds []uint64) []Job {
		jobs, err := Spec{Workloads: []string{"2W1"}, Policies: []string{"ICOUNT"},
			Seeds: seeds, Cycles: 1000,
			Tweaks: []Tweak{{Name: name, MSHREntries: 4}}}.Jobs()
		if err != nil {
			t.Fatal(err)
		}
		return jobs
	}
	path := filepath.Join(t.TempDir(), "results.jsonl")
	store, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	fake := &Scheduler{Runner: func(o sim.Options) (*sim.Result, error) {
		return fakeResult(o), nil
	}}
	if _, err := fake.Run(context.Background(), mkJobs("old-name", []uint64{1, 2}), store); err != nil {
		t.Fatal(err)
	}
	store.Close()

	store, err = OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	// Renamed tweak, one extra seed: 2 cached jobs + 1 fresh.
	recs, err := fake.Run(context.Background(), mkJobs("new-name", []uint64{1, 2, 3}), store)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if r.Tweak != "new-name" {
			t.Errorf("record %d tweak = %q, want the renamed label", i, r.Tweak)
		}
	}
	cells := Aggregate(recs)
	if len(cells) != 1 || cells[0].Seeds != 3 || cells[0].Tweak != "new-name" {
		t.Fatalf("rename split the cell: %+v", cells)
	}
}

func TestSchedulerReportsJobError(t *testing.T) {
	jobs, _ := Spec{Workloads: []string{"2W1"}, Policies: []string{"ICOUNT"},
		Seeds: []uint64{1, 2}, Cycles: 100}.Jobs()
	sched := &Scheduler{Runner: func(o sim.Options) (*sim.Result, error) {
		if o.Seed == 2 {
			return nil, fmt.Errorf("boom")
		}
		return fakeResult(o), nil
	}}
	_, err := sched.Run(context.Background(), jobs, nil)
	if err == nil || !strings.Contains(err.Error(), "seed=2") ||
		!strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}
