package campaign

import (
	"bytes"
	"fmt"
	"os"
)

// The crash-consistency discipline shared by every JSONL file this
// repository persists (the result Store here, the cluster coordinator's
// write-ahead log in internal/cluster): records are appended as single
// newline-terminated Writes, so a kill mid-write tears exactly one
// unterminated fragment off the end of the file and nothing else.
// RecoverJSONL is the matching reader: it repairs that one legal kind of
// damage and refuses everything else.

// CorruptJSONLError reports a newline-terminated line that failed to
// parse during RecoverJSONL. A terminated line is never a torn write —
// appends terminate each record in the same Write that starts it — so
// the file was edited or corrupted, and truncating from the bad line
// would silently drop every valid record after it. Callers decide how
// to present that (the Store names the file and suggests repair).
type CorruptJSONLError struct {
	// Path is the file holding the bad line.
	Path string
	// Offset is the byte position of the first corrupt line.
	Offset int64
	// Err is the parse failure from the caller's line callback.
	Err error
}

// Error renders the offset and underlying parse failure.
func (e *CorruptJSONLError) Error() string {
	return fmt.Sprintf("%s: corrupt record at byte %d (not a torn tail): %v", e.Path, e.Offset, e.Err)
}

// Unwrap exposes the parse failure for errors.Is/As.
func (e *CorruptJSONLError) Unwrap() error { return e.Err }

// RecoverJSONL opens (creating if absent) the append-only JSONL file at
// path, calls line for every complete newline-terminated line in order,
// truncates away a final unterminated fragment — the torn tail a kill
// mid-append leaves, costing at most the one record that was being
// written — and returns the file reopened in append mode, positioned on
// a clean line boundary. A terminated line that line rejects is real
// corruption, not a torn write: RecoverJSONL fails with a
// *CorruptJSONLError instead of discarding the valid records after it.
func RecoverJSONL(path string, line func(data []byte) error) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	valid := 0 // byte length of the valid line-aligned prefix
	for len(data) > valid {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			break // torn final write: drop the unterminated fragment
		}
		if err := line(data[valid : valid+nl]); err != nil {
			f.Close()
			return nil, &CorruptJSONLError{Path: path, Offset: int64(valid), Err: err}
		}
		valid += nl + 1
	}
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, fmt.Errorf("truncate torn tail of %s: %w", path, err)
	}
	f.Close()
	// Reopen in append mode for writing: the kernel serialises O_APPEND
	// writes at the file end, so even two processes appending to the same
	// file concurrently (unsupported, but it happens) interleave whole
	// lines — wasted duplicate work, never byte-level corruption.
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}
