package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/report"
	"repro/internal/stats"
)

// Dist summarises one metric across the seeds of a cell.
type Dist struct {
	// Mean is the arithmetic mean across the cell's seeds.
	Mean float64 `json:"mean"`
	// Min is the smallest per-seed value.
	Min float64 `json:"min"`
	// Max is the largest per-seed value.
	Max float64 `json:"max"`
	// CI95 is the half-width of the 95% confidence interval of the mean
	// (Student-t); zero when the cell has fewer than two seeds.
	CI95 float64 `json:"ci95"`
}

func newDist(xs []float64) Dist {
	d := Dist{Mean: stats.Mean(xs), CI95: stats.CI95(xs)}
	for i, x := range xs {
		if i == 0 || x < d.Min {
			d.Min = x
		}
		if i == 0 || x > d.Max {
			d.Max = x
		}
	}
	return d
}

// Cell is one (workload, policy, tweak) point of a campaign with its
// metrics aggregated across seeds.
type Cell struct {
	// Workload names the benchmark mix the cell covers.
	Workload string `json:"workload"`
	// Policy names the IFetch policy the cell covers.
	Policy string `json:"policy"`
	// Tweak labels the cell's machine point.
	Tweak string `json:"tweak"`
	// Seeds is how many per-seed records the cell folds.
	Seeds int `json:"seeds"`
	// IPC is system throughput, the paper's headline metric.
	IPC Dist `json:"ipc"`
	// Wasted is the Figure 11 wasted-energy metric.
	Wasted Dist `json:"wasted_energy"`
	// Flushes counts FLUSH events across the chip.
	Flushes Dist `json:"flushes"`
}

// Aggregate groups records into (workload, policy, tweak) cells in
// first-appearance order — which is job order when the records come
// from Scheduler.Run, so aggregate output is identical whether the
// campaign ran straight through or resumed.
func Aggregate(recs []Record) []Cell {
	type group struct {
		cell                 Cell
		ipc, wasted, flushes []float64
	}
	var order []string
	groups := make(map[string]*group)
	for _, r := range recs {
		k := r.Workload + "\x00" + r.Policy + "\x00" + r.Tweak
		g := groups[k]
		if g == nil {
			g = &group{cell: Cell{Workload: r.Workload, Policy: r.Policy, Tweak: r.Tweak}}
			groups[k] = g
			order = append(order, k)
		}
		g.ipc = append(g.ipc, r.Summary.IPC)
		g.wasted = append(g.wasted, r.Summary.WastedEnergy)
		g.flushes = append(g.flushes, float64(r.Summary.Flushes))
	}
	cells := make([]Cell, 0, len(order))
	for _, k := range order {
		g := groups[k]
		c := g.cell
		c.Seeds = len(g.ipc)
		c.IPC = newDist(g.ipc)
		c.Wasted = newDist(g.wasted)
		c.Flushes = newDist(g.flushes)
		cells = append(cells, c)
	}
	return cells
}

// Table renders cells as an aligned text table (three-decimal floats).
func Table(cells []Cell) *report.Table {
	t := report.NewTable("workload", "policy", "tweak", "seeds",
		"ipc", "ci95", "min", "max", "wasted", "flushes")
	for _, c := range cells {
		t.Row(c.Workload, c.Policy, c.Tweak, c.Seeds,
			c.IPC.Mean, c.IPC.CI95, c.IPC.Min, c.IPC.Max,
			c.Wasted.Mean, c.Flushes.Mean)
	}
	return t
}

// WriteCSV exports cells at full float precision, one row per cell.
func WriteCSV(w io.Writer, cells []Cell) error {
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	t := report.NewTable("workload", "policy", "tweak", "seeds",
		"ipc_mean", "ipc_ci95", "ipc_min", "ipc_max",
		"wasted_mean", "wasted_ci95", "flushes_mean", "flushes_ci95")
	for _, c := range cells {
		t.RowF(c.Workload, c.Policy, c.Tweak, fmt.Sprint(c.Seeds),
			g(c.IPC.Mean), g(c.IPC.CI95), g(c.IPC.Min), g(c.IPC.Max),
			g(c.Wasted.Mean), g(c.Wasted.CI95), g(c.Flushes.Mean), g(c.Flushes.CI95))
	}
	return t.WriteCSV(w)
}

// WriteJSON exports cells as indented JSON.
func WriteJSON(w io.Writer, cells []Cell) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cells)
}
