package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/report"
	"repro/internal/stats"
)

// cellKey is the composite aggregation identity; its lexicographic
// order is the canonical cell order (workload, then policy, then tweak).
func cellKey(r Record) string {
	return r.Workload + "\x00" + r.Policy + "\x00" + r.Tweak
}

// Dist summarises one metric across the seeds of a cell.
type Dist struct {
	// Mean is the arithmetic mean across the cell's seeds.
	Mean float64 `json:"mean"`
	// Min is the smallest per-seed value.
	Min float64 `json:"min"`
	// Max is the largest per-seed value.
	Max float64 `json:"max"`
	// CI95 is the half-width of the 95% confidence interval of the mean
	// (Student-t); zero when the cell has fewer than two seeds.
	CI95 float64 `json:"ci95"`
}

func newDist(xs []float64) Dist {
	d := Dist{Mean: stats.Mean(xs), CI95: stats.CI95(xs)}
	for i, x := range xs {
		if i == 0 || x < d.Min {
			d.Min = x
		}
		if i == 0 || x > d.Max {
			d.Max = x
		}
	}
	return d
}

// Cell is one (workload, policy, tweak) point of a campaign with its
// metrics aggregated across seeds.
type Cell struct {
	// Workload names the benchmark mix the cell covers.
	Workload string `json:"workload"`
	// Policy names the IFetch policy the cell covers.
	Policy string `json:"policy"`
	// Tweak labels the cell's machine point.
	Tweak string `json:"tweak"`
	// Seeds is how many per-seed records the cell folds.
	Seeds int `json:"seeds"`
	// IPC is system throughput, the paper's headline metric.
	IPC Dist `json:"ipc"`
	// Wasted is the Figure 11 wasted-energy metric.
	Wasted Dist `json:"wasted_energy"`
	// Flushes counts FLUSH events across the chip.
	Flushes Dist `json:"flushes"`
}

// Aggregate groups records into (workload, policy, tweak) cells in
// canonical order: cells sorted by workload, then policy, then tweak
// label, and each cell's seeds folded in ascending seed order. The
// canonicalisation makes the output a pure function of the record *set*
// — two specs listing the same workloads, policies, seeds and tweaks in
// any order aggregate byte-identically (floating-point folds included),
// which is what lets resumed, re-ordered and fleet-distributed
// campaigns all reproduce one another's bytes exactly.
func Aggregate(recs []Record) []Cell {
	recs = append([]Record(nil), recs...) // canonical sort, caller's slice untouched
	sort.SliceStable(recs, func(i, j int) bool {
		if a, b := cellKey(recs[i]), cellKey(recs[j]); a != b {
			return a < b
		}
		return recs[i].Seed < recs[j].Seed
	})
	// Equal-key records are now contiguous, so one linear scan folds
	// each run of records into its cell.
	var cells []Cell
	var ipc, wasted, flushes []float64
	flush := func(r Record) {
		cells = append(cells, Cell{
			Workload: r.Workload, Policy: r.Policy, Tweak: r.Tweak,
			Seeds: len(ipc),
			IPC:   newDist(ipc), Wasted: newDist(wasted), Flushes: newDist(flushes),
		})
		ipc, wasted, flushes = ipc[:0], wasted[:0], flushes[:0]
	}
	for i, r := range recs {
		if i > 0 && cellKey(recs[i-1]) != cellKey(r) {
			flush(recs[i-1])
		}
		ipc = append(ipc, r.Summary.IPC)
		wasted = append(wasted, r.Summary.WastedEnergy)
		flushes = append(flushes, float64(r.Summary.Flushes))
	}
	if len(recs) > 0 {
		flush(recs[len(recs)-1])
	}
	return cells
}

// Table renders cells as an aligned text table (three-decimal floats).
func Table(cells []Cell) *report.Table {
	t := report.NewTable("workload", "policy", "tweak", "seeds",
		"ipc", "ci95", "min", "max", "wasted", "flushes")
	for _, c := range cells {
		t.Row(c.Workload, c.Policy, c.Tweak, c.Seeds,
			c.IPC.Mean, c.IPC.CI95, c.IPC.Min, c.IPC.Max,
			c.Wasted.Mean, c.Flushes.Mean)
	}
	return t
}

// WriteCSV exports cells at full float precision, one row per cell.
func WriteCSV(w io.Writer, cells []Cell) error {
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	t := report.NewTable("workload", "policy", "tweak", "seeds",
		"ipc_mean", "ipc_ci95", "ipc_min", "ipc_max",
		"wasted_mean", "wasted_ci95", "flushes_mean", "flushes_ci95")
	for _, c := range cells {
		t.RowF(c.Workload, c.Policy, c.Tweak, fmt.Sprint(c.Seeds),
			g(c.IPC.Mean), g(c.IPC.CI95), g(c.IPC.Min), g(c.IPC.Max),
			g(c.Wasted.Mean), g(c.Wasted.CI95), g(c.Flushes.Mean), g(c.Flushes.CI95))
	}
	return t.WriteCSV(w)
}

// WriteJSON exports cells as indented JSON.
func WriteJSON(w io.Writer, cells []Cell) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cells)
}
