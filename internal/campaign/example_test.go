package campaign_test

import (
	"context"
	"fmt"

	"repro/internal/campaign"
)

// ExampleSpec_Jobs expands a declarative sweep into its deterministic
// cartesian product: workload-major, then policy, then tweak, then
// seed. Each job carries a content-hash key that identifies its result
// forever.
func ExampleSpec_Jobs() {
	jobs, err := campaign.Spec{
		Workloads: []string{"2W1", "2W3"},
		Policies:  []string{"ICOUNT", "MFLUSH"},
		Seeds:     []uint64{1, 2},
		Cycles:    20000,
		Warmup:    5000,
	}.Jobs()
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d jobs\n", len(jobs))
	for _, j := range jobs[:3] {
		fmt.Println(j)
	}
	// Output:
	// 8 jobs
	// 2W1/ICOUNT seed=1
	// 2W1/ICOUNT seed=2
	// 2W1/MFLUSH seed=1
}

// ExampleScheduler_Run executes an expanded campaign on the bounded
// worker pool and aggregates the per-seed records into cells. Results
// are in job order regardless of worker count, and the simulator is
// deterministic, so this output is stable. A non-nil Store would
// additionally persist every record for resume.
func ExampleScheduler_Run() {
	jobs, err := campaign.Spec{
		Workloads: []string{"2W1"},
		Policies:  []string{"ICOUNT", "MFLUSH"},
		Seeds:     []uint64{1, 2},
		Cycles:    20000,
		Warmup:    5000,
	}.Jobs()
	if err != nil {
		panic(err)
	}
	sched := &campaign.Scheduler{Workers: 2}
	records, err := sched.Run(context.Background(), jobs, nil)
	if err != nil {
		panic(err)
	}
	for _, cell := range campaign.Aggregate(records) {
		fmt.Printf("%s/%s: mean IPC %.3f over %d seeds\n",
			cell.Workload, cell.Policy, cell.IPC.Mean, cell.Seeds)
	}
	// Output:
	// 2W1/ICOUNT: mean IPC 0.435 over 2 seeds
	// 2W1/MFLUSH: mean IPC 0.441 over 2 seeds
}
