package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

func testRecord(key, w, p string, seed uint64, ipc float64) Record {
	return Record{Key: key, Workload: w, Policy: p, Tweak: "baseline", Seed: seed,
		Summary: sim.Summary{Workload: w, Policy: p, IPC: ipc}}
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord("k1", "2W1", "ICOUNT", 1, 1.5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord("k2", "2W1", "MFLUSH", 1, 1.8)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Close()

	s, err = OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 2 {
		t.Fatalf("reopened Len = %d", s.Len())
	}
	rec, ok := s.Get("k2")
	if !ok || rec.Summary.IPC != 1.8 || rec.Policy != "MFLUSH" {
		t.Fatalf("Get(k2) = %+v, %v", rec, ok)
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("phantom record")
	}
}

// TestStoreTruncatesTornTail models a campaign killed mid-write: the
// final line is incomplete and must be dropped, and a subsequent append
// must land on a clean line boundary.
func TestStoreTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord("k1", "2W1", "ICOUNT", 1, 1.5)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"k2","workload":"2W`) // torn mid-record
	f.Close()

	s, err = OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("torn store Len = %d, want 1", s.Len())
	}
	if _, ok := s.Get("k2"); ok {
		t.Fatal("torn record resurrected")
	}
	if err := s.Append(testRecord("k3", "2W1", "MFLUSH", 2, 2.0)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s, err = OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 2 {
		t.Fatalf("post-repair Len = %d, want 2", s.Len())
	}
	if _, ok := s.Get("k3"); !ok {
		t.Fatal("append after repair lost")
	}
}

// TestStoreRepairsTailTornInsideEscape: the nastiest torn-write shapes
// end *inside* a JSON escape sequence of the final record — after the
// backslash, mid \u hex digits, or between the surrogate halves of an
// escaped code point. A naive repair that tried to parse or "complete"
// the fragment would misread every one of them; the store's repair must
// not care, because the only invariant it relies on is the missing
// trailing newline. Also covered: a fragment that happens to be
// complete, parseable JSON but lacks the newline — still a torn write
// (the Write was cut before its last byte), still dropped.
func TestStoreRepairsTailTornInsideEscape(t *testing.T) {
	for name, fragment := range map[string]string{
		"after-backslash":       `{"key":"k9","workload":"2W1","policy":"ICOUNT","tweak":"odd \`,
		"mid-unicode-escape":    `{"key":"k9","workload":"2W1","policy":"ICOUNT","tweak":"odd \u00`,
		"between-surrogates":    `{"key":"k9","workload":"2W1","policy":"ICOUNT","tweak":"odd \ud83d\ud`,
		"escaped-quote":         `{"key":"k9","workload":"2W1","policy":"ICOUNT","tweak":"odd \"`,
		"parseable-no-newline":  `{"key":"k9","workload":"2W1","policy":"ICOUNT","tweak":"t","seed":1,"summary":{}}`,
		"escape-then-more-text": `{"key":"k9","workload":"2W1","tweak":"a\\bA still torn`,
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "results.jsonl")
			s, err := OpenStore(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Append(testRecord("k1", "2W1", "ICOUNT", 1, 1.5)); err != nil {
				t.Fatal(err)
			}
			if err := s.Append(testRecord("k2", "2W1", "MFLUSH", 1, 1.8)); err != nil {
				t.Fatal(err)
			}
			s.Close()
			clean, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			f.WriteString(fragment)
			f.Close()

			s, err = OpenStore(path)
			if err != nil {
				t.Fatalf("repairing %s tail: %v", name, err)
			}
			if s.Len() != 2 {
				t.Fatalf("survivors = %d, want 2", s.Len())
			}
			if _, ok := s.Get("k9"); ok {
				t.Fatal("torn record resurrected")
			}
			// The repair truncated to exactly the valid prefix, and the
			// next append lands on a clean boundary.
			if err := s.Append(testRecord("k3", "2W3", "MFLUSH", 2, 2.0)); err != nil {
				t.Fatal(err)
			}
			s.Close()
			after, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.HasPrefix(after, clean) {
				t.Fatalf("repair rewrote the valid prefix:\n%q\nvs\n%q", after, clean)
			}
			s, err = OpenStore(path)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if s.Len() != 3 {
				t.Fatalf("post-repair Len = %d, want 3", s.Len())
			}
		})
	}
}

// TestStoreRejectsMidFileCorruption: a complete (newline-terminated)
// line that fails to parse is not a torn tail — truncating there would
// delete every valid record after it, so opening must fail instead.
func TestStoreRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range []string{"k1", "k2", "k3"} {
		if err := s.Append(testRecord(key, "2W1", "ICOUNT", uint64(i), 1.0)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[5] ^= 0xFF // flip a byte inside the first record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenStore(path)
	if err == nil {
		t.Fatal("mid-file corruption silently accepted")
	}
	// The refusal must tell the user where the damage is and that this
	// is not the (auto-repaired) torn-tail case.
	for _, want := range []string{"corrupt record at byte 0", "not a torn tail", "repair or remove"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("corruption error %q does not mention %q", err, want)
		}
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(data) {
		t.Fatalf("failed open modified the file: %d -> %d bytes", len(data), len(after))
	}
}

// TestStoreRejectsCorruptionBetweenValidLines: damage in the middle of
// the file must fail the open even though every line after it is valid —
// truncating at the damage would silently drop that completed work.
func TestStoreRejectsCorruptionBetweenValidLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range []string{"k1", "k2", "k3"} {
		if err := s.Append(testRecord(key, "2W1", "ICOUNT", uint64(i), 1.0)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("store layout: %d lines", len(lines))
	}
	// Replace the middle record with a newline-terminated non-JSON line.
	lines[1] = []byte("!! damaged by an editor !!\n")
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path); err == nil {
		t.Fatal("middle-of-file damage with a valid tail silently accepted")
	}
}

// TestStoreRejectsKeylessRecord: a syntactically valid JSON line without
// a job key can never be matched to a job; treating it as data would
// hide the damage, so opening refuses it like any other corruption.
func TestStoreRejectsKeylessRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord("k1", "2W1", "ICOUNT", 1, 1.5)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"workload":"2W1","policy":"ICOUNT"}` + "\n")
	f.Close()
	if _, err := OpenStore(path); err == nil {
		t.Fatal("keyless record silently accepted")
	}
}
