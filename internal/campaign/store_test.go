package campaign

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

func testRecord(key, w, p string, seed uint64, ipc float64) Record {
	return Record{Key: key, Workload: w, Policy: p, Tweak: "baseline", Seed: seed,
		Summary: sim.Summary{Workload: w, Policy: p, IPC: ipc}}
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord("k1", "2W1", "ICOUNT", 1, 1.5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord("k2", "2W1", "MFLUSH", 1, 1.8)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Close()

	s, err = OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 2 {
		t.Fatalf("reopened Len = %d", s.Len())
	}
	rec, ok := s.Get("k2")
	if !ok || rec.Summary.IPC != 1.8 || rec.Policy != "MFLUSH" {
		t.Fatalf("Get(k2) = %+v, %v", rec, ok)
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("phantom record")
	}
}

// TestStoreTruncatesTornTail models a campaign killed mid-write: the
// final line is incomplete and must be dropped, and a subsequent append
// must land on a clean line boundary.
func TestStoreTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord("k1", "2W1", "ICOUNT", 1, 1.5)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"k2","workload":"2W`) // torn mid-record
	f.Close()

	s, err = OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("torn store Len = %d, want 1", s.Len())
	}
	if _, ok := s.Get("k2"); ok {
		t.Fatal("torn record resurrected")
	}
	if err := s.Append(testRecord("k3", "2W1", "MFLUSH", 2, 2.0)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s, err = OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 2 {
		t.Fatalf("post-repair Len = %d, want 2", s.Len())
	}
	if _, ok := s.Get("k3"); !ok {
		t.Fatal("append after repair lost")
	}
}

// TestStoreRejectsMidFileCorruption: a complete (newline-terminated)
// line that fails to parse is not a torn tail — truncating there would
// delete every valid record after it, so opening must fail instead.
func TestStoreRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range []string{"k1", "k2", "k3"} {
		if err := s.Append(testRecord(key, "2W1", "ICOUNT", uint64(i), 1.0)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[5] ^= 0xFF // flip a byte inside the first record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path); err == nil {
		t.Fatal("mid-file corruption silently accepted")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(data) {
		t.Fatalf("failed open modified the file: %d -> %d bytes", len(data), len(after))
	}
}
