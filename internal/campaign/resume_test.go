package campaign

import (
	"bytes"
	"context"
	"path/filepath"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

// resumeSpec is a small real-simulator campaign: 2 policies x 3 seeds.
func resumeSpec() Spec {
	return Spec{
		Workloads: []string{"2W1"},
		Policies:  []string{"ICOUNT", "MFLUSH"},
		Seeds:     []uint64{1, 2, 3},
		Cycles:    3000, Warmup: 3000,
	}
}

// countingRunner wraps sim.Run, counting invocations.
func countingRunner(n *int64) func(sim.Options) (*sim.Result, error) {
	return func(o sim.Options) (*sim.Result, error) {
		atomic.AddInt64(n, 1)
		return sim.Run(o)
	}
}

func exportAll(t *testing.T, recs []Record) (csv, js []byte) {
	t.Helper()
	cells := Aggregate(recs)
	var c, j bytes.Buffer
	if err := WriteCSV(&c, cells); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&j, cells); err != nil {
		t.Fatal(err)
	}
	return c.Bytes(), j.Bytes()
}

// TestResumeSkipsCompletedJobs is the acceptance test for the resume
// semantics: a campaign killed mid-run and re-invoked against the same
// store must run only the jobs that had not completed, and its final
// aggregate CSV/JSON must be byte-identical to an uninterrupted run.
func TestResumeSkipsCompletedJobs(t *testing.T) {
	jobs, err := resumeSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// Reference: an uninterrupted campaign.
	fullStore, err := OpenStore(filepath.Join(dir, "full.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var fullCalls int64
	fullRecs, err := (&Scheduler{Runner: countingRunner(&fullCalls)}).
		Run(context.Background(), jobs, fullStore)
	if err != nil {
		t.Fatal(err)
	}
	fullStore.Close()
	if fullCalls != int64(len(jobs)) {
		t.Fatalf("uninterrupted run executed %d of %d jobs", fullCalls, len(jobs))
	}
	wantCSV, wantJSON := exportAll(t, fullRecs)

	// Interrupted: cancel the context once half the jobs completed.
	// In-flight jobs still finish, so the store may hold a few more.
	store, err := OpenStore(filepath.Join(dir, "interrupted.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done int64
	interrupted := &Scheduler{
		Workers: 2,
		Runner:  countingRunner(new(int64)),
		OnProgress: func(p Progress) {
			if atomic.AddInt64(&done, 1) == int64(len(jobs)/2) {
				cancel()
			}
		},
	}
	if _, err := interrupted.Run(ctx, jobs, store); err == nil {
		t.Fatal("interrupted campaign reported success")
	}
	store.Close()

	// Resume: reopen the store; only the unfinished jobs may run.
	store, err = OpenStore(filepath.Join(dir, "interrupted.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	completed := store.Len()
	if completed == 0 || completed == len(jobs) {
		t.Fatalf("interruption completed %d of %d jobs; test needs a partial store",
			completed, len(jobs))
	}
	var resumeCalls int64
	cached := 0
	resumed := &Scheduler{
		Runner: countingRunner(&resumeCalls),
		OnProgress: func(p Progress) {
			if p.Cached {
				cached++
			}
		},
	}
	recs, err := resumed.Run(context.Background(), jobs, store)
	if err != nil {
		t.Fatal(err)
	}
	if int(resumeCalls) != len(jobs)-completed {
		t.Fatalf("resume executed %d jobs, want %d (store had %d of %d)",
			resumeCalls, len(jobs)-completed, completed, len(jobs))
	}
	if cached != completed {
		t.Fatalf("resume reported %d cached jobs, store had %d", cached, completed)
	}

	gotCSV, gotJSON := exportAll(t, recs)
	if !bytes.Equal(gotCSV, wantCSV) {
		t.Errorf("resumed CSV differs from uninterrupted run:\n%s\nvs\n%s", gotCSV, wantCSV)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("resumed JSON differs from uninterrupted run")
	}
}

// TestResumeNoWorkLeft re-runs a finished campaign: everything cached,
// zero simulator invocations, identical output.
func TestResumeNoWorkLeft(t *testing.T) {
	jobs, err := resumeSpec().Jobs()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "results.jsonl")
	store, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	first, err := (&Scheduler{}).Run(context.Background(), jobs, store)
	if err != nil {
		t.Fatal(err)
	}
	store.Close()

	store, err = OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var calls int64
	again, err := (&Scheduler{Runner: countingRunner(&calls)}).
		Run(context.Background(), jobs, store)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("fully cached campaign executed %d jobs", calls)
	}
	aCSV, aJSON := exportAll(t, first)
	bCSV, bJSON := exportAll(t, again)
	if !bytes.Equal(aCSV, bCSV) || !bytes.Equal(aJSON, bJSON) {
		t.Fatal("cached output differs from executed output")
	}
}
