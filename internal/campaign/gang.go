package campaign

import "fmt"

// Gang batching groups campaign jobs into lockstep sim.GangSession
// batches. A batch must share one lockstep window and one machine point
// — workload, cycle budget, warm-up, sampling interval and tweak content
// — while members differ freely in policy and seed: exactly the shape a
// spec's cartesian expansion produces in long runs (Jobs orders
// workload-major, then policy, then tweak, then seed). Batching changes
// only how jobs execute, never what they are: job keys, record contents
// and store/wire forms are untouched, which the grouping fuzz target and
// the cache interplay tests enforce.

// GangKey names the lockstep batch a job is compatible with. Jobs with
// equal gang keys may run as members of one GangSession; the key spans
// everything members must share (window, workload, machine point) and
// deliberately omits what they may vary (policy, seed). Trace jobs key
// on their content digest (Job.workloadID), so they batch only with
// replays of the byte-identical scenario — never with synthetic jobs,
// whose stream-memoisation keys a trace replay has no part in.
func (j Job) GangKey() string {
	return fmt.Sprintf("w=%s cycles=%d warmup=%d interval=%d %s",
		j.workloadID(), j.Cycles, j.Warmup, j.Interval, j.Tweak.canon())
}

// GangGroups partitions the jobs into execution groups of at most width
// members, each group gang-compatible (one GangKey). Groups are greedy
// over the input order: a job joins its key's open batch, a full batch
// is sealed, and leftovers seal at the end in first-opened order — so
// the result is deterministic in the input, every input index appears in
// exactly one group, and jobs are never reordered within a group. A
// width below 2 (no ganging) yields one singleton group per job, in
// input order.
func GangGroups(jobs []Job, width int) [][]int {
	var groups [][]int
	if width < 2 {
		for i := range jobs {
			groups = append(groups, []int{i})
		}
		return groups
	}
	open := make(map[string][]int)
	var keyOrder []string
	for i, j := range jobs {
		k := j.GangKey()
		if _, ok := open[k]; !ok {
			keyOrder = append(keyOrder, k)
		}
		open[k] = append(open[k], i)
		if len(open[k]) == width {
			groups = append(groups, open[k])
			open[k] = nil
		}
	}
	for _, k := range keyOrder {
		if len(open[k]) > 0 {
			groups = append(groups, open[k])
		}
	}
	return groups
}
