package campaign

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestAggregateCells(t *testing.T) {
	recs := []Record{
		testRecord("a1", "2W1", "ICOUNT", 1, 1.0),
		testRecord("a2", "2W1", "ICOUNT", 2, 2.0),
		testRecord("a3", "2W1", "ICOUNT", 3, 3.0),
		testRecord("b1", "2W1", "MFLUSH", 1, 4.0),
	}
	cells := Aggregate(recs)
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	c := cells[0]
	if c.Workload != "2W1" || c.Policy != "ICOUNT" || c.Seeds != 3 {
		t.Fatalf("cell identity: %+v", c)
	}
	if c.IPC.Mean != 2.0 || c.IPC.Min != 1.0 || c.IPC.Max != 3.0 {
		t.Fatalf("IPC dist: %+v", c.IPC)
	}
	// 3 seeds with s=1: CI = 4.303/sqrt(3) ~ 2.484.
	if c.IPC.CI95 < 2.48 || c.IPC.CI95 > 2.49 {
		t.Fatalf("CI95 = %v", c.IPC.CI95)
	}
	if cells[1].Seeds != 1 || cells[1].IPC.CI95 != 0 {
		t.Fatalf("single-seed cell: %+v", cells[1])
	}
}

func TestAggregateSeparatesTweaks(t *testing.T) {
	a := testRecord("a", "2W1", "MFLUSH", 1, 1.0)
	b := testRecord("b", "2W1", "MFLUSH", 1, 2.0)
	b.Tweak = "small-mshr"
	cells := Aggregate([]Record{a, b})
	if len(cells) != 2 || cells[0].Tweak == cells[1].Tweak {
		t.Fatalf("tweaks merged: %+v", cells)
	}
}

func TestExportShapes(t *testing.T) {
	cells := Aggregate([]Record{
		testRecord("a1", "2W1", "ICOUNT", 1, 1.25),
		testRecord("a2", "2W1", "ICOUNT", 2, 1.75),
	})
	var csv bytes.Buffer
	if err := WriteCSV(&csv, cells); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "workload,policy,tweak,seeds,ipc_mean") {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "2W1,ICOUNT,baseline,2,1.5,") {
		t.Fatalf("CSV row = %q", lines[1])
	}

	var js bytes.Buffer
	if err := WriteJSON(&js, cells); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"ipc"`) || !strings.Contains(js.String(), `"ci95"`) {
		t.Fatalf("JSON missing fields:\n%s", js.String())
	}

	tbl := Table(cells).String()
	if !strings.Contains(tbl, "2W1") || !strings.Contains(tbl, "1.500") {
		t.Fatalf("table:\n%s", tbl)
	}
}

// TestMultiSeedSweepReportsCI is the acceptance check: a real >= 3-seed
// sweep produces a mean and a positive confidence interval per cell
// (different seeds synthesise different instruction streams, so IPC
// genuinely varies).
func TestMultiSeedSweepReportsCI(t *testing.T) {
	jobs, err := Spec{
		Workloads: []string{"2W1"},
		Policies:  []string{"ICOUNT"},
		Seeds:     []uint64{1, 2, 3},
		Cycles:    3000, Warmup: 3000,
	}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	recs, err := (&Scheduler{}).Run(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	cells := Aggregate(recs)
	if len(cells) != 1 {
		t.Fatalf("cells = %d", len(cells))
	}
	c := cells[0]
	if c.Seeds != 3 {
		t.Fatalf("seeds = %d", c.Seeds)
	}
	if c.IPC.Mean <= 0 {
		t.Fatalf("mean IPC = %v", c.IPC.Mean)
	}
	if c.IPC.CI95 <= 0 {
		t.Fatalf("CI95 = %v, want positive across distinct seeds", c.IPC.CI95)
	}
	if c.IPC.Min > c.IPC.Mean || c.IPC.Mean > c.IPC.Max {
		t.Fatalf("dist out of order: %+v", c.IPC)
	}
}
