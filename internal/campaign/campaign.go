// Package campaign batches simulations at evaluation scale: a Spec
// declares a cartesian sweep (workloads × policies × seeds × machine
// tweaks) that expands deterministically into keyed Jobs, a Scheduler
// executes them on a bounded worker pool, a JSONL Store persists one
// summary per job so interrupted campaigns resume where they stopped,
// and Aggregate folds the per-seed results into mean/min/max/CI cells
// for export (CSV, JSON, text tables).
//
// The paper's evaluation is exactly such a grid — every figure is a
// sweep over workloads and policies on one machine point — so the
// figure generators in internal/experiments run through this package's
// scheduler too.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Tweak is a named, declarative machine-configuration delta: the knobs
// the evaluation sweeps (MSHR size, L2 capacity, bus transfer delay,
// main-memory latency, per-thread register reservation). A zero field
// leaves the paper's default; the zero Tweak is the baseline machine.
// Declarative fields — unlike sim.Options.Tweak's opaque function — can
// be serialised into spec files and hashed into job keys. keyhash
// holds every field to canon's coverage.
//
//mflush:keyed canon
type Tweak struct {
	// Name labels the machine point in results and aggregation cells;
	// it does not participate in job keys (content does).
	//mflush:keyed-ignore
	Name string `json:"name,omitempty"`
	// MSHREntries overrides the per-core miss status holding register
	// count.
	MSHREntries int `json:"mshr_entries,omitempty"`
	// L2SizeBytes overrides the shared L2 capacity. It must divide into
	// the default 12-way 4-bank geometry (multiples of 3072 bytes);
	// config validation rejects sizes that do not.
	L2SizeBytes int `json:"l2_size_bytes,omitempty"`
	// BusDelay overrides the one-way L1<->L2 bus transfer latency.
	BusDelay int `json:"bus_delay,omitempty"`
	// MainMemoryLatency overrides the L2-miss service latency.
	MainMemoryLatency int `json:"main_memory_latency,omitempty"`
	// RegReservePerThread overrides the per-thread rename-register
	// reservation.
	RegReservePerThread int `json:"reg_reserve_per_thread,omitempty"`
}

// IsZero reports whether the tweak leaves the machine at its defaults.
func (tw Tweak) IsZero() bool {
	return tw.MSHREntries == 0 && tw.L2SizeBytes == 0 && tw.BusDelay == 0 &&
		tw.MainMemoryLatency == 0 && tw.RegReservePerThread == 0
}

// validate rejects negative knob values: apply would silently skip them
// (its guards are > 0), so the job would run the baseline machine while
// its key and label claim a distinct point.
func (tw Tweak) validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"mshr_entries", tw.MSHREntries},
		{"l2_size_bytes", tw.L2SizeBytes},
		{"bus_delay", tw.BusDelay},
		{"main_memory_latency", tw.MainMemoryLatency},
		{"reg_reserve_per_thread", tw.RegReservePerThread},
	} {
		if f.v < 0 {
			return fmt.Errorf("campaign: tweak %q: negative %s %d", tw.Label(), f.name, f.v)
		}
	}
	return nil
}

// Label names the machine point for reports: the tweak's Name, or
// "baseline" for the zero tweak, or a canonical field dump.
func (tw Tweak) Label() string {
	if tw.Name != "" {
		return tw.Name
	}
	if tw.IsZero() {
		return "baseline"
	}
	return tw.canon()
}

// canon renders the content fields (not the name) in a fixed order; job
// keys hash this, so renaming a tweak never invalidates stored results.
func (tw Tweak) canon() string {
	return fmt.Sprintf("mshr=%d l2=%d bus=%d mem=%d reserve=%d",
		tw.MSHREntries, tw.L2SizeBytes, tw.BusDelay, tw.MainMemoryLatency,
		tw.RegReservePerThread)
}

// apply mutates the machine configuration; zero fields are left alone.
func (tw Tweak) apply(c *config.Config) {
	if tw.MSHREntries > 0 {
		c.Core.MSHREntries = tw.MSHREntries
	}
	if tw.L2SizeBytes > 0 {
		c.Mem.L2.SizeBytes = tw.L2SizeBytes
	}
	if tw.BusDelay > 0 {
		c.Mem.BusDelay = tw.BusDelay
	}
	if tw.MainMemoryLatency > 0 {
		c.Mem.MainMemoryLatency = tw.MainMemoryLatency
	}
	if tw.RegReservePerThread > 0 {
		c.Core.RegReservePerThread = tw.RegReservePerThread
	}
}

// Spec declares a campaign: the cartesian product of workloads,
// policies, seeds and machine tweaks, each cell simulated for the same
// cycle budget. Specs are plain JSON so sweeps are written as data, not
// Go (see CAMPAIGNS.md for the format).
type Spec struct {
	// Workloads are paper workload names (2W1 .. 8W5, 8W-bzip2-twolf)
	// and/or scenario trace files ("trace:PATH" — see TracePrefix).
	// Trace entries resolve at expansion time to the file's content
	// digest, which is what their job keys hash.
	Workloads []string `json:"workloads"`
	// Policies are parsed with sim.ParseSpec (ICOUNT, FLUSH-S30, ...).
	Policies []string `json:"policies"`
	// Seeds drive workload synthesis; results aggregate across them.
	// Empty defaults to the single seed 1.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Tweaks are the machine points; empty defaults to the baseline.
	Tweaks []Tweak `json:"tweaks,omitempty"`
	// Cycles and Warmup are per-simulation budgets (sim.Options).
	Cycles uint64 `json:"cycles"`
	// Warmup cycles run first and are excluded from measurement.
	Warmup uint64 `json:"warmup"`
	// Interval, when positive, asks every job to record an interval
	// time series: one sample per Interval measured cycles, carried in
	// each record's summary as interval_samples (and streamed live as
	// mflushd `sample` SSE events while the job simulates locally).
	// Sampling is part of the job's content — it changes the record —
	// so it participates in job keys; interval-less jobs keep their
	// pre-existing keys.
	Interval uint64 `json:"interval,omitempty"`
}

// ReadSpec decodes a JSON spec, rejecting unknown fields so typos in
// hand-written sweep files fail loudly.
func ReadSpec(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("campaign: bad spec: %w", err)
	}
	return s, nil
}

// Jobs expands the spec into its cartesian product, deterministically
// ordered workload-major, then policy, then tweak, then seed. Unknown
// workload or policy names fail the whole expansion.
func (s Spec) Jobs() ([]Job, error) {
	if s.Cycles == 0 {
		return nil, fmt.Errorf("campaign: spec needs a positive cycle budget")
	}
	if len(s.Workloads) == 0 || len(s.Policies) == 0 {
		return nil, fmt.Errorf("campaign: spec needs at least one workload and one policy")
	}
	seeds := s.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	tweaks := s.Tweaks
	if len(tweaks) == 0 {
		tweaks = []Tweak{{}}
	}
	for _, tw := range tweaks {
		if err := tw.validate(); err != nil {
			return nil, err
		}
	}
	// Duplicate axis entries expand into jobs with identical keys: the
	// duplicates would re-run (or cache-hit) the same simulation and
	// double-count its value in every per-cell statistic, silently
	// deflating the confidence intervals. Fail loudly instead, comparing
	// canonical forms ("icount" duplicates "ICOUNT").
	dup := make(map[string]bool)
	type wlEntry struct {
		w  workload.Workload
		tr *TraceRef
	}
	workloads := make([]wlEntry, len(s.Workloads))
	for i, name := range s.Workloads {
		if strings.HasPrefix(name, TracePrefix) {
			ref, err := ResolveTrace(name)
			if err != nil {
				return nil, err
			}
			// Two paths with identical bytes are one workload: their
			// jobs would share keys (content-addressed), so admitting
			// both would double-count like any duplicate axis entry.
			id := TracePrefix + ref.Digest
			if dup[id] {
				return nil, fmt.Errorf("campaign: trace %q duplicates another trace entry's content", name)
			}
			dup[id] = true
			workloads[i] = wlEntry{tr: ref}
			continue
		}
		w, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("campaign: unknown workload %q", name)
		}
		if dup[w.Name] {
			return nil, fmt.Errorf("campaign: duplicate workload %q", name)
		}
		dup[w.Name] = true
		workloads[i] = wlEntry{w: w}
	}
	clear(dup)
	policies := make([]sim.PolicySpec, len(s.Policies))
	for i, name := range s.Policies {
		p, err := sim.ParseSpec(name)
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		if dup[p.String()] {
			return nil, fmt.Errorf("campaign: duplicate policy %q", name)
		}
		dup[p.String()] = true
		policies[i] = p
	}
	clear(dup)
	for _, tw := range tweaks {
		if dup[tw.canon()] {
			return nil, fmt.Errorf("campaign: tweak %q duplicates another tweak's content", tw.Label())
		}
		dup[tw.canon()] = true
	}
	seen := make(map[uint64]bool)
	for _, seed := range seeds {
		if seen[seed] {
			return nil, fmt.Errorf("campaign: duplicate seed %d", seed)
		}
		seen[seed] = true
	}
	// Bound the expansion before allocating for it: a hostile or typo'd
	// spec (tens of thousands of distinct FLUSH-S<n> policies × as many
	// seeds) could otherwise request a multi-gigabyte job slice and
	// crash the process instead of failing the request. 2^20 jobs is far
	// beyond any legitimate sweep.
	const maxJobs = 1 << 20
	n := uint64(1)
	for _, axis := range []int{len(workloads), len(policies), len(tweaks), len(seeds)} {
		// Checking after every factor keeps the product overflow-free:
		// n stays <= maxJobs before each multiply.
		if n *= uint64(axis); n > maxJobs {
			return nil, fmt.Errorf("campaign: spec expands to over %d jobs; split the sweep", maxJobs)
		}
	}
	jobs := make([]Job, 0, len(workloads)*len(policies)*len(tweaks)*len(seeds))
	for _, w := range workloads {
		for _, p := range policies {
			for _, tw := range tweaks {
				for _, seed := range seeds {
					jobs = append(jobs, Job{
						Workload: w.w, Trace: w.tr, Policy: p, Tweak: tw, Seed: seed,
						Cycles: s.Cycles, Warmup: s.Warmup, Interval: s.Interval,
					})
				}
			}
		}
	}
	return jobs, nil
}

// Job is one fully specified simulation of a campaign. Every field is
// result-determining and therefore key material; keyhash enforces that
// Key (with GangKey) covers whatever fields this struct grows.
//
//mflush:keyed Key GangKey
type Job struct {
	// Workload selects the benchmark mix. Zero when Trace is set.
	Workload workload.Workload
	// Trace, when non-nil, makes this a trace-replay job: the scenario
	// file it references is loaded into sim.Options.ThreadTraces and
	// Workload is ignored. Trace jobs key on the file's content digest.
	Trace *TraceRef
	// Policy is the IFetch policy under evaluation.
	Policy sim.PolicySpec
	// Tweak is the machine point (zero: the paper's baseline).
	Tweak Tweak
	// Seed drives workload synthesis.
	Seed uint64
	// Cycles is the measured window.
	Cycles uint64
	// Warmup runs before the measured window, unmeasured.
	Warmup uint64
	// Interval, when positive, samples the measured window every
	// Interval cycles into the record's interval_samples.
	Interval uint64
}

// Key is a content hash of every parameter that determines the job's
// result (the simulator itself is deterministic). Stores index completed
// work by this key, so resume survives reordering or extending a spec —
// only genuinely new parameter combinations run. A sampling interval
// changes the record content, so it is hashed too — but only when set,
// keeping every pre-interval store entry addressable.
func (j Job) Key() string {
	material := fmt.Sprintf("w=%s p=%s seed=%d cycles=%d warmup=%d %s",
		j.workloadID(), j.Policy, j.Seed, j.Cycles, j.Warmup, j.Tweak.canon())
	if j.Interval > 0 {
		material += fmt.Sprintf(" interval=%d", j.Interval)
	}
	h := sha256.Sum256([]byte(material))
	return hex.EncodeToString(h[:16])
}

// workloadID is the key-material identity of the job's workload axis:
// the workload name, or "trace:" plus the content digest for trace
// jobs. No paper workload name contains a colon, so the two spaces can
// never collide — and since synthetic material is unchanged, every
// pre-trace store stays addressable (frozen-key test).
func (j Job) workloadID() string {
	if j.Trace != nil {
		return j.Trace.keyMaterial()
	}
	return j.Workload.Name
}

// Options builds the sim.Options that execute a synthetic-workload job.
// It cannot load trace files (no error path), so it panics on trace
// jobs; execution paths go through SimOptions, which handles both.
func (j Job) Options() sim.Options {
	if j.Trace != nil {
		panic("campaign: Options on a trace job; use SimOptions")
	}
	o := sim.Options{
		Workload: j.Workload, Policy: j.Policy, Seed: j.Seed,
		Cycles: j.Cycles, Warmup: j.Warmup, Interval: j.Interval,
	}
	if !j.Tweak.IsZero() {
		tw := j.Tweak
		o.Tweak = tw.apply
	}
	return o
}

// SimOptions builds the sim.Options that execute the job. For trace
// jobs this loads the referenced scenario file (memoised per digest),
// verifying its content digest first — a worker whose copy of the file
// drifted from the coordinator's fails here instead of simulating the
// wrong scenario under the right key.
func (j Job) SimOptions() (sim.Options, error) {
	if j.Trace == nil {
		return j.Options(), nil
	}
	if err := j.Trace.validate(); err != nil {
		return sim.Options{}, err
	}
	threads, err := j.Trace.load()
	if err != nil {
		return sim.Options{}, err
	}
	o := sim.Options{
		Name: j.Trace.Name, ThreadTraces: threads,
		Policy: j.Policy, Seed: j.Seed,
		Cycles: j.Cycles, Warmup: j.Warmup, Interval: j.Interval,
	}
	if !j.Tweak.IsZero() {
		tw := j.Tweak
		o.Tweak = tw.apply
	}
	return o, nil
}

// StreamSamples wires o (built from this job) to republish its live
// interval sample points keyed by the job's content hash — the one
// hook behind mflushd's sample SSE events, shared by the daemon's
// local runner and the cluster router's local fallback so the two
// execution modes cannot diverge in what they stream. A no-op for
// unsampled jobs or a nil publish.
func (j Job) StreamSamples(o *sim.Options, publish func(key string, p sim.SamplePoint)) {
	if o.Interval == 0 || publish == nil {
		return
	}
	key := j.Key()
	o.OnSample = func(p sim.SamplePoint) { publish(key, p) }
}

// String names the job for progress lines and errors.
func (j Job) String() string {
	name := j.Workload.Name
	if j.Trace != nil {
		name = j.Trace.Name
	}
	s := fmt.Sprintf("%s/%s seed=%d", name, j.Policy, j.Seed)
	if !j.Tweak.IsZero() || j.Tweak.Name != "" {
		s += " [" + j.Tweak.Label() + "]"
	}
	return s
}
