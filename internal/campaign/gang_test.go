package campaign

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/sim"
)

// gangSpec is a sweep whose expansion contains gangable variety: two
// workloads and two seeds (four gang keys), three policies each.
var gangSpec = Spec{
	Workloads: []string{"2W1", "2W3"},
	Policies:  []string{"ICOUNT", "FLUSH-S30", "MFLUSH"},
	Seeds:     []uint64{1, 2},
	Cycles:    4000,
	Warmup:    1000,
}

// TestGangGroupsShape pins the grouping algorithm: greedy in input
// order, sealed at width, leftovers in first-opened order, exact
// partition, single gang key per group.
func TestGangGroupsShape(t *testing.T) {
	jobs, err := gangSpec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// Expansion order is workload-major then policy then seed, so
	// consecutive jobs alternate seeds (distinct gang keys) — grouping
	// must stitch same-key jobs back together across the alternation.
	groups := GangGroups(jobs, 3)
	seen := make(map[int]bool)
	for _, g := range groups {
		if len(g) == 0 || len(g) > 3 {
			t.Fatalf("group size %d outside [1,3]", len(g))
		}
		key := jobs[g[0]].GangKey()
		for _, i := range g {
			if seen[i] {
				t.Fatalf("job %d appears in two groups", i)
			}
			seen[i] = true
			if jobs[i].GangKey() != key {
				t.Fatalf("group mixes gang keys:\n %s\n %s", key, jobs[i].GangKey())
			}
		}
	}
	if len(seen) != len(jobs) {
		t.Fatalf("grouping covered %d of %d jobs", len(seen), len(jobs))
	}
	// 12 jobs, 4 gang keys × 3 members each, width 3: four full gangs.
	if len(groups) != 4 {
		t.Fatalf("got %d groups, want 4 full gangs", len(groups))
	}

	// Width 1 and the degenerate widths mean no ganging: singletons in
	// input order.
	for _, width := range []int{1, 0, -5} {
		singles := GangGroups(jobs, width)
		if len(singles) != len(jobs) {
			t.Fatalf("width %d: got %d groups, want %d singletons", width, len(singles), len(jobs))
		}
		for i, g := range singles {
			if len(g) != 1 || g[0] != i {
				t.Fatalf("width %d: group %d = %v, want [%d]", width, i, g, i)
			}
		}
	}
}

// TestSchedulerGangBitIdentity runs the same campaign solo and ganged
// into separate stores and requires byte-identical records — gang
// batching must be invisible in everything the campaign layer persists.
func TestSchedulerGangBitIdentity(t *testing.T) {
	jobs, err := gangSpec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	run := func(name string, sched *Scheduler) []Record {
		store, err := OpenStore(filepath.Join(dir, name+".jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		recs, err := sched.Run(context.Background(), jobs, store)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return recs
	}
	soloRecs := run("solo", &Scheduler{Workers: 2})
	gangRecs := run("gang", &Scheduler{Workers: 2, GangWidth: 4})
	for i := range jobs {
		solo, _ := json.Marshal(soloRecs[i])
		gang, _ := json.Marshal(gangRecs[i])
		if string(solo) != string(gang) {
			t.Errorf("%s: ganged record differs from solo\n gang: %s\n solo: %s", jobs[i], gang, solo)
		}
	}
}

// TestSchedulerGangRunnerBatches proves the scheduler actually batches:
// an injected GangRunner sees groups of compatible jobs (not width-1
// trickle), singleton leftovers go to the solo Runner, and progress
// still reports once per job.
func TestSchedulerGangRunnerBatches(t *testing.T) {
	spec := gangSpec
	spec.Workloads = []string{"2W1"}
	spec.Seeds = []uint64{1}
	jobs, err := spec.Jobs() // 3 jobs, one gang key
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var batchSizes []int
	var soloCalls int
	sched := &Scheduler{
		Workers:   1,
		GangWidth: 2,
		Runner: func(o sim.Options) (*sim.Result, error) {
			mu.Lock()
			soloCalls++
			mu.Unlock()
			return sim.Run(o)
		},
		GangRunner: func(opts []sim.Options) ([]*sim.Result, error) {
			mu.Lock()
			batchSizes = append(batchSizes, len(opts))
			mu.Unlock()
			return sim.RunGang(opts)
		},
	}
	var reports int
	sched.OnProgress = func(Progress) { reports++ }
	if _, err := sched.Run(context.Background(), jobs, nil); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batchSizes, []int{2}) || soloCalls != 1 {
		t.Errorf("width 2 over 3 compatible jobs: gang batches %v + %d solo, want [2] + 1",
			batchSizes, soloCalls)
	}
	if reports != len(jobs) {
		t.Errorf("got %d progress reports, want one per job (%d)", reports, len(jobs))
	}
}

// TestSchedulerGangResume proves gang batching composes with store
// resume: a partially complete store is not re-run, and the remaining
// jobs gang among themselves.
func TestSchedulerGangResume(t *testing.T) {
	jobs, err := gangSpec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenStore(filepath.Join(t.TempDir(), "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	// Complete a prefix solo, then finish the campaign ganged.
	if _, err := (&Scheduler{Workers: 1}).Run(context.Background(), jobs[:5], store); err != nil {
		t.Fatal(err)
	}
	var cached, ran int
	sched := &Scheduler{
		Workers:   2,
		GangWidth: 3,
		OnProgress: func(p Progress) {
			if p.Cached {
				cached++
			} else {
				ran++
			}
		},
	}
	recs, err := sched.Run(context.Background(), jobs, store)
	if err != nil {
		t.Fatal(err)
	}
	if cached != 5 || ran != len(jobs)-5 {
		t.Errorf("resume ran %d jobs and reused %d, want %d and 5", ran, cached, len(jobs)-5)
	}
	for i, j := range jobs {
		if recs[i].Key != j.Key() {
			t.Errorf("record %d keyed %s, want %s", i, recs[i].Key, j.Key())
		}
	}
}

// FuzzGangGrouping drives GangGroups with arbitrary job mixes and
// widths. Properties: it never panics, never mixes incompatible jobs in
// one group, partitions the input exactly (every index once, group
// sizes within [1, width]), is deterministic, and leaves the jobs —
// and therefore their content-hash keys — untouched.
func FuzzGangGrouping(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, 4)
	f.Add([]byte{255, 0, 255, 0}, 2)
	f.Add([]byte{}, 3)
	f.Add([]byte{9, 9, 9, 9, 9, 9}, 1)
	f.Add([]byte{1, 2}, -7)
	f.Fuzz(func(t *testing.T, data []byte, width int) {
		if len(data) > 256 {
			data = data[:256] // bound the job list, not the coverage
		}
		spec, err := (Spec{
			Workloads: []string{"2W1", "4W2"},
			Policies:  []string{"ICOUNT", "MFLUSH", "FLUSH-S30"},
			Seeds:     []uint64{1, 2},
			Cycles:    1000,
			Warmup:    100,
		}).Jobs()
		if err != nil {
			t.Fatal(err)
		}
		// Each fuzz byte picks one job variant; the byte stream is the
		// (arbitrary) campaign ordering and mix the grouper must handle.
		jobs := make([]Job, len(data))
		for i, b := range data {
			j := spec[int(b)%len(spec)]
			// High bits perturb the window/interval so the fuzzer also
			// builds mixes that must NOT gang together.
			if b&0x40 != 0 {
				j.Cycles *= 2
			}
			if b&0x80 != 0 {
				j.Interval = 250
			}
			jobs[i] = j
		}
		keysBefore := make([]string, len(jobs))
		for i, j := range jobs {
			keysBefore[i] = j.Key()
		}

		groups := GangGroups(jobs, width)

		maxSize := width
		if width < 2 {
			maxSize = 1
		}
		seen := make(map[int]bool, len(jobs))
		for _, g := range groups {
			if len(g) == 0 || len(g) > maxSize {
				t.Fatalf("group size %d outside [1,%d]", len(g), maxSize)
			}
			key := jobs[g[0]].GangKey()
			for _, i := range g {
				if i < 0 || i >= len(jobs) {
					t.Fatalf("group index %d out of range", i)
				}
				if seen[i] {
					t.Fatalf("job index %d appears twice", i)
				}
				seen[i] = true
				if jobs[i].GangKey() != key {
					t.Fatalf("group mixes gang keys %q and %q", key, jobs[i].GangKey())
				}
			}
		}
		if len(seen) != len(jobs) {
			t.Fatalf("grouping covered %d of %d jobs", len(seen), len(jobs))
		}
		for i, j := range jobs {
			if j.Key() != keysBefore[i] {
				t.Fatalf("grouping changed job %d key %s -> %s", i, keysBefore[i], j.Key())
			}
		}
		if again := GangGroups(jobs, width); !reflect.DeepEqual(groups, again) {
			t.Fatalf("grouping is nondeterministic:\n first: %v\nsecond: %v", groups, again)
		}
	})
}
