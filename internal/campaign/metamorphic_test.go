package campaign

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/simtest"
)

// The metamorphic determinism property: a campaign is a *set* of
// content-hash-keyed jobs, so the order a spec happens to list its
// workloads, policies, seeds and tweaks in must be invisible in the
// output — the expanded key multiset is identical, and the aggregate
// exports are byte-identical (canonical cell order, canonical in-cell
// seed folding — even the floating-point reductions see the same
// operand order).

// metamorphicSpec builds the base spec with each axis in the given order.
func metamorphicSpec(workloads, policies []string, seeds []uint64, tweaks []Tweak) Spec {
	return Spec{
		Workloads: workloads, Policies: policies, Seeds: seeds, Tweaks: tweaks,
		Cycles: 1000, Warmup: 100,
	}
}

// aggregateBytes runs the spec's jobs through a scheduler with the
// deterministic fake simulator and renders every export format.
func aggregateBytes(t *testing.T, spec Spec, workers int) map[string]string {
	t.Helper()
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	recs, err := (&Scheduler{Workers: workers, Runner: simtest.New().Run}).Run(context.Background(), jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	cells := Aggregate(recs)
	out := make(map[string]string)
	var csv, js bytes.Buffer
	if err := WriteCSV(&csv, cells); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&js, cells); err != nil {
		t.Fatal(err)
	}
	out["csv"] = csv.String()
	out["json"] = js.String()
	out["table"] = Table(cells).String()
	return out
}

// keySet expands the spec and returns its sorted job keys.
func keySet(t *testing.T, spec Spec) []string {
	t.Helper()
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(jobs))
	for i, j := range jobs {
		keys[i] = j.Key()
	}
	sort.Strings(keys)
	return keys
}

// TestAggregateInsensitiveToSpecAxisOrder shuffles every spec axis —
// workloads, policies, seeds, tweaks — through a handful of seeded
// permutations and requires the expanded key set and all three
// aggregate exports to be byte-identical to the in-order spec's.
func TestAggregateInsensitiveToSpecAxisOrder(t *testing.T) {
	workloads := []string{"2W1", "2W3", "4W1"}
	policies := []string{"ICOUNT", "MFLUSH", "FLUSH-S30"}
	seeds := []uint64{1, 2, 3, 4}
	tweaks := []Tweak{{}, {Name: "small-mshr", MSHREntries: 4}, {Name: "slow-mem", MainMemoryLatency: 500}}

	base := metamorphicSpec(workloads, policies, seeds, tweaks)
	wantKeys := keySet(t, base)
	want := aggregateBytes(t, base, 1)

	rng := rand.New(rand.NewSource(42)) // deterministic shuffles
	for trial := 0; trial < 5; trial++ {
		w := append([]string(nil), workloads...)
		p := append([]string(nil), policies...)
		s := append([]uint64(nil), seeds...)
		tw := append([]Tweak(nil), tweaks...)
		rng.Shuffle(len(w), func(i, j int) { w[i], w[j] = w[j], w[i] })
		rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
		rng.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
		rng.Shuffle(len(tw), func(i, j int) { tw[i], tw[j] = tw[j], tw[i] })
		shuffled := metamorphicSpec(w, p, s, tw)

		if got := keySet(t, shuffled); !reflect.DeepEqual(got, wantKeys) {
			t.Fatalf("trial %d: shuffled spec expands to a different key set", trial)
		}
		// Different worker counts on top of the shuffle: completion order
		// is maximally perturbed, output must not move.
		got := aggregateBytes(t, shuffled, 1+trial%4)
		for format, ref := range want {
			if got[format] != ref {
				t.Fatalf("trial %d: %s aggregate differs for shuffled spec:\n%s\nvs\n%s",
					trial, format, got[format], ref)
			}
		}
	}
}

// TestAggregateInsensitiveToRecordOrder pins the canonicalisation at
// the Aggregate level directly: feeding the same records reversed and
// shuffled yields identical cells.
func TestAggregateInsensitiveToRecordOrder(t *testing.T) {
	recs := []Record{
		testRecord("a1", "2W3", "MFLUSH", 2, 1.5),
		testRecord("a2", "2W1", "ICOUNT", 1, 1.0),
		testRecord("a3", "2W3", "MFLUSH", 1, 1.25),
		testRecord("a4", "2W1", "ICOUNT", 2, 2.0),
		testRecord("a5", "2W1", "MFLUSH", 1, 3.0),
	}
	want := Aggregate(recs)
	if want[0].Workload != "2W1" || want[0].Policy != "ICOUNT" {
		t.Fatalf("canonical cell order: first cell = %+v", want[0])
	}

	reversed := make([]Record, len(recs))
	for i, r := range recs {
		reversed[len(recs)-1-i] = r
	}
	if got := Aggregate(reversed); !reflect.DeepEqual(got, want) {
		t.Fatalf("reversed records aggregate differently:\n%+v\nvs\n%+v", got, want)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3; trial++ {
		shuffled := append([]Record(nil), recs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := Aggregate(shuffled); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: shuffled records aggregate differently", trial)
		}
	}
}
