package campaign

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workload"
)

// WireJob is the portable JSON form of a Job — the unit the cluster
// protocol (internal/cluster) moves between the coordinator and worker
// processes. It names the workload and policy instead of embedding
// their resolved structs, so it stays small and survives version skew
// detectably: a worker reconstructs the Job with WireJob.Job and
// verifies the reconstructed key against Key before simulating.
// keyhash holds every field to Job's coverage: a wire field the
// reconstruction drops would silently decouple the wire form from the
// job identity it claims.
//
//mflush:keyed Job
type WireJob struct {
	// Key is the coordinator-computed content hash (Job.Key). Workers
	// echo it in results and failures, and reject jobs whose
	// reconstructed key differs (a workload/policy definition mismatch
	// between coordinator and worker builds). It is the hash, not
	// material for it.
	//mflush:keyed-ignore
	Key string `json:"key"`
	// Workload is the paper workload name (resolved via workload.ByName).
	// Empty for trace jobs, which carry Trace instead.
	Workload string `json:"workload,omitempty"`
	// Trace, for trace-replay jobs, carries the scenario reference
	// (path + content digest). The digest is part of the job key, so a
	// worker that dropped or altered it fails the key check; the file
	// content itself is re-verified against the digest at load time.
	Trace *TraceRef `json:"trace,omitempty"`
	// Policy is the policy name as PolicySpec.String renders it
	// (re-parsed with sim.ParseSpec, which round-trips every spec).
	Policy string `json:"policy"`
	// Tweak is the machine point, zero for the baseline.
	Tweak Tweak `json:"tweak,omitzero"`
	// Seed drives workload synthesis.
	Seed uint64 `json:"seed"`
	// Cycles is the measured window.
	Cycles uint64 `json:"cycles"`
	// Warmup runs before the measured window, unmeasured.
	Warmup uint64 `json:"warmup,omitempty"`
	// Interval is the sampling period for the job's interval time
	// series, zero for none. Part of the job key when set, so a worker
	// that dropped it would fail the key check instead of silently
	// returning a sample-less record.
	Interval uint64 `json:"interval,omitempty"`
}

// Wire renders the job in its portable form, key included.
func (j Job) Wire() WireJob {
	w := WireJob{
		Key:      j.Key(),
		Workload: j.Workload.Name,
		Policy:   j.Policy.String(),
		Tweak:    j.Tweak,
		Seed:     j.Seed,
		Cycles:   j.Cycles,
		Warmup:   j.Warmup,
		Interval: j.Interval,
	}
	if j.Trace != nil {
		ref := *j.Trace
		w.Trace = &ref
		w.Workload = ""
	}
	return w
}

// Job resolves the wire form back into an executable Job. The workload
// and policy names resolve through the same tables and parser the spec
// path uses, so a wire job is accepted exactly when the equivalent spec
// would be. It does not compare keys — callers that received w over the
// network should check `w.Job().Key() == w.Key` before trusting it.
func (w WireJob) Job() (Job, error) {
	j := Job{
		Tweak: w.Tweak, Seed: w.Seed,
		Cycles: w.Cycles, Warmup: w.Warmup, Interval: w.Interval,
	}
	switch {
	case w.Trace != nil:
		if w.Workload != "" {
			return Job{}, fmt.Errorf("campaign: wire job names both workload %q and a trace", w.Workload)
		}
		ref := *w.Trace
		if err := ref.validate(); err != nil {
			return Job{}, err
		}
		j.Trace = &ref
	default:
		wl, ok := workload.ByName(w.Workload)
		if !ok {
			return Job{}, fmt.Errorf("campaign: unknown workload %q", w.Workload)
		}
		j.Workload = wl
	}
	p, err := sim.ParseSpec(w.Policy)
	if err != nil {
		return Job{}, fmt.Errorf("campaign: %w", err)
	}
	if err := w.Tweak.validate(); err != nil {
		return Job{}, err
	}
	if w.Cycles == 0 {
		return Job{}, fmt.Errorf("campaign: wire job needs a positive cycle budget")
	}
	j.Policy = p
	return j, nil
}
