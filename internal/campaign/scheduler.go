package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/sim"
)

// Progress reports one finished (or skipped) job to the scheduler's
// callback. Done counts both, so Done == Total when the campaign ends.
type Progress struct {
	// Done counts jobs finished so far out of Total.
	Done, Total int
	// Job is the job this report is about.
	Job Job
	// Cached marks a job skipped because its key was already in the
	// store (a resumed campaign).
	Cached bool
	// Err is the job's failure, if any; the campaign keeps running the
	// remaining jobs and reports the first error at the end.
	Err error
}

// Scheduler executes campaign jobs on a bounded worker pool. The zero
// value runs sim.Run on GOMAXPROCS workers with no progress reporting.
type Scheduler struct {
	// Workers bounds parallelism; <= 0 means GOMAXPROCS. Results are
	// ordered by job index regardless of completion order, and the
	// simulator is deterministic per job, so the worker count never
	// changes campaign output.
	Workers int
	// Runner executes one simulation; nil means sim.Run. Tests inject
	// counting or failing runners here.
	Runner func(sim.Options) (*sim.Result, error)
	// GangWidth, when at least 2, batches gang-compatible pending jobs
	// (equal Job.GangKey: one workload, window and machine point) into
	// lockstep gangs of up to that many members, each executed by one
	// GangRunner call. Ganging changes execution only: records, job keys
	// and store contents are byte-identical to solo runs (test-enforced).
	// Jobs with no compatible sibling still run, as width-1 groups
	// through Runner.
	GangWidth int
	// GangRunner executes one lockstep batch; nil means sim.RunGang.
	GangRunner func([]sim.Options) ([]*sim.Result, error)
	// OnProgress, when set, is called serially after every job.
	OnProgress func(Progress)

	// slots, when non-nil (NewShared), bounds total concurrency across
	// every concurrent Run/RunCached call on this scheduler, so a daemon
	// serving many campaigns at once never exceeds one machine-wide
	// parallelism budget.
	slots chan struct{}
}

// NewShared returns a scheduler whose total parallelism across all
// concurrent Run and RunCached calls is bounded by workers (<= 0:
// GOMAXPROCS) — the shape a long-running daemon needs, where each
// client campaign runs in its own goroutine but simulations compete for
// one shared slot pool. A plain Scheduler value bounds each call
// independently instead.
func NewShared(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Scheduler{Workers: workers, slots: make(chan struct{}, workers)}
}

// Run executes jobs, returning one record per job in job order. Jobs
// whose key is already in store are skipped and their stored record
// reused; newly completed jobs are appended to store as they finish, so
// a killed campaign loses at most the jobs in flight. A nil store runs
// everything and persists nothing. Cancelling ctx stops scheduling new
// jobs (in-flight simulations finish) and Run returns ctx.Err() unless
// a simulation failed first.
func (s *Scheduler) Run(ctx context.Context, jobs []Job, store *Store) ([]Record, error) {
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	runner := s.Runner
	if runner == nil {
		runner = sim.Run
	}

	records := make([]Record, len(jobs))
	report := newReporter(len(jobs), func(p Progress) {
		if cb := s.OnProgress; cb != nil {
			cb(p)
		}
	})

	// Resolve cached jobs up front so workers only see real work. Job
	// keys hash tweak content, not the display name, so a cached record
	// may carry a stale label from before a spec rename; re-label it
	// from the current job so aggregation cells stay whole.
	var pending []int
	for i, j := range jobs {
		if store != nil {
			if rec, ok := store.Get(j.Key()); ok {
				rec.Tweak = j.Tweak.Label()
				records[i] = rec
				report(Progress{Job: j, Cached: true})
				continue
			}
		}
		pending = append(pending, i)
	}

	// complete books job i's finished simulation: record, store, report.
	complete := func(i int, res *sim.Result) error {
		j := jobs[i]
		rec := NewRecord(j, res)
		if store != nil {
			if err := store.Append(rec); err != nil {
				report(Progress{Job: j, Err: err})
				return err
			}
		}
		records[i] = rec
		report(Progress{Job: j})
		return nil
	}

	if s.GangWidth >= 2 {
		return records, s.runGanged(ctx, jobs, pending, workers, runner, complete, report)
	}

	errs := runPool(ctx, workers, s.slots, len(jobs), pending, func(i int) error {
		j := jobs[i]
		res, err := runJob(runner, j)
		if err != nil {
			report(Progress{Job: j, Err: err})
			return err
		}
		return complete(i, res)
	})
	return records, firstError(jobs, errs)
}

// runJob resolves the job's executable options — which loads and
// digest-verifies the scenario file for trace jobs — and runs it.
// Every solo execution path goes through here so a trace job's load
// failure surfaces as that job's error, exactly like a sim failure.
func runJob(runner func(sim.Options) (*sim.Result, error), j Job) (*sim.Result, error) {
	o, err := j.SimOptions()
	if err != nil {
		return nil, err
	}
	return runner(o)
}

// runGanged executes the pending jobs as lockstep gang batches: the
// GangWidth >= 2 arm of Run. The pool's unit of work becomes one gang
// group instead of one job; group results are booked member by member
// through the same completion path as solo runs, so records and stores
// cannot differ between the modes. Width-1 groups (jobs with no
// compatible sibling in this campaign) run through the solo Runner.
func (s *Scheduler) runGanged(ctx context.Context, jobs []Job, pending []int,
	workers int, runner func(sim.Options) (*sim.Result, error),
	complete func(int, *sim.Result) error, report func(Progress)) error {

	gangRun := s.GangRunner
	if gangRun == nil {
		gangRun = sim.RunGang
	}
	pendingJobs := make([]Job, len(pending))
	for k, i := range pending {
		pendingJobs[k] = jobs[i]
	}
	groups := GangGroups(pendingJobs, s.GangWidth)
	groupIdx := make([]int, len(groups))
	for g := range groupIdx {
		groupIdx[g] = g
	}
	// jobErrs is written at distinct indices only (each job belongs to
	// exactly one group) and read after the pool drains, so it needs no
	// lock.
	jobErrs := make([]error, len(jobs))
	gerrs := runPool(ctx, workers, s.slots, len(groups), groupIdx, func(g int) error {
		members := groups[g]
		if len(members) == 1 {
			i := pending[members[0]]
			j := jobs[i]
			res, err := runJob(runner, j)
			if err != nil {
				jobErrs[i] = err
				report(Progress{Job: j, Err: err})
				return err
			}
			jobErrs[i] = complete(i, res)
			return jobErrs[i]
		}
		opts := make([]sim.Options, len(members))
		for k, pi := range members {
			o, err := jobs[pending[pi]].SimOptions()
			if err != nil {
				// Members share one GangKey, hence one trace file: a
				// load failure fails the batch together, like a
				// lockstep failure below.
				for _, pj := range members {
					i := pending[pj]
					jobErrs[i] = err
					report(Progress{Job: jobs[i], Err: err})
				}
				return err
			}
			opts[k] = o
		}
		results, err := gangRun(opts)
		if err != nil {
			// The lockstep failed before producing any member's result:
			// the whole batch fails together.
			for _, pi := range members {
				i := pending[pi]
				jobErrs[i] = err
				report(Progress{Job: jobs[i], Err: err})
			}
			return err
		}
		var firstErr error
		for k, pi := range members {
			i := pending[pi]
			if jobErrs[i] = complete(i, results[k]); jobErrs[i] != nil && firstErr == nil {
				firstErr = jobErrs[i]
			}
		}
		return firstErr
	})
	// Groups the cancelled pool never started record their error at the
	// group level only; spread it over their members so firstError sees
	// every unfinished job.
	for g, err := range gerrs {
		if err == nil {
			continue
		}
		for _, pi := range groups[g] {
			if i := pending[pi]; jobErrs[i] == nil {
				jobErrs[i] = err
			}
		}
	}
	return firstError(jobs, jobErrs)
}

// RunCached executes jobs through cache, returning one record per job in
// job order exactly as Run does, but with single-flight semantics: a job
// whose key is already cached (or in flight in another concurrent
// RunCached call on the same cache) is served without a fresh
// simulation and reported with Progress.Cached set. onProgress, when
// non-nil, is called serially after every job — per call, unlike the
// scheduler-wide OnProgress, because a shared scheduler runs many
// campaigns at once and each needs its own progress stream. Cancelling
// ctx stops scheduling new jobs; in-flight simulations finish (and are
// persisted by the cache) and RunCached returns ctx.Err() unless a
// simulation failed first.
func (s *Scheduler) RunCached(ctx context.Context, jobs []Job, cache *Cache, onProgress func(Progress)) ([]Record, error) {
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	records := make([]Record, len(jobs))
	report := newReporter(len(jobs), func(p Progress) {
		if onProgress != nil {
			onProgress(p)
		}
	})

	// Serve completed cache entries up front, before competing for
	// worker or shared-simulation slots: a fully-cached campaign
	// completes instantly even while every slot is busy simulating.
	// In-flight joins still go through the pool (they must wait anyway).
	var pending []int
	for i, j := range jobs {
		if rec, ok := cache.Lookup(j); ok {
			records[i] = rec
			report(Progress{Job: j, Cached: true})
			continue
		}
		pending = append(pending, i)
	}
	errs := runPool(ctx, workers, s.slots, len(jobs), pending, func(i int) error {
		j := jobs[i]
		rec, hit, err := cache.Do(ctx, j)
		if err != nil {
			// A cancelled wait on another caller's in-flight run is not a
			// job failure: leave it unreported, like a job cancellation
			// skipped before it started, so progress consumers never count
			// a clean cancel as a simulation error.
			if !isCtxErr(err) {
				report(Progress{Job: j, Err: err})
			}
			return err
		}
		records[i] = rec
		report(Progress{Job: j, Cached: hit})
		return nil
	})
	return records, firstError(jobs, errs)
}

// newReporter serialises progress callbacks and stamps each report with
// its position: cb runs under one mutex, so campaign consumers never
// need their own ordering.
func newReporter(total int, cb func(Progress)) func(Progress) {
	var mu sync.Mutex
	done := 0
	return func(p Progress) {
		mu.Lock()
		done++
		p.Done, p.Total = done, total
		cb(p)
		mu.Unlock()
	}
}

// isCtxErr distinguishes cancellation from real failure.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// firstError folds the pool's per-index errors: the first real
// simulation failure in job order wins; bare cancellations (no sim
// error) collapse into the context's own error.
func firstError(jobs []Job, errs []error) error {
	var ctxErr error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if isCtxErr(err) {
			if ctxErr == nil {
				ctxErr = err
			}
			continue
		}
		return fmt.Errorf("campaign: %s: %w", jobs[i], err)
	}
	return ctxErr
}

// RunAll executes raw sim.Options concurrently (bounded by GOMAXPROCS)
// and returns results in input order — the scheduler entry point for
// callers like internal/experiments whose grids are built in Go rather
// than declared as a Spec.
func RunAll(ctx context.Context, opts []sim.Options) ([]*sim.Result, error) {
	results := make([]*sim.Result, len(opts))
	all := make([]int, len(opts))
	for i := range all {
		all[i] = i
	}
	errs := runPool(ctx, runtime.GOMAXPROCS(0), nil, len(opts), all, func(i int) error {
		var err error
		results[i], err = sim.Run(opts[i])
		return err
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("campaign: %s/%s: %w",
				opts[i].Workload.Name, opts[i].Policy, err)
		}
	}
	return results, nil
}

// runPool is the shared bounded worker pool: it executes fn(i) for each
// listed index on workers goroutines and returns n per-index errors.
// Once ctx is cancelled, indices not yet started record ctx.Err()
// without running fn; work already in flight finishes. When slots is
// non-nil (a shared scheduler), each fn call additionally holds one slot
// for its duration, bounding total parallelism across concurrent pools.
func runPool(ctx context.Context, workers int, slots chan struct{}, n int, indices []int, fn func(int) error) []error {
	errs := make([]error, n)
	// More goroutines than work items would just park on the closed
	// channel; the clamp matters in daemon cluster mode, where the pool
	// bound is sized for the whole admission queue rather than the
	// local core count.
	if workers > len(indices) {
		workers = len(indices)
	}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				if slots != nil {
					select {
					case slots <- struct{}{}:
					case <-ctx.Done():
						errs[i] = ctx.Err()
						continue
					}
				}
				errs[i] = fn(i)
				if slots != nil {
					<-slots
				}
			}
		}()
	}
	for _, i := range indices {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	return errs
}
