package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/sim"
)

// Progress reports one finished (or skipped) job to the scheduler's
// callback. Done counts both, so Done == Total when the campaign ends.
type Progress struct {
	Done, Total int
	Job         Job
	// Cached marks a job skipped because its key was already in the
	// store (a resumed campaign).
	Cached bool
	// Err is the job's failure, if any; the campaign keeps running the
	// remaining jobs and reports the first error at the end.
	Err error
}

// Scheduler executes campaign jobs on a bounded worker pool. The zero
// value runs sim.Run on GOMAXPROCS workers with no progress reporting.
type Scheduler struct {
	// Workers bounds parallelism; <= 0 means GOMAXPROCS. Results are
	// ordered by job index regardless of completion order, and the
	// simulator is deterministic per job, so the worker count never
	// changes campaign output.
	Workers int
	// Runner executes one simulation; nil means sim.Run. Tests inject
	// counting or failing runners here.
	Runner func(sim.Options) (*sim.Result, error)
	// OnProgress, when set, is called serially after every job.
	OnProgress func(Progress)
}

// Run executes jobs, returning one record per job in job order. Jobs
// whose key is already in store are skipped and their stored record
// reused; newly completed jobs are appended to store as they finish, so
// a killed campaign loses at most the jobs in flight. A nil store runs
// everything and persists nothing. Cancelling ctx stops scheduling new
// jobs (in-flight simulations finish) and Run returns ctx.Err() unless
// a simulation failed first.
func (s *Scheduler) Run(ctx context.Context, jobs []Job, store *Store) ([]Record, error) {
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	runner := s.Runner
	if runner == nil {
		runner = sim.Run
	}

	records := make([]Record, len(jobs))

	var progressMu sync.Mutex
	done := 0
	report := func(p Progress) {
		progressMu.Lock()
		done++
		p.Done, p.Total = done, len(jobs)
		cb := s.OnProgress
		if cb != nil {
			cb(p)
		}
		progressMu.Unlock()
	}

	// Resolve cached jobs up front so workers only see real work. Job
	// keys hash tweak content, not the display name, so a cached record
	// may carry a stale label from before a spec rename; re-label it
	// from the current job so aggregation cells stay whole.
	var pending []int
	for i, j := range jobs {
		if store != nil {
			if rec, ok := store.Get(j.Key()); ok {
				rec.Tweak = j.Tweak.Label()
				records[i] = rec
				report(Progress{Job: j, Cached: true})
				continue
			}
		}
		pending = append(pending, i)
	}

	errs := runPool(ctx, workers, len(jobs), pending, func(i int) error {
		j := jobs[i]
		res, err := runner(j.Options())
		if err != nil {
			report(Progress{Job: j, Err: err})
			return err
		}
		rec := Record{
			Key: j.Key(), Workload: res.Workload, Policy: res.Policy,
			Tweak: j.Tweak.Label(), Seed: j.Seed, Summary: res.Summary(),
		}
		if store != nil {
			if err := store.Append(rec); err != nil {
				report(Progress{Job: j, Err: err})
				return err
			}
		}
		records[i] = rec
		report(Progress{Job: j})
		return nil
	})

	// First simulation failure in job order wins; a bare cancellation
	// (no sim error) reports ctx.Err.
	var ctxErr error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if err == context.Canceled || err == context.DeadlineExceeded {
			if ctxErr == nil {
				ctxErr = err
			}
			continue
		}
		return records, fmt.Errorf("campaign: %s: %w", jobs[i], err)
	}
	return records, ctxErr
}

// RunAll executes raw sim.Options concurrently (bounded by GOMAXPROCS)
// and returns results in input order — the scheduler entry point for
// callers like internal/experiments whose grids are built in Go rather
// than declared as a Spec.
func RunAll(ctx context.Context, opts []sim.Options) ([]*sim.Result, error) {
	results := make([]*sim.Result, len(opts))
	all := make([]int, len(opts))
	for i := range all {
		all[i] = i
	}
	errs := runPool(ctx, runtime.GOMAXPROCS(0), len(opts), all, func(i int) error {
		var err error
		results[i], err = sim.Run(opts[i])
		return err
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("campaign: %s/%s: %w",
				opts[i].Workload.Name, opts[i].Policy, err)
		}
	}
	return results, nil
}

// runPool is the shared bounded worker pool: it executes fn(i) for each
// listed index on workers goroutines and returns n per-index errors.
// Once ctx is cancelled, indices not yet started record ctx.Err()
// without running fn; work already in flight finishes.
func runPool(ctx context.Context, workers, n int, indices []int, fn func(int) error) []error {
	errs := make([]error, n)
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = fn(i)
			}
		}()
	}
	for _, i := range indices {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	return errs
}
