package campaign

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
)

func TestSpecJobsExpansion(t *testing.T) {
	spec := Spec{
		Workloads: []string{"2W1", "2W3"},
		Policies:  []string{"ICOUNT", "MFLUSH"},
		Seeds:     []uint64{1, 2, 3},
		Tweaks:    []Tweak{{}, {Name: "small-mshr", MSHREntries: 4}},
		Cycles:    1000, Warmup: 500,
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2*2*2*3 {
		t.Fatalf("jobs = %d, want 24", len(jobs))
	}
	// Deterministic order: workload-major, then policy, then tweak,
	// then seed.
	first := jobs[0]
	if first.Workload.Name != "2W1" || first.Policy != sim.SpecICOUNT ||
		!first.Tweak.IsZero() || first.Seed != 1 {
		t.Fatalf("first job = %v", first)
	}
	if jobs[1].Seed != 2 || jobs[3].Tweak.Name != "small-mshr" {
		t.Fatalf("expansion order wrong: %v / %v", jobs[1], jobs[3])
	}
	if jobs[12].Workload.Name != "2W3" {
		t.Fatalf("workload-major order wrong: %v", jobs[12])
	}
	// Expansion is reproducible and keys are unique.
	again, _ := spec.Jobs()
	seen := make(map[string]bool)
	for i := range jobs {
		if jobs[i] != again[i] {
			t.Fatalf("expansion not deterministic at %d", i)
		}
		k := jobs[i].Key()
		if seen[k] {
			t.Fatalf("duplicate key for %v", jobs[i])
		}
		seen[k] = true
	}
}

// TestSpecJobsExpansionBounded: a spec whose cartesian product is
// absurdly large must be rejected before any allocation is sized by it
// — a hostile daemon submission (or fuzzer input) listing thousands of
// distinct FLUSH-S<n> policies and seeds would otherwise request a
// multi-gigabyte job slice and crash the process instead of getting a
// 400.
func TestSpecJobsExpansionBounded(t *testing.T) {
	policies := make([]string, 2000)
	for i := range policies {
		policies[i] = "FLUSH-S" + strconv.Itoa(i+1)
	}
	seeds := make([]uint64, 2000)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	_, err := Spec{
		Workloads: []string{"2W1"}, Policies: policies, Seeds: seeds,
		Cycles: 1000,
	}.Jobs()
	if err == nil || !strings.Contains(err.Error(), "split the sweep") {
		t.Fatalf("4M-job spec error = %v, want expansion-bound rejection", err)
	}
}

func TestSpecJobsDefaults(t *testing.T) {
	jobs, err := Spec{Workloads: []string{"2W1"}, Policies: []string{"ICOUNT"},
		Cycles: 100}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Seed != 1 || !jobs[0].Tweak.IsZero() {
		t.Fatalf("defaults wrong: %v", jobs)
	}
}

func TestSpecJobsErrors(t *testing.T) {
	bad := []Spec{
		{Workloads: []string{"2W1"}, Policies: []string{"ICOUNT"}},             // no cycles
		{Policies: []string{"ICOUNT"}, Cycles: 100},                            // no workloads
		{Workloads: []string{"2W1"}, Cycles: 100},                              // no policies
		{Workloads: []string{"nope"}, Policies: []string{"ICOUNT"}, Cycles: 1}, // bad workload
		{Workloads: []string{"2W1"}, Policies: []string{"banana"}, Cycles: 1},  // bad policy
		{Workloads: []string{"2W1"}, Policies: []string{"ICOUNT"}, Cycles: 1,
			Tweaks: []Tweak{{Name: "tiny-mshr", MSHREntries: -4}}}, // negative knob
		{Workloads: []string{"2W1", "2W1"}, Policies: []string{"ICOUNT"}, Cycles: 1}, // dup workload
		{Workloads: []string{"2W1"}, Policies: []string{"ICOUNT", "icount"},
			Cycles: 1}, // dup policy (case-folded by the parser)
		{Workloads: []string{"2W1"}, Policies: []string{"ICOUNT"},
			Seeds: []uint64{1, 2, 1}, Cycles: 1}, // dup seed
		{Workloads: []string{"2W1"}, Policies: []string{"ICOUNT"}, Cycles: 1,
			Tweaks: []Tweak{{Name: "a", BusDelay: 4}, {Name: "b", BusDelay: 4}}}, // dup tweak content
	}
	for i, s := range bad {
		if _, err := s.Jobs(); err == nil {
			t.Errorf("spec %d accepted", i)
		}
	}
}

func TestJobKeyContent(t *testing.T) {
	base := Job{Policy: sim.SpecMFLUSH, Seed: 1, Cycles: 100, Warmup: 50}
	renamed := base
	renamed.Tweak.Name = "alias"
	if base.Key() != renamed.Key() {
		t.Fatal("renaming a tweak must not invalidate stored results")
	}
	for _, mutate := range []func(*Job){
		func(j *Job) { j.Seed = 2 },
		func(j *Job) { j.Cycles = 200 },
		func(j *Job) { j.Warmup = 60 },
		func(j *Job) { j.Policy = sim.SpecICOUNT },
		func(j *Job) { j.Tweak.MSHREntries = 8 },
		func(j *Job) { j.Tweak.MainMemoryLatency = 400 },
	} {
		j := base
		mutate(&j)
		if j.Key() == base.Key() {
			t.Errorf("parameter change did not change key: %v", j)
		}
	}
}

func TestTweakApplyAndLabel(t *testing.T) {
	tw := Tweak{MSHREntries: 8, L2SizeBytes: 3072 * 256, BusDelay: 4,
		MainMemoryLatency: 400, RegReservePerThread: 48}
	cfg := config.Default(1)
	j := Job{Tweak: tw, Cycles: 10}
	opt := j.Options()
	if opt.Tweak == nil {
		t.Fatal("non-zero tweak produced no Options.Tweak")
	}
	opt.Tweak(&cfg)
	if cfg.Core.MSHREntries != 8 || cfg.Mem.L2.SizeBytes != 3072*256 ||
		cfg.Mem.BusDelay != 4 || cfg.Mem.MainMemoryLatency != 400 ||
		cfg.Core.RegReservePerThread != 48 {
		t.Fatalf("apply missed fields: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("tweaked config invalid: %v", err)
	}
	if (Tweak{}).Label() != "baseline" {
		t.Fatal("zero tweak label")
	}
	if (Tweak{Name: "x"}).Label() != "x" {
		t.Fatal("named tweak label")
	}
	if lbl := (Tweak{BusDelay: 4}).Label(); !strings.Contains(lbl, "bus=4") {
		t.Fatalf("anonymous tweak label = %q", lbl)
	}
	if (Job{Policy: sim.SpecICOUNT, Cycles: 10}).Options().Tweak != nil {
		t.Fatal("zero tweak should leave Options.Tweak nil")
	}
}

func TestReadSpec(t *testing.T) {
	spec, err := ReadSpec(strings.NewReader(`{
		"workloads": ["2W1"], "policies": ["MFLUSH", "FLUSH-S30"],
		"seeds": [1, 2], "cycles": 5000, "warmup": 2000,
		"tweaks": [{"name": "slow-mem", "main_memory_latency": 500}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Policies) != 2 || spec.Tweaks[0].MainMemoryLatency != 500 {
		t.Fatalf("spec = %+v", spec)
	}
	if _, err := ReadSpec(strings.NewReader(`{"workloadz": []}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ReadSpec(strings.NewReader(`{`)); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}
