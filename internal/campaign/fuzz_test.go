package campaign

import (
	"bytes"
	"testing"
)

// FuzzReadSpec feeds arbitrary bytes through the exact path a daemon
// submission takes: ReadSpec (strict JSON decode) then Spec.Jobs
// (validation + cartesian expansion). Properties: no input panics or
// OOMs the process (hostile specs must be *rejected*, not expanded —
// the expansion bound in Jobs exists because a fuzzer-sized spec of
// distinct FLUSH-S<n> policies × seeds otherwise requests a
// multi-gigabyte slice), every accepted job has a well-formed unique
// key, and the cluster wire encoding round-trips each job to the same
// key — the invariant remote workers rely on.
// The seed corpus is the spec bodies exercised across the test suites
// (server submissions, CLI spec files, the client demo, rejected specs).
func FuzzReadSpec(f *testing.F) {
	for _, s := range []string{
		`{"workloads":["2W1"],"policies":["ICOUNT","MFLUSH"],"seeds":[1,2],"cycles":1000}`,
		`{"workloads":["2W1","2W3"],"policies":["ICOUNT","MFLUSH"],"seeds":[1,2],"cycles":20000,"warmup":5000}`,
		`{"workloads":["4W1"],"policies":["FLUSH-S30"],"seeds":[7],"cycles":1000,"warmup":500,` +
			`"tweaks":[{"name":"slow-mem","main_memory_latency":500}]}`,
		`{"workloads":["8W3"],"policies":["ICOUNT","FLUSH-S30","FLUSH-NS","STALL-S100","MFLUSH","MFLUSH-H4"],` +
			`"seeds":[1,2,3,4,5],"cycles":200000,"warmup":300000,` +
			`"tweaks":[{"mshr_entries":4},{"l2_size_bytes":393216},{"bus_delay":8},{"reg_reserve_per_thread":12}]}`,
		``,
		`{not json`,
		`{"workloads":["2W1"]}`,
		`{"workloads":["2W1"],"policies":["ICOUNT"],"cycles":1000,"bogus":1}`,
		`{"workloads":["NOPE"],"policies":["ICOUNT"],"cycles":1000}`,
		`{"workloads":["2W1"],"policies":["ICOUNT"],"seeds":[1,1],"cycles":1000}`,
		`{"workloads":["2W1"],"policies":["ICOUNT"],"cycles":1000,"tweaks":[{"mshr_entries":-1}]}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ReadSpec(bytes.NewReader(data))
		if err != nil {
			return // malformed JSON only needs to not panic
		}
		jobs, err := spec.Jobs()
		if err != nil {
			return // invalid specs only need to be rejected cleanly
		}
		// Checking every job of a huge-but-legal expansion would make
		// the fuzzer crawl; the properties are per-job, so a prefix
		// suffices.
		if len(jobs) > 512 {
			jobs = jobs[:512]
		}
		seen := make(map[string]bool, len(jobs))
		for _, j := range jobs {
			key := j.Key()
			if len(key) != 32 {
				t.Fatalf("job %s: malformed key %q", j, key)
			}
			if seen[key] {
				t.Fatalf("spec %q expanded two jobs with key %s", data, key)
			}
			seen[key] = true
			w := j.Wire()
			if w.Key != key {
				t.Fatalf("wire key %q != job key %q", w.Key, key)
			}
			back, err := w.Job()
			if err != nil {
				t.Fatalf("job %s: wire form does not resolve back: %v", j, err)
			}
			if back.Key() != key {
				t.Fatalf("job %s: wire round trip changed key %q -> %q", j, key, back.Key())
			}
		}
	})
}
