package campaign

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// writeScenarioFile writes a minimal valid scenario and returns its
// path and content digest.
func writeScenarioFile(t *testing.T, dir, name, salt string) (string, string) {
	t.Helper()
	s := &trace.Scenario{Threads: [][]isa.Inst{{
		{PC: 0x1000, Class: isa.ClassLoad, Dest: 3, Src1: isa.InvalidReg, Src2: isa.InvalidReg, Addr: 0x100, MissLatency: 500},
		{PC: 0x1004, Class: isa.ClassInt, Dest: 4, Src1: 3, Src2: isa.InvalidReg},
		{PC: 0x1008, Class: isa.ClassBranch, Dest: isa.InvalidReg, Src1: 4, Src2: isa.InvalidReg, Taken: true, Target: 0x1000},
	}}, Phases: []trace.PhaseMark{{Thread: 0, Index: 0, Label: "p-" + salt}}}
	var buf bytes.Buffer
	if err := trace.WriteScenarioJSONL(&buf, s); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	digest, err := trace.SumFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, digest
}

func traceJob(ref *TraceRef) Job {
	return Job{Trace: ref, Policy: mustParse("ICOUNT"), Seed: 1, Cycles: 1000, Warmup: 100}
}

func mustParse(s string) sim.PolicySpec {
	p, err := sim.ParseSpec(s)
	if err != nil {
		panic(err)
	}
	return p
}

// TestTraceJobKeyFrozen pins the trace-job key material the way the
// Interval test froze the synthetic material in PR 5: this exact hex
// must never change, or every trace result in existing stores becomes
// unaddressable. It also re-pins a synthetic key to prove the trace
// axis did not disturb pre-trace material.
func TestTraceJobKeyFrozen(t *testing.T) {
	ref := &TraceRef{
		Name:   "trace:whatever.trace",
		Path:   "whatever.trace",
		Digest: strings.Repeat("a", 64),
	}
	if got, want := traceJob(ref).Key(), "637b85f41f7870055dbc6ddb79e7b4db"; got != want {
		t.Errorf("trace job key = %s, want frozen %s", got, want)
	}
	w, _ := workload.ByName("2W1")
	syn := Job{Workload: w, Policy: mustParse("ICOUNT"), Seed: 1, Cycles: 1000, Warmup: 100}
	if got, want := syn.Key(), "064b087d1c5326475010a4f286cabea2"; got != want {
		t.Errorf("synthetic job key = %s, want frozen %s", got, want)
	}
}

// TestTraceJobKeysDistinct: the digest, not the path or name, is the
// identity — distinct content gets distinct keys, renamed files keep
// theirs.
func TestTraceJobKeysDistinct(t *testing.T) {
	a := traceJob(&TraceRef{Name: "trace:a", Path: "a", Digest: strings.Repeat("a", 64)})
	b := traceJob(&TraceRef{Name: "trace:a", Path: "a", Digest: strings.Repeat("b", 64)})
	if a.Key() == b.Key() {
		t.Fatal("different trace digests share a job key")
	}
	renamed := traceJob(&TraceRef{Name: "trace:elsewhere", Path: "elsewhere", Digest: strings.Repeat("a", 64)})
	if a.Key() != renamed.Key() {
		t.Fatal("renaming a trace file changed its job key")
	}
}

func TestTraceWireRoundTrip(t *testing.T) {
	ref := &TraceRef{Name: "trace:x.trace", Path: "x.trace", Digest: strings.Repeat("c", 64)}
	j := traceJob(ref)
	w := j.Wire()
	if w.Workload != "" {
		t.Errorf("trace wire job carries workload %q", w.Workload)
	}
	back, err := w.Job()
	if err != nil {
		t.Fatalf("wire round trip: %v", err)
	}
	if back.Key() != w.Key || back.Key() != j.Key() {
		t.Fatalf("keys diverged: job %s wire %s back %s", j.Key(), w.Key, back.Key())
	}
	if !reflect.DeepEqual(back.Trace, ref) {
		t.Fatalf("trace ref did not round trip: %+v", back.Trace)
	}

	// A worker build that dropped the trace field must fail decode, not
	// silently simulate something else.
	raw, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "trace")
	stripped, _ := json.Marshal(m)
	var w2 WireJob
	if err := json.Unmarshal(stripped, &w2); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Job(); err == nil {
		t.Fatal("wire job with dropped trace field decoded")
	}

	// Both a workload and a trace is a protocol violation.
	w3 := w
	w3.Workload = "2W1"
	if _, err := w3.Job(); err == nil {
		t.Fatal("wire job naming both workload and trace decoded")
	}
}

// TestTraceGangKeySeparation: trace jobs must never batch with
// synthetic jobs (their stream memoisation would mis-share), and only
// batch with replays of byte-identical content.
func TestTraceGangKeySeparation(t *testing.T) {
	w, _ := workload.ByName("2W1")
	syn := Job{Workload: w, Policy: mustParse("ICOUNT"), Seed: 1, Cycles: 1000, Warmup: 100}
	tr := traceJob(&TraceRef{Name: "trace:a", Path: "a", Digest: strings.Repeat("a", 64)})
	tr2 := traceJob(&TraceRef{Name: "trace:b", Path: "b", Digest: strings.Repeat("b", 64)})
	same := traceJob(&TraceRef{Name: "trace:a2", Path: "a2", Digest: strings.Repeat("a", 64)})
	same.Policy = mustParse("MFLUSH")

	if syn.GangKey() == tr.GangKey() {
		t.Fatal("trace job shares a gang key with a synthetic job")
	}
	if tr.GangKey() == tr2.GangKey() {
		t.Fatal("distinct trace contents share a gang key")
	}
	if tr.GangKey() != same.GangKey() {
		t.Fatal("identical trace contents (different policies) do not share a gang key")
	}
	groups := GangGroups([]Job{syn, tr, same, tr2}, 4)
	for _, g := range groups {
		hasSyn, hasTrace := false, false
		for _, i := range g {
			if []Job{syn, tr, same, tr2}[i].Trace == nil {
				hasSyn = true
			} else {
				hasTrace = true
			}
		}
		if hasSyn && hasTrace {
			t.Fatalf("group %v mixes trace and synthetic jobs", g)
		}
	}
}

func TestSpecTraceAxis(t *testing.T) {
	dir := t.TempDir()
	pathA, digestA := writeScenarioFile(t, dir, "a.trace", "A")
	pathB, digestB := writeScenarioFile(t, dir, "b.trace", "B")

	spec := Spec{
		Workloads: []string{"2W1", "trace:" + pathA, "trace:" + pathB},
		Policies:  []string{"ICOUNT"},
		Cycles:    1000,
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("got %d jobs, want 3", len(jobs))
	}
	if jobs[0].Trace != nil || jobs[1].Trace == nil || jobs[2].Trace == nil {
		t.Fatalf("trace refs landed on the wrong jobs: %+v", jobs)
	}
	if jobs[1].Trace.Digest != digestA || jobs[2].Trace.Digest != digestB {
		t.Fatalf("digests not resolved from file content")
	}
	if jobs[1].Key() == jobs[2].Key() {
		t.Fatal("two different traces share a job key")
	}

	// Same bytes under two names is one workload: reject like any
	// duplicate axis entry.
	dupPath := filepath.Join(dir, "a-copy.trace")
	raw, _ := os.ReadFile(pathA)
	if err := os.WriteFile(dupPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	dup := Spec{
		Workloads: []string{"trace:" + pathA, "trace:" + dupPath},
		Policies:  []string{"ICOUNT"},
		Cycles:    1000,
	}
	if _, err := dup.Jobs(); err == nil {
		t.Fatal("duplicate trace content accepted")
	}

	missing := Spec{Workloads: []string{"trace:" + filepath.Join(dir, "nope")}, Policies: []string{"ICOUNT"}, Cycles: 1000}
	if _, err := missing.Jobs(); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func TestTraceSimOptions(t *testing.T) {
	dir := t.TempDir()
	path, digest := writeScenarioFile(t, dir, "s.trace", "S")
	ref := &TraceRef{Name: "trace:" + path, Path: path, Digest: digest}
	j := traceJob(ref)

	o, err := j.SimOptions()
	if err != nil {
		t.Fatal(err)
	}
	if o.Name != ref.Name {
		t.Errorf("options name %q, want %q", o.Name, ref.Name)
	}
	if len(o.ThreadTraces) != 1 || len(o.ThreadTraces[0]) != 3 {
		t.Fatalf("thread traces not loaded: %+v", o.ThreadTraces)
	}
	if o.ThreadTraces[0][0].MissLatency != 500 {
		t.Errorf("miss-latency override lost in load: %+v", o.ThreadTraces[0][0])
	}

	// A file that drifted from the digest the key was computed over
	// must fail the load, not simulate the wrong content. (The ref's
	// digest must be one this process has not verified yet: loads are
	// memoised by digest, and a digest already verified in memory is
	// served from the memo regardless of what the path holds now.)
	_, freshDigest := writeScenarioFile(t, dir, "d.trace", "DRIFT")
	if freshDigest == digest {
		t.Fatal("test setup: drifted file has the same digest")
	}
	bad := traceJob(&TraceRef{Name: "trace:" + path, Path: path, Digest: freshDigest})
	if _, err := bad.SimOptions(); err == nil || !strings.Contains(err.Error(), "digest") {
		t.Fatalf("drifted trace load error = %v, want digest mismatch", err)
	}

	// Options is the synthetic-only path and must refuse loudly.
	defer func() {
		if recover() == nil {
			t.Fatal("Options on a trace job did not panic")
		}
	}()
	j.Options()
}
