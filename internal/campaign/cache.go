package campaign

import (
	"context"
	"sort"
	"sync"

	"repro/internal/sim"
)

// Cache is a content-addressed, single-flight result cache over a Store:
// a job is simulated at most once per key, no matter how many concurrent
// callers request it or how often the process restarts. The first caller
// for a key becomes the leader and runs the simulation; callers arriving
// while it is in flight wait for the leader's result instead of starting
// a duplicate run; later callers are served from memory or the store.
// The daemon (internal/server) keeps one Cache shared by every campaign,
// which is what makes identical requests from different clients free.
//
// Simulations are deterministic in their Job parameters, so a cached
// Record is byte-for-byte the record a fresh run would produce — cache
// hits are indistinguishable from recomputation, forever.
type Cache struct {
	runner func(sim.Options) (*sim.Result, error)
	// jobRun, when non-nil (NewJobCache), replaces runner with a
	// job-level executor that sees the whole Job and the leader's
	// context — the hook the cluster router uses to send misses to
	// remote workers instead of the local simulator.
	jobRun func(context.Context, Job) (Record, error)
	store  *Store

	mu sync.Mutex
	// done memoises completed records only when no store backs the
	// cache; with a store, its in-memory index already holds every
	// record, so a second map would just double the footprint.
	done     map[string]Record
	inflight map[string]*flight // keys currently simulating
	hits     uint64
	misses   uint64
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	rec  Record
	err  error
}

// NewCache returns a cache backed by store (nil: in-memory only, results
// live for the process lifetime) executing misses with runner (nil:
// sim.Run). Completed records are appended to the store as they finish,
// so the cache survives restarts with the same crash-consistency
// guarantees as campaign resume.
func NewCache(store *Store, runner func(sim.Options) (*sim.Result, error)) *Cache {
	if runner == nil {
		runner = sim.Run
	}
	return &Cache{
		runner:   runner,
		store:    store,
		done:     make(map[string]Record),
		inflight: make(map[string]*flight),
	}
}

// NewJobCache returns a cache like NewCache's, but executing misses
// with a job-level runner that receives the full Job and the leader
// caller's context. This is the constructor the daemon's cluster mode
// uses: the runner can route the job to a remote worker (and honour
// cancellation while the job is still queued) instead of simulating in
// process. Single-flight, store persistence and hit accounting are
// identical to NewCache. The runner must return a Record a local run
// would have produced byte-for-byte (NewRecord over a deterministic
// simulation does); the cache stamps the job's key on it before
// persisting.
func NewJobCache(store *Store, run func(context.Context, Job) (Record, error)) *Cache {
	return &Cache{
		jobRun:   run,
		store:    store,
		done:     make(map[string]Record),
		inflight: make(map[string]*flight),
	}
}

// Do returns the record for job j, computing it at most once per key
// across all concurrent callers and, when a store backs the cache, across
// process restarts. hit reports whether the result was served without a
// fresh simulation (from memory, the store, or another caller's in-flight
// run). Errors are never cached: a failed job can be retried. A caller
// waiting on another caller's in-flight run returns ctx.Err() if ctx is
// cancelled first; a leader running a local simulation always finishes it
// (runs are not interruptible) so the store never loses a completed
// result. A job-level runner (NewJobCache) may instead honour the
// leader's ctx while the job is still queued remotely; waiters that were
// not themselves cancelled transparently retry such abandoned flights.
func (c *Cache) Do(ctx context.Context, j Job) (rec Record, hit bool, err error) {
	key := j.Key()
	c.mu.Lock()
	if rec, ok := c.lookup(key); ok {
		c.hits++
		c.mu.Unlock()
		return relabel(rec, j), true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		// Note: in a shared-scheduler pool this wait holds the caller's
		// worker slot while the leader (which always acquired its own
		// slot first, so there is no deadlock) finishes — idle capacity
		// traded for simplicity.
		select {
		case <-f.done:
			if f.err != nil {
				// The leader aborted on its *own* cancellation (possible
				// only with a job-level runner; local simulations always
				// finish). That is not this caller's cancellation and not
				// a simulation failure — nothing was computed and nothing
				// cached — so retry: this caller becomes the new leader
				// or joins a fresher flight.
				if isCtxErr(f.err) && ctx.Err() == nil {
					return c.Do(ctx, j)
				}
				return Record{}, false, f.err
			}
			c.mu.Lock()
			c.hits++ // count the join only once a result was served
			c.mu.Unlock()
			return relabel(f.rec, j), true, nil
		case <-ctx.Done():
			return Record{}, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	f.rec, f.err = c.compute(ctx, j, key)
	c.mu.Lock()
	if f.err == nil && c.store == nil {
		c.done[key] = f.rec // the store, when present, already holds it
	}
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
	return f.rec, false, f.err
}

// Contains reports whether the cache can already serve j without a
// simulation. Unlike Lookup it counts nothing and returns no record —
// the daemon's admission control uses it to avoid charging queue
// capacity for jobs that are free.
func (c *Cache) Contains(j Job) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.lookup(j.Key())
	return ok
}

// Lookup returns the completed record for j without executing or
// waiting for anything: it consults memory and the store but never
// joins an in-flight run. Counts as a cache hit when it succeeds.
// Schedulers use it to serve already-cached jobs before competing for
// simulation slots, so a fully-cached campaign costs no queueing.
func (c *Cache) Lookup(j Job) (Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.lookup(j.Key())
	if !ok {
		return Record{}, false
	}
	c.hits++
	return relabel(rec, j), true
}

// lookup consults the completed-record index — the store's when one
// backs the cache, the in-memory map otherwise. The caller holds c.mu.
func (c *Cache) lookup(key string) (Record, bool) {
	if c.store != nil {
		return c.store.Get(key)
	}
	rec, ok := c.done[key]
	return rec, ok
}

// compute executes the miss — through the job-level runner when one is
// set (cluster routing), the plain simulator runner otherwise — and
// persists the record. ctx reaches only the job-level runner: local
// simulations are not interruptible, so the plain path always finishes.
func (c *Cache) compute(ctx context.Context, j Job, key string) (Record, error) {
	var rec Record
	if c.jobRun != nil {
		r, err := c.jobRun(ctx, j)
		if err != nil {
			return Record{}, err
		}
		rec = r
		rec.Key = key // the store must index by this job's key, whatever the runner set
	} else {
		res, err := runJob(c.runner, j)
		if err != nil {
			return Record{}, err
		}
		rec = NewRecord(j, res)
	}
	if c.store != nil {
		if err := c.store.Append(rec); err != nil {
			return Record{}, err
		}
	}
	return rec, nil
}

// NewRecord builds the store record for a completed job. Every path
// that turns a simulation into a record — the local scheduler, the
// cache, remote cluster workers — goes through this one constructor, so
// a record is byte-for-byte identical no matter where the job ran.
func NewRecord(j Job, res *sim.Result) Record {
	return Record{
		Key: j.Key(), Workload: res.Workload, Policy: res.Policy,
		Tweak: j.Tweak.Label(), Seed: j.Seed, Summary: res.Summary(),
	}
}

// relabel refreshes the display-only tweak label: job keys hash tweak
// content, not names, so a cached record may predate a spec rename.
func relabel(rec Record, j Job) Record {
	rec.Tweak = j.Tweak.Label()
	return rec
}

// Len returns the number of distinct results the cache can serve without
// simulating: records completed or observed this process plus everything
// in the backing store.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.store == nil {
		return len(c.done)
	}
	return c.store.Len()
}

// Keys returns the sorted job keys of every result the cache can serve
// — the content-addressed index the daemon's cache endpoint exposes.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.store != nil {
		return c.store.Keys()
	}
	keys := make([]string, 0, len(c.done))
	for k := range c.done {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Stats returns how many Do calls were served without a fresh simulation
// (hits — memory, store, or in-flight joins) and how many started one
// (misses).
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
