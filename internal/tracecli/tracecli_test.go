package tracecli

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/trace"
)

// TestSynthesizeDeterministic freezes the synthesizer's contract: the
// same recipe always yields a deep-equal scenario and a byte-identical
// file, across every mode. CI enforces the same property end-to-end by
// running cmd/mflushtrace twice and cmp-ing.
func TestSynthesizeDeterministic(t *testing.T) {
	recipes := map[string]Config{
		"bench": {Mode: "bench", Benches: []string{"mcf"}, N: 5000, Threads: 2, Seed: 3},
		"ramp":  {Mode: "ramp", Benches: []string{"art"}, N: 5000, Seed: 3},
		"sweep": {Mode: "sweep", Benches: []string{"gzip"}, N: 5000, Segments: 3, Seed: 3},
		"burst": {Mode: "burst", Benches: []string{"mcf"}, N: 5000, Alpha: 1.2, Seed: 3},
		"phase": {Mode: "phase", Benches: []string{"gzip", "art"}, N: 5000, Segments: 5, Seed: 3},
		"mix":   {Mode: "mix", Benches: []string{"mcf", "gzip"}, N: 5000, Seed: 3},
	}
	dir := t.TempDir()
	for name, cfg := range recipes {
		a, err := Synthesize(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := Synthesize(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two syntheses of one recipe differ", name)
		}
		for _, format := range []string{"binary", "jsonl"} {
			p1 := filepath.Join(dir, name+"-1."+format)
			p2 := filepath.Join(dir, name+"-2."+format)
			if err := WriteFile(p1, a, format); err != nil {
				t.Fatalf("%s/%s: %v", name, format, err)
			}
			if err := WriteFile(p2, b, format); err != nil {
				t.Fatalf("%s/%s: %v", name, format, err)
			}
			r1, _ := os.ReadFile(p1)
			r2, _ := os.ReadFile(p2)
			if !bytes.Equal(r1, r2) {
				t.Errorf("%s/%s: files not byte-identical", name, format)
			}
		}
	}
}

// TestLatencyModesInjectOverrides sanity-checks each override schedule:
// the latency modes actually stamp overrides within [LatLo, LatHi] onto
// loads only, and mark their phases.
func TestLatencyModesInjectOverrides(t *testing.T) {
	for _, mode := range []string{"ramp", "sweep", "burst"} {
		cfg := Config{Mode: mode, Benches: []string{"mcf"}, N: 20000,
			Seed: 9, LatLo: 500, LatHi: 3000, TailFrac: 0.2}
		s, err := Synthesize(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		overrides := 0
		for _, in := range s.Threads[0] {
			if in.MissLatency == 0 {
				continue
			}
			overrides++
			if in.Class != isa.ClassLoad {
				t.Fatalf("%s: override on a %v instruction", mode, in.Class)
			}
			if in.MissLatency < 500 || in.MissLatency > 3000 {
				t.Fatalf("%s: override %d outside [500,3000]", mode, in.MissLatency)
			}
		}
		if overrides == 0 {
			t.Errorf("%s: no overrides injected", mode)
		}
		if len(s.Phases) == 0 {
			t.Errorf("%s: no phase marks", mode)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: invalid scenario: %v", mode, err)
		}
	}
}

// TestMixStreamsMatchLiveSynthesis pins the replay-identity contract:
// mix mode records, for thread slot g, exactly the stream a live run
// with the same seed would synthesise for profile g in slot g. A trace
// produced this way replays bit-identically to on-the-fly synthesis.
func TestMixStreamsMatchLiveSynthesis(t *testing.T) {
	const seed, n = 11, 10000
	benches := []string{"mcf", "gzip", "art"}
	s, err := Synthesize(Config{Mode: "mix", Benches: benches, N: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for g, bench := range benches {
		prof, _ := synth.ByName(bench)
		streamSeed, base := sim.ReplayStream(seed, g)
		gen := synth.NewGenerator(prof, streamSeed, base)
		var want isa.Inst
		for i := range s.Threads[g] {
			gen.Next(&want)
			if s.Threads[g][i] != want {
				t.Fatalf("thread %d diverges from live synthesis at inst %d:\n got %+v\nwant %+v",
					g, i, s.Threads[g][i], want)
			}
		}
	}
}

// TestBenchModeKeepsTracegenStream: with an explicit Base, thread 0 is
// the raw (seed, base) generator stream — what cmd/tracegen always
// wrote, so old recipes still produce the same traces.
func TestBenchModeKeepsTracegenStream(t *testing.T) {
	const seed, base, n = 5, uint64(1) << 34, 2000
	s, err := Synthesize(Config{Mode: "bench", Benches: []string{"vpr"}, N: n, Seed: seed, Base: base})
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := synth.ByName("vpr")
	gen := synth.NewGenerator(prof, seed, base)
	var want isa.Inst
	for i := range s.Threads[0] {
		gen.Next(&want)
		if s.Threads[0][i] != want {
			t.Fatalf("bench stream diverges from tracegen's at inst %d", i)
		}
	}
}

func TestSynthesizeRejects(t *testing.T) {
	cases := map[string]Config{
		"unknown mode":      {Mode: "warp", Benches: []string{"mcf"}},
		"unknown bench":     {Benches: []string{"nope"}},
		"no bench":          {},
		"lat inverted":      {Benches: []string{"mcf"}, LatLo: 900, LatHi: 500},
		"tail-frac > 1":     {Benches: []string{"mcf"}, TailFrac: 1.5},
		"phase needs two":   {Mode: "phase", Benches: []string{"mcf"}},
		"mix thread count":  {Mode: "mix", Benches: []string{"mcf", "gzip"}, Threads: 3},
		"too many threads":  {Benches: []string{"mcf"}, Threads: 65},
		"negative segments": {Benches: []string{"mcf"}, Mode: "sweep", Segments: -1},
	}
	for name, cfg := range cases {
		if _, err := Synthesize(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestWriteFileRoundTrips: what WriteFile persists, trace.LoadScenario
// reads back identically, in both scenario encodings.
func TestWriteFileRoundTrips(t *testing.T) {
	s, err := Synthesize(Config{Mode: "sweep", Benches: []string{"art"}, N: 3000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"binary", "jsonl"} {
		path := filepath.Join(t.TempDir(), "x."+format)
		if err := WriteFile(path, s, format); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		got, err := trace.LoadScenario(path)
		if err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("%s round trip diverged", format)
		}
	}
}

// TestWriteFileAtomic is the regression for the tracegen
// partial-file-on-error bug: a failed write must leave neither a
// truncated output file nor a stray temp file, and must not clobber
// whatever already lives at the destination.
func TestWriteFileAtomic(t *testing.T) {
	s, err := Synthesize(Config{Mode: "bench", Benches: []string{"mcf"}, N: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad format leaves no residue", func(t *testing.T) {
		dir := t.TempDir()
		if err := WriteFile(filepath.Join(dir, "out.trace"), s, "tar"); err == nil {
			t.Fatal("unknown format accepted")
		}
		ents, _ := os.ReadDir(dir)
		if len(ents) != 0 {
			t.Fatalf("failed write left files behind: %v", ents)
		}
	})

	t.Run("failed rename preserves destination", func(t *testing.T) {
		dir := t.TempDir()
		// A directory at the destination makes the final rename fail
		// after a fully successful write — the step where the old code
		// would already have truncated the target.
		dst := filepath.Join(dir, "out.trace")
		if err := os.Mkdir(dst, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := WriteFile(dst, s, "binary"); err == nil {
			t.Fatal("rename onto a directory succeeded")
		}
		ents, _ := os.ReadDir(dir)
		if len(ents) != 1 || !ents[0].IsDir() {
			t.Fatalf("failed rename disturbed the directory: %v", ents)
		}
	})

	t.Run("success replaces atomically with open perms", func(t *testing.T) {
		dir := t.TempDir()
		dst := filepath.Join(dir, "out.trace")
		if err := os.WriteFile(dst, []byte("old"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := WriteFile(dst, s, "binary"); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(dst)
		if err != nil {
			t.Fatal(err)
		}
		if got := fi.Mode().Perm(); got != 0o644 {
			t.Errorf("perms = %v, want 0644", got)
		}
		if _, err := trace.LoadScenario(dst); err != nil {
			t.Errorf("replaced file unreadable: %v", err)
		}
		ents, _ := os.ReadDir(dir)
		if len(ents) != 1 {
			t.Errorf("temp residue after success: %v", ents)
		}
	})
}

// TestWriteFileMftraceGuards: the legacy format cannot express the
// scenario extensions, and saying so beats silently dropping them.
func TestWriteFileMftraceGuards(t *testing.T) {
	dir := t.TempDir()
	multi := &trace.Scenario{Threads: [][]isa.Inst{{{Class: isa.ClassInt}}, {{Class: isa.ClassInt}}}}
	if err := WriteFile(filepath.Join(dir, "a"), multi, "mftrace"); err == nil {
		t.Error("mftrace accepted two threads")
	}
	marked := &trace.Scenario{
		Threads: [][]isa.Inst{{{Class: isa.ClassInt}}},
		Phases:  []trace.PhaseMark{{Label: "x"}},
	}
	if err := WriteFile(filepath.Join(dir, "b"), marked, "mftrace"); err == nil {
		t.Error("mftrace accepted phase marks")
	}
	far := &trace.Scenario{Threads: [][]isa.Inst{{{Class: isa.ClassLoad, MissLatency: 900}}}}
	if err := WriteFile(filepath.Join(dir, "c"), far, "mftrace"); err == nil {
		t.Error("mftrace accepted miss-latency overrides")
	}
	ok := &trace.Scenario{Threads: [][]isa.Inst{{{Class: isa.ClassInt, PC: 4}}}}
	if err := WriteFile(filepath.Join(dir, "d"), ok, "mftrace"); err != nil {
		t.Errorf("plain single-thread scenario rejected: %v", err)
	}
	s, err := trace.LoadScenario(filepath.Join(dir, "d"))
	if err != nil || len(s.Threads) != 1 {
		t.Fatalf("legacy write unreadable: %v", err)
	}
}

// TestMain covers the CLI shell: -list, the tracegen-compat defaults,
// flag validation, and that both program personalities share one code
// path.
func TestMain(t *testing.T) {
	run := func(prog string, argv ...string) (int, string, string) {
		var out, errb strings.Builder
		code := Main(prog, argv, &out, &errb)
		return code, out.String(), errb.String()
	}

	t.Run("list", func(t *testing.T) {
		code, out, _ := run("mflushtrace", "-list")
		if code != 0 || !strings.Contains(out, "mcf") || !strings.Contains(out, "memory-bound") {
			t.Fatalf("code %d, out %q", code, out)
		}
	})

	t.Run("scenario write", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "m.trace")
		code, out, errs := run("mflushtrace", "-mode", "mix", "-bench", "mcf,gzip", "-n", "1000", "-o", path)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, errs)
		}
		if !strings.Contains(out, "2 threads") {
			t.Fatalf("summary line %q", out)
		}
		s, err := trace.LoadScenario(path)
		if err != nil || len(s.Threads) != 2 {
			t.Fatalf("output unreadable: %v", err)
		}
	})

	t.Run("tracegen legacy defaults", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "mcf.trace")
		code, _, errs := run("tracegen", "-bench", "mcf", "-n", "500", "-o", path)
		if code != 0 {
			t.Fatalf("exit %d: %s", code, errs)
		}
		// Default format is legacy MFTRACE1 with the historical base.
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(raw, []byte("MFTRACE1")) {
			t.Fatalf("tracegen default output not MFTRACE1: %q", raw[:8])
		}
		prof, _ := synth.ByName("mcf")
		gen := synth.NewGenerator(prof, 1, 1<<34)
		s, err := trace.LoadScenario(path)
		if err != nil {
			t.Fatal(err)
		}
		var want isa.Inst
		gen.Next(&want)
		if s.Threads[0][0] != want {
			t.Fatal("tracegen stream no longer matches the historical (seed, base) derivation")
		}
	})

	t.Run("scenario modes need -o", func(t *testing.T) {
		if code, _, _ := run("mflushtrace", "-mode", "mix", "-bench", "mcf,gzip", "-n", "100"); code == 0 {
			t.Fatal("mix mode without -o succeeded")
		}
	})

	t.Run("bad flags fail", func(t *testing.T) {
		if code, _, _ := run("mflushtrace", "-mode", "warp", "-bench", "mcf", "-o", "x"); code == 0 {
			t.Fatal("unknown mode accepted")
		}
		if code, _, _ := run("mflushtrace", "-bench", "mcf", "-lat-lo", "4294967295", "-o", "x"); code == 0 {
			t.Fatal("absurd latency accepted")
		}
	})
}
