// Package tracecli implements the trace synthesizer behind both
// cmd/mflushtrace and its legacy alias cmd/tracegen — one entry point
// for every trace file the repo writes. Synthesis is fully
// deterministic: the same mode, flags and seed always produce a
// byte-identical file (CI runs the tool twice and cmps), so a trace's
// content digest — which campaign job keys hash — is reproducible from
// its recipe.
//
// Modes:
//
//	bench  one benchmark, recorded verbatim (tracegen compatibility;
//	       supports the legacy MFTRACE1 output format)
//	ramp   miss-latency overrides ramp linearly from lat-lo to lat-hi
//	       across the stream on a fraction of loads
//	sweep  stepped latency levels, one per segment, with phase markers
//	burst  alternating calm/burst segments; burst loads draw their
//	       override from a Pareto tail (lat-lo scale, -alpha shape)
//	phase  two benchmarks alternating segment by segment on one thread
//	       (instruction-mix phase changes, no overrides)
//	mix    one thread per benchmark — a multiprogrammed scenario whose
//	       streams are bit-identical to what a live run would
//	       synthesise for the same seed (sim.ReplayStream derivation)
package tracecli

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/isa"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/trace"
)

// Config is one synthesis recipe. Zero fields take the documented
// defaults in (*Config).setDefaults.
type Config struct {
	// Mode selects the synthesis shape (see the package comment).
	Mode string
	// Benches are the benchmark profiles: one for bench/ramp/sweep/
	// burst, exactly two for phase, one per thread for mix.
	Benches []string
	// N is the instruction count per thread.
	N int
	// Threads replicates single-bench modes across several threads
	// (each thread gets its own stream seed and address base).
	Threads int
	// Seed drives every random draw.
	Seed uint64
	// Base overrides the thread-0 address base in bench mode only —
	// the tracegen-compatible knob. Scenario modes always derive
	// per-thread bases with sim.ReplayStream.
	Base uint64
	// LatLo and LatHi bound the miss-latency overrides in cycles.
	LatLo, LatHi uint32
	// TailFrac is the fraction of loads that receive an override.
	TailFrac float64
	// Alpha is the Pareto shape for burst-mode tail draws.
	Alpha float64
	// Segments is the number of levels (sweep), burst episodes (burst)
	// or alternation segments (phase).
	Segments int
}

func (c *Config) setDefaults() {
	if c.Mode == "" {
		c.Mode = "bench"
	}
	if c.N == 0 {
		c.N = 1_000_000
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.LatLo == 0 {
		c.LatLo = 400
	}
	if c.LatHi == 0 {
		c.LatHi = 2000
	}
	if c.TailFrac == 0 {
		c.TailFrac = 0.05
	}
	if c.Alpha == 0 {
		c.Alpha = 1.5
	}
	if c.Segments == 0 {
		c.Segments = 4
	}
}

func (c *Config) validate() error {
	if c.N < 1 {
		return fmt.Errorf("tracecli: instruction count must be positive")
	}
	if c.Threads < 1 || c.Threads > 64 {
		return fmt.Errorf("tracecli: thread count %d outside [1,64]", c.Threads)
	}
	if c.LatHi < c.LatLo {
		return fmt.Errorf("tracecli: lat-hi %d below lat-lo %d", c.LatHi, c.LatLo)
	}
	if c.TailFrac < 0 || c.TailFrac > 1 {
		return fmt.Errorf("tracecli: tail-frac %g outside [0,1]", c.TailFrac)
	}
	if c.Alpha <= 0 {
		return fmt.Errorf("tracecli: alpha must be positive")
	}
	if c.Segments < 1 {
		return fmt.Errorf("tracecli: segments must be positive")
	}
	if len(c.Benches) == 0 {
		return fmt.Errorf("tracecli: need a benchmark (try -list)")
	}
	return nil
}

// profiles resolves the configured benchmark names.
func (c *Config) profiles() ([]synth.Profile, error) {
	profs := make([]synth.Profile, len(c.Benches))
	for i, name := range c.Benches {
		p, ok := synth.ByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("tracecli: unknown benchmark %q (try -list)", name)
		}
		profs[i] = p
	}
	return profs, nil
}

// Synthesize builds the scenario the config describes. Determinism
// contract: equal Configs yield deep-equal Scenarios, always.
func Synthesize(cfg Config) (*trace.Scenario, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	profs, err := cfg.profiles()
	if err != nil {
		return nil, err
	}
	switch cfg.Mode {
	case "bench":
		return synthBench(cfg, profs)
	case "ramp", "sweep", "burst":
		return synthLatency(cfg, profs)
	case "phase":
		return synthPhase(cfg, profs)
	case "mix":
		return synthMix(cfg, profs)
	default:
		return nil, fmt.Errorf("tracecli: unknown mode %q", cfg.Mode)
	}
}

// threadStream returns thread g's generator. Scenario modes derive the
// (seed, base) pair exactly as a live simulation does, so recorded
// streams replay bit-identically to on-the-fly synthesis.
func threadStream(cfg Config, prof synth.Profile, g int) *synth.Generator {
	seed, base := sim.ReplayStream(cfg.Seed, g)
	return synth.NewGenerator(prof, seed, base)
}

// record captures n instructions from src.
func record(src trace.Source, n int) []isa.Inst {
	out := make([]isa.Inst, n)
	for i := range out {
		src.Next(&out[i])
	}
	return out
}

// synthBench is the tracegen mode: the raw generator stream, no
// overrides, no markers. The tracegen-compatible Base applies to
// thread 0; further threads derive via sim.ReplayStream.
func synthBench(cfg Config, profs []synth.Profile) (*trace.Scenario, error) {
	if len(profs) != 1 {
		return nil, fmt.Errorf("tracecli: bench mode takes exactly one benchmark")
	}
	s := &trace.Scenario{Threads: make([][]isa.Inst, cfg.Threads)}
	for g := range s.Threads {
		var src trace.Source
		if g == 0 && cfg.Base != 0 {
			src = synth.NewGenerator(profs[0], cfg.Seed, cfg.Base)
		} else {
			src = threadStream(cfg, profs[0], g)
		}
		s.Threads[g] = record(src, cfg.N)
	}
	return s, nil
}

// synthLatency implements ramp, sweep and burst: one benchmark's
// stream with miss-latency overrides injected on a fraction of loads,
// the override schedule varying by mode.
func synthLatency(cfg Config, profs []synth.Profile) (*trace.Scenario, error) {
	if len(profs) != 1 {
		return nil, fmt.Errorf("tracecli: %s mode takes exactly one benchmark", cfg.Mode)
	}
	s := &trace.Scenario{Threads: make([][]isa.Inst, cfg.Threads)}
	span := float64(cfg.LatHi - cfg.LatLo)
	for g := range s.Threads {
		insts := record(threadStream(cfg, profs[0], g), cfg.N)
		// The override draw stream is independent of the instruction
		// stream so changing lat knobs never perturbs the program.
		r := rng.New(cfg.Seed*0x9E3779B97F4A7C15 + uint64(g)*0x85EBCA6B + 0xFA57)
		switch cfg.Mode {
		case "ramp":
			s.Phases = append(s.Phases, trace.PhaseMark{Thread: g, Index: 0, Label: "ramp"})
			for i := range insts {
				if insts[i].Class == isa.ClassLoad && r.Float64() < cfg.TailFrac {
					insts[i].MissLatency = cfg.LatLo + uint32(span*float64(i)/float64(len(insts)))
				}
			}
		case "sweep":
			per := (cfg.N + cfg.Segments - 1) / cfg.Segments
			for seg := 0; seg < cfg.Segments; seg++ {
				lat := cfg.LatLo
				if cfg.Segments > 1 {
					lat += uint32(span * float64(seg) / float64(cfg.Segments-1))
				}
				start := seg * per
				if start >= len(insts) {
					break
				}
				end := start + per
				if end > len(insts) {
					end = len(insts)
				}
				s.Phases = append(s.Phases, trace.PhaseMark{
					Thread: g, Index: start, Label: fmt.Sprintf("level-%d", lat),
				})
				for i := start; i < end; i++ {
					if insts[i].Class == isa.ClassLoad && r.Float64() < cfg.TailFrac {
						insts[i].MissLatency = lat
					}
				}
			}
		case "burst":
			// 2*Segments alternating calm/burst windows; burst loads
			// draw a Pareto tail clamped to [lat-lo, lat-hi].
			per := (cfg.N + 2*cfg.Segments - 1) / (2 * cfg.Segments)
			for w := 0; w*per < len(insts); w++ {
				start, end := w*per, (w+1)*per
				if end > len(insts) {
					end = len(insts)
				}
				if w%2 == 0 {
					s.Phases = append(s.Phases, trace.PhaseMark{Thread: g, Index: start, Label: "calm"})
					continue
				}
				s.Phases = append(s.Phases, trace.PhaseMark{Thread: g, Index: start, Label: "burst"})
				for i := start; i < end; i++ {
					if insts[i].Class == isa.ClassLoad && r.Float64() < cfg.TailFrac {
						insts[i].MissLatency = paretoLat(r, cfg)
					}
				}
			}
		}
		s.Threads[g] = insts
	}
	return s, nil
}

// paretoLat draws one Pareto(alpha)-tailed override: scale lat-lo,
// clamped at lat-hi so a single draw cannot stall a run arbitrarily.
func paretoLat(r *rng.Rand, cfg Config) uint32 {
	u := r.Float64()
	if u <= 0 {
		return cfg.LatHi
	}
	lat := float64(cfg.LatLo) * math.Pow(1/u, 1/cfg.Alpha)
	if lat >= float64(cfg.LatHi) {
		return cfg.LatHi
	}
	return uint32(lat)
}

// synthPhase alternates two benchmarks segment by segment on each
// thread: a program whose instruction mix, footprint and branch
// behavior change abruptly at marked boundaries.
func synthPhase(cfg Config, profs []synth.Profile) (*trace.Scenario, error) {
	if len(profs) != 2 {
		return nil, fmt.Errorf("tracecli: phase mode takes exactly two benchmarks (-bench a,b)")
	}
	s := &trace.Scenario{Threads: make([][]isa.Inst, cfg.Threads)}
	for g := range s.Threads {
		seed, base := sim.ReplayStream(cfg.Seed, g)
		gens := [2]*synth.Generator{
			synth.NewGenerator(profs[0], seed, base),
			// The second program lives in its own address space half so
			// the phases do not share cache lines.
			synth.NewGenerator(profs[1], seed^0xA5A5A5A5, base+1<<33),
		}
		insts := make([]isa.Inst, 0, cfg.N)
		per := (cfg.N + cfg.Segments - 1) / cfg.Segments
		for seg := 0; seg < cfg.Segments && len(insts) < cfg.N; seg++ {
			which := seg % 2
			s.Phases = append(s.Phases, trace.PhaseMark{
				Thread: g, Index: len(insts), Label: profs[which].Name,
			})
			n := per
			if rem := cfg.N - len(insts); n > rem {
				n = rem
			}
			insts = append(insts, record(gens[which], n)...)
		}
		s.Threads[g] = insts
	}
	return s, nil
}

// synthMix records one thread per benchmark — the multiprogrammed
// scenario. Thread g's stream is bit-identical to what a live
// simulation with the same seed would synthesise for profile g in
// thread slot g (sim.ReplayStream derivation), which the e2e replay
// identity test enforces.
func synthMix(cfg Config, profs []synth.Profile) (*trace.Scenario, error) {
	if cfg.Threads != 1 && cfg.Threads != len(profs) {
		return nil, fmt.Errorf("tracecli: mix mode takes one thread per benchmark")
	}
	s := &trace.Scenario{Threads: make([][]isa.Inst, len(profs))}
	for g, prof := range profs {
		s.Threads[g] = record(threadStream(cfg, prof, g), cfg.N)
	}
	return s, nil
}
