package tracecli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/synth"
	"repro/internal/trace"
)

// Main runs the synthesizer CLI and returns its exit code. prog selects
// the flag defaults: "tracegen" keeps that command's historical
// behavior (bench mode, legacy MFTRACE1 output, <bench>.trace default
// path); anything else gets mflushtrace defaults (binary scenario
// output, explicit -o). Both commands share every flag, so tracegen is
// a true alias, not a fork.
func Main(prog string, argv []string, stdout, stderr io.Writer) int {
	legacy := prog == "tracegen"
	defFormat := "binary"
	if legacy {
		defFormat = "mftrace"
	}

	fs := flag.NewFlagSet(prog, flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "bench", "synthesis mode: bench, ramp, sweep, burst, phase, mix")
	bench := fs.String("bench", "", "benchmark name(s), comma-separated for phase/mix (see -list)")
	n := fs.Int("n", 1_000_000, "instructions per thread")
	out := fs.String("o", "", "output file (bench mode default: <bench>.trace)")
	seed := fs.Uint64("seed", 1, "synthesis seed")
	base := fs.Uint64("base", 0, "bench mode: thread-0 address-space base (tracegen compatibility)")
	threads := fs.Int("threads", 1, "threads for single-bench modes (mix: one per bench)")
	format := fs.String("format", defFormat, "output encoding: binary (MFSCEN1), jsonl, mftrace (legacy, bench mode only)")
	latLo := fs.Uint64("lat-lo", 400, "miss-latency override floor, cycles")
	latHi := fs.Uint64("lat-hi", 2000, "miss-latency override ceiling, cycles")
	tailFrac := fs.Float64("tail-frac", 0.05, "fraction of loads receiving an override")
	alpha := fs.Float64("alpha", 1.5, "Pareto tail shape for burst mode")
	segments := fs.Int("segments", 4, "latency levels (sweep) / burst episodes (burst) / alternations (phase)")
	list := fs.Bool("list", false, "list available benchmarks")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if legacy && *base == 0 {
		*base = 1 << 34 // tracegen's historical default
	}

	if *list {
		fmt.Fprintln(stdout, "letter  name      class")
		for _, p := range synth.Profiles() {
			class := "compute-bound"
			if p.MemBound() {
				class = "memory-bound"
			}
			fmt.Fprintf(stdout, "%c       %-9s %s\n", p.Letter, p.Name, class)
		}
		return 0
	}

	cfg := Config{
		Mode: *mode, N: *n, Threads: *threads, Seed: *seed, Base: *base,
		LatLo: uint32(*latLo), LatHi: uint32(*latHi),
		TailFrac: *tailFrac, Alpha: *alpha, Segments: *segments,
	}
	if *bench != "" {
		cfg.Benches = splitBenches(*bench)
	}
	if *latLo > 1<<31 || *latHi > 1<<31 {
		fmt.Fprintf(stderr, "%s: latency overrides above 2^31 cycles are not meaningful\n", prog)
		return 2
	}

	scen, err := Synthesize(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", prog, err)
		return 2
	}

	path := *out
	if path == "" {
		if cfg.Mode != "bench" || len(cfg.Benches) != 1 {
			fmt.Fprintf(stderr, "%s: -o is required\n", prog)
			return 2
		}
		path = cfg.Benches[0] + ".trace"
	}
	if err := WriteFile(path, scen, *format); err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", prog, err)
		return 1
	}
	total := 0
	for _, t := range scen.Threads {
		total += len(t)
	}
	fmt.Fprintf(stdout, "wrote %d instructions (%d threads, %d phase marks) to %s\n",
		total, len(scen.Threads), len(scen.Phases), path)
	return 0
}

func splitBenches(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// WriteFile writes the scenario to path in the given encoding —
// atomically: output lands in a temp file in the destination directory
// and is renamed into place only after a clean close, so a mid-write
// failure leaves no truncated file behind (the cmd/tracegen bug this
// package retires).
func WriteFile(path string, s *trace.Scenario, format string) error {
	if format == "mftrace" {
		if len(s.Threads) != 1 || len(s.Phases) > 0 {
			return fmt.Errorf("tracecli: legacy mftrace format holds exactly one thread and no phase marks")
		}
		for _, in := range s.Threads[0] {
			if in.MissLatency != 0 {
				return fmt.Errorf("tracecli: legacy mftrace format cannot carry miss-latency overrides; use -format binary or jsonl")
			}
		}
	}

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tracecli-*")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	switch format {
	case "binary":
		if err := trace.WriteScenarioBinary(tmp, s); err != nil {
			return cleanup(err)
		}
	case "jsonl":
		if err := trace.WriteScenarioJSONL(tmp, s); err != nil {
			return cleanup(err)
		}
	case "mftrace":
		w, err := trace.NewWriter(tmp)
		if err != nil {
			return cleanup(err)
		}
		for i := range s.Threads[0] {
			if err := w.Write(&s.Threads[0][i]); err != nil {
				return cleanup(err)
			}
		}
		if err := w.Flush(); err != nil {
			return cleanup(err)
		}
	default:
		return cleanup(fmt.Errorf("tracecli: unknown format %q (binary, jsonl, mftrace)", format))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// CreateTemp opens 0600; published traces should read like any
	// os.Create output.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
