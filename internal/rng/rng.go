// Package rng provides a small, fast, deterministic pseudo-random number
// generator and the sampling distributions used by the synthetic workload
// generator.
//
// The simulator must be bit-reproducible across runs and platforms for a
// given seed, so it does not depend on math/rand (whose stream is only
// guaranteed stable per Go release for the top-level functions). The core
// generator is xoshiro256**, seeded through splitmix64 as recommended by its
// authors.
package rng

import "math/bits"

// Rand is a deterministic xoshiro256** generator. The zero value is not
// valid; use New.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances the 64-bit state and returns the next output. It is
// used only for seeding.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given value. Distinct seeds give
// statistically independent streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro256** must not be seeded with the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Fork returns a new generator whose stream is independent of r's future
// output. It is used to give each thread/component its own stream so that
// the order in which components draw numbers does not perturb one another.
func (r *Rand) Fork() *Rand {
	return New(r.Uint64())
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and fast.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := bits.Mul64(x, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns a sample from the geometric distribution with success
// probability p: the number of failures before the first success, so the
// mean is (1-p)/p. Samples are capped at cap to bound pathological draws;
// pass cap <= 0 for no cap.
func (r *Rand) Geometric(p float64, cap int) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		if cap > 0 {
			return cap
		}
		panic("rng: Geometric with p<=0 and no cap")
	}
	n := 0
	for !r.Bool(p) {
		n++
		if cap > 0 && n >= cap {
			return cap
		}
	}
	return n
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s. It uses inverse-CDF sampling over a precomputed table, so
// construct one Zipf per distribution and reuse it.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over n items with exponent s. It panics if
// n <= 0 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	if s < 0 {
		panic("rng: NewZipf with negative exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / powF(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf}
}

// N returns the number of items in the sampler's domain.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws one item index using r as the randomness source.
func (z *Zipf) Sample(r *Rand) int {
	u := r.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// powF computes x^s for x >= 1 and s >= 0 without importing math, which
// keeps this package dependency-free. It uses exp(s*ln(x)) computed with a
// short series; accuracy of ~1e-9 is far beyond what workload synthesis
// needs.
func powF(x, s float64) float64 {
	if s == 0 || x == 1 {
		return 1
	}
	if s == 1 {
		return x
	}
	return expF(s * lnF(x))
}

// lnF computes the natural log via atanh series after range reduction by
// powers of 2.
func lnF(x float64) float64 {
	if x <= 0 {
		panic("rng: lnF domain")
	}
	const ln2 = 0.6931471805599453
	k := 0
	for x > 1.5 {
		x /= 2
		k++
	}
	for x < 0.75 {
		x *= 2
		k--
	}
	t := (x - 1) / (x + 1)
	t2 := t * t
	sum := 0.0
	term := t
	for i := 1; i < 40; i += 2 {
		sum += term / float64(i)
		term *= t2
	}
	return 2*sum + float64(k)*ln2
}

// expF computes e^y with argument reduction and a Taylor series.
func expF(y float64) float64 {
	const ln2 = 0.6931471805599453
	neg := false
	if y < 0 {
		neg = true
		y = -y
	}
	k := int(y / ln2)
	r := y - float64(k)*ln2
	term := 1.0
	sum := 1.0
	for i := 1; i < 20; i++ {
		term *= r / float64(i)
		sum += term
	}
	for i := 0; i < k; i++ {
		sum *= 2
	}
	if neg {
		return 1 / sum
	}
	return sum
}
