package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	saw := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		saw[r.Uint64()] = true
	}
	if len(saw) < 100 {
		t.Fatalf("seed 0 produced repeats: %d unique of 100", len(saw))
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Fork()
	// The child stream should not be a shifted copy of the parent stream.
	p := make([]uint64, 64)
	c := make([]uint64, 64)
	for i := range p {
		p[i] = parent.Uint64()
		c[i] = child.Uint64()
	}
	matches := 0
	for i := range p {
		if p[i] == c[i] {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("fork stream matches parent in %d positions", matches)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.08 {
			t.Fatalf("bucket %d count %d deviates >8%% from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestBoolExtremes(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(13)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(17)
	const p, draws = 0.25, 200000
	sum := 0
	for i := 0; i < draws; i++ {
		sum += r.Geometric(p, 0)
	}
	mean := float64(sum) / draws
	want := (1 - p) / p // = 3
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("geometric mean %v, want ~%v", mean, want)
	}
}

func TestGeometricCap(t *testing.T) {
	r := New(19)
	for i := 0; i < 1000; i++ {
		if v := r.Geometric(0.01, 5); v > 5 {
			t.Fatalf("cap violated: %d", v)
		}
	}
	if v := r.Geometric(0, 7); v != 7 {
		t.Fatalf("p=0 should return cap, got %d", v)
	}
	if v := r.Geometric(1, 7); v != 0 {
		t.Fatalf("p=1 should return 0, got %d", v)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(23)
	z := NewZipf(100, 1.0)
	counts := make([]int, 100)
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Sample(r)
		if v < 0 || v >= 100 {
			t.Fatalf("zipf sample out of range: %d", v)
		}
		counts[v]++
	}
	// Item 0 should be roughly twice as frequent as item 1 (1/1 vs 1/2).
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("zipf skew ratio %v, want ~2", ratio)
	}
	// The head should dominate the tail.
	if counts[0] < counts[99]*10 {
		t.Fatalf("zipf head %d not dominating tail %d", counts[0], counts[99])
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(29)
	z := NewZipf(10, 0)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	want := float64(draws) / 10
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.08 {
			t.Fatalf("s=0 bucket %d count %d deviates from uniform %f", i, c, want)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-1, 1}, {5, -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for NewZipf(%d, %v)", tc.n, tc.s)
				}
			}()
			NewZipf(tc.n, tc.s)
		}()
	}
}

func TestInternalMathHelpers(t *testing.T) {
	cases := []struct{ x, s, want float64 }{
		{2, 1, 2},
		{2, 2, 4},
		{10, 1.2, 15.848931924611133},
		{3, 0.5, 1.7320508075688772},
		{1, 5, 1},
	}
	for _, c := range cases {
		got := powF(c.x, c.s)
		if math.Abs(got-c.want)/c.want > 1e-6 {
			t.Errorf("powF(%v,%v)=%v want %v", c.x, c.s, got, c.want)
		}
	}
	for _, x := range []float64{0.1, 0.5, 1, 2, 10, 1000} {
		if got, want := lnF(x), math.Log(x); math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("lnF(%v)=%v want %v", x, got, want)
		}
	}
	for _, y := range []float64{-5, -1, 0, 0.5, 1, 5, 20} {
		if got, want := expF(y), math.Exp(y); math.Abs(got-want)/want > 1e-9 {
			t.Errorf("expF(%v)=%v want %v", y, got, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkZipfSample(b *testing.B) {
	r := New(1)
	z := NewZipf(4096, 1.1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = z.Sample(r)
	}
	_ = sink
}
