// Package metrics is the runtime observability spine of the mflush
// service layer: a dependency-free, concurrency-safe metrics registry
// (counters, gauges, fixed-bucket histograms, labeled families, and
// function-backed metrics for state that already lives elsewhere) with
// Prometheus text-format exposition. mflushd serves a Registry at
// /metrics, mflushworker behind -metrics-addr; ARCHITECTURE.md's
// Observability section documents the design and API.md tables every
// metric the binaries register.
//
// Two properties shape the implementation:
//
//   - Updates are wait-free: Counter.Add, Gauge.Set and
//     Histogram.Observe are single atomic operations with zero
//     allocations, so the simulator's per-sample and the WAL's per-append
//     hot paths can be instrumented without a measurable cost. Metric
//     methods are also nil-receiver-safe no-ops, so optional
//     instrumentation needs no nil checks at every call site.
//
//   - Scrapes allocate O(1), independent of how many families or
//     children are registered: families are kept sorted at registration
//     time and children at insertion time, so WriteTo walks pre-sorted
//     state into a reused buffer instead of building and sorting a
//     snapshot per scrape. bench_test.go's BenchmarkMetricsScrape pins
//     this down.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric kinds, as emitted in # TYPE lines.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// DefBuckets are the default latency buckets (seconds) for Histogram
// families observing I/O durations — spanning 10µs fsyncs to multi-
// second stalls. Callers with different dynamic ranges pass their own.
var DefBuckets = []float64{
	0.00001, 0.000025, 0.0001, 0.00025, 0.001, 0.0025,
	0.01, 0.025, 0.1, 0.25, 1, 2.5,
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use; the zero
// value is not usable — create with NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families []*family          //mflush:guarded-by mu
	byName   map[string]*family //mflush:guarded-by mu

	// scratch is the scrape buffer, reused across WriteTo calls (one
	// scrape at a time takes it; concurrent scrapes fall back to a
	// fresh buffer rather than blocking).
	scratch   []byte //mflush:guarded-by scratchMu
	scratchMu sync.Mutex
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric family: a kind, a help line, a label
// schema, and its children sorted by label values.
type family struct {
	name    string
	help    string
	kind    string
	labels  []string
	buckets []float64 // histogram kind only

	mu       sync.Mutex
	children []*child          //mflush:guarded-by mu
	index    map[string]*child //mflush:guarded-by mu
}

// child is one sample series within a family: a concrete metric or a
// function evaluated at scrape time.
type child struct {
	values []string // label values, aligned with family.labels
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// register creates (and returns) a family, panicking on an invalid or
// duplicate name — registration happens at process assembly, where a
// bad name is a programming error no caller would handle.
func (r *Registry) register(name, help, kind string, labels []string, buckets []float64) *family {
	if !ValidName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q (want snake_case: [a-z_][a-z0-9_]*)", name))
	}
	for _, l := range labels {
		if !ValidName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q in family %s", l, name))
		}
	}
	if kind == kindHistogram {
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic(fmt.Sprintf("metrics: histogram %s buckets not strictly increasing at %v", name, buckets[i]))
			}
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %s", name))
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: labels, buckets: buckets,
		index: make(map[string]*child),
	}
	i := sort.Search(len(r.families), func(i int) bool { return r.families[i].name >= name })
	r.families = append(r.families, nil)
	copy(r.families[i+1:], r.families[i:])
	r.families[i] = f
	r.byName[name] = f
	return f
}

// ValidName reports whether s is a legal metric or label name in this
// registry's restricted scheme: snake_case ASCII ([a-z_][a-z0-9_]*).
// This is stricter than Prometheus (which also allows colons and
// uppercase) on purpose — the repo's naming lint holds every registered
// family to it.
func ValidName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_', c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// child fetches or creates the series for the given label values,
// building the concrete metric with mk.
func (f *family) child(values []string, mk func() *child) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.index[key]; ok {
		return ch
	}
	ch := mk()
	ch.values = append([]string(nil), values...)
	i := sort.Search(len(f.children), func(i int) bool {
		return !lessValues(f.children[i].values, ch.values)
	})
	f.children = append(f.children, nil)
	copy(f.children[i+1:], f.children[i:])
	f.children[i] = ch
	f.index[key] = ch
	return ch
}

// delete removes the series for the given label values, if present.
func (f *family) delete(values []string) {
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.index[key]
	if !ok {
		return
	}
	delete(f.index, key)
	for i, c := range f.children {
		if c == ch {
			f.children = append(f.children[:i], f.children[i+1:]...)
			return
		}
	}
}

// lessValues orders label-value tuples lexicographically.
func lessValues(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// ---------------------------------------------------------------------
// Concrete metrics. All update methods are wait-free single atomics,
// allocate nothing, and are no-ops on a nil receiver — optional
// instrumentation stays branch-free at the call site.

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
//
//mflush:hotpath
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
//
//mflush:hotpath
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
//
//mflush:hotpath
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d (CAS loop; contended adds retry).
//
//mflush:hotpath
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc adds one.
//
//mflush:hotpath
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
//
//mflush:hotpath
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds in increasing order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // per-bucket (non-cumulative), +1 slot for +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{upper: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
}

// Observe records one value.
//
//mflush:hotpath
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// ---------------------------------------------------------------------
// Registration API.

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil)
	c := &Counter{}
	f.child(nil, func() *child { return &child{c: c} })
	return c
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil)
	g := &Gauge{}
	f.child(nil, func() *child { return &child{g: g} })
	return g
}

// Histogram registers and returns an unlabeled fixed-bucket histogram.
// Buckets are upper bounds, strictly increasing; +Inf is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, nil, buckets)
	h := newHistogram(buckets)
	f.child(nil, func() *child { return &child{h: h} })
	return h
}

// CounterFunc registers a counter whose value is fn(), evaluated at
// scrape time — for monotonic state another layer already tracks (the
// cache's hit counters, the coordinator's requeue count). fn runs with
// the family lock held; it must not call back into this registry.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindCounter, nil, nil)
	f.child(nil, func() *child { return &child{fn: fn} })
}

// GaugeFunc registers a gauge whose value is fn(), evaluated at scrape
// time. The same locking caveat as CounterFunc applies.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil, nil)
	f.child(nil, func() *child { return &child{fn: fn} })
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, kindCounter, labels, nil)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, kindGauge, labels, nil)}
}

// HistogramVec registers a labeled histogram family with shared buckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{fam: r.register(name, help, kindHistogram, labels, buckets)}
}

// GaugeFuncVec registers a labeled gauge family whose children are
// functions bound with Bind — one family exposing several pieces of
// computed state (campaigns by lifecycle state, say).
func (r *Registry) GaugeFuncVec(name, help string, labels ...string) *FuncVec {
	return &FuncVec{fam: r.register(name, help, kindGauge, labels, nil)}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ fam *family }

// WithLabelValues returns the counter for the given label values,
// creating it on first use. Hot paths should call this once and retain
// the child: resolution joins the values into a lookup key (one small
// allocation) and takes the family lock.
func (v *CounterVec) WithLabelValues(values ...string) *Counter {
	return v.fam.child(values, func() *child { return &child{c: &Counter{}} }).c
}

// Delete drops the series for the given label values — the cardinality
// valve for label sets that come and go (campaign IDs, worker names).
func (v *CounterVec) Delete(values ...string) { v.fam.delete(values) }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ fam *family }

// WithLabelValues returns the gauge for the given label values,
// creating it on first use; see CounterVec.WithLabelValues for the
// retention advice.
func (v *GaugeVec) WithLabelValues(values ...string) *Gauge {
	return v.fam.child(values, func() *child { return &child{g: &Gauge{}} }).g
}

// Delete drops the series for the given label values.
func (v *GaugeVec) Delete(values ...string) { v.fam.delete(values) }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ fam *family }

// WithLabelValues returns the histogram for the given label values,
// creating it on first use; see CounterVec.WithLabelValues for the
// retention advice.
func (v *HistogramVec) WithLabelValues(values ...string) *Histogram {
	f := v.fam
	return f.child(values, func() *child { return &child{h: newHistogram(f.buckets)} }).h
}

// Delete drops the series for the given label values.
func (v *HistogramVec) Delete(values ...string) { v.fam.delete(values) }

// FuncVec is a labeled family of scrape-time functions.
type FuncVec struct{ fam *family }

// Bind registers fn as the series for the given label values. fn runs
// with the family lock held at scrape time; it must not call back into
// this registry.
func (v *FuncVec) Bind(fn func() float64, values ...string) {
	v.fam.child(values, func() *child { return &child{fn: fn} })
}

// ---------------------------------------------------------------------
// Exposition.

// Names returns the sorted names of every registered family — the
// surface the repository's metrics naming lint walks.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, len(r.families))
	for i, f := range r.families {
		names[i] = f.name
	}
	return names
}

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format — the body behind mflushd's /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}

// countingWriter tracks bytes for WriteTo's io.WriterTo contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteTo renders every family in Prometheus text format: # HELP and
// # TYPE lines, then one sample line per child (histograms expand to
// cumulative _bucket lines plus _sum and _count). Families are written
// in name order and children in label order, both maintained at
// registration, so a scrape allocates O(1) regardless of registry size.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<14)
	scratch := r.takeScratch()
	defer r.putScratch(scratch)

	r.mu.RLock()
	families := r.families // append-only; safe to iterate after unlock
	r.mu.RUnlock()

	for _, f := range families {
		if err := f.write(bw, scratch); err != nil {
			return cw.n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// takeScratch borrows the registry's reusable number-formatting buffer,
// or mints a fresh one when a concurrent scrape holds it.
func (r *Registry) takeScratch() []byte {
	r.scratchMu.Lock()
	s := r.scratch
	r.scratch = nil
	r.scratchMu.Unlock()
	if s == nil {
		s = make([]byte, 0, 64)
	}
	return s
}

func (r *Registry) putScratch(s []byte) {
	r.scratchMu.Lock()
	if r.scratch == nil {
		r.scratch = s[:0]
	}
	r.scratchMu.Unlock()
}

// write renders one family under its lock (scrape-time fns run here).
// A vec family whose every series has been deleted (or none created
// yet) is skipped entirely: a HELP/TYPE declaration with no samples is
// what an empty family would otherwise render as, and scrapers treat
// the family as absent either way.
func (f *family) write(bw *bufio.Writer, scratch []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.children) == 0 {
		return nil
	}
	bw.WriteString("# HELP ")
	bw.WriteString(f.name)
	bw.WriteByte(' ')
	writeEscaped(bw, f.help, false)
	bw.WriteString("\n# TYPE ")
	bw.WriteString(f.name)
	bw.WriteByte(' ')
	bw.WriteString(f.kind)
	bw.WriteByte('\n')

	for _, ch := range f.children {
		if ch.h != nil {
			writeHistogram(bw, scratch, f, ch)
			continue
		}
		var v float64
		switch {
		case ch.c != nil:
			v = float64(ch.c.Value())
		case ch.g != nil:
			v = ch.g.Value()
		case ch.fn != nil:
			v = ch.fn()
		}
		writeSample(bw, scratch, f.name, "", f.labels, ch.values, v)
	}
	return nil
}

// infLabel is the +Inf bucket bound, pre-rendered.
var infLabel = []byte("+Inf")

// writeHistogram renders the cumulative bucket lines plus sum and count.
// The le bound is formatted into scratch and written before scratch is
// reused for the value, so the aliasing is safe (bufio copies on Write).
func writeHistogram(bw *bufio.Writer, scratch []byte, f *family, ch *child) {
	h := ch.h
	var cum uint64
	for i, upper := range h.upper {
		cum += h.counts[i].Load()
		le := strconv.AppendFloat(scratch[:0], upper, 'g', -1, 64)
		writeSampleLe(bw, scratch, f, ch, le, float64(cum))
	}
	cum += h.counts[len(h.upper)].Load()
	writeSampleLe(bw, scratch, f, ch, infLabel, float64(cum))
	writeSample(bw, scratch, f.name, "_sum", f.labels, ch.values, h.Sum())
	writeSample(bw, scratch, f.name, "_count", f.labels, ch.values, float64(h.count.Load()))
}

// writeSampleLe writes one _bucket line with the le label appended.
func writeSampleLe(bw *bufio.Writer, scratch []byte, f *family, ch *child, le []byte, v float64) {
	bw.WriteString(f.name)
	bw.WriteString("_bucket{")
	for i, l := range f.labels {
		bw.WriteString(l)
		bw.WriteString(`="`)
		writeEscaped(bw, ch.values[i], true)
		bw.WriteString(`",`)
	}
	bw.WriteString(`le="`)
	bw.Write(le)
	bw.WriteString(`"} `)
	writeFloat(bw, scratch, v)
	bw.WriteByte('\n')
}

// writeSample writes one plain sample line: name+suffix, labels, value.
func writeSample(bw *bufio.Writer, scratch []byte, name, suffix string, labels, values []string, v float64) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l)
			bw.WriteString(`="`)
			writeEscaped(bw, values[i], true)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	writeFloat(bw, scratch, v)
	bw.WriteByte('\n')
}

// writeFloat renders v without allocating (scratch is reused).
func writeFloat(bw *bufio.Writer, scratch []byte, v float64) {
	scratch = strconv.AppendFloat(scratch[:0], v, 'g', -1, 64)
	bw.Write(scratch)
}

// writeEscaped writes s with exposition-format escaping: backslash and
// newline always; double quotes additionally inside label values.
func writeEscaped(bw *bufio.Writer, s string, label bool) {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			bw.WriteString(`\\`)
		case '\n':
			bw.WriteString(`\n`)
		case '"':
			if label {
				bw.WriteString(`\"`)
			} else {
				bw.WriteByte(c)
			}
		default:
			bw.WriteByte(c)
		}
	}
}
