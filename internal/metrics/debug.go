package metrics

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the optional profiling surface mflushd and
// mflushworker mount behind their -debug-addr flag: the net/http/pprof
// profile endpoints under /debug/pprof/ and the expvar JSON dump
// (Go runtime memstats, goroutine counts via the pprof index, command
// line) under /debug/vars. It is built on a private mux so importing
// this package never pollutes http.DefaultServeMux, and the binaries
// only listen when the flag is set — profiling is opt-in, on its own
// address, never on the service port.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
