package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Exposition-format conformance checking. ParseExposition is the
// strict reader the conformance tests (and the docs-side metricscheck
// lint) run over scraped output: it accepts exactly the subset of the
// Prometheus text format this registry emits and rejects anything
// malformed — missing HELP/TYPE declarations, bad label escaping,
// non-monotonic histogram buckets, a missing +Inf bound. Keeping the
// checker next to the writer means a format regression fails a unit
// test instead of a production scrape.

// ExpoSample is one parsed sample line.
type ExpoSample struct {
	// Name is the full sample name, including any _bucket/_sum/_count
	// histogram suffix.
	Name string
	// Labels holds the sample's label pairs (unescaped values).
	Labels map[string]string
	// Value is the parsed sample value.
	Value float64
}

// ExpoFamily is one parsed metric family: its declarations and samples.
type ExpoFamily struct {
	// Name is the family name from the # TYPE line.
	Name string
	// Help is the # HELP text (unescaped).
	Help string
	// Type is the declared kind: counter, gauge or histogram.
	Type string
	// Samples are the family's sample lines in exposition order.
	Samples []ExpoSample
}

// ParseExposition parses and validates a text-format exposition. It
// returns the families by name, or the first conformance violation:
// samples without a preceding HELP+TYPE declaration, malformed lines or
// label escaping, duplicate declarations, histograms whose cumulative
// bucket counts decrease, whose le bounds are not increasing, or whose
// +Inf bucket is absent or disagrees with _count.
func ParseExposition(data []byte) (map[string]*ExpoFamily, error) {
	families := make(map[string]*ExpoFamily)
	var help map[string]string = make(map[string]string)
	var current *ExpoFamily
	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := line[len("# HELP "):]
			name, text, ok := strings.Cut(rest, " ")
			if !ok || !ValidName(name) {
				return nil, fmt.Errorf("line %d: malformed HELP line %q", lineNo, line)
			}
			if _, dup := help[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
			}
			help[name] = unescapeHelp(text)
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := line[len("# TYPE "):]
			name, kind, ok := strings.Cut(rest, " ")
			if !ok || !ValidName(name) {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			if kind != kindCounter && kind != kindGauge && kind != kindHistogram {
				return nil, fmt.Errorf("line %d: unknown metric type %q for %s", lineNo, kind, name)
			}
			h, ok := help[name]
			if !ok {
				return nil, fmt.Errorf("line %d: TYPE for %s without a preceding HELP", lineNo, name)
			}
			if _, dup := families[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			current = &ExpoFamily{Name: name, Help: h, Type: kind}
			families[name] = current
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // a plain comment is legal
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyFor(families, s.Name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %s without a preceding HELP/TYPE declaration", lineNo, s.Name)
		}
		if current == nil || fam != current {
			return nil, fmt.Errorf("line %d: sample %s outside its family's block (interleaved families)", lineNo, s.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	for _, fam := range families {
		if len(fam.Samples) == 0 {
			return nil, fmt.Errorf("family %s declares HELP/TYPE but has no samples", fam.Name)
		}
		if fam.Type == kindHistogram {
			if err := checkHistogram(fam); err != nil {
				return nil, err
			}
		} else {
			for _, s := range fam.Samples {
				if s.Name != fam.Name {
					return nil, fmt.Errorf("family %s: unexpected sample name %s", fam.Name, s.Name)
				}
			}
		}
	}
	return families, nil
}

// familyFor resolves a sample name to its declared family, stripping
// histogram suffixes when the base name is a declared histogram.
func familyFor(families map[string]*ExpoFamily, sample string) *ExpoFamily {
	if f, ok := families[sample]; ok && f.Type != kindHistogram {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sample, suffix); ok {
			if f, ok := families[base]; ok && f.Type == kindHistogram {
				return f
			}
		}
	}
	return nil
}

// parseSampleLine parses `name{label="value",...} value`.
func parseSampleLine(line string) (ExpoSample, error) {
	s := ExpoSample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.Name = line[:i]
	if !ValidName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, fmt.Errorf("sample %s: %w", s.Name, err)
		}
		rest = rest[end:]
	}
	if !strings.HasPrefix(rest, " ") {
		return s, fmt.Errorf("sample %s: missing value separator", s.Name)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("sample %s: bad value: %w", s.Name, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `{name="value",...}` starting at rest[0] == '{',
// returning the index one past the closing brace.
func parseLabels(rest string, into map[string]string) (int, error) {
	i := 1
	for {
		if i < len(rest) && rest[i] == '}' {
			return i + 1, nil
		}
		j := i
		for j < len(rest) && rest[j] != '=' {
			j++
		}
		name := rest[i:j]
		// le carries a float bound ("+Inf", "0.001"), every other label
		// name must be snake_case like metric names.
		if name != "le" && !ValidName(name) {
			return 0, fmt.Errorf("invalid label name %q", name)
		}
		if j+1 >= len(rest) || rest[j+1] != '"' {
			return 0, fmt.Errorf("label %s: missing opening quote", name)
		}
		val, next, err := parseQuoted(rest, j+1)
		if err != nil {
			return 0, fmt.Errorf("label %s: %w", name, err)
		}
		if _, dup := into[name]; dup {
			return 0, fmt.Errorf("duplicate label %s", name)
		}
		into[name] = val
		i = next
		switch {
		case i < len(rest) && rest[i] == ',':
			i++
		case i < len(rest) && rest[i] == '}':
			// loop terminates next iteration
		default:
			return 0, fmt.Errorf("label %s: expected ',' or '}' after value", name)
		}
	}
}

// parseQuoted reads a double-quoted label value with \\, \" and \n
// escapes, starting at the opening quote; it returns the unescaped
// value and the index one past the closing quote.
func parseQuoted(s string, start int) (string, int, error) {
	var b strings.Builder
	i := start + 1
	for i < len(s) {
		switch c := s[i]; c {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", s[i+1])
			}
			i += 2
		case '\n':
			return "", 0, fmt.Errorf("unescaped newline in label value")
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated label value")
}

// unescapeHelp reverses HELP-text escaping (\\ and \n).
func unescapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

// checkHistogram validates one histogram family: per label set, le
// bounds strictly increase, cumulative counts never decrease, the +Inf
// bucket exists, and _count and _sum exist with _count equal to the
// +Inf cumulative count.
func checkHistogram(fam *ExpoFamily) error {
	type series struct {
		bounds   []float64
		cumul    []float64
		inf      float64
		hasInf   bool
		count    float64
		hasCount bool
		hasSum   bool
	}
	byKey := map[string]*series{}
	keyOf := func(labels map[string]string) string {
		names := make([]string, 0, len(labels))
		for n := range labels {
			if n != "le" {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		var b strings.Builder
		for _, n := range names {
			b.WriteString(n)
			b.WriteByte('=')
			b.WriteString(labels[n])
			b.WriteByte(';')
		}
		return b.String()
	}
	get := func(labels map[string]string) *series {
		k := keyOf(labels)
		s := byKey[k]
		if s == nil {
			s = &series{}
			byKey[k] = s
		}
		return s
	}
	for _, s := range fam.Samples {
		switch s.Name {
		case fam.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s: bucket sample without le label", fam.Name)
			}
			ser := get(s.Labels)
			if le == "+Inf" {
				ser.inf, ser.hasInf = s.Value, true
				continue
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("histogram %s: bad le bound %q", fam.Name, le)
			}
			if ser.hasInf {
				return fmt.Errorf("histogram %s: finite bucket le=%q after +Inf", fam.Name, le)
			}
			ser.bounds = append(ser.bounds, bound)
			ser.cumul = append(ser.cumul, s.Value)
		case fam.Name + "_sum":
			get(s.Labels).hasSum = true
		case fam.Name + "_count":
			ser := get(s.Labels)
			ser.count, ser.hasCount = s.Value, true
		default:
			return fmt.Errorf("histogram %s: unexpected sample name %s", fam.Name, s.Name)
		}
	}
	for k, ser := range byKey {
		if !ser.hasInf {
			return fmt.Errorf("histogram %s{%s}: no +Inf bucket", fam.Name, k)
		}
		if !ser.hasCount || !ser.hasSum {
			return fmt.Errorf("histogram %s{%s}: missing _sum or _count", fam.Name, k)
		}
		prev := math.Inf(-1)
		prevCum := 0.0
		for i, b := range ser.bounds {
			if b <= prev {
				return fmt.Errorf("histogram %s{%s}: le bounds not increasing at %v", fam.Name, k, b)
			}
			if ser.cumul[i] < prevCum {
				return fmt.Errorf("histogram %s{%s}: cumulative count decreases at le=%v", fam.Name, k, b)
			}
			prev, prevCum = b, ser.cumul[i]
		}
		if ser.inf < prevCum {
			return fmt.Errorf("histogram %s{%s}: +Inf count below last bucket", fam.Name, k)
		}
		if ser.inf != ser.count {
			return fmt.Errorf("histogram %s{%s}: +Inf bucket %v != _count %v", fam.Name, k, ser.inf, ser.count)
		}
	}
	return nil
}
