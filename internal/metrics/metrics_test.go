package metrics

import (
	"bytes"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// fullRegistry builds a registry exercising every family kind the
// package offers — the conformance tests scrape it.
func fullRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("mflush_test_events_total", "Events seen.")
	c.Add(41)
	c.Inc()
	g := r.Gauge("mflush_test_depth", "Current depth.")
	g.Set(7.5)
	h := r.Histogram("mflush_test_latency_seconds", "Op latency.", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 3} {
		h.Observe(v)
	}
	r.CounterFunc("mflush_test_derived_total", "Derived monotonic state.", func() float64 { return 12 })
	r.GaugeFunc("mflush_test_derived_depth", "Derived state.", func() float64 { return -2.25 })
	cv := r.CounterVec("mflush_test_jobs_total", "Jobs by outcome.", "outcome")
	cv.WithLabelValues("ok").Add(3)
	cv.WithLabelValues("err").Inc()
	gv := r.GaugeVec("mflush_test_fleet", "Fleet state.", "worker", "zone")
	gv.WithLabelValues("w2", "b").Set(2)
	gv.WithLabelValues(`quote"back\slash`, "line\nbreak").Set(1)
	hv := r.HistogramVec("mflush_test_step_seconds", "Step latency.", []float64{0.01, 1}, "phase")
	hv.WithLabelValues("warm").Observe(0.005)
	hv.WithLabelValues("measure").Observe(2)
	fv := r.GaugeFuncVec("mflush_test_states", "Things per state.", "state")
	fv.Bind(func() float64 { return 4 }, "running")
	fv.Bind(func() float64 { return 1 }, "done")
	return r
}

// TestExpositionConformance scrapes a registry with every metric kind
// and runs the strict parser over it: every family must declare HELP
// and TYPE before its samples, label values must round-trip their
// escaping, and histograms must expose increasing le bounds, monotonic
// cumulative counts and a +Inf bucket equal to _count.
func TestExpositionConformance(t *testing.T) {
	var buf bytes.Buffer
	if _, err := fullRegistry().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition does not conform: %v\noutput:\n%s", err, buf.String())
	}
	if len(fams) != 9 {
		t.Fatalf("parsed %d families, want 9", len(fams))
	}

	if v := fams["mflush_test_events_total"].Samples[0].Value; v != 42 {
		t.Errorf("counter = %v, want 42", v)
	}
	if v := fams["mflush_test_derived_depth"].Samples[0].Value; v != -2.25 {
		t.Errorf("gauge func = %v, want -2.25", v)
	}

	// Label escaping round-trips through the parser.
	found := false
	for _, s := range fams["mflush_test_fleet"].Samples {
		if s.Labels["worker"] == `quote"back\slash` && s.Labels["zone"] == "line\nbreak" {
			found = true
		}
	}
	if !found {
		t.Errorf("escaped label values did not round-trip:\n%s", buf.String())
	}

	// Histogram: 5 observations, bucketed {0.001: 1, 0.01: 3, 0.1: 4, +Inf: 5}.
	var bounds []string
	var cums []float64
	for _, s := range fams["mflush_test_latency_seconds"].Samples {
		if s.Name == "mflush_test_latency_seconds_bucket" {
			bounds = append(bounds, s.Labels["le"])
			cums = append(cums, s.Value)
		}
	}
	wantBounds := []string{"0.001", "0.01", "0.1", "+Inf"}
	wantCums := []float64{1, 3, 4, 5}
	for i := range wantBounds {
		if bounds[i] != wantBounds[i] || cums[i] != wantCums[i] {
			t.Fatalf("histogram buckets = %v %v, want %v %v", bounds, cums, wantBounds, wantCums)
		}
	}
}

// TestExpositionDeterministic asserts two scrapes render byte-identical
// output (families and children are pre-sorted; no map iteration leaks
// into the format).
func TestExpositionDeterministic(t *testing.T) {
	r := fullRegistry()
	var a, b bytes.Buffer
	if _, err := r.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("scrapes differ:\n%s\n----\n%s", a.String(), b.String())
	}
}

// TestParseExpositionRejects feeds the checker malformed expositions;
// each must be rejected (the checker guards the conformance tests, so
// a checker that accepts garbage would hide writer regressions).
func TestParseExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"sample without declaration": "mflush_x_total 1\n",
		"TYPE without HELP":          "# TYPE mflush_x_total counter\nmflush_x_total 1\n",
		"unknown type":               "# HELP mflush_x_total h\n# TYPE mflush_x_total summary\nmflush_x_total 1\n",
		"bad name":                   "# HELP Bad-Name h\n# TYPE Bad-Name counter\nBad-Name 1\n",
		"bad value":                  "# HELP mflush_x_total h\n# TYPE mflush_x_total counter\nmflush_x_total one\n",
		"unterminated label":         "# HELP mflush_x h\n# TYPE mflush_x gauge\nmflush_x{a=\"b 1\n",
		"bad escape":                 "# HELP mflush_x h\n# TYPE mflush_x gauge\nmflush_x{a=\"\\t\"} 1\n",
		"duplicate family":           "# HELP mflush_x h\n# TYPE mflush_x gauge\nmflush_x 1\n# HELP mflush_x h\n# TYPE mflush_x gauge\nmflush_x 2\n",
		"declaration without samples": "# HELP mflush_x h\n# TYPE mflush_x gauge\n" +
			"# HELP mflush_y h\n# TYPE mflush_y gauge\nmflush_y 1\n",
		"histogram without +Inf": "# HELP mflush_h h\n# TYPE mflush_h histogram\n" +
			"mflush_h_bucket{le=\"1\"} 1\nmflush_h_sum 1\nmflush_h_count 1\n",
		"histogram non-monotonic": "# HELP mflush_h h\n# TYPE mflush_h histogram\n" +
			"mflush_h_bucket{le=\"1\"} 3\nmflush_h_bucket{le=\"2\"} 2\nmflush_h_bucket{le=\"+Inf\"} 3\nmflush_h_sum 1\nmflush_h_count 3\n",
		"histogram inf != count": "# HELP mflush_h h\n# TYPE mflush_h histogram\n" +
			"mflush_h_bucket{le=\"1\"} 1\nmflush_h_bucket{le=\"+Inf\"} 2\nmflush_h_sum 1\nmflush_h_count 3\n",
		"histogram bounds decreasing": "# HELP mflush_h h\n# TYPE mflush_h histogram\n" +
			"mflush_h_bucket{le=\"2\"} 1\nmflush_h_bucket{le=\"1\"} 1\nmflush_h_bucket{le=\"+Inf\"} 1\nmflush_h_sum 1\nmflush_h_count 1\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition([]byte(in)); err == nil {
			t.Errorf("%s: accepted malformed exposition:\n%s", name, in)
		}
	}
}

// TestValidName pins the naming scheme the registry enforces.
func TestValidName(t *testing.T) {
	for _, ok := range []string{"mflush_cache_hits_total", "a", "_x", "x9_y"} {
		if !ValidName(ok) {
			t.Errorf("ValidName(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "9x", "Hits", "mflush-cache", "a.b", "a:b", "héllo"} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true, want false", bad)
		}
	}
}

// TestRegisterPanics asserts assembly-time mistakes fail loudly.
func TestRegisterPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("mflush_once_total", "x")
	expectPanic("duplicate name", func() { r.Gauge("mflush_once_total", "x") })
	expectPanic("invalid name", func() { r.Counter("Bad-Name", "x") })
	expectPanic("invalid label", func() { r.CounterVec("mflush_l_total", "x", "Bad-Label") })
	expectPanic("unsorted buckets", func() { r.Histogram("mflush_h_seconds", "x", []float64{1, 1}) })
	v := r.GaugeVec("mflush_v", "x", "a", "b")
	expectPanic("label arity", func() { v.WithLabelValues("only-one") })
}

// TestNilReceivers asserts every update method is a safe no-op on nil —
// the property that lets optional instrumentation skip nil checks.
func TestNilReceivers(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	g.Inc()
	g.Dec()
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
}

// TestVecDelete asserts deleted series leave the exposition and that
// recreation starts fresh.
func TestVecDelete(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("mflush_live", "x", "id")
	gv.WithLabelValues("a").Set(1)
	gv.WithLabelValues("b").Set(2)
	gv.Delete("a")
	var buf bytes.Buffer
	r.WriteTo(&buf)
	if strings.Contains(buf.String(), `id="a"`) {
		t.Fatalf("deleted series still exposed:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `id="b"`) {
		t.Fatalf("surviving series missing:\n%s", buf.String())
	}
	if v := gv.WithLabelValues("a").Value(); v != 0 {
		t.Fatalf("recreated series = %v, want 0", v)
	}
}

// TestHandler asserts the HTTP surface sets the exposition content type.
func TestHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	fullRegistry().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); !strings.HasPrefix(got, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", got)
	}
	if _, err := ParseExposition(rec.Body.Bytes()); err != nil {
		t.Fatalf("handler body does not conform: %v", err)
	}
}

// TestGaugeAddConcurrent asserts the CAS loop loses no updates.
func TestGaugeAddConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("mflush_sum", "x")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000", g.Value())
	}
}

// TestRegistryRace hammers registration, updates, vec churn and scrapes
// concurrently; it exists to run under -race (make racetest / CI).
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mflush_race_total", "x")
	g := r.Gauge("mflush_race_depth", "x")
	h := r.Histogram("mflush_race_seconds", "x", DefBuckets)
	gv := r.GaugeVec("mflush_race_fleet", "x", "id")
	r.GaugeFunc("mflush_race_fn", "x", func() float64 { return float64(c.Value()) })
	ids := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(3)
		id := ids[i]
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				g.Add(0.5)
				h.Observe(float64(j) / 1000)
				gv.WithLabelValues(id).Set(float64(j))
				if j%50 == 0 {
					gv.Delete(id)
				}
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var buf bytes.Buffer
				if _, err := r.WriteTo(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if _, err := r.WriteTo(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseExposition(buf.Bytes()); err != nil {
		t.Fatalf("post-race exposition does not conform: %v\n%s", err, buf.String())
	}
}

// TestUpdateAllocs pins the hot-path update cost at zero allocations:
// the per-sample and per-WAL-append instrumentation must be free to
// call from the simulator's cycle-scale paths.
func TestUpdateAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mflush_a_total", "x")
	g := r.Gauge("mflush_a_depth", "x")
	h := r.Histogram("mflush_a_seconds", "x", DefBuckets)
	child := r.GaugeVec("mflush_a_fleet", "x", "id").WithLabelValues("w1")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(1.5)
		h.Observe(0.003)
		child.Set(2)
	}); n != 0 {
		t.Fatalf("metric updates allocate %.1f times per run, want 0", n)
	}
}

// TestScrapeAllocs pins the O(1)-alloc scrape: rendering a large
// registry must not allocate per family or per child (pre-sorted state,
// reused buffers). The bound is a small constant — and, decisively, the
// same constant for a registry 10x the size.
func TestScrapeAllocs(t *testing.T) {
	build := func(families int) *Registry {
		r := NewRegistry()
		names := []string{
			"mflush_s%c_total", "mflush_s%c_depth", "mflush_s%c_seconds",
		}
		_ = names
		for i := 0; i < families; i++ {
			suffix := string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
			r.Counter("mflush_s_"+suffix+"_total", "x").Add(uint64(i))
			r.Gauge("mflush_s_"+suffix+"_depth", "x").Set(float64(i))
			h := r.Histogram("mflush_s_"+suffix+"_seconds", "x", DefBuckets)
			h.Observe(0.01)
			gv := r.GaugeVec("mflush_s_"+suffix+"_fleet", "x", "id")
			gv.WithLabelValues("w1").Set(1)
			gv.WithLabelValues("w2").Set(2)
		}
		return r
	}
	allocs := func(r *Registry) float64 {
		return testing.AllocsPerRun(100, func() {
			if _, err := r.WriteTo(io.Discard); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := allocs(build(5)), allocs(build(50))
	// One bufio.Writer + its buffer per scrape is the O(1) budget;
	// anything scaling with registry size fails the second bound.
	if small > 4 {
		t.Fatalf("scrape of small registry allocates %.1f, want <= 4", small)
	}
	if large > small {
		t.Fatalf("scrape allocations grow with registry size: %.1f (5 families) vs %.1f (50 families)", small, large)
	}
}

// TestHistogramObserve pins bucket edges: a value equal to a bound
// lands in that bound's bucket (le is inclusive).
func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mflush_edge_seconds", "x", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	h.Observe(2.5)
	var buf bytes.Buffer
	r.WriteTo(&buf)
	fams, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fams["mflush_edge_seconds"].Samples {
		if s.Name == "mflush_edge_seconds_bucket" && s.Labels["le"] == "1" && s.Value != 1 {
			t.Fatalf("le=1 bucket = %v, want 1 (bounds are inclusive)", s.Value)
		}
	}
	if h.Count() != 2 || math.Abs(h.Sum()-3.5) > 1e-9 {
		t.Fatalf("count/sum = %d/%v, want 2/3.5", h.Count(), h.Sum())
	}
}
