package experiments

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// tiny is a very small configuration: experiment tests validate plumbing
// and invariants, not calibrated shapes (bench_test.go and EXPERIMENTS.md
// cover those at full scale).
var tiny = Config{Warmup: 20000, Cycles: 20000, Seed: 1}

// short shrinks the figure loops further for -short runs: still every
// figure, every policy and every workload, but a minimal measured window.
var short = Config{Warmup: 6000, Cycles: 6000, Seed: 1}

// testCfg selects the figure-test scale: tiny normally, short under
// `go test -short` so the whole package finishes in a few seconds.
func testCfg() Config {
	if testing.Short() {
		return short
	}
	return tiny
}

// The scheduler itself (ordering, parallelism, error propagation) is
// tested in internal/campaign; runGrid only wraps campaign.RunAll.
func TestRunGridPropagatesErrors(t *testing.T) {
	bad := tiny.options(workload.Workload{Name: "bad", Letters: "!"}, sim.SpecICOUNT)
	if _, err := runGrid([]sim.Options{bad}); err == nil {
		t.Fatal("error not propagated")
	}
}

func TestFigure2Shape(t *testing.T) {
	rows, avg, err := Figure2(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 (2W1..2W5)", len(rows))
	}
	for _, r := range rows {
		if r.ICOUNT <= 0 || r.FlushS30 <= 0 {
			t.Errorf("%s has non-positive IPC", r.Workload)
		}
	}
	_ = avg // magnitude asserted at full scale in bench_test.go
}

func TestFigure3Shape(t *testing.T) {
	rows, err := Figure3(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 sizes", len(rows))
	}
	for i, r := range rows {
		if r.Threads != workload.Sizes()[i] {
			t.Errorf("row %d threads = %d", i, r.Threads)
		}
		if r.ICOUNT <= 0 || r.FlushS30 <= 0 {
			t.Errorf("size %d has non-positive IPC", r.Threads)
		}
	}
	// More cores must give more aggregate throughput under ICOUNT.
	if rows[3].ICOUNT <= rows[0].ICOUNT {
		t.Error("8-thread ICOUNT throughput not above 2-thread")
	}
}

func TestFigure4DispersionGrows(t *testing.T) {
	rows, err := Figure4(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Hits == 0 {
			t.Fatalf("%dW measured no L2 hits", r.Threads)
		}
		var sum uint64
		for _, b := range r.Buckets {
			sum += b
		}
		if sum != r.Hits {
			t.Fatalf("%dW buckets sum %d != hits %d", r.Threads, sum, r.Hits)
		}
	}
	// The paper's observation: mean and tail grow with core count.
	if rows[3].Mean <= rows[0].Mean {
		t.Errorf("4-core mean hit time %.1f not above 1-core %.1f",
			rows[3].Mean, rows[0].Mean)
	}
	if rows[3].P90 <= rows[0].P90 {
		t.Errorf("4-core p90 %d not above 1-core %d", rows[3].P90, rows[0].P90)
	}
}

func TestFigure5Coverage(t *testing.T) {
	rows, err := Figure5(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// 2 workloads x (7 triggers + NS).
	if len(rows) != 2*(len(Figure5Triggers)+1) {
		t.Fatalf("rows = %d", len(rows))
	}
	seenNS := 0
	for _, r := range rows {
		if r.IPC <= 0 {
			t.Errorf("%s/%s has non-positive IPC", r.Workload, r.Policy)
		}
		if r.Policy == "FL-NS" {
			seenNS++
		}
	}
	if seenNS != 2 {
		t.Fatalf("FL-NS rows = %d, want 2", seenNS)
	}
}

func TestFigure8Coverage(t *testing.T) {
	rows, err := Figure8(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows = %d, want 15 (4W/6W/8W x 5)", len(rows))
	}
	ic, s30, s100, mf := Figure8Averages(rows)
	for name, v := range map[string]float64{
		"ICOUNT": ic, "S30": s30, "S100": s100, "MFLUSH": mf,
	} {
		if v <= 0 {
			t.Errorf("average %s IPC non-positive", name)
		}
	}
	if _, _, _, zero := Figure8Averages(nil); zero != 0 {
		t.Error("empty averages should be zero")
	}
}

func TestFigure11Coverage(t *testing.T) {
	rows, err := Figure11(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows = %d", len(rows))
	}
	s30, s100, mflush, saving := Figure11Averages(rows)
	if s30 <= 0 || s100 <= 0 || mflush <= 0 {
		t.Fatalf("wasted energy should be positive for flushing policies: %v/%v/%v",
			s30, s100, mflush)
	}
	// The headline direction: MFLUSH wastes less than the best static
	// trigger. (The ~20% magnitude is asserted at full scale.)
	if saving <= 0 {
		t.Errorf("MFLUSH saving vs S100 = %.1f%%, want positive", saving*100)
	}
}
