package experiments

import (
	"fmt"
	"runtime"
	"testing"
)

// TestRunAllDeterministicAcrossGOMAXPROCS guards the per-core recycling
// pools against cross-simulation sharing: the campaign scheduler runs
// concurrent sim.Run calls, and figure values must not depend on how
// many ran in parallel.
func TestRunAllDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func() string {
		rows, _, err := Figure2(short)
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, r := range rows {
			out += fmt.Sprintf("%s %.12f %.12f\n", r.Workload, r.ICOUNT, r.FlushS30)
		}
		return out
	}

	old := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(old)
	if old == 1 && runtime.NumCPU() > 1 {
		runtime.GOMAXPROCS(runtime.NumCPU())
		defer runtime.GOMAXPROCS(old)
	}
	parallel := run()

	if serial != parallel {
		t.Fatalf("results depend on GOMAXPROCS:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}
