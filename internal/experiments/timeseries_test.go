package experiments

import (
	"testing"

	"repro/internal/sim"
)

// TestTimeSeriesShape runs the interval harness on one contended
// workload under the baseline and the paper's policy and checks the
// series' structure: full coverage of the measured window per policy,
// MCReg state present exactly for MFLUSH, and cumulative counters
// monotone within each run.
func TestTimeSeriesShape(t *testing.T) {
	cfg := testCfg()
	const interval = 2000
	policies := []sim.PolicySpec{sim.SpecICOUNT, sim.SpecMFLUSH}
	rows, res, err := TimeSeries(cfg, "8W3", policies, interval)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(policies) {
		t.Fatalf("%d results for %d policies", len(res), len(policies))
	}
	perPolicy := int(cfg.Cycles / interval)
	if want := perPolicy * len(policies); len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	for i, p := range policies {
		series := rows[i*perPolicy : (i+1)*perPolicy]
		var prevFlushes uint64
		for k, row := range series {
			if row.Policy != p.String() || row.Workload != "8W3" {
				t.Fatalf("row %d labelled %s/%s", k, row.Workload, row.Policy)
			}
			if want := uint64(k+1) * interval; row.MeasuredCycle != want {
				t.Fatalf("%s row %d at cycle %d, want %d", p, k, row.MeasuredCycle, want)
			}
			if row.Flushes < prevFlushes {
				t.Fatalf("%s: cumulative flushes decreased (%d -> %d)", p, prevFlushes, row.Flushes)
			}
			prevFlushes = row.Flushes
			hasMCReg := row.MCRegMin >= 0
			if wantMCReg := p.Kind == sim.MFLUSH; hasMCReg != wantMCReg {
				t.Fatalf("%s row %d: MCReg presence = %v", p, k, hasMCReg)
			}
		}
		last := series[len(series)-1]
		if last.IPC != res[i].IPC {
			t.Fatalf("%s: final cumulative IPC %v != result %v", p, last.IPC, res[i].IPC)
		}
	}

	if _, _, err := TimeSeries(cfg, "8W3", policies, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, _, err := TimeSeries(cfg, "nope", policies, interval); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
