// Package experiments regenerates every table and figure of the paper's
// evaluation: one function per figure, each returning structured rows that
// cmd/mflushbench renders and bench_test.go asserts on.
//
// All experiments run the same synthetic workloads through the same
// machine for every policy, so differences are attributable to the IFetch
// policy alone. Simulations are independent and run in parallel on the
// campaign scheduler (internal/campaign), the same worker pool that
// backs cmd/mflushsweep.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config scales the experiment suite. The defaults trade the paper's
// 120M-cycle runs for laptop-scale runs that preserve the steady-state
// shapes (see EXPERIMENTS.md for the comparison).
type Config struct {
	// Warmup cycles run before measurement to populate caches,
	// predictors and TLBs.
	Warmup uint64
	// Cycles is the measured window ("all simulations are executed for
	// a fixed interval" — paper methodology).
	Cycles uint64
	// Seed drives workload synthesis.
	Seed uint64
}

// Default is the full-quality configuration used by cmd/mflushbench.
var Default = Config{Warmup: 300000, Cycles: 200000, Seed: 1}

// Quick is a reduced configuration for tests and benchmarks.
var Quick = Config{Warmup: 60000, Cycles: 60000, Seed: 1}

func (c Config) options(w workload.Workload, p sim.PolicySpec) sim.Options {
	return sim.Options{Workload: w, Policy: p, Warmup: c.Warmup, Cycles: c.Cycles, Seed: c.Seed}
}

// runGrid executes the figure's simulation grid through the campaign
// scheduler (bounded parallelism, results in input order).
func runGrid(opts []sim.Options) ([]*sim.Result, error) {
	res, err := campaign.RunAll(context.Background(), opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return res, nil
}

// Figure2Row is one bar pair of Figure 2: single-core SMT throughput under
// ICOUNT and speculative FLUSH-S30.
type Figure2Row struct {
	Workload string
	ICOUNT   float64
	FlushS30 float64
	// Speedup is FLUSH-S30 over ICOUNT as a fraction.
	Speedup float64
}

// Figure2 reproduces the paper's Figure 2: all 2-thread workloads on one
// SMT core, ICOUNT vs FLUSH-S30. The paper reports speedups up to 93%
// with a 22% average.
func Figure2(cfg Config) ([]Figure2Row, float64, error) {
	ws := workload.OfSize(2)
	var opts []sim.Options
	for _, w := range ws {
		opts = append(opts, cfg.options(w, sim.SpecICOUNT))
		opts = append(opts, cfg.options(w, sim.SpecFlushS(30)))
	}
	res, err := runGrid(opts)
	if err != nil {
		return nil, 0, err
	}
	rows := make([]Figure2Row, len(ws))
	var speedups []float64
	for i, w := range ws {
		ic, fl := res[2*i], res[2*i+1]
		rows[i] = Figure2Row{
			Workload: w.Name, ICOUNT: ic.IPC, FlushS30: fl.IPC,
			Speedup: sim.Speedup(fl, ic),
		}
		speedups = append(speedups, rows[i].Speedup)
	}
	return rows, stats.Mean(speedups), nil
}

// Figure3Row is one bar group of Figure 3: per-workload-size average
// throughput across the CMP+SMT configurations.
type Figure3Row struct {
	Threads, Cores   int
	ICOUNT, FlushS30 float64 // average system IPC over the 5 workloads
	AvgSpeedup       float64 // average per-workload FLUSH-S30 speedup
}

// Figure3 reproduces Figure 3: as SMT cores are replicated, the FLUSH
// advantage shrinks and becomes a slowdown at 4 cores.
func Figure3(cfg Config) ([]Figure3Row, error) {
	var rows []Figure3Row
	for _, size := range workload.Sizes() {
		ws := workload.OfSize(size)
		var opts []sim.Options
		for _, w := range ws {
			opts = append(opts, cfg.options(w, sim.SpecICOUNT))
			opts = append(opts, cfg.options(w, sim.SpecFlushS(30)))
		}
		res, err := runGrid(opts)
		if err != nil {
			return nil, err
		}
		row := Figure3Row{Threads: size, Cores: (size + 1) / 2}
		var speedups []float64
		for i := range ws {
			ic, fl := res[2*i], res[2*i+1]
			row.ICOUNT += ic.IPC / float64(len(ws))
			row.FlushS30 += fl.IPC / float64(len(ws))
			speedups = append(speedups, sim.Speedup(fl, ic))
		}
		row.AvgSpeedup = stats.Mean(speedups)
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure4Row summarises the L2 hit-time distribution for one core count.
type Figure4Row struct {
	Threads, Cores int
	Hits           uint64
	Mean           float64
	P50, P90, Max  int
	// Frac20to70 is the paper's observation metric: the share of L2
	// hits taking 20-70 cycles.
	Frac20to70 float64
	// Buckets holds 10-cycle-wide bins of the distribution, 0..150+.
	Buckets []uint64
}

// Figure4 reproduces Figure 4: the average L2 cache hit time measured
// from load issue, under ICOUNT (which "does not alter the L2 access
// pattern"), for each machine size. Dispersion grows with core count.
func Figure4(cfg Config) ([]Figure4Row, error) {
	var opts []sim.Options
	var sizes []int
	for _, size := range workload.Sizes() {
		for _, w := range workload.OfSize(size) {
			opts = append(opts, cfg.options(w, sim.SpecICOUNT))
			sizes = append(sizes, size)
		}
	}
	res, err := runGrid(opts)
	if err != nil {
		return nil, err
	}
	bySize := map[int]*stats.Histogram{}
	for i, r := range res {
		h := bySize[sizes[i]]
		if h == nil {
			bySize[sizes[i]] = r.HitLatency
		} else {
			h.Merge(r.HitLatency)
		}
	}
	var rows []Figure4Row
	for _, size := range workload.Sizes() {
		h := bySize[size]
		buckets, over := h.Buckets(10)
		view := make([]uint64, 16)
		copy(view, buckets)
		view[15] += over
		for _, b := range buckets[16:] {
			view[15] += b
		}
		rows = append(rows, Figure4Row{
			Threads: size, Cores: (size + 1) / 2,
			Hits: h.Count(), Mean: h.Mean(),
			P50: h.Percentile(0.5), P90: h.Percentile(0.9), Max: h.Max(),
			Frac20to70: h.FracBetween(20, 70),
			Buckets:    view,
		})
	}
	return rows, nil
}

// Figure5Row is one line point of Figure 5: throughput for one Detection
// Moment choice on one workload.
type Figure5Row struct {
	Workload string
	Policy   string
	IPC      float64
}

// Figure5Triggers are the speculative triggers the paper sweeps.
var Figure5Triggers = []int{30, 50, 70, 90, 110, 130, 150}

// Figure5 reproduces the Detection Moment analysis on (a) 8W3 and (b) the
// bzip2/twolf mix: the best trigger is workload-dependent and FL-NS can
// beat every static trigger.
func Figure5(cfg Config) ([]Figure5Row, error) {
	w3, _ := workload.ByName("8W3")
	targets := []workload.Workload{w3, workload.BzipTwolf8}
	var opts []sim.Options
	var rows []Figure5Row
	for _, w := range targets {
		for _, trig := range Figure5Triggers {
			opts = append(opts, cfg.options(w, sim.SpecFlushS(trig)))
			rows = append(rows, Figure5Row{Workload: w.Name, Policy: fmt.Sprintf("FL-S%d", trig)})
		}
		opts = append(opts, cfg.options(w, sim.SpecFlushNS))
		rows = append(rows, Figure5Row{Workload: w.Name, Policy: "FL-NS"})
	}
	res, err := runGrid(opts)
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].IPC = res[i].IPC
	}
	return rows, nil
}

// Figure8Row is one workload's bar group in Figure 8.
type Figure8Row struct {
	Workload  string
	ICOUNT    float64
	FlushS30  float64
	FlushS100 float64
	MFLUSH    float64
}

// Figure8Policies are the four policies Figure 8 compares.
var Figure8Policies = []sim.PolicySpec{
	sim.SpecICOUNT, sim.SpecFlushS(30), sim.SpecFlushS(100), sim.SpecMFLUSH,
}

// Figure8 reproduces the throughput evaluation: ICOUNT, FLUSH-S30,
// FLUSH-S100 and MFLUSH on every multicore workload (4W/6W/8W). The
// paper's headline: MFLUSH within ~2% of FLUSH-S100 on average, ahead on
// some workloads, while FLUSH-S30 can lose to ICOUNT.
func Figure8(cfg Config) ([]Figure8Row, error) {
	var ws []workload.Workload
	for _, size := range []int{4, 6, 8} {
		ws = append(ws, workload.OfSize(size)...)
	}
	var opts []sim.Options
	for _, w := range ws {
		for _, p := range Figure8Policies {
			opts = append(opts, cfg.options(w, p))
		}
	}
	res, err := runGrid(opts)
	if err != nil {
		return nil, err
	}
	rows := make([]Figure8Row, len(ws))
	for i, w := range ws {
		base := i * len(Figure8Policies)
		rows[i] = Figure8Row{
			Workload:  w.Name,
			ICOUNT:    res[base+0].IPC,
			FlushS30:  res[base+1].IPC,
			FlushS100: res[base+2].IPC,
			MFLUSH:    res[base+3].IPC,
		}
	}
	return rows, nil
}

// Figure8Averages folds Figure 8 rows into policy means.
func Figure8Averages(rows []Figure8Row) (icount, s30, s100, mflush float64) {
	n := float64(len(rows))
	if n == 0 {
		return
	}
	for _, r := range rows {
		icount += r.ICOUNT / n
		s30 += r.FlushS30 / n
		s100 += r.FlushS100 / n
		mflush += r.MFLUSH / n
	}
	return
}

// Figure11Row is one workload's wasted-energy comparison.
type Figure11Row struct {
	Workload string
	// Wasted energy in energy units (the cost of re-fetching flushed
	// instructions) for each flushing policy.
	FlushS30, FlushS100, MFLUSH float64
	// Committed instructions under MFLUSH, for normalisation.
	MFLUSHCommitted uint64
}

// Figure11 reproduces the Wasted Energy evaluation. The paper's headline:
// MFLUSH wastes ~20% less energy than FLUSH-S100 (the best performer),
// and FLUSH-S100 wastes ~10% more than FLUSH-S30.
func Figure11(cfg Config) ([]Figure11Row, error) {
	var ws []workload.Workload
	for _, size := range []int{4, 6, 8} {
		ws = append(ws, workload.OfSize(size)...)
	}
	specs := []sim.PolicySpec{sim.SpecFlushS(30), sim.SpecFlushS(100), sim.SpecMFLUSH}
	var opts []sim.Options
	for _, w := range ws {
		for _, p := range specs {
			opts = append(opts, cfg.options(w, p))
		}
	}
	res, err := runGrid(opts)
	if err != nil {
		return nil, err
	}
	rows := make([]Figure11Row, len(ws))
	for i, w := range ws {
		base := i * len(specs)
		rows[i] = Figure11Row{
			Workload:        w.Name,
			FlushS30:        res[base+0].WastedEnergy(),
			FlushS100:       res[base+1].WastedEnergy(),
			MFLUSH:          res[base+2].WastedEnergy(),
			MFLUSHCommitted: res[base+2].Energy.Committed(),
		}
	}
	return rows, nil
}

// Figure11Averages returns total wasted energy per policy and the MFLUSH
// saving versus FLUSH-S100 as a fraction.
func Figure11Averages(rows []Figure11Row) (s30, s100, mflush, savingVsS100 float64) {
	for _, r := range rows {
		s30 += r.FlushS30
		s100 += r.FlushS100
		mflush += r.MFLUSH
	}
	if s100 > 0 {
		savingVsS100 = 1 - mflush/s100
	}
	return
}
