package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The ablations quantify the design choices DESIGN.md calls out: the
// MCReg history depth the paper mentions as an optional extension, the
// STALL response action MFLUSH builds on, and the sensitivity of the
// whole mechanism to the per-core MSHR size (which bounds the
// memory-level parallelism a flush can disturb).

// AblationRow is one policy/configuration variant measured on one
// workload.
type AblationRow struct {
	Workload string
	Variant  string
	IPC      float64
	Wasted   float64
	Flushes  uint64
}

// MCRegHistoryDepths are the history configurations swept by
// AblationMCRegHistory. Depth 1 is the published single-register design.
var MCRegHistoryDepths = []int{1, 2, 4, 8}

// AblationMCRegHistory evaluates MFLUSH with deeper MCReg histories
// (paper §4.1: "the MCReg registers admit more complex configurations,
// involving queues") on a contended and an uncontended workload.
func AblationMCRegHistory(cfg Config) ([]AblationRow, error) {
	w8, _ := workload.ByName("8W3")
	w4, _ := workload.ByName("4W3")
	var opts []sim.Options
	var rows []AblationRow
	for _, w := range []workload.Workload{w4, w8} {
		for _, depth := range MCRegHistoryDepths {
			opts = append(opts, cfg.options(w, sim.PolicySpec{Kind: sim.MFLUSH, History: depth}))
			rows = append(rows, AblationRow{Workload: w.Name, Variant: fmt.Sprintf("MCReg history %d", depth)})
		}
	}
	res, err := runGrid(opts)
	if err != nil {
		return nil, err
	}
	for i, r := range res {
		rows[i].IPC = r.IPC
		rows[i].Wasted = r.WastedEnergy()
		rows[i].Flushes = r.Flushes
	}
	return rows, nil
}

// AblationResponseAction compares the two response actions the paper
// discusses — STALL (keep resources, stop fetching) and FLUSH (free
// resources) — plus MFLUSH, which blends them through the Preventive
// State.
func AblationResponseAction(cfg Config) ([]AblationRow, error) {
	w2, _ := workload.ByName("2W3")
	w8, _ := workload.ByName("8W3")
	specs := []sim.PolicySpec{
		sim.SpecICOUNT,
		sim.SpecStallS(30),
		sim.SpecFlushS(30),
		sim.SpecMFLUSH,
	}
	var opts []sim.Options
	var rows []AblationRow
	for _, w := range []workload.Workload{w2, w8} {
		for _, spec := range specs {
			opts = append(opts, cfg.options(w, spec))
			rows = append(rows, AblationRow{Workload: w.Name, Variant: spec.String()})
		}
	}
	res, err := runGrid(opts)
	if err != nil {
		return nil, err
	}
	for i, r := range res {
		rows[i].IPC = r.IPC
		rows[i].Wasted = r.WastedEnergy()
		rows[i].Flushes = r.Flushes
	}
	return rows, nil
}

// MSHRSizes are the per-core MSHR capacities swept by AblationMSHR.
var MSHRSizes = []int{4, 8, 16, 32}

// AblationMSHR sweeps the per-core MSHR size under MFLUSH: the MSHR bounds
// each thread's memory-level parallelism and therefore both the clog a
// blocked thread causes and the work a flush destroys.
func AblationMSHR(cfg Config) ([]AblationRow, error) {
	w, _ := workload.ByName("8W3")
	var opts []sim.Options
	var rows []AblationRow
	for _, size := range MSHRSizes {
		size := size
		o := cfg.options(w, sim.SpecMFLUSH)
		o.Tweak = func(c *config.Config) { c.Core.MSHREntries = size }
		opts = append(opts, o)
		rows = append(rows, AblationRow{Workload: w.Name, Variant: fmt.Sprintf("MSHR %d", size)})
	}
	res, err := runGrid(opts)
	if err != nil {
		return nil, err
	}
	for i, r := range res {
		rows[i].IPC = r.IPC
		rows[i].Wasted = r.WastedEnergy()
		rows[i].Flushes = r.Flushes
	}
	return rows, nil
}

// RegReserveSizes are the per-thread rename-register reservations swept by
// AblationRegReserve.
var RegReserveSizes = []int{0, 16, 24, 48, 96}

// AblationRegReserve sweeps the per-thread register reservation, the knob
// that controls how completely a blocked thread can starve its partner —
// the mechanism behind the paper's ICOUNT pathology (reserve 0 recreates a
// fully shared pool; 96 approaches a static partition).
func AblationRegReserve(cfg Config) ([]AblationRow, error) {
	w, _ := workload.ByName("2W3")
	var opts []sim.Options
	var rows []AblationRow
	for _, spec := range []sim.PolicySpec{sim.SpecICOUNT, sim.SpecFlushS(30)} {
		for _, reserve := range RegReserveSizes {
			reserve := reserve
			o := cfg.options(w, spec)
			o.Tweak = func(c *config.Config) { c.Core.RegReservePerThread = reserve }
			opts = append(opts, o)
			rows = append(rows, AblationRow{
				Workload: w.Name,
				Variant:  fmt.Sprintf("%s reserve %d", spec, reserve),
			})
		}
	}
	res, err := runGrid(opts)
	if err != nil {
		return nil, err
	}
	for i, r := range res {
		rows[i].IPC = r.IPC
		rows[i].Wasted = r.WastedEnergy()
		rows[i].Flushes = r.Flushes
	}
	return rows, nil
}
