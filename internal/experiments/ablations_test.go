package experiments

import "testing"

func TestAblationMCRegHistory(t *testing.T) {
	rows, err := AblationMCRegHistory(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(MCRegHistoryDepths) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.IPC <= 0 {
			t.Errorf("%s/%s: non-positive IPC", r.Workload, r.Variant)
		}
	}
}

func TestAblationResponseAction(t *testing.T) {
	rows, err := AblationResponseAction(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	byVariant := map[string]AblationRow{}
	for _, r := range rows {
		if r.Workload == "2W3" {
			byVariant[r.Variant] = r
		}
	}
	// STALL never squashes, so it must waste no flush energy; FLUSH must.
	if byVariant["STALL-S30"].Wasted != 0 {
		t.Errorf("STALL wasted energy %v", byVariant["STALL-S30"].Wasted)
	}
	if byVariant["FLUSH-S30"].Wasted <= 0 {
		t.Error("FLUSH-S30 wasted no energy on a memory-bound pair")
	}
	if byVariant["ICOUNT"].Flushes != 0 {
		t.Error("ICOUNT flushed")
	}
}

func TestAblationMSHR(t *testing.T) {
	rows, err := AblationMSHR(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(MSHRSizes) {
		t.Fatalf("rows = %d", len(rows))
	}
	// More MSHRs (more memory-level parallelism) must not make the
	// machine slower in any dramatic way; specifically the largest size
	// should beat the smallest.
	if rows[len(rows)-1].IPC <= rows[0].IPC*0.9 {
		t.Errorf("MSHR 32 IPC %.3f not above MSHR 4 IPC %.3f",
			rows[len(rows)-1].IPC, rows[0].IPC)
	}
}

func TestAblationRegReserve(t *testing.T) {
	rows, err := AblationRegReserve(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(RegReserveSizes) {
		t.Fatalf("rows = %d", len(rows))
	}
	// Under ICOUNT, a larger reservation must help the memory-bound pair
	// (the partner is protected from the clog).
	var icount0, icount96 float64
	for _, r := range rows {
		switch r.Variant {
		case "ICOUNT reserve 0":
			icount0 = r.IPC
		case "ICOUNT reserve 96":
			icount96 = r.IPC
		}
	}
	if icount96 <= icount0 {
		t.Errorf("ICOUNT with full partition (%.3f) not above shared pool (%.3f)",
			icount96, icount0)
	}
}
