package experiments

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TimeSeriesRow is one interval sample of one policy's run: the
// time-resolved view (Hermes-style per-interval metrics) that the
// end-of-run figures cannot show. MCRegMin/Max fold the MFLUSH MCReg
// state across cores and banks; both are -1 for other policies.
type TimeSeriesRow struct {
	// Workload and Policy name the run the sample belongs to.
	Workload, Policy string
	// MeasuredCycle is the sample position within the measured window.
	MeasuredCycle uint64
	// IntervalIPC is the system throughput within the sample's interval;
	// IPC is cumulative since measurement start.
	IntervalIPC, IPC float64
	// Flushes and L2Misses are cumulative chip-wide counts.
	Flushes, L2Misses uint64
	// MCRegMin and MCRegMax bound the MCReg latency predictions, -1 when
	// the policy has no MCReg file.
	MCRegMin, MCRegMax int
}

// TimeSeries runs one workload under each given policy with an interval
// recorder attached, returning the interleaved per-policy series
// (policy-major, then time) plus the final results in policy order. It
// is the interval-capable harness behind temporal analyses: how IPC,
// flush rate and the MCReg predictions evolve as L2-miss behaviour
// develops over a run.
func TimeSeries(cfg Config, workloadName string, policies []sim.PolicySpec, interval uint64) ([]TimeSeriesRow, []*sim.Result, error) {
	if interval == 0 {
		return nil, nil, fmt.Errorf("experiments: time series needs a positive interval")
	}
	w, ok := workload.ByName(workloadName)
	if !ok {
		return nil, nil, fmt.Errorf("experiments: unknown workload %q", workloadName)
	}
	var opts []sim.Options
	for _, p := range policies {
		o := cfg.options(w, p)
		o.Interval = interval
		opts = append(opts, o)
	}
	res, err := runGrid(opts)
	if err != nil {
		return nil, nil, err
	}
	var rows []TimeSeriesRow
	for _, r := range res {
		for _, p := range r.Samples {
			row := TimeSeriesRow{
				Workload: r.Workload, Policy: r.Policy,
				MeasuredCycle: p.MeasuredCycles,
				IntervalIPC:   p.IntervalIPC, IPC: p.IPC,
				Flushes: p.Flushes, L2Misses: p.L2Misses,
				MCRegMin: -1, MCRegMax: -1,
			}
			if lo, hi, ok := p.MCRegBounds(); ok {
				row.MCRegMin, row.MCRegMax = lo, hi
			}
			rows = append(rows, row)
		}
	}
	return rows, res, nil
}
