package core

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/policy"
)

func TestMCRegInitAndUpdate(t *testing.T) {
	f := NewMCRegFile(4, 1, 22)
	for b := 0; b < 4; b++ {
		if got := f.Predict(b); got != 22 {
			t.Fatalf("bank %d initial prediction %d, want 22", b, got)
		}
	}
	f.Update(2, 55)
	if got := f.Predict(2); got != 55 {
		t.Fatalf("bank 2 prediction %d, want 55 (paper Figure 7 example)", got)
	}
	if got := f.Predict(1); got != 22 {
		t.Fatalf("bank 1 prediction %d, unaffected banks must not change", got)
	}
}

func TestMCRegSaturates(t *testing.T) {
	f := NewMCRegFile(1, 1, 0)
	f.Update(0, 10000)
	if got := f.Predict(0); got != MCRegMax {
		t.Fatalf("prediction %d, want saturation at %d", got, MCRegMax)
	}
	f.Update(0, -5)
	if got := f.Predict(0); got != 0 {
		t.Fatalf("prediction %d, want clamp at 0", got)
	}
}

func TestMCRegHistoryMaxReduction(t *testing.T) {
	f := NewMCRegFile(1, 3, 20)
	f.Update(0, 60)
	f.Update(0, 30)
	// History: [30, 60, 20] -> max = 60.
	if got := f.Predict(0); got != 60 {
		t.Fatalf("history prediction %d, want 60", got)
	}
	f.Update(0, 10)
	f.Update(0, 10)
	f.Update(0, 10)
	if got := f.Predict(0); got != 10 {
		t.Fatalf("after history drains, prediction %d, want 10", got)
	}
}

func TestMCRegSnapshotAndPanics(t *testing.T) {
	f := NewMCRegFile(2, 1, 7)
	f.Update(1, 99)
	snap := f.Snapshot()
	if snap[0] != 7 || snap[1] != 99 {
		t.Fatalf("snapshot = %v", snap)
	}
	if f.Banks() != 2 {
		t.Fatalf("banks = %d", f.Banks())
	}
	for _, fn := range []func(){
		func() { NewMCRegFile(0, 1, 0) },
		func() { NewMCRegFile(1, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected constructor panic")
				}
			}()
			fn()
		}()
	}
}

func TestEnvironmentThresholds(t *testing.T) {
	cfg := config.Default(4)
	env := EnvironmentFor(&cfg)
	if env.Min != cfg.MinL2Latency() || env.Max != cfg.MaxL2Latency() || env.MT != cfg.MTDelay() {
		t.Fatalf("environment %v does not match config derivations", env)
	}
	if env.Suspicious() != env.Min+env.MT {
		t.Fatalf("suspicious = %d, want MIN+MT = %d", env.Suspicious(), env.Min+env.MT)
	}
	// Single core: MT = 0.
	cfg1 := config.Default(1)
	env1 := EnvironmentFor(&cfg1)
	if env1.MT != 0 {
		t.Fatalf("single-core MT = %d", env1.MT)
	}
}

func TestBarrierFormulaAndClamps(t *testing.T) {
	cfg := config.Default(2)
	env := EnvironmentFor(&cfg)
	pred := 50
	want := pred + env.Min/2 + env.MT
	if got := env.Barrier(pred); got != want {
		t.Fatalf("Barrier(%d) = %d, want %d", pred, got, want)
	}
	// Property: the barrier is always within (suspicious, MAX+MT].
	f := func(pRaw uint8) bool {
		b := env.Barrier(int(pRaw))
		return b > env.Suspicious() && b <= env.Max+env.MT
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Extreme predictions clamp rather than misbehave.
	if env.Barrier(-1000) <= env.Suspicious() {
		t.Fatal("low clamp failed")
	}
	if env.Barrier(1<<20) > env.Max+env.MT {
		t.Fatal("high clamp failed")
	}
}

func TestMFLUSHPreventiveThenFlush(t *testing.T) {
	cfg := config.Default(4)
	m := NewMFLUSH(&cfg)
	env := m.Env()
	li := &policy.LoadInfo{Tid: 0, IssuedAt: 0, Bank: 1}
	m.OnL1Miss(li, 0)

	// Below suspicious: normal.
	d := directiveFor(t, m.Tick(uint64(env.Suspicious()-1)), 0)
	if d.Action != policy.ActNone {
		t.Fatalf("below suspicious: %v", d.Action)
	}
	// Past suspicious, below barrier: Preventive State.
	d = directiveFor(t, m.Tick(uint64(env.Suspicious()+1)), 0)
	if d.Action != policy.ActStall {
		t.Fatalf("past suspicious: %v, want stall", d.Action)
	}
	// Past the barrier: flush.
	barrier := env.Barrier(env.Min) // MCReg initialised to Min
	d = directiveFor(t, m.Tick(uint64(barrier+1)), 0)
	if d.Action != policy.ActFlush || d.Load != li {
		t.Fatalf("past barrier: %v", d)
	}
}

func TestMFLUSHReleasesOnResolve(t *testing.T) {
	cfg := config.Default(4)
	m := NewMFLUSH(&cfg)
	env := m.Env()
	li := &policy.LoadInfo{Tid: 0, IssuedAt: 0, Bank: 0}
	m.OnL1Miss(li, 0)
	now := uint64(env.Suspicious() + 2)
	if d := directiveFor(t, m.Tick(now), 0); d.Action != policy.ActStall {
		t.Fatal("expected preventive state")
	}
	li.Resolved = true
	li.ResolvedAt = now + 1
	li.L2Hit = true
	m.OnResolve(li, now+1)
	if d := directiveFor(t, m.Tick(now+2), 0); d.Action != policy.ActNone {
		t.Fatalf("after resolve: %v, want none", d.Action)
	}
	if m.Outstanding(0) != 0 {
		t.Fatal("resolved load still tracked")
	}
}

func TestMFLUSHTrainsMCRegOnHits(t *testing.T) {
	cfg := config.Default(2)
	m := NewMFLUSH(&cfg)
	li := &policy.LoadInfo{Tid: 0, IssuedAt: 100, Bank: 3}
	m.OnL1Miss(li, 100)
	li.Resolved, li.L2Hit, li.ResolvedAt = true, true, 160
	m.OnResolve(li, 160)
	if got := m.MCReg().Predict(3); got != 60 {
		t.Fatalf("MCReg after 60-cycle hit = %d", got)
	}
	// A later load to the same bank inherits the longer barrier.
	li2 := &policy.LoadInfo{Tid: 0, IssuedAt: 200, Bank: 3}
	m.OnL1Miss(li2, 200)
	env := m.Env()
	barrier := uint64(200 + env.Barrier(60))
	if d := directiveFor(t, m.Tick(barrier), 0); d.Action == policy.ActFlush {
		t.Fatal("flushed at (not past) the adapted barrier")
	}
	if d := directiveFor(t, m.Tick(barrier+1), 0); d.Action != policy.ActFlush {
		t.Fatalf("not flushed past the adapted barrier: %v", d.Action)
	}
}

func TestMFLUSHSkipsTrainingOnMissesAndTLB(t *testing.T) {
	cfg := config.Default(2)
	m := NewMFLUSH(&cfg)
	before := m.MCReg().Predict(0)

	miss := &policy.LoadInfo{Tid: 0, IssuedAt: 0, Bank: 0}
	m.OnL1Miss(miss, 0)
	miss.Resolved, miss.L2Hit, miss.ResolvedAt = true, false, 284
	m.OnResolve(miss, 284)
	if got := m.MCReg().Predict(0); got != before {
		t.Fatalf("L2 miss trained MCReg: %d", got)
	}

	tlb := &policy.LoadInfo{Tid: 0, IssuedAt: 0, Bank: 0, TLBMiss: true, L2Hit: true}
	m.OnL1Miss(tlb, 0)
	tlb.Resolved, tlb.ResolvedAt = true, 330
	m.OnResolve(tlb, 330)
	if got := m.MCReg().Predict(0); got != before {
		t.Fatalf("TLB-distorted hit trained MCReg: %d", got)
	}
}

func TestMFLUSHIgnoresDetectedMissSignal(t *testing.T) {
	// The published MFLUSH is purely Barrier-driven: the non-speculative
	// miss signal must not trigger an early flush (that would degrade it
	// to FLUSH-NS behaviour and forfeit the energy advantage).
	cfg := config.Default(4)
	m := NewMFLUSH(&cfg)
	env := m.Env()
	li := &policy.LoadInfo{Tid: 1, IssuedAt: 0, Bank: 2}
	m.OnL1Miss(li, 0)
	m.OnL2MissDetected(li, 40)
	if !li.L2MissDetected {
		t.Fatal("signal should be recorded on the load")
	}
	d := directiveFor(t, m.Tick(41), 1)
	if d.Action == policy.ActFlush {
		t.Fatal("detected miss must not flush before the Barrier")
	}
	// The Barrier still applies as usual.
	barrier := env.Barrier(env.Min)
	d = directiveFor(t, m.Tick(uint64(barrier+1)), 1)
	if d.Action != policy.ActFlush {
		t.Fatalf("past barrier: %v, want flush", d.Action)
	}
}

func TestMFLUSHSquashDropsTracking(t *testing.T) {
	cfg := config.Default(2)
	m := NewMFLUSH(&cfg)
	li := &policy.LoadInfo{Tid: 0, IssuedAt: 0, Bank: 0}
	m.OnL1Miss(li, 0)
	m.OnSquash(li)
	if m.Outstanding(0) != 0 {
		t.Fatal("squashed load still tracked")
	}
	if d := directiveFor(t, m.Tick(100000), 0); d.Action != policy.ActNone {
		t.Fatalf("directive for squashed load: %v", d.Action)
	}
}

func TestMFLUSHTelemetry(t *testing.T) {
	cfg := config.Default(2)
	m := NewMFLUSH(&cfg)
	li := &policy.LoadInfo{Tid: 0, IssuedAt: 0, Bank: 0}
	m.OnL1Miss(li, 0)
	m.Tick(uint64(m.Env().Max + m.Env().MT + 10)) // past max barrier: flush
	li.Resolved, li.L2Hit, li.ResolvedAt = true, true, 50
	m.OnResolve(li, 50)
	preds, updates, flushes, _ := m.Telemetry()
	if preds != 1 || updates != 1 || flushes != 1 {
		t.Fatalf("telemetry = %d/%d/%d, want 1/1/1", preds, updates, flushes)
	}
}

func directiveFor(t *testing.T, ds []policy.Directive, tid int) policy.Directive {
	t.Helper()
	for _, d := range ds {
		if d.Tid == tid {
			return d
		}
	}
	t.Fatalf("no directive for thread %d in %v", tid, ds)
	return policy.Directive{}
}
