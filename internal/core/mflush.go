// Package core implements the paper's contribution: the MFLUSH IFetch
// policy for CMPs built from SMT cores sharing a banked L2 cache.
//
// MFLUSH adapts the FLUSH/STALL philosophy to the CMP+SMT scenario, where
// the L2 *hit* latency is highly variable (bus and bank contention), so no
// static flush trigger works for every workload. For each memory access
// MFLUSH predicts the resolution time from an 8-bit register per
// (core, L2 bank) — the MCReg — that latches the latency of the last L2
// hit observed in that bank. From the prediction it derives a dynamic
// Barrier; accesses outstanding longer than a suspicious threshold put the
// thread into a Preventive State (fetch-stalled but still executing), and
// accesses outstanding past the Barrier trigger a flush.
//
// Operational environment (paper Figure 6):
//
//	MIN       = L1-miss latency (fastest possible L2 hit, from issue)
//	MAX       = L2-miss latency
//	MT        = (L1_L2_bus_delay + L2_bank_access_delay) * (numCores - 1)
//	suspicious  threshold = MIN + MT
//	BARRIER   = L2prediction + MIN/2 + MT
package core

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/policy"
)

// MCRegMax is the saturation bound of the 8-bit MCReg registers.
const MCRegMax = 255

// MCRegFile is the per-core MFLUSH hardware support: one small register
// per shared-L2 bank holding the latency of the last L2 hit served by that
// bank (paper Figure 7). An optional history deepens each register into a
// small queue whose maximum is used as the prediction — the "more complex
// configurations" the paper mentions; HistoryLen 1 is the paper's default.
type MCRegFile struct {
	histories  [][]uint8
	historyLen int
}

// NewMCRegFile returns a register file for the given bank count, with
// every entry initialised to init (clamped to 8 bits). historyLen selects
// the per-bank history depth; 1 reproduces the paper's single register.
func NewMCRegFile(banks, historyLen int, init int) *MCRegFile {
	if banks <= 0 {
		panic("core: MCRegFile needs at least one bank")
	}
	if historyLen <= 0 {
		panic("core: MCRegFile history must be positive")
	}
	f := &MCRegFile{histories: make([][]uint8, banks), historyLen: historyLen}
	v := clamp8(init)
	for b := range f.histories {
		h := make([]uint8, historyLen)
		for i := range h {
			h[i] = v
		}
		f.histories[b] = h
	}
	return f
}

// Predict returns the predicted L2 hit latency for the given bank: the
// newest entry with HistoryLen 1, otherwise the maximum over the history
// (a conservative reduction that avoids flushing on the fastest recent
// sample).
func (f *MCRegFile) Predict(bank int) int {
	h := f.histories[bank]
	max := h[0]
	for _, v := range h[1:] {
		if v > max {
			max = v
		}
	}
	return int(max)
}

// Update latches an observed L2 hit latency for the bank.
func (f *MCRegFile) Update(bank, latency int) {
	h := f.histories[bank]
	copy(h[1:], h[:len(h)-1])
	h[0] = clamp8(latency)
}

// Banks returns the number of banks tracked.
func (f *MCRegFile) Banks() int { return len(f.histories) }

// Snapshot returns the newest value per bank (for reports and tests).
func (f *MCRegFile) Snapshot() []uint8 {
	out := make([]uint8, len(f.histories))
	for b, h := range f.histories {
		out[b] = h[0]
	}
	return out
}

// AppendSnapshot appends the newest value per bank to dst and returns the
// extended slice. It is the allocation-free form of Snapshot for per-
// interval samplers: pass dst[:0] of a reused buffer to refresh it in
// place.
//
//mflush:hotpath-ok
func (f *MCRegFile) AppendSnapshot(dst []uint8) []uint8 {
	for _, h := range f.histories {
		dst = append(dst, h[0])
	}
	return dst
}

func clamp8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > MCRegMax {
		return MCRegMax
	}
	return uint8(v)
}

// OperationalEnvironment holds the derived MFLUSH thresholds for one
// machine configuration (paper Figure 6).
type OperationalEnvironment struct {
	// Min is the fastest possible L2 hit latency from load issue.
	Min int
	// Max is the L2 miss resolution latency.
	Max int
	// MT is the Multicore Traffic delay.
	MT int
}

// EnvironmentFor derives the operational environment from a machine
// configuration.
func EnvironmentFor(cfg *config.Config) OperationalEnvironment {
	return OperationalEnvironment{
		Min: cfg.MinL2Latency(),
		Max: cfg.MaxL2Latency(),
		MT:  cfg.MTDelay(),
	}
}

// Suspicious returns the Preventive State threshold MIN + MT.
func (e OperationalEnvironment) Suspicious() int { return e.Min + e.MT }

// Barrier returns the flush threshold for a given L2 latency prediction:
// prediction + MIN/2 + MT, clamped into [Suspicious+1, Max+MT] so a
// corrupt prediction can neither flush instantly nor never.
func (e OperationalEnvironment) Barrier(prediction int) int {
	b := prediction + e.Min/2 + e.MT
	if lo := e.Suspicious() + 1; b < lo {
		b = lo
	}
	if hi := e.Max + e.MT; b > hi {
		b = hi
	}
	return b
}

// String renders the environment compactly.
func (e OperationalEnvironment) String() string {
	return fmt.Sprintf("MIN=%d MAX=%d MT=%d suspicious=%d", e.Min, e.Max, e.MT, e.Suspicious())
}

// MFLUSH is the adaptive IFetch policy. It implements policy.Policy for
// one core.
type MFLUSH struct {
	env   OperationalEnvironment
	mcreg *MCRegFile
	// loads[tid] holds outstanding L1-missing loads in issue order,
	// each with its Barrier frozen at miss time.
	loads [][]trackedLoad
	out   []policy.Directive

	// Telemetry.
	predictions uint64
	updates     uint64
	flushes     uint64
	preventive  uint64
}

type trackedLoad struct {
	li      *policy.LoadInfo
	barrier uint64
}

// NewMFLUSH builds the policy for one core of the given machine. The MCReg
// registers start at MIN, the uncontended L2 hit latency.
func NewMFLUSH(cfg *config.Config) *MFLUSH {
	return NewMFLUSHHistory(cfg, 1)
}

// NewMFLUSHHistory builds MFLUSH with a deeper MCReg history (the paper's
// optional configuration; historyLen 1 is the published design).
func NewMFLUSHHistory(cfg *config.Config, historyLen int) *MFLUSH {
	env := EnvironmentFor(cfg)
	return &MFLUSH{
		env:   env,
		mcreg: NewMCRegFile(cfg.Mem.L2.Banks, historyLen, env.Min),
		loads: make([][]trackedLoad, cfg.Core.ThreadsPerCore),
	}
}

// Name implements policy.Policy.
func (m *MFLUSH) Name() string { return "MFLUSH" }

// Env returns the derived operational environment.
func (m *MFLUSH) Env() OperationalEnvironment { return m.env }

// MCReg exposes the register file (reports, tests).
//
//mflush:hotpath-ok
func (m *MFLUSH) MCReg() *MCRegFile { return m.mcreg }

// OnL1Miss implements policy.Policy: predict the access's resolution time
// from the bank's MCReg and freeze its Barrier.
func (m *MFLUSH) OnL1Miss(li *policy.LoadInfo, now uint64) {
	pred := m.mcreg.Predict(li.Bank)
	m.predictions++
	barrier := li.IssuedAt + uint64(m.env.Barrier(pred))
	m.loads[li.Tid] = append(m.loads[li.Tid], trackedLoad{li: li, barrier: barrier})
}

// OnL2MissDetected implements policy.Policy. The published MFLUSH is
// purely Barrier-driven: it does not use the non-speculative miss signal
// (reacting to it would turn MFLUSH into FLUSH-NS for true misses and
// forfeit the energy advantage of the later, smaller flushes). The signal
// is only recorded on the LoadInfo for reporting.
func (m *MFLUSH) OnL2MissDetected(li *policy.LoadInfo, now uint64) {
	li.L2MissDetected = true
}

// OnResolve implements policy.Policy: drop tracking and, for L2 hits whose
// latency was not distorted by a TLB walk, train the bank's MCReg with the
// observed latency.
func (m *MFLUSH) OnResolve(li *policy.LoadInfo, now uint64) {
	m.drop(li)
	if li.L2Hit && !li.TLBMiss {
		m.mcreg.Update(li.Bank, int(li.ResolvedAt-li.IssuedAt))
		m.updates++
	}
}

// OnSquash implements policy.Policy.
func (m *MFLUSH) OnSquash(li *policy.LoadInfo) { m.drop(li) }

func (m *MFLUSH) drop(li *policy.LoadInfo) {
	s := m.loads[li.Tid]
	for i := range s {
		if s[i].li == li {
			m.loads[li.Tid] = append(s[:i], s[i+1:]...)
			return
		}
	}
}

// Tick implements policy.Policy: per thread, a load past its Barrier
// demands a flush; otherwise a load past the suspicious threshold demands
// the Preventive State (fetch stall); otherwise normal fetch.
func (m *MFLUSH) Tick(now uint64) []policy.Directive {
	m.out = m.out[:0]
	susp := uint64(m.env.Suspicious())
	for tid := range m.loads {
		act := policy.ActNone
		var offender *policy.LoadInfo
		for i := range m.loads[tid] {
			t := &m.loads[tid][i]
			if now > t.barrier {
				act = policy.ActFlush
				offender = t.li
				break
			}
			if t.li.Elapsed(now) > susp {
				act = policy.ActStall
			}
		}
		switch act {
		case policy.ActFlush:
			m.flushes++
			m.out = append(m.out, policy.Directive{Tid: tid, Action: policy.ActFlush, Load: offender})
		case policy.ActStall:
			m.preventive++
			m.out = append(m.out, policy.Directive{Tid: tid, Action: policy.ActStall})
		default:
			m.out = append(m.out, policy.Directive{Tid: tid, Action: policy.ActNone})
		}
	}
	return m.out
}

// Telemetry returns internal event counts: latency predictions made, MCReg
// updates, flush directives and preventive-state cycles.
func (m *MFLUSH) Telemetry() (predictions, updates, flushes, preventiveCycles uint64) {
	return m.predictions, m.updates, m.flushes, m.preventive
}

// Outstanding returns the number of tracked loads for tid.
func (m *MFLUSH) Outstanding(tid int) int { return len(m.loads[tid]) }

var _ policy.Policy = (*MFLUSH)(nil)
