// Package cache provides the tag-array models used throughout the memory
// hierarchy: a banked set-associative cache with LRU replacement, a miss
// status holding register (MSHR) file, and a fully-associative TLB.
//
// These are timing models: they track presence and replacement, not data.
// Bank port occupancy is scheduled by the owning controller (internal/mem),
// which knows the clock.
package cache

import (
	"fmt"

	"repro/internal/config"
)

// Cache is a banked set-associative tag store with true-LRU replacement.
// Addresses are byte addresses; the cache derives line, bank and set
// indices from its geometry. Line addresses are distributed across banks
// by their low-order line bits, so consecutive lines hit different banks.
type Cache struct {
	geom     config.CacheGeom
	sets     int
	lineBits uint
	bankMask uint64
	// tags[bank][set*assoc+way]; 0 means empty, otherwise lineAddr+1.
	tags [][]uint64
	// stamp[bank][set*assoc+way]: LRU timestamps.
	stamp   [][]uint64
	clock   uint64
	hits    uint64
	misses  uint64
	inserts uint64
}

// New constructs a cache from its geometry.
func New(geom config.CacheGeom) *Cache {
	sets := geom.Sets()
	if sets < 1 {
		panic(fmt.Sprintf("cache: geometry %+v yields no sets", geom))
	}
	lineBits := uint(0)
	for 1<<lineBits < geom.LineBytes {
		lineBits++
	}
	c := &Cache{
		geom:     geom,
		sets:     sets,
		lineBits: lineBits,
		bankMask: uint64(geom.Banks - 1),
		tags:     make([][]uint64, geom.Banks),
		stamp:    make([][]uint64, geom.Banks),
	}
	for b := range c.tags {
		c.tags[b] = make([]uint64, sets*geom.Assoc)
		c.stamp[b] = make([]uint64, sets*geom.Assoc)
	}
	return c
}

// Geometry returns the construction geometry.
func (c *Cache) Geometry() config.CacheGeom { return c.geom }

// LineAddr converts a byte address to a line address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineBits }

// BankOf returns the bank index serving the given byte address.
func (c *Cache) BankOf(addr uint64) int {
	return int(c.LineAddr(addr) & c.bankMask)
}

func (c *Cache) setOf(line uint64) int {
	return int((line >> uint(bitsFor(c.geom.Banks))) % uint64(c.sets))
}

// bitsFor returns log2 of a power of two.
func bitsFor(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// Probe reports whether the line holding addr is present, without touching
// replacement state or statistics.
func (c *Cache) Probe(addr uint64) bool {
	line := c.LineAddr(addr)
	bank := c.BankOf(addr)
	base := c.setOf(line) * c.geom.Assoc
	tag := line + 1
	for w := 0; w < c.geom.Assoc; w++ {
		if c.tags[bank][base+w] == tag {
			return true
		}
	}
	return false
}

// Access performs a lookup for addr, updating LRU state and hit/miss
// counters. It returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	line := c.LineAddr(addr)
	bank := c.BankOf(addr)
	base := c.setOf(line) * c.geom.Assoc
	tag := line + 1
	for w := 0; w < c.geom.Assoc; w++ {
		if c.tags[bank][base+w] == tag {
			c.stamp[bank][base+w] = c.clock
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// Fill inserts the line holding addr, evicting the LRU way if the set is
// full. It returns the evicted line address and true if a valid line was
// displaced.
func (c *Cache) Fill(addr uint64) (evicted uint64, wasValid bool) {
	c.clock++
	c.inserts++
	line := c.LineAddr(addr)
	bank := c.BankOf(addr)
	base := c.setOf(line) * c.geom.Assoc
	tag := line + 1
	victim := 0
	for w := 0; w < c.geom.Assoc; w++ {
		i := base + w
		if c.tags[bank][i] == tag {
			// Already present (a racing fill); just refresh.
			c.stamp[bank][i] = c.clock
			return 0, false
		}
		if c.tags[bank][i] == 0 {
			c.tags[bank][i] = tag
			c.stamp[bank][i] = c.clock
			return 0, false
		}
		if c.stamp[bank][i] < c.stamp[bank][base+victim] {
			victim = w
		}
	}
	i := base + victim
	old := c.tags[bank][i] - 1
	c.tags[bank][i] = tag
	c.stamp[bank][i] = c.clock
	return old << c.lineBits, true
}

// Stats returns cumulative hits, misses and fills.
func (c *Cache) Stats() (hits, misses, inserts uint64) {
	return c.hits, c.misses, c.inserts
}

// MissRate returns misses / accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	tot := c.hits + c.misses
	if tot == 0 {
		return 0
	}
	return float64(c.misses) / float64(tot)
}

// MSHR is a miss status holding register file. Each entry tracks one
// outstanding line fill; subsequent misses to the same line merge into the
// existing entry instead of issuing duplicate requests.
type MSHR struct {
	capacity int
	entries  map[uint64]*MSHREntry
}

// MSHREntry records one outstanding miss.
type MSHREntry struct {
	// Line is the line address being fetched.
	Line uint64
	// Waiters is the number of requests merged into this entry.
	Waiters int
	// Issued marks whether the fill request has been sent downstream.
	Issued bool
}

// NewMSHR returns an MSHR file with the given entry count.
func NewMSHR(capacity int) *MSHR {
	if capacity <= 0 {
		panic("cache: MSHR capacity must be positive")
	}
	return &MSHR{capacity: capacity, entries: make(map[uint64]*MSHREntry, capacity)}
}

// Lookup returns the entry for the line, or nil.
func (m *MSHR) Lookup(line uint64) *MSHREntry { return m.entries[line] }

// Allocate records a miss for line. If an entry already exists the miss is
// merged (secondary miss) and merged=true is returned. If the file is full
// and no entry exists, ok=false is returned and the requester must stall.
func (m *MSHR) Allocate(line uint64) (e *MSHREntry, merged, ok bool) {
	if e := m.entries[line]; e != nil {
		e.Waiters++
		return e, true, true
	}
	if len(m.entries) >= m.capacity {
		return nil, false, false
	}
	e = &MSHREntry{Line: line, Waiters: 1}
	m.entries[line] = e
	return e, false, true
}

// Free releases the entry for line when its fill completes, returning the
// number of waiters that were blocked on it. Freeing an absent line
// panics: it indicates double-completion.
func (m *MSHR) Free(line uint64) int {
	e := m.entries[line]
	if e == nil {
		panic(fmt.Sprintf("cache: MSHR free of absent line %#x", line))
	}
	delete(m.entries, line)
	return e.Waiters
}

// InUse returns the number of live entries.
func (m *MSHR) InUse() int { return len(m.entries) }

// Full reports whether a new (non-merging) allocation would fail.
func (m *MSHR) Full() bool { return len(m.entries) >= m.capacity }

// Capacity returns the configured entry count.
func (m *MSHR) Capacity() int { return m.capacity }

// TLB is a fully-associative translation buffer with LRU replacement over
// page numbers.
type TLB struct {
	capacity int
	stamp    map[uint64]uint64
	clock    uint64
	hits     uint64
	misses   uint64
}

// NewTLB returns a TLB with the given entry count.
func NewTLB(capacity int) *TLB {
	if capacity <= 0 {
		panic("cache: TLB capacity must be positive")
	}
	return &TLB{capacity: capacity, stamp: make(map[uint64]uint64, capacity)}
}

// Access looks up a page number, inserting it on miss (hardware-walked
// TLB). It returns true on hit.
func (t *TLB) Access(page uint64) bool {
	t.clock++
	if _, ok := t.stamp[page]; ok {
		t.stamp[page] = t.clock
		t.hits++
		return true
	}
	t.misses++
	if len(t.stamp) >= t.capacity {
		var lruPage uint64
		lru := ^uint64(0)
		for p, s := range t.stamp {
			if s < lru {
				lru = s
				lruPage = p
			}
		}
		delete(t.stamp, lruPage)
	}
	t.stamp[page] = t.clock
	return false
}

// Stats returns cumulative hits and misses.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }
