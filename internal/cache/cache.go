// Package cache provides the tag-array models used throughout the memory
// hierarchy: a banked set-associative cache with LRU replacement, a miss
// status holding register (MSHR) file, and a fully-associative TLB.
//
// These are timing models: they track presence and replacement, not data.
// Bank port occupancy is scheduled by the owning controller (internal/mem),
// which knows the clock.
package cache

import (
	"fmt"

	"repro/internal/config"
)

// Cache is a banked set-associative tag store with true-LRU replacement.
// Addresses are byte addresses; the cache derives line, bank and set
// indices from its geometry. Line addresses are distributed across banks
// by their low-order line bits, so consecutive lines hit different banks.
type Cache struct {
	geom     config.CacheGeom
	sets     int
	lineBits uint
	bankMask uint64
	// bankStride is sets*assoc: ways of (bank, set) start at
	// bank*bankStride + set*assoc in the flat arrays below (one
	// allocation each, better locality than per-bank slices).
	bankStride int
	// tags[bank*bankStride+set*assoc+way]; 0 means empty, otherwise
	// lineAddr+1.
	tags []uint64
	// stamp mirrors tags with LRU timestamps.
	stamp   []uint64
	clock   uint64
	hits    uint64
	misses  uint64
	inserts uint64
}

// New constructs a cache from its geometry.
func New(geom config.CacheGeom) *Cache {
	sets := geom.Sets()
	if sets < 1 {
		panic(fmt.Sprintf("cache: geometry %+v yields no sets", geom))
	}
	lineBits := uint(0)
	for 1<<lineBits < geom.LineBytes {
		lineBits++
	}
	c := &Cache{
		geom:       geom,
		sets:       sets,
		lineBits:   lineBits,
		bankMask:   uint64(geom.Banks - 1),
		bankStride: sets * geom.Assoc,
		tags:       make([]uint64, geom.Banks*sets*geom.Assoc),
		stamp:      make([]uint64, geom.Banks*sets*geom.Assoc),
	}
	return c
}

// Geometry returns the construction geometry.
func (c *Cache) Geometry() config.CacheGeom { return c.geom }

// LineAddr converts a byte address to a line address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineBits }

// BankOf returns the bank index serving the given byte address.
func (c *Cache) BankOf(addr uint64) int {
	return int(c.LineAddr(addr) & c.bankMask)
}

func (c *Cache) setOf(line uint64) int {
	return int((line >> uint(bitsFor(c.geom.Banks))) % uint64(c.sets))
}

// bitsFor returns log2 of a power of two.
func bitsFor(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// Probe reports whether the line holding addr is present, without touching
// replacement state or statistics.
func (c *Cache) Probe(addr uint64) bool {
	line := c.LineAddr(addr)
	base := c.BankOf(addr)*c.bankStride + c.setOf(line)*c.geom.Assoc
	tag := line + 1
	for w := 0; w < c.geom.Assoc; w++ {
		if c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Access performs a lookup for addr, updating LRU state and hit/miss
// counters. It returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	line := c.LineAddr(addr)
	base := c.BankOf(addr)*c.bankStride + c.setOf(line)*c.geom.Assoc
	tag := line + 1
	for w := 0; w < c.geom.Assoc; w++ {
		if c.tags[base+w] == tag {
			c.stamp[base+w] = c.clock
			c.hits++
			return true
		}
	}
	c.misses++
	return false
}

// Fill inserts the line holding addr, evicting the LRU way if the set is
// full. It returns the evicted line address and true if a valid line was
// displaced.
func (c *Cache) Fill(addr uint64) (evicted uint64, wasValid bool) {
	c.clock++
	c.inserts++
	line := c.LineAddr(addr)
	base := c.BankOf(addr)*c.bankStride + c.setOf(line)*c.geom.Assoc
	tag := line + 1
	victim := 0
	for w := 0; w < c.geom.Assoc; w++ {
		i := base + w
		if c.tags[i] == tag {
			// Already present (a racing fill); just refresh.
			c.stamp[i] = c.clock
			return 0, false
		}
		if c.tags[i] == 0 {
			c.tags[i] = tag
			c.stamp[i] = c.clock
			return 0, false
		}
		if c.stamp[i] < c.stamp[base+victim] {
			victim = w
		}
	}
	i := base + victim
	old := c.tags[i] - 1
	c.tags[i] = tag
	c.stamp[i] = c.clock
	return old << c.lineBits, true
}

// Stats returns cumulative hits, misses and fills.
func (c *Cache) Stats() (hits, misses, inserts uint64) {
	return c.hits, c.misses, c.inserts
}

// MissRate returns misses / accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	tot := c.hits + c.misses
	if tot == 0 {
		return 0
	}
	return float64(c.misses) / float64(tot)
}

// MSHR is a miss status holding register file. Each entry tracks one
// outstanding line fill; subsequent misses to the same line merge into the
// existing entry instead of issuing duplicate requests.
//
// The file is a fixed array (as the hardware is): lookups scan at most
// capacity entries, and no allocation happens after construction. Entry
// pointers stay valid while the entry is live, and Slot exposes the stable
// array index so clients can keep per-entry side state in parallel arrays.
type MSHR struct {
	entries []MSHREntry
	live    int
}

// MSHREntry records one outstanding miss.
type MSHREntry struct {
	// Line is the line address being fetched.
	Line uint64
	// Waiters is the number of requests merged into this entry.
	Waiters int
	// Issued marks whether the fill request has been sent downstream.
	Issued bool

	valid bool
	slot  int
}

// Slot returns the entry's stable index in [0, Capacity).
func (e *MSHREntry) Slot() int { return e.slot }

// NewMSHR returns an MSHR file with the given entry count.
func NewMSHR(capacity int) *MSHR {
	if capacity <= 0 {
		panic("cache: MSHR capacity must be positive")
	}
	m := &MSHR{entries: make([]MSHREntry, capacity)}
	for i := range m.entries {
		m.entries[i].slot = i
	}
	return m
}

// Lookup returns the entry for the line, or nil.
func (m *MSHR) Lookup(line uint64) *MSHREntry {
	for i := range m.entries {
		if m.entries[i].valid && m.entries[i].Line == line {
			return &m.entries[i]
		}
	}
	return nil
}

// Allocate records a miss for line. If an entry already exists the miss is
// merged (secondary miss) and merged=true is returned. If the file is full
// and no entry exists, ok=false is returned and the requester must stall.
func (m *MSHR) Allocate(line uint64) (e *MSHREntry, merged, ok bool) {
	free := -1
	for i := range m.entries {
		if !m.entries[i].valid {
			if free < 0 {
				free = i
			}
			continue
		}
		if m.entries[i].Line == line {
			m.entries[i].Waiters++
			return &m.entries[i], true, true
		}
	}
	if free < 0 {
		return nil, false, false
	}
	e = &m.entries[free]
	e.Line = line
	e.Waiters = 1
	e.Issued = false
	e.valid = true
	m.live++
	return e, false, true
}

// Free releases the entry for line when its fill completes, returning the
// number of waiters that were blocked on it. Freeing an absent line
// panics: it indicates double-completion.
func (m *MSHR) Free(line uint64) int {
	e := m.Lookup(line)
	if e == nil {
		panic(fmt.Sprintf("cache: MSHR free of absent line %#x", line))
	}
	m.FreeEntry(e)
	return e.Waiters
}

// FreeEntry releases an entry the caller already holds (from Lookup or
// Allocate), avoiding Free's re-scan. Freeing a dead entry panics.
func (m *MSHR) FreeEntry(e *MSHREntry) {
	if !e.valid {
		panic(fmt.Sprintf("cache: MSHR double free of line %#x", e.Line))
	}
	e.valid = false
	m.live--
}

// InUse returns the number of live entries.
func (m *MSHR) InUse() int { return m.live }

// Full reports whether a new (non-merging) allocation would fail.
func (m *MSHR) Full() bool { return m.live >= len(m.entries) }

// Capacity returns the configured entry count.
func (m *MSHR) Capacity() int { return len(m.entries) }

// TLB is a fully-associative translation buffer with LRU replacement over
// page numbers.
type TLB struct {
	capacity int
	stamp    map[uint64]uint64
	clock    uint64
	hits     uint64
	misses   uint64
}

// NewTLB returns a TLB with the given entry count.
func NewTLB(capacity int) *TLB {
	if capacity <= 0 {
		panic("cache: TLB capacity must be positive")
	}
	return &TLB{capacity: capacity, stamp: make(map[uint64]uint64, capacity)}
}

// Access looks up a page number, inserting it on miss (hardware-walked
// TLB). It returns true on hit.
func (t *TLB) Access(page uint64) bool {
	t.clock++
	if _, ok := t.stamp[page]; ok {
		t.stamp[page] = t.clock
		t.hits++
		return true
	}
	t.misses++
	if len(t.stamp) >= t.capacity {
		var lruPage uint64
		lru := ^uint64(0)
		for p, s := range t.stamp {
			if s < lru {
				lru = s
				lruPage = p
			}
		}
		delete(t.stamp, lruPage)
	}
	t.stamp[page] = t.clock
	return false
}

// Stats returns cumulative hits and misses.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }
