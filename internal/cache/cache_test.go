package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/rng"
)

func smallGeom() config.CacheGeom {
	// 4 banks x 8 sets x 2 ways x 64B lines = 4KB.
	return config.CacheGeom{SizeBytes: 4 << 10, LineBytes: 64, Assoc: 2, Banks: 4, Latency: 1}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := New(smallGeom())
	addr := uint64(0x12340)
	if c.Access(addr) {
		t.Fatal("cold cache should miss")
	}
	c.Fill(addr)
	if !c.Access(addr) {
		t.Fatal("access after fill should hit")
	}
	// Same line, different byte offset.
	if !c.Access(addr + 63 - addr%64) {
		t.Fatal("same-line access should hit")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	g := smallGeom()
	c := New(g)
	// Three addresses mapping to the same bank and set: stride =
	// banks * sets * lineBytes.
	stride := uint64(g.Banks * c.sets * g.LineBytes)
	a, b, d := uint64(0x40), 0x40+stride, 0x40+2*stride
	c.Fill(a)
	c.Fill(b)
	c.Access(a) // make a MRU
	c.Fill(d)   // evicts b
	if !c.Probe(a) {
		t.Fatal("MRU line evicted")
	}
	if c.Probe(b) {
		t.Fatal("LRU line survived")
	}
	if !c.Probe(d) {
		t.Fatal("new line missing")
	}
}

func TestCacheEvictionReportsVictim(t *testing.T) {
	g := smallGeom()
	c := New(g)
	stride := uint64(g.Banks * c.sets * g.LineBytes)
	c.Fill(0x80)
	c.Fill(0x80 + stride)
	ev, valid := c.Fill(0x80 + 2*stride)
	if !valid {
		t.Fatal("full set fill should evict")
	}
	if c.LineAddr(ev) != c.LineAddr(0x80) {
		t.Fatalf("evicted %#x, want line of 0x80", ev)
	}
}

func TestCacheDoubleFillIsIdempotent(t *testing.T) {
	c := New(smallGeom())
	c.Fill(0x100)
	ev, valid := c.Fill(0x100)
	if valid || ev != 0 {
		t.Fatal("re-filling a resident line must not evict")
	}
}

func TestCacheBankDistribution(t *testing.T) {
	g := smallGeom()
	c := New(g)
	seen := map[int]bool{}
	for i := 0; i < g.Banks; i++ {
		seen[c.BankOf(uint64(i*g.LineBytes))] = true
	}
	if len(seen) != g.Banks {
		t.Fatalf("consecutive lines cover %d banks, want %d", len(seen), g.Banks)
	}
	// Same line, any offset: same bank.
	if c.BankOf(0x1000) != c.BankOf(0x1000+63) {
		t.Fatal("bank depends on byte offset within a line")
	}
}

func TestCacheStats(t *testing.T) {
	c := New(smallGeom())
	c.Access(0x0)
	c.Fill(0x0)
	c.Access(0x0)
	h, m, ins := c.Stats()
	if h != 1 || m != 1 || ins != 1 {
		t.Fatalf("stats = %d/%d/%d, want 1/1/1", h, m, ins)
	}
	if got := c.MissRate(); got != 0.5 {
		t.Fatalf("miss rate = %v", got)
	}
}

func TestCacheCapacityProperty(t *testing.T) {
	// Property: after any fill sequence, every set holds at most assoc
	// distinct lines, and a just-filled line is always resident.
	g := smallGeom()
	f := func(addrs []uint32) bool {
		c := New(g)
		for _, a := range addrs {
			addr := uint64(a)
			c.Fill(addr)
			if !c.Probe(addr) {
				return false
			}
		}
		counts := map[int]int{}
		for i, tag := range c.tags {
			if tag != 0 {
				counts[i/g.Assoc]++
			}
		}
		for _, n := range counts {
			if n > g.Assoc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheWorkingSetBehaviour(t *testing.T) {
	// A working set smaller than the cache should converge to ~0 miss
	// rate; one much larger should keep missing.
	g := smallGeom() // 4KB
	small := New(g)
	r := rng.New(1)
	for i := 0; i < 20000; i++ {
		addr := uint64(r.Intn(2 << 10)) // 2KB working set
		if !small.Access(addr) {
			small.Fill(addr)
		}
	}
	if rate := small.MissRate(); rate > 0.01 {
		t.Fatalf("small working set miss rate %v", rate)
	}
	big := New(g)
	for i := 0; i < 20000; i++ {
		addr := uint64(r.Intn(1 << 20)) // 1MB working set
		if !big.Access(addr) {
			big.Fill(addr)
		}
	}
	if rate := big.MissRate(); rate < 0.5 {
		t.Fatalf("large working set miss rate %v suspiciously low", rate)
	}
}

func TestMSHRAllocateMergeFree(t *testing.T) {
	m := NewMSHR(2)
	e1, merged, ok := m.Allocate(100)
	if !ok || merged || e1.Waiters != 1 {
		t.Fatalf("first allocate: %+v merged=%t ok=%t", e1, merged, ok)
	}
	e2, merged, ok := m.Allocate(100)
	if !ok || !merged || e2 != e1 || e1.Waiters != 2 {
		t.Fatal("second allocate to same line should merge")
	}
	if m.InUse() != 1 {
		t.Fatalf("in use = %d, want 1", m.InUse())
	}
	if w := m.Free(100); w != 2 {
		t.Fatalf("freed waiters = %d, want 2", w)
	}
	if m.InUse() != 0 {
		t.Fatal("entry not freed")
	}
}

func TestMSHRFull(t *testing.T) {
	m := NewMSHR(2)
	m.Allocate(1)
	m.Allocate(2)
	if !m.Full() {
		t.Fatal("MSHR should be full")
	}
	if _, _, ok := m.Allocate(3); ok {
		t.Fatal("allocation beyond capacity succeeded")
	}
	// Merging is still allowed when full.
	if _, merged, ok := m.Allocate(1); !ok || !merged {
		t.Fatal("merge into full MSHR should succeed")
	}
}

func TestMSHRFreeAbsentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMSHR(1).Free(42)
}

func TestMSHRProperty(t *testing.T) {
	// Property: InUse never exceeds capacity; total waiters across
	// entries equals allocations minus freed waiters.
	f := func(ops []uint8) bool {
		m := NewMSHR(4)
		allocated := 0
		freedWaiters := 0
		for _, op := range ops {
			line := uint64(op % 8)
			if op < 200 {
				if _, _, ok := m.Allocate(line); ok {
					allocated++
				}
			} else if m.Lookup(line) != nil {
				freedWaiters += m.Free(line)
			}
			if m.InUse() > m.Capacity() {
				return false
			}
		}
		live := 0
		for line := uint64(0); line < 8; line++ {
			if e := m.Lookup(line); e != nil {
				live += e.Waiters
			}
		}
		return allocated == freedWaiters+live
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTLBHitMissAndLRU(t *testing.T) {
	tlb := NewTLB(2)
	if tlb.Access(1) {
		t.Fatal("cold TLB hit")
	}
	if !tlb.Access(1) {
		t.Fatal("warm TLB miss")
	}
	tlb.Access(2)
	tlb.Access(1) // 2 becomes LRU
	tlb.Access(3) // evicts 2
	if tlb.Access(2) {
		t.Fatal("evicted page still resident")
	}
	h, m := tlb.Stats()
	if h != 2 || m != 4 {
		t.Fatalf("stats = %d/%d, want 2/4", h, m)
	}
}

func TestTLBCapacityBound(t *testing.T) {
	tlb := NewTLB(8)
	for p := uint64(0); p < 100; p++ {
		tlb.Access(p)
	}
	if len(tlb.stamp) > 8 {
		t.Fatalf("TLB holds %d entries, capacity 8", len(tlb.stamp))
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"mshr":  func() { NewMSHR(0) },
		"tlb":   func() { NewTLB(0) },
		"cache": func() { New(config.CacheGeom{SizeBytes: 64, LineBytes: 64, Assoc: 2, Banks: 2, Latency: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := New(config.Default(1).Mem.L2)
	r := rng.New(1)
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(8 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i%len(addrs)]
		if !c.Access(a) {
			c.Fill(a)
		}
	}
}
