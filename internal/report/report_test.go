package report

import (
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("name", "ipc", "note")
	tbl.Row("2W1", 1.5, "ok")
	tbl.Row("longer-name", 10.25, "x")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	// Columns align: "ipc" starts at the same offset in every line.
	col := strings.Index(lines[0], "ipc")
	if col < 0 {
		t.Fatal("header missing")
	}
	if !strings.HasPrefix(lines[1][col:], "1.500") {
		t.Fatalf("misaligned row: %q", lines[1])
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestTableRowF(t *testing.T) {
	tbl := NewTable("a", "b")
	tbl.RowF("x", "+5%")
	if !strings.Contains(tbl.String(), "+5%") {
		t.Fatal("preformatted cell lost")
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := NewTable("name", "ipc", "note")
	tbl.Row("2W1", 1.5, "plain")
	tbl.Row("8W3, tweaked", 0.25, `quote "me"`)
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "name,ipc,note\n" +
		"2W1,1.500,plain\n" +
		"\"8W3, tweaked\",0.250,\"quote \"\"me\"\"\"\n"
	if b.String() != want {
		t.Fatalf("CSV:\n%q\nwant:\n%q", b.String(), want)
	}
}

func TestTableWriteCSVNoHeader(t *testing.T) {
	tbl := &Table{}
	tbl.RowF("a", "b")
	var b strings.Builder
	if err := tbl.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "a,b\n" {
		t.Fatalf("CSV = %q", b.String())
	}
}

func TestEmptyTableRendering(t *testing.T) {
	if out := (&Table{}).String(); out != "" {
		t.Fatalf("zero table rendered %q", out)
	}
	hdr := NewTable("a", "bb")
	if out := hdr.String(); !strings.Contains(out, "a") || !strings.Contains(out, "bb") {
		t.Fatalf("header-only table lost its header: %q", out)
	}
	if hdr.Len() != 0 {
		t.Fatalf("header-only Len = %d", hdr.Len())
	}
	var b strings.Builder
	if err := hdr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "a,bb\n" {
		t.Fatalf("header-only CSV = %q", b.String())
	}
}

func TestBarsWidthClamped(t *testing.T) {
	// Non-positive widths fall back to the 40-character default.
	for _, width := range []int{0, -3} {
		var b strings.Builder
		if err := Bars(&b, width, []string{"max", "half"}, []float64{2, 1}); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
		if n := strings.Count(lines[0], "#"); n != 40 {
			t.Fatalf("width %d: max bar has %d chars, want the 40 default", width, n)
		}
		if n := strings.Count(lines[1], "#"); n != 20 {
			t.Fatalf("width %d: half bar has %d chars, want 20", width, n)
		}
	}
}

func TestHistogramWidthClamped(t *testing.T) {
	var b strings.Builder
	if err := Histogram(&b, 10, []uint64{4}, 0); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(b.String(), "#"); n != 40 {
		t.Fatalf("max bucket has %d chars, want the 40 default", n)
	}
}

func TestBars(t *testing.T) {
	var b strings.Builder
	err := Bars(&b, 10, []string{"one", "two"}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The max value gets the full width; the half value half of it.
	if !strings.HasSuffix(lines[1], strings.Repeat("#", 10)) {
		t.Fatalf("max bar wrong: %q", lines[1])
	}
	if strings.Count(lines[0], "#") != 5 {
		t.Fatalf("half bar wrong: %q", lines[0])
	}
}

func TestBarsErrors(t *testing.T) {
	var b strings.Builder
	if err := Bars(&b, 10, []string{"a"}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if err := Bars(&b, 10, []string{"a"}, []float64{-1}); err == nil {
		t.Fatal("negative value accepted")
	}
}

func TestBarsZeroMax(t *testing.T) {
	var b strings.Builder
	if err := Bars(&b, 10, []string{"a"}, []float64{0}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "#") {
		t.Fatal("zero value produced a bar")
	}
}

func TestHistogram(t *testing.T) {
	var b strings.Builder
	if err := Histogram(&b, 10, []uint64{5, 10, 5}, 20); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "0-9") || !strings.Contains(out, "20+") {
		t.Fatalf("labels wrong:\n%s", out)
	}
	if !strings.Contains(out, "50.0%") || !strings.Contains(out, "25.0%") {
		t.Fatalf("percentages wrong:\n%s", out)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var b strings.Builder
	if err := Histogram(&b, 10, []uint64{0, 0}, 20); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no samples") {
		t.Fatal("empty marker missing")
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.123); got != "+12.3%" {
		t.Fatalf("Pct = %q", got)
	}
	if got := Pct(-0.05); got != "-5.0%" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestTableWriteJSON(t *testing.T) {
	tb := NewTable("workload", "ipc")
	tb.Row("2W3", 1.234567)
	tb.Row("8W3", 0.5)
	var b strings.Builder
	if err := tb.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	want := "[\n" +
		"  {\"workload\":\"2W3\",\"ipc\":\"1.235\"},\n" +
		"  {\"workload\":\"8W3\",\"ipc\":\"0.500\"}\n" +
		"]\n"
	if b.String() != want {
		t.Fatalf("WriteJSON:\n%s\nwant:\n%s", b.String(), want)
	}
	var decoded []map[string]string
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(decoded) != 2 || decoded[1]["workload"] != "8W3" {
		t.Fatalf("decoded = %+v", decoded)
	}
}

func TestTableWriteJSONNeedsHeader(t *testing.T) {
	tb := &Table{}
	tb.Row("x")
	if err := tb.WriteJSON(io.Discard); err == nil {
		t.Fatal("headerless table encoded to JSON")
	}
}

func TestTableWriteJSONRejectsWideRow(t *testing.T) {
	tb := NewTable("only")
	tb.RowF("a", "b")
	if err := tb.WriteJSON(io.Discard); err == nil {
		t.Fatal("row wider than header encoded to JSON")
	}
}

func TestTableWriteJSONEmpty(t *testing.T) {
	tb := NewTable("a", "b")
	var b strings.Builder
	if err := tb.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "[\n]\n" {
		t.Fatalf("empty table = %q", b.String())
	}
}
