package report_test

import (
	"os"

	"repro/internal/report"
)

// ExampleTable builds a small table and renders it in the three wire
// formats the toolchain uses: aligned text, CSV and JSON rows.
func ExampleTable() {
	t := report.NewTable("workload", "policy", "ipc")
	t.Row("2W3", "ICOUNT", 0.431)
	t.Row("2W3", "MFLUSH", 0.558)

	t.WriteTo(os.Stdout)
	t.WriteCSV(os.Stdout)
	t.WriteJSON(os.Stdout)
	// Output:
	// workload  policy  ipc
	// 2W3       ICOUNT  0.431
	// 2W3       MFLUSH  0.558
	// workload,policy,ipc
	// 2W3,ICOUNT,0.431
	// 2W3,MFLUSH,0.558
	// [
	//   {"workload":"2W3","policy":"ICOUNT","ipc":"0.431"},
	//   {"workload":"2W3","policy":"MFLUSH","ipc":"0.558"}
	// ]
}
