// Package report renders experiment results as aligned text tables and
// ASCII bar charts — the output layer of cmd/mflushbench and the
// examples.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(columns ...string) *Table {
	return &Table{header: columns}
}

// Row appends one row; values are formatted with %v, floats with three
// decimals.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// RowF appends a row of pre-formatted strings.
func (t *Table) RowF(cells ...string) *Table {
	t.rows = append(t.rows, cells)
	return t
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	tw := tabwriter.NewWriter(cw, 2, 4, 2, ' ', 0)
	if len(t.header) > 0 {
		fmt.Fprintln(tw, strings.Join(t.header, "\t"))
	}
	for _, row := range t.rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// WriteCSV renders the table as RFC 4180 CSV: the header (when present)
// then one record per row, with the same cell formatting as WriteTo.
// Campaign exports go through this, so the byte output must stay stable.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.header) > 0 {
		if err := cw.Write(t.header); err != nil {
			return err
		}
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON renders the table as a JSON array of objects, one per row,
// keyed by the column headers in column order (not Go's sorted-map
// order), with the same cell formatting as WriteTo — the generic wire
// encoding mflushd serves to clients that want rows without learning a
// result-specific schema. Rows longer than the header are an error; a
// short row simply omits its missing columns.
func (t *Table) WriteJSON(w io.Writer) error {
	if len(t.header) == 0 {
		return fmt.Errorf("report: JSON table needs column headers")
	}
	keys := make([][]byte, len(t.header))
	for i, h := range t.header {
		k, err := json.Marshal(h)
		if err != nil {
			return err
		}
		keys[i] = k
	}
	var b []byte
	b = append(b, '[')
	for r, row := range t.rows {
		if len(row) > len(t.header) {
			return fmt.Errorf("report: row %d has %d cells for %d columns", r, len(row), len(t.header))
		}
		if r > 0 {
			b = append(b, ',')
		}
		b = append(b, "\n  {"...)
		for i, cell := range row {
			if i > 0 {
				b = append(b, ',')
			}
			v, err := json.Marshal(cell)
			if err != nil {
				return err
			}
			b = append(b, keys[i]...)
			b = append(b, ':')
			b = append(b, v...)
		}
		b = append(b, '}')
	}
	b = append(b, "\n]\n"...)
	_, err := w.Write(b)
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_, _ = t.WriteTo(&b)
	return b.String()
}

type countingWriter struct {
	w io.Writer
	n int64
}

// Write forwards to the wrapped writer while counting bytes.
func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Bars renders a labelled horizontal bar chart scaled to the maximum
// value, width characters wide.
func Bars(w io.Writer, width int, labels []string, values []float64) error {
	if len(labels) != len(values) {
		return fmt.Errorf("report: %d labels for %d values", len(labels), len(values))
	}
	if width < 1 {
		width = 40
	}
	max := 0.0
	labelW := 0
	for i, v := range values {
		if v < 0 {
			return fmt.Errorf("report: negative bar value %v", v)
		}
		if v > max {
			max = v
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(v/max*float64(width) + 0.5)
		}
		if _, err := fmt.Fprintf(w, "%-*s %8.3f %s\n",
			labelW, labels[i], v, strings.Repeat("#", n)); err != nil {
			return err
		}
	}
	return nil
}

// Histogram renders bucket counts as percentage bars. bucketWidth names
// the bin size for the labels; the last bucket is labelled open-ended.
func Histogram(w io.Writer, bucketWidth int, counts []uint64, chartWidth int) error {
	if chartWidth < 1 {
		chartWidth = 40
	}
	var total uint64
	var maxC uint64
	for _, c := range counts {
		total += c
		if c > maxC {
			maxC = c
		}
	}
	if total == 0 {
		_, err := fmt.Fprintln(w, "(no samples)")
		return err
	}
	for i, c := range counts {
		label := fmt.Sprintf("%4d-%-4d", i*bucketWidth, (i+1)*bucketWidth-1)
		if i == len(counts)-1 {
			label = fmt.Sprintf("%4d+    ", i*bucketWidth)
		}
		frac := float64(c) / float64(total)
		n := 0
		if maxC > 0 {
			n = int(float64(c) / float64(maxC) * float64(chartWidth))
		}
		if _, err := fmt.Fprintf(w, "%s %5.1f%% %s\n",
			label, frac*100, strings.Repeat("#", n)); err != nil {
			return err
		}
	}
	return nil
}

// Pct formats a fraction as a signed percentage ("+12.3%").
func Pct(frac float64) string { return fmt.Sprintf("%+.1f%%", frac*100) }
