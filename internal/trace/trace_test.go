package trace

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestSliceSourceLoops(t *testing.T) {
	insts := []isa.Inst{
		{PC: 0x100, Class: isa.ClassInt},
		{PC: 0x104, Class: isa.ClassLoad, Addr: 0x2000},
	}
	s := NewSliceSource(insts)
	var out isa.Inst
	for round := 0; round < 3; round++ {
		for i := range insts {
			s.Next(&out)
			if out.PC != insts[i].PC {
				t.Fatalf("round %d pos %d: pc %#x, want %#x", round, i, out.PC, insts[i].PC)
			}
		}
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSliceSourceEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSliceSource(nil)
}

func TestFileRoundTrip(t *testing.T) {
	insts := []isa.Inst{
		{PC: 0x1000, Class: isa.ClassInt, Dest: 1, Src1: 2, Src2: 3},
		{PC: 0x1004, Class: isa.ClassLoad, Dest: 4, Src1: 1, Src2: isa.InvalidReg, Addr: 0xdeadbeef},
		{PC: 0x1008, Class: isa.ClassBranch, Dest: isa.InvalidReg, Taken: true, Target: 0x2000},
		{PC: 0x100c, Class: isa.ClassStore, Src1: 4, Addr: 0xffffffffffff},
		{PC: 0x1010, Class: isa.ClassReturn, Taken: true, Target: 0x900},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range insts {
		if err := w.Write(&insts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(insts) {
		t.Fatalf("count = %d", w.Count())
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(insts) {
		t.Fatalf("read %d records, wrote %d", len(got), len(insts))
	}
	for i := range insts {
		if got[i] != insts[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], insts[i])
		}
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	f := func(pcs []uint64, classes []uint8) bool {
		n := len(pcs)
		if len(classes) < n {
			n = len(classes)
		}
		insts := make([]isa.Inst, 0, n)
		for i := 0; i < n; i++ {
			insts = append(insts, isa.Inst{
				PC:    pcs[i],
				Class: isa.Class(classes[i] % uint8(isa.NumClasses)),
				Dest:  isa.Reg(classes[i] % 64),
				Addr:  pcs[i] * 3,
				Taken: classes[i]%2 == 0,
			})
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for i := range insts {
			if w.Write(&insts[i]) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil || len(got) != len(insts) {
			return false
		}
		for i := range insts {
			if got[i] != insts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadAllRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOTTRACE plus some data"),
		"truncated": append([]byte("MFTRACE1"), 1, 2, 3),
	}
	for name, data := range cases {
		if _, err := ReadAll(bytes.NewReader(data)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("%s: error = %v, want ErrBadTrace", name, err)
		}
	}
	// Valid header+record but invalid class byte.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	in := isa.Inst{Class: isa.ClassInt}
	w.Write(&in)
	w.Flush()
	data := buf.Bytes()
	data[8+8] = 200 // class byte of the first record
	if _, err := ReadAll(bytes.NewReader(data)); !errors.Is(err, ErrBadTrace) {
		t.Errorf("bad class: error = %v, want ErrBadTrace", err)
	}
}

func TestBBDictDeterministic(t *testing.T) {
	d := NewBBDict(0x10000, 1<<16)
	var a, b isa.Inst
	d.InstAt(0x4000, &a)
	d.InstAt(0x4000, &b)
	if a != b {
		t.Fatalf("dictionary nondeterministic: %+v vs %+v", a, b)
	}
}

func TestBBDictAddressesInRange(t *testing.T) {
	base, span := uint64(0x100000), uint64(1<<20)
	d := NewBBDict(base, span)
	var in isa.Inst
	memSeen := 0
	for pc := uint64(0); pc < 4*4096; pc += 4 {
		d.InstAt(pc, &in)
		if in.PC != pc {
			t.Fatalf("pc not preserved: %#x", in.PC)
		}
		if in.Class.IsMem() {
			memSeen++
			if in.Addr < base || in.Addr >= base+span {
				t.Fatalf("wrong-path address %#x outside [%#x,%#x)", in.Addr, base, base+span)
			}
		}
		if in.Taken {
			t.Fatal("wrong-path instructions must not be taken branches")
		}
	}
	if memSeen == 0 {
		t.Fatal("wrong-path stream contains no memory operations")
	}
}

func TestBBDictMix(t *testing.T) {
	d := NewBBDict(0, 0) // default span
	counts := map[isa.Class]int{}
	var in isa.Inst
	const n = 16384
	for pc := uint64(0); pc < n*4; pc += 4 {
		d.InstAt(pc, &in)
		counts[in.Class]++
	}
	loadFrac := float64(counts[isa.ClassLoad]) / n
	if loadFrac < 0.10 || loadFrac > 0.30 {
		t.Fatalf("wrong-path load fraction %.3f out of plausible range", loadFrac)
	}
	if counts[isa.ClassInt] == 0 || counts[isa.ClassBranch] == 0 {
		t.Fatal("wrong-path stream lacks ALU or branch instructions")
	}
}
