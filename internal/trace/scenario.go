// Scenario traces: multi-thread instruction streams with per-instruction
// miss-latency overrides and phase markers, in two interchangeable
// encodings — JSONL for hand-editing and a fixed-record binary format
// (MFSCEN1) for bulk files. ReadScenario sniffs the encoding from the
// first bytes, and also accepts a legacy single-thread MFTRACE1 file,
// so every trace file the repo has ever written loads through one entry
// point. All parse errors carry the byte offset of the offending input,
// mirroring the campaign store's torn-tail discipline, and hostile
// inputs must never panic (fuzz-enforced).
package trace

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/isa"
)

// PhaseMark labels a position in one thread's stream, e.g. the boundary
// where a synthesized scenario switches latency regimes. Markers are
// documentation for humans and tools; replay ignores them.
type PhaseMark struct {
	// Thread is the stream the marker belongs to.
	Thread int `json:"t"`
	// Index is the instruction index within the thread the marker
	// precedes (0 = before the first instruction).
	Index int `json:"i"`
	// Label names the phase ("ramp", "burst", ...).
	Label string `json:"phase"`
}

// Scenario is a loaded scenario trace: one finite instruction stream per
// thread (replayed in a loop, like every trace.Source), plus optional
// phase markers.
type Scenario struct {
	// Threads holds one instruction stream per hardware context, dense
	// from thread 0.
	Threads [][]isa.Inst
	// Phases are the scenario's phase markers, in file order.
	Phases []PhaseMark
}

// Validate checks the scenario can drive a simulation: at least one
// thread, no empty threads, and markers that point into their thread.
func (s *Scenario) Validate() error {
	if len(s.Threads) == 0 {
		return fmt.Errorf("%w: scenario has no threads", ErrBadTrace)
	}
	for t, insts := range s.Threads {
		if len(insts) == 0 {
			return fmt.Errorf("%w: thread %d has no instructions", ErrBadTrace, t)
		}
	}
	for _, p := range s.Phases {
		if p.Thread < 0 || p.Thread >= len(s.Threads) {
			return fmt.Errorf("%w: phase %q names thread %d of %d", ErrBadTrace, p.Label, p.Thread, len(s.Threads))
		}
		if p.Index < 0 || p.Index > len(s.Threads[p.Thread]) {
			return fmt.Errorf("%w: phase %q index %d outside thread %d", ErrBadTrace, p.Label, p.Index, p.Thread)
		}
	}
	return nil
}

// ThreadTraces returns the per-thread streams in the shape
// sim.Options.ThreadTraces expects, after validating the scenario.
func (s *Scenario) ThreadTraces() ([][]isa.Inst, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s.Threads, nil
}

// Binary scenario format: 8-byte magic, then typed records. An
// instruction record is the thread ID, the 29-byte MFTRACE1 instruction
// encoding, and the 4-byte miss-latency override; a phase record is a
// length-prefixed label. Thread IDs are dense from 0.
const (
	scenMagic = "MFSCEN1\n"

	scenRecInst  = 0x01 // [tag u8][thread u8][29B MFTRACE1 record][missLat u32 LE]
	scenRecPhase = 0x02 // [tag u8][thread u8][labelLen u16 LE][label bytes]

	scenInstBytes = 2 + recordBytes + 4
	maxPhaseLabel = 1 << 10
)

// maxScenThreads bounds thread IDs (the simulator cannot use more than a
// byte's worth of contexts anyway); it keeps hostile files from forcing
// huge allocations.
const maxScenThreads = 256

// offsetError wraps a scenario parse failure with the byte offset it was
// detected at, so a truncated or corrupt file is locatable with dd/xxd.
type offsetError struct {
	off int64
	err error
}

// Error names the failure and where in the input it was found.
func (e *offsetError) Error() string {
	return fmt.Sprintf("byte %d: %v", e.off, e.err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *offsetError) Unwrap() error { return e.err }

// Offset returns the byte offset at which a scenario parse error was
// detected, and whether the error carries one.
func Offset(err error) (int64, bool) {
	var oe *offsetError
	if ok := asOffsetError(err, &oe); ok {
		return oe.off, true
	}
	return 0, false
}

func asOffsetError(err error, out **offsetError) bool {
	for err != nil {
		if oe, ok := err.(*offsetError); ok {
			*out = oe
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// badAt builds a parse error carrying the byte offset of the
// corruption, wrapping ErrBadTrace — and, because the format runs
// through fmt.Errorf, any %w-formatted cause in args stays on the
// chain (errwrap requires %w for error arguments here).
func badAt(off int64, format string, args ...any) error {
	return &offsetError{off: off, err: fmt.Errorf("%w: "+format, append([]any{ErrBadTrace}, args...)...)}
}

// ReadScenario sniffs the encoding of r from its leading bytes and
// parses a complete scenario: MFSCEN1 binary, legacy MFTRACE1 (loaded
// as a single thread 0 with no overrides), or JSONL otherwise.
func ReadScenario(r io.Reader) (*Scenario, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(scenMagic))
	if err != nil && err != io.EOF {
		return nil, badAt(0, "reading header: %w", err)
	}
	switch {
	case string(head) == scenMagic:
		return readScenarioBinary(br)
	case len(head) >= len(fileMagic) && string(head[:len(fileMagic)]) == fileMagic:
		insts, err := ReadAll(br)
		if err != nil {
			return nil, err
		}
		s := &Scenario{Threads: [][]isa.Inst{insts}}
		if err := s.Validate(); err != nil {
			return nil, err
		}
		return s, nil
	default:
		return readScenarioJSONL(br)
	}
}

// LoadScenario reads the scenario file at path.
func LoadScenario(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadScenario(f)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return s, nil
}

// SumFile returns the hex SHA-256 of the raw bytes of the file at path —
// the content digest campaign job keys are derived from.
func SumFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("trace: digesting %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func readScenarioBinary(br *bufio.Reader) (*Scenario, error) {
	if _, err := br.Discard(len(scenMagic)); err != nil {
		return nil, badAt(0, "reading header: %w", err)
	}
	off := int64(len(scenMagic))
	var s Scenario
	var tag [1]byte
	for {
		_, err := io.ReadFull(br, tag[:])
		if err == io.EOF {
			if err := s.Validate(); err != nil {
				return nil, err
			}
			return &s, nil
		}
		if err != nil {
			return nil, badAt(off, "reading record tag: %w", err)
		}
		switch tag[0] {
		case scenRecInst:
			var buf [scenInstBytes - 1]byte
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, badAt(off, "truncated instruction record: %w", err)
			}
			t := int(buf[0])
			rec := buf[1 : 1+recordBytes]
			cls := isa.Class(rec[8])
			if int(cls) >= isa.NumClasses {
				return nil, badAt(off, "instruction record has class %d", cls)
			}
			if t >= maxScenThreads {
				return nil, badAt(off, "thread %d exceeds the %d-thread limit", t, maxScenThreads)
			}
			for len(s.Threads) <= t {
				s.Threads = append(s.Threads, nil)
			}
			s.Threads[t] = append(s.Threads[t], isa.Inst{
				PC:          binary.LittleEndian.Uint64(rec[0:]),
				Class:       cls,
				Dest:        isa.Reg(rec[9]),
				Src1:        isa.Reg(rec[10]),
				Src2:        isa.Reg(rec[11]),
				Addr:        binary.LittleEndian.Uint64(rec[12:]),
				Taken:       rec[20] == 1,
				Target:      binary.LittleEndian.Uint64(rec[21:]),
				MissLatency: binary.LittleEndian.Uint32(buf[1+recordBytes:]),
			})
			off += scenInstBytes
		case scenRecPhase:
			var hdr [3]byte
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return nil, badAt(off, "truncated phase record: %w", err)
			}
			t := int(hdr[0])
			n := int(binary.LittleEndian.Uint16(hdr[1:]))
			if t >= maxScenThreads {
				return nil, badAt(off, "phase thread %d exceeds the %d-thread limit", t, maxScenThreads)
			}
			if n > maxPhaseLabel {
				return nil, badAt(off, "phase label length %d exceeds %d", n, maxPhaseLabel)
			}
			label := make([]byte, n)
			if _, err := io.ReadFull(br, label); err != nil {
				return nil, badAt(off, "truncated phase label: %w", err)
			}
			for len(s.Threads) <= t {
				s.Threads = append(s.Threads, nil)
			}
			s.Phases = append(s.Phases, PhaseMark{
				Thread: t,
				Index:  len(s.Threads[t]),
				Label:  string(label),
			})
			off += int64(1 + len(hdr) + n)
		default:
			return nil, badAt(off, "unknown record tag %#x", tag[0])
		}
	}
}

// scenLine is the JSONL record: one flat object per line. A line with
// "phase" set is a marker; anything else is an instruction on thread
// "t". Register fields are optional (absent means no operand), class is
// the mnemonic family name, and "miss_lat" is the per-instruction
// main-memory latency override in cycles (0/absent: configured latency).
type scenLine struct {
	Thread  int    `json:"t"`
	Phase   string `json:"phase,omitempty"`
	PC      uint64 `json:"pc,omitempty"`
	Class   string `json:"class,omitempty"`
	Dest    *uint8 `json:"dest,omitempty"`
	Src1    *uint8 `json:"src1,omitempty"`
	Src2    *uint8 `json:"src2,omitempty"`
	Addr    uint64 `json:"addr,omitempty"`
	Taken   bool   `json:"taken,omitempty"`
	Target  uint64 `json:"target,omitempty"`
	MissLat uint32 `json:"miss_lat,omitempty"`
}

// classByName maps mnemonic family names back to classes (the inverse of
// isa.Class.String).
func classByName(name string) (isa.Class, bool) {
	for c := 0; c < isa.NumClasses; c++ {
		if isa.Class(c).String() == name {
			return isa.Class(c), true
		}
	}
	return 0, false
}

func readScenarioJSONL(br *bufio.Reader) (*Scenario, error) {
	var s Scenario
	var off int64
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		raw := sc.Bytes()
		lineNo++
		lineStart := off
		off += int64(len(raw)) + 1
		line := bytes.TrimSpace(raw)
		if len(line) == 0 {
			continue
		}
		var rec scenLine
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return nil, badAt(lineStart, "line %d: %w", lineNo, err)
		}
		if dec.More() {
			return nil, badAt(lineStart, "line %d: trailing data after object", lineNo)
		}
		if rec.Thread < 0 || rec.Thread >= maxScenThreads {
			return nil, badAt(lineStart, "line %d: thread %d outside [0,%d)", lineNo, rec.Thread, maxScenThreads)
		}
		for len(s.Threads) <= rec.Thread {
			s.Threads = append(s.Threads, nil)
		}
		if rec.Phase != "" {
			s.Phases = append(s.Phases, PhaseMark{
				Thread: rec.Thread,
				Index:  len(s.Threads[rec.Thread]),
				Label:  rec.Phase,
			})
			continue
		}
		cls, ok := classByName(rec.Class)
		if !ok {
			return nil, badAt(lineStart, "line %d: unknown class %q", lineNo, rec.Class)
		}
		reg := func(p *uint8) (isa.Reg, error) {
			if p == nil {
				return isa.InvalidReg, nil
			}
			if *p >= isa.NumArchRegs {
				return 0, badAt(lineStart, "line %d: register %d outside [0,%d)", lineNo, *p, isa.NumArchRegs)
			}
			return isa.Reg(*p), nil
		}
		dest, err := reg(rec.Dest)
		if err != nil {
			return nil, err
		}
		src1, err := reg(rec.Src1)
		if err != nil {
			return nil, err
		}
		src2, err := reg(rec.Src2)
		if err != nil {
			return nil, err
		}
		s.Threads[rec.Thread] = append(s.Threads[rec.Thread], isa.Inst{
			PC:          rec.PC,
			Class:       cls,
			Dest:        dest,
			Src1:        src1,
			Src2:        src2,
			Addr:        rec.Addr,
			Taken:       rec.Taken,
			Target:      rec.Target,
			MissLatency: rec.MissLat,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, badAt(off, "line %d: %w", lineNo+1, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// WriteScenarioBinary writes s in the MFSCEN1 binary encoding. Output is
// deterministic: records are emitted thread-major in stream order with
// phase markers interleaved at their indices.
func WriteScenarioBinary(w io.Writer, s *Scenario) error {
	if err := s.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(scenMagic); err != nil {
		return fmt.Errorf("trace: writing scenario header: %w", err)
	}
	var buf [scenInstBytes]byte
	for t, insts := range s.Threads {
		if t >= maxScenThreads {
			return fmt.Errorf("%w: thread %d exceeds the %d-thread limit", ErrBadTrace, t, maxScenThreads)
		}
		marks := phasesAt(s.Phases, t)
		for i, in := range insts {
			if err := writeMarks(bw, marks, t, i); err != nil {
				return err
			}
			buf[0] = scenRecInst
			buf[1] = byte(t)
			rec := buf[2:]
			binary.LittleEndian.PutUint64(rec[0:], in.PC)
			rec[8] = byte(in.Class)
			rec[9] = byte(in.Dest)
			rec[10] = byte(in.Src1)
			rec[11] = byte(in.Src2)
			binary.LittleEndian.PutUint64(rec[12:], in.Addr)
			rec[20] = 0
			if in.Taken {
				rec[20] = 1
			}
			binary.LittleEndian.PutUint64(rec[21:], in.Target)
			binary.LittleEndian.PutUint32(rec[recordBytes:], in.MissLatency)
			if _, err := bw.Write(buf[:]); err != nil {
				return fmt.Errorf("trace: writing scenario record: %w", err)
			}
		}
		if err := writeMarks(bw, marks, t, len(insts)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// phasesAt filters the markers of one thread, preserving order.
func phasesAt(phases []PhaseMark, t int) []PhaseMark {
	var out []PhaseMark
	for _, p := range phases {
		if p.Thread == t {
			out = append(out, p)
		}
	}
	return out
}

func writeMarks(bw *bufio.Writer, marks []PhaseMark, t, idx int) error {
	for _, p := range marks {
		if p.Index != idx {
			continue
		}
		if len(p.Label) > maxPhaseLabel {
			return fmt.Errorf("%w: phase label length %d exceeds %d", ErrBadTrace, len(p.Label), maxPhaseLabel)
		}
		var hdr [4]byte
		hdr[0] = scenRecPhase
		hdr[1] = byte(t)
		binary.LittleEndian.PutUint16(hdr[2:], uint16(len(p.Label)))
		if _, err := bw.Write(hdr[:]); err != nil {
			return fmt.Errorf("trace: writing phase record: %w", err)
		}
		if _, err := bw.WriteString(p.Label); err != nil {
			return fmt.Errorf("trace: writing phase label: %w", err)
		}
	}
	return nil
}

// WriteScenarioJSONL writes s as JSONL, one object per line, in the same
// deterministic order as the binary encoding.
func WriteScenarioJSONL(w io.Writer, s *Scenario) error {
	if err := s.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	emit := func(v scenLine) error {
		if err := enc.Encode(v); err != nil {
			return fmt.Errorf("trace: encoding scenario line: %w", err)
		}
		return nil
	}
	for t, insts := range s.Threads {
		marks := phasesAt(s.Phases, t)
		emitMarks := func(idx int) error {
			for _, p := range marks {
				if p.Index != idx {
					continue
				}
				if err := emit(scenLine{Thread: t, Phase: p.Label}); err != nil {
					return err
				}
			}
			return nil
		}
		for i, in := range insts {
			if err := emitMarks(i); err != nil {
				return err
			}
			line := scenLine{
				Thread:  t,
				PC:      in.PC,
				Class:   in.Class.String(),
				Addr:    in.Addr,
				Taken:   in.Taken,
				Target:  in.Target,
				MissLat: in.MissLatency,
			}
			reg := func(r isa.Reg) *uint8 {
				if r == isa.InvalidReg {
					return nil
				}
				v := uint8(r)
				return &v
			}
			line.Dest = reg(in.Dest)
			line.Src1 = reg(in.Src1)
			line.Src2 = reg(in.Src2)
			if err := emit(line); err != nil {
				return err
			}
		}
		if err := emitMarks(len(insts)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
