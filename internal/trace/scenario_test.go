package trace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/isa"
)

// testScenario builds a scenario exercising every field: multiple
// threads, overrides, markers (including one at end-of-thread), absent
// registers, control flow.
func testScenario() *Scenario {
	return &Scenario{
		Threads: [][]isa.Inst{
			{
				{PC: 0x1000, Class: isa.ClassLoad, Dest: 3, Src1: isa.InvalidReg, Src2: isa.InvalidReg, Addr: 0xdead00, MissLatency: 900},
				{PC: 0x1004, Class: isa.ClassInt, Dest: 4, Src1: 3, Src2: isa.InvalidReg},
				{PC: 0x1008, Class: isa.ClassBranch, Dest: isa.InvalidReg, Src1: 4, Src2: isa.InvalidReg, Taken: true, Target: 0x1000},
			},
			{
				{PC: 0x2000, Class: isa.ClassStore, Dest: isa.InvalidReg, Src1: 7, Src2: isa.InvalidReg, Addr: 0xbeef00},
				{PC: 0x2004, Class: isa.ClassFPDiv, Dest: 9, Src1: 9, Src2: 9, MissLatency: 0},
			},
		},
		Phases: []PhaseMark{
			{Thread: 0, Index: 0, Label: "warm"},
			{Thread: 0, Index: 2, Label: "hot"},
			{Thread: 1, Index: 2, Label: "end"},
		},
	}
}

func TestScenarioBinaryRoundTrip(t *testing.T) {
	want := testScenario()
	var buf bytes.Buffer
	if err := WriteScenarioBinary(&buf, want); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadScenario(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("binary round trip diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestScenarioJSONLRoundTrip(t *testing.T) {
	want := testScenario()
	var buf bytes.Buffer
	if err := WriteScenarioJSONL(&buf, want); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadScenario(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v\njsonl:\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("jsonl round trip diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestScenarioReadsLegacyTrace(t *testing.T) {
	insts := []isa.Inst{
		{PC: 0x40, Class: isa.ClassLoad, Dest: 1, Src1: isa.InvalidReg, Src2: isa.InvalidReg, Addr: 0x99},
		{PC: 0x44, Class: isa.ClassBranch, Dest: isa.InvalidReg, Src1: 1, Src2: isa.InvalidReg, Taken: true, Target: 0x40},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range insts {
		if err := w.Write(&insts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	s, err := ReadScenario(&buf)
	if err != nil {
		t.Fatalf("legacy read: %v", err)
	}
	if len(s.Threads) != 1 || !reflect.DeepEqual(s.Threads[0], insts) {
		t.Fatalf("legacy trace did not load as thread 0: %+v", s.Threads)
	}
	if len(s.Phases) != 0 {
		t.Fatalf("legacy trace grew phase marks: %+v", s.Phases)
	}
}

// TestScenarioErrorsCarryOffsets pins the byte-offset error discipline:
// truncations and corruptions name where in the input they were found.
func TestScenarioErrorsCarryOffsets(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteScenarioBinary(&buf, testScenario()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	t.Run("truncated final record", func(t *testing.T) {
		_, err := ReadScenario(bytes.NewReader(full[:len(full)-3]))
		if err == nil {
			t.Fatal("truncated scenario parsed")
		}
		if !errors.Is(err, ErrBadTrace) {
			t.Fatalf("error %v does not wrap ErrBadTrace", err)
		}
		off, ok := Offset(err)
		if !ok {
			t.Fatalf("error %v carries no byte offset", err)
		}
		if off <= 0 || off >= int64(len(full)) {
			t.Fatalf("offset %d outside the input (len %d)", off, len(full))
		}
	})

	t.Run("unknown tag", func(t *testing.T) {
		bad := append([]byte{}, full...)
		bad = append(bad, 0xEE)
		_, err := ReadScenario(bytes.NewReader(bad))
		off, ok := Offset(err)
		if !ok || off != int64(len(full)) {
			t.Fatalf("unknown-tag error %v: offset %d, want %d", err, off, len(full))
		}
	})

	t.Run("jsonl corrupt line", func(t *testing.T) {
		in := `{"t":0,"pc":1,"class":"int"}` + "\n" + `{"t":0,"pc":` + "\n"
		_, err := ReadScenario(strings.NewReader(in))
		if err == nil {
			t.Fatal("corrupt jsonl parsed")
		}
		off, ok := Offset(err)
		if !ok {
			t.Fatalf("jsonl error %v carries no byte offset", err)
		}
		if want := int64(len(`{"t":0,"pc":1,"class":"int"}`) + 1); off != want {
			t.Fatalf("jsonl error offset %d, want %d (start of bad line)", off, want)
		}
	})

	t.Run("jsonl unknown field", func(t *testing.T) {
		_, err := ReadScenario(strings.NewReader(`{"t":0,"pc":1,"class":"int","bogus":3}` + "\n"))
		if err == nil {
			t.Fatal("unknown field accepted")
		}
	})

	t.Run("jsonl unknown class", func(t *testing.T) {
		_, err := ReadScenario(strings.NewReader(`{"t":0,"pc":1,"class":"vector"}` + "\n"))
		if err == nil || !strings.Contains(err.Error(), "vector") {
			t.Fatalf("unknown class error = %v", err)
		}
	})
}

func TestScenarioValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Scenario
	}{
		{"no threads", Scenario{}},
		{"empty thread", Scenario{Threads: [][]isa.Inst{{{Class: isa.ClassInt}}, nil}}},
		{"phase bad thread", Scenario{
			Threads: [][]isa.Inst{{{Class: isa.ClassInt}}},
			Phases:  []PhaseMark{{Thread: 2, Label: "x"}},
		}},
		{"phase bad index", Scenario{
			Threads: [][]isa.Inst{{{Class: isa.ClassInt}}},
			Phases:  []PhaseMark{{Thread: 0, Index: 5, Label: "x"}},
		}},
	}
	for _, tc := range cases {
		if err := tc.s.Validate(); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
	}
	if err := testScenario().Validate(); err != nil {
		t.Errorf("good scenario rejected: %v", err)
	}
}

func TestSumFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.trace")
	if err := os.WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := SumFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const want = "2cf24dba5fb0a30e26e83b2ac5b9e29e1b161e5c1fa7425e73043362938b9824"
	if got != want {
		t.Fatalf("SumFile = %s, want %s", got, want)
	}
}

// FuzzScenarioBinary feeds hostile bytes to the binary reader: it must
// never panic, and every successful parse must re-encode and re-read to
// the same scenario (a full round-trip fixpoint).
func FuzzScenarioBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteScenarioBinary(&seed, testScenario()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(scenMagic))
	f.Add([]byte(scenMagic + "\x01\x00"))
	f.Add([]byte(scenMagic + "\x02\x00\xff\xff"))
	f.Add([]byte(fileMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadScenario(bytes.NewReader(data))
		if err != nil {
			if _, ok := Offset(err); !ok && errors.Is(err, ErrBadTrace) && len(data) > len(scenMagic) &&
				string(data[:len(scenMagic)]) == scenMagic {
				// Binary-path errors past the header should locate
				// themselves; Validate failures at EOF are the exception.
				if !strings.Contains(err.Error(), "thread") && !strings.Contains(err.Error(), "scenario has no") {
					t.Fatalf("binary error without offset: %v", err)
				}
			}
			return
		}
		var buf bytes.Buffer
		if err := WriteScenarioBinary(&buf, s); err != nil {
			t.Fatalf("re-encode of accepted scenario failed: %v", err)
		}
		s2, err := ReadScenario(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of re-encoded scenario failed: %v", err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip not a fixpoint:\n in %+v\nout %+v", s, s2)
		}
	})
}

// FuzzScenarioJSONL is the JSONL twin of FuzzScenarioBinary.
func FuzzScenarioJSONL(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteScenarioJSONL(&seed, testScenario()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"t":0,"pc":1,"class":"load","addr":7,"miss_lat":1000}`)
	f.Add(`{"t":0,"phase":"x"}`)
	f.Add("not json at all")
	f.Fuzz(func(t *testing.T, data string) {
		s, err := ReadScenario(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteScenarioJSONL(&buf, s); err != nil {
			t.Fatalf("re-encode of accepted scenario failed: %v", err)
		}
		s2, err := ReadScenario(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of re-encoded scenario failed: %v", err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip not a fixpoint:\n in %+v\nout %+v", s, s2)
		}
	})
}
