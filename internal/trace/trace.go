// Package trace defines how dynamic instruction streams reach the
// simulator: the Source interface produced by the synthetic workload
// generator (or by trace files), a fixed-record binary file format with
// Reader/Writer, and the basic-block dictionary used to synthesise
// plausible wrong-path instructions after branch mispredictions — the
// SMTsim technique the paper's methodology section describes.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/isa"
)

// Source produces the correct-path dynamic instruction stream of one
// thread. Implementations must be deterministic. Streams are unbounded:
// finite traces loop.
type Source interface {
	// Next fills out with the next dynamic instruction.
	Next(out *isa.Inst)
}

// SliceSource replays a finite instruction slice, looping at the end.
type SliceSource struct {
	insts []isa.Inst
	pos   int
}

// NewSliceSource wraps the given instructions. It panics on an empty
// slice: a thread must always have something to execute.
func NewSliceSource(insts []isa.Inst) *SliceSource {
	if len(insts) == 0 {
		panic("trace: empty instruction slice")
	}
	return &SliceSource{insts: insts}
}

// Next implements Source.
func (s *SliceSource) Next(out *isa.Inst) {
	*out = s.insts[s.pos]
	s.pos++
	if s.pos == len(s.insts) {
		s.pos = 0
	}
}

// Len returns the trace length in instructions.
func (s *SliceSource) Len() int { return len(s.insts) }

// File format: 8-byte magic+version header, then fixed 29-byte records.
const (
	fileMagic   = "MFTRACE1"
	recordBytes = 8 + 1 + 1 + 1 + 1 + 8 + 1 + 8
)

// Writer serialises instructions to a trace file.
type Writer struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one instruction record.
func (w *Writer) Write(in *isa.Inst) error {
	if w.err != nil {
		return w.err
	}
	var buf [recordBytes]byte
	binary.LittleEndian.PutUint64(buf[0:], in.PC)
	buf[8] = byte(in.Class)
	buf[9] = byte(in.Dest)
	buf[10] = byte(in.Src1)
	buf[11] = byte(in.Src2)
	binary.LittleEndian.PutUint64(buf[12:], in.Addr)
	if in.Taken {
		buf[20] = 1
	}
	binary.LittleEndian.PutUint64(buf[21:], in.Target)
	if _, err := w.w.Write(buf[:]); err != nil {
		w.err = fmt.Errorf("trace: writing record %d: %w", w.n, err)
		return w.err
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("trace: malformed trace file")

// ReadAll parses a complete trace file into memory. Parse errors wrap
// ErrBadTrace and carry the byte offset of the offending record
// (recoverable with Offset), like every other reader in this package.
func ReadAll(r io.Reader) ([]isa.Inst, error) {
	br := bufio.NewReader(r)
	var magic [len(fileMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, badAt(0, "missing header: %w", err)
	}
	if string(magic[:]) != fileMagic {
		return nil, badAt(0, "bad magic %q", magic)
	}
	var out []isa.Inst
	var buf [recordBytes]byte
	for {
		off := int64(len(fileMagic)) + int64(len(out))*recordBytes
		_, err := io.ReadFull(br, buf[:])
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, badAt(off, "truncated record %d: %w", len(out), err)
		}
		cls := isa.Class(buf[8])
		if int(cls) >= isa.NumClasses {
			return nil, badAt(off, "record %d has class %d", len(out), cls)
		}
		out = append(out, isa.Inst{
			PC:     binary.LittleEndian.Uint64(buf[0:]),
			Class:  cls,
			Dest:   isa.Reg(buf[9]),
			Src1:   isa.Reg(buf[10]),
			Src2:   isa.Reg(buf[11]),
			Addr:   binary.LittleEndian.Uint64(buf[12:]),
			Taken:  buf[20] == 1,
			Target: binary.LittleEndian.Uint64(buf[21:]),
		})
	}
}

// BBDict is the basic-block dictionary: a deterministic map from any PC to
// static instruction information, used to synthesise wrong-path
// instruction streams. Real SMTsim records every static instruction of
// the binary; we derive equivalent information from a hash of the PC, so
// the same PC always yields the same "static" instruction — wrong paths
// are repeatable and pollute the icache/predictor consistently.
type BBDict struct {
	// dataBase/dataSpan direct wrong-path memory accesses into the
	// owning thread's address space so pollution lands in its own
	// working set.
	dataBase uint64
	dataSpan uint64
}

// NewBBDict builds a dictionary whose wrong-path memory accesses fall in
// [dataBase, dataBase+dataSpan).
func NewBBDict(dataBase, dataSpan uint64) *BBDict {
	if dataSpan == 0 {
		dataSpan = 1 << 20
	}
	return &BBDict{dataBase: dataBase, dataSpan: dataSpan}
}

// hashPC mixes a PC into pseudo-random static instruction bits.
func hashPC(pc uint64) uint64 {
	x := pc * 0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}

// InstAt synthesises the static instruction at pc. Wrong-path streams are
// mostly ALU work with occasional loads; control instructions fall
// through (wrong paths are never followed further).
func (d *BBDict) InstAt(pc uint64, out *isa.Inst) {
	h := hashPC(pc)
	out.PC = pc
	out.Taken = false
	out.Target = 0
	out.MissLatency = 0
	out.Dest = isa.Reg(1 + (h>>8)%62)
	out.Src1 = isa.Reg(1 + (h>>16)%62)
	out.Src2 = isa.Reg(1 + (h>>24)%62)
	switch h % 16 {
	case 0, 1, 2:
		out.Class = isa.ClassLoad
		out.Addr = d.dataBase + (h>>32)%d.dataSpan
	case 3:
		out.Class = isa.ClassStore
		out.Addr = d.dataBase + (h>>32)%d.dataSpan
	case 4:
		out.Class = isa.ClassBranch
		out.Dest = isa.InvalidReg
	case 5:
		out.Class = isa.ClassFP
	default:
		out.Class = isa.ClassInt
	}
}
