package pipeline

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/trace"
)

// frontQCapacity bounds the per-thread fetch buffer ahead of rename.
const frontQCapacity = 32

// mshrRetryDelay is the load replay delay when the MSHR file is full.
const mshrRetryDelay = 4

// wheelSize bounds the execution completion horizon (longest fixed
// execution latency plus L1 hit time).
const wheelSize = 64

// Typed counter IDs for every per-cycle-path event (stats.Set.Bump is a
// dense array add; the string names remain the reporting API).
var (
	cFlushResolvedHit      = stats.MustRegister("flush.resolved_hit")
	cFlushResolvedMiss     = stats.MustRegister("flush.resolved_miss")
	cCommitBlockedMem      = stats.MustRegister("commit.blocked.mem")
	cCommitBlockedQueued   = stats.MustRegister("commit.blocked.queued")
	cCommitBlockedFrontend = stats.MustRegister("commit.blocked.frontend")
	cCommitBlockedExec     = stats.MustRegister("commit.blocked.exec")
	cL1DStoreHits          = stats.MustRegister("l1d.store_hits")
	cL1DStoreMisses        = stats.MustRegister("l1d.store_misses")
	cBranches              = stats.MustRegister("branches")
	cMispredicts           = stats.MustRegister("mispredicts")
	cDTLBMisses            = stats.MustRegister("dtlb.misses")
	cL1DLoadHits           = stats.MustRegister("l1d.load_hits")
	cL1DLoadMisses         = stats.MustRegister("l1d.load_misses")
	cMSHRFullRetries       = stats.MustRegister("mshr.full_retries")
	cMSHRMerges            = stats.MustRegister("mshr.merges")
	cRenameBlockedQueue    = stats.MustRegister("rename.blocked.queue")
	cRenameBlockedROB      = stats.MustRegister("rename.blocked.rob")
	cRenameBlockedRegs     = stats.MustRegister("rename.blocked.regs")
	cPolicyStallCycles     = stats.MustRegister("policy.stall_cycles")
	cPolicyFlushes         = stats.MustRegister("policy.flushes")
	cFetchBlockedICache    = stats.MustRegister("fetch.blocked.icache")
	cFetchBlockedStall     = stats.MustRegister("fetch.blocked.stall")
	cFetchBlockedPolicy    = stats.MustRegister("fetch.blocked.policy")
	cFetchBlockedFlush     = stats.MustRegister("fetch.blocked.flush")
	cFetchBlockedFrontQ    = stats.MustRegister("fetch.blocked.frontq")
	cITLBMisses            = stats.MustRegister("itlb.misses")
	cL1IMisses             = stats.MustRegister("l1i.misses")
	cL1IHits               = stats.MustRegister("l1i.hits")
)

// Core is one SMT core.
type Core struct {
	ID  int
	cfg *config.Config
	pol policy.Policy

	l2 *mem.L2System

	threads []*thread

	intQ, fpQ, lsQ *queue
	// The rename pool is shared (PhysRegs minus per-thread architectural
	// state) but each context is guaranteed RegReservePerThread
	// registers: heldPRegs tracks per-thread usage against pregCap.
	freePRegs int
	heldPRegs []int
	pregCap   int

	pred *branch.Predictor
	l1i  *cache.Cache
	l1d  *cache.Cache
	itlb *cache.TLB
	dtlb *cache.TLB
	mshr *cache.MSHR
	// slotWaiters[slot] holds the loads blocked on the line tracked by
	// MSHR slot (primary + merged); slotLoads[slot] the policy
	// descriptors of its correct-path loads, for routing L2
	// miss-detection signals. Indexed by MSHR slot so the per-cycle path
	// touches no maps; slices are truncated in place when a line
	// resolves, keeping their capacity.
	slotWaiters [][]*UOp
	slotLoads   [][]*policy.LoadInfo

	wheel [wheelSize][]*UOp

	// pendingSubmits delays L2 requests by the L1 tag-check time, so the
	// minimum load-issue-to-L2-hit latency matches the configured L1
	// miss latency (paper: 22 cycles).
	pendingSubmits []delayedSubmit

	energy energy.Account
	stats  stats.Set

	pageBits uint

	// Recycling pools and per-cycle scratch. All per-core (cores are
	// ticked sequentially within a chip), so no locking is needed.
	uopFree     []*UOp
	loadFree    []*policy.LoadInfo
	reqPool     mem.RequestPool
	fetchOrder  []int
	renameBlock []bool
	replayTmp   []isa.Inst
}

type delayedSubmit struct {
	req *mem.Request
	at  uint64
}

type thread struct {
	id  int
	src trace.Source
	bb  *trace.BBDict

	// pending holds the next correct-path instruction peeked from the
	// source but not yet consumed by fetch.
	pending    isa.Inst
	hasPending bool
	// replay[replayHead:] holds squashed correct-path instructions
	// awaiting refetch, in program order. The head index (instead of
	// re-slicing) and the spare buffer let both consumption and the
	// flush-time prepend reuse their backing arrays.
	replay      []isa.Inst
	replayHead  int
	replaySpare []isa.Inst

	seq     uint64
	icount  int
	rob     *ring
	frontQ  *ring
	regProd [isa.NumArchRegs]uopRef

	// Fetch blocking conditions.
	fetchStallUntil   uint64
	icacheWait        *mem.Request
	pendingMispredict *UOp
	wrongPath         bool
	wpPC              uint64
	lastFetchLine     uint64

	// Policy-driven state.
	policyStalled bool
	flushStalled  bool
	flushLoad     *policy.LoadInfo

	committed uint64
	fetched   uint64
}

// New builds a core. sources supplies the correct-path stream per
// hardware context; dataBases gives each context's address-space base for
// wrong-path synthesis.
func New(id int, cfg *config.Config, pol policy.Policy, l2 *mem.L2System,
	sources []trace.Source, dataBases []uint64) *Core {
	if len(sources) != cfg.Core.ThreadsPerCore || len(dataBases) != cfg.Core.ThreadsPerCore {
		panic(fmt.Sprintf("pipeline: core %d needs %d sources/bases, got %d/%d",
			id, cfg.Core.ThreadsPerCore, len(sources), len(dataBases)))
	}
	pageBits := uint(0)
	for 1<<pageBits < cfg.Mem.PageBytes {
		pageBits++
	}
	c := &Core{
		ID:   id,
		cfg:  cfg,
		pol:  pol,
		l2:   l2,
		intQ: newQueue(cfg.Core.IntQueue),
		fpQ:  newQueue(cfg.Core.FPQueue),
		lsQ:  newQueue(cfg.Core.LSQueue),
		pred: branch.New(cfg.Core.PerceptronCount, cfg.Core.PerceptronHistory,
			cfg.Core.BTBEntries, cfg.Core.BTBAssoc, cfg.Core.RASEntries, cfg.Core.ThreadsPerCore),
		l1i:         cache.New(cfg.Mem.L1I),
		l1d:         cache.New(cfg.Mem.L1D),
		itlb:        cache.NewTLB(cfg.Mem.TLBEntries),
		dtlb:        cache.NewTLB(cfg.Mem.TLBEntries),
		mshr:        cache.NewMSHR(cfg.Core.MSHREntries),
		slotWaiters: make([][]*UOp, cfg.Core.MSHREntries),
		slotLoads:   make([][]*policy.LoadInfo, cfg.Core.MSHREntries),
		renameBlock: make([]bool, cfg.Core.ThreadsPerCore),
		pageBits:    pageBits,
	}
	c.freePRegs = cfg.Core.PhysRegs - cfg.Core.ThreadsPerCore*isa.NumArchRegs
	c.heldPRegs = make([]int, cfg.Core.ThreadsPerCore)
	c.pregCap = c.freePRegs - cfg.Core.RegReservePerThread*(cfg.Core.ThreadsPerCore-1)
	if c.pregCap < 1 {
		c.pregCap = 1
	}
	for t := 0; t < cfg.Core.ThreadsPerCore; t++ {
		c.threads = append(c.threads, &thread{
			id:  t,
			src: sources[t],
			// Wrong-path pollution stays within a few pages of the
			// thread's own space: wrong paths re-execute nearby code on
			// stale pointers, they do not wander the whole heap (and a
			// wider span would thrash the TLB unrealistically).
			bb:     trace.NewBBDict(dataBases[t]+1<<30, 2*uint64(cfg.Mem.PageBytes)),
			rob:    newRing(cfg.Core.ROBPerThread),
			frontQ: newRing(frontQCapacity),
		})
	}
	return c
}

// Policy returns the core's IFetch policy.
func (c *Core) Policy() policy.Policy { return c.pol }

// Energy returns the core's energy account.
func (c *Core) Energy() *energy.Account { return &c.energy }

// Stats returns the core's event counters.
func (c *Core) Stats() *stats.Set { return &c.stats }

// Committed returns per-thread committed instruction counts.
func (c *Core) Committed() []uint64 {
	out := make([]uint64, len(c.threads))
	for i, t := range c.threads {
		out[i] = t.committed
	}
	return out
}

// AppendCommitted appends the per-thread committed counts to dst and
// returns the extended slice — the allocation-free form of Committed for
// per-interval samplers (pass dst[:0] of a reused buffer).
func (c *Core) AppendCommitted(dst []uint64) []uint64 {
	for _, t := range c.threads {
		dst = append(dst, t.committed)
	}
	return dst
}

// CommittedTotal returns the core-wide committed instruction count
// without allocating.
func (c *Core) CommittedTotal() uint64 {
	var n uint64
	for _, t := range c.threads {
		n += t.committed
	}
	return n
}

// lineOf returns the cache line address (64B lines throughout).
func (c *Core) lineOf(addr uint64) uint64 { return addr >> 6 }

// ---- recycling pools ----

// allocUOp takes a uop from the free list, or allocates one.
func (c *Core) allocUOp() *UOp {
	if n := len(c.uopFree); n > 0 {
		u := c.uopFree[n-1]
		c.uopFree = c.uopFree[:n-1]
		u.pooled = false
		return u
	}
	return &UOp{}
}

// freeUOp recycles a dead uop (committed, or squashed and no longer
// resident in the wheel or MSHR waiter lists). The generation bump
// invalidates every outstanding uopRef to it. The uop's LoadInfo rides
// along, except while the thread is still flush-stalled on it.
func (c *Core) freeUOp(u *UOp) {
	if u.pooled {
		panic("pipeline: double free of uop")
	}
	if li := u.Load; li != nil && c.threads[u.Tid].flushLoad != li {
		*li = policy.LoadInfo{}
		c.loadFree = append(c.loadFree, li)
	}
	gen := u.Gen + 1
	*u = UOp{Gen: gen, pooled: true}
	c.uopFree = append(c.uopFree, u)
}

// allocLoadInfo takes a LoadInfo from the free list, or allocates one.
func (c *Core) allocLoadInfo() *policy.LoadInfo {
	if n := len(c.loadFree); n > 0 {
		li := c.loadFree[n-1]
		c.loadFree = c.loadFree[:n-1]
		return li
	}
	return &policy.LoadInfo{}
}

// HandleResponse consumes one shared-L2 response addressed to this core.
// The request is recycled here: every request this core issues comes back
// exactly once as a response.
func (c *Core) HandleResponse(r *mem.Request, now uint64) {
	switch {
	case r.IsInstr:
		c.l1i.Fill(r.Addr)
		for _, t := range c.threads {
			if t.icacheWait == r {
				t.icacheWait = nil
			}
		}
	case r.NoWake:
		c.l1d.Fill(r.Addr)
	default:
		c.l1d.Fill(r.Addr)
		line := c.lineOf(r.Addr)
		entry := c.mshr.Lookup(line)
		if entry == nil {
			panic(fmt.Sprintf("pipeline: response for line %#x without MSHR entry", line))
		}
		slot := entry.Slot()
		waiters := c.slotWaiters[slot]
		c.slotWaiters[slot] = waiters[:0]
		c.slotLoads[slot] = c.slotLoads[slot][:0]
		c.mshr.FreeEntry(entry)
		for _, u := range waiters {
			if u.Squashed {
				// The squash deferred recycling until the line
				// resolved; the uop leaves the waiter list here.
				c.freeUOp(u)
				continue
			}
			u.WaitingMem = false
			c.markExecuted(u, now)
			if li := u.Load; li != nil {
				li.Resolved = true
				li.ResolvedAt = now
				li.L2Hit = r.L2Hit
				c.pol.OnResolve(li, now)
				t := c.threads[u.Tid]
				if t.flushStalled && t.flushLoad == li {
					t.flushStalled = false
					t.flushLoad = nil
					if r.L2Hit {
						c.stats.Bump(cFlushResolvedHit, 1) // false miss
					} else {
						c.stats.Bump(cFlushResolvedMiss, 1)
					}
				}
			}
		}
	}
	c.reqPool.Put(r)
}

// HandleL2MissDetected forwards the non-speculative miss signal to the
// policy for every load waiting on the missing line.
func (c *Core) HandleL2MissDetected(r *mem.Request, now uint64) {
	if r.IsInstr || r.NoWake {
		return
	}
	entry := c.mshr.Lookup(c.lineOf(r.Addr))
	if entry == nil {
		return
	}
	for _, li := range c.slotLoads[entry.Slot()] {
		if !li.Resolved {
			c.pol.OnL2MissDetected(li, now)
		}
	}
}

// submitDelayed schedules an L2 request for submission after the L1
// tag-check time has elapsed.
func (c *Core) submitDelayed(req *mem.Request, now uint64) {
	c.pendingSubmits = append(c.pendingSubmits, delayedSubmit{req: req, at: now + uint64(c.cfg.L1Latency)})
}

func (c *Core) flushSubmits(now uint64) {
	kept := c.pendingSubmits[:0]
	for _, d := range c.pendingSubmits {
		if d.at <= now {
			c.l2.Submit(d.req, now)
		} else {
			kept = append(kept, d)
		}
	}
	c.pendingSubmits = kept
}

// Tick advances the core one cycle. Stages run in reverse pipeline order
// so a result produced this cycle is consumed no earlier than the next.
func (c *Core) Tick(now uint64) {
	c.flushSubmits(now)
	c.commitStage(now)
	c.writebackStage(now)
	c.issueStage(now)
	c.renameStage(now)
	c.policyStage(now)
	c.fetchStage(now)
}

// ---- commit ----

func (c *Core) commitStage(now uint64) {
	budget := c.cfg.Core.CommitWidth
	n := len(c.threads)
	start := int(now) % n
	for i := 0; i < n && budget > 0; i++ {
		t := c.threads[(start+i)%n]
		for budget > 0 {
			u := t.rob.front()
			if u == nil {
				break
			}
			if !u.Executed {
				switch {
				case u.WaitingMem:
					c.stats.Bump(cCommitBlockedMem, 1)
				case u.InQueue:
					c.stats.Bump(cCommitBlockedQueued, 1)
				case !u.Issued:
					c.stats.Bump(cCommitBlockedFrontend, 1)
				default:
					c.stats.Bump(cCommitBlockedExec, 1)
				}
				break
			}
			t.rob.popFront()
			if u.HasPReg {
				c.freePRegs++
				c.heldPRegs[u.Tid]--
				u.HasPReg = false
			}
			u.Committed = true
			t.committed++
			budget--
			c.energy.OnCommit()
			if u.Inst.Class == isa.ClassStore {
				c.commitStore(u, now)
			}
			// Retirement is the uop's last use; rename-table and source
			// references that still name it are invalidated by the
			// generation bump and read as "architectural", exactly as a
			// committed (Executed) producer did before recycling.
			c.freeUOp(u)
		}
	}
}

// commitStore performs the store's cache write at retirement; misses
// generate fire-and-forget fill traffic through the shared system.
func (c *Core) commitStore(u *UOp, now uint64) {
	if c.l1d.Access(u.Inst.Addr) {
		c.stats.Bump(cL1DStoreHits, 1)
		return
	}
	c.stats.Bump(cL1DStoreMisses, 1)
	req := c.reqPool.Get()
	req.CoreID = c.ID
	req.ThreadID = u.Tid
	req.Addr = u.Inst.Addr
	req.NoWake = true
	req.MissLatency = u.Inst.MissLatency
	req.IssuedAt = now
	c.submitDelayed(req, now)
}

// ---- writeback ----

func (c *Core) writebackStage(now uint64) {
	slot := int(now % wheelSize)
	uops := c.wheel[slot]
	c.wheel[slot] = uops[:0]
	for _, u := range uops {
		// Clear wheel residence per uop as it is processed: a branch
		// earlier in this slot may squash a uop later in it, and that
		// uop must stay recognisably in-wheel until reached here.
		u.InWheel = false
		if u.Squashed {
			c.freeUOp(u)
			continue
		}
		c.markExecuted(u, now)
		if u.Inst.Class.IsControl() {
			c.resolveControl(u, now)
		}
	}
}

// markExecuted completes a uop: the result is produced and dependents may
// issue from the next cycle. The physical register is held to commit.
func (c *Core) markExecuted(u *UOp, now uint64) {
	u.Executed = true
	u.DoneAt = now
}

func (c *Core) resolveControl(u *UOp, now uint64) {
	t := c.threads[u.Tid]
	if u.WrongPath {
		return // wrong-path control never trains or redirects
	}
	c.pred.Resolve(&u.Inst)
	if u.Inst.Class == isa.ClassBranch {
		c.stats.Bump(cBranches, 1)
	}
	if u.MispredictedBranch {
		c.stats.Bump(cMispredicts, 1)
		c.squashYounger(t, u.Seq, false, now)
		if t.pendingMispredict == u {
			t.pendingMispredict = nil
			t.wrongPath = false
		}
		// Redirect: one dead cycle before fetch resumes on the correct
		// path (the front-end depth models the refill). A pending
		// wrong-path icache fill no longer gates fetch — the redirect
		// abandons it (the fill itself still completes).
		if t.fetchStallUntil < now+1 {
			t.fetchStallUntil = now + 1
		}
		t.icacheWait = nil
		t.lastFetchLine = 0
	}
}

// ---- issue ----

func (c *Core) issueStage(now uint64) {
	// Direct age-order walks over the queue slots (no per-entry callback):
	// this loop visits every waiting uop every cycle, so it is the
	// simulator's single hottest code.
	units := c.cfg.Core.IntUnits
	for _, u := range c.intQ.liveFrom() {
		if units == 0 {
			break
		}
		if u != nil && c.ready(u, now) {
			units--
			c.issueALU(u, now)
		}
	}
	units = c.cfg.Core.FPUnits
	for _, u := range c.fpQ.liveFrom() {
		if units == 0 {
			break
		}
		if u != nil && c.ready(u, now) {
			units--
			c.issueALU(u, now)
		}
	}
	units = c.cfg.Core.LSUnits
	for _, u := range c.lsQ.liveFrom() {
		if units == 0 {
			break
		}
		if u != nil && c.ready(u, now) {
			units--
			c.issueMem(u, now)
		}
	}
}

func (c *Core) ready(u *UOp, now uint64) bool {
	if u.RetryAt > now {
		return false
	}
	// A producer observed executed — or recycled, which implies it
	// executed or squashed together with u — never becomes un-executed
	// again, so the reference is dropped once satisfied and later checks
	// skip the pointer chase.
	if p := u.Src1Prod.u; p != nil {
		if p.Gen == u.Src1Prod.gen && !p.Executed {
			return false
		}
		u.Src1Prod = uopRef{}
	}
	if p := u.Src2Prod.u; p != nil {
		if p.Gen == u.Src2Prod.gen && !p.Executed {
			return false
		}
		u.Src2Prod = uopRef{}
	}
	return true
}

func (c *Core) issueALU(u *UOp, now uint64) {
	q := c.intQ
	if u.Inst.Class.UsesFP() {
		q = c.fpQ
	}
	q.remove(u)
	c.threads[u.Tid].icount--
	u.Issued = true
	u.IssuedAt = now
	c.schedule(u, now+uint64(u.Inst.Class.ExecLatency()))
}

func (c *Core) schedule(u *UOp, at uint64) {
	u.InWheel = true
	c.wheel[int(at%wheelSize)] = append(c.wheel[int(at%wheelSize)], u)
}

func (c *Core) issueMem(u *UOp, now uint64) {
	// Address translation first; a TLB walk delays the access.
	if !u.TLBDone {
		u.TLBDone = true
		if !c.dtlb.Access(u.Inst.Addr >> c.pageBits) {
			u.TLBMissed = true
			u.RetryAt = now + uint64(c.cfg.Mem.TLBMissLatency)
			c.stats.Bump(cDTLBMisses, 1)
			return // stays in the queue, retries after the walk
		}
	}

	if u.Inst.Class == isa.ClassStore {
		// Stores complete at address generation; the cache write
		// happens at commit.
		c.lsQ.remove(u)
		c.threads[u.Tid].icount--
		u.Issued = true
		u.IssuedAt = now
		c.schedule(u, now+1)
		return
	}

	if c.l1d.Access(u.Inst.Addr) {
		c.stats.Bump(cL1DLoadHits, 1)
		c.lsQ.remove(u)
		c.threads[u.Tid].icount--
		u.Issued = true
		u.IssuedAt = now
		c.schedule(u, now+uint64(c.cfg.L1Latency))
		return
	}

	// L1 miss: take an MSHR (or merge) and wait for the shared system.
	line := c.lineOf(u.Inst.Addr)
	entry, merged, ok := c.mshr.Allocate(line)
	if !ok {
		u.RetryAt = now + mshrRetryDelay
		c.stats.Bump(cMSHRFullRetries, 1)
		return
	}
	slot := entry.Slot()
	c.stats.Bump(cL1DLoadMisses, 1)
	c.lsQ.remove(u)
	c.threads[u.Tid].icount--
	u.Issued = true
	u.IssuedAt = now
	u.WaitingMem = true
	c.slotWaiters[slot] = append(c.slotWaiters[slot], u)

	if !merged {
		req := c.reqPool.Get()
		req.CoreID = c.ID
		req.ThreadID = u.Tid
		req.Addr = u.Inst.Addr
		// On an MSHR merge the first requester's override governs the
		// line's fill time; later merged loads simply ride its response.
		req.MissLatency = u.Inst.MissLatency
		req.IssuedAt = now
		c.submitDelayed(req, now)
	} else {
		c.stats.Bump(cMSHRMerges, 1)
	}

	if !u.WrongPath {
		li := c.allocLoadInfo()
		li.Tid = u.Tid
		li.Seq = u.Seq
		li.IssuedAt = now
		li.Bank = c.l2.BankOf(u.Inst.Addr)
		li.TLBMiss = u.TLBMissed
		u.Load = li
		c.slotLoads[slot] = append(c.slotLoads[slot], li)
		c.pol.OnL1Miss(li, now)
	}
}

// ---- rename ----

func (c *Core) renameStage(now uint64) {
	budget := c.cfg.Core.RenameWidth
	n := len(c.threads)
	start := int(now) % n
	blocked := c.renameBlock
	for i := range blocked {
		blocked[i] = false
	}
	for budget > 0 {
		progressed := false
		for i := 0; i < n && budget > 0; i++ {
			idx := (start + i) % n
			if blocked[idx] {
				continue
			}
			t := c.threads[idx]
			u := t.frontQ.front()
			if u == nil || u.RenameReadyAt > now {
				blocked[idx] = true
				continue
			}
			if !c.tryRename(t, u) {
				blocked[idx] = true
				continue
			}
			t.frontQ.popFront()
			budget--
			progressed = true
		}
		if !progressed {
			return
		}
	}
}

func (c *Core) queueFor(class isa.Class) *queue {
	switch {
	case class.UsesFP():
		return c.fpQ
	case class.IsMem():
		return c.lsQ
	default:
		return c.intQ
	}
}

func (c *Core) tryRename(t *thread, u *UOp) bool {
	q := c.queueFor(u.Inst.Class)
	if !q.hasSpace() {
		c.stats.Bump(cRenameBlockedQueue, 1)
		return false
	}
	if t.rob.full() {
		c.stats.Bump(cRenameBlockedROB, 1)
		return false
	}
	needsReg := u.Inst.HasDest()
	if needsReg && (c.freePRegs == 0 || c.heldPRegs[t.id] >= c.pregCap) {
		c.stats.Bump(cRenameBlockedRegs, 1)
		return false
	}
	if s := u.Inst.Src1; s != isa.InvalidReg {
		u.Src1Prod = t.regProd[s]
	}
	if s := u.Inst.Src2; s != isa.InvalidReg {
		u.Src2Prod = t.regProd[s]
	}
	if needsReg {
		c.freePRegs--
		c.heldPRegs[t.id]++
		u.HasPReg = true
		u.PrevProd = t.regProd[u.Inst.Dest]
		t.regProd[u.Inst.Dest] = mkRef(u)
	}
	q.insert(u)
	t.rob.push(u)
	return true
}

// ---- policy ----

func (c *Core) policyStage(now uint64) {
	for _, d := range c.pol.Tick(now) {
		t := c.threads[d.Tid]
		switch d.Action {
		case policy.ActNone:
			t.policyStalled = false
		case policy.ActStall:
			if !t.flushStalled {
				t.policyStalled = true
				c.stats.Bump(cPolicyStallCycles, 1)
			}
		case policy.ActFlush:
			if t.flushStalled || d.Load == nil || d.Load.Resolved {
				break
			}
			c.doFlush(t, d.Load, now)
		}
	}
}

// doFlush applies the FLUSH response action: squash everything younger
// than the offending load and fetch-stall the thread until it resolves.
func (c *Core) doFlush(t *thread, li *policy.LoadInfo, now uint64) {
	c.stats.Bump(cPolicyFlushes, 1)
	c.squashYounger(t, li.Seq, true, now)
	t.flushStalled = true
	t.flushLoad = li
	t.policyStalled = false
	t.icacheWait = nil // the flush abandons any in-flight fetch fill
	t.lastFetchLine = 0
}

// ---- squash ----

// squashYounger removes every uop of t younger than afterSeq. forFlush
// selects the energy attribution (FLUSH waste vs wrong-path) and whether
// correct-path instructions are captured for replay.
func (c *Core) squashYounger(t *thread, afterSeq uint64, forFlush bool, now uint64) {
	replayTmp := c.replayTmp[:0]

	// Front-end queue, youngest first.
	for t.frontQ.len() > 0 && t.frontQ.back().Seq > afterSeq {
		u := t.frontQ.popBack()
		c.undoUop(t, u, forFlush, &replayTmp, now)
	}
	// ROB tail, youngest first.
	for t.rob.len() > 0 && t.rob.back().Seq > afterSeq {
		u := t.rob.popBack()
		c.undoUop(t, u, forFlush, &replayTmp, now)
	}

	if len(replayTmp) > 0 {
		t.prependReplay(replayTmp)
	}
	c.replayTmp = replayTmp[:0]
}

// prependReplay pushes squashed instructions (given youngest-first) ahead
// of the thread's existing replay queue, reversing them into program
// order. The spare buffer is swapped in so steady-state flushes allocate
// nothing.
func (t *thread) prependReplay(tmp []isa.Inst) {
	rem := t.replay[t.replayHead:]
	buf := t.replaySpare[:0]
	for i := len(tmp) - 1; i >= 0; i-- {
		buf = append(buf, tmp[i])
	}
	buf = append(buf, rem...)
	t.replaySpare = t.replay[:0]
	t.replay = buf
	t.replayHead = 0
}

func (c *Core) undoUop(t *thread, u *UOp, forFlush bool, replay *[]isa.Inst, now uint64) {
	if u.Squashed {
		return
	}
	u.Squashed = true

	// Energy attribution happens before state is torn down so the stage
	// classification sees the uop as it was.
	if forFlush && !u.WrongPath {
		c.energy.OnFlushed(u.StageAt(now, c.cfg.Core.FrontEndStages))
	} else {
		c.energy.OnWrongPath(u.StageAt(now, c.cfg.Core.FrontEndStages))
	}

	if u.InQueue {
		c.queueFor(u.Inst.Class).remove(u)
		t.icount--
	} else if !u.Issued {
		// Still in the front-end.
		t.icount--
	}
	if u.HasPReg {
		c.freePRegs++
		c.heldPRegs[u.Tid]--
		u.HasPReg = false
	}
	if u.Inst.HasDest() && t.regProd[u.Inst.Dest].refersTo(u) {
		t.regProd[u.Inst.Dest] = u.PrevProd
	}
	if li := u.Load; li != nil && !li.Resolved {
		c.pol.OnSquash(li)
		li.Resolved = true // stop any further policy notifications
	}
	if u == t.pendingMispredict {
		t.pendingMispredict = nil
		t.wrongPath = false
	}
	if u.Inst.Class.IsControl() && !u.WrongPath {
		c.pred.RAS[t.id].Restore(u.RASTop, u.RASDepth)
	}
	if forFlush && !u.WrongPath {
		*replay = append(*replay, u.Inst)
	}
	// Recycle now unless the uop is still resident in the wheel or an
	// MSHR waiter list; those sites recycle it when they drop it.
	if !u.InWheel && !u.WaitingMem {
		c.freeUOp(u)
	}
}

// ---- fetch ----

func (c *Core) fetchStage(now uint64) {
	// ICOUNT ordering: fetchable threads by ascending in-flight count.
	order := c.fetchOrder[:0]
	for i := range c.threads {
		order = append(order, i)
	}
	c.fetchOrder = order
	for i := 1; i < len(order); i++ { // insertion sort: tiny n, stable
		for j := i; j > 0; j-- {
			a, b := c.threads[order[j-1]], c.threads[order[j]]
			if a.icount > b.icount || (a.icount == b.icount && (now+uint64(order[j-1]))%2 == 1) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}

	width := c.cfg.Core.FetchWidth
	threadsUsed := 0
	for _, idx := range order {
		if width == 0 || threadsUsed == c.cfg.Core.FetchThreads {
			return
		}
		t := c.threads[idx]
		if !c.canFetch(t, now) {
			continue
		}
		n := c.fetchThread(t, now, width)
		if n > 0 {
			width -= n
			threadsUsed++
		}
	}
}

func (c *Core) canFetch(t *thread, now uint64) bool {
	switch {
	case t.icacheWait != nil:
		c.stats.Bump(cFetchBlockedICache, 1)
		return false
	case t.fetchStallUntil > now:
		c.stats.Bump(cFetchBlockedStall, 1)
		return false
	case t.policyStalled:
		c.stats.Bump(cFetchBlockedPolicy, 1)
		return false
	case t.flushStalled:
		c.stats.Bump(cFetchBlockedFlush, 1)
		return false
	case t.frontQ.full():
		c.stats.Bump(cFetchBlockedFrontQ, 1)
		return false
	}
	return true
}

// peekInst returns the next instruction to fetch without consuming it.
func (t *thread) peekInst() *isa.Inst {
	if t.wrongPath {
		t.bb.InstAt(t.wpPC, &t.pending)
		return &t.pending
	}
	if t.replayHead < len(t.replay) {
		return &t.replay[t.replayHead]
	}
	if !t.hasPending {
		t.src.Next(&t.pending)
		t.hasPending = true
	}
	return &t.pending
}

// consumeInst commits the peeked instruction.
func (t *thread) consumeInst() {
	if t.wrongPath {
		t.wpPC += 4
		return
	}
	if t.replayHead < len(t.replay) {
		t.replayHead++
		if t.replayHead == len(t.replay) {
			// Drained: rewind so the buffer capacity is reused.
			t.replay = t.replay[:0]
			t.replayHead = 0
		}
		return
	}
	t.hasPending = false
}

func (c *Core) fetchThread(t *thread, now uint64, max int) int {
	fetched := 0
	for fetched < max && !t.frontQ.full() {
		in := t.peekInst()

		// Instruction cache: one access per new line.
		line := in.PC >> 6
		if line != t.lastFetchLine {
			if !c.itlb.Access(in.PC >> c.pageBits) {
				c.stats.Bump(cITLBMisses, 1)
				t.fetchStallUntil = now + uint64(c.cfg.Mem.TLBMissLatency)
				return fetched
			}
			if !c.l1i.Access(in.PC) {
				c.stats.Bump(cL1IMisses, 1)
				req := c.reqPool.Get()
				req.CoreID = c.ID
				req.ThreadID = t.id
				req.Addr = in.PC
				req.IsInstr = true
				req.IssuedAt = now
				t.icacheWait = req
				c.submitDelayed(req, now)
				return fetched
			}
			c.stats.Bump(cL1IHits, 1)
			t.lastFetchLine = line
		}

		u := c.allocUOp()
		u.Inst = *in
		u.Tid = t.id
		u.WrongPath = t.wrongPath
		u.FetchedAt = now
		u.RenameReadyAt = now + uint64(c.cfg.Core.FrontEndStages)
		t.consumeInst()
		t.seq++
		u.Seq = t.seq
		t.frontQ.push(u)
		t.icount++
		t.fetched++
		fetched++

		if !u.Inst.Class.IsControl() {
			continue
		}
		if u.WrongPath {
			// Wrong-path control: synthesised as fall-through; keep
			// fetching inline.
			continue
		}
		stop := c.predictControl(t, u, now)
		if stop {
			return fetched
		}
	}
	return fetched
}

// predictControl runs the front-end predictor for a fetched control
// instruction, arranging wrong-path fetch as needed. It reports whether
// the fetch group must end.
func (c *Core) predictControl(t *thread, u *UOp, now uint64) bool {
	u.RASTop, u.RASDepth = c.pred.RAS[t.id].Snapshot()
	pr := c.pred.Predict(t.id, &u.Inst)
	// A taken prediction without a target cannot redirect the front
	// end: the effective prediction is fall-through (real front ends
	// behave this way on BTB misses).
	if pr.Taken && pr.Target == 0 {
		pr.Taken = false
	}
	actual := &u.Inst

	if pr.Taken == actual.Taken && (!actual.Taken || pr.Target == actual.Target) {
		// Correct prediction. A taken branch ends the fetch group.
		if actual.Taken {
			t.lastFetchLine = 0 // next fetch starts at the target line
			return true
		}
		return false
	}
	// Mispredicted: fetch proceeds down the wrong path until the branch
	// resolves.
	u.MispredictedBranch = true
	t.pendingMispredict = u
	t.wrongPath = true
	if pr.Taken {
		t.wpPC = pr.Target
	} else {
		t.wpPC = actual.PC + 4
	}
	t.lastFetchLine = 0
	return true
}

// ---- invariant checks (used by tests) ----

// CheckInvariants validates resource conservation; it returns an error
// describing the first violation.
func (c *Core) CheckInvariants() error {
	pool := c.cfg.Core.PhysRegs - c.cfg.Core.ThreadsPerCore*isa.NumArchRegs
	totalHeld := 0
	for tid, t := range c.threads {
		held := 0
		for i := 0; i < t.rob.len(); i++ {
			if t.rob.at(i).HasPReg {
				held++
			}
		}
		for i := 0; i < t.frontQ.len(); i++ {
			if t.frontQ.at(i).HasPReg {
				return fmt.Errorf("pipeline: front-end uop holds a register")
			}
		}
		if held != c.heldPRegs[tid] {
			return fmt.Errorf("pipeline: thread %d held-register count drifted: counted=%d tracked=%d",
				tid, held, c.heldPRegs[tid])
		}
		if held > c.pregCap {
			return fmt.Errorf("pipeline: thread %d exceeds register cap: %d > %d", tid, held, c.pregCap)
		}
		totalHeld += held
	}
	if c.freePRegs+totalHeld != pool {
		return fmt.Errorf("pipeline: register leak: free=%d held=%d pool=%d",
			c.freePRegs, totalHeld, pool)
	}
	for _, q := range []*queue{c.intQ, c.fpQ, c.lsQ} {
		n := 0
		q.scan(func(u *UOp) bool {
			if u.Squashed {
				n++ // squashed uop left in a queue
			}
			return true
		})
		if n > 0 {
			return fmt.Errorf("pipeline: %d squashed uops resident in an issue queue", n)
		}
	}
	waiterLines := 0
	for _, ws := range c.slotWaiters {
		if len(ws) > 0 {
			waiterLines++
		}
	}
	if c.mshr.InUse() != waiterLines {
		return fmt.Errorf("pipeline: MSHR in use %d != waiter lines %d",
			c.mshr.InUse(), waiterLines)
	}
	return nil
}

// ResetMeasurement zeroes the core's accumulated statistics (energy,
// counters, per-thread commit/fetch counts) without touching
// microarchitectural state. Used to exclude warm-up cycles.
func (c *Core) ResetMeasurement() {
	c.energy = energy.Account{}
	c.stats = stats.Set{}
	for _, t := range c.threads {
		t.committed = 0
		t.fetched = 0
	}
}

// ThreadInfo is a per-thread progress snapshot for reports and tests.
type ThreadInfo struct {
	Committed uint64
	Fetched   uint64
	ICount    int
	Flushed   bool
	Stalled   bool
}

// Threads returns per-thread snapshots.
func (c *Core) Threads() []ThreadInfo {
	out := make([]ThreadInfo, len(c.threads))
	for i, t := range c.threads {
		out[i] = ThreadInfo{
			Committed: t.committed,
			Fetched:   t.fetched,
			ICount:    t.icount,
			Flushed:   t.flushStalled,
			Stalled:   t.policyStalled,
		}
	}
	return out
}
