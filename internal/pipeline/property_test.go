package pipeline

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/trace"
)

// randomSource generates a pseudo-random but deterministic instruction
// stream with realistic structure: looping code, mixed classes, branches
// with stored outcomes, loads over a bounded working set.
type randomSource struct {
	r     *rng.Rand
	pc    uint64
	base  uint64
	i     int
	taken map[uint64]bool
}

func newRandomSource(seed uint64, base uint64) *randomSource {
	return &randomSource{r: rng.New(seed), pc: 0x10000, base: base, taken: map[uint64]bool{}}
}

func (s *randomSource) Next(out *isa.Inst) {
	s.i++
	out.PC = s.pc
	out.Taken = false
	out.Target = 0
	out.Addr = 0
	out.Dest = isa.Reg(1 + s.r.Intn(62))
	out.Src1 = isa.Reg(1 + s.r.Intn(62))
	out.Src2 = isa.InvalidReg
	switch v := s.r.Intn(100); {
	case v < 25:
		out.Class = isa.ClassLoad
		out.Addr = s.base + uint64(s.r.Intn(1<<16))
	case v < 35:
		out.Class = isa.ClassStore
		out.Dest = isa.InvalidReg
		out.Addr = s.base + uint64(s.r.Intn(1<<16))
	case v < 50:
		out.Class = isa.ClassFP
	case v < 60:
		out.Class = isa.ClassBranch
		out.Dest = isa.InvalidReg
		// Per-site sticky-random outcomes defeat the predictor often
		// enough to exercise squash paths hard.
		if s.r.Bool(0.3) {
			s.taken[s.pc] = !s.taken[s.pc]
		}
		out.Taken = s.taken[s.pc]
		if out.Taken {
			out.Target = 0x10000 + uint64(s.r.Intn(256))*4
		}
	default:
		out.Class = isa.ClassInt
	}
	if out.Taken {
		s.pc = out.Target
	} else {
		s.pc += 4
		if s.pc > 0x10000+1024*4 {
			s.pc = 0x10000
		}
	}
}

// TestPropertyInvariantsUnderRandomStreams hammers the core with random
// streams under every policy and validates resource conservation plus
// basic sanity after every burst.
func TestPropertyInvariantsUnderRandomStreams(t *testing.T) {
	cfg := config.Default(1)
	f := func(seed uint16, polPick uint8) bool {
		var pol policy.Policy
		switch polPick % 4 {
		case 0:
			pol = policy.NewICOUNT()
		case 1:
			pol = policy.NewFlushS(cfg.Core.ThreadsPerCore, 20+int(seed%80))
		case 2:
			pol = policy.NewFlushNS(cfg.Core.ThreadsPerCore)
		default:
			pol = policy.NewStall(cfg.Core.ThreadsPerCore, 20+int(seed%80))
		}
		h := newHarness(t, 2,
			pol,
			newRandomSource(uint64(seed)+1, 1<<34),
			newRandomSource(uint64(seed)+2, 2<<34))
		for burst := 0; burst < 4; burst++ {
			h.run(t, 2500)
			if err := h.core.CheckInvariants(); err != nil {
				t.Logf("seed %d policy %s: %v", seed, pol.Name(), err)
				return false
			}
		}
		// Fetched >= committed per thread, and the machine moved.
		total := uint64(0)
		for _, ti := range h.core.Threads() {
			if ti.Committed > ti.Fetched {
				return false
			}
			total += ti.Committed
		}
		return total > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyICountNonNegative verifies the in-flight counter bookkeeping
// never underflows across heavy squash activity.
func TestPropertyICountNonNegative(t *testing.T) {
	cfg := config.Default(1)
	h := newHarness(t, 2,
		policy.NewFlushS(cfg.Core.ThreadsPerCore, 25),
		newRandomSource(77, 1<<34),
		newRandomSource(78, 2<<34))
	for burst := 0; burst < 20; burst++ {
		h.run(t, 500)
		for i, ti := range h.core.Threads() {
			if ti.ICount < 0 {
				t.Fatalf("thread %d icount underflowed: %d", i, ti.ICount)
			}
		}
	}
}

// TestPropertyReplayPreservesProgramOrder checks the replay mechanism:
// the flushed thread keeps committing (replays are not dropped) and its
// committed count is monotone (replays never commit twice — enforced by
// the per-thread ROB pop discipline, validated by CheckInvariants inside
// run).
func TestPropertyReplayPreservesProgramOrder(t *testing.T) {
	cfg := config.Default(1)
	h := newHarness(t, 2, policy.NewFlushS(cfg.Core.ThreadsPerCore, 30),
		missyLoadSource(1<<16), aluSource())
	var last uint64
	for burst := 0; burst < 10; burst++ {
		h.run(t, 2000)
		cur := h.core.Committed()[0]
		if cur < last {
			t.Fatalf("committed count went backwards: %d -> %d", last, cur)
		}
		last = cur
	}
	if last == 0 {
		t.Fatal("flushed thread never committed")
	}
}

var _ trace.Source = (*randomSource)(nil)
