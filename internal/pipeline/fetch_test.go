package pipeline

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/policy"
)

// missyFPSource stalls in the FP queue: loads plus FP work dependent on
// them. Its queue pressure lands in fpQ, leaving the int queue to the
// partner, so ICOUNT's fetch preference is observable in isolation.
func missyFPSource(stride int) funcSource {
	pcs := &loopPC{base: 0x1000, span: 128}
	i := 0
	addr := uint64(0x400000000)
	return func(out *isa.Inst) {
		i++
		if i%16 == 1 {
			addr += uint64(stride)
			*out = isa.Inst{PC: pcs.next(), Class: isa.ClassLoad, Dest: 1,
				Src1: isa.InvalidReg, Src2: isa.InvalidReg, Addr: addr}
			return
		}
		*out = isa.Inst{PC: pcs.next(), Class: isa.ClassFP, Dest: 1, Src1: 1, Src2: isa.InvalidReg}
	}
}

// TestICountPriorityFavoursLowOccupancy: when the clogging thread's
// waiting work sits in its own queue, the lean thread (low icount) must
// receive far more fetch bandwidth.
func TestICountPriorityFavoursLowOccupancy(t *testing.T) {
	h := newHarness(t, 2, policy.NewICOUNT(), missyFPSource(1<<16), aluSource())
	h.warm(t, 6000)
	h.run(t, 8000)
	ti := h.core.Threads()
	if ti[1].Fetched < ti[0].Fetched*2 {
		t.Fatalf("lean thread fetched %d vs clogging thread %d; ICOUNT priority too weak",
			ti[1].Fetched, ti[0].Fetched)
	}
}

// TestPolicyStallGatesFetchOnly: a policy-stalled thread stops fetching
// but keeps executing and committing what it already has (the Preventive
// State semantics MFLUSH relies on).
func TestPolicyStallGatesFetchOnly(t *testing.T) {
	cfg := config.Default(1)
	h := newHarness(t, 2, policy.NewStall(cfg.Core.ThreadsPerCore, 25),
		missyLoadSource(1<<16), aluSource())
	h.warm(t, 6000)

	before := h.core.Threads()[0]
	h.run(t, 4000)
	after := h.core.Threads()[0]
	if h.core.Stats().Get("policy.stall_cycles") == 0 {
		t.Fatal("stall policy never engaged")
	}
	if after.Committed <= before.Committed {
		t.Fatal("stalled thread stopped committing entirely; stall must not squash")
	}
}

// TestCommitStoreTraffic: committed stores that miss the L1D generate
// shared-L2 traffic, and store hits do not.
func TestCommitStoreTraffic(t *testing.T) {
	pcs := &loopPC{base: 0x1000, span: 128}
	i := 0
	src := funcSource(func(out *isa.Inst) {
		i++
		if i%4 == 0 {
			// Stores marching through a large region: mostly misses.
			*out = isa.Inst{PC: pcs.next(), Class: isa.ClassStore,
				Dest: isa.InvalidReg, Src1: 1, Src2: isa.InvalidReg,
				Addr: 0x400000000 + uint64(i)*64}
			return
		}
		*out = isa.Inst{PC: pcs.next(), Class: isa.ClassInt,
			Dest: isa.Reg(1 + i%8), Src1: isa.InvalidReg, Src2: isa.InvalidReg}
	})
	h := newHarness(t, 1, nil, src)
	h.warm(t, 6000)
	h.run(t, 4000)
	st := h.core.Stats()
	if st.Get("l1d.store_misses") == 0 {
		t.Fatal("marching stores never missed")
	}
	if h.l2.Counters().Get("l2.requests") == 0 {
		t.Fatal("store misses generated no L2 traffic")
	}
}

// TestDTLBWalkDelaysLoad: a load to a fresh page pays the 300-cycle walk
// before its cache access.
func TestDTLBWalkDelaysLoad(t *testing.T) {
	pcs := &loopPC{base: 0x1000, span: 128}
	i := 0
	page := uint64(0)
	src := funcSource(func(out *isa.Inst) {
		i++
		if i%64 == 0 {
			page++
			*out = isa.Inst{PC: pcs.next(), Class: isa.ClassLoad,
				Dest: 1, Src1: isa.InvalidReg, Src2: isa.InvalidReg,
				Addr: 0x400000000 + page*8192}
			return
		}
		*out = isa.Inst{PC: pcs.next(), Class: isa.ClassInt,
			Dest: isa.Reg(2 + i%8), Src1: isa.InvalidReg, Src2: isa.InvalidReg}
	})
	h := newHarness(t, 1, nil, src)
	h.warm(t, 6000)
	h.run(t, 6000)
	if h.core.Stats().Get("dtlb.misses") == 0 {
		t.Fatal("page-marching loads never missed the DTLB")
	}
}

// TestMSHRMergeOnSameLine: two loads to one missing line share a single
// L2 request.
func TestMSHRMergeOnSameLine(t *testing.T) {
	pcs := &loopPC{base: 0x1000, span: 128}
	i := 0
	line := uint64(0)
	src := funcSource(func(out *isa.Inst) {
		i++
		switch i % 8 {
		case 0, 1:
			// Pairs of loads to the same fresh line, back to back.
			if i%8 == 0 {
				line++
			}
			*out = isa.Inst{PC: pcs.next(), Class: isa.ClassLoad,
				Dest: isa.Reg(1 + i%2), Src1: isa.InvalidReg, Src2: isa.InvalidReg,
				Addr: 0x400000000 + line*64}
		default:
			*out = isa.Inst{PC: pcs.next(), Class: isa.ClassInt,
				Dest: isa.Reg(3 + i%8), Src1: isa.InvalidReg, Src2: isa.InvalidReg}
		}
	})
	h := newHarness(t, 1, nil, src)
	h.warm(t, 6000)
	h.run(t, 6000)
	if h.core.Stats().Get("mshr.merges") == 0 {
		t.Fatal("same-line load pairs never merged in the MSHR")
	}
}

// TestFlushDirectiveIgnoredWhileFlushStalled: a second flush directive for
// an already flush-stalled thread must not double-squash.
func TestFlushDirectiveIgnoredWhileFlushStalled(t *testing.T) {
	cfg := config.Default(1)
	h := newHarness(t, 2, policy.NewFlushS(cfg.Core.ThreadsPerCore, 25),
		missyLoadSource(1<<16), aluSource())
	h.warm(t, 6000)
	h.run(t, 6000)
	flushes := h.core.Stats().Get("policy.flushes")
	resolved := h.core.Stats().Get("flush.resolved_hit") + h.core.Stats().Get("flush.resolved_miss")
	// Every flush eventually resolves exactly once; allow the last flush
	// to still be in flight.
	if flushes == 0 {
		t.Fatal("no flushes")
	}
	if resolved > flushes || flushes-resolved > 1 {
		t.Fatalf("flushes %d vs resolutions %d inconsistent", flushes, resolved)
	}
}

// TestWrongPathNeverCommits: no wrong-path instruction may retire.
// Committed counts must exactly equal correct-path fetches minus in-flight
// and squashed-for-replay work, which we approximate by checking commits
// do not exceed correct-path fetched.
func TestWrongPathNeverCommits(t *testing.T) {
	h := newHarness(t, 1, nil, newRandomSource(99, 1<<34))
	h.warm(t, 6000)
	h.run(t, 6000)
	ti := h.core.Threads()[0]
	if ti.Committed > ti.Fetched {
		t.Fatalf("committed %d exceeds fetched %d", ti.Committed, ti.Fetched)
	}
	if h.core.Energy().WrongPathTotal() == 0 {
		t.Fatal("random branches produced no wrong-path work")
	}
}
