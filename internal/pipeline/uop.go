// Package pipeline implements one out-of-order SMT core: an 11-stage
// fetch/decode/rename/queue/issue/execute/writeback/commit pipeline with
// shared issue queues and physical registers, per-thread reorder buffers,
// wrong-path execution, and the flush machinery the IFetch policies drive.
package pipeline

import (
	"repro/internal/energy"
	"repro/internal/isa"
	"repro/internal/policy"
)

// UOp is one in-flight dynamic instruction. UOps are recycled through a
// per-core free list: Gen is bumped every time a uop is released, so a
// uopRef captured while it was live can detect that it now names a
// different (or pooled) instruction.
type UOp struct {
	Inst isa.Inst
	// Tid is the core-local hardware context.
	Tid int
	// Seq is the per-thread fetch order; squashes are "younger than".
	Seq uint64
	// Gen is the recycling generation; see uopRef.
	Gen uint32
	// WrongPath marks instructions fetched past an unresolved
	// mispredicted branch: they execute but never commit.
	WrongPath bool

	// FetchedAt stamps fetch; RenameReadyAt is when the front-end pipe
	// delivers the instruction to rename.
	FetchedAt     uint64
	RenameReadyAt uint64

	// Src1Prod/Src2Prod reference the most recent producers of the
	// source registers at rename time (dead ref: value architectural).
	Src1Prod, Src2Prod uopRef
	// PrevProd restores the rename table if this uop is squashed.
	PrevProd uopRef

	// Resource ownership flags (see core.go squash/commit for the
	// conservation rules).
	HasPReg bool
	InQueue bool
	// InWheel marks residence in the execution-completion wheel; a
	// squashed uop still in the wheel is recycled at writeback, not at
	// squash time.
	InWheel bool
	// pooled marks membership in the free list (double-free guard).
	pooled bool
	// qIdx is the uop's slot in its issue queue while InQueue.
	qIdx int32

	Issued   bool
	IssuedAt uint64
	Executed bool
	DoneAt   uint64

	Squashed  bool
	Committed bool

	// Control-flow state.
	MispredictedBranch bool // resolution must squash and redirect
	RASTop, RASDepth   int  // RAS repair snapshot (control uops)

	// Memory state.
	TLBDone    bool
	TLBMissed  bool
	RetryAt    uint64
	WaitingMem bool
	// Load is the policy-visible descriptor, present only for
	// correct-path loads that missed the L1 data cache.
	Load *policy.LoadInfo
}

// uopRef is a generation-validated reference to a producer uop. The
// pipeline frees uops at commit while rename-table entries and dependant
// source references may still name them; the generation check turns such
// stale references into "architectural" (nil), which is exactly the old
// semantics — a committed producer was always Executed.
type uopRef struct {
	u   *UOp
	gen uint32
}

// mkRef captures a reference to a live uop.
func mkRef(u *UOp) uopRef { return uopRef{u: u, gen: u.Gen} }

// live returns the referenced uop if it has not been recycled since the
// reference was taken, else nil.
func (r uopRef) live() *UOp {
	if r.u != nil && r.u.Gen == r.gen {
		return r.u
	}
	return nil
}

// refersTo reports whether r still references the live uop u.
func (r uopRef) refersTo(u *UOp) bool { return r.u == u && r.gen == u.Gen }

// StageAt classifies the uop's pipeline position for energy accounting.
// frontStages is the configured front-end depth.
func (u *UOp) StageAt(now uint64, frontStages int) energy.Stage {
	switch {
	case u.Executed:
		return energy.StageRegWrite
	case u.Issued || u.WaitingMem:
		return energy.StageExecute
	case u.InQueue:
		return energy.StageQueue
	default:
		// In the front-end pipe: apportion fetch/decode/rename by age.
		age := int(now - u.FetchedAt)
		third := frontStages / 3
		if third < 1 {
			third = 1
		}
		switch {
		case age < third:
			return energy.StageFetch
		case age < 2*third:
			return energy.StageDecode
		default:
			return energy.StageRename
		}
	}
}

// ring is a fixed-capacity FIFO of uops supporting tail truncation, used
// for the per-thread ROB and front-end queue.
type ring struct {
	buf  []*UOp
	head int
	size int
}

func newRing(capacity int) *ring {
	if capacity <= 0 {
		panic("pipeline: ring capacity must be positive")
	}
	return &ring{buf: make([]*UOp, capacity)}
}

func (r *ring) len() int   { return r.size }
func (r *ring) full() bool { return r.size == len(r.buf) }

// wrap folds an index in [0, 2*len) back into range: the ring is hot
// enough that an integer divide per access is measurable, and all callers
// produce offsets below twice the capacity.
func (r *ring) wrap(i int) int {
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	return i
}

func (r *ring) push(u *UOp) {
	if r.full() {
		panic("pipeline: ring overflow")
	}
	r.buf[r.wrap(r.head+r.size)] = u
	r.size++
}

func (r *ring) front() *UOp {
	if r.size == 0 {
		return nil
	}
	return r.buf[r.head]
}

func (r *ring) popFront() *UOp {
	u := r.front()
	if u == nil {
		panic("pipeline: pop from empty ring")
	}
	r.buf[r.head] = nil
	r.head = r.wrap(r.head + 1)
	r.size--
	return u
}

func (r *ring) back() *UOp {
	if r.size == 0 {
		return nil
	}
	return r.buf[r.wrap(r.head+r.size-1)]
}

func (r *ring) popBack() *UOp {
	u := r.back()
	if u == nil {
		panic("pipeline: pop from empty ring")
	}
	r.buf[r.wrap(r.head+r.size-1)] = nil
	r.size--
	return u
}

// at returns the i-th oldest entry.
func (r *ring) at(i int) *UOp {
	if i < 0 || i >= r.size {
		panic("pipeline: ring index out of range")
	}
	return r.buf[r.wrap(r.head+i)]
}

// queue is a shared issue queue: a bounded collection preserving age
// order, with O(1) free-slot tracking and mid-queue removal by nil-ing.
// head is a lazily advanced index of the first possibly-live slot, so
// per-cycle walks skip the nil prefix left by issued/squashed uops.
type queue struct {
	slots []*UOp
	count int
	cap   int
	head  int
}

// liveFrom advances head past leading nils and returns the live window.
// Slots inside the window may still be nil (mid-queue removals).
func (q *queue) liveFrom() []*UOp {
	for q.head < len(q.slots) && q.slots[q.head] == nil {
		q.head++
	}
	return q.slots[q.head:]
}

func newQueue(capacity int) *queue {
	return &queue{slots: make([]*UOp, 0, capacity+8), cap: capacity}
}

func (q *queue) hasSpace() bool { return q.count < q.cap }
func (q *queue) len() int       { return q.count }

func (q *queue) insert(u *UOp) {
	if !q.hasSpace() {
		panic("pipeline: issue queue overflow")
	}
	// Compact at insert time only: remove() may run inside scan(), and
	// compacting there would corrupt the live iteration.
	if len(q.slots) >= 2*q.cap && q.count*2 <= len(q.slots) {
		live := q.slots[:0]
		for _, s := range q.slots {
			if s != nil {
				s.qIdx = int32(len(live))
				live = append(live, s)
			}
		}
		q.slots = live
		q.head = 0
	}
	u.qIdx = int32(len(q.slots))
	q.slots = append(q.slots, u)
	q.count++
	u.InQueue = true
}

// remove drops u from the queue (issue or squash) in O(1) via the slot
// index recorded at insert.
func (q *queue) remove(u *UOp) {
	i := int(u.qIdx)
	if !u.InQueue || i < 0 || i >= len(q.slots) || q.slots[i] != u {
		panic("pipeline: removing uop not in queue")
	}
	q.slots[i] = nil
	q.count--
	u.InQueue = false
}

// scan calls f on each entry in age order until f returns false.
func (q *queue) scan(f func(u *UOp) bool) {
	for _, s := range q.slots {
		if s == nil {
			continue
		}
		if !f(s) {
			return
		}
	}
}
