package pipeline

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/policy"
	"repro/internal/trace"
)

// funcSource adapts a function to trace.Source.
type funcSource func(*isa.Inst)

func (f funcSource) Next(out *isa.Inst) { f(out) }

// harness wires one core to a private L2 system.
type harness struct {
	core *Core
	l2   *mem.L2System
	now  uint64
}

func newHarness(t *testing.T, threads int, pol policy.Policy, srcs ...trace.Source) *harness {
	t.Helper()
	cfg := config.Default(1)
	cfg.Core.ThreadsPerCore = threads
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	l2 := mem.NewL2System(cfg)
	bases := make([]uint64, threads)
	for i := range bases {
		bases[i] = uint64(i+1) << 34
	}
	if pol == nil {
		pol = policy.NewICOUNT()
	}
	c := New(0, &cfg, pol, l2, srcs, bases)
	return &harness{core: c, l2: l2}
}

func (h *harness) run(t *testing.T, cycles int) {
	t.Helper()
	for i := 0; i < cycles; i++ {
		for _, r := range h.l2.Tick(h.now) {
			h.core.HandleResponse(r, h.now)
		}
		for _, r := range h.l2.DrainMissDetected() {
			h.core.HandleL2MissDetected(r, h.now)
		}
		h.core.Tick(h.now)
		h.now++
	}
	if err := h.core.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// warm runs cold-start cycles (initial TLB walks, icache fills) and then
// resets measurement so tests observe steady state.
func (h *harness) warm(t *testing.T, cycles int) {
	t.Helper()
	h.run(t, cycles)
	h.core.ResetMeasurement()
}

// loopPC hands out PCs looping through a small code region, giving the
// instruction stream realistic icache/ITLB locality.
type loopPC struct {
	i    int
	base uint64
	span int // instructions in the loop
}

func (s *loopPC) next() uint64 {
	s.i++
	return s.base + uint64(s.i%s.span)*4
}

func TestIndependentALUThroughput(t *testing.T) {
	// Independent single-cycle int ops: throughput must be bound by the
	// 4 integer units, and get close to that bound.
	pcs := &loopPC{base: 0x1000, span: 128}
	i := 0
	src := funcSource(func(out *isa.Inst) {
		i++
		*out = isa.Inst{PC: pcs.next(), Class: isa.ClassInt,
			Dest: isa.Reg(1 + i%8), Src1: isa.InvalidReg, Src2: isa.InvalidReg}
	})
	h := newHarness(t, 1, nil, src)
	h.warm(t, 6000)
	h.run(t, 2000)
	committed := h.core.Committed()[0]
	ipc := float64(committed) / 2000
	if ipc > 4.0 {
		t.Fatalf("IPC %.2f exceeds the 4 int units", ipc)
	}
	if ipc < 3.0 {
		t.Fatalf("IPC %.2f too low for independent ALU stream", ipc)
	}
}

func TestDependencyChainSerialises(t *testing.T) {
	// r1 <- r1 chain: one instruction per cycle at best.
	pcs := &loopPC{base: 0x1000, span: 128}
	src := funcSource(func(out *isa.Inst) {
		*out = isa.Inst{PC: pcs.next(), Class: isa.ClassInt, Dest: 1, Src1: 1, Src2: isa.InvalidReg}
	})
	h := newHarness(t, 1, nil, src)
	h.warm(t, 6000)
	h.run(t, 2000)
	ipc := float64(h.core.Committed()[0]) / 2000
	if ipc > 1.05 {
		t.Fatalf("dependent chain IPC %.2f exceeds 1", ipc)
	}
	if ipc < 0.8 {
		t.Fatalf("dependent chain IPC %.2f too low", ipc)
	}
}

func TestLoadHitThroughputBoundByLSUnits(t *testing.T) {
	// Independent loads to one hot line: bounded by the 2 ld/st units.
	pcs := &loopPC{base: 0x1000, span: 128}
	i := 0
	src := funcSource(func(out *isa.Inst) {
		i++
		*out = isa.Inst{PC: pcs.next(), Class: isa.ClassLoad,
			Dest: isa.Reg(1 + i%8), Src1: isa.InvalidReg, Src2: isa.InvalidReg,
			Addr: 0x400000000}
	})
	h := newHarness(t, 1, nil, src)
	h.warm(t, 6000)
	h.run(t, 3000)
	ipc := float64(h.core.Committed()[0]) / 3000
	if ipc > 2.0 {
		t.Fatalf("load IPC %.2f exceeds the 2 ld/st units", ipc)
	}
	if ipc < 1.5 {
		t.Fatalf("load IPC %.2f too low for L1-hitting loads", ipc)
	}
	// After the first miss the line is resident: essentially all hits.
	if h.core.Stats().Get("l1d.load_hits") == 0 {
		t.Fatal("no L1 load hits recorded")
	}
}

func TestWellPredictedBranchesCommit(t *testing.T) {
	// An always-taken loop branch: the perceptron learns it, so
	// throughput stays healthy and mispredicts are rare after warmup.
	pcs := 0
	src := funcSource(func(out *isa.Inst) {
		pcs++
		if pcs%5 == 0 {
			*out = isa.Inst{PC: 0x2000, Class: isa.ClassBranch, Dest: isa.InvalidReg,
				Src1: isa.InvalidReg, Src2: isa.InvalidReg, Taken: true, Target: 0x1000}
			return
		}
		*out = isa.Inst{PC: 0x1000 + uint64(pcs%5)*4, Class: isa.ClassInt,
			Dest: isa.Reg(1 + pcs%8), Src1: isa.InvalidReg, Src2: isa.InvalidReg}
	})
	h := newHarness(t, 1, nil, src)
	h.run(t, 3000)
	st := h.core.Stats()
	if st.Get("branches") == 0 {
		t.Fatal("no branches resolved")
	}
	mispredictRate := float64(st.Get("mispredicts")) / float64(st.Get("branches"))
	if mispredictRate > 0.10 {
		t.Fatalf("mispredict rate %.3f too high for a fixed taken branch", mispredictRate)
	}
	if h.core.Committed()[0] == 0 {
		t.Fatal("nothing committed")
	}
}

func TestMispredictsSquashWrongPath(t *testing.T) {
	// A pseudo-random 50/50 branch defeats the predictor; wrong-path
	// work must be squashed, never committed, and progress must
	// continue.
	pcs := 0
	rngState := uint64(0x12345)
	src := funcSource(func(out *isa.Inst) {
		pcs++
		if pcs%4 == 0 {
			rngState ^= rngState << 13
			rngState ^= rngState >> 7
			rngState ^= rngState << 17
			taken := rngState&1 == 1
			*out = isa.Inst{PC: 0x2000 + uint64(pcs%8)*16, Class: isa.ClassBranch,
				Dest: isa.InvalidReg, Src1: isa.InvalidReg, Src2: isa.InvalidReg,
				Taken: taken, Target: 0x2000 + uint64((pcs+1)%8)*16}
			return
		}
		*out = isa.Inst{PC: 0x1000 + uint64(pcs)*4%0x800, Class: isa.ClassInt,
			Dest: isa.Reg(1 + pcs%8), Src1: isa.InvalidReg, Src2: isa.InvalidReg}
	})
	h := newHarness(t, 1, nil, src)
	h.warm(t, 6000)
	h.run(t, 4000)
	st := h.core.Stats()
	if st.Get("mispredicts") == 0 {
		t.Fatal("alternating branch never mispredicted")
	}
	if h.core.Energy().WrongPathTotal() == 0 {
		t.Fatal("mispredicts squashed no wrong-path work")
	}
	if h.core.Committed()[0] == 0 {
		t.Fatal("no forward progress despite mispredicts")
	}
	// FLUSH waste must be zero under ICOUNT: no flush mechanism ran.
	if h.core.Energy().Wasted() != 0 {
		t.Fatalf("ICOUNT accrued FLUSH waste %v", h.core.Energy().Wasted())
	}
}

// missyLoadSource emits loads that miss L2 (cold, distinct lines) each
// followed by dependent consumers — the resource-clogging pattern.
func missyLoadSource(stride int) trace.Source {
	pcs := &loopPC{base: 0x1000, span: 128}
	i := 0
	addr := uint64(0x400000000)
	return funcSource(func(out *isa.Inst) {
		i++
		switch {
		case i%16 == 1:
			addr += uint64(stride)
			*out = isa.Inst{PC: pcs.next(), Class: isa.ClassLoad, Dest: 1,
				Src1: isa.InvalidReg, Src2: isa.InvalidReg, Addr: addr}
		default:
			// Dependent chain on the load result: the classic pattern
			// that parks unissuable work in the shared queues.
			*out = isa.Inst{PC: pcs.next(), Class: isa.ClassInt, Dest: 1, Src1: 1, Src2: isa.InvalidReg}
		}
	})
}

// aluSource emits independent integer work.
func aluSource() trace.Source {
	pcs := &loopPC{base: 0x800000, span: 128}
	i := 0
	return funcSource(func(out *isa.Inst) {
		i++
		*out = isa.Inst{PC: pcs.next(), Class: isa.ClassInt,
			Dest: isa.Reg(1 + i%8), Src1: isa.InvalidReg, Src2: isa.InvalidReg}
	})
}

func TestFlushProtectsCoScheduledThread(t *testing.T) {
	// Thread 0 misses L2 constantly with dependent chains (the clog
	// pattern); thread 1 is pure ILP. FLUSH-S30 must give thread 1
	// clearly more throughput than ICOUNT does.
	run := func(pol policy.Policy) uint64 {
		h := newHarness(t, 2, pol, missyLoadSource(1<<16), aluSource())
		h.warm(t, 6000)
		h.run(t, 8000)
		return h.core.Committed()[1] // the ILP thread
	}
	cfg := config.Default(1)
	icount := run(policy.NewICOUNT())
	flush := run(policy.NewFlushS(cfg.Core.ThreadsPerCore, 30))
	if flush <= icount {
		t.Fatalf("FLUSH-S30 ILP-thread commits %d <= ICOUNT %d; flush gives no protection",
			flush, icount)
	}
	gain := float64(flush)/float64(icount) - 1
	if gain < 0.10 {
		t.Fatalf("FLUSH protection gain %.2f%% too small", gain*100)
	}
}

func TestFlushAccountsWastedEnergy(t *testing.T) {
	cfg := config.Default(1)
	h := newHarness(t, 2, policy.NewFlushS(cfg.Core.ThreadsPerCore, 30),
		missyLoadSource(1<<16), aluSource())
	h.warm(t, 6000)
	h.run(t, 8000)
	if h.core.Stats().Get("policy.flushes") == 0 {
		t.Fatal("no flushes triggered by the missy thread")
	}
	if h.core.Energy().Wasted() <= 0 {
		t.Fatal("flushes wasted no energy")
	}
	if h.core.Energy().FlushedTotal() == 0 {
		t.Fatal("no flushed instructions recorded")
	}
}

func TestFlushedThreadReplaysAndProgresses(t *testing.T) {
	// Even the flushed thread must keep making forward progress: its
	// squashed instructions are re-fetched after each resolution.
	cfg := config.Default(1)
	h := newHarness(t, 2, policy.NewFlushS(cfg.Core.ThreadsPerCore, 30),
		missyLoadSource(1<<16), aluSource())
	h.warm(t, 6000)
	h.run(t, 12000)
	if got := h.core.Committed()[0]; got == 0 {
		t.Fatal("flushed thread starved completely")
	}
}

func TestStallPolicyStallsWithoutSquashing(t *testing.T) {
	cfg := config.Default(1)
	h := newHarness(t, 2, policy.NewStall(cfg.Core.ThreadsPerCore, 30),
		missyLoadSource(1<<16), aluSource())
	h.warm(t, 6000)
	h.run(t, 8000)
	if h.core.Stats().Get("policy.stall_cycles") == 0 {
		t.Fatal("stall policy never stalled")
	}
	if h.core.Stats().Get("policy.flushes") != 0 {
		t.Fatal("stall policy flushed")
	}
	if h.core.Energy().Wasted() != 0 {
		t.Fatal("stall policy wasted flush energy")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (uint64, uint64, string) {
		cfg := config.Default(1)
		h := newHarness(t, 2, policy.NewFlushS(cfg.Core.ThreadsPerCore, 50),
			missyLoadSource(1<<14), aluSource())
		h.run(t, 5000)
		c := h.core.Committed()
		return c[0], c[1], h.core.Stats().String()
	}
	a0, a1, as := run()
	b0, b1, bs := run()
	if a0 != b0 || a1 != b1 || as != bs {
		t.Fatalf("nondeterministic runs: (%d,%d) vs (%d,%d)\n%s\n%s", a0, a1, b0, b1, as, bs)
	}
}

func TestUOpStageClassification(t *testing.T) {
	u := &UOp{FetchedAt: 100}
	if got := u.StageAt(100, 6); got.String() != "Fetch" {
		t.Fatalf("age 0 = %v", got)
	}
	if got := u.StageAt(103, 6); got.String() != "Decode" {
		t.Fatalf("age 3 = %v", got)
	}
	if got := u.StageAt(105, 6); got.String() != "Rename" {
		t.Fatalf("age 5 = %v", got)
	}
	u.InQueue = true
	if got := u.StageAt(110, 6); got.String() != "Queue" {
		t.Fatalf("queued = %v", got)
	}
	u.Issued = true
	if got := u.StageAt(110, 6); got.String() != "Execute" {
		t.Fatalf("issued = %v", got)
	}
	u.Executed = true
	if got := u.StageAt(110, 6); got.String() != "Reg.Write" {
		t.Fatalf("executed = %v", got)
	}
}

func TestRingBasics(t *testing.T) {
	r := newRing(4)
	u1, u2, u3 := &UOp{Seq: 1}, &UOp{Seq: 2}, &UOp{Seq: 3}
	r.push(u1)
	r.push(u2)
	r.push(u3)
	if r.len() != 3 || r.front() != u1 || r.back() != u3 {
		t.Fatal("ring order broken")
	}
	if r.at(1) != u2 {
		t.Fatal("ring at() broken")
	}
	if got := r.popBack(); got != u3 {
		t.Fatal("popBack wrong")
	}
	if got := r.popFront(); got != u1 {
		t.Fatal("popFront wrong")
	}
	if r.len() != 1 {
		t.Fatal("len wrong after pops")
	}
	r.push(&UOp{Seq: 4})
	r.push(&UOp{Seq: 5})
	r.push(&UOp{Seq: 6})
	if !r.full() {
		t.Fatal("ring should be full")
	}
}

func TestQueueRemoveCompacts(t *testing.T) {
	q := newQueue(4)
	var uops []*UOp
	for i := 0; i < 4; i++ {
		u := &UOp{Seq: uint64(i)}
		uops = append(uops, u)
		q.insert(u)
	}
	if q.hasSpace() {
		t.Fatal("queue should be full")
	}
	q.remove(uops[1])
	q.remove(uops[2])
	if q.len() != 2 {
		t.Fatalf("len = %d", q.len())
	}
	// Age order preserved across removals and reinsertions.
	q.insert(&UOp{Seq: 10})
	var seqs []uint64
	q.scan(func(u *UOp) bool {
		seqs = append(seqs, u.Seq)
		return true
	})
	if len(seqs) != 3 || seqs[0] != 0 || seqs[1] != 3 || seqs[2] != 10 {
		t.Fatalf("scan order %v", seqs)
	}
}
