package pipeline

import "testing"

// TestUOpPoolGeneration checks the recycling invariants the whole
// rename/wakeup machinery rests on: a freed uop's generation bump kills
// stale references, and reuse hands back a fully reset uop.
func TestUOpPoolGeneration(t *testing.T) {
	c := &Core{threads: []*thread{{}}}

	u := c.allocUOp()
	u.Tid = 0
	u.Seq = 42
	u.Executed = true
	ref := mkRef(u)
	if ref.live() != u {
		t.Fatal("fresh reference should be live")
	}
	if !ref.refersTo(u) {
		t.Fatal("refersTo should match the live uop")
	}

	c.freeUOp(u)
	if ref.live() != nil {
		t.Fatal("reference survived recycling")
	}
	if ref.refersTo(u) {
		t.Fatal("refersTo matched a recycled uop")
	}

	// Reuse returns the same object, reset, with the bumped generation.
	u2 := c.allocUOp()
	if u2 != u {
		t.Fatal("free list did not recycle the uop")
	}
	if u2.Seq != 0 || u2.Executed || u2.Tid != 0 {
		t.Fatalf("recycled uop not reset: %+v", u2)
	}
	if ref.live() != nil {
		t.Fatal("old reference resurrected by reuse")
	}
	if mkRef(u2).live() != u2 {
		t.Fatal("new reference to the recycled uop should be live")
	}
}

func TestUOpDoubleFreePanics(t *testing.T) {
	c := &Core{threads: []*thread{{}}}
	u := c.allocUOp()
	c.freeUOp(u)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	c.freeUOp(u)
}

// TestQueueRemoveByIndex covers the O(1) slot-index removal including
// after an insert-time compaction reindexes survivors.
func TestQueueRemoveByIndex(t *testing.T) {
	q := newQueue(4)
	var uops []*UOp
	for i := 0; i < 4; i++ {
		u := &UOp{Seq: uint64(i)}
		q.insert(u)
		uops = append(uops, u)
	}
	q.remove(uops[1])
	q.remove(uops[3])
	if q.len() != 2 {
		t.Fatalf("len = %d, want 2", q.len())
	}
	// Force compaction: keep inserting while removing the oldest live
	// entry, so the slot array grows past 2*cap and gets rebuilt.
	for i := 4; i < 12; i++ {
		q.insert(&UOp{Seq: uint64(i)})
		var oldest *UOp
		q.scan(func(u *UOp) bool { oldest = u; return false })
		q.remove(oldest)
	}
	// Every still-resident uop must be removable (indices valid).
	var live []*UOp
	q.scan(func(u *UOp) bool { live = append(live, u); return true })
	for _, u := range live {
		q.remove(u)
	}
	if q.len() != 0 {
		t.Fatalf("len = %d after removing all, want 0", q.len())
	}
}

// TestRingWrapNonPowerOfTwo exercises the branch-based index wrap with a
// capacity that is not a power of two.
func TestRingWrapNonPowerOfTwo(t *testing.T) {
	r := newRing(3)
	seq := uint64(0)
	push := func() {
		seq++
		r.push(&UOp{Seq: seq})
	}
	push()
	push()
	push()
	if got := r.popFront().Seq; got != 1 {
		t.Fatalf("popFront = %d, want 1", got)
	}
	push() // wraps
	if got := r.back().Seq; got != 4 {
		t.Fatalf("back = %d, want 4", got)
	}
	if got := r.popBack().Seq; got != 4 {
		t.Fatalf("popBack = %d, want 4", got)
	}
	if got := r.at(1).Seq; got != 3 {
		t.Fatalf("at(1) = %d, want 3", got)
	}
}
