// Package bus models the shared on-chip interconnect between the per-core
// L1 caches and the shared L2 cache banks.
//
// The bus is a split-transaction FIFO-arbitrated channel: each cycle it can
// grant a bounded number of transfers; granted transfers arrive at the far
// side after a fixed transit delay. Requests that cannot be granted queue,
// which is one of the two sources of the L2 hit-latency variability the
// paper analyses (the other being L2 bank port conflicts).
package bus

// Bus is a one-direction channel carrying payloads of type T. Use two
// instances for a request/response pair. The zero value is not usable;
// construct with New.
type Bus[T any] struct {
	delay    int
	perCycle int
	queue    fifo[item[T]]
	inFlight fifo[item[T]]
	// out is the delivery buffer reused across Ticks.
	out []T

	transfers uint64
	waitSum   uint64
	maxQueue  int
}

type item[T any] struct {
	payload  T
	enqueued uint64
	deliver  uint64
}

// New returns a bus with the given transit delay in cycles and the maximum
// number of transfers granted per cycle.
func New[T any](delay, perCycle int) *Bus[T] {
	if delay < 1 || perCycle < 1 {
		panic("bus: delay and perCycle must be positive")
	}
	return &Bus[T]{delay: delay, perCycle: perCycle}
}

// Push enqueues a transfer at cycle now. It never fails: the queue is
// unbounded, with back-pressure expressed through delivery latency (the
// requesters' MSHRs bound the number of outstanding requests in practice).
func (b *Bus[T]) Push(now uint64, payload T) {
	b.queue.push(item[T]{payload: payload, enqueued: now})
	if n := b.queue.len(); n > b.maxQueue {
		b.maxQueue = n
	}
}

// Tick advances the bus to cycle now: it grants up to perCycle queued
// transfers and returns every payload whose transit completes at now.
// Call exactly once per cycle with a monotonically increasing now. The
// returned slice is reused by the next Tick: consume it before then.
func (b *Bus[T]) Tick(now uint64) []T {
	for granted := 0; granted < b.perCycle && b.queue.len() > 0; granted++ {
		it := b.queue.pop()
		it.deliver = now + uint64(b.delay)
		b.waitSum += now - it.enqueued
		b.transfers++
		b.inFlight.push(it)
	}
	out := b.out[:0]
	for b.inFlight.len() > 0 && b.inFlight.peek().deliver <= now {
		out = append(out, b.inFlight.pop().payload)
	}
	b.out = out
	return out
}

// Pending returns the number of transfers queued or in flight.
func (b *Bus[T]) Pending() int { return b.queue.len() + b.inFlight.len() }

// Stats returns the number of granted transfers, the average grant queue
// wait in cycles, and the maximum queue depth observed.
func (b *Bus[T]) Stats() (transfers uint64, avgWait float64, maxQueue int) {
	if b.transfers == 0 {
		return 0, 0, b.maxQueue
	}
	return b.transfers, float64(b.waitSum) / float64(b.transfers), b.maxQueue
}

// fifo is a slice-backed queue with amortised O(1) operations.
type fifo[T any] struct {
	buf  []T
	head int
}

func (f *fifo[T]) len() int { return len(f.buf) - f.head }

func (f *fifo[T]) push(v T) { f.buf = append(f.buf, v) }

func (f *fifo[T]) peek() T { return f.buf[f.head] }

func (f *fifo[T]) pop() T {
	v := f.buf[f.head]
	var zero T
	f.buf[f.head] = zero
	f.head++
	// Compact once the dead prefix dominates, to bound memory.
	if f.head > 64 && f.head*2 > len(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		f.buf = f.buf[:n]
		f.head = 0
	}
	return v
}
