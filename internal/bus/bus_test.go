package bus

import (
	"testing"
	"testing/quick"
)

func TestDeliveryAfterDelay(t *testing.T) {
	b := New[int](3, 1)
	b.Push(10, 42)
	for now := uint64(10); now < 13; now++ {
		if got := b.Tick(now); len(got) != 0 {
			t.Fatalf("early delivery at %d: %v", now, got)
		}
	}
	got := b.Tick(13)
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("delivery at 13 = %v", got)
	}
}

func TestFIFOOrder(t *testing.T) {
	b := New[int](1, 1)
	b.Push(0, 1)
	b.Push(0, 2)
	b.Push(0, 3)
	var got []int
	for now := uint64(0); now < 10; now++ {
		got = append(got, b.Tick(now)...)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("out-of-order delivery: %v", got)
	}
}

func TestArbitrationThroughputBound(t *testing.T) {
	// With perCycle=2, 10 transfers need 5 grant cycles; the last
	// arrives at grant cycle + delay.
	b := New[int](2, 2)
	for i := 0; i < 10; i++ {
		b.Push(0, i)
	}
	delivered := 0
	var lastCycle uint64
	for now := uint64(0); now < 20; now++ {
		for range b.Tick(now) {
			delivered++
			lastCycle = now
		}
	}
	if delivered != 10 {
		t.Fatalf("delivered %d of 10", delivered)
	}
	// Grants at cycles 0..4, so the last delivery is at 4+2=6.
	if lastCycle != 6 {
		t.Fatalf("last delivery at %d, want 6", lastCycle)
	}
}

func TestQueueWaitAccounting(t *testing.T) {
	b := New[int](1, 1)
	b.Push(0, 1)
	b.Push(0, 2) // waits one cycle for the grant
	for now := uint64(0); now < 5; now++ {
		b.Tick(now)
	}
	n, avg, maxQ := b.Stats()
	if n != 2 {
		t.Fatalf("transfers = %d", n)
	}
	if avg != 0.5 {
		t.Fatalf("avg wait = %v, want 0.5", avg)
	}
	if maxQ != 2 {
		t.Fatalf("max queue = %d, want 2", maxQ)
	}
}

func TestPending(t *testing.T) {
	b := New[int](5, 1)
	b.Push(0, 1)
	b.Push(0, 2)
	if b.Pending() != 2 {
		t.Fatalf("pending = %d", b.Pending())
	}
	b.Tick(0)
	if b.Pending() != 2 { // one queued, one in flight
		t.Fatalf("pending after tick = %d", b.Pending())
	}
	for now := uint64(1); now <= 6; now++ {
		b.Tick(now)
	}
	if b.Pending() != 0 {
		t.Fatalf("pending after drain = %d", b.Pending())
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New[int](0, 1) },
		func() { New[int](1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestConservationProperty(t *testing.T) {
	// Property: every pushed payload is delivered exactly once, in push
	// order, regardless of the push schedule.
	f := func(gaps []uint8) bool {
		b := New[int](2, 1)
		now := uint64(0)
		want := 0
		pushed := 0
		var got []int
		for _, g := range gaps {
			for i := uint8(0); i < g%3; i++ {
				b.Push(now, pushed)
				pushed++
			}
			got = append(got, b.Tick(now)...)
			now++
		}
		for b.Pending() > 0 {
			got = append(got, b.Tick(now)...)
			now++
		}
		if len(got) != pushed {
			return false
		}
		for _, v := range got {
			if v != want {
				return false
			}
			want++
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOCompaction(t *testing.T) {
	var f fifo[int]
	for i := 0; i < 10000; i++ {
		f.push(i)
		if got := f.pop(); got != i {
			t.Fatalf("pop = %d, want %d", got, i)
		}
	}
	if cap(f.buf) > 4096 {
		t.Fatalf("fifo buffer grew unboundedly: cap=%d", cap(f.buf))
	}
}

func BenchmarkBusTick(b *testing.B) {
	bs := New[int](2, 1)
	for i := 0; i < b.N; i++ {
		now := uint64(i)
		if i%3 == 0 {
			bs.Push(now, i)
		}
		bs.Tick(now)
	}
}
