package server

import (
	"sync"

	"repro/internal/sim"
)

// sampleHub fans live interval sample points from running simulations
// out to the campaigns that contain the sampled job. Publishing is keyed
// by job key — the same content hash the cache single-flights on — so
// when several campaigns wait on one in-flight job, every one of them
// sees its live samples, not just the leader's.
type sampleHub struct {
	mu   sync.Mutex
	subs map[string]map[*sampleSub]struct{} // job key -> subscribers
}

// sampleSub is one campaign's subscription across all its sampled jobs.
type sampleSub struct {
	fn func(key string, p sim.SamplePoint)
}

func newSampleHub() *sampleHub {
	return &sampleHub{subs: make(map[string]map[*sampleSub]struct{})}
}

// subscribe registers fn for every listed job key and returns the
// cancel that removes the subscription. fn is called on the simulating
// goroutine; keep it non-blocking (the registry's broadcast already is).
func (h *sampleHub) subscribe(keys []string, fn func(string, sim.SamplePoint)) (cancel func()) {
	if len(keys) == 0 {
		return func() {}
	}
	sub := &sampleSub{fn: fn}
	h.mu.Lock()
	for _, k := range keys {
		set := h.subs[k]
		if set == nil {
			set = make(map[*sampleSub]struct{})
			h.subs[k] = set
		}
		set[sub] = struct{}{}
	}
	h.mu.Unlock()
	return func() {
		h.mu.Lock()
		for _, k := range keys {
			if set := h.subs[k]; set != nil {
				delete(set, sub)
				if len(set) == 0 {
					delete(h.subs, k)
				}
			}
		}
		h.mu.Unlock()
	}
}

// publish delivers one live sample point to every campaign subscribed
// to the job key. No subscribers is the common case for cache-warm
// daemons and costs one map lookup.
func (h *sampleHub) publish(key string, p sim.SamplePoint) {
	h.mu.Lock()
	var fns []func(string, sim.SamplePoint)
	for sub := range h.subs[key] {
		fns = append(fns, sub.fn)
	}
	h.mu.Unlock()
	for _, fn := range fns {
		fn(key, p)
	}
}
