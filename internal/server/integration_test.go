package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/simtest"
)

// fetch GETs a path from a live test server and returns the body.
func fetch(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func postSpec(t *testing.T, ts *httptest.Server, spec string) submitResponse {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	return sub
}

// waitDone polls a campaign's status URL until it reports done, failing
// fast — with the what prefix — if it leaves the running state.
func waitDone(t *testing.T, ts *httptest.Server, statusURL string, timeout time.Duration, what string) {
	t.Helper()
	simtest.WaitFor(t, timeout, func() bool {
		_, body := fetch(t, ts, statusURL)
		var st Status
		mustUnmarshal(t, body, &st)
		if st.State == StateDone {
			return true
		}
		if st.State != StateRunning {
			t.Fatalf("%s: campaign state %q", what, st.State)
		}
		return false
	}, "%s: campaign never reached done", what)
}

// TestConcurrentIdenticalCampaignsSimulateOnce is the daemon's core
// promise: two clients submitting the same campaign at the same time
// cost one simulation per job, not two, and both receive byte-identical
// aggregates.
func TestConcurrentIdenticalCampaignsSimulateOnce(t *testing.T) {
	dir := t.TempDir()
	store, err := campaign.OpenStore(filepath.Join(dir, "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	r := simtest.New()
	r.Gate = make(chan struct{})
	s := New(Config{Store: store, Runner: r.Run, Workers: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Submit the identical spec twice while every simulation is gated, so
	// both campaigns are provably in flight together.
	subA := postSpec(t, ts, specBody)
	subB := postSpec(t, ts, specBody)
	if subA.ID == subB.ID {
		t.Fatalf("campaigns share ID %s", subA.ID)
	}
	for r.Total() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(r.Gate)

	for _, sub := range []submitResponse{subA, subB} {
		waitDone(t, ts, sub.StatusURL, 10*time.Second, "campaign "+sub.ID)
	}

	// Exactly one simulator invocation per distinct job.
	if got := r.Max(); got != 1 {
		t.Fatalf("a job simulated %d times across concurrent campaigns, want 1", got)
	}
	if r.Total() != 4 {
		t.Fatalf("%d simulations for 4 distinct jobs", r.Total())
	}

	// Byte-identical aggregates, in every format.
	for _, format := range []string{"json", "csv", "table", "rows"} {
		_, bodyA := fetch(t, ts, subA.ResultURL+"?format="+format)
		_, bodyB := fetch(t, ts, subB.ResultURL+"?format="+format)
		if string(bodyA) != string(bodyB) {
			t.Fatalf("%s aggregates differ:\n%s\nvs\n%s", format, bodyA, bodyB)
		}
		if len(bodyA) == 0 {
			t.Fatalf("empty %s aggregate", format)
		}
	}
}

// TestCacheHitAfterRestart: a new daemon process over the same store
// serves a previously computed campaign without one simulator call.
func TestCacheHitAfterRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	store, err := campaign.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	r1 := simtest.New()
	s1 := New(Config{Store: store, Runner: r1.Run})
	id := submit(t, s1, specBody)
	if state := waitState(t, s1, id); state != StateDone {
		t.Fatalf("first run state %q", state)
	}
	req := httptest.NewRequest("GET", "/v1/campaigns/"+id+"/result?format=csv", nil)
	rec := httptest.NewRecorder()
	s1.ServeHTTP(rec, req)
	firstCSV := rec.Body.String()
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	store.Close()

	// "Restart": fresh Server, fresh runner, reopened store.
	store2, err := campaign.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	r2 := simtest.New()
	s2 := New(Config{Store: store2, Runner: r2.Run})
	id2 := submit(t, s2, specBody)
	if state := waitState(t, s2, id2); state != StateDone {
		t.Fatalf("restarted run state %q", state)
	}
	if r2.Total() != 0 {
		t.Fatalf("restart re-simulated %d jobs, want 0", r2.Total())
	}
	_, st := do(t, s2, "GET", "/v1/campaigns/"+id2, "")
	if st["cached"].(float64) != 4 {
		t.Fatalf("restarted campaign cached = %v, want 4", st["cached"])
	}

	req = httptest.NewRequest("GET", "/v1/campaigns/"+id2+"/result?format=csv", nil)
	rec = httptest.NewRecorder()
	s2.ServeHTTP(rec, req)
	if rec.Body.String() != firstCSV {
		t.Fatalf("aggregate changed across restart:\n%s\nvs\n%s", rec.Body.String(), firstCSV)
	}
}

// TestDrainFinishesInFlightWithoutCorruptingStore: SIGTERM-style drain
// lets in-flight simulations complete and persist; the store reopens
// cleanly with exactly those records.
func TestDrainFinishesInFlightWithoutCorruptingStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	store, err := campaign.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	r := simtest.New()
	r.Gate = make(chan struct{})
	s := New(Config{Store: store, Runner: r.Run, Workers: 1})
	id := submit(t, s, specBody)
	for r.Total() == 0 {
		time.Sleep(time.Millisecond)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var drainErr error
	go func() {
		defer wg.Done()
		drainErr = s.Drain(context.Background())
	}()
	// The drain must not complete while a simulation is in flight.
	time.Sleep(10 * time.Millisecond)
	close(r.Gate)
	wg.Wait()
	if drainErr != nil {
		t.Fatal(drainErr)
	}
	if state := waitState(t, s, id); state != StateCanceled {
		t.Fatalf("drained campaign state %q", state)
	}
	if r.Total() != 1 {
		t.Fatalf("%d jobs ran under drain with 1 worker, want 1", r.Total())
	}
	store.Close()

	// The store is intact and holds exactly the in-flight job's record.
	reopened, err := campaign.OpenStore(path)
	if err != nil {
		t.Fatalf("store corrupted by drain: %v", err)
	}
	defer reopened.Close()
	if reopened.Len() != 1 {
		t.Fatalf("store holds %d records after drain, want 1", reopened.Len())
	}
}

// TestDrainTimeout: a drain bounded by an already-expired context
// reports the deadline instead of hanging on a stuck simulation.
func TestDrainTimeout(t *testing.T) {
	r := simtest.New()
	r.Gate = make(chan struct{})
	s := New(Config{Runner: r.Run, Workers: 1})
	submit(t, s, specBody)
	for r.Total() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain with stuck simulation returned nil")
	}
	close(r.Gate)
	// Let the campaign goroutine unwind before the test ends.
	s.Drain(context.Background())
}

// TestSSEStream reads the event stream end to end: status snapshot,
// one progress event per job, then the terminal event.
func TestSSEStream(t *testing.T) {
	r := simtest.New()
	s := New(Config{Runner: r.Run, Workers: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	sub := postSpec(t, ts, specBody)
	resp, err := ts.Client().Get(ts.URL + sub.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	type event struct {
		name string
		data map[string]any
	}
	var events []event
	sc := bufio.NewScanner(resp.Body)
	var cur event
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("bad event data %q: %v", line, err)
			}
		case line == "":
			events = append(events, cur)
			cur = event{}
		}
	}
	// The server closes the stream after the terminal event, ending Scan.
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	if events[0].name != "status" {
		t.Fatalf("first event %q, want status snapshot", events[0].name)
	}
	last := events[len(events)-1]
	if last.name != StateDone {
		t.Fatalf("terminal event %q, want %q", last.name, StateDone)
	}
	if last.data["completed"].(float64) != 4 {
		t.Fatalf("terminal totals = %v", last.data)
	}
	progress := 0
	for _, ev := range events {
		if ev.name == "progress" {
			progress++
			if ev.data["job"].(string) == "" {
				t.Fatalf("progress event without job: %v", ev.data)
			}
		}
	}
	// A subscriber attached at submit time sees every job exactly once
	// (the stream opened before any could finish is not guaranteed, so
	// allow early completions to be missing — but never duplicates).
	if progress > 4 {
		t.Fatalf("%d progress events for 4 jobs", progress)
	}
}

// TestSSETerminalEventForLateSubscriber: subscribing to a finished
// campaign still yields the terminal event immediately.
func TestSSETerminalEventForLateSubscriber(t *testing.T) {
	r := simtest.New()
	s := New(Config{Runner: r.Run})
	ts := httptest.NewServer(s)
	defer ts.Close()

	sub := postSpec(t, ts, specBody)
	waitDone(t, ts, sub.StatusURL, 10*time.Second, "event-log campaign")

	_, body := fetch(t, ts, sub.EventsURL)
	text := string(body)
	if !strings.Contains(text, "event: done") {
		t.Fatalf("late subscriber stream missing terminal event:\n%s", text)
	}
}

// TestStoreSurvivesDaemonKill simulates a hard kill mid-append: the
// reopened store drops only the torn tail and the daemon serves the
// surviving records as cache hits.
func TestStoreSurvivesDaemonKill(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	store, err := campaign.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	r := simtest.New()
	s := New(Config{Store: store, Runner: r.Run})
	id := submit(t, s, specBody)
	waitState(t, s, id)
	s.Drain(context.Background())
	store.Close()

	// Tear the file as a kill mid-write would.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"torn`)
	f.Close()

	store2, err := campaign.OpenStore(path)
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	defer store2.Close()
	if store2.Len() != 4 {
		t.Fatalf("survivors = %d, want 4", store2.Len())
	}
	r2 := simtest.New()
	s2 := New(Config{Store: store2, Runner: r2.Run})
	id2 := submit(t, s2, specBody)
	if state := waitState(t, s2, id2); state != StateDone {
		t.Fatalf("state = %q", state)
	}
	if r2.Total() != 0 {
		t.Fatalf("re-simulated %d jobs after kill, want 0", r2.Total())
	}
}
