package server

import (
	"html/template"
	"net/http"
)

// The embedded ops dashboard: GET /dashboard serves one self-contained
// HTML page — no external assets, no script dependencies — that renders
// the daemon's live state from the same public API clients use:
// /v1/campaigns, /v1/cache and /v1/workers are polled every couple of
// seconds for the stat tiles, campaign browser and fleet table, and the
// campaigns' SSE event streams feed live interval-IPC sparklines. The
// palette defines light and dark values for every color role as CSS
// custom properties (the OS setting picks the mode), status is never
// conveyed by color alone (icon + label ride along), and numeric table
// columns use tabular figures so they align.

var dashboardTmpl = template.Must(template.New("dashboard").Parse(dashboardHTML))

// dashboardData parameterises the page: single-process daemons hide the
// fleet section rather than polling an endpoint that 404s.
type dashboardData struct {
	Cluster bool
}

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = dashboardTmpl.Execute(w, dashboardData{Cluster: s.cluster != nil})
}

const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>mflushd — ops</title>
<style>
  :root {
    color-scheme: light;
    --page:           #f9f9f7;
    --surface-1:      #fcfcfb;
    --text-primary:   #0b0b0b;
    --text-secondary: #52514e;
    --text-muted:     #898781;
    --gridline:       #e1e0d9;
    --baseline:       #c3c2b7;
    --border:         rgba(11,11,11,0.10);
    --series-1:       #2a78d6;
    --status-good:    #0ca30c;
    --status-warning: #fab219;
    --status-critical:#d03b3b;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --page:           #0d0d0d;
      --surface-1:      #1a1a19;
      --text-primary:   #ffffff;
      --text-secondary: #c3c2b7;
      --text-muted:     #898781;
      --gridline:       #2c2c2a;
      --baseline:       #383835;
      --border:         rgba(255,255,255,0.10);
      --series-1:       #3987e5;
    }
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; padding: 20px; background: var(--page); color: var(--text-primary);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  h1 { font-size: 18px; margin: 0; font-weight: 600; }
  h2 { font-size: 13px; margin: 28px 0 10px; font-weight: 600; color: var(--text-secondary);
       text-transform: uppercase; letter-spacing: 0.04em; }
  header { display: flex; align-items: baseline; gap: 12px; }
  header .sub { color: var(--text-muted); font-size: 12px; }
  .status-chip { font-size: 12px; color: var(--text-secondary); }
  .status-chip .icon { font-style: normal; }
  .status-chip.good .icon { color: var(--status-good); }
  .status-chip.critical .icon { color: var(--status-critical); }
  .tiles { display: grid; grid-template-columns: repeat(auto-fill, minmax(150px, 1fr)); gap: 10px; margin-top: 16px; }
  .tile { background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px; padding: 12px 14px; }
  .tile .label { font-size: 12px; color: var(--text-secondary); }
  .tile .value { font-size: 26px; font-weight: 600; margin-top: 2px; }
  .tile .hint { font-size: 11px; color: var(--text-muted); margin-top: 2px; }
  table { width: 100%; border-collapse: collapse; background: var(--surface-1);
          border: 1px solid var(--border); border-radius: 8px; overflow: hidden; }
  th, td { text-align: left; padding: 7px 12px; border-top: 1px solid var(--gridline); font-size: 13px; }
  thead th { border-top: none; font-size: 11px; text-transform: uppercase; letter-spacing: 0.04em;
             color: var(--text-muted); font-weight: 600; }
  td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
  td .key { color: var(--text-muted); font-family: ui-monospace, monospace; font-size: 12px; }
  .empty { color: var(--text-muted); padding: 14px; font-size: 13px; }
  .sparks { display: grid; grid-template-columns: repeat(auto-fill, minmax(290px, 1fr)); gap: 10px; }
  .spark { background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px; padding: 10px 12px; }
  .spark .title { font-size: 12px; color: var(--text-secondary);
                  white-space: nowrap; overflow: hidden; text-overflow: ellipsis; }
  .spark .now { font-size: 16px; font-weight: 600; }
  .spark .now small { font-size: 11px; font-weight: 400; color: var(--text-muted); }
  .spark svg { display: block; width: 100%; height: 48px; margin-top: 4px; }
  .spark polyline { fill: none; stroke: var(--series-1); stroke-width: 2; stroke-linejoin: round; }
  .spark line.base { stroke: var(--baseline); stroke-width: 1; }
  a { color: var(--series-1); text-decoration: none; }
</style>
</head>
<body>
<header>
  <h1>mflushd</h1>
  <span class="status-chip" id="health"><i class="icon">●</i> <span>connecting…</span></span>
  <span class="sub"><a href="/metrics">/metrics</a></span>
</header>

<div class="tiles" id="tiles"></div>

<h2>Live interval IPC</h2>
<div class="sparks" id="sparks"><div class="empty">No sampled campaigns running. Submit a spec with an interval to see live series.</div></div>
{{if .Cluster}}
<h2>Worker fleet</h2>
<div id="fleet"><div class="empty">Loading…</div></div>
{{end}}
<h2>Campaigns</h2>
<div id="campaigns"><div class="empty">Loading…</div></div>

<script>
"use strict";
const CLUSTER = {{if .Cluster}}true{{else}}false{{end}};
const MAX_POINTS = 120;      // sparkline window
const MAX_STREAMS = 8;       // EventSources held open at once
const esByCampaign = new Map();   // campaign id -> EventSource
const series = new Map();         // campaign id -> Map(job key -> {name, pts:[]})

const esc = s => String(s).replace(/[&<>"]/g, ch => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[ch]));
const fmt = n => n >= 100 ? n.toFixed(0) : n >= 1 ? n.toFixed(2) : n.toFixed(3);

function tile(label, value, hint) {
  return '<div class="tile"><div class="label">' + esc(label) + '</div>' +
         '<div class="value">' + esc(value) + '</div>' +
         (hint ? '<div class="hint">' + esc(hint) + '</div>' : '') + '</div>';
}

function statusChip(kind, label) {
  // Status never rides on color alone: the icon glyph and the text
  // label carry it too.
  const icon = kind === 'good' ? '●' : kind === 'critical' ? '▲' : '○';
  return '<span class="status-chip ' + kind + '"><i class="icon">' + icon + '</i> ' + esc(label) + '</span>';
}

async function getJSON(path) {
  const resp = await fetch(path);
  if (!resp.ok) throw new Error(path + ': ' + resp.status);
  return resp.json();
}

function renderTiles(campaigns, cache, fleet) {
  const running = campaigns.filter(c => c.state === 'running').length;
  const parts = [
    tile('Campaigns running', running, campaigns.length + ' in registry'),
    tile('Cache entries', cache.entries, cache.hits + ' hits · ' + cache.misses + ' misses'),
  ];
  if (fleet) {
    const cap = fleet.workers.reduce((a, w) => a + w.capacity, 0);
    parts.push(tile('Fleet workers', fleet.workers.length, 'total capacity ' + cap));
    parts.push(tile('Pending jobs', fleet.pending, fleet.requeues + ' requeues'));
  }
  document.getElementById('tiles').innerHTML = parts.join('');
}

function renderCampaigns(campaigns) {
  const el = document.getElementById('campaigns');
  if (!campaigns.length) { el.innerHTML = '<div class="empty">No campaigns submitted yet.</div>'; return; }
  const rows = campaigns.slice().reverse().map(c => {
    const chip = c.state === 'running' ? statusChip('good', 'running')
               : c.state === 'done'    ? statusChip('good', 'done')
               : c.state === 'failed'  ? statusChip('critical', 'failed')
               : statusChip('neutral', c.state);
    return '<tr><td><a href="/v1/campaigns/' + esc(c.id) + '">' + esc(c.id) + '</a></td>' +
      '<td>' + chip + '</td>' +
      '<td class="num">' + c.completed + ' / ' + c.jobs + '</td>' +
      '<td class="num">' + c.cached + '</td>' +
      '<td class="num">' + c.failed + '</td>' +
      '<td>' + esc(new Date(c.created).toLocaleTimeString()) + '</td></tr>';
  });
  el.innerHTML = '<table><thead><tr><th>ID</th><th>State</th><th class="num">Jobs</th>' +
    '<th class="num">Cached</th><th class="num">Failed</th><th>Created</th></tr></thead><tbody>' +
    rows.join('') + '</tbody></table>';
}

function renderFleet(fleet) {
  const el = document.getElementById('fleet');
  if (!el) return;
  if (!fleet || !fleet.workers.length) {
    el.innerHTML = '<div class="empty">No live workers. Start mflushworker against this daemon.</div>';
    return;
  }
  const now = Date.now();
  const rows = fleet.workers.map(w => {
    const ageS = (now - new Date(w.last_seen).getTime()) / 1000;
    const live = ageS < 10 ? statusChip('good', 'live') : statusChip('critical', 'silent ' + ageS.toFixed(0) + 's');
    return '<tr><td>' + esc(w.name) + ' <span class="key">' + esc(w.id) + '</span></td>' +
      '<td>' + live + '</td>' +
      '<td class="num">' + w.capacity + '</td>' +
      '<td class="num">' + w.leased + '</td>' +
      '<td class="num">' + (w.jobs_done || 0) + '</td>' +
      '<td class="num">' + (w.cycles_per_sec ? Math.round(w.cycles_per_sec).toLocaleString() : '—') + '</td>' +
      '<td><span class="key">' + esc(w.last_job_key ? w.last_job_key.slice(0, 12) : '—') + '</span></td></tr>';
  });
  el.innerHTML = '<table><thead><tr><th>Worker</th><th>Liveness</th><th class="num">Capacity</th>' +
    '<th class="num">Leased</th><th class="num">Jobs done</th><th class="num">Cycles/s</th>' +
    '<th>Last job</th></tr></thead><tbody>' + rows.join('') + '</tbody></table>';
}

function sparkSVG(pts) {
  if (pts.length < 2) return '<svg viewBox="0 0 100 40" preserveAspectRatio="none"></svg>';
  let min = Math.min(...pts), max = Math.max(...pts);
  if (max - min < 1e-9) { max = min + 1; }
  const coords = pts.map((v, i) =>
    (i * 100 / (pts.length - 1)).toFixed(2) + ',' + (36 - (v - min) / (max - min) * 32).toFixed(2)
  ).join(' ');
  return '<svg viewBox="0 0 100 40" preserveAspectRatio="none">' +
    '<line class="base" x1="0" y1="39" x2="100" y2="39"></line>' +
    '<polyline points="' + coords + '"></polyline></svg>';
}

function renderSparks() {
  const el = document.getElementById('sparks');
  const cards = [];
  for (const [cid, jobs] of series) {
    for (const [key, s] of jobs) {
      if (!s.pts.length) continue;
      const last = s.pts[s.pts.length - 1];
      cards.push('<div class="spark"><div class="title">' + esc(cid) + ' · ' + esc(s.name || key.slice(0, 12)) + '</div>' +
        '<div class="now">' + fmt(last) + ' <small>interval IPC</small></div>' + sparkSVG(s.pts) + '</div>');
    }
  }
  if (cards.length) el.innerHTML = cards.join('');
}

function follow(c) {
  // One EventSource per running campaign feeds its sparklines from the
  // daemon's live "sample" events.
  if (esByCampaign.has(c.id) || esByCampaign.size >= MAX_STREAMS) return;
  const es = new EventSource('/v1/campaigns/' + c.id + '/events');
  esByCampaign.set(c.id, es);
  series.set(c.id, series.get(c.id) || new Map());
  es.addEventListener('sample', ev => {
    const d = JSON.parse(ev.data);
    const jobs = series.get(c.id);
    let s = jobs.get(d.key);
    if (!s) { s = { name: d.job, pts: [] }; jobs.set(d.key, s); }
    s.pts.push(d.sample.interval_ipc);
    if (s.pts.length > MAX_POINTS) s.pts.shift();
  });
  const closeOn = name => es.addEventListener(name, () => { es.close(); esByCampaign.delete(c.id); });
  ['done', 'failed', 'canceled'].forEach(closeOn);
  es.onerror = () => { es.close(); esByCampaign.delete(c.id); };
}

async function refresh() {
  const health = document.getElementById('health');
  try {
    const [camps, cache, fleet] = await Promise.all([
      getJSON('/v1/campaigns'),
      getJSON('/v1/cache'),
      CLUSTER ? getJSON('/v1/workers') : Promise.resolve(null),
    ]);
    if (fleet) fleet.workers = fleet.workers || [];
    health.outerHTML = statusChip('good', 'healthy').replace('status-chip', 'status-chip" id="health');
    const campaigns = camps.campaigns || [];
    renderTiles(campaigns, cache, fleet);
    renderCampaigns(campaigns);
    renderFleet(fleet);
    campaigns.filter(c => c.state === 'running').forEach(follow);
  } catch (err) {
    health.outerHTML = statusChip('critical', 'unreachable').replace('status-chip', 'status-chip" id="health');
  }
}

refresh();
setInterval(refresh, 2000);
setInterval(renderSparks, 500);
</script>
</body>
</html>
`
