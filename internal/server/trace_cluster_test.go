package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/tracecli"
)

// writeTrace synthesises a small scenario trace file and returns its
// path. The recipes include miss-latency overrides so the far-memory
// replay path is exercised end-to-end, not just in unit tests.
func writeTrace(t *testing.T, dir, name string, cfg tracecli.Config) string {
	t.Helper()
	s, err := tracecli.Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := tracecli.WriteFile(path, s, "binary"); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestClusterTraceAxisShardsAndCaches is the trace-workload acceptance
// test: a campaign whose workload axis mixes trace: entries with a
// synthetic workload runs through the daemon and a real-simulator fleet
// worker, lands records byte-identical to solo scheduler execution,
// gives every distinct trace its own job key, and serves a re-submission
// entirely from the content-addressed cache.
func TestClusterTraceAxisShardsAndCaches(t *testing.T) {
	dir := t.TempDir()
	pathA := writeTrace(t, dir, "a.trace", tracecli.Config{
		Mode: "ramp", Benches: []string{"mcf"}, N: 30000, Seed: 3,
		LatLo: 600, LatHi: 2500, TailFrac: 0.1,
	})
	pathB := writeTrace(t, dir, "b.trace", tracecli.Config{
		Mode: "mix", Benches: []string{"gzip", "art"}, N: 30000, Seed: 4,
	})
	spec := fmt.Sprintf(`{"workloads":[%q,%q,"2W1"],"policies":["ICOUNT","MFLUSH"],"seeds":[1],"cycles":1500,"warmup":500}`,
		"trace:"+pathA, "trace:"+pathB)

	// Reference: the same jobs simulated solo through the plain scheduler
	// with the real simulator.
	parsed, err := campaign.ReadSpec(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := parsed.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 6 {
		t.Fatalf("spec expanded to %d jobs, want 6", len(jobs))
	}
	keys := make(map[string]bool)
	for _, j := range jobs {
		keys[j.Key()] = true
	}
	if len(keys) != 6 {
		t.Fatalf("6 jobs share keys: %d distinct", len(keys))
	}
	refStore, err := campaign.OpenStore(filepath.Join(t.TempDir(), "ref.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer refStore.Close()
	refRecs, err := (&campaign.Scheduler{Workers: 2}).Run(context.Background(), jobs, refStore)
	if err != nil {
		t.Fatal(err)
	}
	wantRec := make(map[string]string, len(refRecs))
	for _, rec := range refRecs {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		wantRec[rec.Key] = string(b)
	}

	// Fleet execution: daemon plus two real-simulator workers (the
	// workers share the daemon's filesystem, which the trace: axis
	// requires — refs carry paths, not content).
	store, err := campaign.OpenStore(filepath.Join(t.TempDir(), "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	coord := cluster.NewCoordinator(cluster.Config{LeaseTTL: 10 * time.Second})
	defer coord.Close()
	srv := New(Config{Store: store, Runner: localRunnerMustNotRun(t), Cluster: coord})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var fleetRuns atomic.Int64
	counting := func(o sim.Options) (*sim.Result, error) {
		fleetRuns.Add(1)
		return sim.Run(o)
	}
	for _, name := range []string{"wa", "wb"} {
		w := &cluster.Worker{
			Base: ts.URL, Name: name, Capacity: 2,
			Runner: counting, LeaseWait: 50 * time.Millisecond,
		}
		wctx, wcancel := context.WithCancel(context.Background())
		t.Cleanup(wcancel)
		go func() {
			if err := w.Run(wctx); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	waitFleet(t, coord, 2)

	sub := postSpec(t, ts, spec)
	if state := waitState(t, srv, sub.ID); state != StateDone {
		t.Fatalf("trace-axis campaign state %q", state)
	}
	if n := fleetRuns.Load(); n != 6 {
		t.Fatalf("fleet simulated %d jobs for 6 distinct jobs", n)
	}
	for _, j := range jobs {
		rec, ok := store.Get(j.Key())
		if !ok {
			t.Fatalf("store is missing fleet-executed record %s", j)
		}
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != wantRec[j.Key()] {
			t.Errorf("%s: fleet record differs from solo\nfleet: %s\n solo: %s", j, b, wantRec[j.Key()])
		}
	}
	// Trace records carry the trace: name, so aggregates group by trace.
	for _, j := range jobs[:4] {
		rec, _ := store.Get(j.Key())
		if !strings.HasPrefix(rec.Workload, "trace:") {
			t.Errorf("trace record workload = %q, want a trace: name", rec.Workload)
		}
	}

	// Re-submitting the identical spec is a pure cache hit: the daemon
	// serves every job from the store — no new simulation anywhere.
	var firstResult string
	_, body := fetch(t, ts, sub.ResultURL+"?format=json")
	firstResult = string(body)
	sub2 := postSpec(t, ts, spec)
	if state := waitState(t, srv, sub2.ID); state != StateDone {
		t.Fatalf("re-submission state %q", state)
	}
	if n := fleetRuns.Load(); n != 6 {
		t.Fatalf("re-submission re-simulated: %d total runs, want 6", n)
	}
	_, body = fetch(t, ts, sub2.ResultURL+"?format=json")
	if string(body) != firstResult {
		t.Error("cached re-submission aggregate differs from the original")
	}
}
