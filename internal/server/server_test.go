package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simtest"
)

const specBody = `{"workloads":["2W1"],"policies":["ICOUNT","MFLUSH"],"seeds":[1,2],"cycles":1000}`

// do issues one request against the handler and decodes the JSON body.
func do(t *testing.T, h http.Handler, method, path, body string) (int, map[string]any) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var decoded map[string]any
	raw := rec.Body.Bytes()
	if len(raw) > 0 && (raw[0] == '{' || raw[0] == '[') {
		if err := json.Unmarshal(raw, &decoded); err != nil && raw[0] == '{' {
			t.Fatalf("%s %s: bad JSON body %q: %v", method, path, raw, err)
		}
	}
	return rec.Code, decoded
}

// submit posts a spec and returns the campaign ID.
func submit(t *testing.T, h http.Handler, body string) string {
	t.Helper()
	code, resp := do(t, h, "POST", "/v1/campaigns", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d (%v)", code, resp)
	}
	return resp["id"].(string)
}

// waitState polls until the campaign reaches a terminal state.
func waitState(t *testing.T, h http.Handler, id string) string {
	t.Helper()
	var state string
	simtest.WaitFor(t, 10*time.Second, func() bool {
		_, st := do(t, h, "GET", "/v1/campaigns/"+id, "")
		state = st["state"].(string)
		return state != StateRunning
	}, "campaign %s never settled", id)
	return state
}

func TestSubmitRunsToCompletion(t *testing.T) {
	r := simtest.New()
	s := New(Config{Runner: r.Run})
	id := submit(t, s, specBody)

	if state := waitState(t, s, id); state != StateDone {
		t.Fatalf("state = %q", state)
	}
	_, st := do(t, s, "GET", "/v1/campaigns/"+id, "")
	if st["completed"].(float64) != 4 || st["jobs"].(float64) != 4 {
		t.Fatalf("status = %v", st)
	}
	if r.Total() != 4 {
		t.Fatalf("%d simulations for 4 jobs", r.Total())
	}

	code, _ := do(t, s, "GET", "/v1/campaigns/"+id+"/result", "")
	if code != http.StatusOK {
		t.Fatalf("result = %d", code)
	}
	// CSV and table formats are served too.
	for _, format := range []string{"csv", "table", "rows"} {
		req := httptest.NewRequest("GET", "/v1/campaigns/"+id+"/result?format="+format, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
			t.Fatalf("format %s = %d, %d bytes", format, rec.Code, rec.Body.Len())
		}
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	s := New(Config{Runner: simtest.New().Run})
	for _, body := range []string{
		"",                      // empty
		"{not json",             // malformed
		`{"workloads":["2W1"]}`, // no policies/cycles
		`{"workloads":["2W1"],"policies":["ICOUNT"],"cycles":1000,"bogus":1}`, // unknown field
		`{"workloads":["2W1"],"policies":["NOPE"],"cycles":1000}`,             // unknown policy
	} {
		code, resp := do(t, s, "POST", "/v1/campaigns", body)
		if code != http.StatusBadRequest {
			t.Errorf("submit(%q) = %d (%v), want 400", body, code, resp)
		}
		if resp["error"] == "" {
			t.Errorf("submit(%q): no error message", body)
		}
	}
}

func TestUnknownCampaign(t *testing.T) {
	s := New(Config{Runner: simtest.New().Run})
	for _, path := range []string{
		"/v1/campaigns/c999999",
		"/v1/campaigns/c999999/result",
		"/v1/campaigns/c999999/events",
	} {
		if code, _ := do(t, s, "GET", path, ""); code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, code)
		}
	}
	if code, _ := do(t, s, "DELETE", "/v1/campaigns/c999999", ""); code != http.StatusNotFound {
		t.Errorf("DELETE = %d, want 404", code)
	}
}

func TestResultWhileRunningConflicts(t *testing.T) {
	r := simtest.New()
	r.Gate = make(chan struct{})
	s := New(Config{Runner: r.Run})
	id := submit(t, s, specBody)
	defer close(r.Gate)

	code, resp := do(t, s, "GET", "/v1/campaigns/"+id+"/result", "")
	if code != http.StatusConflict {
		t.Fatalf("result while running = %d (%v), want 409", code, resp)
	}
}

func TestResultUnknownFormat(t *testing.T) {
	r := simtest.New()
	s := New(Config{Runner: r.Run})
	id := submit(t, s, specBody)
	waitState(t, s, id)
	code, resp := do(t, s, "GET", "/v1/campaigns/"+id+"/result?format=xml", "")
	if code != http.StatusBadRequest {
		t.Fatalf("format=xml = %d (%v)", code, resp)
	}
}

func TestBackpressure429(t *testing.T) {
	r := simtest.New()
	r.Gate = make(chan struct{})
	// Queue bound of 5: the first campaign's 4 jobs fit, the second's
	// 4 more do not.
	s := New(Config{Runner: r.Run, MaxQueuedJobs: 5, Workers: 2})
	submit(t, s, specBody)

	req := httptest.NewRequest("POST", "/v1/campaigns", strings.NewReader(specBody))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit submit = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var resp map[string]any
	json.Unmarshal(rec.Body.Bytes(), &resp)
	if !strings.Contains(resp["error"].(string), "queue full") {
		t.Fatalf("429 body = %v", resp)
	}

	// Draining the queue re-opens admission.
	close(r.Gate)
	simtest.WaitFor(t, 10*time.Second, func() bool {
		code, _ := do(t, s, "POST", "/v1/campaigns", specBody)
		return code == http.StatusAccepted
	}, "admission never re-opened after queue drained")
}

func TestCancelCampaign(t *testing.T) {
	r := simtest.New()
	r.Gate = make(chan struct{})
	s := New(Config{Runner: r.Run, Workers: 1})
	id := submit(t, s, specBody)
	for r.Total() == 0 {
		time.Sleep(time.Millisecond)
	}

	code, _ := do(t, s, "DELETE", "/v1/campaigns/"+id, "")
	if code != http.StatusAccepted {
		t.Fatalf("cancel = %d", code)
	}
	close(r.Gate)
	if state := waitState(t, s, id); state != StateCanceled {
		t.Fatalf("state after cancel = %q", state)
	}
	// Jobs that never started were not simulated: 1 worker, so only the
	// in-flight job ran.
	if r.Total() != 1 {
		t.Fatalf("%d jobs simulated after early cancel, want 1", r.Total())
	}
	// Cancelling again is idempotent.
	if code, _ := do(t, s, "DELETE", "/v1/campaigns/"+id, ""); code != http.StatusAccepted {
		t.Fatalf("second cancel = %d", code)
	}
}

func TestFailedCampaign(t *testing.T) {
	r := simtest.New()
	r.Fail = true
	s := New(Config{Runner: r.Run})
	id := submit(t, s, specBody)
	if state := waitState(t, s, id); state != StateFailed {
		t.Fatalf("state = %q", state)
	}
	_, st := do(t, s, "GET", "/v1/campaigns/"+id, "")
	if !strings.Contains(st["error"].(string), "synthetic simulator failure") {
		t.Fatalf("status error = %v", st["error"])
	}
	code, _ := do(t, s, "GET", "/v1/campaigns/"+id+"/result", "")
	if code != http.StatusConflict {
		t.Fatalf("result of failed campaign = %d, want 409", code)
	}
}

func TestListCampaigns(t *testing.T) {
	r := simtest.New()
	s := New(Config{Runner: r.Run})
	a := submit(t, s, specBody)
	b := submit(t, s, specBody)
	waitState(t, s, a)
	waitState(t, s, b)

	_, resp := do(t, s, "GET", "/v1/campaigns", "")
	list := resp["campaigns"].([]any)
	if len(list) != 2 {
		t.Fatalf("%d campaigns listed", len(list))
	}
	first := list[0].(map[string]any)
	if first["id"].(string) != a {
		t.Fatalf("listing out of admission order: %v", list)
	}
}

func TestHealthAndCacheEndpoints(t *testing.T) {
	r := simtest.New()
	s := New(Config{Runner: r.Run})
	if code, resp := do(t, s, "GET", "/healthz", ""); code != 200 || resp["ok"] != true {
		t.Fatalf("healthz = %d %v", code, resp)
	}
	id := submit(t, s, specBody)
	waitState(t, s, id)
	_, cacheResp := do(t, s, "GET", "/v1/cache", "")
	if cacheResp["entries"].(float64) != 4 || cacheResp["misses"].(float64) != 4 {
		t.Fatalf("cache = %v", cacheResp)
	}
}

func TestDrainRejectsNewCampaigns(t *testing.T) {
	r := simtest.New()
	s := New(Config{Runner: r.Run})
	id := submit(t, s, specBody)
	waitState(t, s, id)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	code, resp := do(t, s, "POST", "/v1/campaigns", specBody)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d (%v), want 503", code, resp)
	}
}

func TestCampaignRetentionEvictsSettled(t *testing.T) {
	r := simtest.New()
	s := New(Config{Runner: r.Run, MaxCampaigns: 2})
	a := submit(t, s, specBody)
	waitState(t, s, a)
	b := submit(t, s, specBody)
	waitState(t, s, b)
	c := submit(t, s, specBody) // evicts a (oldest settled)

	if code, _ := do(t, s, "GET", "/v1/campaigns/"+a, ""); code != http.StatusNotFound {
		t.Fatalf("evicted campaign %s = %d, want 404", a, code)
	}
	for _, id := range []string{b, c} {
		if code, _ := do(t, s, "GET", "/v1/campaigns/"+id, ""); code != http.StatusOK {
			t.Fatalf("retained campaign %s = %d", id, code)
		}
	}
	// Eviction forgets bookkeeping, not results: a's jobs stay cached.
	waitState(t, s, c)
	if r.Total() != 4 {
		t.Fatalf("%d simulations across three identical campaigns, want 4", r.Total())
	}
}

func TestCampaignRetentionSparesRunning(t *testing.T) {
	r := simtest.New()
	r.Gate = make(chan struct{})
	s := New(Config{Runner: r.Run, MaxCampaigns: 1, MaxQueuedJobs: 100})
	a := submit(t, s, specBody)
	b := submit(t, s, specBody) // over the bound, but a is still running
	if code, _ := do(t, s, "GET", "/v1/campaigns/"+a, ""); code != http.StatusOK {
		t.Fatalf("running campaign evicted: %d", code)
	}
	close(r.Gate)
	waitState(t, s, a)
	waitState(t, s, b)
}

func TestCacheKeysExposed(t *testing.T) {
	r := simtest.New()
	s := New(Config{Runner: r.Run})
	id := submit(t, s, specBody)
	waitState(t, s, id)

	_, plain := do(t, s, "GET", "/v1/cache", "")
	if _, ok := plain["keys"]; ok {
		t.Fatalf("keys served without being requested: %v", plain)
	}
	_, verbose := do(t, s, "GET", "/v1/cache?keys=1", "")
	keys, ok := verbose["keys"].([]any)
	if !ok || len(keys) != 4 {
		t.Fatalf("cache keys = %v", verbose["keys"])
	}
}

func TestCancelledWaiterNotCountedFailed(t *testing.T) {
	r := simtest.New()
	r.Gate = make(chan struct{})
	s := New(Config{Runner: r.Run, Workers: 4, MaxQueuedJobs: 100})
	a := submit(t, s, specBody)
	for r.Total() < 4 {
		time.Sleep(time.Millisecond)
	}
	// b's jobs all join a's in-flight runs; cancelling b while it waits
	// must settle it as canceled with zero failures.
	b := submit(t, s, specBody)
	time.Sleep(5 * time.Millisecond)
	if code, _ := do(t, s, "DELETE", "/v1/campaigns/"+b, ""); code != http.StatusAccepted {
		t.Fatal("cancel failed")
	}
	close(r.Gate)
	if state := waitState(t, s, b); state != StateCanceled {
		t.Fatalf("waiter campaign state = %q", state)
	}
	_, st := do(t, s, "GET", "/v1/campaigns/"+b, "")
	if st["failed"].(float64) != 0 {
		t.Fatalf("cancelled waiter campaign reports %v failures", st["failed"])
	}
	waitState(t, s, a)
}

func TestOversizedCampaignPermanentlyRejected(t *testing.T) {
	s := New(Config{Runner: simtest.New().Run, MaxQueuedJobs: 3})
	// 4 jobs > capacity 3: impossible ever, so 400 without Retry-After,
	// not a retriable 429.
	req := httptest.NewRequest("POST", "/v1/campaigns", strings.NewReader(specBody))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized campaign = %d, want 400", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "" {
		t.Fatal("permanent rejection carries Retry-After")
	}
	var resp map[string]any
	json.Unmarshal(rec.Body.Bytes(), &resp)
	if !strings.Contains(resp["error"].(string), "split the spec") {
		t.Fatalf("400 body = %v", resp)
	}
}

func TestFirstFailureAbandonsRemainingJobs(t *testing.T) {
	// Fail only the first job in job order; with one worker, the three
	// remaining jobs must be abandoned, not simulated.
	r := simtest.New()
	base := r.Run
	failing := func(o sim.Options) (*sim.Result, error) {
		if _, err := base(o); err != nil {
			return nil, err
		}
		return nil, errors.New("synthetic simulator failure")
	}
	calls := 0
	runner := func(o sim.Options) (*sim.Result, error) {
		calls++ // Workers:1 => serial, no mutex needed
		if calls == 1 {
			return failing(o)
		}
		return base(o)
	}
	s := New(Config{Runner: runner, Workers: 1})
	id := submit(t, s, specBody)
	if state := waitState(t, s, id); state != StateFailed {
		t.Fatalf("state = %q", state)
	}
	if r.Total() != 1 {
		t.Fatalf("%d jobs simulated after first failure, want 1 (rest abandoned)", r.Total())
	}
	_, st := do(t, s, "GET", "/v1/campaigns/"+id, "")
	if st["failed"].(float64) != 1 || st["completed"].(float64) != 0 {
		t.Fatalf("status after abandon = %v", st)
	}
}

func TestFullyCachedCampaignBypassesAdmission(t *testing.T) {
	// Queue capacity 3 < the campaign's 4 jobs: the first submission is
	// permanently rejected, but once the jobs are in the cache (via two
	// halves) the full spec is admitted and served entirely from cache.
	r := simtest.New()
	s := New(Config{Runner: r.Run, MaxQueuedJobs: 3})
	half1 := `{"workloads":["2W1"],"policies":["ICOUNT","MFLUSH"],"seeds":[1],"cycles":1000}`
	half2 := `{"workloads":["2W1"],"policies":["ICOUNT","MFLUSH"],"seeds":[2],"cycles":1000}`
	if code, _ := do(t, s, "POST", "/v1/campaigns", specBody); code != http.StatusBadRequest {
		t.Fatalf("cold oversized submit = %d, want 400", code)
	}
	for _, spec := range []string{half1, half2} {
		waitState(t, s, submit(t, s, spec))
	}

	id := submit(t, s, specBody) // 4 jobs, all cached: admitted despite capacity 3
	if state := waitState(t, s, id); state != StateDone {
		t.Fatalf("state = %q", state)
	}
	_, st := do(t, s, "GET", "/v1/campaigns/"+id, "")
	if st["cached"].(float64) != 4 {
		t.Fatalf("cached = %v, want 4", st["cached"])
	}
	if r.Total() != 4 {
		t.Fatalf("%d simulations total, want 4 (halves only)", r.Total())
	}
}
