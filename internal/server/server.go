// Package server implements mflushd, the simulation-as-a-service
// daemon: campaign Specs arrive over HTTP, expand through the campaign
// engine, and execute on one shared bounded scheduler behind a
// content-addressed result cache, so any job any client ever computed
// is served without re-simulation — across concurrent campaigns and
// across daemon restarts. API.md documents the wire protocol; cmd/mflushd
// is the binary.
//
// The daemon degrades predictably under load: admission control bounds
// the number of jobs in the system (excess submissions get 429 with a
// Retry-After), and SIGTERM drains — in-flight simulations finish and
// persist to the store, nothing new starts.
//
// With Config.Cluster set (mflushd -cluster) the daemon additionally
// coordinates an mflushworker fleet over the /v1/workers endpoints:
// cache misses route to live remote workers through a lease-based
// queue (internal/cluster) and fall back to local simulation when the
// fleet is empty or gone, without changing any client-visible
// behaviour — aggregates stay byte-identical however the jobs were
// placed.
package server

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Config assembles a daemon.
type Config struct {
	// Store backs the content-addressed result cache; nil serves from
	// memory only (results then die with the process).
	Store *campaign.Store
	// Runner executes one simulation; nil means sim.Run. Tests inject
	// counting, blocking or failing runners.
	Runner func(sim.Options) (*sim.Result, error)
	// Workers bounds simulation parallelism across ALL campaigns
	// (<= 0: GOMAXPROCS) — one machine-wide budget, not per campaign.
	Workers int
	// MaxQueuedJobs bounds jobs admitted but not yet finished, across
	// all campaigns; submissions that would exceed it get 429
	// (<= 0: 1024). This is the daemon's explicit backpressure knob.
	MaxQueuedJobs int
	// MaxCampaigns bounds how many campaigns the registry retains
	// (<= 0: 1000). When a submission would exceed it, the oldest
	// *settled* campaigns are forgotten — their IDs start returning
	// 404, but every computed result stays in the cache. Running
	// campaigns are never evicted.
	MaxCampaigns int
	// Cluster, when non-nil, turns the daemon into a fleet coordinator:
	// the /v1/workers endpoints are served, and every cache miss is
	// routed to a live remote worker when one exists — falling back to
	// the local simulator (still bounded by Workers) when the fleet is
	// empty or dies. Admission control, caching and the store work
	// exactly as in single-process mode; only where jobs execute
	// changes. The caller owns the coordinator's lifecycle (Close it
	// after Drain).
	Cluster *cluster.Coordinator
}

// Server is the mflushd HTTP handler plus the shared execution state
// behind it. Create with New; it serves until Drain.
type Server struct {
	cache        *campaign.Cache
	sched        *campaign.Scheduler
	cluster      *cluster.Coordinator // nil: single-process mode
	samples      *sampleHub           // live interval samples, keyed by job
	mux          *http.ServeMux
	registry     *metrics.Registry // /metrics families (server + cluster)
	m            serverMetrics
	maxQueued    int
	maxCampaigns int

	// baseCtx parents every campaign context; stopAll cancels them all
	// (drain). wg tracks campaign goroutines.
	baseCtx context.Context
	stopAll context.CancelFunc
	wg      sync.WaitGroup

	mu        sync.Mutex
	draining  bool
	queued    int // jobs admitted, not yet finished (backpressure)
	nextID    int
	campaigns map[string]*run
	order     []string // campaign IDs in admission order
	// drainTimes is a ring of recent job-completion times;
	// retryAfterLocked derives the queue's observed drain rate from it
	// to size the Retry-After of a 429.
	drainTimes [64]time.Time
	drainIdx   int
	drainCount int
}

// New builds a server from cfg. The returned Server is an http.Handler
// serving root-anchored paths (/v1/..., /healthz) and returning
// root-anchored URLs in responses, so mount it at the server root.
func New(cfg Config) *Server {
	maxQueued := cfg.MaxQueuedJobs
	if maxQueued <= 0 {
		maxQueued = 1024
	}
	maxCampaigns := cfg.MaxCampaigns
	if maxCampaigns <= 0 {
		maxCampaigns = 1000
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cluster:      cfg.Cluster,
		samples:      newSampleHub(),
		maxQueued:    maxQueued,
		maxCampaigns: maxCampaigns,
		baseCtx:      ctx,
		stopAll:      cancel,
		campaigns:    make(map[string]*run),
	}
	if cfg.Cluster != nil {
		// Cluster mode: misses route through the fleet router, and the
		// scheduler pool is sized for the admission queue rather than
		// the core count — a dispatch parked on a remote worker is a
		// cheap wait, and local simulations are bounded inside the
		// router, not by pool goroutines.
		router := cluster.NewRouter(cfg.Cluster, cfg.Workers, cfg.Runner)
		router.OnSample = s.samples.publish
		s.cache = campaign.NewJobCache(cfg.Store, router.Run)
		s.sched = campaign.NewShared(maxQueued)
		// A durable coordinator may have replayed an interrupted
		// campaign from its WAL; rebind that work to this incarnation
		// before the listener opens.
		recovered := cfg.Cluster.Recovered()
		for _, orphan := range recovered.Orphans {
			// Results the dead daemon acknowledged to workers but never
			// confirmed in the store: adopt them now. Idempotent (keyed
			// by content hash) and best-effort — an orphan that fails to
			// land stays in the coordinator's settled set and is
			// re-served through Dispatch instead.
			if cfg.Store != nil {
				if _, ok := cfg.Store.Get(orphan.Key); !ok {
					_ = cfg.Store.Append(orphan)
				}
			}
		}
		s.resumeRecovered(recovered)
	} else {
		// Single-process mode: a job-level runner so sampled jobs can
		// stream live interval points into the hub; everything else is
		// NewCache semantics (the runner ignores ctx, like a local
		// simulation always has).
		runner := cfg.Runner
		if runner == nil {
			runner = sim.Run
		}
		s.cache = campaign.NewJobCache(cfg.Store, func(_ context.Context, j campaign.Job) (campaign.Record, error) {
			o, err := j.SimOptions()
			if err != nil {
				return campaign.Record{}, err
			}
			j.StreamSamples(&o, s.samples.publish)
			res, err := runner(o)
			if err != nil {
				return campaign.Record{}, err
			}
			return campaign.NewRecord(j, res), nil
		})
		s.sched = campaign.NewShared(cfg.Workers)
	}
	// The registry needs the cache in place; the coordinator adds the
	// fleet and WAL families when clustering.
	s.registerMetrics()
	if cfg.Cluster != nil {
		cfg.Cluster.RegisterMetrics(s.registry)
	}
	s.mux = http.NewServeMux()
	s.mux.Handle("GET /metrics", s.registry.Handler())
	s.mux.HandleFunc("GET /dashboard", s.handleDashboard)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/campaigns", s.handleList)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/cache", s.handleCache)
	if cfg.Cluster != nil {
		s.mux.HandleFunc("POST /v1/workers", s.handleWorkerRegister)
		s.mux.HandleFunc("GET /v1/workers", s.handleWorkersList)
		s.mux.HandleFunc("POST /v1/workers/{id}/lease", s.handleWorkerLease)
		s.mux.HandleFunc("POST /v1/workers/{id}/results", s.handleWorkerResults)
		s.mux.HandleFunc("DELETE /v1/workers/{id}", s.handleWorkerDeregister)
	}
	return s
}

// ServeHTTP dispatches to the API routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// resumeRecovered re-dispatches the jobs a durable coordinator restored
// from its WAL, so a daemon restart resumes the interrupted campaign on
// its own — no client resubmission required. The dispatcher runs as a
// tracked goroutine (Drain waits for it, and its context cancels with
// everything else): it gives returning workers one lease TTL to
// re-register, then pushes the jobs through the shared scheduler and
// cache exactly like a client campaign — fleet when live, local
// fallback otherwise — so every result lands in the store through the
// single-flight path. Recovered jobs were admitted by the previous
// incarnation, so they bypass admission control rather than competing
// with (and possibly deadlocking behind) fresh submissions.
func (s *Server) resumeRecovered(recovered cluster.Recovery) {
	var jobs []campaign.Job
	for _, wire := range recovered.Jobs {
		j, err := wire.Job()
		if err != nil {
			continue // version skew: the job stays in the WAL for a build that understands it
		}
		jobs = append(jobs, j)
	}
	if len(jobs) == 0 {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		deadline := time.Now().Add(s.cluster.LeaseTTL())
		for time.Now().Before(deadline) && s.cluster.LiveWorkers() == 0 && s.baseCtx.Err() == nil {
			time.Sleep(20 * time.Millisecond)
		}
		if s.baseCtx.Err() != nil {
			return
		}
		// Errors are deterministic simulation failures or a drain; either
		// way the WAL and store already hold everything worth keeping.
		_, _ = s.sched.RunCached(s.baseCtx, jobs, s.cache, nil)
	}()
}

// Drain stops accepting new campaigns (submissions get 503), cancels
// every campaign's scheduling — simulations already in flight finish and
// persist to the store, queued jobs never start — and waits for all
// campaign goroutines to reach a terminal state, or for ctx to expire.
// This is the SIGTERM path of cmd/mflushd.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.stopAll()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// handleHealth is the liveness probe.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// submitResponse is the 202 body returned for an admitted campaign.
type submitResponse struct {
	ID   string `json:"id"`
	Jobs int    `json:"jobs"`
	// URLs are the campaign's API locations, for clients that prefer
	// link-following over path construction.
	StatusURL string `json:"status_url"`
	EventsURL string `json:"events_url"`
	ResultURL string `json:"result_url"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := campaign.ReadSpec(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	jobs, err := spec.Jobs()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Only jobs the cache cannot already serve occupy queue capacity:
	// cached jobs cost no simulation, so a fully-cached campaign of any
	// size is admitted even under load. (A job can only gain cache
	// entries between here and execution, never lose them, so the charge
	// is an upper bound.)
	charged := make(map[string]bool)
	for _, j := range jobs {
		if !s.cache.Contains(j) {
			charged[j.Key()] = true
		}
	}
	// A campaign with more uncached jobs than the whole queue can never
	// be admitted, so reject it permanently (no Retry-After) instead of
	// telling the client to retry a request that cannot succeed.
	if len(charged) > s.maxQueued {
		writeError(w, http.StatusBadRequest,
			"campaign expands to %d uncached jobs, more than the daemon's queue capacity %d; split the spec",
			len(charged), s.maxQueued)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting new campaigns")
		return
	}
	if s.queued+len(charged) > s.maxQueued {
		queued := s.queued
		retry := s.retryAfterLocked(s.queued+len(charged)-s.maxQueued, time.Now())
		s.mu.Unlock()
		s.m.rejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests,
			"queue full: %d jobs queued, %d requested, limit %d; retry later",
			queued, len(charged), s.maxQueued)
		return
	}
	s.queued += len(charged)
	s.nextID++
	id := fmt.Sprintf("c%06d", s.nextID)
	c := newRun(id, jobs, time.Now())
	c.charged = charged
	ctx, cancel := context.WithCancel(s.baseCtx)
	c.cancel = cancel
	s.campaigns[id] = c
	s.order = append(s.order, id)
	s.evictLocked()
	s.wg.Add(1)
	s.mu.Unlock()
	s.m.submitted.Inc()

	go s.runCampaign(ctx, c)

	base := "/v1/campaigns/" + id
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID: id, Jobs: len(jobs),
		StatusURL: base, EventsURL: base + "/events", ResultURL: base + "/result",
	})
}

// runCampaign executes one admitted campaign on the shared scheduler and
// settles its terminal state.
func (s *Server) runCampaign(ctx context.Context, c *run) {
	defer s.wg.Done()
	defer c.cancel() // release the context once settled
	// Sampled jobs stream live interval points; route the ones belonging
	// to this campaign into its SSE subscribers for as long as it runs.
	// A sampled campaign also publishes its latest interval IPC as a
	// labeled gauge; the child is resolved here, outside every lock the
	// sample path holds, and its series leaves /metrics with the run.
	if len(c.jobNames) > 0 {
		c.ipc = s.m.campaignIPC.WithLabelValues(c.id)
		defer s.m.campaignIPC.Delete(c.id)
	}
	unsubscribe := s.samples.subscribe(c.sampledKeys(), c.onSample)
	defer unsubscribe()
	records, err := s.sched.RunCached(ctx, c.jobs, s.cache, func(p campaign.Progress) {
		// Release the job's admission slot, if it was charged one (jobs
		// already cached at submit never were). Callbacks are serialised,
		// so the map needs no extra locking.
		if key := p.Job.Key(); c.charged[key] {
			delete(c.charged, key)
			s.release(1)
		}
		if p.Err != nil {
			// First failure abandons the campaign's remaining jobs: they
			// would occupy queue slots and machine time for a result the
			// client can no longer use whole. Jobs already simulated are
			// in the cache, so a corrected resubmission reuses them.
			c.cancel()
		}
		c.onProgress(p)
	})
	c.finish(records, err)
	// Jobs skipped by cancellation produced no progress report; give any
	// admission slots still charged to them back. The campaign is
	// settled, so nothing else touches the map.
	s.release(len(c.charged))
}

// evictLocked trims the registry to the retention bound by forgetting
// the oldest settled campaigns; running campaigns are never evicted, so
// the registry can transiently exceed the bound when everything is
// still in flight. The caller holds s.mu.
func (s *Server) evictLocked() {
	if len(s.campaigns) <= s.maxCampaigns {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		settled := false
		select {
		case <-s.campaigns[id].finished:
			settled = true
		default:
		}
		if settled && len(s.campaigns) > s.maxCampaigns {
			delete(s.campaigns, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// release returns n admission slots to the queue bound and stamps the
// completions into the drain-rate ring.
func (s *Server) release(n int) {
	if n == 0 {
		return
	}
	now := time.Now()
	s.mu.Lock()
	s.queued -= n
	for i := 0; i < n; i++ {
		s.drainTimes[s.drainIdx] = now
		s.drainIdx = (s.drainIdx + 1) % len(s.drainTimes)
		if s.drainCount < len(s.drainTimes) {
			s.drainCount++
		}
	}
	s.mu.Unlock()
}

// retryAfterLocked estimates how many seconds until need admission
// slots free up, from the observed drain rate: the completions in the
// ring divided by the time they span. No history (a freshly started,
// instantly flooded daemon) or an instantaneous burst both give the
// optimistic 1s floor; the ceiling keeps a stalled queue from parking
// clients for more than a minute between probes. The caller holds s.mu.
func (s *Server) retryAfterLocked(need int, now time.Time) int {
	if s.drainCount == 0 {
		return 1
	}
	oldest := s.drainTimes[(s.drainIdx-s.drainCount+len(s.drainTimes))%len(s.drainTimes)]
	span := now.Sub(oldest)
	if span <= 0 {
		return 1
	}
	rate := float64(s.drainCount) / span.Seconds()
	secs := int(math.Ceil(float64(need) / rate))
	if secs < 1 {
		return 1
	}
	if secs > 60 {
		return 60
	}
	return secs
}

// lookup resolves a campaign ID, writing the 404 itself on a miss.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *run {
	id := r.PathValue("id")
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil {
		writeError(w, http.StatusNotFound, "no campaign %q", id)
	}
	return c
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(w, r)
	if c == nil {
		return
	}
	writeJSON(w, http.StatusOK, c.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		statuses = append(statuses, s.campaigns[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string][]Status{"campaigns": statuses})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(w, r)
	if c == nil {
		return
	}
	// Idempotent: cancelling a settled campaign changes nothing.
	c.cancel()
	writeJSON(w, http.StatusAccepted, c.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(w, r)
	if c == nil {
		return
	}
	st := c.status()
	if st.State != StateDone {
		writeError(w, http.StatusConflict,
			"campaign %s is %s; results are served once it is %q", c.id, st.State, StateDone)
		return
	}
	c.mu.Lock()
	cells := c.cells
	c.mu.Unlock()
	// Encoding errors past this point are client-connection failures:
	// headers are already sent, so there is nothing useful to report.
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		_ = campaign.WriteJSON(w, cells)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		_ = campaign.WriteCSV(w, cells)
	case "table":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = campaign.Table(cells).WriteTo(w)
	case "rows":
		w.Header().Set("Content-Type", "application/json")
		_ = campaign.Table(cells).WriteJSON(w)
	default:
		writeError(w, http.StatusBadRequest,
			"unknown format %q (json, csv, table, rows)", format)
	}
}

// handleEvents streams the campaign's progress as server-sent events: a
// "status" snapshot on connect, a "progress" event per finished job, and
// a terminal event named after the final state. The stream ends after
// the terminal event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(w, r)
	if c == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	ch := c.subscribe()
	defer c.unsubscribe(ch)
	s.m.sseSubs.Inc()
	defer s.m.sseSubs.Dec()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	if writeSSE(w, sseEvent{name: "status", data: c.status()}) != nil {
		return
	}
	fl.Flush()

	for {
		select {
		case ev := <-ch:
			if writeSSE(w, ev) != nil {
				return
			}
			fl.Flush()
			if isTerminalEvent(ev.name) {
				return // terminal event delivered
			}
		case <-c.finished:
			// Drain progress that raced with termination, then emit the
			// terminal snapshot — guaranteed even if broadcasts dropped.
			for {
				select {
				case ev := <-ch:
					if writeSSE(w, ev) != nil {
						return
					}
					if isTerminalEvent(ev.name) {
						fl.Flush()
						return
					}
				default:
					st := c.status()
					if writeSSE(w, sseEvent{name: st.State, data: st}) != nil {
						return
					}
					fl.Flush()
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

// cacheStatus is the /v1/cache body: the store index size and this
// process's hit/miss counters, plus (with ?keys=1) the index itself.
type cacheStatus struct {
	// Entries is the number of distinct results the cache can serve.
	Entries int `json:"entries"`
	// Hits and Misses count this process's cache decisions.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Keys is the sorted content-addressed index, present only when the
	// request asked for it.
	Keys []string `json:"keys,omitempty"`
}

func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.cache.Stats()
	st := cacheStatus{Entries: s.cache.Len(), Hits: hits, Misses: misses}
	if r.URL.Query().Get("keys") != "" {
		st.Keys = s.cache.Keys()
	}
	writeJSON(w, http.StatusOK, st)
}
