package server

import (
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simtest"
)

// scrape GETs /metrics through the real mux, runs the body through the
// strict exposition parser (so every scrape in the test doubles as a
// conformance check), and flattens the samples into a map keyed
// "name|k=v|k=v" with labels sorted.
func scrape(t *testing.T, h http.Handler) map[string]float64 {
	t.Helper()
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	fams, err := metrics.ParseExposition(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("scrape failed conformance: %v\n%s", err, rec.Body.String())
	}
	vals := make(map[string]float64)
	for _, f := range fams {
		for _, s := range f.Samples {
			key := s.Name
			labels := make([]string, 0, len(s.Labels))
			for k, v := range s.Labels {
				labels = append(labels, k+"="+v)
			}
			sort.Strings(labels)
			for _, l := range labels {
				key += "|" + l
			}
			vals[key] = s.Value
		}
	}
	return vals
}

// TestMetricsEndToEnd drives a real campaign through the daemon and
// asserts the scrape moves with it: queue depth and the live IPC gauge
// while jobs are in flight, cache misses after the first run, cache
// hits after an identical resubmit, and series cleanup after the
// campaign settles.
func TestMetricsEndToEnd(t *testing.T) {
	r := simtest.New()
	gate := make(chan struct{})
	// Wrap the fake simulator: publish one live sample, then hold the
	// job until the gate opens, so the mid-flight scrape provably sees
	// both the queue depth and the interval-IPC gauge.
	runner := func(o sim.Options) (*sim.Result, error) {
		if o.OnSample != nil {
			o.OnSample(sim.SamplePoint{Cycle: 100, MeasuredCycles: 100, IPC: 2.5, IntervalIPC: 2.5})
		}
		<-gate
		return r.Run(o)
	}
	s := New(Config{Runner: runner, Workers: 4, MaxQueuedJobs: 100})

	baseline := scrape(t, s)
	if v := baseline["mflush_admission_queue_depth"]; v != 0 {
		t.Fatalf("idle queue depth = %v", v)
	}
	if _, ok := baseline["mflush_go_goroutines"]; !ok {
		t.Fatal("mflush_go_goroutines missing from scrape")
	}

	sampledSpec := `{"workloads":["2W1"],"policies":["ICOUNT","MFLUSH"],"seeds":[1,2],"cycles":1000,"interval":100}`
	id := submit(t, s, sampledSpec)

	// Mid-flight: jobs hold the queue open and the first live samples
	// have been published (the runner emits one before blocking).
	simtest.WaitFor(t, 10*time.Second, func() bool {
		vals := scrape(t, s)
		if vals["mflush_admission_queue_depth"] > 0 &&
			vals["mflush_campaign_interval_ipc|campaign="+id] == 2.5 {
			if v := vals["mflush_campaigns|state=running"]; v != 1 {
				t.Fatalf("running campaigns = %v, want 1", v)
			}
			if v := vals["mflush_campaigns_submitted_total"]; v != 1 {
				t.Fatalf("submitted = %v, want 1", v)
			}
			return true
		}
		return false
	}, "mid-flight metrics never appeared; scrape = %v", func() any { return scrape(t, s) })

	close(gate)
	if st := waitState(t, s, id); st != StateDone {
		t.Fatalf("campaign settled %s", st)
	}

	// Settled: the queue drained, the per-campaign IPC series was
	// deleted with its campaign, and all four jobs were cache misses.
	var vals map[string]float64
	simtest.WaitFor(t, 10*time.Second, func() bool {
		vals = scrape(t, s)
		return vals["mflush_admission_queue_depth"] == 0
	}, "queue depth never drained; scrape = %v", func() any { return scrape(t, s) })
	if _, ok := vals["mflush_campaign_interval_ipc|campaign="+id]; ok {
		t.Fatal("per-campaign IPC series not deleted after campaign settled")
	}
	if v := vals["mflush_campaigns|state=done"]; v != 1 {
		t.Fatalf("done campaigns = %v, want 1", v)
	}
	if v := vals["mflush_cache_misses_total"]; v != 4 {
		t.Fatalf("cache misses = %v, want 4", v)
	}
	if v := vals["mflush_cache_hits_total"]; v != 0 {
		t.Fatalf("cache hits = %v, want 0", v)
	}
	if v := vals["mflush_cache_entries"]; v != 4 {
		t.Fatalf("cache entries = %v, want 4", v)
	}

	// Resubmitting the identical spec is served wholly from the cache:
	// hits move, misses don't.
	id2 := submit(t, s, sampledSpec)
	waitState(t, s, id2)
	vals = scrape(t, s)
	if v := vals["mflush_cache_hits_total"]; v != 4 {
		t.Fatalf("cache hits after resubmit = %v, want 4", v)
	}
	if v := vals["mflush_cache_misses_total"]; v != 4 {
		t.Fatalf("cache misses after resubmit = %v, want 4", v)
	}
	if v := vals["mflush_campaigns|state=done"]; v != 2 {
		t.Fatalf("done campaigns = %v, want 2", v)
	}
}

// TestMetricsAdmissionRejected asserts the 429 path bumps the rejected
// counter.
func TestMetricsAdmissionRejected(t *testing.T) {
	r := simtest.New()
	r.Gate = make(chan struct{})
	defer close(r.Gate)
	s := New(Config{Runner: r.Run, MaxQueuedJobs: 5, Workers: 2})
	submit(t, s, specBody)

	code, _ := do(t, s, "POST", "/v1/campaigns", specBody)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-limit submit = %d, want 429", code)
	}
	vals := scrape(t, s)
	if v := vals["mflush_admission_rejected_total"]; v != 1 {
		t.Fatalf("rejected = %v, want 1", v)
	}
}

// TestMetricsSSESubscribers asserts the subscriber gauge tracks open
// event streams.
func TestMetricsSSESubscribers(t *testing.T) {
	r := simtest.New()
	r.Gate = make(chan struct{})
	s := New(Config{Runner: r.Run, Workers: 1})
	id := submit(t, s, specBody)

	done := make(chan struct{})
	req := httptest.NewRequest("GET", "/v1/campaigns/"+id+"/events", nil)
	go func() {
		defer close(done)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req) // returns once the campaign settles
	}()

	simtest.WaitFor(t, 10*time.Second,
		func() bool { return scrape(t, s)["mflush_sse_subscribers"] == 1 },
		"SSE subscriber gauge never rose")
	close(r.Gate)
	waitState(t, s, id)
	<-done
	if v := scrape(t, s)["mflush_sse_subscribers"]; v != 0 {
		t.Fatalf("SSE subscribers after stream closed = %v, want 0", v)
	}
}

// TestDashboardServes asserts /dashboard renders the embedded page.
func TestDashboardServes(t *testing.T) {
	s := New(Config{Runner: simtest.New().Run})
	req := httptest.NewRequest("GET", "/dashboard", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /dashboard = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{"Live interval IPC", "/v1/campaigns", "EventSource", "const CLUSTER = false"} {
		if !strings.Contains(body, want) {
			t.Fatalf("dashboard page missing %q", want)
		}
	}
}
