package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/simtest"
)

// mustUnmarshal decodes JSON or fails the test.
func mustUnmarshal(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("bad JSON %q: %v", data, err)
	}
}

// clusterSpec expands to 8 jobs — enough to shard meaningfully across
// three workers while staying fast under -race.
const clusterSpec = `{"workloads":["2W1","2W3"],"policies":["ICOUNT","MFLUSH"],"seeds":[1,2],"cycles":1000}`

// refAggregates runs spec in a plain single-process daemon and returns
// its aggregate bytes per format plus the records by key — the golden
// output every fleet topology must reproduce byte-for-byte.
func refAggregates(t *testing.T, spec string) (map[string]string, map[string]campaign.Record) {
	t.Helper()
	store, err := campaign.OpenStore(filepath.Join(t.TempDir(), "ref.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	s := New(Config{Store: store, Runner: simtest.New().Run})
	id := submit(t, s, spec)
	if state := waitState(t, s, id); state != StateDone {
		t.Fatalf("reference run state %q", state)
	}
	out := make(map[string]string)
	for _, format := range []string{"json", "csv", "table", "rows"} {
		req := httptest.NewRequest("GET", "/v1/campaigns/"+id+"/result?format="+format, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		out[format] = rec.Body.String()
	}
	recs := make(map[string]campaign.Record)
	for _, key := range store.Keys() {
		r, _ := store.Get(key)
		recs[key] = r
	}
	s.Drain(context.Background())
	return out, recs
}

// severableTransport is an http.RoundTripper that can be cut off, so a
// test can model a machine death (kill -9, network partition): every
// call fails instantly, heartbeats included — unlike a context cancel,
// which models SIGTERM and drains gracefully.
type severableTransport struct {
	severed atomic.Bool
	base    http.RoundTripper
}

// RoundTrip forwards until severed, then fails everything.
func (s *severableTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if s.severed.Load() {
		return nil, errors.New("worker machine is dead")
	}
	return s.base.RoundTrip(r)
}

// testWorker is one in-process fleet worker with both ways to die.
type testWorker struct {
	// drain asks for a graceful SIGTERM-style shutdown: in-flight
	// simulations finish, post, then the worker deregisters.
	drain func()
	// kill models a machine death: all network activity stops at once,
	// so the coordinator must reap the worker's leases after the TTL.
	kill func()
	// exited closes when Run returns.
	exited chan struct{}
}

// startTestWorker runs an in-process fleet worker against base. The
// cleanup closes it down even if the test killed it.
func startTestWorker(t *testing.T, base, name string, r *simtest.Runner, capacity int) *testWorker {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	transport := &severableTransport{base: http.DefaultTransport}
	w := &cluster.Worker{
		Base: base, Name: name, Capacity: capacity,
		Runner: r.Run, LeaseWait: 50 * time.Millisecond,
		Client: &http.Client{Transport: transport},
	}
	tw := &testWorker{
		drain:  cancel,
		kill:   func() { transport.severed.Store(true); cancel() },
		exited: make(chan struct{}),
	}
	go func() {
		defer close(tw.exited)
		if err := w.Run(ctx); err != nil {
			t.Errorf("worker %s: %v", name, err)
		}
	}()
	t.Cleanup(cancel)
	return tw
}

// waitFleet polls until n workers are registered.
func waitFleet(t *testing.T, coord *cluster.Coordinator, n int) {
	t.Helper()
	simtest.WaitFor(t, 10*time.Second, func() bool { return coord.LiveWorkers() == n },
		"fleet never reached %d workers (have %d)", n, func() any { return coord.LiveWorkers() })
}

// localRunnerMustNotRun fails the test if the daemon ever simulates
// locally — used when every job must have gone to the fleet.
func localRunnerMustNotRun(t *testing.T) func(sim.Options) (*sim.Result, error) {
	return func(o sim.Options) (*sim.Result, error) {
		t.Errorf("job %s/%s simulated locally, want fleet", o.Workload.Name, o.Policy)
		return simtest.New().Run(o)
	}
}

// TestClusterShardsAcrossThreeWorkersByteIdentical is the acceptance
// test: a campaign sharded across a 3-worker fleet produces aggregates
// byte-identical to a single-process run, with every job simulated
// exactly once fleet-wide and every record landing in the daemon's
// store.
func TestClusterShardsAcrossThreeWorkersByteIdentical(t *testing.T) {
	want, wantRecs := refAggregates(t, clusterSpec)

	store, err := campaign.OpenStore(filepath.Join(t.TempDir(), "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	coord := cluster.NewCoordinator(cluster.Config{LeaseTTL: 5 * time.Second})
	defer coord.Close()
	s := New(Config{Store: store, Runner: localRunnerMustNotRun(t), Cluster: coord})
	ts := httptest.NewServer(s)
	defer ts.Close()

	runners := []*simtest.Runner{simtest.New(), simtest.New(), simtest.New()}
	for i, r := range runners {
		startTestWorker(t, ts.URL, string(rune('a'+i)), r, 2)
	}
	waitFleet(t, coord, 3)

	sub := postSpec(t, ts, clusterSpec)
	waitDone(t, ts, sub.StatusURL, 30*time.Second, "cluster campaign")

	// Exactly once fleet-wide: 8 distinct jobs, 8 simulations total, no
	// job run twice anywhere.
	total := 0
	for i, r := range runners {
		if r.Max() > 1 {
			t.Errorf("worker %d simulated a job %d times", i, r.Max())
		}
		total += r.Total()
	}
	if total != 8 {
		t.Fatalf("fleet simulated %d jobs for 8 distinct jobs", total)
	}

	// Byte-identical aggregates in every format.
	for format, ref := range want {
		_, body := fetch(t, ts, sub.ResultURL+"?format="+format)
		if string(body) != ref {
			t.Errorf("%s aggregate differs from single-process run:\n%s\nvs\n%s", format, body, ref)
		}
	}

	// The store holds exactly the reference records, byte-for-byte
	// (worker-computed records are indistinguishable from local ones).
	if store.Len() != len(wantRecs) {
		t.Fatalf("store holds %d records, want %d", store.Len(), len(wantRecs))
	}
	for key, ref := range wantRecs {
		got, ok := store.Get(key)
		if !ok {
			t.Fatalf("store missing record %s", key)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("record %s differs from single-process run:\n%+v\nvs\n%+v", key, got, ref)
		}
	}

	// The fleet accounting saw all 8 completions.
	completed := uint64(0)
	for _, w := range coord.Workers() {
		completed += w.Completed
	}
	if completed != 8 {
		t.Errorf("fleet completed counter = %d, want 8", completed)
	}
}

// TestClusterWorkerKillMidCampaignExactlyOnce is the failure half of
// the acceptance test: one of three workers is killed while it holds
// leased jobs mid-campaign; the leases expire, the jobs are re-issued
// to the survivors, and the campaign completes with every job simulated
// (to completion) exactly once and aggregates byte-identical to a
// single-process run.
func TestClusterWorkerKillMidCampaignExactlyOnce(t *testing.T) {
	want, _ := refAggregates(t, clusterSpec)

	store, err := campaign.OpenStore(filepath.Join(t.TempDir(), "results.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	coord := cluster.NewCoordinator(cluster.Config{LeaseTTL: 300 * time.Millisecond})
	defer coord.Close()
	s := New(Config{Store: store, Runner: localRunnerMustNotRun(t), Cluster: coord})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// The doomed worker's simulations block on a gate that only opens
	// after the campaign is over: it leases jobs, starts them, and never
	// finishes one — exactly a process that died mid-simulation.
	doomed := simtest.New()
	doomed.Gate = make(chan struct{})
	doomedWorker := startTestWorker(t, ts.URL, "doomed", doomed, 2)
	waitFleet(t, coord, 1)

	survivors := []*simtest.Runner{simtest.New(), simtest.New()}
	for i, r := range survivors {
		startTestWorker(t, ts.URL, string(rune('b'+i)), r, 2)
	}
	waitFleet(t, coord, 3)

	sub := postSpec(t, ts, clusterSpec)
	// Wait until the doomed worker provably holds work mid-campaign,
	// then kill it: its heartbeats stop, its gated simulations never
	// complete, and after the lease TTL its jobs are re-issued.
	for doomed.Total() == 0 {
		time.Sleep(time.Millisecond)
	}
	doomedWorker.kill()

	waitDone(t, ts, sub.StatusURL, 30*time.Second, "campaign after worker kill")

	// Every one of the 8 jobs ran to completion exactly once, all on the
	// survivors: their totals account for every job, neither ran any job
	// twice, and the campaign finished — so no job was lost or doubled.
	if got := survivors[0].Total() + survivors[1].Total(); got != 8 {
		t.Fatalf("survivors completed %d simulations for 8 jobs", got)
	}
	for i, r := range survivors {
		if r.Max() > 1 {
			t.Errorf("survivor %d simulated a job %d times", i, r.Max())
		}
	}
	if store.Len() != 8 {
		t.Fatalf("store holds %d records, want 8", store.Len())
	}
	// The completion went through the lease-re-issue path, and the fleet
	// metric says so.
	if coord.Requeues() == 0 {
		t.Error("worker kill produced no re-issued leases")
	}

	// And the output is still byte-for-byte the single-process output.
	for format, ref := range want {
		_, body := fetch(t, ts, sub.ResultURL+"?format="+format)
		if string(body) != ref {
			t.Errorf("%s aggregate differs after worker kill:\n%s\nvs\n%s", format, body, ref)
		}
	}

	// Let the killed worker unwind: opening the gate releases its
	// blocked simulations; their late results are duplicates the
	// coordinator discards (the store already has the survivors'
	// byte-identical records).
	close(doomed.Gate)
	select {
	case <-doomedWorker.exited:
	case <-time.After(30 * time.Second):
		t.Fatal("killed worker never unwound after its gate opened")
	}
	if store.Len() != 8 {
		t.Fatalf("late duplicate results changed the store: %d records", store.Len())
	}
}

// TestClusterFallsBackLocalWithoutWorkers: cluster mode with an empty
// fleet degrades to single-process behaviour.
func TestClusterFallsBackLocalWithoutWorkers(t *testing.T) {
	coord := cluster.NewCoordinator(cluster.Config{LeaseTTL: time.Second})
	defer coord.Close()
	r := simtest.New()
	s := New(Config{Runner: r.Run, Cluster: coord})
	id := submit(t, s, specBody)
	if state := waitState(t, s, id); state != StateDone {
		t.Fatalf("state = %q", state)
	}
	if r.Total() != 4 {
		t.Fatalf("local fallback simulated %d jobs, want 4", r.Total())
	}
}

// TestClusterFleetDeathFallsBackLocal: when the entire fleet dies with
// jobs queued and leased, the stranded jobs fall back to the local
// simulator and the campaign still completes.
func TestClusterFleetDeathFallsBackLocal(t *testing.T) {
	coord := cluster.NewCoordinator(cluster.Config{LeaseTTL: 250 * time.Millisecond})
	defer coord.Close()
	local := simtest.New()
	s := New(Config{Runner: local.Run, Cluster: coord})
	ts := httptest.NewServer(s)
	defer ts.Close()

	doomed := simtest.New()
	doomed.Gate = make(chan struct{})
	worker := startTestWorker(t, ts.URL, "doomed", doomed, 2)
	waitFleet(t, coord, 1)

	sub := postSpec(t, ts, clusterSpec)
	for doomed.Total() == 0 {
		time.Sleep(time.Millisecond)
	}
	worker.kill()

	waitDone(t, ts, sub.StatusURL, 30*time.Second, "campaign after fleet death")
	if local.Total() != 8 {
		t.Fatalf("local fallback simulated %d jobs, want all 8", local.Total())
	}
	close(doomed.Gate)
	select {
	case <-worker.exited:
	case <-time.After(30 * time.Second):
		t.Fatal("killed worker never unwound after its gate opened")
	}
}

// TestWorkerDrainOutlastingLeaseTTLKeepsLeases: a SIGTERM'd worker
// whose in-flight simulation runs longer than the lease TTL must keep
// heartbeating through the drain — otherwise the coordinator reaps it
// mid-drain and re-runs its jobs elsewhere, breaking exactly-once.
func TestWorkerDrainOutlastingLeaseTTLKeepsLeases(t *testing.T) {
	coord := cluster.NewCoordinator(cluster.Config{LeaseTTL: 300 * time.Millisecond})
	defer coord.Close()
	s := New(Config{Runner: localRunnerMustNotRun(t), Cluster: coord})
	ts := httptest.NewServer(s)
	defer ts.Close()

	slow := simtest.New()
	slow.Gate = make(chan struct{})
	worker := startTestWorker(t, ts.URL, "slow", slow, 1)
	waitFleet(t, coord, 1)

	sub := postSpec(t, ts, `{"workloads":["2W1"],"policies":["ICOUNT"],"seeds":[1],"cycles":1000}`)
	for slow.Total() == 0 {
		time.Sleep(time.Millisecond)
	}
	// SIGTERM the worker mid-simulation, then hold the simulation well
	// past several lease TTLs before letting it finish.
	worker.drain()
	time.Sleep(time.Second)
	close(slow.Gate)
	select {
	case <-worker.exited:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never finished draining")
	}

	waitDone(t, ts, sub.StatusURL, 10*time.Second, "campaign after slow drain")
	// The drained worker delivered its own result: nothing was reaped,
	// re-issued or simulated twice.
	if n := coord.Requeues(); n != 0 {
		t.Fatalf("slow drain lost its lease: %d requeues", n)
	}
	if slow.Total() != 1 {
		t.Fatalf("job simulated %d times", slow.Total())
	}
}

// TestWorkersEndpointsLifecycle exercises the /v1/workers HTTP surface
// directly: register, list, heartbeat-lease, deregister, and the 404
// for dropped IDs.
func TestWorkersEndpointsLifecycle(t *testing.T) {
	coord := cluster.NewCoordinator(cluster.Config{LeaseTTL: time.Minute})
	defer coord.Close()
	s := New(Config{Runner: simtest.New().Run, Cluster: coord})

	code, resp := do(t, s, "POST", "/v1/workers", `{"name":"wtest","capacity":3}`)
	if code != 201 {
		t.Fatalf("register = %d (%v)", code, resp)
	}
	id := resp["id"].(string)
	if resp["lease_ttl_ms"].(float64) != 60000 {
		t.Fatalf("lease_ttl_ms = %v", resp["lease_ttl_ms"])
	}

	code, resp = do(t, s, "GET", "/v1/workers", "")
	if code != 200 {
		t.Fatalf("list = %d", code)
	}
	workers := resp["workers"].([]any)
	if len(workers) != 1 || workers[0].(map[string]any)["name"] != "wtest" {
		t.Fatalf("fleet = %v", resp)
	}

	code, resp = do(t, s, "POST", "/v1/workers/"+id+"/lease", `{"max":2}`)
	if code != 200 {
		t.Fatalf("lease = %d (%v)", code, resp)
	}
	if jobs := resp["jobs"].([]any); len(jobs) != 0 {
		t.Fatalf("empty queue leased %v", jobs)
	}

	if code, _ = do(t, s, "DELETE", "/v1/workers/"+id, ""); code != 200 {
		t.Fatalf("deregister = %d", code)
	}
	code, resp = do(t, s, "POST", "/v1/workers/"+id+"/lease", `{"max":1}`)
	if code != 404 {
		t.Fatalf("lease after deregister = %d (%v), want 404", code, resp)
	}

	// A plain daemon (no -cluster) serves no worker endpoints at all.
	plain := New(Config{Runner: simtest.New().Run})
	if code, _ := do(t, plain, "POST", "/v1/workers", `{"name":"x"}`); code != 404 {
		t.Fatalf("plain daemon register = %d, want 404", code)
	}
}
