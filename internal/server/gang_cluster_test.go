package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/simtest"
)

// gangClusterSpec expands to six jobs sharing one gang key (one
// workload, one window; policies × seeds vary) — so a width-4 gang
// worker that leases the whole queue at once must batch them [4, 2].
const gangClusterSpec = `{"workloads":["2W1"],"policies":["ICOUNT","FLUSH-S30","MFLUSH"],"seeds":[1,2],"cycles":1500,"warmup":500}`

// gateTransport holds every lease call (long-polls and heartbeats) until
// the gate closes, while letting registration and result posts through —
// so a test can fill the coordinator's queue before the worker's first
// lease, making the lease batch (and therefore the gang grouping)
// deterministic.
type gateTransport struct {
	gate chan struct{}
	base http.RoundTripper
}

func (g *gateTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if strings.HasSuffix(r.URL.Path, "/lease") {
		<-g.gate
	}
	return g.base.RoundTrip(r)
}

// TestGangWorkerCacheByteIdenticalAcrossRestart is the gang/cluster
// interplay acceptance test: a campaign executed by a gang-batching
// fleet worker running the real simulator lands in the daemon's
// content-addressed store byte-identical to solo local execution, and a
// daemon restarted on that store serves the re-submitted campaign
// entirely from cache — proving gang execution changes nothing the
// cache layer can see.
func TestGangWorkerCacheByteIdenticalAcrossRestart(t *testing.T) {
	// Reference: the same jobs simulated solo (sim.Run) through the
	// plain scheduler.
	spec, err := campaign.ReadSpec(strings.NewReader(gangClusterSpec))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	refStore, err := campaign.OpenStore(filepath.Join(t.TempDir(), "ref.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer refStore.Close()
	refRecs, err := (&campaign.Scheduler{Workers: 2}).Run(context.Background(), jobs, refStore)
	if err != nil {
		t.Fatal(err)
	}
	wantRec := make(map[string]string, len(refRecs))
	for _, rec := range refRecs {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		wantRec[rec.Key] = string(b)
	}

	// --- Incarnation 1: daemon + gang worker simulating for real. ---
	storePath := filepath.Join(t.TempDir(), "results.jsonl")
	store1, err := campaign.OpenStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	coord1, err := cluster.OpenCoordinator(cluster.Config{
		LeaseTTL: 10 * time.Second, StateDir: t.TempDir(), Persisted: persistedBy(store1),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(Config{Store: store1, Runner: localRunnerMustNotRun(t), Cluster: coord1})
	ts1 := httptest.NewServer(srv1)

	var mu sync.Mutex
	var batches []int
	gate := &gateTransport{gate: make(chan struct{}), base: http.DefaultTransport}
	w := &cluster.Worker{
		Base: ts1.URL, Name: "gang-worker", Capacity: len(jobs), GangWidth: 4,
		Runner: sim.Run,
		GangRunner: func(opts []sim.Options) ([]*sim.Result, error) {
			mu.Lock()
			batches = append(batches, len(opts))
			mu.Unlock()
			return sim.RunGang(opts)
		},
		LeaseWait: 50 * time.Millisecond,
		Client:    &http.Client{Transport: gate},
	}
	wctx, wcancel := context.WithCancel(context.Background())
	wexited := make(chan struct{})
	go func() {
		defer close(wexited)
		if err := w.Run(wctx); err != nil {
			t.Errorf("gang worker: %v", err)
		}
	}()
	waitFleet(t, coord1, 1)

	// Queue the whole campaign before releasing the worker's first lease,
	// so it leases all six jobs in one batch and the gang grouping is
	// deterministic.
	sub := postSpec(t, ts1, gangClusterSpec)
	simtest.WaitFor(t, 30*time.Second, func() bool { return coord1.Pending() >= len(jobs) },
		"queue reached %d of %d jobs", func() any { return coord1.Pending() }, len(jobs))
	close(gate.gate)
	if state := waitState(t, srv1, sub.ID); state != StateDone {
		t.Fatalf("gang-executed campaign state %q", state)
	}
	var want map[string]string = map[string]string{}
	for _, format := range []string{"json", "csv", "table", "rows"} {
		_, body := fetch(t, ts1, sub.ResultURL+"?format="+format)
		want[format] = string(body)
	}

	mu.Lock()
	gotBatches := append([]int(nil), batches...)
	mu.Unlock()
	// The two batches run on concurrent goroutines, so only the batch
	// sizes (not their recording order) are deterministic.
	sort.Ints(gotBatches)
	if len(gotBatches) != 2 || gotBatches[0] != 2 || gotBatches[1] != 4 {
		t.Errorf("gang batches = %v, want sizes {2, 4} from one six-job lease at width 4", gotBatches)
	}
	for _, j := range jobs {
		rec, ok := store1.Get(j.Key())
		if !ok {
			t.Fatalf("store is missing gang-executed record %s", j)
		}
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != wantRec[j.Key()] {
			t.Errorf("%s: gang-executed record differs from solo\n gang: %s\n solo: %s", j, b, wantRec[j.Key()])
		}
	}

	// Graceful shutdown: worker drains, daemon closes cleanly.
	wcancel()
	<-wexited
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), 10*time.Second)
	_ = srv1.Drain(drainCtx)
	cancelDrain()
	ts1.Close()
	coord1.Close()
	store1.Close()

	// --- Incarnation 2: restart on the same store, no fleet. The
	// re-submitted campaign must be served entirely from the cache the
	// gang worker filled — no simulation anywhere. ---
	store2, err := campaign.OpenStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if store2.Len() != len(jobs) {
		t.Fatalf("restarted store holds %d records, want %d", store2.Len(), len(jobs))
	}
	srv2 := New(Config{Store: store2, Runner: localRunnerMustNotRun(t)})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	sub2 := postSpec(t, ts2, gangClusterSpec)
	if state := waitState(t, srv2, sub2.ID); state != StateDone {
		t.Fatalf("cached re-submission state %q", state)
	}
	for format, ref := range want {
		_, body := fetch(t, ts2, sub2.ResultURL+"?format="+format)
		if string(body) != ref {
			t.Errorf("%s aggregate differs across restart:\n%s\nvs\n%s", format, body, ref)
		}
	}
}
