package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/simtest"
)

// persistedBy adapts a store into the coordinator's Persisted check.
func persistedBy(store *campaign.Store) func(string) bool {
	return func(key string) bool {
		_, ok := store.Get(key)
		return ok
	}
}

// crashRunner fails every local simulation: after an in-process
// coordinator Crash, dispatches fall back to the local path, and a
// crashed daemon must not quietly complete jobs there.
func crashRunner(sim.Options) (*sim.Result, error) {
	return nil, errors.New("daemon crashed; no local simulation")
}

// TestRestartResumesCampaignByteIdentical is the in-process acceptance
// test for the durable queue: a daemon killed mid-campaign — some jobs
// completed, some leased to a worker that dies with it, some still
// pending — restarts with the same state directory, resumes the
// campaign on its own, re-simulates only the missing jobs exactly once,
// and ends with a store and aggregates byte-identical to a run that was
// never interrupted.
func TestRestartResumesCampaignByteIdentical(t *testing.T) {
	want, wantRecs := refAggregates(t, clusterSpec)
	stateDir := t.TempDir()
	storePath := filepath.Join(t.TempDir(), "results.jsonl")

	// --- Incarnation 1: crash with exactly 3 of 8 jobs completed. ---
	store1, err := campaign.OpenStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	coord1, err := cluster.OpenCoordinator(cluster.Config{
		LeaseTTL: 2 * time.Second, StateDir: stateDir, Persisted: persistedBy(store1),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := New(Config{Store: store1, Runner: crashRunner, Cluster: coord1})
	ts1 := httptest.NewServer(srv1)

	// The worker's runner completes three simulations, then blocks every
	// later one until the test ends — so the crash provably lands
	// mid-campaign with jobs leased and in flight.
	r1 := simtest.New()
	var started atomic.Int32
	blocked := make(chan struct{})
	limited := func(o sim.Options) (*sim.Result, error) {
		if started.Add(1) > 3 {
			<-blocked
		}
		return r1.Run(o)
	}
	transport := &severableTransport{base: http.DefaultTransport}
	w1 := &cluster.Worker{
		Base: ts1.URL, Name: "w1", Capacity: 2,
		Runner: limited, LeaseWait: 50 * time.Millisecond,
		Client: &http.Client{Transport: transport},
	}
	w1ctx, w1cancel := context.WithCancel(context.Background())
	w1exited := make(chan struct{})
	go func() {
		defer close(w1exited)
		_ = w1.Run(w1ctx)
	}()
	defer func() {
		close(blocked)
		w1cancel()
		<-w1exited
	}()
	waitFleet(t, coord1, 1)

	postSpec(t, ts1, clusterSpec)
	simtest.WaitFor(t, 30*time.Second, func() bool { return store1.Len() >= 3 },
		"store reached %d records, want 3 before the crash", func() any { return store1.Len() })

	// Crash: the worker's machine dies with the daemon, the coordinator
	// abandons its WAL mid-state, the listener vanishes.
	transport.severed.Store(true)
	w1cancel()
	coord1.Crash()
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), 10*time.Second)
	_ = srv1.Drain(drainCtx)
	cancelDrain()
	ts1.Close()
	store1.Close()
	if n := store1.Len(); n != 3 {
		t.Fatalf("crash landed with %d records in the store, want 3", n)
	}

	// --- Incarnation 2: same state dir and store, fresh everything. ---
	store2, err := campaign.OpenStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	coord2, err := cluster.OpenCoordinator(cluster.Config{
		LeaseTTL: 10 * time.Second, StateDir: stateDir, Persisted: persistedBy(store2),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	recovered := coord2.Recovered()
	if got := len(recovered.Jobs); got != 5 {
		t.Fatalf("recovered %d jobs, want the 5 unfinished ones", got)
	}
	if got := len(recovered.Orphans); got != 3 {
		t.Errorf("recovered %d acknowledged results, want 3", got)
	}

	srv2 := New(Config{Store: store2, Runner: localRunnerMustNotRun(t), Cluster: coord2})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	r2 := simtest.New()
	startTestWorker(t, ts2.URL, "w2", r2, 4)
	waitFleet(t, coord2, 1)

	// The resumed campaign drains without any client involvement.
	simtest.WaitFor(t, 30*time.Second, func() bool { return store2.Len() >= len(wantRecs) },
		"resumed campaign stalled: %d of %d records", func() any { return store2.Len() }, len(wantRecs))

	// Exactly-once: incarnation 2 simulated precisely the 5 missing
	// jobs, none of them twice, and never re-ran a completed one.
	if got := r2.Total(); got != 5 {
		t.Errorf("restart re-simulated %d jobs, want exactly the 5 missing", got)
	}
	if r2.Max() > 1 {
		t.Errorf("restart simulated a job %d times", r2.Max())
	}
	for key, wantRec := range wantRecs {
		got, ok := store2.Get(key)
		if !ok {
			t.Fatalf("resumed store is missing record %s", key)
		}
		if !reflect.DeepEqual(got, wantRec) {
			t.Errorf("record %s differs from the uninterrupted run:\n%+v\nvs\n%+v", key, got, wantRec)
		}
	}

	// A client re-submitting the interrupted spec gets the aggregates of
	// an uninterrupted run, byte for byte, all from cache.
	sub := postSpec(t, ts2, clusterSpec)
	if state := waitState(t, srv2, sub.ID); state != StateDone {
		t.Fatalf("re-submitted campaign state %q", state)
	}
	for format, ref := range want {
		_, body := fetch(t, ts2, sub.ResultURL+"?format="+format)
		if string(body) != ref {
			t.Errorf("%s aggregate differs after restart resume:\n%s\nvs\n%s", format, body, ref)
		}
	}
	if got := r2.Total(); got != 5 {
		t.Errorf("re-submission after resume ran %d extra simulations", got-5)
	}
}

// swappableHandler serves whatever handler was last stored — the test
// double for a daemon that is down (503s) and later comes back on the
// same address.
type swappableHandler struct {
	h atomic.Pointer[http.Handler]
}

func (s *swappableHandler) set(h http.Handler) { s.h.Store(&h) }
func (s *swappableHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load()).ServeHTTP(w, r)
}

// daemonDown is the not-ready handler: everything 503s, like a port
// with nothing accepting yet behind a proxy.
var daemonDown = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	http.Error(w, `{"error":"daemon not up"}`, http.StatusServiceUnavailable)
})

// TestWorkerStartedBeforeDaemonJoinsFleet: a worker launched while its
// daemon is still down must keep retrying registration with backoff and
// join the fleet on its own once the daemon arrives — then actually run
// jobs.
func TestWorkerStartedBeforeDaemonJoinsFleet(t *testing.T) {
	swap := &swappableHandler{}
	swap.set(daemonDown)
	ts := httptest.NewServer(swap)
	defer ts.Close()

	r := simtest.New()
	startTestWorker(t, ts.URL, "early", r, 1)
	time.Sleep(30 * time.Millisecond) // let registration fail at least once

	coord := cluster.NewCoordinator(cluster.Config{LeaseTTL: time.Second})
	defer coord.Close()
	s := New(Config{Runner: localRunnerMustNotRun(t), Cluster: coord})
	swap.set(s)
	waitFleet(t, coord, 1)

	sub := postSpec(t, ts, `{"workloads":["2W1"],"policies":["ICOUNT"],"seeds":[1],"cycles":1000}`)
	if state := waitState(t, s, sub.ID); state != StateDone {
		t.Fatalf("campaign state %q", state)
	}
	if r.Total() != 1 {
		t.Errorf("early worker ran %d jobs, want 1", r.Total())
	}
}

// TestWorkerRidesOutDaemonRestart: a worker mid-fleet when its daemon
// dies must back off through the outage, re-register with the restarted
// daemon (fresh epoch, so its old ID 404s), and serve the new
// incarnation's campaigns.
func TestWorkerRidesOutDaemonRestart(t *testing.T) {
	swap := &swappableHandler{}
	coord1 := cluster.NewCoordinator(cluster.Config{LeaseTTL: time.Second})
	s1 := New(Config{Runner: localRunnerMustNotRun(t), Cluster: coord1})
	swap.set(s1)
	ts := httptest.NewServer(swap)
	defer ts.Close()

	r := simtest.New()
	startTestWorker(t, ts.URL, "steady", r, 2)
	waitFleet(t, coord1, 1)

	// Daemon dies: the address answers 503 while it is gone.
	swap.set(daemonDown)
	coord1.Crash()
	_ = s1.Drain(context.Background())

	// It comes back as a new incarnation (new coordinator epoch). The
	// worker's heartbeats and leases fail through the outage; once the
	// new daemon answers, its stale ID 404s and it re-registers.
	coord2 := cluster.NewCoordinator(cluster.Config{LeaseTTL: time.Second})
	defer coord2.Close()
	s2 := New(Config{Runner: localRunnerMustNotRun(t), Cluster: coord2})
	swap.set(s2)
	waitFleet(t, coord2, 1)

	sub := postSpec(t, ts, `{"workloads":["2W1"],"policies":["MFLUSH"],"seeds":[7],"cycles":1000}`)
	if state := waitState(t, s2, sub.ID); state != StateDone {
		t.Fatalf("campaign after daemon restart: state %q", state)
	}
	if r.Max() > 1 {
		t.Errorf("worker re-ran a job %d times across the restart", r.Max())
	}
}

// TestDrainDuringRecoveryLeaksNothing: draining a daemon while its
// recovery dispatcher is still waiting for a fleet must stop the
// dispatcher cleanly — no goroutine may outlive Drain, and the WAL must
// still hold the jobs for the next boot.
func TestDrainDuringRecoveryLeaksNothing(t *testing.T) {
	stateDir := t.TempDir()
	// Seed the WAL with a pending campaign via a crashed incarnation.
	c1, err := cluster.OpenCoordinator(cluster.Config{LeaseTTL: time.Minute, StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Register("w", 1); err != nil {
		t.Fatal(err)
	}
	jobs, err := campaign.Spec{Workloads: []string{"2W1"}, Policies: []string{"ICOUNT", "MFLUSH"}, Seeds: []uint64{1}, Cycles: 1000}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		j := j
		go c1.Dispatch(context.Background(), j)
		simtest.WaitFor(t, 5*time.Second, func() bool { return c1.Pending() == i+1 },
			"job %d never queued", i)
	}
	c1.Crash()

	before := runtime.NumGoroutine()
	coord, err := cluster.OpenCoordinator(cluster.Config{
		// A lease TTL far longer than the test: only a working
		// cancellation path lets Drain return promptly.
		LeaseTTL: time.Hour, StateDir: stateDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(coord.Recovered().Jobs); got != len(jobs) {
		t.Fatalf("recovered %d jobs, want %d", got, len(jobs))
	}
	s := New(Config{Runner: crashRunner, Cluster: coord})
	time.Sleep(10 * time.Millisecond) // let the recovery dispatcher start waiting for a fleet
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain during recovery: %v", err)
	}
	coord.Close()

	simtest.WaitFor(t, 10*time.Second, func() bool {
		if runtime.NumGoroutine() <= before+3 {
			return true
		}
		runtime.GC()
		return false
	}, "goroutines leaked across drain-during-recovery: %d before, %d after:\n%s",
		before, func() any { return runtime.NumGoroutine() }, func() any {
			var buf strings.Builder
			pprof.Lookup("goroutine").WriteTo(&buf, 1)
			return buf.String()
		})

	// The drained daemon never ran the jobs; they must still be in the
	// WAL for the next incarnation.
	c3, err := cluster.OpenCoordinator(cluster.Config{LeaseTTL: time.Minute, StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if got := len(c3.Recovered().Jobs); got != len(jobs) {
		t.Errorf("WAL holds %d jobs after an idle drain, want %d", got, len(jobs))
	}
}

// TestRetryAfterHeaderIsPositiveSeconds: a 429 must carry a Retry-After
// computed from queue state — a positive integer number of seconds, not
// a constant.
func TestRetryAfterHeaderIsPositiveSeconds(t *testing.T) {
	r := simtest.New()
	r.Gate = make(chan struct{})
	s := New(Config{Runner: r.Run, Workers: 2, MaxQueuedJobs: 2})
	// Fill the queue with two gated jobs.
	submit(t, s, `{"workloads":["2W1"],"policies":["ICOUNT","MFLUSH"],"seeds":[1],"cycles":1000}`)

	req := httptest.NewRequest("POST", "/v1/campaigns",
		strings.NewReader(`{"workloads":["2W3"],"policies":["ICOUNT"],"seeds":[2],"cycles":1000}`))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		dump, _ := httputil.DumpResponse(rec.Result(), true)
		t.Fatalf("full queue returned %d, want 429:\n%s", rec.Code, dump)
	}
	header := rec.Header().Get("Retry-After")
	secs, err := strconv.Atoi(header)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer number of seconds", header)
	}

	close(r.Gate)
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = s.Drain(drainCtx)
}

// TestRetryAfterEstimateFromDrainRate pins the arithmetic: the estimate
// is need-over-rate, ceilinged, clamped to [1, 60].
func TestRetryAfterEstimateFromDrainRate(t *testing.T) {
	now := time.Now()
	var s Server
	// 64 completions, one every 500ms: a drain rate of 2 jobs/second.
	for i := 0; i < len(s.drainTimes); i++ {
		s.drainTimes[i] = now.Add(-time.Duration(len(s.drainTimes)-i) * 500 * time.Millisecond)
	}
	s.drainIdx = 0
	s.drainCount = len(s.drainTimes)
	for _, tc := range []struct{ need, want int }{
		{1, 1},     // sub-second drain rounds up to the floor
		{10, 5},    // 10 jobs at 2/s
		{60, 30},   // 60 jobs at 2/s
		{1000, 60}, // ceiling: never park a client for more than a minute
	} {
		if got := s.retryAfterLocked(tc.need, now); got != tc.want {
			t.Errorf("retryAfter(need=%d) = %d, want %d", tc.need, got, tc.want)
		}
	}
	var fresh Server
	if got := fresh.retryAfterLocked(5, now); got != 1 {
		t.Errorf("retryAfter with no history = %d, want the 1s floor", got)
	}
}
