package server

import (
	"encoding/json"
	"fmt"
	"io"
)

// sseEvent is one server-sent event: a name and a JSON-marshallable
// payload (API.md documents each event's schema).
type sseEvent struct {
	name string
	data any
}

// writeSSE encodes one event in the text/event-stream framing: an
// "event:" line naming the event, a single "data:" line of JSON, and a
// blank line terminator. The payloads are single-line JSON, so the
// multi-line data continuation rules of the SSE spec never apply.
func writeSSE(w io.Writer, ev sseEvent) error {
	body, err := json.Marshal(ev.data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, body)
	return err
}
