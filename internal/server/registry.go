package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/campaign"
)

// Campaign lifecycle states as reported by the status API. A campaign
// is born running (admission control happens before it exists) and ends
// in exactly one of the three terminal states.
const (
	// StateRunning marks a campaign whose jobs are still being scheduled
	// or simulated.
	StateRunning = "running"
	// StateDone marks a campaign whose every job completed; its aggregate
	// is available from the result endpoint.
	StateDone = "done"
	// StateFailed marks a campaign stopped by a simulation error: the
	// first failure cancels the campaign's remaining jobs (results
	// already simulated stay in the cache).
	StateFailed = "failed"
	// StateCanceled marks a campaign stopped by DELETE or daemon drain;
	// jobs already simulated are in the result cache, the rest never ran.
	StateCanceled = "canceled"
)

// Status is the wire form of one campaign's state, served by the list
// and status endpoints and embedded in terminal SSE events.
type Status struct {
	// ID names the campaign ("c000001", ...); IDs are per-process.
	ID string `json:"id"`
	// State is one of StateRunning, StateDone, StateFailed, StateCanceled.
	State string `json:"state"`
	// Jobs is the campaign's total job count after spec expansion.
	Jobs int `json:"jobs"`
	// Completed counts jobs finished successfully, including cache hits.
	Completed int `json:"completed"`
	// Cached counts the subset of Completed served by the result cache
	// (store hits and single-flight joins) without a fresh simulation.
	Cached int `json:"cached"`
	// Failed counts jobs whose simulation returned an error.
	Failed int `json:"failed"`
	// Error is the first failure message, empty unless State is "failed".
	Error string `json:"error,omitempty"`
	// Created is when the campaign was admitted, RFC 3339 with ns.
	Created time.Time `json:"created"`
}

// run is one admitted campaign: its immutable inputs, its mutable
// progress counters, and its SSE subscribers.
type run struct {
	id      string
	jobs    []campaign.Job
	created time.Time
	cancel  context.CancelFunc
	// charged holds the keys of jobs that occupy admission-queue slots
	// (uncached at submit); slots are released as these jobs finish.
	// Only the serialised progress callback and the post-settle cleanup
	// touch it.
	charged map[string]bool
	// finished closes when the campaign reaches a terminal state; SSE
	// handlers select on it so terminal events are never missed.
	finished chan struct{}

	mu        sync.Mutex
	state     string
	completed int
	cached    int
	failed    int
	errMsg    string
	cells     []campaign.Cell
	subs      map[chan sseEvent]struct{}
}

func newRun(id string, jobs []campaign.Job, now time.Time) *run {
	return &run{
		id: id, jobs: jobs, created: now,
		finished: make(chan struct{}),
		state:    StateRunning,
		subs:     make(map[chan sseEvent]struct{}),
	}
}

// status snapshots the campaign for the API.
func (c *run) status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked()
}

func (c *run) statusLocked() Status {
	return Status{
		ID: c.id, State: c.state, Jobs: len(c.jobs),
		Completed: c.completed, Cached: c.cached, Failed: c.failed,
		Error: c.errMsg, Created: c.created,
	}
}

// progressEvent is the data payload of one SSE "progress" event.
type progressEvent struct {
	// Job names the job that just finished (or failed).
	Job string `json:"job"`
	// Cached reports that the job was served by the result cache.
	Cached bool `json:"cached"`
	// Error is the job's failure, if any.
	Error string `json:"error,omitempty"`
	// Completed/Cached/Failed totals after this job, out of Jobs.
	Totals Status `json:"totals"`
}

// onProgress folds one scheduler progress report into the counters and
// broadcasts it to SSE subscribers. The scheduler calls it serially.
func (c *run) onProgress(p campaign.Progress) {
	c.mu.Lock()
	if p.Err != nil {
		c.failed++
	} else {
		c.completed++
		if p.Cached {
			c.cached++
		}
	}
	ev := progressEvent{Job: p.Job.String(), Cached: p.Cached, Totals: c.statusLocked()}
	if p.Err != nil {
		ev.Error = p.Err.Error()
	}
	c.broadcastLocked(sseEvent{name: "progress", data: ev})
	c.mu.Unlock()
}

// finish moves the campaign to its terminal state, stores the aggregate
// when it completed, broadcasts the terminal event and releases waiters.
func (c *run) finish(records []campaign.Record, err error) {
	c.mu.Lock()
	switch {
	case err == nil:
		c.state = StateDone
		c.cells = campaign.Aggregate(records)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		c.state = StateCanceled
	default:
		c.state = StateFailed
		c.errMsg = err.Error()
	}
	c.broadcastLocked(sseEvent{name: c.state, data: c.statusLocked()})
	c.mu.Unlock()
	close(c.finished)
}

// subscribe registers an SSE listener. The buffer covers every event the
// campaign can still emit, so broadcasts never block the scheduler; the
// terminal event is additionally guaranteed through the finished channel.
func (c *run) subscribe() chan sseEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan sseEvent, len(c.jobs)+8)
	c.subs[ch] = struct{}{}
	return ch
}

func (c *run) unsubscribe(ch chan sseEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.subs, ch)
}

// broadcastLocked fans an event out without blocking: a subscriber that
// somehow stopped draining loses intermediate progress events but still
// observes the terminal state via the finished channel.
func (c *run) broadcastLocked(ev sseEvent) {
	for ch := range c.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}
