package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// isTerminalEvent reports whether an SSE event name ends the stream:
// anything that is not a snapshot, a progress report or a live sample
// is one of the terminal states (done, failed, canceled).
func isTerminalEvent(name string) bool {
	return name != "status" && name != "progress" && name != "sample"
}

// Campaign lifecycle states as reported by the status API. A campaign
// is born running (admission control happens before it exists) and ends
// in exactly one of the three terminal states.
const (
	// StateRunning marks a campaign whose jobs are still being scheduled
	// or simulated.
	StateRunning = "running"
	// StateDone marks a campaign whose every job completed; its aggregate
	// is available from the result endpoint.
	StateDone = "done"
	// StateFailed marks a campaign stopped by a simulation error: the
	// first failure cancels the campaign's remaining jobs (results
	// already simulated stay in the cache).
	StateFailed = "failed"
	// StateCanceled marks a campaign stopped by DELETE or daemon drain;
	// jobs already simulated are in the result cache, the rest never ran.
	StateCanceled = "canceled"
)

// Status is the wire form of one campaign's state, served by the list
// and status endpoints and embedded in terminal SSE events.
type Status struct {
	// ID names the campaign ("c000001", ...); IDs are per-process.
	ID string `json:"id"`
	// State is one of StateRunning, StateDone, StateFailed, StateCanceled.
	State string `json:"state"`
	// Jobs is the campaign's total job count after spec expansion.
	Jobs int `json:"jobs"`
	// Completed counts jobs finished successfully, including cache hits.
	Completed int `json:"completed"`
	// Cached counts the subset of Completed served by the result cache
	// (store hits and single-flight joins) without a fresh simulation.
	Cached int `json:"cached"`
	// Failed counts jobs whose simulation returned an error.
	Failed int `json:"failed"`
	// Error is the first failure message, empty unless State is "failed".
	Error string `json:"error,omitempty"`
	// Created is when the campaign was admitted, RFC 3339 with ns.
	Created time.Time `json:"created"`
}

// run is one admitted campaign: its immutable inputs, its mutable
// progress counters, and its SSE subscribers.
type run struct {
	id      string
	jobs    []campaign.Job
	created time.Time
	cancel  context.CancelFunc
	// charged holds the keys of jobs that occupy admission-queue slots
	// (uncached at submit); slots are released as these jobs finish.
	// Only the serialised progress callback and the post-settle cleanup
	// touch it.
	charged map[string]bool
	// jobNames maps sampled jobs' keys to display names for the sample
	// SSE events; nil when the campaign requested no sampling.
	jobNames map[string]string
	// sampleBudget is the expected number of live samples, used to size
	// SSE subscriber buffers so samples don't crowd out progress events.
	sampleBudget int
	// finished closes when the campaign reaches a terminal state; SSE
	// handlers select on it so terminal events are never missed.
	finished chan struct{}
	// ipc, for sampled campaigns, is this run's pre-resolved
	// mflush_campaign_interval_ipc series; onSample mirrors the latest
	// interval IPC into it (nil — a no-op — when nothing is sampled).
	ipc *metrics.Gauge

	mu        sync.Mutex
	state     string
	completed int
	cached    int
	failed    int
	errMsg    string
	cells     []campaign.Cell
	subs      map[chan sseEvent]struct{}
}

func newRun(id string, jobs []campaign.Job, now time.Time) *run {
	c := &run{
		id: id, jobs: jobs, created: now,
		finished: make(chan struct{}),
		state:    StateRunning,
		subs:     make(map[chan sseEvent]struct{}),
	}
	// Each sampled job fires Cycles/Interval times; budget the SSE
	// buffers for the whole series, within reason. Saturate in uint64
	// before converting: a hostile-but-valid spec (cycles 2^63,
	// interval 1) must clamp to the cap, not overflow int negative and
	// panic the channel make in subscribe.
	const maxSampleBudget = 4096
	var budget uint64
	for _, j := range jobs {
		if j.Interval > 0 {
			if c.jobNames == nil {
				c.jobNames = make(map[string]string)
			}
			c.jobNames[j.Key()] = j.String()
			if n := j.Cycles / j.Interval; n > maxSampleBudget {
				budget = maxSampleBudget
			} else if budget += n; budget > maxSampleBudget {
				budget = maxSampleBudget
			}
		}
	}
	c.sampleBudget = int(budget)
	return c
}

// sampledKeys returns the keys of the campaign's sampled jobs — the
// sample-hub subscription set.
func (c *run) sampledKeys() []string {
	keys := make([]string, 0, len(c.jobNames))
	for k := range c.jobNames {
		keys = append(keys, k)
	}
	return keys
}

// sampleEvent is the data payload of one SSE "sample" event: a live
// interval sample from a job simulating right now.
type sampleEvent struct {
	// Job names the sampled job (Job.String form).
	Job string `json:"job"`
	// Key is the job's content hash, matching the record it will land in.
	Key string `json:"key"`
	// Sample is the interval digest (sim.SamplePoint schema).
	Sample sim.SamplePoint `json:"sample"`
}

// onSample broadcasts one live sample to the campaign's SSE
// subscribers. It runs on the simulating goroutine; the broadcast is
// non-blocking, so a slow subscriber drops samples rather than stalling
// the simulation.
func (c *run) onSample(key string, p sim.SamplePoint) {
	c.ipc.Set(p.IntervalIPC)
	c.mu.Lock()
	c.broadcastLocked(sseEvent{name: "sample", data: sampleEvent{
		Job: c.jobNames[key], Key: key, Sample: p,
	}})
	c.mu.Unlock()
}

// status snapshots the campaign for the API.
func (c *run) status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.statusLocked()
}

func (c *run) statusLocked() Status {
	return Status{
		ID: c.id, State: c.state, Jobs: len(c.jobs),
		Completed: c.completed, Cached: c.cached, Failed: c.failed,
		Error: c.errMsg, Created: c.created,
	}
}

// progressEvent is the data payload of one SSE "progress" event.
type progressEvent struct {
	// Job names the job that just finished (or failed).
	Job string `json:"job"`
	// Cached reports that the job was served by the result cache.
	Cached bool `json:"cached"`
	// Error is the job's failure, if any.
	Error string `json:"error,omitempty"`
	// Completed/Cached/Failed totals after this job, out of Jobs.
	Totals Status `json:"totals"`
}

// onProgress folds one scheduler progress report into the counters and
// broadcasts it to SSE subscribers. The scheduler calls it serially.
func (c *run) onProgress(p campaign.Progress) {
	c.mu.Lock()
	if p.Err != nil {
		c.failed++
	} else {
		c.completed++
		if p.Cached {
			c.cached++
		}
	}
	ev := progressEvent{Job: p.Job.String(), Cached: p.Cached, Totals: c.statusLocked()}
	if p.Err != nil {
		ev.Error = p.Err.Error()
	}
	c.broadcastLocked(sseEvent{name: "progress", data: ev})
	c.mu.Unlock()
}

// finish moves the campaign to its terminal state, stores the aggregate
// when it completed, broadcasts the terminal event and releases waiters.
func (c *run) finish(records []campaign.Record, err error) {
	c.mu.Lock()
	switch {
	case err == nil:
		c.state = StateDone
		c.cells = campaign.Aggregate(records)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		c.state = StateCanceled
	default:
		c.state = StateFailed
		c.errMsg = err.Error()
	}
	c.broadcastLocked(sseEvent{name: c.state, data: c.statusLocked()})
	c.mu.Unlock()
	close(c.finished)
}

// subscribe registers an SSE listener. The buffer covers every event the
// campaign can still emit — progress per job plus the expected live
// samples (bounded) — so broadcasts never block the scheduler; the
// terminal event is additionally guaranteed through the finished channel.
func (c *run) subscribe() chan sseEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan sseEvent, len(c.jobs)+c.sampleBudget+8)
	c.subs[ch] = struct{}{}
	return ch
}

func (c *run) unsubscribe(ch chan sseEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.subs, ch)
}

// broadcastLocked fans an event out without blocking: a subscriber that
// somehow stopped draining loses intermediate progress events but still
// observes the terminal state via the finished channel.
func (c *run) broadcastLocked(ev sseEvent) {
	for ch := range c.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}
