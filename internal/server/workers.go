package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"repro/internal/campaign"
	"repro/internal/cluster"
)

// The /v1/workers endpoints — the coordinator side of the cluster
// protocol (internal/cluster). They are mounted only when Config.Cluster
// is set; a plain single-process daemon serves 404 for them. API.md
// documents the wire schemas (which live in internal/cluster so the
// Worker client and these handlers cannot drift).

// decodeJSON decodes a bounded JSON request body, writing the 400 itself
// on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// writeClusterError maps coordinator sentinel errors onto the API's
// uniform envelope: unknown worker IDs are 404 (the worker should
// re-register), a closed coordinator is 503 (the daemon is exiting).
func writeClusterError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, cluster.ErrUnknownWorker):
		writeError(w, http.StatusNotFound, "%v; re-register", err)
	case errors.Is(err, cluster.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// handleWorkerRegister admits a worker to the fleet.
func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	var req cluster.RegisterRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	st, err := s.cluster.Register(req.Name, req.Capacity)
	if err != nil {
		writeClusterError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, cluster.RegisterResponse{
		ID: st.ID, LeaseTTLMS: s.cluster.LeaseTTL().Milliseconds(),
	})
}

// handleWorkerLease leases up to max pending jobs to the worker
// (long-polling when the queue is empty) and doubles as its heartbeat.
func (s *Server) handleWorkerLease(w http.ResponseWriter, r *http.Request) {
	var req cluster.LeaseRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	jobs, err := s.cluster.Lease(r.PathValue("id"), req.Max, time.Duration(req.WaitMS)*time.Millisecond,
		cluster.Liveness{LastJobKey: req.LastJobKey, JobsDone: req.JobsDone, CyclesPerSec: req.CyclesPerSec})
	if err != nil {
		writeClusterError(w, err)
		return
	}
	if jobs == nil {
		jobs = []campaign.WireJob{} // an empty batch is [], never null
	}
	writeJSON(w, http.StatusOK, cluster.LeaseResponse{Jobs: jobs})
}

// handleWorkerResults records a worker's finished jobs (successes and
// failures) and releases the campaigns waiting on them.
func (s *Server) handleWorkerResults(w http.ResponseWriter, r *http.Request) {
	var req cluster.ResultsRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	accepted, duplicates, err := s.cluster.Complete(r.PathValue("id"), req.Records, req.Failures)
	if err != nil {
		writeClusterError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, cluster.ResultsResponse{Accepted: accepted, Duplicates: duplicates})
}

// handleWorkerDeregister removes a worker cleanly (its drain path);
// any leases it still held are re-issued immediately.
func (s *Server) handleWorkerDeregister(w http.ResponseWriter, r *http.Request) {
	if err := s.cluster.Deregister(r.PathValue("id")); err != nil {
		writeClusterError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleWorkersList serves the fleet snapshot.
func (s *Server) handleWorkersList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, cluster.FleetResponse{
		Workers: s.cluster.Workers(), Pending: s.cluster.Pending(),
		Requeues: s.cluster.Requeues(),
	})
}
