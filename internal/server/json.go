package server

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// errorBody is the uniform error envelope: every non-2xx response is
// {"error": "..."} so clients have one thing to parse.
type errorBody struct {
	Error string `json:"error"`
}

// writeJSON writes v as the response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

// writeError writes the uniform error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}
