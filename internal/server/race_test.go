package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/simtest"
)

// The daemon's concurrency hardening: hammer one server with identical
// and overlapping campaigns while clients cancel campaigns and tear
// down SSE streams mid-stream, then prove nothing leaked. This test is
// most valuable under `go test -race` (the CI race job runs it on every
// push), but the goroutine-leak half bites in every mode.

// overlappingSpecs share jobs pairwise, so concurrent submissions
// constantly collide on in-flight cache keys.
var overlappingSpecs = []string{
	`{"workloads":["2W1"],"policies":["ICOUNT","MFLUSH"],"seeds":[1,2],"cycles":1000}`,
	`{"workloads":["2W1"],"policies":["MFLUSH","FLUSH-S30"],"seeds":[2,3],"cycles":1000}`,
	`{"workloads":["2W1","2W3"],"policies":["ICOUNT"],"seeds":[1,3],"cycles":1000}`,
}

// TestConcurrentSubmitCancelSSEChurn drives many clients against one
// daemon: every client repeatedly submits a spec overlapping the other
// clients' specs, then either follows the SSE stream to the end,
// disconnects mid-stream, cancels the campaign, or just polls — all
// while the shared cache single-flights the overlapping jobs. The
// assertions: no request errors, every campaign settles, and — after a
// drain — the process is back to its pre-test goroutine count (SSE
// disconnects and cancellations must not leak handler or campaign
// goroutines).
func TestConcurrentSubmitCancelSSEChurn(t *testing.T) {
	before := runtime.NumGoroutine()

	r := simtest.New()
	s := New(Config{Runner: r.Run, Workers: 4, MaxQueuedJobs: 4096})
	ts := httptest.NewServer(s)
	client := ts.Client()

	const clients = 8
	const iterations = 6
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c))) // deterministic per client
			for i := 0; i < iterations; i++ {
				spec := overlappingSpecs[rng.Intn(len(overlappingSpecs))]
				sub, err := postSpecErr(client, ts.URL, spec)
				if err != nil {
					t.Errorf("client %d: submit: %v", c, err)
					return
				}
				switch rng.Intn(4) {
				case 0: // follow the stream to the terminal event
					if err := consumeSSE(client, ts.URL+sub.EventsURL, -1); err != nil {
						t.Errorf("client %d: SSE: %v", c, err)
					}
				case 1: // disconnect mid-stream after one event
					if err := consumeSSE(client, ts.URL+sub.EventsURL, 1); err != nil {
						t.Errorf("client %d: SSE disconnect: %v", c, err)
					}
				case 2: // cancel the campaign, racing its execution
					req, _ := http.NewRequest("DELETE", ts.URL+sub.StatusURL, nil)
					resp, err := client.Do(req)
					if err != nil {
						t.Errorf("client %d: cancel: %v", c, err)
						return
					}
					resp.Body.Close()
				case 3: // plain status poll
					resp, err := client.Get(ts.URL + sub.StatusURL)
					if err != nil {
						t.Errorf("client %d: status: %v", c, err)
						return
					}
					resp.Body.Close()
				}
			}
		}(c)
	}
	wg.Wait()

	// Every campaign settles (cancelled ones included) once the gates
	// are gone; drain waits for all campaign goroutines.
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain after churn: %v", err)
	}
	// No job ever ran twice despite the overlap storm.
	if r.Max() > 1 {
		t.Errorf("a job simulated %d times across overlapping campaigns", r.Max())
	}

	client.CloseIdleConnections()
	ts.Close()

	// Goroutine-leak check: with the server closed and drained, we must
	// settle back to the baseline (small slack for runtime background
	// goroutines). Mid-stream SSE disconnects are the classic leak here.
	simtest.WaitFor(t, 10*time.Second, func() bool {
		if runtime.NumGoroutine() <= before+3 {
			return true
		}
		runtime.GC() // nudge finalizer-held conns
		return false
	}, "goroutines leaked: %d before churn, %d after settling:\n%s",
		before, func() any { return runtime.NumGoroutine() }, func() any {
			var buf strings.Builder
			pprof.Lookup("goroutine").WriteTo(&buf, 1)
			return buf.String()
		})
}

// postSpecErr submits a spec over real HTTP, tolerating nothing.
func postSpecErr(client *http.Client, base, spec string) (submitResponse, error) {
	resp, err := client.Post(base+"/v1/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		return submitResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return submitResponse{}, fmt.Errorf("submit = %d", resp.StatusCode)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return submitResponse{}, err
	}
	return sub, nil
}

// consumeSSE reads the event stream: all the way to the server-side
// close when maxEvents < 0, or disconnecting (cancelling the request)
// after maxEvents events otherwise.
func consumeSSE(client *http.Client, url string, maxEvents int) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("SSE = %d", resp.StatusCode)
	}
	events := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if sc.Text() != "" {
			continue
		}
		events++ // blank line terminates one event
		if maxEvents >= 0 && events >= maxEvents {
			cancel() // mid-stream disconnect: the server must clean up
			return nil
		}
	}
	// A stream followed to the end terminates with the server closing
	// it after the terminal event; scanner errors from our own cancel
	// never reach here (we returned above).
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	if maxEvents < 0 && events == 0 {
		return fmt.Errorf("stream closed with no events")
	}
	return nil
}
