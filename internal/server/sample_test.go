package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/simtest"
)

// sampledSpec asks every job for interval samples: 4 jobs x 4 samples.
const sampledSpec = `{"workloads":["2W1"],"policies":["ICOUNT","MFLUSH"],"seeds":[1,2],"cycles":1000,"interval":250}`

// TestSSESampleEvents proves live interval samples flow from running
// simulations to SSE subscribers: a gated runner holds every job until
// the stream is attached, then each job's samples arrive as "sample"
// events — with the job name, its cache key, and the SamplePoint schema
// — without ending the stream before the real terminal event.
func TestSSESampleEvents(t *testing.T) {
	r := simtest.New()
	r.Gate = make(chan struct{})
	s := New(Config{Runner: r.Run, Workers: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	sub := postSpec(t, ts, sampledSpec)
	resp, err := ts.Client().Get(ts.URL + sub.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type sampleData struct {
		Job    string `json:"job"`
		Key    string `json:"key"`
		Sample struct {
			Cycle          uint64  `json:"cycle"`
			MeasuredCycles uint64  `json:"measured_cycles"`
			IPC            float64 `json:"ipc"`
		} `json:"sample"`
	}
	var (
		samples  []sampleData
		terminal string
		gateOpen bool
	)
	sc := bufio.NewScanner(resp.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "status":
				if !gateOpen {
					// The subscription is live (the snapshot arrived
					// before any job could finish); release the jobs.
					close(r.Gate)
					gateOpen = true
				}
			case "sample":
				var sd sampleData
				if err := json.Unmarshal([]byte(data), &sd); err != nil {
					t.Fatalf("bad sample payload %q: %v", data, err)
				}
				samples = append(samples, sd)
			case "progress":
			default:
				terminal = event
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if terminal != StateDone {
		t.Fatalf("terminal event %q, want %q", terminal, StateDone)
	}
	if len(samples) != 16 {
		t.Fatalf("saw %d sample events, want 16 (4 jobs x 4 samples)", len(samples))
	}
	perJob := make(map[string]int)
	for _, sd := range samples {
		if sd.Job == "" || sd.Key == "" {
			t.Fatalf("sample without job/key: %+v", sd)
		}
		perJob[sd.Job]++
		if sd.Sample.MeasuredCycles == 0 || sd.Sample.MeasuredCycles > 1000 {
			t.Fatalf("sample outside the measured window: %+v", sd)
		}
	}
	if len(perJob) != 4 {
		t.Fatalf("samples from %d jobs, want 4: %v", len(perJob), perJob)
	}

	// A resubmission is fully cached: it settles done with zero fresh
	// simulations, so no live samples are streamed.
	sub2 := postSpec(t, ts, sampledSpec)
	resp2, err := ts.Client().Get(ts.URL + sub2.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		line := sc2.Text()
		if strings.HasPrefix(line, "event: sample") {
			t.Fatal("cached campaign streamed a live sample")
		}
	}
	if r.Total() != 4 {
		t.Fatalf("%d simulations after cached resubmit, want 4", r.Total())
	}
}

// TestSampleBudgetOverflow: a hostile-but-valid spec (cycles 2^63,
// interval 1) must clamp the sample budget instead of overflowing it
// negative — a negative channel capacity would panic the SSE handler.
func TestSampleBudgetOverflow(t *testing.T) {
	r := simtest.New()
	r.Gate = make(chan struct{}) // hold the job so the campaign stays live
	defer close(r.Gate)
	s := New(Config{Runner: r.Run, Workers: 1})
	id := submit(t, s, `{"workloads":["2W1"],"policies":["ICOUNT"],"cycles":9223372036854775808,"interval":1}`)
	// Subscribing must not panic; the recorder returns the status event.
	req := httptest.NewRequest("GET", "/v1/campaigns/"+id+"/events", nil)
	ctx, cancel := context.WithCancel(req.Context())
	req = req.WithContext(ctx)
	done := make(chan struct{})
	rec := httptest.NewRecorder()
	go func() { s.ServeHTTP(rec, req); close(done) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	<-done
	if !strings.Contains(rec.Body.String(), "event: status") {
		t.Fatalf("no status event in SSE body: %q", rec.Body.String())
	}
}
