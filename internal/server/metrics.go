package server

import (
	"runtime"

	"repro/internal/metrics"
)

// The daemon's observability surface. Every Server owns a
// metrics.Registry served at GET /metrics in Prometheus text format;
// point-in-time state (queue depth, campaign states, cache size) is
// read at scrape time, event counters are bumped where the event
// happens, and the per-campaign interval-IPC gauge mirrors the latest
// live sample so a scraper sees what the SSE stream sees.
//
// Lock discipline mirrors internal/cluster: scrape-time functions may
// take s.mu (and nest c.mu under it, the same order handleList uses),
// while update paths under s.mu or a run's c.mu only touch lock-free
// metric atomics — children are pre-resolved outside those locks.

// serverMetrics bundles the handles the request paths update.
type serverMetrics struct {
	rejected    *metrics.Counter  // 429 responses
	submitted   *metrics.Counter  // admitted campaigns
	sseSubs     *metrics.Gauge    // open SSE event streams
	campaignIPC *metrics.GaugeVec // latest interval IPC per running campaign
}

// Metrics returns the daemon's registry — the same families GET
// /metrics serves — so embedding callers and tests can scrape without
// HTTP.
func (s *Server) Metrics() *metrics.Registry { return s.registry }

// registerMetrics builds the registry and its server-level families.
// Called once from New, before the coordinator adds the cluster
// families and before the mux can serve a scrape.
func (s *Server) registerMetrics() {
	r := metrics.NewRegistry()
	s.registry = r
	s.m = serverMetrics{
		rejected:    r.Counter("mflush_admission_rejected_total", "Campaign submissions rejected with 429 (queue full)."),
		submitted:   r.Counter("mflush_campaigns_submitted_total", "Campaigns admitted."),
		sseSubs:     r.Gauge("mflush_sse_subscribers", "Open campaign event streams (SSE)."),
		campaignIPC: r.GaugeVec("mflush_campaign_interval_ipc", "Latest live interval IPC sample per running campaign.", "campaign"),
	}
	r.GaugeFunc("mflush_admission_queue_depth", "Jobs admitted but not yet finished (the backpressure quantity the 429 limit bounds).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.queued)
		})
	states := r.GaugeFuncVec("mflush_campaigns", "Campaigns in the registry by lifecycle state.", "state")
	for _, state := range []string{StateRunning, StateDone, StateFailed, StateCanceled} {
		states.Bind(func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			n := 0
			for _, c := range s.campaigns {
				if c.status().State == state {
					n++
				}
			}
			return float64(n)
		}, state)
	}
	r.CounterFunc("mflush_cache_hits_total", "Result-cache hits (store hits and single-flight joins).",
		func() float64 { hits, _ := s.cache.Stats(); return float64(hits) })
	r.CounterFunc("mflush_cache_misses_total", "Result-cache misses (fresh simulations).",
		func() float64 { _, misses := s.cache.Stats(); return float64(misses) })
	r.GaugeFunc("mflush_cache_entries", "Distinct results the cache can serve.",
		func() float64 { return float64(s.cache.Len()) })
	r.GaugeFunc("mflush_go_goroutines", "Goroutines in the daemon process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
}
