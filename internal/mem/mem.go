// Package mem assembles the shared part of the memory hierarchy: the
// multi-banked second-level cache reached over the shared bus, backed by
// main memory.
//
// Timing model (all latencies from config):
//
//	core L1 miss --request bus--> L2 bank queue --[bank busy Latency]-->
//	    hit:  --response bus--> core
//	    miss: --memory pipe (MainMemoryLatency)--> L2 bank fill
//	          --[bank busy Latency]--> --response bus--> core
//
// Each L2 bank is single-ported: it serves one operation (tag check or
// fill) at a time, each occupying the bank for the full access latency.
// Queueing at the banks and at the bus arbiter is what makes the L2 *hit*
// time variable when several SMT cores share the cache — the effect the
// paper's Figure 4 quantifies and MFLUSH adapts to.
package mem

import (
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/stats"
)

// Request is one core-to-L2 transaction. The pipeline allocates it on an
// L1 miss and reads the result fields when it returns.
type Request struct {
	// CoreID routes the response back to the issuing core.
	CoreID int
	// ThreadID identifies the hardware context within the core.
	ThreadID int
	// Addr is the byte address of the access.
	Addr uint64
	// IsInstr marks icache fills (vs dcache fills).
	IsInstr bool
	// MissLatency, when non-zero, overrides the configured main-memory
	// latency for this request should it miss in L2 (per-instruction
	// far-memory override carried in from the trace).
	MissLatency uint32
	// NoWake marks fire-and-forget requests (store-miss fills): the
	// response fills the cache but wakes no instruction.
	NoWake bool
	// IssuedAt is the cycle the originating load issued (or the fetch
	// stalled); latency measurements are taken from here.
	IssuedAt uint64
	// EnteredL2At is the cycle the request was submitted to the shared
	// system (L1 miss detection time).
	EnteredL2At uint64
	// Bank is the L2 bank serving the request, fixed by the address.
	Bank int
	// L2Hit reports whether the tag check hit; valid once completed.
	L2Hit bool
	// CompletedAt is the cycle the response reached the core.
	CompletedAt uint64

	// pooled marks free-list membership (double-put guard).
	pooled bool
}

// RequestPool recycles Requests. The pipeline allocates one per L1 miss
// and the response is its last use, so each core keeps a pool and puts
// requests back as it consumes responses. Not safe for concurrent use;
// intended per-core.
type RequestPool struct {
	free []*Request
}

// Get returns a zeroed Request.
func (p *RequestPool) Get() *Request {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free = p.free[:n-1]
		r.pooled = false
		return r
	}
	return &Request{}
}

// Put recycles a request whose response has been fully consumed.
func (p *RequestPool) Put(r *Request) {
	if r.pooled {
		panic("mem: double put of request")
	}
	*r = Request{pooled: true}
	p.free = append(p.free, r)
}

// L2System is the shared L2 cache plus its interconnect and memory
// backend. It is driven by one Tick per cycle.
type L2System struct {
	cfg  config.Config
	l2   *cache.Cache
	req  *bus.Bus[*Request]
	resp *bus.Bus[*Request]

	banks []bankState

	// Main memory: bounded issue bandwidth, fixed service latency.
	memPending  fifoReq
	memInFlight fifoTimed
	memStarts   int
	// memFar holds in-flight misses with a per-request MissLatency
	// override. They cannot share memInFlight: that FIFO's drain peeks
	// only the head, which is correct solely because fixed-latency
	// completions are monotonic in start order. Overridden requests are
	// scanned in insertion order instead, so completion handling stays
	// deterministic.
	memFar []timedReq

	// missDetected accumulates requests whose L2 tag check missed this
	// cycle — the non-speculative FLUSH Detection Moment signal.
	// missSpare is the drained buffer from the previous cycle, swapped
	// back in so the per-cycle path reuses the two backing arrays.
	missDetected []*Request
	missSpare    []*Request

	// Measurements.
	hitLatency  *stats.Histogram // load-issue to response, L2 hits only
	missLatency *stats.Histogram
	counters    stats.Set
}

// Typed counter IDs for the shared-system events (see stats.CounterID).
var (
	cL2Requests = stats.MustRegister("l2.requests")
	cL2Fills    = stats.MustRegister("l2.fills")
	cL2Hits     = stats.MustRegister("l2.hits")
	cL2Misses   = stats.MustRegister("l2.misses")
	cL2BankOps  = stats.MustRegister("l2.bank_ops")
	cMemReads   = stats.MustRegister("mem.reads")
)

type bankOp struct {
	req  *Request
	fill bool
}

type bankState struct {
	queue   fifoOp
	current bankOp
	busy    bool
	doneAt  uint64
}

// memStartsPerCycle bounds how many L2 misses main memory can begin
// servicing each cycle (DRAM channel bandwidth).
const memStartsPerCycle = 4

// latencyHistBound caps the exact-count range of the latency histograms.
const latencyHistBound = 1024

// NewL2System builds the shared system from the machine configuration.
func NewL2System(cfg config.Config) *L2System {
	return &L2System{
		cfg:         cfg,
		l2:          cache.New(cfg.Mem.L2),
		req:         bus.New[*Request](cfg.Mem.BusDelay, 1),
		resp:        bus.New[*Request](cfg.Mem.BusDelay, 1),
		banks:       make([]bankState, cfg.Mem.L2.Banks),
		memStarts:   memStartsPerCycle,
		hitLatency:  stats.NewHistogram(latencyHistBound),
		missLatency: stats.NewHistogram(latencyHistBound),
	}
}

// BankOf returns the L2 bank that will serve the given address. The
// MFLUSH policy uses this to select the MCReg before the access completes.
func (s *L2System) BankOf(addr uint64) int { return s.l2.BankOf(addr) }

// Submit enters a request into the shared system at cycle now.
func (s *L2System) Submit(r *Request, now uint64) {
	r.EnteredL2At = now
	r.Bank = s.BankOf(r.Addr)
	s.counters.Bump(cL2Requests, 1)
	s.req.Push(now, r)
}

// Tick advances the shared system one cycle and returns the requests whose
// responses reach their cores at cycle now.
func (s *L2System) Tick(now uint64) []*Request {
	// 1. Requests arriving over the bus enter their bank queue.
	for _, r := range s.req.Tick(now) {
		s.banks[r.Bank].queue.push(bankOp{req: r})
	}

	// 2. Memory completions re-enter their bank for the line fill.
	for s.memInFlight.len() > 0 && s.memInFlight.peek().doneAt <= now {
		r := s.memInFlight.pop().req
		s.banks[r.Bank].queue.push(bankOp{req: r, fill: true})
	}
	if len(s.memFar) > 0 {
		kept := s.memFar[:0]
		for _, t := range s.memFar {
			if t.doneAt <= now {
				s.banks[t.req.Bank].queue.push(bankOp{req: t.req, fill: true})
			} else {
				kept = append(kept, t)
			}
		}
		for i := len(kept); i < len(s.memFar); i++ {
			s.memFar[i] = timedReq{}
		}
		s.memFar = kept
	}

	// 3. Banks: finish the in-service operation, then start the next.
	for b := range s.banks {
		bank := &s.banks[b]
		if bank.busy && bank.doneAt <= now {
			bank.busy = false
			op := bank.current
			switch {
			case op.fill:
				s.l2.Fill(op.req.Addr)
				s.counters.Bump(cL2Fills, 1)
				s.resp.Push(now, op.req)
			default:
				if s.l2.Access(op.req.Addr) {
					op.req.L2Hit = true
					s.counters.Bump(cL2Hits, 1)
					s.resp.Push(now, op.req)
				} else {
					s.counters.Bump(cL2Misses, 1)
					s.missDetected = append(s.missDetected, op.req)
					s.memPending.push(op.req)
				}
			}
		}
		if !bank.busy && bank.queue.len() > 0 {
			bank.current = bank.queue.pop()
			bank.busy = true
			occ := s.cfg.Mem.L2.Latency
			if bank.current.fill && s.cfg.Mem.L2FillOccupancy > 0 {
				occ = s.cfg.Mem.L2FillOccupancy
			}
			bank.doneAt = now + uint64(occ)
			s.counters.Bump(cL2BankOps, 1)
		}
	}

	// 4. Main memory begins a bounded number of new services.
	for i := 0; i < s.memStarts && s.memPending.len() > 0; i++ {
		r := s.memPending.pop()
		if r.MissLatency > 0 {
			s.memFar = append(s.memFar, timedReq{req: r, doneAt: now + uint64(r.MissLatency)})
		} else {
			s.memInFlight.push(timedReq{req: r, doneAt: now + uint64(s.cfg.Mem.MainMemoryLatency)})
		}
		s.counters.Bump(cMemReads, 1)
	}

	// 5. Responses arriving at the cores.
	done := s.resp.Tick(now)
	for _, r := range done {
		r.CompletedAt = now
		if r.IsInstr || r.NoWake {
			continue // Figure 4 measures demand loads only
		}
		lat := int(now - r.IssuedAt)
		if r.L2Hit {
			s.hitLatency.Add(lat)
		} else {
			s.missLatency.Add(lat)
		}
	}
	return done
}

// DrainMissDetected returns and clears the requests whose L2 tag check
// reported a miss since the last call. Cores forward these to
// non-speculative flush policies.
func (s *L2System) DrainMissDetected() []*Request {
	out := s.missDetected
	s.missDetected = s.missSpare[:0]
	s.missSpare = out
	return out
}

// Drain reports whether any transaction is still in flight.
func (s *L2System) Drain() bool {
	if s.req.Pending() > 0 || s.resp.Pending() > 0 ||
		s.memPending.len() > 0 || s.memInFlight.len() > 0 || len(s.memFar) > 0 {
		return true
	}
	for b := range s.banks {
		if s.banks[b].busy || s.banks[b].queue.len() > 0 {
			return true
		}
	}
	return false
}

// ResetStats discards accumulated measurements (histograms and counters)
// while preserving cache and queue state — used to exclude warm-up from
// reported results.
func (s *L2System) ResetStats() {
	s.hitLatency = stats.NewHistogram(latencyHistBound)
	s.missLatency = stats.NewHistogram(latencyHistBound)
	s.counters = stats.Set{}
}

// HitLatency returns the histogram of load-issue-to-service latencies for
// accesses that hit in L2 (the paper's Figure 4 metric).
func (s *L2System) HitLatency() *stats.Histogram { return s.hitLatency }

// MissLatency returns the latency histogram for L2 misses.
func (s *L2System) MissLatency() *stats.Histogram { return s.missLatency }

// Counters exposes the event counters (l2.requests, l2.hits, ...).
func (s *L2System) Counters() *stats.Set { return &s.counters }

// Cache exposes the underlying tag store (used by tests and by warm-up
// helpers).
func (s *L2System) Cache() *cache.Cache { return s.l2 }

// MinHitLatency returns the no-contention request latency through the
// system measured from submission: bus + bank + bus.
func (s *L2System) MinHitLatency() int {
	return 2*s.cfg.Mem.BusDelay + s.cfg.Mem.L2.Latency
}

// Queue helpers: small typed FIFOs (avoiding interface boxing in the hot
// path).

type fifoOp struct {
	buf  []bankOp
	head int
}

func (f *fifoOp) len() int { return len(f.buf) - f.head }
func (f *fifoOp) push(v bankOp) {
	f.buf = append(f.buf, v)
}
func (f *fifoOp) pop() bankOp {
	v := f.buf[f.head]
	f.buf[f.head] = bankOp{}
	f.head++
	if f.head > 64 && f.head*2 > len(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		f.buf = f.buf[:n]
		f.head = 0
	}
	return v
}

type fifoReq struct {
	buf  []*Request
	head int
}

func (f *fifoReq) len() int { return len(f.buf) - f.head }
func (f *fifoReq) push(v *Request) {
	f.buf = append(f.buf, v)
}
func (f *fifoReq) pop() *Request {
	v := f.buf[f.head]
	f.buf[f.head] = nil
	f.head++
	if f.head > 64 && f.head*2 > len(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		f.buf = f.buf[:n]
		f.head = 0
	}
	return v
}

type timedReq struct {
	req    *Request
	doneAt uint64
}

type fifoTimed struct {
	buf  []timedReq
	head int
}

func (f *fifoTimed) len() int { return len(f.buf) - f.head }
func (f *fifoTimed) peek() timedReq {
	return f.buf[f.head]
}
func (f *fifoTimed) push(v timedReq) {
	f.buf = append(f.buf, v)
}
func (f *fifoTimed) pop() timedReq {
	v := f.buf[f.head]
	f.buf[f.head] = timedReq{}
	f.head++
	if f.head > 64 && f.head*2 > len(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		f.buf = f.buf[:n]
		f.head = 0
	}
	return v
}
