package mem

import (
	"testing"

	"repro/internal/config"
)

// run drives the system until the given request completes or the cycle
// budget runs out, returning the completion cycle.
func run(t *testing.T, s *L2System, want *Request, budget uint64) uint64 {
	t.Helper()
	for now := want.EnteredL2At; now < want.EnteredL2At+budget; now++ {
		for _, r := range s.Tick(now) {
			if r == want {
				return now
			}
		}
	}
	t.Fatalf("request %#x did not complete within %d cycles", want.Addr, budget)
	return 0
}

func TestUncontendedMissThenHitLatency(t *testing.T) {
	cfg := config.Default(1)
	s := NewL2System(cfg)

	// First access: L2 miss -> memory -> fill.
	r1 := &Request{Addr: 0x1000, IssuedAt: 0}
	s.Submit(r1, 0)
	done := run(t, s, r1, 1000)
	if r1.L2Hit {
		t.Fatal("cold access should miss in L2")
	}
	// bus(2) + bank(15) + mem(250) + fill(4) + bus(2) = 273.
	wantMiss := uint64(2*cfg.Mem.BusDelay + cfg.Mem.L2.Latency +
		cfg.Mem.L2FillOccupancy + cfg.Mem.MainMemoryLatency)
	if done != wantMiss {
		t.Fatalf("miss latency %d, want %d", done, wantMiss)
	}

	// Second access to the same line: L2 hit at minimum latency.
	r2 := &Request{Addr: 0x1000, IssuedAt: done}
	s.Submit(r2, done)
	done2 := run(t, s, r2, 1000)
	if !r2.L2Hit {
		t.Fatal("warm access should hit in L2")
	}
	if got := done2 - done; got != uint64(s.MinHitLatency()) {
		t.Fatalf("hit latency %d, want %d", got, s.MinHitLatency())
	}
}

func TestBankConflictSerialises(t *testing.T) {
	cfg := config.Default(1)
	s := NewL2System(cfg)
	// Warm two lines in the same bank (bank of addr is line & 3).
	lineBytes := uint64(cfg.Mem.L2.LineBytes)
	bankStride := lineBytes * uint64(cfg.Mem.L2.Banks)
	a, b := uint64(0), bankStride // same bank, different sets/lines
	if s.BankOf(a) != s.BankOf(b) {
		t.Fatal("test addresses must share a bank")
	}
	for _, addr := range []uint64{a, b} {
		r := &Request{Addr: addr}
		s.Submit(r, 0)
		run(t, s, r, 1000)
	}

	// Reset measurement epoch: submit both hits in the same cycle.
	start := uint64(5000)
	r1 := &Request{Addr: a, IssuedAt: start}
	r2 := &Request{Addr: b, IssuedAt: start}
	s.Submit(r1, start)
	s.Submit(r2, start)
	var c1, c2 uint64
	for now := start; now < start+500; now++ {
		for _, r := range s.Tick(now) {
			switch r {
			case r1:
				c1 = now
			case r2:
				c2 = now
			}
		}
	}
	if c1 == 0 || c2 == 0 {
		t.Fatal("requests did not complete")
	}
	// The second is delayed by at least one bank service time relative
	// to the first (the paper's "two consecutive accesses to the same
	// bank cannot be served in less than 15 cycles").
	gap := int64(c2) - int64(c1)
	if gap < 0 {
		gap = -gap
	}
	if gap < int64(cfg.Mem.L2.Latency) {
		t.Fatalf("same-bank hits separated by %d cycles, want >= %d", gap, cfg.Mem.L2.Latency)
	}
}

func TestDifferentBanksOverlap(t *testing.T) {
	cfg := config.Default(1)
	s := NewL2System(cfg)
	lineBytes := uint64(cfg.Mem.L2.LineBytes)
	a, b := uint64(0), lineBytes // adjacent lines -> different banks
	if s.BankOf(a) == s.BankOf(b) {
		t.Fatal("adjacent lines should map to different banks")
	}
	for _, addr := range []uint64{a, b} {
		r := &Request{Addr: addr}
		s.Submit(r, 0)
		run(t, s, r, 1000)
	}
	start := uint64(5000)
	r1 := &Request{Addr: a, IssuedAt: start}
	r2 := &Request{Addr: b, IssuedAt: start}
	s.Submit(r1, start)
	s.Submit(r2, start)
	var c1, c2 uint64
	for now := start; now < start+500; now++ {
		for _, r := range s.Tick(now) {
			if r == r1 {
				c1 = now
			}
			if r == r2 {
				c2 = now
			}
		}
	}
	// Bank service overlaps; only the single-grant bus staggers them.
	gap := int64(c2) - int64(c1)
	if gap < 0 {
		gap = -gap
	}
	if gap >= int64(cfg.Mem.L2.Latency) {
		t.Fatalf("different-bank hits separated by %d cycles; banks did not overlap", gap)
	}
}

func TestHitHistogramOnlyCountsHits(t *testing.T) {
	cfg := config.Default(1)
	s := NewL2System(cfg)
	r1 := &Request{Addr: 0x40, IssuedAt: 0}
	s.Submit(r1, 0)
	run(t, s, r1, 1000)
	r2 := &Request{Addr: 0x40, IssuedAt: 400}
	s.Submit(r2, 400)
	run(t, s, r2, 1000)
	if s.HitLatency().Count() != 1 {
		t.Fatalf("hit histogram count = %d, want 1", s.HitLatency().Count())
	}
	if s.MissLatency().Count() != 1 {
		t.Fatalf("miss histogram count = %d, want 1", s.MissLatency().Count())
	}
}

func TestCountersConsistent(t *testing.T) {
	cfg := config.Default(2)
	s := NewL2System(cfg)
	addrs := []uint64{0x0, 0x40, 0x80, 0xc0, 0x1000, 0x0, 0x40}
	reqs := make([]*Request, len(addrs))
	for i, a := range addrs {
		reqs[i] = &Request{Addr: a, CoreID: i % 2}
		s.Submit(reqs[i], 0)
	}
	completed := 0
	for now := uint64(0); now < 3000 && completed < len(reqs); now++ {
		completed += len(s.Tick(now))
	}
	if completed != len(reqs) {
		t.Fatalf("completed %d of %d", completed, len(reqs))
	}
	c := s.Counters()
	if c.Get("l2.requests") != uint64(len(reqs)) {
		t.Fatalf("l2.requests = %d", c.Get("l2.requests"))
	}
	if c.Get("l2.hits")+c.Get("l2.misses") != uint64(len(reqs)) {
		t.Fatalf("hits+misses = %d, want %d",
			c.Get("l2.hits")+c.Get("l2.misses"), len(reqs))
	}
	if c.Get("l2.fills") != c.Get("l2.misses") {
		t.Fatalf("fills %d != misses %d", c.Get("l2.fills"), c.Get("l2.misses"))
	}
	if c.Get("mem.reads") != c.Get("l2.misses") {
		t.Fatalf("mem.reads %d != misses %d", c.Get("mem.reads"), c.Get("l2.misses"))
	}
	if s.Drain() {
		t.Fatal("system should be drained")
	}
}

func TestContentionRaisesHitLatency(t *testing.T) {
	// Load the system heavily with hits and verify the mean hit latency
	// exceeds the uncontended minimum — the Figure 4 mechanism.
	cfg := config.Default(4)
	s := NewL2System(cfg)
	// Warm 64 lines.
	for i := 0; i < 64; i++ {
		r := &Request{Addr: uint64(i * 64)}
		s.Submit(r, 0)
	}
	for now := uint64(0); now < 3000; now++ {
		s.Tick(now)
	}
	if s.Drain() {
		t.Fatal("warmup did not drain")
	}
	// Storm of hits from 8 "threads".
	start := uint64(10000)
	issued := 0
	for now := start; now < start+2000; now++ {
		if issued < 400 && now%2 == 0 {
			addr := uint64((issued % 64) * 64)
			s.Submit(&Request{Addr: addr, IssuedAt: now, CoreID: issued % 4}, now)
			issued++
		}
		s.Tick(now)
	}
	h := s.HitLatency()
	if h.Count() < 300 {
		t.Fatalf("too few hits measured: %d", h.Count())
	}
	min := float64(s.MinHitLatency())
	if h.Mean() <= min {
		t.Fatalf("mean hit latency %.1f not above uncontended %v under load", h.Mean(), min)
	}
	if h.Max() <= int(min)+5 {
		t.Fatalf("hit latency tail %d too short under load", h.Max())
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() (uint64, string) {
		cfg := config.Default(2)
		s := NewL2System(cfg)
		var lastDone uint64
		n := 0
		for now := uint64(0); now < 5000; now++ {
			if now%7 == 0 && n < 200 {
				s.Submit(&Request{Addr: uint64(n%50) * 64, IssuedAt: now}, now)
				n++
			}
			for range s.Tick(now) {
				lastDone = now
			}
		}
		return lastDone, s.Counters().String()
	}
	d1, c1 := runOnce()
	d2, c2 := runOnce()
	if d1 != d2 || c1 != c2 {
		t.Fatalf("nondeterministic: (%d,%q) vs (%d,%q)", d1, c1, d2, c2)
	}
}

func BenchmarkL2SystemTick(b *testing.B) {
	cfg := config.Default(4)
	s := NewL2System(cfg)
	n := 0
	for i := 0; i < b.N; i++ {
		now := uint64(i)
		if i%3 == 0 {
			s.Submit(&Request{Addr: uint64(n%256) * 64, IssuedAt: now}, now)
			n++
		}
		s.Tick(now)
	}
}
