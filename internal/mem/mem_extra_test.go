package mem

import (
	"testing"

	"repro/internal/config"
)

func TestMissDetectedSignal(t *testing.T) {
	cfg := config.Default(1)
	s := NewL2System(cfg)
	r := &Request{Addr: 0x4000, IssuedAt: 0}
	s.Submit(r, 0)
	var detected []*Request
	for now := uint64(0); now < 600; now++ {
		s.Tick(now)
		detected = append(detected, s.DrainMissDetected()...)
	}
	if len(detected) != 1 || detected[0] != r {
		t.Fatalf("miss-detected = %v", detected)
	}
	// A hit produces no signal.
	r2 := &Request{Addr: 0x4000, IssuedAt: 600}
	s.Submit(r2, 600)
	for now := uint64(600); now < 1200; now++ {
		s.Tick(now)
		if ds := s.DrainMissDetected(); len(ds) != 0 {
			t.Fatalf("hit raised a miss signal: %v", ds)
		}
	}
	if !r2.L2Hit {
		t.Fatal("second access should hit")
	}
}

func TestMissDetectionTiming(t *testing.T) {
	// The signal fires at tag-check completion, long before the data
	// returns — that is what makes FL-NS actionable.
	cfg := config.Default(1)
	s := NewL2System(cfg)
	r := &Request{Addr: 0x9000, IssuedAt: 0}
	s.Submit(r, 0)
	var detectAt, doneAt uint64
	for now := uint64(0); now < 600; now++ {
		done := s.Tick(now)
		if len(s.DrainMissDetected()) > 0 {
			detectAt = now
		}
		for _, d := range done {
			if d == r {
				doneAt = now
			}
		}
	}
	if detectAt == 0 || doneAt == 0 {
		t.Fatal("request did not complete")
	}
	if doneAt-detectAt < uint64(cfg.Mem.MainMemoryLatency) {
		t.Fatalf("detection at %d only %d cycles before completion %d",
			detectAt, doneAt-detectAt, doneAt)
	}
}

func TestResetStatsPreservesCacheState(t *testing.T) {
	cfg := config.Default(1)
	s := NewL2System(cfg)
	r := &Request{Addr: 0x40, IssuedAt: 0}
	s.Submit(r, 0)
	for now := uint64(0); now < 600; now++ {
		s.Tick(now)
	}
	s.ResetStats()
	if s.Counters().Get("l2.requests") != 0 || s.HitLatency().Count() != 0 {
		t.Fatal("stats not cleared")
	}
	// The line filled before the reset must still be resident: the next
	// access is a hit.
	r2 := &Request{Addr: 0x40, IssuedAt: 1000}
	s.Submit(r2, 1000)
	for now := uint64(1000); now < 1600; now++ {
		s.Tick(now)
	}
	if !r2.L2Hit {
		t.Fatal("cache state lost across stats reset")
	}
	if s.Counters().Get("l2.hits") != 1 {
		t.Fatalf("post-reset hits = %d", s.Counters().Get("l2.hits"))
	}
}

func TestInstrAndStoreRequestsExcludedFromHistogram(t *testing.T) {
	cfg := config.Default(1)
	s := NewL2System(cfg)
	// Warm a line, then access it as instruction fetch and store fill.
	warm := &Request{Addr: 0x80}
	s.Submit(warm, 0)
	for now := uint64(0); now < 600; now++ {
		s.Tick(now)
	}
	s.ResetStats()
	s.Submit(&Request{Addr: 0x80, IsInstr: true, IssuedAt: 1000}, 1000)
	s.Submit(&Request{Addr: 0x80, NoWake: true, IssuedAt: 1000}, 1000)
	for now := uint64(1000); now < 1600; now++ {
		s.Tick(now)
	}
	if n := s.HitLatency().Count(); n != 0 {
		t.Fatalf("histogram counted %d non-demand-load accesses", n)
	}
	// But they do count as requests/hits.
	if s.Counters().Get("l2.hits") != 2 {
		t.Fatalf("hits = %d, want 2", s.Counters().Get("l2.hits"))
	}
}

func TestFillOccupancyShorterThanDemand(t *testing.T) {
	// With fill occupancy shorter than the access latency, a miss's
	// total latency reflects the shorter fill pass.
	cfg := config.Default(1)
	want := 2*cfg.Mem.BusDelay + cfg.Mem.L2.Latency + cfg.Mem.L2FillOccupancy + cfg.Mem.MainMemoryLatency
	s := NewL2System(cfg)
	r := &Request{Addr: 0xc0, IssuedAt: 0}
	s.Submit(r, 0)
	var done uint64
	for now := uint64(0); now < 600; now++ {
		for _, d := range s.Tick(now) {
			if d == r {
				done = now
			}
		}
	}
	if done != uint64(want) {
		t.Fatalf("miss latency %d, want %d", done, want)
	}
}
