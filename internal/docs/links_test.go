package docs

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// checkedDocs are the user-facing documents whose links must resolve.
var checkedDocs = []string{
	"README.md",
	"CAMPAIGNS.md",
	"ARCHITECTURE.md",
	"API.md",
}

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// linkRe matches inline markdown links [text](target). Images and
// reference-style links are not used in this repository's docs.
var linkRe = regexp.MustCompile(`\[[^\]\n]*\]\(([^)\s]+)\)`)

// TestMarkdownLinksResolve fails on any relative link whose target file
// is missing, and on any intra-repo anchor that does not correspond to
// a heading in the target document. External http(s) links are only
// checked for well-formedness (CI has no network).
func TestMarkdownLinksResolve(t *testing.T) {
	root := repoRoot(t)
	for _, doc := range checkedDocs {
		path := filepath.Join(root, doc)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: required doc missing: %v", doc, err)
			continue
		}
		text := stripCodeBlocks(string(data))
		for _, m := range linkRe.FindAllStringSubmatch(text, -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"):
				continue // external; existence is not checkable offline
			case strings.HasPrefix(target, "#"):
				if !anchorExists(string(data), target[1:]) {
					t.Errorf("%s: dangling anchor %q", doc, target)
				}
			default:
				file, anchor, _ := strings.Cut(target, "#")
				dest := filepath.Join(root, file)
				destData, err := os.ReadFile(dest)
				if err != nil {
					t.Errorf("%s: broken link %q: %v", doc, target, err)
					continue
				}
				if anchor != "" && !anchorExists(string(destData), anchor) {
					t.Errorf("%s: link %q: no heading for anchor %q in %s", doc, target, anchor, file)
				}
			}
		}
	}
}

// stripCodeBlocks removes fenced code blocks so example snippets (shell
// output, JSON) cannot produce false link matches.
func stripCodeBlocks(text string) string {
	var out strings.Builder
	inFence := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if !inFence {
			out.WriteString(line)
			out.WriteByte('\n')
		}
	}
	return out.String()
}

// anchorExists reports whether a markdown document contains a heading
// whose GitHub-style slug equals anchor.
func anchorExists(doc, anchor string) bool {
	for _, line := range strings.Split(stripCodeBlocks(doc), "\n") {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "#") {
			continue
		}
		heading := strings.TrimLeft(trimmed, "#")
		if slugify(heading) == anchor {
			return true
		}
	}
	return false
}

// slugify approximates GitHub's heading-anchor algorithm: lowercase,
// markdown emphasis/code markers dropped, spaces to hyphens, and all
// other punctuation removed.
func slugify(heading string) string {
	heading = strings.TrimSpace(heading)
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		case r == '-', r == '_':
			b.WriteRune(r)
			// every other rune (`, *, (, ), ., /, …) is dropped
		}
	}
	return b.String()
}

// TestDocsCrossLinked asserts the documentation graph stays connected:
// the README links every other checked doc, and CAMPAIGNS/API link back.
func TestDocsCrossLinked(t *testing.T) {
	root := repoRoot(t)
	wantLinks := map[string][]string{
		"README.md":       {"ARCHITECTURE.md", "CAMPAIGNS.md", "API.md"},
		"CAMPAIGNS.md":    {"README.md", "API.md", "ARCHITECTURE.md"},
		"API.md":          {"CAMPAIGNS.md", "ARCHITECTURE.md"},
		"ARCHITECTURE.md": {"README.md", "CAMPAIGNS.md", "API.md"},
	}
	for doc, targets := range wantLinks {
		data, err := os.ReadFile(filepath.Join(root, doc))
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range targets {
			if !strings.Contains(string(data), fmt.Sprintf("(%s", want)) {
				t.Errorf("%s does not link %s", doc, want)
			}
		}
	}
}
