package docs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/sim"
)

// registeredMetricNames instantiates every registry the binaries serve —
// the daemon's (server + durable cluster coordinator, so the WAL
// families register too) and a worker's — and returns the union of
// their metric names. Anything a binary can expose must come through
// here.
func registeredMetricNames(t *testing.T) []string {
	t.Helper()
	coord, err := cluster.OpenCoordinator(cluster.Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	s := server.New(server.Config{
		Cluster: coord,
		Runner: func(sim.Options) (*sim.Result, error) {
			return nil, errors.New("docs lint never simulates")
		},
	})
	names := s.Metrics().Names()

	wreg := metrics.NewRegistry()
	(&cluster.Worker{}).RegisterMetrics(wreg)
	return append(names, wreg.Names()...)
}

// TestMetricNamesConform is the `make metricscheck` lint: every metric
// any binary registers is strict snake_case, carries the mflush_
// prefix, and is documented in API.md's Observability tables. A new
// metric that skips the docs — or a doc row for a metric that no
// longer exists — fails here.
func TestMetricNamesConform(t *testing.T) {
	names := registeredMetricNames(t)
	if len(names) < 30 {
		t.Fatalf("only %d registered metrics found — registry wiring broke", len(names))
	}
	apiDoc, err := os.ReadFile(filepath.Join(repoRoot(t), "API.md"))
	if err != nil {
		t.Fatal(err)
	}
	api := string(apiDoc)

	documented := map[string]bool{}
	for _, line := range strings.Split(api, "\n") {
		if !strings.HasPrefix(line, "| `mflush_") {
			continue
		}
		name := strings.TrimPrefix(line, "| `")
		if i := strings.IndexByte(name, '`'); i >= 0 {
			documented[name[:i]] = true
		}
	}

	registered := map[string]bool{}
	for _, name := range names {
		registered[name] = true
		if !metrics.ValidName(name) {
			t.Errorf("metric %q is not strict snake_case", name)
		}
		if !strings.HasPrefix(name, "mflush_") {
			t.Errorf("metric %q lacks the mflush_ prefix", name)
		}
		if !documented[name] {
			t.Errorf("metric %q is registered but missing from API.md's metrics tables", name)
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("API.md documents %q but no binary registers it", name)
		}
	}
}
