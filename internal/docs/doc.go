// Package docs holds no runtime code: its tests are the repository's
// documentation checks. They verify that every relative markdown link
// (and intra-repo anchor) in the user-facing docs resolves, and that
// every exported identifier in the service-facing packages
// (internal/server, internal/campaign) carries a doc comment. CI runs
// them via `make docscheck` and with the ordinary test suite.
package docs
