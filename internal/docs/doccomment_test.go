package docs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// documentedPackages are the packages whose exported surface is an API
// for other people (service clients, spec writers): every exported
// identifier there must carry a doc comment.
var documentedPackages = []string{
	"internal/server",
	"internal/campaign",
	"internal/cluster",
	"internal/trace",
	// The static-analysis framework is an API for whoever writes the
	// next analyzer; ParseDir is non-recursive, so each subpackage is
	// listed (and the fixtures under testdata/ stay out of scope).
	"internal/analysis",
	"internal/analysis/analysistest",
	"internal/analysis/driver",
	"internal/analysis/determinism",
	"internal/analysis/hotpath",
	"internal/analysis/keyhash",
	"internal/analysis/lockorder",
	"internal/analysis/errwrap",
}

// TestExportedIdentifiersDocumented parses each package (tests
// excluded) and reports every exported type, function, method,
// constant, variable and struct field that lacks a doc comment.
func TestExportedIdentifiersDocumented(t *testing.T) {
	root := repoRoot(t)
	for _, pkg := range documentedPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, filepath.Join(root, pkg), func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", pkg, err)
		}
		for _, p := range pkgs {
			for file, f := range p.Files {
				checkFile(t, fset, filepath.Base(file), f)
			}
		}
	}
}

func checkFile(t *testing.T, fset *token.FileSet, file string, f *ast.File) {
	report := func(pos token.Pos, what, name string) {
		t.Errorf("%s:%d: exported %s %s has no doc comment",
			file, fset.Position(pos).Line, what, name)
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			if d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if !sp.Name.IsExported() {
						continue
					}
					if d.Doc == nil && sp.Doc == nil {
						report(sp.Pos(), "type", sp.Name.Name)
					}
					if st, ok := sp.Type.(*ast.StructType); ok {
						checkFields(t, fset, file, sp.Name.Name, st)
					}
				case *ast.ValueSpec:
					for _, name := range sp.Names {
						if !name.IsExported() {
							continue
						}
						// A doc comment on the grouped decl ("Campaign
						// lifecycle states ...") or the spec suffices.
						if d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
							report(name.Pos(), "value", name.Name)
						}
					}
				}
			}
		}
	}
}

// checkFields requires a doc (or trailing line) comment on every
// exported struct field: these are the JSON schema of the service API
// and the campaign spec format.
func checkFields(t *testing.T, fset *token.FileSet, file, typeName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if !name.IsExported() {
				continue
			}
			if field.Doc == nil && field.Comment == nil {
				t.Errorf("%s:%d: exported field %s.%s has no doc comment",
					file, fset.Position(name.Pos()).Line, typeName, name.Name)
			}
		}
	}
}
