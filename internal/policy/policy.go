// Package policy defines the IFetch-policy interface through which the
// pipeline consults its instruction fetch policy, and implements the
// baseline policies from the paper: ICOUNT, speculative FLUSH with a fixed
// trigger (FLUSH-SX), non-speculative FLUSH (FLUSH-NS) and STALL.
//
// All policies are layered on top of ICOUNT thread ordering (which the
// pipeline's fetch stage applies unconditionally); what a Policy adds is
// the handling of long-latency loads: which threads to fetch-stall and
// which to flush, per the paper's Detection Moment / Response Action
// taxonomy.
package policy

import "fmt"

// LoadInfo is the policy-visible state of one outstanding long-latency
// load. The pipeline allocates one per load that misses the L1 data cache
// and keeps its fields current.
type LoadInfo struct {
	// Tid is the core-local hardware context that issued the load.
	Tid int
	// Seq is the load's per-thread program-order sequence number;
	// a flush squashes everything younger.
	Seq uint64
	// IssuedAt is the cycle the load first issued from the load/store
	// queue; Detection Moment deltas are measured from here.
	IssuedAt uint64
	// Bank is the shared-L2 bank serving the access (the MFLUSH MCReg
	// index).
	Bank int
	// TLBMiss records that the load paid a TLB walk before accessing
	// the hierarchy; adaptive policies exclude such latencies from
	// their L2-latency predictors.
	TLBMiss bool
	// L2MissDetected becomes true when the L2 tag check misses (the
	// non-speculative Detection Moment).
	L2MissDetected bool
	// Resolved, ResolvedAt and L2Hit describe completion.
	Resolved   bool
	ResolvedAt uint64
	L2Hit      bool
}

// Elapsed returns the cycles the load has been outstanding at cycle now.
func (li *LoadInfo) Elapsed(now uint64) uint64 {
	if now < li.IssuedAt {
		return 0
	}
	return now - li.IssuedAt
}

// Action is a per-thread fetch directive.
type Action uint8

const (
	// ActNone requests normal fetch for the thread.
	ActNone Action = iota
	// ActStall requests that the thread fetch no new instructions but
	// keep executing what it has (the STALL response action and the
	// MFLUSH Preventive State).
	ActStall
	// ActFlush requests that every instruction younger than the
	// offending load be squashed and the thread fetch-stalled until
	// that load resolves (the FLUSH response action).
	ActFlush
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActStall:
		return "stall"
	case ActFlush:
		return "flush"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// Directive is the desired state for one thread this cycle. The pipeline
// reconciles: ActFlush is edge-triggered (ignored while the thread is
// already flush-stalled), ActStall/ActNone are level-triggered.
type Directive struct {
	Tid    int
	Action Action
	// Load is the offending load for ActFlush.
	Load *LoadInfo
}

// Policy is consulted by one core's pipeline. Implementations must be
// deterministic and cheap: Tick runs every cycle.
type Policy interface {
	// Name identifies the policy in reports ("ICOUNT", "FLUSH-S30", ...).
	Name() string
	// OnL1Miss is called when a load misses the L1 data cache and
	// enters the shared hierarchy.
	OnL1Miss(li *LoadInfo, now uint64)
	// OnL2MissDetected is called when the shared L2 tag check misses.
	OnL2MissDetected(li *LoadInfo, now uint64)
	// OnResolve is called when the load's data arrives.
	OnResolve(li *LoadInfo, now uint64)
	// OnSquash is called when the load itself is squashed (by a branch
	// mispredict or an older flush) while outstanding.
	OnSquash(li *LoadInfo)
	// Tick returns the directives for this cycle. Returning no
	// directive for a thread means ActNone.
	Tick(now uint64) []Directive
}

// tracker is the shared bookkeeping for load-aware policies: the set of
// outstanding L1-missing loads per thread, in issue order.
type tracker struct {
	loads [][]*LoadInfo
}

func newTracker(threads int) tracker {
	return tracker{loads: make([][]*LoadInfo, threads)}
}

func (t *tracker) add(li *LoadInfo) {
	t.loads[li.Tid] = append(t.loads[li.Tid], li)
}

func (t *tracker) remove(li *LoadInfo) {
	s := t.loads[li.Tid]
	for i, x := range s {
		if x == li {
			t.loads[li.Tid] = append(s[:i], s[i+1:]...)
			return
		}
	}
}

// oldest returns the earliest-issued outstanding load for tid, or nil.
func (t *tracker) oldest(tid int) *LoadInfo {
	if len(t.loads[tid]) == 0 {
		return nil
	}
	return t.loads[tid][0]
}

// ICOUNT is the baseline policy: fetch priority by instruction count only,
// no long-latency-load handling.
type ICOUNT struct{}

// NewICOUNT returns the ICOUNT baseline.
func NewICOUNT() *ICOUNT { return &ICOUNT{} }

// Name implements Policy.
func (*ICOUNT) Name() string { return "ICOUNT" }

// OnL1Miss implements Policy.
func (*ICOUNT) OnL1Miss(*LoadInfo, uint64) {}

// OnL2MissDetected implements Policy.
func (*ICOUNT) OnL2MissDetected(*LoadInfo, uint64) {}

// OnResolve implements Policy.
func (*ICOUNT) OnResolve(*LoadInfo, uint64) {}

// OnSquash implements Policy.
func (*ICOUNT) OnSquash(*LoadInfo) {}

// Tick implements Policy.
func (*ICOUNT) Tick(uint64) []Directive { return nil }

// Flush implements the FLUSH response action with either the speculative
// delay-after-issue Detection Moment (Trigger > 0: FLUSH-S<Trigger>) or
// the non-speculative trigger-on-miss Detection Moment (NonSpec: FLUSH-NS).
type Flush struct {
	trigger uint64
	nonSpec bool
	tr      tracker
	out     []Directive
}

// NewFlushS returns speculative FLUSH: a thread is flushed once any of its
// loads has been outstanding for more than trigger cycles.
func NewFlushS(threads int, trigger int) *Flush {
	if trigger <= 0 {
		panic("policy: FLUSH-S trigger must be positive")
	}
	return &Flush{trigger: uint64(trigger), tr: newTracker(threads)}
}

// NewFlushNS returns non-speculative FLUSH: a thread is flushed when the
// L2 tag check reports a miss.
func NewFlushNS(threads int) *Flush {
	return &Flush{nonSpec: true, tr: newTracker(threads)}
}

// Name implements Policy.
func (f *Flush) Name() string {
	if f.nonSpec {
		return "FLUSH-NS"
	}
	return fmt.Sprintf("FLUSH-S%d", f.trigger)
}

// OnL1Miss implements Policy.
func (f *Flush) OnL1Miss(li *LoadInfo, _ uint64) { f.tr.add(li) }

// OnL2MissDetected implements Policy.
func (f *Flush) OnL2MissDetected(li *LoadInfo, _ uint64) { li.L2MissDetected = true }

// OnResolve implements Policy.
func (f *Flush) OnResolve(li *LoadInfo, _ uint64) { f.tr.remove(li) }

// OnSquash implements Policy.
func (f *Flush) OnSquash(li *LoadInfo) { f.tr.remove(li) }

// Tick implements Policy: the oldest outstanding load past the Detection
// Moment triggers a flush for its thread.
func (f *Flush) Tick(now uint64) []Directive {
	f.out = f.out[:0]
	for tid := range f.tr.loads {
		for _, li := range f.tr.loads[tid] {
			triggered := false
			if f.nonSpec {
				triggered = li.L2MissDetected
			} else {
				triggered = li.Elapsed(now) > f.trigger
			}
			if triggered {
				f.out = append(f.out, Directive{Tid: tid, Action: ActFlush, Load: li})
				break
			}
		}
	}
	return f.out
}

// Stall implements the STALL response action: a thread with a load past
// the trigger stops fetching (keeping its resources) until it resolves.
type Stall struct {
	trigger uint64
	tr      tracker
	out     []Directive
}

// NewStall returns the STALL policy with a delay-after-issue trigger.
func NewStall(threads int, trigger int) *Stall {
	if trigger <= 0 {
		panic("policy: STALL trigger must be positive")
	}
	return &Stall{trigger: uint64(trigger), tr: newTracker(threads)}
}

// Name implements Policy.
func (s *Stall) Name() string { return fmt.Sprintf("STALL-S%d", s.trigger) }

// OnL1Miss implements Policy.
func (s *Stall) OnL1Miss(li *LoadInfo, _ uint64) { s.tr.add(li) }

// OnL2MissDetected implements Policy.
func (*Stall) OnL2MissDetected(*LoadInfo, uint64) {}

// OnResolve implements Policy.
func (s *Stall) OnResolve(li *LoadInfo, _ uint64) { s.tr.remove(li) }

// OnSquash implements Policy.
func (s *Stall) OnSquash(li *LoadInfo) { s.tr.remove(li) }

// Tick implements Policy.
func (s *Stall) Tick(now uint64) []Directive {
	s.out = s.out[:0]
	for tid := range s.tr.loads {
		act := ActNone
		for _, li := range s.tr.loads[tid] {
			if li.Elapsed(now) > s.trigger {
				act = ActStall
				break
			}
		}
		s.out = append(s.out, Directive{Tid: tid, Action: act})
	}
	return s.out
}

// Outstanding returns the number of tracked loads for tid; exposed for the
// pipeline's consistency checks and tests.
func (f *Flush) Outstanding(tid int) int { return len(f.tr.loads[tid]) }

// Outstanding returns the number of tracked loads for tid.
func (s *Stall) Outstanding(tid int) int { return len(s.tr.loads[tid]) }
