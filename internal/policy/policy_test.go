package policy

import (
	"testing"
)

func findDirective(ds []Directive, tid int) (Directive, bool) {
	for _, d := range ds {
		if d.Tid == tid {
			return d, true
		}
	}
	return Directive{}, false
}

func TestICOUNTIsInert(t *testing.T) {
	p := NewICOUNT()
	li := &LoadInfo{Tid: 0, IssuedAt: 0}
	p.OnL1Miss(li, 0)
	p.OnL2MissDetected(li, 10)
	if ds := p.Tick(1000); len(ds) != 0 {
		t.Fatalf("ICOUNT issued directives: %v", ds)
	}
	p.OnResolve(li, 2000)
	if p.Name() != "ICOUNT" {
		t.Fatalf("name = %q", p.Name())
	}
}

func TestFlushSTriggersAfterDelay(t *testing.T) {
	p := NewFlushS(2, 30)
	li := &LoadInfo{Tid: 1, IssuedAt: 100}
	p.OnL1Miss(li, 105)
	// At or before the trigger: nothing.
	for _, now := range []uint64{100, 120, 130} {
		if ds := p.Tick(now); len(ds) != 0 {
			t.Fatalf("premature directive at %d: %v", now, ds)
		}
	}
	ds := p.Tick(131)
	d, ok := findDirective(ds, 1)
	if !ok || d.Action != ActFlush || d.Load != li {
		t.Fatalf("expected flush of load at 131, got %v", ds)
	}
	// Thread 0 has no outstanding loads: no directive for it.
	if _, ok := findDirective(ds, 0); ok {
		t.Fatal("directive for idle thread")
	}
	// After resolve, no more flush demands.
	li.Resolved = true
	p.OnResolve(li, 140)
	if ds := p.Tick(150); len(ds) != 0 {
		t.Fatalf("directive after resolve: %v", ds)
	}
}

func TestFlushSPicksOldestLoad(t *testing.T) {
	p := NewFlushS(1, 30)
	old := &LoadInfo{Tid: 0, Seq: 1, IssuedAt: 0}
	young := &LoadInfo{Tid: 0, Seq: 2, IssuedAt: 5}
	p.OnL1Miss(old, 0)
	p.OnL1Miss(young, 5)
	ds := p.Tick(100)
	if len(ds) != 1 || ds[0].Load != old {
		t.Fatalf("expected oldest load flushed, got %+v", ds)
	}
}

func TestFlushSSquashRemovesTracking(t *testing.T) {
	p := NewFlushS(1, 30)
	li := &LoadInfo{Tid: 0, IssuedAt: 0}
	p.OnL1Miss(li, 0)
	p.OnSquash(li)
	if p.Outstanding(0) != 0 {
		t.Fatal("squashed load still tracked")
	}
	if ds := p.Tick(100); len(ds) != 0 {
		t.Fatalf("directive for squashed load: %v", ds)
	}
}

func TestFlushNSOnlyOnDetectedMiss(t *testing.T) {
	p := NewFlushNS(1)
	li := &LoadInfo{Tid: 0, IssuedAt: 0}
	p.OnL1Miss(li, 0)
	// A slow L2 hit never triggers FL-NS, no matter how long.
	if ds := p.Tick(10000); len(ds) != 0 {
		t.Fatalf("FL-NS fired without a detected miss: %v", ds)
	}
	p.OnL2MissDetected(li, 40)
	ds := p.Tick(41)
	if len(ds) != 1 || ds[0].Action != ActFlush || ds[0].Load != li {
		t.Fatalf("FL-NS did not fire on detected miss: %v", ds)
	}
}

func TestFlushNames(t *testing.T) {
	if got := NewFlushS(1, 100).Name(); got != "FLUSH-S100" {
		t.Fatalf("name = %q", got)
	}
	if got := NewFlushNS(1).Name(); got != "FLUSH-NS" {
		t.Fatalf("name = %q", got)
	}
	if got := NewStall(1, 30).Name(); got != "STALL-S30" {
		t.Fatalf("name = %q", got)
	}
}

func TestFlushSPanicsOnBadTrigger(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFlushS(1, 0)
}

func TestStallLevelsWithLoadLifetime(t *testing.T) {
	p := NewStall(2, 50)
	li := &LoadInfo{Tid: 0, IssuedAt: 0}
	p.OnL1Miss(li, 0)
	d, ok := findDirective(p.Tick(40), 0)
	if !ok || d.Action != ActNone {
		t.Fatalf("before trigger: %v", d)
	}
	d, _ = findDirective(p.Tick(51), 0)
	if d.Action != ActStall {
		t.Fatalf("past trigger: %v, want stall", d)
	}
	// Stall must never escalate to flush.
	for now := uint64(60); now < 1000; now += 100 {
		d, _ = findDirective(p.Tick(now), 0)
		if d.Action == ActFlush {
			t.Fatal("STALL escalated to flush")
		}
	}
	p.OnResolve(li, 1000)
	d, _ = findDirective(p.Tick(1001), 0)
	if d.Action != ActNone {
		t.Fatalf("after resolve: %v, want none", d)
	}
}

func TestLoadInfoElapsed(t *testing.T) {
	li := &LoadInfo{IssuedAt: 100}
	if li.Elapsed(50) != 0 {
		t.Fatal("elapsed before issue should clamp to 0")
	}
	if li.Elapsed(130) != 30 {
		t.Fatalf("elapsed = %d", li.Elapsed(130))
	}
}

func TestActionString(t *testing.T) {
	if ActNone.String() != "none" || ActStall.String() != "stall" || ActFlush.String() != "flush" {
		t.Fatal("action names wrong")
	}
	if Action(9).String() == "" {
		t.Fatal("unknown action should still render")
	}
}
