package synth

import (
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/isa"
)

func TestAllProfilesValidate(t *testing.T) {
	ps := Profiles()
	if len(ps) != 26 {
		t.Fatalf("profile count = %d, want 26 (letters a-z)", len(ps))
	}
	letters := map[byte]bool{}
	names := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if letters[p.Letter] {
			t.Errorf("duplicate letter %c", p.Letter)
		}
		if names[p.Name] {
			t.Errorf("duplicate name %s", p.Name)
		}
		letters[p.Letter] = true
		names[p.Name] = true
	}
	// The letter map must cover a..z exactly (paper Figure 1).
	for ch := byte('a'); ch <= 'z'; ch++ {
		if !letters[ch] {
			t.Errorf("letter %c missing", ch)
		}
	}
}

func TestLookups(t *testing.T) {
	p, ok := ByLetter('d')
	if !ok || p.Name != "mcf" {
		t.Fatalf("ByLetter('d') = %q, %t; want mcf", p.Name, ok)
	}
	p, ok = ByName("swim")
	if !ok || p.Letter != 'n' {
		t.Fatalf("ByName(swim) = %c, %t", p.Letter, ok)
	}
	if _, ok := ByLetter('?'); ok {
		t.Fatal("phantom profile for '?'")
	}
	if _, ok := ByName("doom"); ok {
		t.Fatal("phantom profile for doom")
	}
}

func TestMemBoundClassification(t *testing.T) {
	// The paper's workload construction depends on having both kinds.
	for _, name := range []string{"mcf", "art", "swim", "lucas", "equake", "ammp"} {
		p, _ := ByName(name)
		if !p.MemBound() {
			t.Errorf("%s should classify memory-bound", name)
		}
	}
	for _, name := range []string{"gzip", "crafty", "eon", "mesa", "perlbmk", "sixtrack"} {
		p, _ := ByName(name)
		if p.MemBound() {
			t.Errorf("%s should classify compute-bound", name)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ByName("vpr")
	a := NewGenerator(p, 42, 0)
	b := NewGenerator(p, 42, 0)
	var ia, ib isa.Inst
	for i := 0; i < 5000; i++ {
		a.Next(&ia)
		b.Next(&ib)
		if ia != ib {
			t.Fatalf("diverged at %d: %+v vs %+v", i, ia, ib)
		}
	}
	// Different seed: different stream.
	c := NewGenerator(p, 43, 0)
	same := 0
	for i := 0; i < 1000; i++ {
		a.Next(&ia)
		c.Next(&ib)
		if ia == ib {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("seeds 42/43 nearly identical: %d/1000 equal", same)
	}
}

func TestGeneratorMixMatchesProfile(t *testing.T) {
	for _, name := range []string{"gzip", "mcf", "swim"} {
		p, _ := ByName(name)
		g := NewGenerator(p, 7, 0)
		var in isa.Inst
		const n = 200000
		counts := map[isa.Class]int{}
		for i := 0; i < n; i++ {
			g.Next(&in)
			counts[in.Class]++
		}
		loadFrac := float64(counts[isa.ClassLoad]) / n
		// Loads are emitted from body instructions only, so the
		// observed fraction is diluted by terminators (~1/blockLen).
		bodyShare := 1 - 1/float64(p.AvgBlockLen)
		wantLoad := p.LoadFrac * bodyShare
		if math.Abs(loadFrac-wantLoad) > 0.04 {
			t.Errorf("%s: load fraction %.3f, want ~%.3f", name, loadFrac, wantLoad)
		}
		ctrl := float64(counts[isa.ClassBranch]+counts[isa.ClassCall]+counts[isa.ClassReturn]) / n
		wantCtrl := 1 / (float64(p.AvgBlockLen)/2 + float64(p.AvgBlockLen)/2 + 1)
		// Average emitted block length is roughly AvgBlockLen; allow slack.
		if ctrl < wantCtrl/2 || ctrl > wantCtrl*2.5 {
			t.Errorf("%s: control fraction %.3f implausible (mean block %d)", name, ctrl, p.AvgBlockLen)
		}
		if g.Emitted() != n {
			t.Errorf("%s: emitted %d, want %d", name, g.Emitted(), n)
		}
	}
}

func TestGeneratorPCsFollowControlFlow(t *testing.T) {
	p, _ := ByName("gcc")
	g := NewGenerator(p, 3, 0)
	var prev, cur isa.Inst
	g.Next(&prev)
	for i := 0; i < 50000; i++ {
		g.Next(&cur)
		if prev.Class.IsControl() && prev.Taken {
			if cur.PC != prev.Target {
				t.Fatalf("taken control at %#x targets %#x but next PC is %#x",
					prev.PC, prev.Target, cur.PC)
			}
		} else if !prev.Class.IsControl() {
			if cur.PC != prev.PC+4 {
				t.Fatalf("sequential PC broken: %#x -> %#x", prev.PC, cur.PC)
			}
		} else if cur.PC != prev.PC+4 { // not-taken control falls through
			t.Fatalf("not-taken control at %#x falls to %#x", prev.PC, cur.PC)
		}
		prev = cur
	}
}

func TestGeneratorAddressSpacesDisjoint(t *testing.T) {
	p, _ := ByName("vpr")
	g0 := NewGenerator(p, 1, 0)
	g1 := NewGenerator(p, 1, 1<<40)
	var in isa.Inst
	max0 := uint64(0)
	for i := 0; i < 10000; i++ {
		g0.Next(&in)
		if in.Class.IsMem() && in.Addr > max0 {
			max0 = in.Addr
		}
	}
	min1 := ^uint64(0)
	for i := 0; i < 10000; i++ {
		g1.Next(&in)
		if in.Class.IsMem() && in.Addr < min1 {
			min1 = in.Addr
		}
	}
	if max0 >= min1 {
		t.Fatalf("address spaces overlap: max0=%#x min1=%#x", max0, min1)
	}
}

// measureMissRates runs a generator's memory stream through L1D/L2-sized
// caches to verify the working-set knobs produce the intended locality.
func measureMissRates(t *testing.T, name string, n int) (l1, l2 float64) {
	t.Helper()
	p, ok := ByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	cfg := config.Default(1)
	l1d := cache.New(cfg.Mem.L1D)
	l2c := cache.New(cfg.Mem.L2)
	g := NewGenerator(p, 11, 0)
	var in isa.Inst
	accesses, l1m, l2m := 0, 0, 0
	for i := 0; i < n; i++ {
		g.Next(&in)
		if !in.Class.IsMem() {
			continue
		}
		accesses++
		if !l1d.Access(in.Addr) {
			l1d.Fill(in.Addr)
			l1m++
			if !l2c.Access(in.Addr) {
				l2c.Fill(in.Addr)
				l2m++
			}
		}
	}
	if accesses == 0 {
		t.Fatalf("%s produced no memory accesses", name)
	}
	return float64(l1m) / float64(accesses), float64(l2m) / float64(accesses)
}

func TestLocalityShapesPerClass(t *testing.T) {
	const n = 400000
	l1Gzip, l2Gzip := measureMissRates(t, "gzip", n)
	l1Mcf, l2Mcf := measureMissRates(t, "mcf", n)
	if l1Gzip > 0.08 {
		t.Errorf("gzip L1D miss rate %.3f too high for a cache-friendly benchmark", l1Gzip)
	}
	if l2Gzip > 0.02 {
		t.Errorf("gzip L2 miss rate %.3f too high", l2Gzip)
	}
	if l1Mcf < 0.08 {
		t.Errorf("mcf L1D miss rate %.3f too low for a memory-bound benchmark", l1Mcf)
	}
	if l2Mcf < 0.05 {
		t.Errorf("mcf global L2 miss rate %.3f too low", l2Mcf)
	}
	if l2Mcf < l2Gzip*3 {
		t.Errorf("mcf (%.3f) should miss L2 far more than gzip (%.3f)", l2Mcf, l2Gzip)
	}
}

func TestChaseLoadsDependOnRecentLoads(t *testing.T) {
	p, _ := ByName("mcf") // ChaseFrac 0.45
	g := NewGenerator(p, 5, 0)
	var in isa.Inst
	loadDest := map[isa.Reg]bool{}
	chained, loads := 0, 0
	for i := 0; i < 100000; i++ {
		g.Next(&in)
		if in.Class != isa.ClassLoad {
			continue
		}
		loads++
		if loadDest[in.Src1] {
			chained++
		}
		loadDest[in.Dest] = true
	}
	frac := float64(chained) / float64(loads)
	if frac < 0.3 {
		t.Errorf("mcf chained-load fraction %.3f, want >= 0.3 (pointer chasing)", frac)
	}
}

func TestNewGeneratorRejectsInvalidProfile(t *testing.T) {
	p, _ := ByName("gzip")
	p.LoadFrac = 2.0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid profile")
		}
	}()
	NewGenerator(p, 1, 0)
}

func BenchmarkGeneratorNext(b *testing.B) {
	p, _ := ByName("gcc")
	g := NewGenerator(p, 1, 0)
	var in isa.Inst
	for i := 0; i < b.N; i++ {
		g.Next(&in)
	}
}
