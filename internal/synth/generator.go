package synth

import (
	"repro/internal/isa"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Generator synthesises the dynamic instruction stream for one running
// instance of a benchmark. It implements trace.Source.
//
// The generator materialises a small static control-flow graph (basic
// blocks with per-site branch biases and targets) and walks it, emitting
// body instructions whose classes, register dependencies and memory
// addresses are drawn from the profile's distributions. The walk is fully
// deterministic for a given (profile, seed).
type Generator struct {
	prof Profile
	r    *rng.Rand

	// Static program shape.
	blocks    []block
	codeBase  uint64
	dataBase  uint64
	coldLines int // footprint in cache lines
	coldPages int
	hotLines  int
	// regions are the active scattered-access pages; regionZipf skews
	// accesses towards the hotter regions.
	regions    []uint64 // page index within the footprint
	regionZipf *rng.Zipf

	// Walk state.
	cur       int // current block
	pos       int // instruction index within the block
	callStack []int
	// Dependency chains: the program interleaves several independent
	// computation chains (the source of its instruction-level
	// parallelism). Each chain owns a disjoint register range so a
	// chain's live value is never clobbered by another chain before its
	// consumer renames.
	chains       []chainState
	regsPerChain int
	lastLoadDest isa.Reg
	// streams are the sequential access pointers for strided accesses.
	streams   [numStreams]uint64
	streamSel int

	emitted uint64
}

type chainState struct {
	tail   isa.Reg // most recent destination, 0 if none yet
	isLoad bool    // tail was produced by a load
	seq    int     // register rotation within the chain's range
}

type block struct {
	start  uint64 // first instruction PC
	length int    // body instructions before the terminator
	term   isa.Class
	target int     // taken-successor block index (branch/call)
	bias   float64 // probability the terminator branch is taken
}

const (
	recentDepth  = 16
	numStreams   = 4
	lineBytes    = 64
	pageBytes    = 8 << 10
	linesPerPage = pageBytes / lineBytes
)

// NewGenerator builds a generator. addrBase offsets both the code and the
// data space so co-scheduled instances do not share cache lines (SPEC
// multiprogrammed workloads share nothing). The profile must validate.
func NewGenerator(prof Profile, seed uint64, addrBase uint64) *Generator {
	if err := prof.Validate(); err != nil {
		panic(err)
	}
	r := rng.New(seed ^ 0xC0FFEE)
	g := &Generator{
		prof:      prof,
		r:         r,
		codeBase:  addrBase,
		dataBase:  addrBase + 1<<30, // code and data live far apart
		coldLines: int(prof.FootprintBytes / lineBytes),
		coldPages: int(prof.FootprintBytes / pageBytes),
		hotLines:  int(prof.HotBytes / lineBytes),
	}
	if g.coldLines < 1 {
		g.coldLines = 1
	}
	if g.coldPages < 1 {
		g.coldPages = 1
	}
	if g.hotLines < 1 {
		g.hotLines = 1
	}
	// Scattered accesses work over a small set of active pages
	// ("regions") that occasionally migrate across the footprint. This
	// is what gives real programs simultaneous page-level locality (few
	// TLB misses) and line-level churn (many cache misses).
	g.regions = make([]uint64, prof.Regions)
	for i := range g.regions {
		g.regions[i] = uint64(r.Intn(g.coldPages))
	}
	g.regionZipf = rng.NewZipf(prof.Regions, 0.7)
	// Chain count from the dependency-distance knob: tighter dependency
	// distances (higher DepGeoP) mean fewer independent chains.
	nchains := int(2/prof.DepGeoP + 0.5)
	if nchains < 2 {
		nchains = 2
	}
	if nchains > 8 {
		nchains = 8
	}
	g.chains = make([]chainState, nchains)
	g.regsPerChain = 62 / nchains
	g.buildCFG(r)
	for i := range g.streams {
		g.streams[i] = g.dataBase + uint64(r.Intn(g.coldLines))*lineBytes
	}
	g.cur = 0
	return g
}

// buildCFG materialises the static blocks.
func (g *Generator) buildCFG(r *rng.Rand) {
	n := g.prof.CodeBlocks
	g.blocks = make([]block, n)
	pc := g.codeBase
	for i := range g.blocks {
		// Block lengths vary around the mean (at least 2).
		length := g.prof.AvgBlockLen/2 + r.Intn(g.prof.AvgBlockLen+1)
		if length < 2 {
			length = 2
		}
		b := &g.blocks[i]
		b.start = pc
		b.length = length
		pc += uint64(length+1) * 4 // body + terminator

		switch {
		case r.Bool(g.prof.CallFrac):
			b.term = isa.ClassCall
		default:
			b.term = isa.ClassBranch
		}
		// Taken targets favour nearby blocks (loops) with occasional
		// long jumps, giving the icache realistic locality.
		if r.Bool(0.7) {
			delta := r.Intn(9) - 4
			b.target = ((i+delta)%n + n) % n
		} else {
			b.target = r.Intn(n)
		}
		if b.target == i { // no self-loop degenerate case
			b.target = (i + 1) % n
		}
		// Per-site preferred direction: most sites are biased taken
		// (loop backedges), the rest biased not-taken.
		if r.Bool(0.6) {
			b.bias = g.prof.BranchBias
		} else {
			b.bias = 1 - g.prof.BranchBias
		}
	}
}

// Next implements trace.Source.
func (g *Generator) Next(out *isa.Inst) {
	b := &g.blocks[g.cur]
	if g.pos < b.length {
		g.emitBody(b, out)
		g.pos++
		return
	}
	g.emitTerminator(b, out)
	g.pos = 0
}

// Emitted returns the number of instructions produced so far.
func (g *Generator) Emitted() uint64 { return g.emitted }

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

func (g *Generator) emitBody(b *block, out *isa.Inst) {
	g.emitted++
	out.PC = b.start + uint64(g.pos)*4
	out.Taken = false
	out.Target = 0
	out.Addr = 0
	out.MissLatency = 0

	u := g.r.Float64()
	switch {
	case u < g.prof.LoadFrac:
		out.Class = isa.ClassLoad
		g.fillLoad(out)
	case u < g.prof.LoadFrac+g.prof.StoreFrac:
		out.Class = isa.ClassStore
		out.Dest = isa.InvalidReg
		out.Src1 = g.chainTail(g.r.Intn(len(g.chains))) // store data
		out.Src2 = isa.InvalidReg
		out.Addr = g.dataAddr()
	default:
		if g.r.Bool(g.prof.FPFrac) {
			if g.r.Bool(g.prof.LongOpFrac) {
				out.Class = isa.ClassFPDiv
			} else {
				out.Class = isa.ClassFP
			}
		} else {
			if g.r.Bool(g.prof.LongOpFrac) {
				out.Class = isa.ClassIntMul
			} else {
				out.Class = isa.ClassInt
			}
		}
		c := g.r.Intn(len(g.chains))
		out.Src1 = g.chainTail(c)
		// Cross-chain sources occasionally couple chains; most ops take
		// an immediate or loop-invariant second operand.
		if g.r.Bool(0.35) {
			out.Src2 = g.chainTail(g.r.Intn(len(g.chains)))
		} else {
			out.Src2 = isa.InvalidReg
		}
		out.Dest = g.advanceChain(c, false)
	}
}

func (g *Generator) fillLoad(out *isa.Inst) {
	c := g.r.Intn(len(g.chains))
	switch {
	case g.r.Bool(g.prof.ChaseFrac) && g.lastLoadDest != 0:
		// Pointer chasing: the address comes from a recent load result,
		// so this load cannot issue until that one returns.
		out.Src1 = g.lastLoadDest
	case g.r.Bool(0.6):
		// Induction-variable addressing: the address is ready at rename
		// (the source of memory-level parallelism).
		out.Src1 = isa.InvalidReg
	default:
		out.Src1 = g.chainTail(c)
	}
	out.Src2 = isa.InvalidReg
	out.Addr = g.dataAddr()
	out.Dest = g.advanceChain(c, true)
	g.lastLoadDest = out.Dest
}

// chainTail returns the live register of chain c (InvalidReg before its
// first write).
func (g *Generator) chainTail(c int) isa.Reg {
	if g.chains[c].tail == 0 {
		return isa.InvalidReg
	}
	return g.chains[c].tail
}

// advanceChain allocates the next destination register in chain c's
// range and records it as the chain's live value.
func (g *Generator) advanceChain(c int, isLoad bool) isa.Reg {
	ch := &g.chains[c]
	ch.seq++
	reg := isa.Reg(1 + c*g.regsPerChain + ch.seq%g.regsPerChain)
	ch.tail = reg
	ch.isLoad = isLoad
	return reg
}

func (g *Generator) emitTerminator(b *block, out *isa.Inst) {
	g.emitted++
	out.PC = b.start + uint64(b.length)*4
	out.Addr = 0
	out.MissLatency = 0
	out.Dest = isa.InvalidReg
	// Loop branches test induction variables, not just-loaded values:
	// prefer a recent non-load producer so branch resolution is rarely
	// chained behind a cache miss.
	out.Src1 = g.pickNonLoadSrc()
	out.Src2 = isa.InvalidReg

	switch b.term {
	case isa.ClassCall:
		out.Class = isa.ClassCall
		out.Taken = true
		out.Target = g.blocks[b.target].start
		if len(g.callStack) < 32 {
			g.callStack = append(g.callStack, g.cur)
		}
		g.cur = b.target
		return
	default:
		// A fraction of blocks return when the call stack is non-empty;
		// this pairs returns with calls dynamically.
		if len(g.callStack) > 0 && g.r.Bool(g.prof.CallFrac*1.2) {
			out.Class = isa.ClassReturn
			out.Taken = true
			ret := g.callStack[len(g.callStack)-1]
			g.callStack = g.callStack[:len(g.callStack)-1]
			// Resume at the block after the call site.
			g.cur = (ret + 1) % len(g.blocks)
			out.Target = g.blocks[g.cur].start
			return
		}
		out.Class = isa.ClassBranch
		taken := g.r.Bool(b.bias)
		out.Taken = taken
		if taken {
			out.Target = g.blocks[b.target].start
			g.cur = b.target
		} else {
			g.cur = (g.cur + 1) % len(g.blocks)
		}
	}
}

// dataAddr draws one memory address from the profile's locality model.
func (g *Generator) dataAddr() uint64 {
	if g.r.Bool(g.prof.HotFrac) {
		// Hot region: uniform over a small set that stays L1-resident.
		line := g.r.Intn(g.hotLines)
		return g.dataBase + uint64(line)*lineBytes + uint64(g.r.Intn(lineBytes)&^7)
	}
	if g.r.Bool(g.prof.StrideFrac) {
		// Streaming: advance one of the sequential pointers by 8 bytes.
		g.streamSel = (g.streamSel + 1) % numStreams
		a := g.streams[g.streamSel]
		g.streams[g.streamSel] += 8
		limit := g.dataBase + uint64(g.coldLines)*lineBytes
		if g.streams[g.streamSel] >= limit {
			g.streams[g.streamSel] = g.dataBase + uint64(g.r.Intn(g.coldLines))*lineBytes
		}
		return a
	}
	// Scattered: pick an active region (page), occasionally migrating it
	// to a fresh page, then a random line within it.
	idx := g.regionZipf.Sample(g.r)
	if g.r.Bool(g.prof.RegionJump) {
		g.regions[idx] = uint64(g.r.Intn(g.coldPages))
	}
	page := g.regions[idx]
	return g.dataBase + page*pageBytes + uint64(g.r.Intn(linesPerPage))*lineBytes +
		uint64(g.r.Intn(lineBytes)&^7)
}

// pickNonLoadSrc returns the live register of a chain whose tail is not a
// load result, so branch resolution is rarely chained behind a cache
// miss. Falls back to InvalidReg (an always-ready flag test) when every
// chain ends in a load.
func (g *Generator) pickNonLoadSrc() isa.Reg {
	for c := range g.chains {
		if !g.chains[c].isLoad && g.chains[c].tail != 0 {
			return g.chains[c].tail
		}
	}
	return isa.InvalidReg
}

var _ trace.Source = (*Generator)(nil)
