// Package synth generates deterministic synthetic instruction streams that
// stand in for the paper's SPEC2000 Alpha traces.
//
// We cannot ship SPEC2000 traces, so each benchmark is described by a
// statistical profile — instruction mix, dependency-distance distribution,
// data working-set structure, pointer-chasing degree, code footprint and
// branch predictability — and a generator synthesises an unbounded
// dynamic instruction stream from it. What the paper's experiments need
// from a trace is its *rate behaviour* (ILP, L1/L2 miss rates, mispredict
// rates, memory-level parallelism), which these parameters control
// directly; see DESIGN.md for the substitution argument.
package synth

import "fmt"

// Profile is the statistical description of one benchmark.
type Profile struct {
	// Name is the SPEC2000 benchmark name; Letter is the paper's
	// Figure 1 single-letter workload code.
	Name   string
	Letter byte
	// FP marks floating-point benchmarks (CFP2000).
	FP bool

	// LoadFrac and StoreFrac are the fractions of dynamic instructions
	// that are loads and stores.
	LoadFrac, StoreFrac float64
	// FPFrac is the fraction of non-memory, non-control instructions
	// that execute in the FP pipeline.
	FPFrac float64
	// LongOpFrac is the fraction of ALU operations that are
	// long-latency (integer multiply or FP divide).
	LongOpFrac float64

	// AvgBlockLen is the mean basic-block length in instructions; the
	// dynamic control-instruction fraction is roughly 1/AvgBlockLen.
	AvgBlockLen int
	// CodeBlocks is the number of static basic blocks; the code
	// footprint is approximately CodeBlocks*AvgBlockLen*4 bytes.
	CodeBlocks int
	// BranchBias is the probability a conditional branch follows its
	// per-site preferred direction: the knob for predictability.
	BranchBias float64
	// CallFrac is the fraction of blocks terminated by a call.
	CallFrac float64

	// FootprintBytes is the total data working set; accesses outside
	// the hot set spread over it.
	FootprintBytes uint64
	// HotBytes is the small hot region (stack, locals) and HotFrac the
	// fraction of memory accesses that stay inside it.
	HotBytes uint64
	HotFrac  float64
	// StrideFrac is the fraction of cold accesses that stream
	// sequentially (spatial locality); the rest are scattered.
	StrideFrac float64
	// ChaseFrac is the fraction of loads whose address depends on the
	// result of a recent load (pointer chasing — serialises misses and
	// destroys memory-level parallelism).
	ChaseFrac float64
	// Regions is the number of active scattered-access regions (one
	// page each); RegionJump is the per-access probability that the
	// chosen region migrates to a fresh page of the footprint. Together
	// they set the page-level locality: DTLB pressure scales with
	// RegionJump while L2 pressure scales with the fraction of cold
	// lines inside resident regions.
	Regions    int
	RegionJump float64

	// DepGeoP parameterises the geometric register-dependency distance:
	// higher values give shorter distances (longer chains, less ILP).
	DepGeoP float64
}

// MemBound reports whether the profile is expected to spend a substantial
// fraction of its time waiting for the shared L2 or memory — the property
// the paper's workload mixes are built around.
func (p Profile) MemBound() bool {
	return p.FootprintBytes > 8<<20 && p.HotFrac < 0.93
}

// Validate reports the first out-of-range parameter.
func (p Profile) Validate() error {
	frac := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("synth: %s: %s=%v out of [0,1]", p.Name, name, v)
		}
		return nil
	}
	for _, c := range []struct {
		n string
		v float64
	}{
		{"LoadFrac", p.LoadFrac}, {"StoreFrac", p.StoreFrac},
		{"FPFrac", p.FPFrac}, {"LongOpFrac", p.LongOpFrac},
		{"BranchBias", p.BranchBias}, {"CallFrac", p.CallFrac},
		{"HotFrac", p.HotFrac}, {"StrideFrac", p.StrideFrac},
		{"ChaseFrac", p.ChaseFrac}, {"DepGeoP", p.DepGeoP},
		{"RegionJump", p.RegionJump},
	} {
		if err := frac(c.n, c.v); err != nil {
			return err
		}
	}
	if p.Regions < 1 {
		return fmt.Errorf("synth: %s: need at least one active region", p.Name)
	}
	if p.LoadFrac+p.StoreFrac > 0.9 {
		return fmt.Errorf("synth: %s: memory fraction %v implausible", p.Name, p.LoadFrac+p.StoreFrac)
	}
	if p.AvgBlockLen < 2 || p.CodeBlocks < 2 {
		return fmt.Errorf("synth: %s: degenerate code shape %d/%d", p.Name, p.AvgBlockLen, p.CodeBlocks)
	}
	if p.FootprintBytes == 0 || p.HotBytes == 0 || p.HotBytes > p.FootprintBytes {
		return fmt.Errorf("synth: %s: bad footprint %d/%d", p.Name, p.HotBytes, p.FootprintBytes)
	}
	if p.BranchBias < 0.5 {
		return fmt.Errorf("synth: %s: BranchBias %v below coin flip", p.Name, p.BranchBias)
	}
	return nil
}

// profiles is the table for the 26 SPEC2000 benchmarks of the paper's
// Figure 1 letter map. Parameter choices follow the community's published
// characterisations qualitatively: mcf/art/swim/lucas/equake/ammp/applu/
// mgrid/galgel are memory-bound with large footprints, gzip/crafty/eon/
// mesa/perlbmk/sixtrack are compute-bound with small ones, gcc/vortex/
// perlbmk have large code footprints, mcf/ammp/equake chase pointers.
var profiles = []Profile{
	{Name: "gzip", Letter: 'a', LoadFrac: 0.21, StoreFrac: 0.09, FPFrac: 0.02, LongOpFrac: 0.01,
		AvgBlockLen: 7, CodeBlocks: 600, BranchBias: 0.92, CallFrac: 0.03,
		FootprintBytes: 1 << 20, HotBytes: 4 << 10, HotFrac: 0.96, StrideFrac: 0.75, ChaseFrac: 0.02,
		Regions: 8, RegionJump: 0.002, DepGeoP: 0.45},
	{Name: "vpr", Letter: 'b', LoadFrac: 0.28, StoreFrac: 0.11, FPFrac: 0.12, LongOpFrac: 0.02,
		AvgBlockLen: 6, CodeBlocks: 900, BranchBias: 0.88, CallFrac: 0.04,
		FootprintBytes: 3 << 19, HotBytes: 6 << 10, HotFrac: 0.93, StrideFrac: 0.35, ChaseFrac: 0.08,
		Regions: 16, RegionJump: 0.002, DepGeoP: 0.50},
	{Name: "gcc", Letter: 'c', LoadFrac: 0.26, StoreFrac: 0.13, FPFrac: 0.01, LongOpFrac: 0.01,
		AvgBlockLen: 5, CodeBlocks: 2600, BranchBias: 0.91, CallFrac: 0.06,
		FootprintBytes: 3 << 20, HotBytes: 4 << 10, HotFrac: 0.94, StrideFrac: 0.45, ChaseFrac: 0.06,
		Regions: 16, RegionJump: 0.003, DepGeoP: 0.50},
	{Name: "mcf", Letter: 'd', LoadFrac: 0.31, StoreFrac: 0.09, FPFrac: 0.01, LongOpFrac: 0.01,
		AvgBlockLen: 6, CodeBlocks: 500, BranchBias: 0.89, CallFrac: 0.03,
		FootprintBytes: 96 << 20, HotBytes: 4 << 10, HotFrac: 0.86, StrideFrac: 0.10, ChaseFrac: 0.40,
		Regions: 32, RegionJump: 0.02, DepGeoP: 0.42},
	{Name: "crafty", Letter: 'e', LoadFrac: 0.27, StoreFrac: 0.07, FPFrac: 0.01, LongOpFrac: 0.02,
		AvgBlockLen: 8, CodeBlocks: 1400, BranchBias: 0.91, CallFrac: 0.05,
		FootprintBytes: 1 << 20, HotBytes: 4 << 10, HotFrac: 0.97, StrideFrac: 0.40, ChaseFrac: 0.02,
		Regions: 8, RegionJump: 0.002, DepGeoP: 0.40},
	{Name: "perlbmk", Letter: 'f', LoadFrac: 0.25, StoreFrac: 0.14, FPFrac: 0.01, LongOpFrac: 0.01,
		AvgBlockLen: 6, CodeBlocks: 2200, BranchBias: 0.93, CallFrac: 0.07,
		FootprintBytes: 3 << 19, HotBytes: 4 << 10, HotFrac: 0.96, StrideFrac: 0.50, ChaseFrac: 0.03,
		Regions: 8, RegionJump: 0.002, DepGeoP: 0.45},
	{Name: "parser", Letter: 'g', LoadFrac: 0.24, StoreFrac: 0.10, FPFrac: 0.01, LongOpFrac: 0.01,
		AvgBlockLen: 5, CodeBlocks: 1100, BranchBias: 0.90, CallFrac: 0.05,
		FootprintBytes: 8 << 20, HotBytes: 6 << 10, HotFrac: 0.94, StrideFrac: 0.30, ChaseFrac: 0.08,
		Regions: 24, RegionJump: 0.004, DepGeoP: 0.50},
	{Name: "eon", Letter: 'h', LoadFrac: 0.28, StoreFrac: 0.13, FPFrac: 0.25, LongOpFrac: 0.02,
		AvgBlockLen: 9, CodeBlocks: 1300, BranchBias: 0.94, CallFrac: 0.08,
		FootprintBytes: 1 << 20, HotBytes: 4 << 10, HotFrac: 0.98, StrideFrac: 0.55, ChaseFrac: 0.01,
		Regions: 8, RegionJump: 0.002, DepGeoP: 0.40},
	{Name: "gap", Letter: 'i', LoadFrac: 0.24, StoreFrac: 0.12, FPFrac: 0.02, LongOpFrac: 0.02,
		AvgBlockLen: 7, CodeBlocks: 1500, BranchBias: 0.92, CallFrac: 0.05,
		FootprintBytes: 4 << 20, HotBytes: 4 << 10, HotFrac: 0.94, StrideFrac: 0.55, ChaseFrac: 0.05,
		Regions: 16, RegionJump: 0.003, DepGeoP: 0.45},
	{Name: "vortex", Letter: 'j', LoadFrac: 0.27, StoreFrac: 0.16, FPFrac: 0.01, LongOpFrac: 0.01,
		AvgBlockLen: 7, CodeBlocks: 2400, BranchBias: 0.94, CallFrac: 0.08,
		FootprintBytes: 2 << 20, HotBytes: 4 << 10, HotFrac: 0.95, StrideFrac: 0.50, ChaseFrac: 0.04,
		Regions: 16, RegionJump: 0.003, DepGeoP: 0.42},
	{Name: "bzip2", Letter: 'k', LoadFrac: 0.24, StoreFrac: 0.10, FPFrac: 0.01, LongOpFrac: 0.01,
		AvgBlockLen: 7, CodeBlocks: 500, BranchBias: 0.90, CallFrac: 0.02,
		FootprintBytes: 6 << 20, HotBytes: 4 << 10, HotFrac: 0.94, StrideFrac: 0.70, ChaseFrac: 0.03,
		Regions: 16, RegionJump: 0.003, DepGeoP: 0.45},
	{Name: "twolf", Letter: 'l', LoadFrac: 0.28, StoreFrac: 0.08, FPFrac: 0.08, LongOpFrac: 0.02,
		AvgBlockLen: 6, CodeBlocks: 900, BranchBias: 0.87, CallFrac: 0.04,
		FootprintBytes: 3 << 19, HotBytes: 4 << 10, HotFrac: 0.90, StrideFrac: 0.25, ChaseFrac: 0.10,
		Regions: 16, RegionJump: 0.002, DepGeoP: 0.52},
	{Name: "art", Letter: 'm', LoadFrac: 0.32, StoreFrac: 0.07, FPFrac: 0.65, LongOpFrac: 0.02,
		AvgBlockLen: 10, CodeBlocks: 300, BranchBias: 0.95, CallFrac: 0.02,
		FootprintBytes: 24 << 20, HotBytes: 4 << 10, HotFrac: 0.76, StrideFrac: 0.60, ChaseFrac: 0.05,
		Regions: 32, RegionJump: 0.02, DepGeoP: 0.45},
	{Name: "swim", Letter: 'n', LoadFrac: 0.30, StoreFrac: 0.10, FPFrac: 0.80, LongOpFrac: 0.02,
		AvgBlockLen: 14, CodeBlocks: 250, BranchBias: 0.97, CallFrac: 0.01,
		FootprintBytes: 64 << 20, HotBytes: 4 << 10, HotFrac: 0.78, StrideFrac: 0.90, ChaseFrac: 0.01,
		Regions: 16, RegionJump: 0.01, DepGeoP: 0.35},
	{Name: "apsi", Letter: 'o', LoadFrac: 0.26, StoreFrac: 0.12, FPFrac: 0.70, LongOpFrac: 0.03,
		AvgBlockLen: 11, CodeBlocks: 700, BranchBias: 0.95, CallFrac: 0.03,
		FootprintBytes: 6 << 20, HotBytes: 6 << 10, HotFrac: 0.92, StrideFrac: 0.70, ChaseFrac: 0.02,
		Regions: 16, RegionJump: 0.004, DepGeoP: 0.40},
	{Name: "wupwise", Letter: 'p', LoadFrac: 0.24, StoreFrac: 0.10, FPFrac: 0.75, LongOpFrac: 0.04,
		AvgBlockLen: 12, CodeBlocks: 400, BranchBias: 0.96, CallFrac: 0.04,
		FootprintBytes: 3 << 20, HotBytes: 4 << 10, HotFrac: 0.93, StrideFrac: 0.75, ChaseFrac: 0.02,
		Regions: 16, RegionJump: 0.003, DepGeoP: 0.38},
	{Name: "equake", Letter: 'q', LoadFrac: 0.34, StoreFrac: 0.08, FPFrac: 0.60, LongOpFrac: 0.03,
		AvgBlockLen: 9, CodeBlocks: 400, BranchBias: 0.94, CallFrac: 0.02,
		FootprintBytes: 40 << 20, HotBytes: 4 << 10, HotFrac: 0.85, StrideFrac: 0.30, ChaseFrac: 0.25,
		Regions: 32, RegionJump: 0.02, DepGeoP: 0.48},
	{Name: "lucas", Letter: 'r', LoadFrac: 0.28, StoreFrac: 0.11, FPFrac: 0.82, LongOpFrac: 0.03,
		AvgBlockLen: 13, CodeBlocks: 300, BranchBias: 0.97, CallFrac: 0.01,
		FootprintBytes: 64 << 20, HotBytes: 4 << 10, HotFrac: 0.84, StrideFrac: 0.80, ChaseFrac: 0.02,
		Regions: 16, RegionJump: 0.01, DepGeoP: 0.36},
	{Name: "mesa", Letter: 's', LoadFrac: 0.25, StoreFrac: 0.12, FPFrac: 0.45, LongOpFrac: 0.02,
		AvgBlockLen: 9, CodeBlocks: 1200, BranchBias: 0.95, CallFrac: 0.06,
		FootprintBytes: 3 << 19, HotBytes: 4 << 10, HotFrac: 0.97, StrideFrac: 0.60, ChaseFrac: 0.02,
		Regions: 8, RegionJump: 0.002, DepGeoP: 0.40},
	{Name: "fma3d", Letter: 't', LoadFrac: 0.27, StoreFrac: 0.13, FPFrac: 0.65, LongOpFrac: 0.03,
		AvgBlockLen: 10, CodeBlocks: 1600, BranchBias: 0.95, CallFrac: 0.05,
		FootprintBytes: 6 << 20, HotBytes: 6 << 10, HotFrac: 0.93, StrideFrac: 0.55, ChaseFrac: 0.04,
		Regions: 24, RegionJump: 0.004, DepGeoP: 0.42},
	{Name: "sixtrack", Letter: 'u', LoadFrac: 0.23, StoreFrac: 0.09, FPFrac: 0.78, LongOpFrac: 0.04,
		AvgBlockLen: 12, CodeBlocks: 900, BranchBias: 0.96, CallFrac: 0.03,
		FootprintBytes: 3 << 19, HotBytes: 4 << 10, HotFrac: 0.97, StrideFrac: 0.70, ChaseFrac: 0.01,
		Regions: 8, RegionJump: 0.002, DepGeoP: 0.38},
	{Name: "facerec", Letter: 'v', LoadFrac: 0.28, StoreFrac: 0.08, FPFrac: 0.72, LongOpFrac: 0.03,
		AvgBlockLen: 11, CodeBlocks: 500, BranchBias: 0.95, CallFrac: 0.03,
		FootprintBytes: 6 << 20, HotBytes: 6 << 10, HotFrac: 0.92, StrideFrac: 0.75, ChaseFrac: 0.02,
		Regions: 16, RegionJump: 0.004, DepGeoP: 0.40},
	{Name: "applu", Letter: 'w', LoadFrac: 0.29, StoreFrac: 0.11, FPFrac: 0.80, LongOpFrac: 0.04,
		AvgBlockLen: 13, CodeBlocks: 450, BranchBias: 0.96, CallFrac: 0.02,
		FootprintBytes: 40 << 20, HotBytes: 4 << 10, HotFrac: 0.86, StrideFrac: 0.85, ChaseFrac: 0.01,
		Regions: 16, RegionJump: 0.01, DepGeoP: 0.38},
	{Name: "galgel", Letter: 'x', LoadFrac: 0.28, StoreFrac: 0.09, FPFrac: 0.78, LongOpFrac: 0.03,
		AvgBlockLen: 12, CodeBlocks: 500, BranchBias: 0.96, CallFrac: 0.02,
		FootprintBytes: 16 << 20, HotBytes: 6 << 10, HotFrac: 0.90, StrideFrac: 0.70, ChaseFrac: 0.02,
		Regions: 24, RegionJump: 0.008, DepGeoP: 0.40},
	{Name: "ammp", Letter: 'y', LoadFrac: 0.30, StoreFrac: 0.08, FPFrac: 0.60, LongOpFrac: 0.04,
		AvgBlockLen: 9, CodeBlocks: 600, BranchBias: 0.93, CallFrac: 0.03,
		FootprintBytes: 32 << 20, HotBytes: 4 << 10, HotFrac: 0.85, StrideFrac: 0.25, ChaseFrac: 0.30,
		Regions: 32, RegionJump: 0.02, DepGeoP: 0.48},
	{Name: "mgrid", Letter: 'z', LoadFrac: 0.32, StoreFrac: 0.08, FPFrac: 0.82, LongOpFrac: 0.03,
		AvgBlockLen: 14, CodeBlocks: 300, BranchBias: 0.97, CallFrac: 0.01,
		FootprintBytes: 40 << 20, HotBytes: 4 << 10, HotFrac: 0.87, StrideFrac: 0.90, ChaseFrac: 0.01,
		Regions: 16, RegionJump: 0.01, DepGeoP: 0.36},
}

// Profiles returns all benchmark profiles in letter order.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// ByLetter returns the profile for the paper's one-letter code.
func ByLetter(letter byte) (Profile, bool) {
	for _, p := range profiles {
		if p.Letter == letter {
			return p, true
		}
	}
	return Profile{}, false
}

// ByName returns the profile for a benchmark name.
func ByName(name string) (Profile, bool) {
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
