package synth

import (
	"testing"

	"repro/internal/isa"
)

// TestCFGTargetsAreBlockStarts verifies every taken control transfer
// lands exactly on a block start (the generator's static program is
// well-formed), so the icache/BTB see a consistent code layout.
func TestCFGTargetsAreBlockStarts(t *testing.T) {
	p, _ := ByName("gcc")
	g := NewGenerator(p, 9, 0)
	starts := map[uint64]bool{}
	for _, b := range g.blocks {
		starts[b.start] = true
	}
	var in isa.Inst
	for i := 0; i < 100000; i++ {
		g.Next(&in)
		if in.Class.IsControl() && in.Taken && !starts[in.Target] {
			t.Fatalf("control at %#x targets %#x, not a block start", in.PC, in.Target)
		}
	}
}

// TestCFGCodeFootprint checks the static code size tracks the profile's
// block parameters (the icache pressure knob).
func TestCFGCodeFootprint(t *testing.T) {
	for _, name := range []string{"gzip", "gcc", "swim"} {
		p, _ := ByName(name)
		g := NewGenerator(p, 1, 0)
		last := g.blocks[len(g.blocks)-1]
		span := last.start + uint64(last.length+1)*4 // end of code
		expected := uint64(p.CodeBlocks * (p.AvgBlockLen + 1) * 4)
		if span < expected/2 || span > expected*2 {
			t.Errorf("%s: code span %d far from expected ~%d", name, span, expected)
		}
	}
}

// TestCallsReturnToCallSiteSuccessor verifies call/return pairing: the
// instruction stream after a return continues at the block following the
// call site.
func TestCallsReturnToCallSiteSuccessor(t *testing.T) {
	p, _ := ByName("vortex") // CallFrac 0.08: plenty of calls
	g := NewGenerator(p, 4, 0)
	var in isa.Inst
	returns := 0
	for i := 0; i < 200000 && returns < 50; i++ {
		g.Next(&in)
		if in.Class == isa.ClassReturn {
			returns++
			if !in.Taken || in.Target == 0 {
				t.Fatal("return with no target")
			}
			var next isa.Inst
			g.Next(&next)
			if next.PC != in.Target {
				t.Fatalf("return targets %#x but stream continues at %#x", in.Target, next.PC)
			}
		}
	}
	if returns == 0 {
		t.Fatal("no returns emitted")
	}
}

// TestBranchBiasControlsPredictability verifies the BranchBias knob: a
// high-bias profile's branch outcomes are more compressible (per-site
// majority agreement) than a low-bias profile's.
func TestBranchBiasControlsPredictability(t *testing.T) {
	agree := func(name string) float64 {
		p, _ := ByName(name)
		g := NewGenerator(p, 10, 0)
		var in isa.Inst
		taken := map[uint64]int{}
		total := map[uint64]int{}
		for i := 0; i < 300000; i++ {
			g.Next(&in)
			if in.Class == isa.ClassBranch {
				total[in.PC]++
				if in.Taken {
					taken[in.PC]++
				}
			}
		}
		agreeing, n := 0, 0
		for pc, tot := range total {
			if tot < 10 {
				continue
			}
			maj := taken[pc]
			if maj*2 < tot {
				maj = tot - maj
			}
			agreeing += maj
			n += tot
		}
		if n == 0 {
			t.Fatalf("%s produced no measured branches", name)
		}
		return float64(agreeing) / float64(n)
	}
	swim := agree("swim")   // bias 0.97
	twolf := agree("twolf") // bias 0.87
	if swim <= twolf {
		t.Fatalf("swim agreement %.3f not above twolf %.3f", swim, twolf)
	}
	if swim < 0.90 {
		t.Fatalf("swim agreement %.3f too low for bias 0.97", swim)
	}
}

// TestStreamsStayInFootprint verifies strided accesses never escape the
// thread's data region.
func TestStreamsStayInFootprint(t *testing.T) {
	p, _ := ByName("swim")
	base := uint64(3) << 34
	g := NewGenerator(p, 2, base)
	dataLo := base + 1<<30
	dataHi := dataLo + p.FootprintBytes
	var in isa.Inst
	for i := 0; i < 200000; i++ {
		g.Next(&in)
		if in.Class.IsMem() && (in.Addr < dataLo || in.Addr >= dataHi) {
			t.Fatalf("access %#x outside data region [%#x,%#x)", in.Addr, dataLo, dataHi)
		}
	}
}
