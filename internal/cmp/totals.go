package cmp

import "repro/internal/stats"

// Counter IDs the incremental digest reads. MustRegister returns the same
// dense ID the producing packages (pipeline, mem) allocated for the name,
// so ReadTotals polls the counters with plain array reads.
var (
	cPolicyFlushes = stats.MustRegister("policy.flushes")
	cL2Hits        = stats.MustRegister("l2.hits")
	cL2Misses      = stats.MustRegister("l2.misses")
)

// Totals is the chip-wide cumulative measurement digest since the last
// measurement reset: the scalar metrics an interval sampler polls while
// the simulation runs, without waiting for end-of-run collection.
type Totals struct {
	// Committed is the chip-wide committed instruction count.
	Committed uint64
	// Flushes counts FLUSH events across all cores.
	Flushes uint64
	// FlushedInsts counts instructions squashed by the FLUSH mechanism.
	FlushedInsts uint64
	// WastedEnergy is the FLUSH-waste energy account in energy units.
	WastedEnergy float64
	// L2Hits and L2Misses are the shared-L2 event counts.
	L2Hits, L2Misses uint64
}

// ReadTotals fills t with the current cumulative totals. It allocates
// nothing and mutates no simulator state, so probes may call it every
// cycle without perturbing determinism or the zero-allocation cycle loop.
//
//mflush:hotpath-ok
func (ch *Chip) ReadTotals(t *Totals) {
	*t = Totals{}
	for _, c := range ch.cores {
		t.Committed += c.CommittedTotal()
		t.Flushes += c.Stats().Value(cPolicyFlushes)
		t.FlushedInsts += c.Energy().FlushedTotal()
		t.WastedEnergy += c.Energy().Wasted()
	}
	l2 := ch.l2.Counters()
	t.L2Hits = l2.Value(cL2Hits)
	t.L2Misses = l2.Value(cL2Misses)
}

// AppendCommitted appends the per-thread committed counts in global
// thread order (core-major) to dst and returns the extended slice —
// allocation-free once dst has capacity.
//
//mflush:hotpath-ok
func (ch *Chip) AppendCommitted(dst []uint64) []uint64 {
	for _, c := range ch.cores {
		dst = c.AppendCommitted(dst)
	}
	return dst
}
