// Package cmp assembles the chip multiprocessor: N SMT cores (from
// internal/pipeline) sharing one banked L2 system (internal/mem) over the
// shared bus, advanced in lock-step one cycle at a time.
package cmp

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/trace"
)

// Chip is one CMP+SMT processor.
type Chip struct {
	cfg   config.Config
	l2    *mem.L2System
	cores []*pipeline.Core
	now   uint64
}

// New builds a chip. policies supplies one IFetch policy per core (cores
// do not share policy state, matching per-core hardware); sources and
// dataBases are indexed [core][context].
func New(cfg config.Config, policies []policy.Policy,
	sources [][]trace.Source, dataBases [][]uint64) (*Chip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(policies) != cfg.Cores || len(sources) != cfg.Cores || len(dataBases) != cfg.Cores {
		return nil, fmt.Errorf("cmp: need %d cores of policies/sources/bases, got %d/%d/%d",
			cfg.Cores, len(policies), len(sources), len(dataBases))
	}
	ch := &Chip{cfg: cfg, l2: mem.NewL2System(cfg)}
	for i := 0; i < cfg.Cores; i++ {
		ch.cores = append(ch.cores,
			pipeline.New(i, &ch.cfg, policies[i], ch.l2, sources[i], dataBases[i]))
	}
	return ch, nil
}

// Tick advances the whole chip one cycle: the shared system first (its
// responses reach the cores this cycle), then every core.
//
//mflush:hotpath-ok
func (ch *Chip) Tick() {
	for _, r := range ch.l2.Tick(ch.now) {
		ch.cores[r.CoreID].HandleResponse(r, ch.now)
	}
	for _, r := range ch.l2.DrainMissDetected() {
		ch.cores[r.CoreID].HandleL2MissDetected(r, ch.now)
	}
	for _, c := range ch.cores {
		c.Tick(ch.now)
	}
	ch.now++
}

// Run advances the chip by the given number of cycles.
//
//mflush:hotpath-ok
func (ch *Chip) Run(cycles uint64) {
	for i := uint64(0); i < cycles; i++ {
		ch.Tick()
	}
}

// Now returns the current cycle.
//
//mflush:hotpath-ok
func (ch *Chip) Now() uint64 { return ch.now }

// Cores returns the core models.
func (ch *Chip) Cores() []*pipeline.Core { return ch.cores }

// L2 returns the shared system.
func (ch *Chip) L2() *mem.L2System { return ch.l2 }

// Config returns the machine configuration.
func (ch *Chip) Config() config.Config { return ch.cfg }

// CheckInvariants validates every core's resource conservation.
func (ch *Chip) CheckInvariants() error {
	for i, c := range ch.cores {
		if err := c.CheckInvariants(); err != nil {
			return fmt.Errorf("core %d: %w", i, err)
		}
	}
	return nil
}
