package cmp

import (
	"testing"

	"repro/internal/config"
	"repro/internal/policy"
	"repro/internal/synth"
	"repro/internal/trace"
)

func buildChip(t *testing.T, cores int) *Chip {
	t.Helper()
	cfg := config.Default(cores)
	var policies []policy.Policy
	var sources [][]trace.Source
	var bases [][]uint64
	prof, _ := synth.ByName("gzip")
	for c := 0; c < cores; c++ {
		policies = append(policies, policy.NewICOUNT())
		var srcs []trace.Source
		var bs []uint64
		for th := 0; th < cfg.Core.ThreadsPerCore; th++ {
			g := uint64(c*cfg.Core.ThreadsPerCore + th)
			base := (g + 1) << 34
			srcs = append(srcs, synth.NewGenerator(prof, g+1, base))
			bs = append(bs, base)
		}
		sources = append(sources, srcs)
		bases = append(bases, bs)
	}
	chip, err := New(cfg, policies, sources, bases)
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

func TestChipRunsAndProgresses(t *testing.T) {
	chip := buildChip(t, 2)
	chip.Run(30000)
	if chip.Now() != 30000 {
		t.Fatalf("now = %d", chip.Now())
	}
	total := uint64(0)
	for _, c := range chip.Cores() {
		for _, n := range c.Committed() {
			total += n
		}
	}
	if total == 0 {
		t.Fatal("no instructions committed")
	}
	if err := chip.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if chip.L2().Counters().Get("l2.requests") == 0 {
		t.Fatal("no shared-L2 traffic")
	}
}

func TestChipRejectsMismatchedInputs(t *testing.T) {
	cfg := config.Default(2)
	if _, err := New(cfg, nil, nil, nil); err == nil {
		t.Fatal("mismatched input lengths accepted")
	}
	bad := cfg
	bad.Cores = 0
	if _, err := New(bad, nil, nil, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestChipDeterminism(t *testing.T) {
	run := func() uint64 {
		chip := buildChip(t, 2)
		chip.Run(20000)
		total := uint64(0)
		for _, c := range chip.Cores() {
			for _, n := range c.Committed() {
				total += n
			}
		}
		return total
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic chips: %d vs %d", a, b)
	}
}

func TestResponsesRoutedToRightCore(t *testing.T) {
	// Each thread has a disjoint address space, so every thread making
	// progress proves responses reach the right core (a misrouted fill
	// would leave some thread starved on its icache/dcache waits).
	chip := buildChip(t, 4)
	chip.Run(60000)
	for ci, c := range chip.Cores() {
		for ti, n := range c.Committed() {
			if n == 0 {
				t.Errorf("core %d thread %d starved", ci, ti)
			}
		}
	}
}
