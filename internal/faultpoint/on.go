//go:build faultpoint

package faultpoint

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// action is one armed faultpoint: what to do and on which hit.
type action struct {
	kind  string // "crash", "delay", "error"
	nth   int    // fire on this hit (1-based); 0 means every hit
	delay time.Duration
	msg   string
}

var (
	mu     sync.Mutex
	armed  map[string]action
	counts map[string]int
)

// init arms every point listed in MFLUSH_FAULTPOINTS, so a real binary
// built with this tag is driven purely by its environment.
func init() {
	armed = make(map[string]action)
	counts = make(map[string]int)
	env := os.Getenv("MFLUSH_FAULTPOINTS")
	if env == "" {
		return
	}
	for _, pair := range strings.Split(env, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, spec, ok := strings.Cut(pair, "=")
		if !ok {
			panic(fmt.Sprintf("faultpoint: MFLUSH_FAULTPOINTS entry %q is not name=action", pair))
		}
		if err := Set(name, spec); err != nil {
			panic(err)
		}
	}
}

// Set arms the named point with an action spec (see the package comment
// for the syntax). An empty spec disarms the point.
func Set(name, spec string) error {
	mu.Lock()
	defer mu.Unlock()
	if spec == "" {
		delete(armed, name)
		delete(counts, name)
		return nil
	}
	a, err := parse(spec)
	if err != nil {
		return fmt.Errorf("faultpoint: %s: %w", name, err)
	}
	armed[name] = a
	counts[name] = 0
	return nil
}

// Reset disarms every point and zeroes every hit counter.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed = make(map[string]action)
	counts = make(map[string]int)
}

// parse decodes one action spec.
func parse(spec string) (action, error) {
	kind, rest, _ := strings.Cut(spec, ":")
	var a action
	if base, nth, ok := strings.Cut(kind, "@"); ok {
		n, err := strconv.Atoi(nth)
		if err != nil || n < 1 {
			return action{}, fmt.Errorf("bad hit count %q", nth)
		}
		kind, a.nth = base, n
	}
	a.kind = kind
	switch kind {
	case "crash":
	case "delay":
		d, err := time.ParseDuration(rest)
		if err != nil {
			return action{}, fmt.Errorf("bad delay %q: %w", rest, err)
		}
		a.delay = d
	case "error":
		if rest == "" {
			rest = "injected fault"
		}
		a.msg = rest
	default:
		return action{}, fmt.Errorf("unknown action %q", kind)
	}
	return a, nil
}

// fire consumes one hit of the named point and returns the action to
// perform now, if the point is armed for this hit.
func fire(name string) (action, bool) {
	mu.Lock()
	defer mu.Unlock()
	a, ok := armed[name]
	if !ok {
		return action{}, false
	}
	counts[name]++
	if a.nth != 0 && counts[name] != a.nth {
		return action{}, false
	}
	return a, true
}

// Active reports whether the named point would fire on its next hit,
// without consuming a hit — the guard production code uses to prepare a
// firing point's extra work (like tearing a write) before calling Hit.
func Active(name string) bool {
	mu.Lock()
	defer mu.Unlock()
	a, ok := armed[name]
	if !ok {
		return false
	}
	return a.nth == 0 || counts[name]+1 == a.nth
}

// Hit marks the named point, crashing or delaying if it is armed for
// this hit. A crash is a SIGKILL of the whole process — no deferred
// functions, no flushes — exactly the failure the WAL must survive.
func Hit(name string) {
	a, ok := fire(name)
	if !ok {
		return
	}
	switch a.kind {
	case "crash":
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // SIGKILL is not synchronous; never execute past the point
	case "delay":
		time.Sleep(a.delay)
	}
}

// Check marks the named point like Hit and additionally returns the
// injected error when the point is armed with an error action.
func Check(name string) error {
	a, ok := fire(name)
	if !ok {
		return nil
	}
	switch a.kind {
	case "crash":
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {}
	case "delay":
		time.Sleep(a.delay)
		return nil
	case "error":
		return fmt.Errorf("faultpoint %s: %s", name, a.msg)
	}
	return nil
}

// Enabled reports that fault injection is compiled in.
func Enabled() bool { return true }
