//go:build !faultpoint

// Package faultpoint injects crashes, delays and errors at named points
// in the code under test. In ordinary builds (this file) every hook is
// a constant no-op the compiler inlines away, so threading a faultpoint
// through a production path — the cluster WAL's append/fsync/compact,
// the lease and ack paths — costs nothing. Building with `-tags
// faultpoint` swaps in the real registry: points are armed either
// programmatically (Set, from in-process tests) or through the
// MFLUSH_FAULTPOINTS environment variable (for real binaries, the crash
// matrix in internal/crashtest), and a hit can SIGKILL the process
// mid-operation, sleep, or surface an injected error.
//
// The arming syntax, shared by Set and MFLUSH_FAULTPOINTS (which holds
// a semicolon-separated list of name=action pairs):
//
//	crash        SIGKILL the process at the point
//	crash@N      SIGKILL on the Nth hit (1-based), so earlier hits pass
//	delay:DUR    sleep DUR (time.ParseDuration) at the point
//	error:MSG    make Check at the point return an error with MSG
//	error@N:MSG  as error:MSG, but only on the Nth hit
package faultpoint

// Active reports whether the named point would fire on its next hit.
// Production code uses it to guard extra work a firing point needs
// prepared (e.g. tearing a write in half before crashing); in ordinary
// builds it is constant false, so the guarded branch is eliminated.
//
//mflush:hotpath-ok
func Active(string) bool { return false }

// Hit marks the named point. In ordinary builds it does nothing; with
// the faultpoint tag it crashes or delays when the point is armed.
//
//mflush:hotpath-ok
func Hit(string) {}

// Check marks the named point and returns its injected error, if any.
// Ordinary builds always return nil.
//
//mflush:hotpath-ok
func Check(string) error { return nil }

// Enabled reports whether fault injection is compiled in at all — false
// here; the crash matrix uses it to refuse running against a binary
// that cannot crash.
func Enabled() bool { return false }
