//go:build faultpoint

package faultpoint

import (
	"testing"
	"time"
)

// These tests compile only with the faultpoint tag (make crashtest runs
// them); the ordinary build's hooks are constant no-ops with nothing to
// test.

func TestErrorFiresOnNthHit(t *testing.T) {
	Reset()
	if err := Set("p", "error@3:boom"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		err := Check("p")
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err = %v", i, err)
		}
	}
}

func TestActivePeeksWithoutConsuming(t *testing.T) {
	Reset()
	if err := Set("p", "error@2:boom"); err != nil {
		t.Fatal(err)
	}
	if Active("p") {
		t.Fatal("point active before its armed hit")
	}
	if err := Check("p"); err != nil {
		t.Fatalf("first hit fired: %v", err)
	}
	if !Active("p") {
		t.Fatal("point not active on its armed hit")
	}
	if err := Check("p"); err == nil {
		t.Fatal("second hit did not fire")
	}
}

func TestDelayActionSleeps(t *testing.T) {
	Reset()
	if err := Set("p", "delay:30ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	Hit("p")
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay hit returned after %s", d)
	}
}

func TestDisarmAndBadSpecs(t *testing.T) {
	Reset()
	if err := Set("p", "error:boom"); err != nil {
		t.Fatal(err)
	}
	if err := Set("p", ""); err != nil {
		t.Fatal(err)
	}
	if err := Check("p"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	for _, bad := range []string{"explode", "crash@0", "crash@x", "delay:fast"} {
		if err := Set("q", bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
	if !Enabled() {
		t.Fatal("Enabled() = false under the faultpoint tag")
	}
}
